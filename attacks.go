package ltefp

import (
	"fmt"
	"time"

	"ltefp/internal/appmodel"
	"ltefp/internal/attack/correlation"
	"ltefp/internal/attack/history"
	"ltefp/internal/lte/operator"
	"ltefp/internal/ml/forest"
	"ltefp/internal/sniffer"
)

// forestCfg is the paper's Random Forest configuration.
func forestCfg(seed uint64) forest.Config {
	return forest.Config{Trees: 100, Seed: seed}
}

// Visit is one entry of a victim's itinerary for the history attack.
type Visit struct {
	// Zone is the cell zone the victim is in (1 → "Zone A'", ...).
	Zone int
	// Day is the simulated day (training data is day 1).
	Day int
	// Start is the session start within the day.
	Start time.Duration
	// Duration is how long the victim uses the app there.
	Duration time.Duration
	// App is the app in use (ground truth for scoring).
	App string
}

// HistoryOptions configures Attack II.
type HistoryOptions struct {
	// Network is a name from Networks().
	Network string
	// Zones lists the zones to instrument with sniffers.
	Zones []int
	// Itinerary is the victim's ground-truth movement and app usage.
	Itinerary []Visit
	// Seed namespaces the run.
	Seed uint64
}

// HistoryFinding is the attacker's reconstruction of one visit.
type HistoryFinding struct {
	Zone       int
	Day        int
	Start      time.Duration
	Duration   time.Duration
	TrueApp    string
	Predicted  string
	Confidence float64
	Correct    bool
	// Stable reports whether Confidence cleared the paper's 70% gate.
	Stable bool
}

// HistoryReport is a completed history attack.
type HistoryReport struct {
	Findings []HistoryFinding
	// Successes counts correctly identified visits.
	Successes int
}

// SuccessRate is the fraction of visits whose app was identified.
func (r *HistoryReport) SuccessRate() float64 {
	if len(r.Findings) == 0 {
		return 0
	}
	return float64(r.Successes) / float64(len(r.Findings))
}

// HistoryAttack runs Attack II with this fingerprinter: per-zone sniffers
// capture the victim's roaming, identity mapping stitches the RNTIs
// together, and every visit's trace segment is classified.
func (f *Fingerprinter) HistoryAttack(opts HistoryOptions) (*HistoryReport, error) {
	if opts.Network == "" {
		opts.Network = "Lab"
	}
	prof, err := operator.ByName(opts.Network)
	if err != nil {
		return nil, fmt.Errorf("ltefp: %w", err)
	}
	sessions := make([]history.ZoneSession, len(opts.Itinerary))
	for i, v := range opts.Itinerary {
		app, err := appmodel.ByName(v.App)
		if err != nil {
			return nil, fmt.Errorf("ltefp: itinerary entry %d: %w", i, err)
		}
		sessions[i] = history.ZoneSession{
			Zone: v.Zone, Day: v.Day, Start: v.Start, Duration: v.Duration, App: app,
		}
	}
	res, err := history.Run(f.clf, history.Config{
		Profile:          prof,
		Zones:            opts.Zones,
		Sessions:         sessions,
		Seed:             opts.Seed,
		Sniffer:          sniffer.Config{CorruptProb: baselineCorruption},
		ApplyProfileLoss: true,
	})
	if err != nil {
		return nil, fmt.Errorf("ltefp: %w", err)
	}
	report := &HistoryReport{Successes: res.Successes}
	for _, a := range res.Attempts {
		report.Findings = append(report.Findings, HistoryFinding{
			Zone:       a.Zone,
			Day:        a.Day,
			Start:      a.Start,
			Duration:   a.Duration,
			TrueApp:    a.TrueApp,
			Predicted:  a.Predicted,
			Confidence: a.Confidence,
			Correct:    a.Correct,
			Stable:     a.Stable,
		})
	}
	return report, nil
}

// ContactEvidence is the per-pair similarity evidence of Attack III.
type ContactEvidence struct {
	// Similarity is the DTW similarity of the two users' frame-rate
	// series (the paper's D(T_w, T_a), Table VI).
	Similarity float64
	// ByteSimilarity is the DTW similarity of the byte-rate series.
	ByteSimilarity float64
	// CrossUD is the peak cross-correlation between one side's uplink
	// and the other's downlink.
	CrossUD float64
	// VolumeRatio is min/max of the two users' traffic volumes.
	VolumeRatio float64
	// Communicating is the ground-truth label (when known).
	Communicating bool
}

// Correlate computes contact evidence for two users' records over the
// common span [start, end), using the paper's default 1 s window. It
// rejects an empty or inverted span: evidence over zero observation time
// is not "low similarity", and silently scoring it used to bias the
// contact detector toward "independent".
func Correlate(a, b []Record, start, end time.Duration) (ContactEvidence, error) {
	if end <= start {
		return ContactEvidence{}, fmt.Errorf("ltefp: correlation span [%v, %v) is empty", start, end)
	}
	e := correlation.PairEvidence(toTrace(a), toTrace(b), correlation.DefaultBin, start, end)
	return fromEvidence(e), nil
}

// CollectContactPairs simulates n communicating conversations and n
// independent same-app sessions over the named app and network, returning
// labelled evidence (communicating pairs first).
func CollectContactPairs(network, app string, n int, dur time.Duration, seed uint64) ([]ContactEvidence, error) {
	prof, a, err := resolve(network, app)
	if err != nil {
		return nil, err
	}
	ev, err := correlation.CollectPairs(correlation.PairSpec{
		Profile:          prof,
		App:              a,
		Duration:         dur,
		Seed:             seed,
		Sniffer:          sniffer.Config{CorruptProb: baselineCorruption},
		ApplyProfileLoss: true,
	}, n)
	if err != nil {
		return nil, fmt.Errorf("ltefp: %w", err)
	}
	out := make([]ContactEvidence, len(ev))
	for i, e := range ev {
		out[i] = fromEvidence(e)
	}
	return out, nil
}

// SweepUser is one observed user in a many-user contact sweep: an
// attacker-chosen identifier and the user's captured records.
type SweepUser struct {
	ID      string
	Records []Record
}

// ContactSweepOptions configures ContactSweep.
type ContactSweepOptions struct {
	// Bin is the similarity window T_w (0 = the paper's 1 s default).
	Bin time.Duration
	// Start and End bound the common observation span [Start, End).
	Start, End time.Duration
	// MinSimilarity drops pairs whose frame-rate DTW similarity falls below
	// it — and powers the exact lower-bound cascade that skips most full
	// DTW computations. 0 scores every pair in full.
	MinSimilarity float64
	// TopK caps reported contacts per user (0 = unlimited).
	TopK int
	// Workers is the parallel shard count (0 = GOMAXPROCS).
	Workers int
	// Detector optionally scores each surviving pair.
	Detector *ContactDetector
}

// ContactFinding is one surviving pair of a contact sweep.
type ContactFinding struct {
	// A and B index the users slice; AID and BID echo their IDs.
	A, B     int
	AID, BID string
	// Evidence is byte-identical to the pairwise Correlate result.
	Evidence ContactEvidence
	// Score and Detected are the Detector's outputs (zero without one).
	Score    float64
	Detected bool
}

// ContactSweep runs Attack III at population scale: all-pairs (optionally
// top-K-per-user) contact discovery over every observed user. Each user's
// comparison series are built once, pairs are sharded across Workers, and
// an exact lower-bound cascade (LB_Kim → LB_Keogh → early-abandoning DTW)
// prunes pairs that provably score below MinSimilarity — reported evidence
// is byte-identical to calling Correlate on each pair individually.
func ContactSweep(users []SweepUser, opts ContactSweepOptions) ([]ContactFinding, error) {
	if opts.End <= opts.Start {
		return nil, fmt.Errorf("ltefp: contact sweep span [%v, %v) is empty", opts.Start, opts.End)
	}
	in := make([]correlation.UserTrace, len(users))
	for i, u := range users {
		in[i] = correlation.UserTrace{ID: u.ID, Trace: toTrace(u.Records)}
	}
	cfg := correlation.SweepConfig{
		Bin:           opts.Bin,
		Start:         opts.Start,
		End:           opts.End,
		MinSimilarity: opts.MinSimilarity,
		TopK:          opts.TopK,
		Workers:       opts.Workers,
	}
	if opts.Detector != nil {
		cfg.Model = opts.Detector.m
	}
	contacts, err := correlation.Sweep(in, cfg)
	if err != nil {
		return nil, fmt.Errorf("ltefp: %w", err)
	}
	out := make([]ContactFinding, len(contacts))
	for i, c := range contacts {
		out[i] = ContactFinding{
			A: c.A, B: c.B,
			AID: users[c.A].ID, BID: users[c.B].ID,
			Evidence: fromEvidence(c.Evidence),
			Score:    c.Score,
			Detected: c.Detected,
		}
	}
	return out, nil
}

// ContactDetector decides contact versus coincidence from evidence
// (logistic regression, the paper's Table VII model).
type ContactDetector struct {
	m *correlation.Model
}

// TrainContactDetector fits the detector on labelled evidence.
func TrainContactDetector(samples []ContactEvidence, seed uint64) (*ContactDetector, error) {
	in := make([]correlation.Evidence, len(samples))
	for i, s := range samples {
		in[i] = toEvidence(s)
	}
	m, err := correlation.TrainModel(in, seed)
	if err != nil {
		return nil, fmt.Errorf("ltefp: %w", err)
	}
	return &ContactDetector{m: m}, nil
}

// Detect reports whether the evidence indicates the two users were in
// contact.
func (d *ContactDetector) Detect(e ContactEvidence) bool {
	return d.m.Predict(toEvidence(e))
}

// Score returns the detector's contact probability.
func (d *ContactDetector) Score(e ContactEvidence) float64 {
	return d.m.Score(toEvidence(e))
}

func fromEvidence(e correlation.Evidence) ContactEvidence {
	return ContactEvidence{
		Similarity:     e.Similarity,
		ByteSimilarity: e.ByteSimilarity,
		CrossUD:        e.CrossUD,
		VolumeRatio:    e.VolumeRatio,
		Communicating:  e.Communicating,
	}
}

func toEvidence(e ContactEvidence) correlation.Evidence {
	return correlation.Evidence{
		Similarity:     e.Similarity,
		ByteSimilarity: e.ByteSimilarity,
		CrossUD:        e.CrossUD,
		VolumeRatio:    e.VolumeRatio,
		Communicating:  e.Communicating,
	}
}
