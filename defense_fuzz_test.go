package ltefp

import (
	"testing"
	"time"

	"ltefp/internal/lte/operator"
)

// FuzzDefenseConfig hammers the defense configuration surface: ParseDefense
// must never panic, every spec it accepts must pass Validate, a valid
// Defense applied to a profile must leave the profile valid, and composing
// a defense with the zero value must be the identity.
func FuzzDefenseConfig(f *testing.F) {
	f.Add("")
	f.Add("full")
	f.Add("refresh=2s,morph,conceal,quant=256,dummy=0.05:1200,cr=20ms:400,smartpaging")
	f.Add("quant=-1")
	f.Add("dummy=2:0")
	f.Add("cr=1ns:5")
	f.Add("refresh=,morph")
	f.Add("dummy=0.5")
	f.Add(",,,")
	f.Add("quant=9999999999999999999")
	f.Fuzz(func(t *testing.T, spec string) {
		d, err := ParseDefense(spec)
		if err != nil {
			if d != (Defense{}) {
				t.Fatalf("ParseDefense(%q) errored but returned non-zero %+v", spec, d)
			}
			return
		}
		if verr := d.Validate(); verr != nil {
			t.Fatalf("ParseDefense(%q) accepted a Defense that fails Validate: %v", spec, verr)
		}
		if got := ComposeDefenses(d, Defense{}); got != d {
			t.Fatalf("ComposeDefenses(%+v, zero) = %+v, want identity", d, got)
		}
		if got := ComposeDefenses(Defense{}, d); got != d {
			t.Fatalf("ComposeDefenses(zero, %+v) = %+v, want identity", d, got)
		}
		prof, err := operator.ByName("Lab")
		if err != nil {
			t.Fatal(err)
		}
		d.apply(&prof)
		if perr := prof.Validate(); perr != nil {
			t.Fatalf("valid Defense %+v produced an invalid profile: %v", d, perr)
		}
		if d.ConstantRatePeriod >= time.Millisecond && prof.ConstantRatePeriodTTI < 1 {
			t.Fatalf("ConstantRatePeriod %v applied as %d TTIs", d.ConstantRatePeriod, prof.ConstantRatePeriodTTI)
		}
	})
}
