// Package harness drives the repository's CLI binaries as real
// subprocesses for end-to-end testing. It builds each cmd/<name> binary
// at most once per test process into a shared temporary directory, runs
// them with captured stdout/stderr and exit codes, and supports
// long-running processes that tests signal, kill -9, and restart — the
// shape the daemon's checkpoint/restore e2e cases need.
//
// Golden comparison follows the repository's -update idiom: expected
// stdout lives in testdata/<name>.golden next to the test, and
// `go test -tags e2e ./e2e -run X -update` rewrites it.
package harness

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files with the observed output")

// build state: one shared bin dir per test process, each binary compiled
// at most once no matter how many tests ask for it.
var (
	buildMu sync.Mutex
	binDir  string
	built   = map[string]buildResult{}
)

type buildResult struct {
	path string
	err  error
}

// Binary returns the path of the compiled cmd/<name> binary, building it
// on first use. Compilation failures fail the calling test.
func Binary(t testing.TB, name string) string {
	t.Helper()
	buildMu.Lock()
	defer buildMu.Unlock()
	if r, ok := built[name]; ok {
		if r.err != nil {
			t.Fatalf("building %s (cached): %v", name, r.err)
		}
		return r.path
	}
	if binDir == "" {
		dir, err := os.MkdirTemp("", "ltefp-e2e-bin-")
		if err != nil {
			t.Fatalf("harness: bin dir: %v", err)
		}
		binDir = dir
	}
	out := filepath.Join(binDir, name)
	cmd := exec.Command("go", "build", "-o", out, "ltefp/cmd/"+name)
	cmd.Env = os.Environ()
	if msg, err := cmd.CombinedOutput(); err != nil {
		r := buildResult{err: fmt.Errorf("%v\n%s", err, msg)}
		built[name] = r
		t.Fatalf("building %s: %v", name, r.err)
	}
	built[name] = buildResult{path: out}
	return out
}

// SharedDir returns a directory that outlives any single test in this
// process — model files trained once and reused across scenarios live
// here, next to the binaries.
func SharedDir(t testing.TB) string {
	t.Helper()
	Binary(t, "ltecost") // force the bin dir into existence cheaply
	return binDir
}

// Result is a finished subprocess: captured output and exit status.
type Result struct {
	Stdout   string
	Stderr   string
	ExitCode int    // -1 when killed by a signal
	Signal   string // non-empty when the process died to a signal
}

// Run executes one binary to completion with a deadline. Start failures
// and deadline overruns fail the test; non-zero exits do not (callers
// assert on ExitCode so "refuses bad flags" scenarios stay expressible).
func Run(t testing.TB, timeout time.Duration, name string, args ...string) Result {
	t.Helper()
	p := Start(t, name, args...)
	return p.Wait(timeout)
}

// lockedBuffer is a concurrency-safe output sink; the subprocess writes
// from its own OS pipe goroutine while tests poll Snapshot.
type lockedBuffer struct {
	mu  sync.Mutex
	buf strings.Builder
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) Snapshot() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// Proc is a running subprocess under test control.
type Proc struct {
	t      testing.TB
	name   string
	cmd    *exec.Cmd
	stdout *lockedBuffer
	stderr *lockedBuffer

	waitOnce sync.Once
	waitErr  error
	done     chan struct{}
}

// Start launches cmd/<name> (building it if needed) and returns a handle
// the test can observe, signal, kill, and wait on. Processes still
// running at test end are killed.
func Start(t testing.TB, name string, args ...string) *Proc {
	t.Helper()
	bin := Binary(t, name)
	p := &Proc{
		t:      t,
		name:   name,
		cmd:    exec.Command(bin, args...),
		stdout: &lockedBuffer{},
		stderr: &lockedBuffer{},
		done:   make(chan struct{}),
	}
	p.cmd.Stdout = p.stdout
	p.cmd.Stderr = p.stderr
	if err := p.cmd.Start(); err != nil {
		t.Fatalf("starting %s: %v", name, err)
	}
	go func() {
		p.waitErr = p.cmd.Wait()
		close(p.done)
	}()
	t.Cleanup(func() {
		select {
		case <-p.done:
		default:
			_ = p.cmd.Process.Kill()
			<-p.done
		}
	})
	return p
}

// Stdout returns everything the process has written to stdout so far.
func (p *Proc) Stdout() string { return p.stdout.Snapshot() }

// Stderr returns everything the process has written to stderr so far.
func (p *Proc) Stderr() string { return p.stderr.Snapshot() }

// Signal delivers sig (e.g. os.Interrupt) to the process.
func (p *Proc) Signal(sig os.Signal) {
	p.t.Helper()
	if err := p.cmd.Process.Signal(sig); err != nil {
		p.t.Fatalf("signalling %s: %v", p.name, err)
	}
}

// Kill delivers SIGKILL — the crash the checkpoint/restore e2e cases
// recover from. The process gets no chance to flush or drain.
func (p *Proc) Kill() {
	p.t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		p.t.Fatalf("killing %s: %v", p.name, err)
	}
}

// Exited reports whether the process has terminated.
func (p *Proc) Exited() bool {
	select {
	case <-p.done:
		return true
	default:
		return false
	}
}

// Wait blocks until the process exits or the deadline passes (the latter
// kills it and fails the test), then returns the captured Result.
func (p *Proc) Wait(timeout time.Duration) Result {
	p.t.Helper()
	select {
	case <-p.done:
	case <-time.After(timeout):
		_ = p.cmd.Process.Kill()
		<-p.done
		p.t.Fatalf("%s: still running after %s\nstdout:\n%s\nstderr:\n%s",
			p.name, timeout, p.Stdout(), p.Stderr())
	}
	res := Result{Stdout: p.Stdout(), Stderr: p.Stderr(), ExitCode: 0}
	if p.waitErr != nil {
		res.ExitCode = -1
		if ee, ok := p.waitErr.(*exec.ExitError); ok {
			res.ExitCode = ee.ExitCode()
			if ws, ok := ee.Sys().(syscall.WaitStatus); ok && ws.Signaled() {
				res.Signal = ws.Signal().String()
			}
		}
	}
	return res
}

// WaitForStdout polls until the process's stdout contains substr,
// failing the test after timeout. Returns the stdout snapshot that
// first contained the substring.
func (p *Proc) WaitForStdout(substr string, timeout time.Duration) string {
	p.t.Helper()
	return p.WaitUntil(func(stdout string) bool {
		return strings.Contains(stdout, substr)
	}, timeout, fmt.Sprintf("stdout containing %q", substr))
}

// WaitUntil polls the process's stdout every 2ms until pred accepts it.
// The condition may also become true on the process's final output after
// exit; only when the process is gone AND pred still rejects does the
// test fail early.
func (p *Proc) WaitUntil(pred func(stdout string) bool, timeout time.Duration, what string) string {
	p.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if out := p.Stdout(); pred(out) {
			return out
		}
		if p.Exited() {
			// One final check: output written just before exit.
			if out := p.Stdout(); pred(out) {
				return out
			}
			p.t.Fatalf("%s exited before producing %s\nstdout:\n%s\nstderr:\n%s",
				p.name, what, p.Stdout(), p.Stderr())
		}
		if time.Now().After(deadline) {
			p.t.Fatalf("%s: no %s after %s\nstdout:\n%s\nstderr:\n%s",
				p.name, what, timeout, p.Stdout(), p.Stderr())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// WaitForFiles polls until every named file exists and is non-empty,
// failing the test after timeout. Used to catch a daemon mid-run right
// after its first checkpoint set lands.
func WaitForFiles(t testing.TB, timeout time.Duration, paths ...string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		all := true
		for _, path := range paths {
			if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
				all = false
				break
			}
		}
		if all {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("files %v not all present after %s", paths, timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Golden compares got against testdata/<name>.golden, rewriting the file
// under -update. The diff report shows the first divergent line so CSV
// and table regressions are readable.
func Golden(t testing.TB, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update to create it): %v", path, err)
	}
	if string(want) == got {
		return
	}
	wantLines := strings.Split(string(want), "\n")
	gotLines := strings.Split(got, "\n")
	line := 0
	for line < len(wantLines) && line < len(gotLines) && wantLines[line] == gotLines[line] {
		line++
	}
	wantAt, gotAt := "<eof>", "<eof>"
	if line < len(wantLines) {
		wantAt = wantLines[line]
	}
	if line < len(gotLines) {
		gotAt = gotLines[line]
	}
	t.Errorf("%s: output diverges from golden at line %d:\n want: %q\n  got: %q\n(re-bless with -update if the change is intended)",
		name, line+1, wantAt, gotAt)
}
