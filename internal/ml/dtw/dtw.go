// Package dtw implements dynamic time warping (Berndt & Clifford), the
// distance the correlation attack uses to compare two users' traffic-rate
// time series. Equation (1) of the paper is the classic recurrence
//
//	D(i, j) = d(i, j) + min(D(i-1, j-1), D(i-1, j), D(i, j-1))
//
// computed here with a rolling two-row table and an optional Sakoe-Chiba
// band. Similarity converts the accumulated distance of z-normalised
// series into the (0, 1] score range the paper's Table VI reports.
package dtw

import (
	"math"
)

// Aligner computes DTW scores while reusing its normalization and DP-row
// scratch buffers across calls, so pairwise sweeps (the correlation
// attack's O(pairs²) inner loop) allocate nothing per comparison. The
// zero value is ready to use. An Aligner is not safe for concurrent use;
// parallel comparers create one per goroutine.
type Aligner struct {
	na, nb    []float64
	prev, cur []float64
}

// NewAligner returns an Aligner with empty scratch state.
func NewAligner() *Aligner { return &Aligner{} }

// Distance returns the unconstrained DTW distance between two series using
// squared point distance, matching the Euclidean cost matrix of Eq. (1).
// Empty inputs yield +Inf (nothing aligns with something).
func Distance(a, b []float64) float64 {
	return NewAligner().DistanceBand(a, b, -1)
}

// Distance is the package-level Distance reusing the aligner's scratch.
func (al *Aligner) Distance(a, b []float64) float64 {
	return al.DistanceBand(a, b, -1)
}

// DistanceBand returns the DTW distance constrained to a Sakoe-Chiba band
// of the given half-width (band < 0 disables the constraint).
func DistanceBand(a, b []float64, band int) float64 {
	return NewAligner().DistanceBand(a, b, band)
}

// DistanceBand is the package-level DistanceBand reusing the aligner's
// DP-row scratch.
func (al *Aligner) DistanceBand(a, b []float64, band int) float64 {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		if n == 0 && m == 0 {
			return 0
		}
		return math.Inf(1)
	}
	if band >= 0 {
		// The band must at least cover the length difference, or no
		// warping path exists.
		if d := n - m; d < 0 {
			if -d > band {
				band = -d
			}
		} else if d > band {
			band = d
		}
	}
	if cap(al.prev) < m+1 {
		al.prev = make([]float64, m+1)
		al.cur = make([]float64, m+1)
	}
	prev, cur := al.prev[:m+1], al.cur[:m+1]
	prev[0] = 0
	for j := 1; j <= m; j++ {
		prev[j] = math.Inf(1)
	}
	for i := 1; i <= n; i++ {
		cur[0] = math.Inf(1)
		lo, hi := 1, m
		if band >= 0 {
			if l := i - band; l > lo {
				lo = l
			}
			if h := i + band; h < hi {
				hi = h
			}
			for j := 1; j < lo; j++ {
				cur[j] = math.Inf(1)
			}
			for j := hi + 1; j <= m; j++ {
				cur[j] = math.Inf(1)
			}
		}
		for j := lo; j <= hi; j++ {
			d := a[i-1] - b[j-1]
			best := prev[j-1]
			if prev[j] < best {
				best = prev[j]
			}
			if cur[j-1] < best {
				best = cur[j-1]
			}
			cur[j] = d*d + best
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// DistanceBandEA is DistanceBand with early abandoning: when the running
// minimum of a completed DP row exceeds cutoff, no warping path can finish
// below it (every path crosses every row and costs only accumulate), so the
// computation stops and returns +Inf. A cutoff of +Inf never abandons and
// returns the exact DistanceBand result; when the computation completes,
// the returned distance is bit-identical to DistanceBand's — the abandon
// check only observes cell values, never changes them.
func DistanceBandEA(a, b []float64, band int, cutoff float64) float64 {
	return NewAligner().DistanceBandEA(a, b, band, cutoff)
}

// DistanceBandEA is the package-level DistanceBandEA reusing the aligner's
// DP-row scratch.
func (al *Aligner) DistanceBandEA(a, b []float64, band int, cutoff float64) float64 {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		if n == 0 && m == 0 {
			return 0
		}
		return math.Inf(1)
	}
	if band >= 0 {
		if d := n - m; d < 0 {
			if -d > band {
				band = -d
			}
		} else if d > band {
			band = d
		}
	}
	if cap(al.prev) < m+1 {
		al.prev = make([]float64, m+1)
		al.cur = make([]float64, m+1)
	}
	prev, cur := al.prev[:m+1], al.cur[:m+1]
	prev[0] = 0
	for j := 1; j <= m; j++ {
		prev[j] = math.Inf(1)
	}
	for i := 1; i <= n; i++ {
		cur[0] = math.Inf(1)
		lo, hi := 1, m
		if band >= 0 {
			if l := i - band; l > lo {
				lo = l
			}
			if h := i + band; h < hi {
				hi = h
			}
			for j := 1; j < lo; j++ {
				cur[j] = math.Inf(1)
			}
			for j := hi + 1; j <= m; j++ {
				cur[j] = math.Inf(1)
			}
		}
		rowMin := math.Inf(1)
		for j := lo; j <= hi; j++ {
			d := a[i-1] - b[j-1]
			best := prev[j-1]
			if prev[j] < best {
				best = prev[j]
			}
			if cur[j-1] < best {
				best = cur[j-1]
			}
			c := d*d + best
			cur[j] = c
			if c < rowMin {
				rowMin = c
			}
		}
		if rowMin > cutoff {
			return math.Inf(1)
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// Normalize z-normalises a series into a new slice. Constant series map to
// all zeros.
func Normalize(a []float64) []float64 {
	return normalizeInto(make([]float64, len(a)), a)
}

// normalizeInto z-normalises a into out (len(out) == len(a)), returning
// out. Constant series map to all zeros.
func normalizeInto(out, a []float64) []float64 {
	if len(a) == 0 {
		return out
	}
	var mean float64
	for _, v := range a {
		mean += v
	}
	mean /= float64(len(a))
	var variance float64
	for _, v := range a {
		d := v - mean
		variance += d * d
	}
	variance /= float64(len(a))
	if variance < 1e-12 {
		for i := range out {
			out[i] = 0
		}
		return out
	}
	std := math.Sqrt(variance)
	for i, v := range a {
		out[i] = (v - mean) / std
	}
	return out
}

// Similarity returns a (0, 1] similarity score between two traffic-rate
// series: both are z-normalised, aligned under a 10% Sakoe-Chiba band, and
// the per-step alignment cost is mapped through exp(-cost). Identical
// series score 1; unrelated series decay toward 0.
func Similarity(a, b []float64) float64 {
	return NewAligner().Similarity(a, b)
}

// Similarity is the package-level Similarity reusing the aligner's
// normalization and DP-row scratch.
func (al *Aligner) Similarity(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	if cap(al.na) < len(a) {
		al.na = make([]float64, len(a))
	}
	if cap(al.nb) < len(b) {
		al.nb = make([]float64, len(b))
	}
	na := normalizeInto(al.na[:len(a)], a)
	nb := normalizeInto(al.nb[:len(b)], b)
	d := al.DistanceBand(na, nb, bandFor(len(a), len(b)))
	return SimilarityFromDistance(d, len(a), len(b))
}

// similaritySharpness calibrates how fast alignment cost decays the
// similarity score; 2 places clean communicating pairs near 0.9 and
// independent same-app pairs near 0.4–0.6, the range the paper reports.
const similaritySharpness = 2

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
