// Lower-bound cascade for exact DTW sweeps (UCR-suite lineage: Rakthanmanon
// et al., "Searching and Mining Trillions of Time Series Subsequences under
// Dynamic Time Warping", KDD 2012). A many-user contact sweep compares every
// pair of users, so the per-pair cost is the whole game; this file adds the
// machinery that lets most pairs be rejected for O(1) or O(n) instead of the
// full O(n·band) dynamic program, without ever changing a reported score:
//
//	Series          per-user cache: z-normalised values + Sakoe-Chiba
//	                envelopes, computed once and reused across every pair
//	                the user participates in.
//	LBKim           O(1) endpoint lower bound.
//	LBKeogh         O(n) envelope lower bound (≥ LBKim by construction).
//	CascadeSimilarity LBKim → LBKeogh → early-abandoning DTW; when the pair
//	                survives, the returned similarity is bit-identical to
//	                Aligner.Similarity on the raw series.
//
// Every bound here is a true lower bound of the banded DTW distance, so
// pruning is exact: a pruned pair is provably below the similarity
// threshold, and a surviving pair's score is computed by the very same
// floating-point operations the unaccelerated path performs.
package dtw

import "math"

// Series is one user's comparison-ready rate series: the raw values, their
// z-normalisation, and the Sakoe-Chiba envelopes of the normalised values
// under the band Similarity uses for a series of this length. Build it once
// per user and reuse it across every pairwise comparison — the
// normalisation and envelope work is O(n) per user instead of O(n) per
// pair. Series is immutable after construction and safe for concurrent use
// by many aligners. It retains (does not copy) the raw slice.
type Series struct {
	raw          []float64
	norm         []float64
	upper, lower []float64
	band         int
}

// NewSeries precomputes the normalisation and envelopes of raw. The
// envelope band is the 10% Sakoe-Chiba half-width Similarity applies to a
// pair of series of this length; LBKeogh therefore requires both series of
// a comparison to have equal lengths (as every sweep over a common
// [start, end) span produces) and falls back to LBKim otherwise.
func NewSeries(raw []float64) *Series {
	s := &Series{
		raw:  raw,
		norm: Normalize(raw),
		band: bandFor(len(raw), len(raw)),
	}
	s.upper, s.lower = envelope(s.norm, s.band)
	return s
}

// Len returns the series length.
func (s *Series) Len() int { return len(s.raw) }

// Raw returns the raw values the series was built from.
func (s *Series) Raw() []float64 { return s.raw }

// Norm returns the z-normalised values.
func (s *Series) Norm() []float64 { return s.norm }

// Band returns the Sakoe-Chiba half-width the envelopes were built under.
func (s *Series) Band() int { return s.band }

// bandFor is the 10% Sakoe-Chiba half-width Similarity uses for a pair of
// series of lengths n and m.
func bandFor(n, m int) int { return (max(n, m) + 9) / 10 }

// envelope computes the sliding min/max of x over windows [i-r, i+r]
// (clamped to the series) with monotonic deques — O(n) total, the
// streaming-min-max construction of Lemire (2006).
func envelope(x []float64, r int) (upper, lower []float64) {
	n := len(x)
	upper = make([]float64, n)
	lower = make([]float64, n)
	du := make([]int, 0, n) // indices of decreasing values: front is the max
	dl := make([]int, 0, n) // indices of increasing values: front is the min
	for j := 0; j < n+r; j++ {
		if j < n {
			for len(du) > 0 && x[du[len(du)-1]] <= x[j] {
				du = du[:len(du)-1]
			}
			du = append(du, j)
			for len(dl) > 0 && x[dl[len(dl)-1]] >= x[j] {
				dl = dl[:len(dl)-1]
			}
			dl = append(dl, j)
		}
		i := j - r
		if i < 0 || i >= n {
			continue
		}
		for du[0] < i-r {
			du = du[1:]
		}
		for dl[0] < i-r {
			dl = dl[1:]
		}
		upper[i] = x[du[0]]
		lower[i] = x[dl[0]]
	}
	return upper, lower
}

// LBKim is the O(1) endpoint lower bound on the banded DTW distance of the
// two normalised series: every warping path matches the first pair and the
// last pair of points exactly, so their squared distances are unavoidable.
// (When both series have a single point those two cells are the same cell,
// counted once.)
func LBKim(a, b *Series) float64 {
	na, nb := len(a.norm), len(b.norm)
	if na == 0 || nb == 0 {
		if na == 0 && nb == 0 {
			return 0
		}
		return math.Inf(1)
	}
	d0 := a.norm[0] - b.norm[0]
	lb := d0 * d0
	if na == 1 && nb == 1 {
		return lb
	}
	dn := a.norm[na-1] - b.norm[nb-1]
	return lb + dn*dn
}

// LBKeogh is the O(n) envelope lower bound on the banded DTW distance: each
// row i of a warping path visits at least one in-band cell, whose cost is
// at least the squared excursion of q's point i outside c's envelope. The
// first and last rows use their exact endpoint cells, which makes
// LBKim ≤ LBKeogh hold by construction. It requires equal-length series
// (every sweep over a common span produces them) and falls back to LBKim
// otherwise; like LBKim it is asymmetric, and a cascade tests both
// LBKeogh(a, b) and LBKeogh(b, a).
func LBKeogh(q, c *Series) float64 {
	n := len(q.norm)
	if n != len(c.norm) || n == 0 {
		return LBKim(q, c)
	}
	d0 := q.norm[0] - c.norm[0]
	lb := d0 * d0
	if n == 1 {
		return lb
	}
	dn := q.norm[n-1] - c.norm[n-1]
	lb += dn * dn
	for i := 1; i < n-1; i++ {
		v := q.norm[i]
		if u := c.upper[i]; v > u {
			d := v - u
			lb += d * d
		} else if l := c.lower[i]; v < l {
			d := l - v
			lb += d * d
		}
	}
	return lb
}

// Stage reports how far through the lower-bound cascade a comparison went.
type Stage uint8

const (
	// StageFull means the full banded DTW ran to completion: the returned
	// similarity is exact (bit-identical to Aligner.Similarity).
	StageFull Stage = iota
	// StageLBKim means the endpoint bound alone proved the pair below the
	// threshold.
	StageLBKim
	// StageLBKeogh means the envelope bound proved the pair below the
	// threshold.
	StageLBKeogh
	// StageAbandoned means the DTW recurrence was abandoned mid-table once
	// its running row minimum exceeded the distance cutoff.
	StageAbandoned
)

// String names the stage for logs and funnel reports.
func (s Stage) String() string {
	switch s {
	case StageFull:
		return "full"
	case StageLBKim:
		return "lb_kim"
	case StageLBKeogh:
		return "lb_keogh"
	case StageAbandoned:
		return "abandoned"
	}
	return "unknown"
}

// SimilarityFromDistance maps a banded DTW distance of two z-normalised
// series of lengths n and m to the (0, 1] similarity score — exactly the
// final step of Similarity, exposed so cascade callers can finish a
// surviving comparison with the identical floating-point operations.
func SimilarityFromDistance(d float64, n, m int) float64 {
	if math.IsInf(d, 1) {
		return 0
	}
	perStep := d / float64(n+m)
	return math.Exp(-similaritySharpness * perStep)
}

// DistanceCutoff converts a similarity decision threshold into a banded-DTW
// distance cutoff for series of lengths n and m: any pair whose distance
// exceeds the cutoff has similarity strictly below minSim. The cutoff
// carries a tiny upward slack so that floating-point rounding in the
// exp/log round trip can never prune a pair the exact score would keep —
// borderline pairs fall through to the full computation instead.
// Thresholds ≤ 0 yield +Inf (nothing is prunable).
func DistanceCutoff(minSim float64, n, m int) float64 {
	if minSim <= 0 {
		return math.Inf(1)
	}
	cut := -math.Log(minSim) / similaritySharpness * float64(n+m)
	return cut*(1+1e-9) + 1e-9
}

// CascadeSimilarity is Aligner.Similarity(a.Raw(), b.Raw()) behind the
// LB_Kim → LB_Keogh → early-abandon cascade. When the returned stage is
// StageFull the similarity is exact — computed by the same operations, on
// the same precomputed normalisation, as the unaccelerated call. Any other
// stage means the pair was proven to score strictly below minSim and the
// returned similarity is 0, a placeholder callers must not report.
func (al *Aligner) CascadeSimilarity(a, b *Series, minSim float64) (float64, Stage) {
	n, m := a.Len(), b.Len()
	if n == 0 || m == 0 {
		return 0, StageFull // Similarity's empty-input contract: exact 0.
	}
	cutoff := DistanceCutoff(minSim, n, m)
	if !math.IsInf(cutoff, 1) {
		if LBKim(a, b) > cutoff {
			return 0, StageLBKim
		}
		if LBKeogh(a, b) > cutoff || LBKeogh(b, a) > cutoff {
			return 0, StageLBKeogh
		}
	}
	d := al.DistanceBandEA(a.norm, b.norm, bandFor(n, m), cutoff)
	if math.IsInf(d, 1) {
		return 0, StageAbandoned
	}
	return SimilarityFromDistance(d, n, m), StageFull
}
