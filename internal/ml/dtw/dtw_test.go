package dtw_test

import (
	"math"
	"testing"
	"testing/quick"

	"ltefp/internal/ml/dtw"
	"ltefp/internal/sim"
)

func TestIdentity(t *testing.T) {
	a := []float64{1, 3, 2, 5, 4}
	if d := dtw.Distance(a, a); d != 0 {
		t.Fatalf("Distance(a, a) = %v", d)
	}
}

func TestKnownSmallExample(t *testing.T) {
	// [0, 1] vs [0, 0, 1]: warping aligns the repeated 0, cost 0.
	if d := dtw.Distance([]float64{0, 1}, []float64{0, 0, 1}); d != 0 {
		t.Fatalf("warpable pair distance = %v, want 0", d)
	}
	// [0] vs [1]: single squared difference.
	if d := dtw.Distance([]float64{0}, []float64{1}); d != 1 {
		t.Fatalf("Distance([0], [1]) = %v, want 1", d)
	}
	// Eq. 1 hand-check: [1, 2] vs [3]: (1-3)² + (2-3)² = 5.
	if d := dtw.Distance([]float64{1, 2}, []float64{3}); d != 5 {
		t.Fatalf("hand-checked distance = %v, want 5", d)
	}
}

func TestEmptyInputs(t *testing.T) {
	if d := dtw.Distance(nil, nil); d != 0 {
		t.Fatalf("Distance(nil, nil) = %v", d)
	}
	if d := dtw.Distance([]float64{1}, nil); !math.IsInf(d, 1) {
		t.Fatalf("Distance(a, nil) = %v, want +Inf", d)
	}
}

// TestSymmetry: DTW with a symmetric step pattern is symmetric.
func TestSymmetry(t *testing.T) {
	g := sim.NewRNG(1)
	f := func(seedA, seedB uint8) bool {
		a := series(g, 5+int(seedA)%30)
		b := series(g, 5+int(seedB)%30)
		return math.Abs(dtw.Distance(a, b)-dtw.Distance(b, a)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestBandIsLowerBounded: constraining the warping path can only increase
// the distance.
func TestBandIsLowerBounded(t *testing.T) {
	g := sim.NewRNG(2)
	for i := 0; i < 50; i++ {
		a := series(g, 40)
		b := series(g, 40)
		free := dtw.Distance(a, b)
		banded := dtw.DistanceBand(a, b, 3)
		if banded < free-1e-9 {
			t.Fatalf("banded %v < unconstrained %v", banded, free)
		}
	}
}

func TestBandCoversLengthDifference(t *testing.T) {
	a := series(sim.NewRNG(3), 50)
	b := series(sim.NewRNG(4), 10)
	if d := dtw.DistanceBand(a, b, 0); math.IsInf(d, 1) {
		t.Fatal("band narrower than the length difference returned +Inf; it must be widened internally")
	}
}

func TestNormalize(t *testing.T) {
	n := dtw.Normalize([]float64{2, 4, 6})
	var mean, sq float64
	for _, v := range n {
		mean += v
		sq += v * v
	}
	mean /= 3
	if math.Abs(mean) > 1e-9 {
		t.Fatalf("normalised mean = %v", mean)
	}
	if math.Abs(sq/3-1) > 1e-9 {
		t.Fatalf("normalised variance = %v", sq/3)
	}
	flat := dtw.Normalize([]float64{5, 5, 5})
	for _, v := range flat {
		if v != 0 {
			t.Fatal("constant series should normalise to zeros")
		}
	}
}

func TestSimilarityRange(t *testing.T) {
	g := sim.NewRNG(5)
	a := series(g, 60)
	if s := dtw.Similarity(a, a); math.Abs(s-1) > 1e-9 {
		t.Fatalf("self-similarity = %v", s)
	}
	b := series(g, 60)
	s := dtw.Similarity(a, b)
	if s <= 0 || s >= 1 {
		t.Fatalf("cross-similarity = %v outside (0, 1)", s)
	}
	if dtw.Similarity(nil, a) != 0 {
		t.Fatal("similarity with empty series should be 0")
	}
}

func TestSimilarityOrdering(t *testing.T) {
	g := sim.NewRNG(6)
	base := series(g, 80)
	near := make([]float64, len(base))
	for i, v := range base {
		near[i] = v + g.Normal(0, 0.1)
	}
	far := series(g, 80)
	if dtw.Similarity(base, near) <= dtw.Similarity(base, far) {
		t.Fatal("a perturbed copy scored no closer than an unrelated series")
	}
}

func series(g *sim.RNG, n int) []float64 {
	out := make([]float64, n)
	v := 0.0
	for i := range out {
		v += g.Normal(0, 1)
		out[i] = v
	}
	return out
}
