package dtw

import "testing"

// TestEnvelopeMatchesNaive checks the monotonic-deque envelope against a
// quadratic windowed min/max, including the clamped edges.
func TestEnvelopeMatchesNaive(t *testing.T) {
	cases := []struct {
		name string
		x    []float64
		r    int
	}{
		{"empty", nil, 3},
		{"single", []float64{4}, 2},
		{"zero_radius", []float64{3, 1, 2, 5, 4}, 0},
		{"small", []float64{3, 1, 2, 5, 4, 0, 7, 6}, 2},
		{"radius_covers_all", []float64{9, -2, 4, 4, 1}, 10},
		{"plateaus", []float64{1, 1, 1, 2, 2, 0, 0, 3}, 1},
	}
	for _, c := range cases {
		upper, lower := envelope(c.x, c.r)
		if len(upper) != len(c.x) || len(lower) != len(c.x) {
			t.Fatalf("%s: envelope lengths %d/%d, want %d", c.name, len(upper), len(lower), len(c.x))
		}
		for i := range c.x {
			wantU, wantL := c.x[i], c.x[i]
			for j := i - c.r; j <= i+c.r; j++ {
				if j < 0 || j >= len(c.x) {
					continue
				}
				if c.x[j] > wantU {
					wantU = c.x[j]
				}
				if c.x[j] < wantL {
					wantL = c.x[j]
				}
			}
			if upper[i] != wantU || lower[i] != wantL {
				t.Fatalf("%s: envelope[%d] = (%v, %v), want (%v, %v)",
					c.name, i, upper[i], lower[i], wantU, wantL)
			}
		}
	}
}
