package dtw_test

import (
	"math"
	"testing"

	"ltefp/internal/ml/dtw"
	"ltefp/internal/sim"
)

// normBand reproduces the internals Similarity applies to a pair: both
// series z-normalised and the 10% Sakoe-Chiba half-width.
func normBand(a, b []float64) (na, nb []float64, band int) {
	na, nb = dtw.Normalize(a), dtw.Normalize(b)
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	return na, nb, (n + 9) / 10
}

// TestSelfBoundsAreZero: every point sits inside its own envelope, so a
// series compared against itself must bound (and measure) distance zero.
func TestSelfBoundsAreZero(t *testing.T) {
	g := sim.NewRNG(10)
	for trial := 0; trial < 20; trial++ {
		s := dtw.NewSeries(series(g, 5+g.IntN(80)))
		if lb := dtw.LBKim(s, s); lb != 0 {
			t.Fatalf("LBKim(s, s) = %v", lb)
		}
		if lb := dtw.LBKeogh(s, s); lb != 0 {
			t.Fatalf("LBKeogh(s, s) = %v", lb)
		}
		al := dtw.NewAligner()
		if sim, stage := al.CascadeSimilarity(s, s, 0.99); stage != dtw.StageFull || sim != 1 {
			t.Fatalf("self cascade = (%v, %v), want (1, StageFull)", sim, stage)
		}
	}
}

// TestLowerBoundCascadeOrder: on random equal-length series the cascade's
// bounds must be ordered LB_Kim ≤ LB_Keogh ≤ banded DTW distance of the
// normalised series (the quantity Similarity thresholds).
func TestLowerBoundCascadeOrder(t *testing.T) {
	g := sim.NewRNG(11)
	al := dtw.NewAligner()
	for trial := 0; trial < 200; trial++ {
		n := 2 + g.IntN(120)
		sa := dtw.NewSeries(series(g, n))
		sb := dtw.NewSeries(series(g, n))
		kim := dtw.LBKim(sa, sb)
		keoghAB := dtw.LBKeogh(sa, sb)
		keoghBA := dtw.LBKeogh(sb, sa)
		_, _, band := normBand(sa.Raw(), sb.Raw())
		d := al.DistanceBand(sa.Norm(), sb.Norm(), band)
		if kim > keoghAB || kim > keoghBA {
			t.Fatalf("n=%d: LB_Kim %v above LB_Keogh (%v, %v)", n, kim, keoghAB, keoghBA)
		}
		slack := 1e-12 + 1e-12*d
		if keoghAB > d+slack || keoghBA > d+slack {
			t.Fatalf("n=%d: LB_Keogh (%v, %v) above banded DTW %v", n, keoghAB, keoghBA, d)
		}
		if kim > d+slack {
			t.Fatalf("n=%d: LB_Kim %v above banded DTW %v", n, kim, d)
		}
	}
}

// TestLBKeoghUnequalLengthsFallsBack: with unequal lengths the envelope
// bound is undefined under this construction; it must degrade to LBKim,
// which stays a valid bound.
func TestLBKeoghUnequalLengthsFallsBack(t *testing.T) {
	g := sim.NewRNG(12)
	sa := dtw.NewSeries(series(g, 40))
	sb := dtw.NewSeries(series(g, 55))
	if got, want := dtw.LBKeogh(sa, sb), dtw.LBKim(sa, sb); got != want {
		t.Fatalf("unequal-length LBKeogh = %v, want LBKim %v", got, want)
	}
	_, _, band := normBand(sa.Raw(), sb.Raw())
	d := dtw.DistanceBand(sa.Norm(), sb.Norm(), band)
	if kim := dtw.LBKim(sa, sb); kim > d+1e-12 {
		t.Fatalf("LBKim %v above banded DTW %v for unequal lengths", kim, d)
	}
}

// TestEarlyAbandonInfCutoffIsExact: with cutoff = +Inf the early-abandoning
// recurrence must return the DistanceBand result bit-for-bit.
func TestEarlyAbandonInfCutoffIsExact(t *testing.T) {
	g := sim.NewRNG(13)
	al := dtw.NewAligner()
	for trial := 0; trial < 100; trial++ {
		a := series(g, 1+g.IntN(90))
		b := series(g, 1+g.IntN(90))
		band := -1
		if trial%2 == 0 {
			band = g.IntN(12)
		}
		want := al.DistanceBand(a, b, band)
		got := al.DistanceBandEA(a, b, band, math.Inf(1))
		if got != want {
			t.Fatalf("EA(+Inf) = %v, DistanceBand = %v", got, want)
		}
	}
}

// TestEarlyAbandonConsistency: a finite EA result must equal DistanceBand
// exactly, and an abandoned comparison must have a true distance above the
// cutoff.
func TestEarlyAbandonConsistency(t *testing.T) {
	g := sim.NewRNG(14)
	al := dtw.NewAligner()
	abandoned, completed := 0, 0
	for trial := 0; trial < 200; trial++ {
		a := series(g, 30+g.IntN(40))
		b := series(g, 30+g.IntN(40))
		band := 4 + g.IntN(8)
		exact := al.DistanceBand(a, b, band)
		cutoff := exact * g.Uniform(0.2, 1.8)
		got := al.DistanceBandEA(a, b, band, cutoff)
		if math.IsInf(got, 1) {
			abandoned++
			if exact <= cutoff {
				t.Fatalf("abandoned although exact %v <= cutoff %v", exact, cutoff)
			}
		} else {
			completed++
			if got != exact {
				t.Fatalf("completed EA = %v, exact = %v", got, exact)
			}
		}
	}
	if abandoned == 0 || completed == 0 {
		t.Fatalf("degenerate trial mix: %d abandoned, %d completed", abandoned, completed)
	}
}

// TestCascadeSimilarityExact: for every stage outcome the cascade must be
// consistent with the unaccelerated Similarity — bit-identical when it runs
// to completion, provably below the threshold when it prunes.
func TestCascadeSimilarityExact(t *testing.T) {
	g := sim.NewRNG(15)
	al := dtw.NewAligner()
	ref := dtw.NewAligner()
	counts := map[dtw.Stage]int{}
	for trial := 0; trial < 300; trial++ {
		n := 2 + g.IntN(100)
		raw1, raw2 := series(g, n), series(g, n)
		if trial%5 == 0 { // near-identical pairs keep the survive path hot
			raw2 = append([]float64(nil), raw1...)
			for i := range raw2 {
				raw2[i] += g.Normal(0, 0.05)
			}
		}
		sa, sb := dtw.NewSeries(raw1), dtw.NewSeries(raw2)
		minSim := g.Uniform(0, 1)
		if trial%7 == 0 {
			minSim = 0
		}
		got, stage := al.CascadeSimilarity(sa, sb, minSim)
		want := ref.Similarity(raw1, raw2)
		counts[stage]++
		if stage == dtw.StageFull {
			if got != want {
				t.Fatalf("StageFull similarity %v != Similarity %v", got, want)
			}
		} else if want >= minSim {
			t.Fatalf("stage %v pruned a pair scoring %v >= threshold %v", stage, want, minSim)
		}
	}
	if counts[dtw.StageFull] == 0 {
		t.Fatal("cascade never completed a comparison")
	}
	if counts[dtw.StageLBKim]+counts[dtw.StageLBKeogh]+counts[dtw.StageAbandoned] == 0 {
		t.Fatal("cascade never pruned a comparison")
	}
}

// TestCascadeSimilarityEmpty: empty inputs keep Similarity's exact
// contract (score 0, no prune stage).
func TestCascadeSimilarityEmpty(t *testing.T) {
	al := dtw.NewAligner()
	empty := dtw.NewSeries(nil)
	full := dtw.NewSeries([]float64{1, 2, 3})
	if got, stage := al.CascadeSimilarity(empty, full, 0.5); got != 0 || stage != dtw.StageFull {
		t.Fatalf("empty series cascade = (%v, %v), want (0, StageFull)", got, stage)
	}
}

// TestDistanceCutoffRoundTrip: the threshold-to-cutoff conversion must be
// conservative — a distance at or below the true boundary never prunes.
func TestDistanceCutoffRoundTrip(t *testing.T) {
	g := sim.NewRNG(16)
	for trial := 0; trial < 500; trial++ {
		n := 10 + g.IntN(600)
		minSim := g.Uniform(1e-6, 1)
		cutoff := dtw.DistanceCutoff(minSim, n, n)
		// Any distance whose similarity clears the threshold must sit at or
		// below the cutoff — otherwise the cascade could prune a keeper.
		d := g.Uniform(0, 2*cutoff)
		if dtw.SimilarityFromDistance(d, n, n) >= minSim && d > cutoff {
			t.Fatalf("similarity %v >= %v but d %v > cutoff %v",
				dtw.SimilarityFromDistance(d, n, n), minSim, d, cutoff)
		}
	}
	if !math.IsInf(dtw.DistanceCutoff(0, 10, 10), 1) {
		t.Fatal("threshold 0 must disable pruning")
	}
	if !math.IsInf(dtw.DistanceCutoff(-1, 10, 10), 1) {
		t.Fatal("negative threshold must disable pruning")
	}
}

// TestStageString pins the funnel labels.
func TestStageString(t *testing.T) {
	want := map[dtw.Stage]string{
		dtw.StageFull:      "full",
		dtw.StageLBKim:     "lb_kim",
		dtw.StageLBKeogh:   "lb_keogh",
		dtw.StageAbandoned: "abandoned",
		dtw.Stage(200):     "unknown",
	}
	for s, w := range want {
		if s.String() != w {
			t.Fatalf("Stage(%d).String() = %q, want %q", s, s.String(), w)
		}
	}
}

// TestCascadeAllocs: the warmed cascade path — series prebuilt, aligner
// reused — must not allocate per comparison, same discipline as the plain
// aligner.
func TestCascadeAllocs(t *testing.T) {
	g := sim.NewRNG(17)
	x, y := series(g, 300), series(g, 300)
	sa, sb := dtw.NewSeries(x), dtw.NewSeries(y)
	al := dtw.NewAligner()
	al.CascadeSimilarity(sa, sb, 0.5) // warm scratch
	if n := testing.AllocsPerRun(50, func() {
		al.CascadeSimilarity(sa, sb, 0.5)
		al.DistanceBandEA(sa.Norm(), sb.Norm(), 30, math.Inf(1))
	}); n != 0 {
		t.Fatalf("cascade path allocates %.1f per run, want 0", n)
	}
	al.Similarity(x, y)
	if n := testing.AllocsPerRun(50, func() { al.Similarity(x, y) }); n != 0 {
		t.Fatalf("warmed Aligner.Similarity allocates %.1f per run, want 0", n)
	}
}
