// Package knn implements brute-force k-nearest-neighbour classification
// with Euclidean distance, the second-best learner in the paper's Table
// VIII benchmark (k = 4, selected by cross-validation over k = 1..10).
package knn

import (
	"fmt"
	"math"

	"ltefp/internal/ml/dataset"
	"ltefp/internal/sim"
)

// Model is a fitted (memorised) kNN classifier. Inputs should be
// standardised; the model stores its own scaler.
type Model struct {
	K       int
	Classes []string

	scaler *dataset.Scaler
	x      [][]float64
	y      []int
}

// Train fits a kNN model (which memorises the standardised training set).
func Train(d *dataset.Dataset, k int) (*Model, error) {
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("knn: %w", err)
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("knn: empty training set")
	}
	if k < 1 {
		return nil, fmt.Errorf("knn: k = %d < 1", k)
	}
	if k > d.Len() {
		k = d.Len()
	}
	sc := dataset.FitScaler(d)
	scaled := sc.TransformAll(d)
	return &Model{K: k, Classes: d.Classes, scaler: sc, x: scaled.X, y: scaled.Y}, nil
}

// Predict returns the majority class among the k nearest neighbours of x
// (ties break toward the nearer neighbour's class).
func (m *Model) Predict(x []float64) int {
	q := m.scaler.Transform(x)
	// Bounded insertion into a small top-k list: k is tiny, n is large.
	type hit struct {
		d2 float64
		y  int
	}
	top := make([]hit, 0, m.K)
	worst := math.Inf(1)
	for i, row := range m.x {
		d2 := sqDist(q, row)
		if len(top) == m.K && d2 >= worst {
			continue
		}
		h := hit{d2: d2, y: m.y[i]}
		if len(top) < m.K {
			top = append(top, hit{})
		}
		j := len(top) - 1
		for j > 0 && top[j-1].d2 > h.d2 {
			top[j] = top[j-1]
			j--
		}
		top[j] = h
		worst = top[len(top)-1].d2
	}
	votes := make([]int, len(m.Classes))
	for _, h := range top {
		votes[h.y]++
	}
	best, bv := top[0].y, -1
	for c, v := range votes {
		if v > bv {
			best, bv = c, v
		}
	}
	return best
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// SelectK reproduces the paper's model selection: it evaluates k = 1..kMax
// by cross-validated accuracy and returns the best k.
func SelectK(d *dataset.Dataset, kMax, folds int, rng *sim.RNG) (int, error) {
	if err := d.Validate(); err != nil {
		return 0, fmt.Errorf("knn: %w", err)
	}
	bestK, bestAcc := 1, -1.0
	fs := d.KFold(folds, rng)
	for k := 1; k <= kMax; k++ {
		correct, total := 0, 0
		for _, f := range fs {
			m, err := Train(f.Train, k)
			if err != nil {
				return 0, err
			}
			for i, x := range f.Test.X {
				if m.Predict(x) == f.Test.Y[i] {
					correct++
				}
				total++
			}
		}
		if acc := float64(correct) / float64(total); acc > bestAcc {
			bestK, bestAcc = k, acc
		}
	}
	return bestK, nil
}
