package knn_test

import (
	"testing"

	"ltefp/internal/ml/dataset"
	"ltefp/internal/ml/knn"
	"ltefp/internal/sim"
)

func TestExactNeighbours(t *testing.T) {
	ds := dataset.New([]string{"left", "right"}, nil)
	// Clearly separated clusters on one axis.
	for i := 0; i < 10; i++ {
		ds.Add([]float64{float64(i) / 10, 0}, 0)
		ds.Add([]float64{10 + float64(i)/10, 0}, 1)
	}
	m, err := knn.Train(ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{0.5, 0}); got != 0 {
		t.Fatalf("Predict(left point) = %d", got)
	}
	if got := m.Predict([]float64{10.5, 0}); got != 1 {
		t.Fatalf("Predict(right point) = %d", got)
	}
}

func TestKClamped(t *testing.T) {
	ds := dataset.New([]string{"a"}, nil)
	ds.Add([]float64{0}, 0)
	ds.Add([]float64{1}, 0)
	m, err := knn.Train(ds, 10)
	if err != nil {
		t.Fatal(err)
	}
	if m.K != 2 {
		t.Fatalf("K = %d, want clamped to 2", m.K)
	}
}

func TestErrors(t *testing.T) {
	ds := dataset.New([]string{"a"}, nil)
	if _, err := knn.Train(ds, 1); err == nil {
		t.Fatal("empty training set accepted")
	}
	ds.Add([]float64{1}, 0)
	if _, err := knn.Train(ds, 0); err == nil {
		t.Fatal("k = 0 accepted")
	}
}

func TestSeparableAccuracy(t *testing.T) {
	g := sim.NewRNG(1)
	ds := dataset.New([]string{"a", "b", "c"}, nil)
	for i := 0; i < 900; i++ {
		y := i % 3
		ds.Add([]float64{g.Normal(float64(4*y), 1), g.Normal(-float64(2*y), 1)}, y)
	}
	train, test := ds.Split(0.8, sim.NewRNG(2))
	m, err := knn.Train(train, 4)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, x := range test.X {
		if m.Predict(x) == test.Y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(test.Len()); acc < 0.9 {
		t.Fatalf("accuracy = %.3f", acc)
	}
}

func TestSelectK(t *testing.T) {
	g := sim.NewRNG(3)
	ds := dataset.New([]string{"a", "b"}, nil)
	for i := 0; i < 200; i++ {
		y := i % 2
		ds.Add([]float64{g.Normal(float64(3*y), 1)}, y)
	}
	k, err := knn.SelectK(ds, 6, 4, sim.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	if k < 1 || k > 6 {
		t.Fatalf("SelectK = %d outside the searched range", k)
	}
}
