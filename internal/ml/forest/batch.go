package forest

import (
	"math"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
)

// predictStackClasses bounds the class count for which single-row
// prediction can use a stack buffer instead of allocating.
const predictStackClasses = 16

// PredictInto accumulates the soft-voted class distribution for x into
// out (len(out) must equal len(f.Classes)) and returns the most probable
// class index. It allocates nothing, making it the building block for
// high-rate window classification.
func (f *Forest) PredictInto(x []float64, out []float64) int {
	for i := range out {
		out[i] = 0
	}
	for i := range f.Trees {
		f.Trees[i].predict(x, out)
	}
	return normalizeArgmax(out)
}

// normalizeArgmax scales a vote accumulator into a distribution and
// returns the argmax, with the exact float operations and first-wins
// tie-break of the original PredictProba/Predict pair.
func normalizeArgmax(out []float64) int {
	total := 0.0
	for _, v := range out {
		total += v
	}
	if total > 0 {
		for i := range out {
			out[i] /= total
		}
	}
	best, bv := 0, out[0]
	for i, v := range out {
		if v > bv {
			best, bv = i, v
		}
	}
	return best
}

// predictBatchChunk sizes the row chunks walked per tree sweep. It is a
// cache budget, not just a parallelism grain: a chunk's vote accumulators
// and feature rows (~100KB at 256 rows) plus one tree's nodes must stay
// cache-resident across the whole tree-major sweep, so the serial path
// chunks exactly like the worker pool does.
const predictBatchChunk = 256

// packedNode is the 16-byte traversal form of a Node used by batch
// prediction: four nodes per cache line instead of one Node (48 bytes +
// Dist header). Tree growth emits nodes in DFS preorder, so an internal
// node's left child is always the next node — only the right index is
// stored, and the ≤ branch is a plain increment.
//
// The threshold is held as its order-preserving integer key (orderedKey):
// an unsigned compare is something the compiler will lower to a
// conditional move, where a float compare (with its NaN semantics) always
// compiles to a data-dependent branch that mispredicts half the time.
// Leaves are encoded as self-loops (key 0, feature 0, right pointing at
// the node itself): no feature key is ever ≤ 0, so a step taken from a
// leaf goes nowhere, the walker detects arrival as "the step did not
// move", and the descent loop body needs no leaf branch at all.
type packedNode struct {
	key   uint64
	feat  int32
	right int32
}

// orderedKey maps a float64 onto a uint64 whose unsigned order matches
// float order for every non-NaN value: negative floats are bit-inverted,
// non-negative floats get the sign bit, and -0 is first folded onto +0 so
// the two zeroes compare equal. No value maps to 0 (the leaf self-loop
// key): the smallest reachable key is orderedKey(NaN with a negative
// sign), and the features this forest sees — counts, durations, ratios —
// are never NaN by construction (a NaN feature would already make the
// trainer's split ordering unspecified).
func orderedKey(f float64) uint64 {
	const sign = 1 << 63
	b := math.Float64bits(f)
	if b == sign {
		b = 0
	}
	if b&sign != 0 {
		return ^b
	}
	return b | sign
}

// batchRep is the compact whole-forest form walked by predictChunk: all
// trees' nodes in one flat array (start[t] is tree t's root, internal
// right indices are absolute) and all leaf distributions in one arena,
// with leafOff[i] giving node i's offset into it (valid only at leaves).
// The arena is widened to float64 at build time — the float32→float64
// conversion is exact, so hoisting it out of the accumulation loop cannot
// change a single result bit.
type batchRep struct {
	nodes   []packedNode
	start   []int32
	leafOff []int32
	dists   []float64
}

// packed returns the forest's compact traversal form, building it on
// first use. The build is cheap (one pass over the nodes) relative to any
// batch large enough to want this path.
func (f *Forest) packed() *batchRep {
	f.packOnce.Do(func() {
		total := 0
		for i := range f.Trees {
			total += len(f.Trees[i].Nodes)
		}
		rep := &batchRep{
			nodes:   make([]packedNode, total),
			start:   make([]int32, len(f.Trees)),
			leafOff: make([]int32, total),
			dists:   make([]float64, 0, total*len(f.Classes)/2),
		}
		base := int32(0)
		for ti := range f.Trees {
			rep.start[ti] = base
			for j := range f.Trees[ti].Nodes {
				n := &f.Trees[ti].Nodes[j]
				self := base + int32(j)
				p := &rep.nodes[self]
				if n.Feature == leafMark {
					p.key = 0
					p.feat = 0
					p.right = self
					rep.leafOff[self] = int32(len(rep.dists))
					for _, d := range n.Dist {
						rep.dists = append(rep.dists, float64(d))
					}
				} else {
					p.key = orderedKey(n.Threshold)
					p.feat = n.Feature
					p.right = base + n.Right
				}
			}
			base += int32(len(f.Trees[ti].Nodes))
		}
		f.pack = rep
	})
	return f.pack
}

// PredictBatch classifies every row of X and returns the predicted class
// indices. Within each chunk trees are walked in tree-major order so one
// tree's nodes stay hot in cache across many rows, and when GOMAXPROCS
// allows it chunks are spread over a bounded worker pool — several times
// faster than calling Predict per row either way. Results are identical
// to per-row Predict regardless of worker scheduling.
func (f *Forest) PredictBatch(X [][]float64) []int {
	out := make([]int, len(X))
	f.PredictBatchInto(X, out)
	return out
}

// PredictBatchInto is PredictBatch writing into a caller-owned slice
// (len(out) must equal len(X)).
func (f *Forest) PredictBatchInto(X [][]float64, out []int) {
	var s BatchScratch
	f.PredictBatchScratch(X, out, &s)
}

// BatchScratch carries PredictBatchScratch's per-call working memory — the
// vote accumulators and integer feature keys — so a caller classifying a
// stream of small batches reuses one set of buffers instead of allocating
// two slices per call. The zero value is ready; a scratch must not be
// shared between concurrent calls.
type BatchScratch struct {
	probs []float64
	keys  []uint64
}

// probsFor returns a zeroed n-float accumulator, growing the backing store
// only when a batch exceeds every earlier one.
func (s *BatchScratch) probsFor(n int) []float64 {
	if cap(s.probs) < n {
		s.probs = make([]float64, n)
		return s.probs
	}
	p := s.probs[:n]
	clear(p)
	return p
}

// keysFor returns an n-key scratch; contents are fully overwritten by the
// chunk walk, so no clearing is needed.
func (s *BatchScratch) keysFor(n int) []uint64 {
	if cap(s.keys) < n {
		s.keys = make([]uint64, n)
	}
	return s.keys[:n]
}

// PredictBatchScratch is PredictBatchInto with caller-owned working memory:
// steady-state it allocates nothing, which is what the streaming pipeline's
// per-batch classify path needs. Results are bit-identical to PredictBatch.
func (f *Forest) PredictBatchScratch(X [][]float64, out []int, s *BatchScratch) {
	if len(X) == 0 {
		return
	}
	if m := activeMetrics.Load(); m != nil {
		defer m.batchMS.Start().Stop()
		m.batchRows.Add(int64(len(X)))
	}
	if len(X[0]) == 0 {
		// Degenerate featureless rows: every tree is a bare leaf and the
		// packed walk's probe of x[0] would be out of range.
		probs := s.probsFor(len(f.Classes))
		for r, x := range X {
			out[r] = f.PredictInto(x, probs)
		}
		return
	}
	classes := len(f.Classes)
	dim := len(X[0])
	rep := f.packed()
	probs := s.probsFor(len(X) * classes)
	keys := s.keysFor(len(X) * dim)
	chunks := (len(X) + predictBatchChunk - 1) / predictBatchChunk
	workers := runtime.GOMAXPROCS(0)
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		// One sweep over the whole batch: reloading every tree per chunk
		// costs more than letting the accumulators stream through cache.
		f.predictChunk(rep, X, keys, probs, out)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				lo := c * predictBatchChunk
				hi := lo + predictBatchChunk
				if hi > len(X) {
					hi = len(X)
				}
				f.predictChunk(rep, X[lo:hi], keys[lo*dim:hi*dim], probs[lo*classes:hi*classes], out[lo:hi])
			}
		}()
	}
	wg.Wait()
}

// treePair walks two rows down one tree in lock step and returns the leaf
// node index each lands on. One row's walk is a serial chain of dependent
// node loads steered by data-dependent coin flips; running two
// independent chains overlaps their cache misses, and the branch-free
// loop body (each step is an unsigned compare-and-select; leaves
// self-loop instead of needing a leaf test) keeps one lane's step from
// flushing the other's in-flight work on a misprediction. A lane that
// lands early just re-selects its leaf until the deeper lane arrives; the
// loop exits when neither lane moved.
func treePair(nodes []packedNode, base int32, k0, k1 []uint64) (int32, int32) {
	i0, i1 := base, base
	for {
		n0 := nodes[i0]
		n1 := nodes[i1]
		// Branch-free select: borrow is 1 exactly when the feature key
		// exceeds the node key (go right), and the xor-mask picks between
		// left (i+1) and right without a data-dependent jump — the
		// compiler will not emit a conditional move on its own here, so
		// the select is spelled out in ALU ops.
		_, b0 := bits.Sub64(n0.key, k0[n0.feat], 0)
		_, b1 := bits.Sub64(n1.key, k1[n1.feat], 0)
		m0, m1 := -int32(b0), -int32(b1)
		j0 := (i0 + 1) ^ (((i0 + 1) ^ n0.right) & m0)
		j1 := (i1 + 1) ^ (((i1 + 1) ^ n1.right) & m1)
		if j0 == i0 && j1 == i1 {
			return i0, i1
		}
		i0, i1 = j0, j1
	}
}

// treeQuad is treePair over four lanes: deeper interleaving hides more of
// the node-load latency as long as the selects stay branch-free.
func treeQuad(nodes []packedNode, base int32, k0, k1, k2, k3 []uint64) (int32, int32, int32, int32) {
	i0, i1, i2, i3 := base, base, base, base
	for {
		n0 := nodes[i0]
		n1 := nodes[i1]
		n2 := nodes[i2]
		n3 := nodes[i3]
		_, b0 := bits.Sub64(n0.key, k0[n0.feat], 0)
		_, b1 := bits.Sub64(n1.key, k1[n1.feat], 0)
		_, b2 := bits.Sub64(n2.key, k2[n2.feat], 0)
		_, b3 := bits.Sub64(n3.key, k3[n3.feat], 0)
		j0 := (i0 + 1) ^ (((i0 + 1) ^ n0.right) & -int32(b0))
		j1 := (i1 + 1) ^ (((i1 + 1) ^ n1.right) & -int32(b1))
		j2 := (i2 + 1) ^ (((i2 + 1) ^ n2.right) & -int32(b2))
		j3 := (i3 + 1) ^ (((i3 + 1) ^ n3.right) & -int32(b3))
		if j0 == i0 && j1 == i1 && j2 == i2 && j3 == i3 {
			return i0, i1, i2, i3
		}
		i0, i1, i2, i3 = j0, j1, j2, j3
	}
}

// treeLanes descends laneCount rows through one tree concurrently: each
// lane is an independent chain of dependent node loads, so the core
// overlaps their cache misses, and every step is an arithmetic select
// (borrow → xor-mask) with no data-dependent branch to mispredict. Lanes
// that land early self-loop on their leaf until the deepest lane
// arrives; the loop exits when no lane moved. kb[l] is lane l's base
// offset into the flat keys matrix.
const laneCount = 16

func treeLanes(nodes []packedNode, base int32, keys []uint64, kb *[laneCount]int32) [laneCount]int32 {
	var li [laneCount]int32
	for l := range li {
		li[l] = base
	}
	for {
		moved := int32(0)
		for l := 0; l < laneCount; l++ {
			i := li[l]
			n := nodes[i]
			_, b := bits.Sub64(n.key, keys[kb[l]+n.feat], 0)
			j := (i + 1) ^ (((i + 1) ^ n.right) & -int32(b))
			li[l] = j
			moved |= j ^ i
		}
		if moved == 0 {
			return li
		}
	}
}

// predictChunk runs tree-major soft voting over one row chunk of the
// packed representation: rows are first mapped onto their integer feature
// keys, then one tree's nodes stay hot in cache across all rows of the
// chunk before the next tree starts, with rows descending in pairs (see
// treePair). probs is a zeroed len(X)*classes accumulator and keys a
// len(X)*dim scratch. Accumulation order (tree-major, then leaf
// distribution order) matches per-row Predict exactly, so results are
// bit-identical.
func (f *Forest) predictChunk(rep *batchRep, X [][]float64, keys []uint64, probs []float64, out []int) {
	classes := len(f.Classes)
	dim := len(X[0])
	nodes := rep.nodes
	dists := rep.dists
	for r, x := range X {
		kr := keys[r*dim : (r+1)*dim]
		for j, v := range x {
			kr[j] = orderedKey(v)
		}
	}
	for _, base := range rep.start {
		r := 0
		for ; r+laneCount <= len(X); r += laneCount {
			var kb [laneCount]int32
			for l := 0; l < laneCount; l++ {
				kb[l] = int32((r + l) * dim)
			}
			li := treeLanes(nodes, base, keys, &kb)
			for l, idx := range li {
				row := probs[(r+l)*classes : (r+l+1)*classes]
				off := rep.leafOff[idx]
				for c, p := range dists[off : off+int32(classes)] {
					row[c] += p
				}
			}
		}
		for ; r+4 <= len(X); r += 4 {
			l0, l1, l2, l3 := treeQuad(nodes, base,
				keys[r*dim:(r+1)*dim], keys[(r+1)*dim:(r+2)*dim],
				keys[(r+2)*dim:(r+3)*dim], keys[(r+3)*dim:(r+4)*dim])
			for l, li := range [4]int32{l0, l1, l2, l3} {
				row := probs[(r+l)*classes : (r+l+1)*classes]
				off := rep.leafOff[li]
				for c, p := range dists[off : off+int32(classes)] {
					row[c] += p
				}
			}
		}
		for ; r+2 <= len(X); r += 2 {
			l0, l1 := treePair(nodes, base, keys[r*dim:(r+1)*dim], keys[(r+1)*dim:(r+2)*dim])
			row := probs[r*classes : (r+1)*classes]
			off := rep.leafOff[l0]
			for c, p := range dists[off : off+int32(classes)] {
				row[c] += p
			}
			row = probs[(r+1)*classes : (r+2)*classes]
			off = rep.leafOff[l1]
			for c, p := range dists[off : off+int32(classes)] {
				row[c] += p
			}
		}
		for ; r < len(X); r++ {
			k := keys[r*dim : (r+1)*dim]
			i := base
			for {
				n := nodes[i]
				j := n.right
				if k[n.feat] <= n.key {
					j = i + 1
				}
				if j == i {
					break
				}
				i = j
			}
			row := probs[r*classes : (r+1)*classes]
			off := rep.leafOff[i]
			for c, p := range dists[off : off+int32(classes)] {
				row[c] += p
			}
		}
	}
	for r := range X {
		out[r] = normalizeArgmax(probs[r*classes : (r+1)*classes])
	}
}
