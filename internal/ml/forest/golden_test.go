package forest_test

import (
	"hash/fnv"
	"math"
	"runtime"
	"testing"

	"ltefp/internal/ml/dataset"
	"ltefp/internal/ml/forest"
	"ltefp/internal/sim"
)

// goldenDataset is a fixed 4-class dataset with deliberate duplicate
// feature values, so threshold tie-handling is covered.
func goldenDataset() *dataset.Dataset {
	g := sim.NewRNG(42)
	ds := dataset.New([]string{"a", "b", "c", "d"}, nil)
	for i := 0; i < 600; i++ {
		y := i % 4
		x := make([]float64, 12)
		for j := range x {
			x[j] = g.Normal(float64(y*(j%3)), 1.5)
		}
		if i%7 == 0 {
			x[3] = float64(y)
		}
		ds.Add(x, y)
	}
	return ds
}

// hashForest folds every structural and numeric detail of the trained
// trees — node order, features, threshold bits, links, distribution bits —
// into one FNV-1a digest.
func hashForest(f *forest.Forest) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put32 := func(v uint32) {
		buf[0] = byte(v)
		buf[1] = byte(v >> 8)
		buf[2] = byte(v >> 16)
		buf[3] = byte(v >> 24)
		h.Write(buf[:4])
	}
	put64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:8])
	}
	for _, t := range f.Trees {
		put32(uint32(len(t.Nodes)))
		for _, n := range t.Nodes {
			put32(uint32(n.Feature))
			put64(math.Float64bits(n.Threshold))
			put32(uint32(n.Left))
			put32(uint32(n.Right))
			put32(uint32(len(n.Dist)))
			for _, d := range n.Dist {
				put32(math.Float32bits(d))
			}
		}
	}
	return h.Sum64()
}

// TestGoldenTrees pins the trained forests to digests recorded from the
// original sort-per-node implementation: the presorted-column trainer must
// produce bit-identical trees. Do not update these constants to make the
// test pass — a mismatch means training semantics changed.
func TestGoldenTrees(t *testing.T) {
	ds := goldenDataset()
	for _, tc := range []struct {
		cfg  forest.Config
		want uint64
	}{
		{forest.Config{Trees: 12, Seed: 7}, 0xfb9d31037b32f666},
		{forest.Config{Trees: 5, Seed: 1, MaxDepth: 6, MinLeaf: 4}, 0x13baaf8f96eccade},
		{forest.Config{Trees: 3, Seed: 99, FeaturesPerSplit: 12, SubsampleSize: 200}, 0x814cff2269fff87a},
	} {
		f, err := forest.Train(ds, tc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := hashForest(f); got != tc.want {
			t.Errorf("cfg %+v: forest hash %#x, want golden %#x", tc.cfg, got, tc.want)
		}
	}
}

// TestWorkersDoNotChangeTrees: the same seed yields bit-identical forests
// at Workers=1 and Workers=GOMAXPROCS (and beyond), so parallel training
// never leaks scheduling into the model.
func TestWorkersDoNotChangeTrees(t *testing.T) {
	ds := goldenDataset()
	base, err := forest.Train(ds, forest.Config{Trees: 9, Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := hashForest(base)
	for _, w := range []int{runtime.GOMAXPROCS(0), 4, 13} {
		f, err := forest.Train(ds, forest.Config{Trees: 9, Seed: 5, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if got := hashForest(f); got != want {
			t.Errorf("Workers=%d: forest hash %#x != Workers=1 hash %#x", w, got, want)
		}
	}
}

// TestPredictBatchMatchesPredict: the tree-major batched path must return
// exactly what per-row Predict returns, including normalisation and
// tie-break behaviour.
func TestPredictBatchMatchesPredict(t *testing.T) {
	ds := goldenDataset()
	f, err := forest.Train(ds, forest.Config{Trees: 15, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	got := f.PredictBatch(ds.X)
	if len(got) != ds.Len() {
		t.Fatalf("batch returned %d predictions for %d rows", len(got), ds.Len())
	}
	for i, x := range ds.X {
		if want := f.Predict(x); got[i] != want {
			t.Fatalf("row %d: batch predicted %d, Predict %d", i, got[i], want)
		}
	}
	// Every batch size below the interleaving width takes a different
	// remainder path through predictChunk; cover them all.
	for _, n := range []int{0, 1, 2, 3, 4, 5, 6, 7, 9, 15, 16, 17, 18, 19, 21, 33} {
		sub := ds.X[:n]
		got := f.PredictBatch(sub)
		for i, x := range sub {
			if want := f.Predict(x); got[i] != want {
				t.Fatalf("size %d row %d: batch predicted %d, Predict %d", n, i, got[i], want)
			}
		}
	}
}

// TestPredictIntoMatchesProba: PredictInto fills the caller's buffer with
// the same distribution PredictProba allocates, and returns its argmax.
func TestPredictIntoMatchesProba(t *testing.T) {
	ds := goldenDataset()
	f, err := forest.Train(ds, forest.Config{Trees: 10, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, len(f.Classes))
	for _, x := range ds.X[:50] {
		best := f.PredictInto(x, buf)
		want := f.PredictProba(x)
		for c := range want {
			if buf[c] != want[c] {
				t.Fatalf("PredictInto distribution differs at class %d: %v vs %v", c, buf[c], want[c])
			}
		}
		if best != f.Predict(x) {
			t.Fatalf("PredictInto argmax %d != Predict %d", best, f.Predict(x))
		}
	}
}
