package forest

import (
	"sync/atomic"

	"ltefp/internal/obs"
)

// metrics holds the package's instrumentation handles. A nil *metrics (the
// default) disables instrumentation; the hot paths load the pointer once
// per call and skip everything on nil.
type metrics struct {
	trainMS   *obs.Histogram
	trainRows *obs.Counter
	batchMS   *obs.Histogram
	batchRows *obs.Counter
}

var activeMetrics atomic.Pointer[metrics]

// SetMetrics points the package's training and batch-inference
// instrumentation at a scope: train_ms / batch_ms latency histograms and
// rows_trained / rows_predicted throughput counters. A disabled scope
// turns instrumentation off. Safe to call concurrently with inference.
func SetMetrics(sc obs.Scope) {
	if !sc.Enabled() {
		activeMetrics.Store(nil)
		return
	}
	activeMetrics.Store(&metrics{
		trainMS:   sc.Histogram("train_ms", nil),
		trainRows: sc.Counter("rows_trained"),
		batchMS:   sc.Histogram("batch_ms", nil),
		batchRows: sc.Counter("rows_predicted"),
	})
}
