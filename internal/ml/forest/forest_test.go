package forest_test

import (
	"math"
	"testing"
	"testing/quick"

	"ltefp/internal/ml/dataset"
	"ltefp/internal/ml/forest"
	"ltefp/internal/sim"
)

// blobs builds a well-separated 3-class dataset.
func blobs(n int, seed uint64, sep float64) *dataset.Dataset {
	g := sim.NewRNG(seed)
	ds := dataset.New([]string{"a", "b", "c"}, nil)
	for i := 0; i < n; i++ {
		y := i % 3
		x := make([]float64, 6)
		for j := range x {
			x[j] = g.Normal(sep*float64(y*(j%2)), 1)
		}
		ds.Add(x, y)
	}
	return ds
}

func accuracy(t *testing.T, f *forest.Forest, ds *dataset.Dataset) float64 {
	t.Helper()
	correct := 0
	for i, x := range ds.X {
		if f.Predict(x) == ds.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(ds.Len())
}

func TestSeparableAccuracy(t *testing.T) {
	ds := blobs(1500, 1, 4)
	train, test := ds.Split(0.8, sim.NewRNG(2))
	f, err := forest.Train(train, forest.Config{Trees: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(t, f, test); acc < 0.97 {
		t.Fatalf("accuracy on separable blobs = %.3f", acc)
	}
}

func TestDeterministicInSeed(t *testing.T) {
	ds := blobs(300, 3, 2)
	a, err := forest.Train(ds, forest.Config{Trees: 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := forest.Train(ds, forest.Config{Trees: 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range ds.X {
		pa, pb := a.PredictProba(x), b.PredictProba(x)
		for c := range pa {
			if pa[c] != pb[c] {
				t.Fatalf("row %d: same seed, different probabilities", i)
			}
		}
	}
	c, err := forest.Train(ds, forest.Config{Trees: 10, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for _, x := range ds.X {
		if a.Predict(x) != c.Predict(x) {
			same = false
			break
		}
	}
	if same {
		// Not strictly impossible, but on 300 rows two different seeds
		// agreeing everywhere indicates the seed is ignored.
		t.Log("warning: different seeds produced identical predictions")
	}
}

// TestProbaIsDistribution: predicted probabilities are a distribution over
// classes for arbitrary inputs.
func TestProbaIsDistribution(t *testing.T) {
	ds := blobs(300, 4, 3)
	f, err := forest.Train(ds, forest.Config{Trees: 15, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fn := func(a, b, c, d, e, g float64) bool {
		p := f.PredictProba([]float64{a, b, c, d, e, g})
		sum := 0.0
		for _, v := range p {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxDepthLimitsTree(t *testing.T) {
	ds := blobs(600, 5, 1)
	stump, err := forest.Train(ds, forest.Config{Trees: 5, MaxDepth: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	deep, err := forest.Train(ds, forest.Config{Trees: 5, MaxDepth: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range stump.Trees {
		if len(tr.Nodes) > 3 {
			t.Fatalf("depth-1 tree has %d nodes", len(tr.Nodes))
		}
	}
	if accuracy(t, deep, ds) <= accuracy(t, stump, ds) {
		t.Fatal("deep forest no better than stumps on training data")
	}
}

func TestErrors(t *testing.T) {
	empty := dataset.New([]string{"a"}, nil)
	if _, err := forest.Train(empty, forest.Config{}); err == nil {
		t.Fatal("empty training set accepted")
	}
	bad := dataset.New([]string{"a"}, nil)
	bad.Add([]float64{1}, 0)
	bad.Y[0] = 5
	if _, err := forest.Train(bad, forest.Config{}); err == nil {
		t.Fatal("invalid dataset accepted")
	}
}

func TestSingleClass(t *testing.T) {
	ds := dataset.New([]string{"only", "other"}, nil)
	for i := 0; i < 20; i++ {
		ds.Add([]float64{float64(i)}, 0)
	}
	f, err := forest.Train(ds, forest.Config{Trees: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if f.Predict([]float64{3}) != 0 {
		t.Fatal("pure forest mispredicts its only class")
	}
}
