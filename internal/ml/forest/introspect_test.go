package forest_test

import (
	"math"
	"testing"

	"ltefp/internal/ml/dataset"
	"ltefp/internal/ml/forest"
	"ltefp/internal/sim"
)

func TestFeatureImportanceFindsSignal(t *testing.T) {
	g := sim.NewRNG(1)
	ds := dataset.New([]string{"a", "b"}, nil)
	// Only feature 2 carries label information.
	for i := 0; i < 600; i++ {
		y := i % 2
		x := make([]float64, 5)
		for j := range x {
			x[j] = g.Normal(0, 1)
		}
		x[2] += float64(6 * y)
		ds.Add(x, y)
	}
	f, err := forest.Train(ds, forest.Config{Trees: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	imp := f.FeatureImportance(5)
	sum := 0.0
	best := 0
	for j, v := range imp {
		if v < 0 {
			t.Fatalf("negative importance %v", v)
		}
		sum += v
		if v > imp[best] {
			best = j
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("importances sum to %v", sum)
	}
	if best != 2 {
		t.Fatalf("most important feature = %d, want 2 (importances %v)", best, imp)
	}
}

func TestRankFeatures(t *testing.T) {
	g := sim.NewRNG(2)
	ds := dataset.New([]string{"a", "b"}, nil)
	for i := 0; i < 300; i++ {
		y := i % 2
		ds.Add([]float64{g.Normal(float64(4*y), 1), g.Normal(0, 1)}, y)
	}
	f, err := forest.Train(ds, forest.Config{Trees: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ranked := f.RankFeatures([]string{"signal", "noise"})
	if len(ranked) != 2 {
		t.Fatalf("%d ranked features", len(ranked))
	}
	if ranked[0].Name != "signal" {
		t.Fatalf("top feature = %s", ranked[0].Name)
	}
	if ranked[0].Importance < ranked[1].Importance {
		t.Fatal("ranking not descending")
	}
}

func TestOOBErrorTracksGeneralisation(t *testing.T) {
	g := sim.NewRNG(3)
	easy := dataset.New([]string{"a", "b"}, nil)
	hard := dataset.New([]string{"a", "b"}, nil)
	for i := 0; i < 400; i++ {
		y := i % 2
		easy.Add([]float64{g.Normal(float64(8*y), 1)}, y)
		hard.Add([]float64{g.Normal(float64(y), 4)}, y) // heavy overlap
	}
	cfg := forest.Config{Trees: 25, Seed: 1}
	easyErr, err := forest.OOBError(easy, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hardErr, err := forest.OOBError(hard, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if easyErr > 0.05 {
		t.Fatalf("OOB error on separable data = %.3f", easyErr)
	}
	if hardErr <= easyErr {
		t.Fatalf("OOB error did not grow with class overlap: easy %.3f, hard %.3f", easyErr, hardErr)
	}
	if hardErr < 0.15 || hardErr > 0.6 {
		t.Fatalf("OOB error on overlapping data = %.3f, expected a substantial rate", hardErr)
	}
}

func TestOOBErrorRejectsBadData(t *testing.T) {
	bad := dataset.New([]string{"a"}, nil)
	bad.Add([]float64{1}, 0)
	bad.Y[0] = 3
	if _, err := forest.OOBError(bad, forest.Config{Trees: 2}); err == nil {
		t.Fatal("invalid dataset accepted")
	}
}
