package forest

import (
	"sort"

	"ltefp/internal/ml/dataset"
)

// FeatureImportance returns the mean decrease in node impurity
// attributable to each feature, normalised to sum to 1 (Breiman's Gini
// importance). The attacker uses this to see which side-channel — sizes,
// cadence, direction — the model actually keys on.
func (f *Forest) FeatureImportance(dim int) []float64 {
	imp := make([]float64, dim)
	for _, t := range f.Trees {
		// Sample counts are not stored per node, so importance is
		// approximated by counting splits per feature weighted by depth
		// (shallower splits separate more samples).
		var walk func(idx int32, depth int)
		walk = func(idx int32, depth int) {
			n := &t.Nodes[idx]
			if n.Feature == leafMark {
				return
			}
			if int(n.Feature) < dim {
				imp[n.Feature] += 1 / float64(depth+1)
			}
			walk(n.Left, depth+1)
			walk(n.Right, depth+1)
		}
		if len(t.Nodes) > 0 {
			walk(0, 0)
		}
	}
	var total float64
	for _, v := range imp {
		total += v
	}
	if total > 0 {
		for i := range imp {
			imp[i] /= total
		}
	}
	return imp
}

// RankedFeature pairs a feature name with its importance.
type RankedFeature struct {
	Name       string
	Importance float64
}

// RankFeatures returns named importances, most important first.
func (f *Forest) RankFeatures(names []string) []RankedFeature {
	imp := f.FeatureImportance(len(names))
	out := make([]RankedFeature, len(names))
	for i, name := range names {
		out[i] = RankedFeature{Name: name, Importance: imp[i]}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Importance > out[j].Importance })
	return out
}

// OOBError estimates generalisation error without a held-out set: each
// row is scored only by the trees whose bootstrap sample did not contain
// it. Because per-tree bootstrap membership is reproducible from the
// training configuration, the caller passes the same dataset and config
// used for Train.
func OOBError(d *dataset.Dataset, cfg Config) (float64, error) {
	if err := d.Validate(); err != nil {
		return 0, err
	}
	f, err := Train(d, cfg)
	if err != nil {
		return 0, err
	}
	cfg = cfg.withDefaults(d.Len(), d.Dim())

	votes := make([][]float64, d.Len())
	for i := range votes {
		votes[i] = make([]float64, len(d.Classes))
	}
	inBag := make([]bool, d.Len())
	for tIdx := range f.Trees {
		// Reconstruct this tree's bootstrap sample.
		rng := treeRNG(cfg.Seed, tIdx)
		for i := range inBag {
			inBag[i] = false
		}
		for i := 0; i < cfg.SubsampleSize; i++ {
			inBag[rng.IntN(d.Len())] = true
		}
		for row := range d.X {
			if inBag[row] {
				continue
			}
			f.Trees[tIdx].predict(d.X[row], votes[row])
		}
	}
	wrong, scored := 0, 0
	for row, v := range votes {
		best, bv, any := 0, 0.0, false
		for c, p := range v {
			if p > 0 {
				any = true
			}
			if p > bv {
				best, bv = c, p
			}
		}
		if !any {
			continue // row was in every bag (vanishingly rare)
		}
		scored++
		if best != d.Y[row] {
			wrong++
		}
	}
	if scored == 0 {
		return 0, nil
	}
	return float64(wrong) / float64(scored), nil
}
