// Package forest implements CART decision trees and Breiman random forests
// from scratch: bootstrap aggregation, per-split feature subsampling, and
// exact Gini-optimal threshold search. The paper selects Random Forest
// (100 trees, seed 1) as its classifier after benchmarking it against
// logistic regression, kNN, and a CNN (Table VIII); this package is that
// model.
package forest

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"ltefp/internal/ml/dataset"
	"ltefp/internal/sim"
)

// Config controls forest training. Zero values select the defaults noted
// per field.
type Config struct {
	// Trees is the ensemble size (default 100, the paper's setting).
	Trees int
	// MaxDepth bounds tree depth (default 24).
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (default 2).
	MinLeaf int
	// FeaturesPerSplit is the number of features tried per split
	// (default √d).
	FeaturesPerSplit int
	// SubsampleSize is the bootstrap sample size per tree (default n).
	SubsampleSize int
	// Seed drives all randomness (the paper uses seed 1).
	Seed uint64
	// Workers bounds training parallelism (default GOMAXPROCS).
	Workers int
}

func (c Config) withDefaults(n, dim int) Config {
	if c.Trees <= 0 {
		c.Trees = 100
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 24
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 2
	}
	if c.FeaturesPerSplit <= 0 {
		c.FeaturesPerSplit = int(math.Ceil(math.Sqrt(float64(dim))))
	}
	if c.FeaturesPerSplit > dim {
		c.FeaturesPerSplit = dim
	}
	if c.SubsampleSize <= 0 || c.SubsampleSize > n {
		c.SubsampleSize = n
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// leafMark distinguishes leaves in the flat node array.
const leafMark = -1

// Node is one flat-array tree node. Leaves have Feature == leafMark and a
// class distribution; internal nodes route on X[Feature] <= Threshold.
type Node struct {
	Feature   int32
	Threshold float64
	Left      int32
	Right     int32
	Dist      []float32
}

// Tree is one CART tree in flat-array form.
type Tree struct {
	Nodes []Node
}

// predict accumulates the leaf distribution for x into out.
func (t *Tree) predict(x []float64, out []float64) {
	i := int32(0)
	for {
		n := &t.Nodes[i]
		if n.Feature == leafMark {
			for c, p := range n.Dist {
				out[c] += float64(p)
			}
			return
		}
		if x[n.Feature] <= n.Threshold {
			i = n.Left
		} else {
			i = n.Right
		}
	}
}

// Forest is a trained random forest.
type Forest struct {
	Trees   []Tree
	Classes []string
}

// Train fits a forest on the dataset. Trees are trained in parallel, each
// from a deterministic per-tree stream, so results do not depend on
// scheduling.
func Train(d *dataset.Dataset, cfg Config) (*Forest, error) {
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("forest: %w", err)
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("forest: empty training set")
	}
	cfg = cfg.withDefaults(d.Len(), d.Dim())
	f := &Forest{Trees: make([]Tree, cfg.Trees), Classes: d.Classes}

	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	for t := 0; t < cfg.Trees; t++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(t int) {
			defer wg.Done()
			defer func() { <-sem }()
			f.Trees[t] = growTree(d, cfg, treeRNG(cfg.Seed, t))
		}(t)
	}
	wg.Wait()
	return f, nil
}

// PredictProba returns the soft-voted class distribution for x.
func (f *Forest) PredictProba(x []float64) []float64 {
	out := make([]float64, len(f.Classes))
	for i := range f.Trees {
		f.Trees[i].predict(x, out)
	}
	total := 0.0
	for _, v := range out {
		total += v
	}
	if total > 0 {
		for i := range out {
			out[i] /= total
		}
	}
	return out
}

// Predict returns the most probable class index for x.
func (f *Forest) Predict(x []float64) int {
	p := f.PredictProba(x)
	best, bv := 0, p[0]
	for i, v := range p {
		if v > bv {
			best, bv = i, v
		}
	}
	return best
}

// treeRNG derives tree t's deterministic random stream. OOBError relies on
// this to reconstruct each tree's bootstrap sample, so the derivation must
// stay in lock-step with growTree's draw order.
func treeRNG(seed uint64, t int) *sim.RNG {
	return sim.NewRNG(seed*0x100000001b3 + uint64(t) + 1)
}

// grower carries per-tree training state.
type grower struct {
	d       *dataset.Dataset
	cfg     Config
	rng     *sim.RNG
	classes int
	nodes   []Node
	// scratch buffers reused across nodes
	vals  []float64
	order []int
}

func growTree(d *dataset.Dataset, cfg Config, rng *sim.RNG) Tree {
	g := &grower{d: d, cfg: cfg, rng: rng, classes: len(d.Classes)}
	idx := make([]int, cfg.SubsampleSize)
	for i := range idx {
		idx[i] = rng.IntN(d.Len())
	}
	g.build(idx, 0)
	return Tree{Nodes: g.nodes}
}

// build grows the subtree over idx and returns its node index.
func (g *grower) build(idx []int, depth int) int32 {
	counts := make([]int, g.classes)
	for _, i := range idx {
		counts[g.d.Y[i]]++
	}
	pure := 0
	for _, c := range counts {
		if c > 0 {
			pure++
		}
	}
	if pure <= 1 || depth >= g.cfg.MaxDepth || len(idx) < 2*g.cfg.MinLeaf {
		return g.leaf(counts, len(idx))
	}
	feat, thr, ok := g.bestSplit(idx, counts)
	if !ok {
		return g.leaf(counts, len(idx))
	}
	// Partition in place.
	lo, hi := 0, len(idx)
	for lo < hi {
		if g.d.X[idx[lo]][feat] <= thr {
			lo++
		} else {
			hi--
			idx[lo], idx[hi] = idx[hi], idx[lo]
		}
	}
	if lo == 0 || lo == len(idx) {
		return g.leaf(counts, len(idx))
	}
	self := int32(len(g.nodes))
	g.nodes = append(g.nodes, Node{Feature: int32(feat), Threshold: thr})
	left := g.build(idx[:lo], depth+1)
	right := g.build(idx[lo:], depth+1)
	g.nodes[self].Left = left
	g.nodes[self].Right = right
	return self
}

func (g *grower) leaf(counts []int, n int) int32 {
	dist := make([]float32, g.classes)
	if n > 0 {
		for c, v := range counts {
			dist[c] = float32(v) / float32(n)
		}
	}
	self := int32(len(g.nodes))
	g.nodes = append(g.nodes, Node{Feature: leafMark, Dist: dist})
	return self
}

// bestSplit searches FeaturesPerSplit random features for the exact
// Gini-optimal threshold.
func (g *grower) bestSplit(idx []int, counts []int) (feat int, thr float64, ok bool) {
	n := len(idx)
	dim := g.d.Dim()
	if cap(g.vals) < n {
		g.vals = make([]float64, n)
		g.order = make([]int, n)
	}
	vals := g.vals[:n]
	order := g.order[:n]

	parentGini := giniFromCounts(counts, n)
	bestGain := 1e-9
	perm := g.rng.Perm(dim)

	left := make([]int, g.classes)
	for _, f := range perm[:g.cfg.FeaturesPerSplit] {
		for i, row := range idx {
			vals[i] = g.d.X[row][f]
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return vals[order[a]] < vals[order[b]] })
		for c := range left {
			left[c] = 0
		}
		nl := 0
		for pos := 0; pos < n-1; pos++ {
			row := idx[order[pos]]
			left[g.d.Y[row]]++
			nl++
			v, next := vals[order[pos]], vals[order[pos+1]]
			if v == next {
				continue
			}
			if nl < g.cfg.MinLeaf || n-nl < g.cfg.MinLeaf {
				continue
			}
			gl := giniFromCounts(left, nl)
			gr := giniRight(counts, left, n-nl)
			gain := parentGini - (float64(nl)*gl+float64(n-nl)*gr)/float64(n)
			if gain > bestGain {
				bestGain = gain
				feat = f
				thr = v + (next-v)/2
				ok = true
			}
		}
	}
	return feat, thr, ok
}

func giniFromCounts(counts []int, n int) float64 {
	if n == 0 {
		return 0
	}
	s := 0.0
	fn := float64(n)
	for _, c := range counts {
		p := float64(c) / fn
		s += p * p
	}
	return 1 - s
}

// giniRight computes Gini of (total - left) without materialising it.
func giniRight(total, left []int, n int) float64 {
	if n == 0 {
		return 0
	}
	s := 0.0
	fn := float64(n)
	for c := range total {
		p := float64(total[c]-left[c]) / fn
		s += p * p
	}
	return 1 - s
}
