// Package forest implements CART decision trees and Breiman random forests
// from scratch: bootstrap aggregation, per-split feature subsampling, and
// exact Gini-optimal threshold search. The paper selects Random Forest
// (100 trees, seed 1) as its classifier after benchmarking it against
// logistic regression, kNN, and a CNN (Table VIII); this package is that
// model.
//
// The trainer never sorts inside a node: every feature column of the
// dataset is sorted once per Train call, each tree derives its bootstrap
// sample's column order from that by a counting pass, and node splits keep
// the per-feature order intact through stable partitioning. Together with
// the per-worker scratch buffers this makes tree growth allocation-free
// after warm-up while producing trees bit-identical to the original
// sort-per-node implementation (guarded by TestGoldenTrees).
package forest

import (
	"fmt"
	"math"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"ltefp/internal/ml/dataset"
	"ltefp/internal/sim"
)

// Config controls forest training. Zero values select the defaults noted
// per field.
type Config struct {
	// Trees is the ensemble size (default 100, the paper's setting).
	Trees int
	// MaxDepth bounds tree depth (default 24).
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (default 2).
	MinLeaf int
	// FeaturesPerSplit is the number of features tried per split
	// (default √d).
	FeaturesPerSplit int
	// SubsampleSize is the bootstrap sample size per tree (default n).
	SubsampleSize int
	// Seed drives all randomness (the paper uses seed 1).
	Seed uint64
	// Workers bounds training parallelism (default GOMAXPROCS).
	Workers int
}

func (c Config) withDefaults(n, dim int) Config {
	if c.Trees <= 0 {
		c.Trees = 100
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 24
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 2
	}
	if c.FeaturesPerSplit <= 0 {
		c.FeaturesPerSplit = int(math.Ceil(math.Sqrt(float64(dim))))
	}
	if c.FeaturesPerSplit > dim {
		c.FeaturesPerSplit = dim
	}
	if c.SubsampleSize <= 0 || c.SubsampleSize > n {
		c.SubsampleSize = n
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// leafMark distinguishes leaves in the flat node array.
const leafMark = -1

// Node is one flat-array tree node. Leaves have Feature == leafMark and a
// class distribution; internal nodes route on X[Feature] <= Threshold.
type Node struct {
	Feature   int32
	Threshold float64
	Left      int32
	Right     int32
	Dist      []float32
}

// Tree is one CART tree in flat-array form.
type Tree struct {
	Nodes []Node
}

// predict accumulates the leaf distribution for x into out.
func (t *Tree) predict(x []float64, out []float64) {
	i := int32(0)
	for {
		n := &t.Nodes[i]
		if n.Feature == leafMark {
			for c, p := range n.Dist {
				out[c] += float64(p)
			}
			return
		}
		if x[n.Feature] <= n.Threshold {
			i = n.Left
		} else {
			i = n.Right
		}
	}
}

// Forest is a trained random forest.
type Forest struct {
	Trees   []Tree
	Classes []string

	// packOnce guards pack, the lazily built compact traversal form used
	// by the batch prediction path. Both are unexported so gob round-trips
	// ignore them; a decoded Forest simply rebuilds on first batch call.
	packOnce sync.Once
	pack     *batchRep
}

// Train fits a forest on the dataset. Trees are trained by a bounded
// worker pool, each from a deterministic per-tree stream, so results do
// not depend on scheduling; each worker reuses one grower's scratch
// buffers across all the trees it grows.
func Train(d *dataset.Dataset, cfg Config) (*Forest, error) {
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("forest: %w", err)
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("forest: empty training set")
	}
	if m := activeMetrics.Load(); m != nil {
		defer m.trainMS.Start().Stop()
		m.trainRows.Add(int64(d.Len()))
	}
	cfg = cfg.withDefaults(d.Len(), d.Dim())
	f := &Forest{Trees: make([]Tree, cfg.Trees), Classes: d.Classes}
	orders := columnOrders(d, cfg.Workers)

	workers := cfg.Workers
	if workers > cfg.Trees {
		workers = cfg.Trees
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := newGrower(d, cfg, orders)
			for {
				t := int(next.Add(1)) - 1
				if t >= cfg.Trees {
					return
				}
				f.Trees[t] = g.grow(treeRNG(cfg.Seed, t))
			}
		}()
	}
	wg.Wait()
	return f, nil
}

// PredictProba returns the soft-voted class distribution for x.
func (f *Forest) PredictProba(x []float64) []float64 {
	out := make([]float64, len(f.Classes))
	f.PredictInto(x, out)
	return out
}

// Predict returns the most probable class index for x.
func (f *Forest) Predict(x []float64) int {
	var buf [predictStackClasses]float64
	if len(f.Classes) <= predictStackClasses {
		return f.PredictInto(x, buf[:len(f.Classes)])
	}
	return f.PredictInto(x, make([]float64, len(f.Classes)))
}

// treeRNG derives tree t's deterministic random stream. OOBError relies on
// this to reconstruct each tree's bootstrap sample, so the derivation must
// stay in lock-step with grow's draw order.
func treeRNG(seed uint64, t int) *sim.RNG {
	return sim.NewRNG(seed*0x100000001b3 + uint64(t) + 1)
}

// columnOrders sorts every feature column of the dataset once per Train
// call (in parallel, bounded by workers). Per-tree bootstrap column orders
// are then derived with counting passes instead of per-node comparison
// sorts.
func columnOrders(d *dataset.Dataset, workers int) [][]int32 {
	dim, n := d.Dim(), d.Len()
	out := make([][]int32, dim)
	if dim == 0 {
		return out
	}
	backing := make([]int32, dim*n)
	sortCol := func(f int) {
		ord := backing[f*n : (f+1)*n : (f+1)*n]
		for i := range ord {
			ord[i] = int32(i)
		}
		slices.SortFunc(ord, func(a, b int32) int {
			va, vb := d.X[a][f], d.X[b][f]
			switch {
			case va < vb:
				return -1
			case va > vb:
				return 1
			}
			return 0
		})
		out[f] = ord
	}
	if workers <= 1 || dim == 1 {
		for f := 0; f < dim; f++ {
			sortCol(f)
		}
		return out
	}
	if workers > dim {
		workers = dim
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				f := int(next.Add(1)) - 1
				if f >= dim {
					return
				}
				sortCol(f)
			}
		}()
	}
	wg.Wait()
	return out
}

// distArenaChunk sizes the leaf-distribution arena allocations.
const distArenaChunk = 4096

// grower carries per-worker training state. All scratch is sized once in
// newGrower and reused for every tree the worker grows; the only per-tree
// allocations left are the returned node slice and, occasionally, a fresh
// leaf-distribution arena chunk (both escape into the trained forest).
type grower struct {
	d       *dataset.Dataset
	cfg     Config
	classes int
	dim     int
	S       int       // bootstrap sample size
	orders  [][]int32 // shared read-only per-feature dataset row order

	rng   *sim.RNG
	nodes []Node // scratch; copied into the returned tree

	idx      []int32   // bootstrap row per sample position
	y        []int32   // label per sample position
	rowStart []int32   // dataset row -> offset into posByRow (len n+1)
	rowCur   []int32   // scatter cursors (len n+1)
	posByRow []int32   // sample positions grouped by dataset row
	colVal   []float64 // dim*S feature values, sorted within node segments
	colPos   []int32   // dim*S sample positions, parallel to colVal
	tmpVal   []float64 // stable-partition scratch
	tmpPos   []int32
	side     []bool  // per-position goes-left flag during partitioning
	left     []int   // split-search left class counts
	counts   [][]int // per-depth class-count buffers
	perm     []int   // feature subsample permutation
	dist     []float32
}

func newGrower(d *dataset.Dataset, cfg Config, orders [][]int32) *grower {
	n, dim, S := d.Len(), d.Dim(), cfg.SubsampleSize
	return &grower{
		d:       d,
		cfg:     cfg,
		classes: len(d.Classes),
		dim:     dim,
		S:       S,
		orders:  orders,

		idx:      make([]int32, S),
		y:        make([]int32, S),
		rowStart: make([]int32, n+1),
		rowCur:   make([]int32, n+1),
		posByRow: make([]int32, S),
		colVal:   make([]float64, dim*S),
		colPos:   make([]int32, dim*S),
		tmpVal:   make([]float64, S),
		tmpPos:   make([]int32, S),
		side:     make([]bool, S),
		left:     make([]int, len(d.Classes)),
		perm:     make([]int, dim),
	}
}

// grow fits one tree from its deterministic stream. The draw order —
// SubsampleSize bootstrap draws, then one feature permutation per internal
// node in depth-first order — matches the original implementation exactly,
// which OOBError and the golden-tree test rely on.
func (g *grower) grow(rng *sim.RNG) Tree {
	g.rng = rng
	n := g.d.Len()
	for i := range g.idx {
		g.idx[i] = int32(rng.IntN(n))
	}
	for p, r := range g.idx {
		g.y[p] = int32(g.d.Y[r])
	}

	// Group sample positions by dataset row (counting sort), then derive
	// each feature column's sorted bootstrap order from the dataset-wide
	// order in one O(n + S) pass per feature.
	rs := g.rowStart
	for i := range rs {
		rs[i] = 0
	}
	for _, r := range g.idx {
		rs[r+1]++
	}
	for i := 0; i < n; i++ {
		rs[i+1] += rs[i]
	}
	copy(g.rowCur, rs)
	for p, r := range g.idx {
		g.posByRow[g.rowCur[r]] = int32(p)
		g.rowCur[r]++
	}
	for f := 0; f < g.dim; f++ {
		cv := g.colVal[f*g.S : (f+1)*g.S]
		cp := g.colPos[f*g.S : (f+1)*g.S]
		j := 0
		for _, r := range g.orders[f] {
			lo, hi := rs[r], rs[r+1]
			if lo == hi {
				continue
			}
			v := g.d.X[r][f]
			for t := lo; t < hi; t++ {
				cp[j] = g.posByRow[t]
				cv[j] = v
				j++
			}
		}
	}

	g.nodes = g.nodes[:0]
	if g.dim == 0 {
		// No feature columns to carry positions: the tree is one leaf.
		counts := g.countsAt(0)
		for _, c := range g.y {
			counts[c]++
		}
		g.leaf(counts, g.S)
	} else {
		g.build(0, g.S, 0)
	}
	nodes := make([]Node, len(g.nodes))
	copy(nodes, g.nodes)
	return Tree{Nodes: nodes}
}

// countsAt returns the reusable class-count buffer for one recursion depth.
func (g *grower) countsAt(depth int) []int {
	for len(g.counts) <= depth {
		g.counts = append(g.counts, make([]int, g.classes))
	}
	c := g.counts[depth]
	for i := range c {
		c[i] = 0
	}
	return c
}

// build grows the subtree over column segment [lo, hi) and returns its
// node index.
func (g *grower) build(lo, hi, depth int) int32 {
	n := hi - lo
	counts := g.countsAt(depth)
	for _, p := range g.colPos[lo:hi] { // column 0 holds the node's positions
		counts[g.y[p]]++
	}
	pure := 0
	for _, c := range counts {
		if c > 0 {
			pure++
		}
	}
	if pure <= 1 || depth >= g.cfg.MaxDepth || n < 2*g.cfg.MinLeaf {
		return g.leaf(counts, n)
	}
	feat, thr, ok := g.bestSplit(lo, hi, counts)
	if !ok {
		return g.leaf(counts, n)
	}

	// The chosen feature's segment is sorted, so its left side is exactly
	// the prefix of values <= thr; every other column is stably
	// partitioned on that membership, which keeps all segments sorted.
	base := feat * g.S
	fv := g.colVal[base+lo : base+hi]
	nl := sort.Search(n, func(i int) bool { return fv[i] > thr })
	if nl == 0 || nl == n {
		return g.leaf(counts, n)
	}
	fp := g.colPos[base+lo : base+hi]
	for _, p := range fp[:nl] {
		g.side[p] = true
	}
	for f := 0; f < g.dim; f++ {
		if f == feat {
			continue
		}
		cv := g.colVal[f*g.S+lo : f*g.S+hi]
		cp := g.colPos[f*g.S+lo : f*g.S+hi]
		w, t := 0, 0
		for j := 0; j < n; j++ {
			p := cp[j]
			if g.side[p] {
				cv[w], cp[w] = cv[j], p
				w++
			} else {
				g.tmpVal[t], g.tmpPos[t] = cv[j], p
				t++
			}
		}
		copy(cv[nl:], g.tmpVal[:t])
		copy(cp[nl:], g.tmpPos[:t])
	}
	for _, p := range fp[:nl] {
		g.side[p] = false
	}

	self := int32(len(g.nodes))
	g.nodes = append(g.nodes, Node{Feature: int32(feat), Threshold: thr})
	left := g.build(lo, lo+nl, depth+1)
	right := g.build(lo+nl, hi, depth+1)
	g.nodes[self].Left = left
	g.nodes[self].Right = right
	return self
}

// leaf appends a leaf node, carving its distribution out of the arena so
// growing a tree does not allocate per leaf.
func (g *grower) leaf(counts []int, n int) int32 {
	if cap(g.dist)-len(g.dist) < g.classes {
		size := distArenaChunk
		if size < g.classes {
			size = g.classes
		}
		g.dist = make([]float32, 0, size)
	}
	m := len(g.dist)
	g.dist = g.dist[:m+g.classes]
	dist := g.dist[m : m+g.classes : m+g.classes]
	if n > 0 {
		for c, v := range counts {
			dist[c] = float32(v) / float32(n)
		}
	}
	self := int32(len(g.nodes))
	g.nodes = append(g.nodes, Node{Feature: leafMark, Dist: dist})
	return self
}

// bestSplit searches FeaturesPerSplit random features for the exact
// Gini-optimal threshold, walking each feature's presorted segment.
func (g *grower) bestSplit(lo, hi int, counts []int) (feat int, thr float64, ok bool) {
	n := hi - lo
	parentGini := giniFromCounts(counts, n)
	bestGain := 1e-9
	g.rng.PermInto(g.perm)

	left := g.left
	for _, f := range g.perm[:g.cfg.FeaturesPerSplit] {
		vals := g.colVal[f*g.S+lo : f*g.S+hi]
		poss := g.colPos[f*g.S+lo : f*g.S+hi]
		for c := range left {
			left[c] = 0
		}
		nl := 0
		for pos := 0; pos < n-1; pos++ {
			left[g.y[poss[pos]]]++
			nl++
			v, next := vals[pos], vals[pos+1]
			if v == next {
				continue
			}
			if nl < g.cfg.MinLeaf || n-nl < g.cfg.MinLeaf {
				continue
			}
			gl := giniFromCounts(left, nl)
			gr := giniRight(counts, left, n-nl)
			gain := parentGini - (float64(nl)*gl+float64(n-nl)*gr)/float64(n)
			if gain > bestGain {
				bestGain = gain
				feat = f
				thr = v + (next-v)/2
				ok = true
			}
		}
	}
	return feat, thr, ok
}

func giniFromCounts(counts []int, n int) float64 {
	if n == 0 {
		return 0
	}
	s := 0.0
	fn := float64(n)
	for _, c := range counts {
		p := float64(c) / fn
		s += p * p
	}
	return 1 - s
}

// giniRight computes Gini of (total - left) without materialising it.
func giniRight(total, left []int, n int) float64 {
	if n == 0 {
		return 0
	}
	s := 0.0
	fn := float64(n)
	for c := range total {
		p := float64(total[c]-left[c]) / fn
		s += p * p
	}
	return 1 - s
}
