// Package forest implements CART decision trees and Breiman random forests
// from scratch: bootstrap aggregation, per-split feature subsampling, and
// exact Gini-optimal threshold search. The paper selects Random Forest
// (100 trees, seed 1) as its classifier after benchmarking it against
// logistic regression, kNN, and a CNN (Table VIII); this package is that
// model.
//
// The trainer never sorts inside a node: every feature column of the
// dataset is sorted once per Train call, each tree derives its bootstrap
// sample's column order from that by a counting pass, and node splits keep
// the per-feature order intact through stable partitioning. Together with
// the per-worker scratch buffers this makes tree growth allocation-free
// after warm-up while producing trees bit-identical to the original
// sort-per-node implementation (guarded by TestGoldenTrees).
package forest

import (
	"fmt"
	"math"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"ltefp/internal/ml/dataset"
	"ltefp/internal/sim"
)

// Config controls forest training. Zero values select the defaults noted
// per field.
type Config struct {
	// Trees is the ensemble size (default 100, the paper's setting).
	Trees int
	// MaxDepth bounds tree depth (default 24).
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (default 2).
	MinLeaf int
	// FeaturesPerSplit is the number of features tried per split
	// (default √d).
	FeaturesPerSplit int
	// SubsampleSize is the bootstrap sample size per tree (default n).
	SubsampleSize int
	// Seed drives all randomness (the paper uses seed 1).
	Seed uint64
	// Workers bounds training parallelism (default GOMAXPROCS).
	Workers int
}

func (c Config) withDefaults(n, dim int) Config {
	if c.Trees <= 0 {
		c.Trees = 100
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 24
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 2
	}
	if c.FeaturesPerSplit <= 0 {
		c.FeaturesPerSplit = int(math.Ceil(math.Sqrt(float64(dim))))
	}
	if c.FeaturesPerSplit > dim {
		c.FeaturesPerSplit = dim
	}
	if c.SubsampleSize <= 0 || c.SubsampleSize > n {
		c.SubsampleSize = n
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// leafMark distinguishes leaves in the flat node array.
const leafMark = -1

// Node is one flat-array tree node. Leaves have Feature == leafMark and a
// class distribution; internal nodes route on X[Feature] <= Threshold.
type Node struct {
	Feature   int32
	Threshold float64
	Left      int32
	Right     int32
	Dist      []float32
}

// Tree is one CART tree in flat-array form.
type Tree struct {
	Nodes []Node
}

// predict accumulates the leaf distribution for x into out.
func (t *Tree) predict(x []float64, out []float64) {
	i := int32(0)
	for {
		n := &t.Nodes[i]
		if n.Feature == leafMark {
			for c, p := range n.Dist {
				out[c] += float64(p)
			}
			return
		}
		if x[n.Feature] <= n.Threshold {
			i = n.Left
		} else {
			i = n.Right
		}
	}
}

// Forest is a trained random forest.
type Forest struct {
	Trees   []Tree
	Classes []string

	// packOnce guards pack, the lazily built compact traversal form used
	// by the batch prediction path. Both are unexported so gob round-trips
	// ignore them; a decoded Forest simply rebuilds on first batch call.
	packOnce sync.Once
	pack     *batchRep
}

// Train fits a forest on the dataset. Trees are trained by a bounded
// worker pool, each from a deterministic per-tree stream, so results do
// not depend on scheduling; each worker reuses one grower's scratch
// buffers across all the trees it grows.
func Train(d *dataset.Dataset, cfg Config) (*Forest, error) {
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("forest: %w", err)
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("forest: empty training set")
	}
	if len(d.Classes) > 1<<16 {
		return nil, fmt.Errorf("forest: %d classes exceeds the trainer's uint16 label limit", len(d.Classes))
	}
	if m := activeMetrics.Load(); m != nil {
		defer m.trainMS.Start().Stop()
		m.trainRows.Add(int64(d.Len()))
	}
	cfg = cfg.withDefaults(d.Len(), d.Dim())
	f := &Forest{Trees: make([]Tree, cfg.Trees), Classes: d.Classes}
	cols := columnOrders(d, cfg.Workers)

	workers := cfg.Workers
	if workers > cfg.Trees {
		workers = cfg.Trees
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := newGrower(d, cfg, cols)
			for {
				t := int(next.Add(1)) - 1
				if t >= cfg.Trees {
					return
				}
				f.Trees[t] = g.grow(treeRNG(cfg.Seed, t))
			}
		}()
	}
	wg.Wait()
	return f, nil
}

// PredictProba returns the soft-voted class distribution for x.
func (f *Forest) PredictProba(x []float64) []float64 {
	out := make([]float64, len(f.Classes))
	f.PredictInto(x, out)
	return out
}

// Predict returns the most probable class index for x.
func (f *Forest) Predict(x []float64) int {
	var buf [predictStackClasses]float64
	if len(f.Classes) <= predictStackClasses {
		return f.PredictInto(x, buf[:len(f.Classes)])
	}
	return f.PredictInto(x, make([]float64, len(f.Classes)))
}

// treeRNG derives tree t's deterministic random stream. OOBError relies on
// this to reconstruct each tree's bootstrap sample, so the derivation must
// stay in lock-step with grow's draw order.
func treeRNG(seed uint64, t int) *sim.RNG {
	return sim.NewRNG(seed*0x100000001b3 + uint64(t) + 1)
}

// sortedCols is the per-Train shared, read-only sorted view of the dataset:
// for every feature, the dataset rows in ascending value order plus the
// value and class label of each position in that order. Growers stream
// these flat arrays sequentially instead of chasing d.X row pointers.
type sortedCols struct {
	orders [][]int32 // per-feature dataset row order
	vals   []float64 // dim*n values, vals[f*n+i] = X[orders[f][i]][f]
	y16    []uint16  // dataset labels by row, compact for cache residency
}

// columnOrders sorts every feature column of the dataset once per Train
// call (in parallel, bounded by workers). Per-tree bootstrap column orders
// are then derived with counting passes instead of per-node comparison
// sorts.
func columnOrders(d *dataset.Dataset, workers int) *sortedCols {
	dim, n := d.Dim(), d.Len()
	out := &sortedCols{orders: make([][]int32, dim)}
	if dim == 0 {
		return out
	}
	backing := make([]int32, dim*n)
	out.vals = make([]float64, dim*n)
	out.y16 = make([]uint16, n)
	for r, c := range d.Y {
		out.y16[r] = uint16(c)
	}
	sortCol := func(f int) {
		ord := backing[f*n : (f+1)*n : (f+1)*n]
		for i := range ord {
			ord[i] = int32(i)
		}
		slices.SortFunc(ord, func(a, b int32) int {
			va, vb := d.X[a][f], d.X[b][f]
			switch {
			case va < vb:
				return -1
			case va > vb:
				return 1
			}
			return 0
		})
		out.orders[f] = ord
		vals := out.vals[f*n : (f+1)*n]
		for i, r := range ord {
			vals[i] = d.X[r][f]
		}
	}
	if workers <= 1 || dim == 1 {
		for f := 0; f < dim; f++ {
			sortCol(f)
		}
		return out
	}
	if workers > dim {
		workers = dim
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				f := int(next.Add(1)) - 1
				if f >= dim {
					return
				}
				sortCol(f)
			}
		}()
	}
	wg.Wait()
	return out
}

// distArenaChunk sizes the leaf-distribution arena allocations.
const distArenaChunk = 4096

// grower carries per-worker training state. All scratch is sized once in
// newGrower and reused for every tree the worker grows; the only per-tree
// allocations left are the returned node slice and, occasionally, a fresh
// leaf-distribution arena chunk (both escape into the trained forest).
type grower struct {
	d       *dataset.Dataset
	cfg     Config
	classes int
	dim     int
	S       int         // bootstrap sample size
	cols    *sortedCols // shared read-only sorted dataset view

	rng   *sim.RNG
	nodes []Node // scratch; copied into the returned tree

	idx  []int32 // bootstrap row per sample position
	y    []int32 // label per sample position
	mult []int32 // dataset row -> bootstrap multiplicity

	// Column state double-buffers: a node's segments live in one buffer and
	// each partition writes both children into the other, so every element
	// is stored exactly once per split with no scratch or copy-back. Only
	// values and rows are carried; labels and weights are row lookups into
	// the small cols.y16 and mult arrays.
	colVal [2][]float64 // dim*U feature values, sorted within node segments
	colRow [2][]int32   // dim*U dataset rows, parallel to colVal

	side    []uint8 // per-dataset-row goes-left flag (1 = left) during partitioning
	left    []int   // split-search left class counts
	lcounts [][]int // per-depth left-child count buffers
	counts  [][]int // per-depth class-count buffers
	perm    []int   // feature subsample permutation
	dist    []float32
}

func newGrower(d *dataset.Dataset, cfg Config, cols *sortedCols) *grower {
	n, dim, S := d.Len(), d.Dim(), cfg.SubsampleSize
	return &grower{
		d:       d,
		cfg:     cfg,
		classes: len(d.Classes),
		dim:     dim,
		S:       S,
		cols:    cols,

		idx:  make([]int32, S),
		y:    make([]int32, S),
		mult: make([]int32, n),
		colVal: [2][]float64{
			make([]float64, dim*S), make([]float64, dim*S),
		},
		colRow: [2][]int32{
			make([]int32, dim*S), make([]int32, dim*S),
		},
		side: make([]uint8, n),
		left: make([]int, len(d.Classes)),
		perm: make([]int, dim),
	}
}

// grow fits one tree from its deterministic stream. The draw order —
// SubsampleSize bootstrap draws, then one feature permutation per internal
// node in depth-first order — matches the original implementation exactly,
// which OOBError and the golden-tree test rely on.
func (g *grower) grow(rng *sim.RNG) Tree {
	g.rng = rng
	n := g.d.Len()
	for i := range g.idx {
		g.idx[i] = int32(rng.IntN(n))
	}
	for p, r := range g.idx {
		g.y[p] = int32(g.d.Y[r])
	}

	// Count each dataset row's bootstrap multiplicity, then derive each
	// feature column's sorted bootstrap order from the dataset-wide order in
	// one O(n) pass per feature. Duplicate draws of the same row share every
	// feature value, so they can never land on different sides of a split;
	// the columns therefore carry one weighted entry per unique drawn row
	// (~63% of S for a full bootstrap), and all class counts downstream add
	// multiplicities instead of ones — sample-exact, but every partition and
	// split scan touches only unique rows. The fill writes every position
	// unconditionally and advances only past drawn rows, keeping the loop
	// free of the unpredictable w==0 branch.
	mult := g.mult
	for i := range mult {
		mult[i] = 0
	}
	for _, r := range g.idx {
		mult[r]++
	}
	U := 0
	for f := 0; f < g.dim; f++ {
		cv := g.colVal[0][f*g.S : (f+1)*g.S]
		cr := g.colRow[0][f*g.S : (f+1)*g.S]
		vals := g.cols.vals[f*n : (f+1)*n]
		j := 0
		for i, r := range g.cols.orders[f] {
			w := mult[r]
			cv[j] = vals[i]
			cr[j] = r
			j += int(uint32(-w) >> 31) // 1 iff w > 0
		}
		U = j
	}

	// Root class counts stream the bootstrap labels once; every deeper
	// node's counts are derived by its parent during split bookkeeping.
	g.nodes = g.nodes[:0]
	counts := g.countsAt(0)
	for _, c := range g.y {
		counts[c]++
	}
	if g.dim == 0 {
		// No feature columns to carry rows: the tree is one leaf.
		g.leaf(counts, g.S)
	} else {
		g.build(0, U, 0, counts, g.S, 0)
	}
	nodes := make([]Node, len(g.nodes))
	copy(nodes, g.nodes)
	return Tree{Nodes: nodes}
}

// countsAt returns the reusable class-count buffer for one recursion depth.
func (g *grower) countsAt(depth int) []int {
	for len(g.counts) <= depth {
		g.counts = append(g.counts, make([]int, g.classes))
	}
	c := g.counts[depth]
	for i := range c {
		c[i] = 0
	}
	return c
}

// lcountsAt returns the reusable left-child count buffer for one depth.
func (g *grower) lcountsAt(depth int) []int {
	for len(g.lcounts) <= depth {
		g.lcounts = append(g.lcounts, make([]int, g.classes))
	}
	c := g.lcounts[depth]
	for i := range c {
		c[i] = 0
	}
	return c
}

// isLeaf reports whether a node with these class counts must terminate
// (mirrors build's stopping rule; a false here may still become a leaf if
// no split with positive gain exists).
func (g *grower) isLeaf(counts []int, n, depth int) bool {
	if depth >= g.cfg.MaxDepth || n < 2*g.cfg.MinLeaf {
		return true
	}
	pure := 0
	for _, c := range counts {
		if c > 0 {
			pure++
		}
	}
	return pure <= 1
}

// build grows the subtree over column element segment [lo, hi) of buffer b
// — one entry per unique bootstrap row, weighted by multiplicity — and
// returns its node index. counts/ns describe the node's class distribution
// in samples (derived by the parent, so nodes never re-count their
// segments), exactly as if every bootstrap draw were carried individually.
// build owns the counts buffer from the moment it is called and may clobber
// it.
func (g *grower) build(lo, hi, depth int, counts []int, ns, b int) int32 {
	m := hi - lo
	pure := 0
	for _, c := range counts {
		if c > 0 {
			pure++
		}
	}
	if pure <= 1 || depth >= g.cfg.MaxDepth || ns < 2*g.cfg.MinLeaf {
		return g.leaf(counts, ns)
	}
	feat, thr, ok := g.bestSplit(lo, hi, counts, ns, b)
	if !ok {
		return g.leaf(counts, ns)
	}

	// The chosen feature's segment is sorted, so its left side is exactly
	// the prefix of values <= thr.
	base := feat * g.S
	fv := g.colVal[b][base+lo : base+hi]
	ml := sort.Search(m, func(i int) bool { return fv[i] > thr })
	if ml == 0 || ml == m {
		return g.leaf(counts, ns)
	}

	// Split the class counts between the children using the split feature's
	// own sorted segment: lcounts gets the left prefix, counts (no longer
	// needed for this node) is reduced in place to the right child's.
	lcounts := g.lcountsAt(depth)
	nl := 0 // left child size in samples
	fr := g.colRow[b][base+lo : base+hi]
	for _, r := range fr[:ml] {
		w := int(g.mult[r])
		lcounts[g.cols.y16[r]] += w
		nl += w
	}
	for c := range counts {
		counts[c] -= lcounts[c]
	}

	// A child whose counts already satisfy the stopping rule becomes a leaf
	// fully determined by those counts: its column segments are never read,
	// so its side of the partition need not be materialised. Emission order
	// (self, left, right) and leaf distributions are identical to the full
	// path either way.
	leftLeaf := g.isLeaf(lcounts, nl, depth+1)
	rightLeaf := g.isLeaf(counts, ns-nl, depth+1)
	if !leftLeaf || !rightLeaf {
		// Partition every other column on left-side membership into the
		// other column buffer, stably, so all segments stay sorted. Reads
		// are sequential, each element is written exactly once (lefts at
		// the advancing w cursor, rights at the advancing t cursor), and
		// the destination index is computed arithmetically — branch-free,
		// because the side flag is data-dependent and unpredictable. When
		// one child is a leaf its side's cursor just parks on the leaf
		// region, which is left as garbage that nothing ever reads. The
		// split feature's own column is partitioned trivially: its segment
		// is sorted, so the children are literal prefix/suffix copies.
		for _, r := range fr[:ml] {
			g.side[r] = 1
		}
		nb := 1 - b
		for f := 0; f < g.dim; f++ {
			o := f*g.S + lo
			if f == feat {
				copy(g.colVal[nb][o:o+m], g.colVal[b][o:o+m])
				copy(g.colRow[nb][o:o+m], g.colRow[b][o:o+m])
				continue
			}
			cv := g.colVal[b][o : o+m]
			cr := g.colRow[b][o : o+m]
			dv := g.colVal[nb][o : o+m]
			dr := g.colRow[nb][o : o+m]
			w, t := 0, ml
			for j := 0; j < m; j++ {
				r := cr[j]
				v := cv[j]
				s := int(g.side[r])
				d := t + s*(w-t)
				dv[d], dr[d] = v, r
				w += s
				t += 1 - s
			}
		}
		for _, r := range fr[:ml] {
			g.side[r] = 0
		}
		b = nb
	}

	self := int32(len(g.nodes))
	g.nodes = append(g.nodes, Node{Feature: int32(feat), Threshold: thr})
	var left, right int32
	if leftLeaf {
		left = g.leaf(lcounts, nl)
	} else {
		left = g.build(lo, lo+ml, depth+1, lcounts, nl, b)
	}
	if rightLeaf {
		right = g.leaf(counts, ns-nl)
	} else {
		right = g.build(lo+ml, hi, depth+1, counts, ns-nl, b)
	}
	g.nodes[self].Left = left
	g.nodes[self].Right = right
	return self
}

// leaf appends a leaf node, carving its distribution out of the arena so
// growing a tree does not allocate per leaf.
func (g *grower) leaf(counts []int, n int) int32 {
	if cap(g.dist)-len(g.dist) < g.classes {
		size := distArenaChunk
		if size < g.classes {
			size = g.classes
		}
		g.dist = make([]float32, 0, size)
	}
	m := len(g.dist)
	g.dist = g.dist[:m+g.classes]
	dist := g.dist[m : m+g.classes : m+g.classes]
	if n > 0 {
		for c, v := range counts {
			dist[c] = float32(v) / float32(n)
		}
	}
	self := int32(len(g.nodes))
	g.nodes = append(g.nodes, Node{Feature: leafMark, Dist: dist})
	return self
}

// giniGuard bounds how far the integer-sum gain screen can sit below the
// exact per-class computation. Both formulas agree to ~1e-15 absolute (the
// integer sums are exact, the class-loop sum accumulates a few ulps), so a
// candidate whose screened gain is more than giniGuard under the incumbent
// can never win the exact comparison.
const giniGuard = 1e-12

// bestSplit searches FeaturesPerSplit random features for the exact
// Gini-optimal threshold, walking each feature's presorted segment.
//
// Candidate boundaries are screened by Gini impurities derived from integer
// sums of squared class counts, maintained incrementally in O(1) per
// position. Only candidates within giniGuard of the incumbent best recompute
// the per-class float Gini of the original implementation, and the winner is
// always chosen by that exact arithmetic — so the selected splits (and the
// golden trees) are bit-identical to screening-free search while skipping
// the O(classes) loops and divisions almost everywhere.
func (g *grower) bestSplit(lo, hi int, counts []int, ns, b int) (feat int, thr float64, ok bool) {
	m := hi - lo
	parentGini := giniFromCounts(counts, ns)
	bestGain := 1e-9
	g.rng.PermInto(g.perm)

	sumT := 0
	for _, c := range counts {
		sumT += c * c
	}
	fn := float64(ns)
	left := g.left
	y16, mult := g.cols.y16, g.mult
	for _, f := range g.perm[:g.cfg.FeaturesPerSplit] {
		vals := g.colVal[b][f*g.S+lo : f*g.S+hi]
		rows := g.colRow[b][f*g.S+lo : f*g.S+hi]
		for c := range left {
			left[c] = 0
		}
		suml2, sumr2 := 0, sumT
		nl := 0
		for pos := 0; pos < m-1; pos++ {
			r := rows[pos]
			c := y16[r]
			w := int(mult[r])
			lc := left[c]
			left[c] = lc + w
			// left[c]: lc -> lc+w adds w*(2*lc+w) to sum(left^2); the right
			// count drops from counts[c]-lc by w symmetrically.
			suml2 += w * (2*lc + w)
			sumr2 -= w * (2*(counts[c]-lc) - w)
			nl += w
			v, next := vals[pos], vals[pos+1]
			if v == next {
				continue
			}
			if nl < g.cfg.MinLeaf || ns-nl < g.cfg.MinLeaf {
				continue
			}
			fnl, fnr := float64(nl), float64(ns-nl)
			screened := parentGini - (fnl*(1-float64(suml2)/(fnl*fnl))+fnr*(1-float64(sumr2)/(fnr*fnr)))/fn
			if screened <= bestGain-giniGuard {
				continue
			}
			gl := giniFromCounts(left, nl)
			gr := giniRight(counts, left, ns-nl)
			gain := parentGini - (fnl*gl+fnr*gr)/fn
			if gain > bestGain {
				bestGain = gain
				feat = f
				thr = v + (next-v)/2
				ok = true
			}
		}
	}
	return feat, thr, ok
}

func giniFromCounts(counts []int, n int) float64 {
	if n == 0 {
		return 0
	}
	s := 0.0
	fn := float64(n)
	for _, c := range counts {
		p := float64(c) / fn
		s += p * p
	}
	return 1 - s
}

// giniRight computes Gini of (total - left) without materialising it.
func giniRight(total, left []int, n int) float64 {
	if n == 0 {
		return 0
	}
	s := 0.0
	fn := float64(n)
	for c := range total {
		p := float64(total[c]-left[c]) / fn
		s += p * p
	}
	return 1 - s
}
