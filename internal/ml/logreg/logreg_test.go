package logreg_test

import (
	"math"
	"testing"

	"ltefp/internal/ml/dataset"
	"ltefp/internal/ml/logreg"
	"ltefp/internal/sim"
)

func linearBlobs(n int, seed uint64) *dataset.Dataset {
	g := sim.NewRNG(seed)
	ds := dataset.New([]string{"a", "b", "c"}, nil)
	for i := 0; i < n; i++ {
		y := i % 3
		ds.Add([]float64{
			g.Normal(float64(5*y), 1),
			g.Normal(float64(-3*y), 1),
		}, y)
	}
	return ds
}

func TestLinearlySeparable(t *testing.T) {
	ds := linearBlobs(1200, 1)
	train, test := ds.Split(0.8, sim.NewRNG(2))
	m, err := logreg.Train(train, logreg.Config{C: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, x := range test.X {
		if m.Predict(x) == test.Y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(test.Len()); acc < 0.95 {
		t.Fatalf("accuracy on linear blobs = %.3f", acc)
	}
}

func TestProbabilities(t *testing.T) {
	ds := linearBlobs(300, 3)
	m, err := logreg.Train(ds, logreg.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range ds.X[:50] {
		p := m.PredictProba(x)
		sum := 0.0
		for _, v := range p {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("probability %v out of range", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("probabilities sum to %v", sum)
		}
	}
}

func TestRegularisationShrinksWeights(t *testing.T) {
	ds := linearBlobs(400, 4)
	loose, err := logreg.Train(ds, logreg.Config{C: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := logreg.Train(ds, logreg.Config{C: 0.001, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	norm := func(m *logreg.Model) float64 {
		s := 0.0
		for _, row := range m.W {
			for _, w := range row {
				s += w * w
			}
		}
		return s
	}
	if norm(tight) >= norm(loose) {
		t.Fatalf("heavy regularisation did not shrink weights: %v >= %v",
			norm(tight), norm(loose))
	}
}

func TestErrors(t *testing.T) {
	empty := dataset.New([]string{"a"}, nil)
	if _, err := logreg.Train(empty, logreg.Config{}); err == nil {
		t.Fatal("empty training set accepted")
	}
}

func TestDeterministic(t *testing.T) {
	ds := linearBlobs(200, 5)
	a, err := logreg.Train(ds, logreg.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := logreg.Train(ds, logreg.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.W {
		for j := range a.W[i] {
			if a.W[i][j] != b.W[i][j] {
				t.Fatal("same seed produced different weights")
			}
		}
	}
}
