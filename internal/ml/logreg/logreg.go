// Package logreg implements multinomial logistic regression (softmax
// regression) trained by mini-batch gradient descent with L2
// regularisation. The paper uses it twice: as a Table VIII baseline
// (C = 1, the inverse regularisation strength) and as the decision layer of
// the correlation attack, which classifies DTW similarity evidence into
// contact / no-contact (Table VII).
package logreg

import (
	"fmt"
	"math"

	"ltefp/internal/ml/dataset"
	"ltefp/internal/sim"
)

// Config controls training. Zero values select the noted defaults.
type Config struct {
	// C is the inverse regularisation strength (default 1, paper setting).
	C float64
	// LearningRate is the SGD step size (default 0.1).
	LearningRate float64
	// Epochs is the number of passes over the data (default 60).
	Epochs int
	// BatchSize is the mini-batch size (default 32).
	BatchSize int
	// Seed drives shuffling.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.C <= 0 {
		c.C = 1
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.1
	}
	if c.Epochs <= 0 {
		c.Epochs = 60
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	return c
}

// Model is a fitted softmax regression classifier. It stores its own
// feature scaler.
type Model struct {
	Classes []string
	// W is [class][feature] weights; B the per-class bias.
	W [][]float64
	B []float64

	scaler *dataset.Scaler
}

// Train fits the model.
func Train(d *dataset.Dataset, cfg Config) (*Model, error) {
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("logreg: %w", err)
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("logreg: empty training set")
	}
	cfg = cfg.withDefaults()
	sc := dataset.FitScaler(d)
	scaled := sc.TransformAll(d)

	nc, dim, n := len(d.Classes), d.Dim(), d.Len()
	m := &Model{Classes: d.Classes, W: make([][]float64, nc), B: make([]float64, nc), scaler: sc}
	for c := range m.W {
		m.W[c] = make([]float64, dim)
	}
	lambda := 1 / (cfg.C * float64(n))
	rng := sim.NewRNG(cfg.Seed + 0x5bd1e995)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	probs := make([]float64, nc)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		lr := cfg.LearningRate / (1 + 0.02*float64(epoch))
		for start := 0; start < n; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > n {
				end = n
			}
			for _, i := range order[start:end] {
				x, y := scaled.X[i], scaled.Y[i]
				m.softmax(x, probs)
				for c := 0; c < nc; c++ {
					g := probs[c]
					if c == y {
						g -= 1
					}
					w := m.W[c]
					for j, xv := range x {
						w[j] -= lr * (g*xv + lambda*w[j])
					}
					m.B[c] -= lr * g
				}
			}
		}
	}
	return m, nil
}

// softmax fills out with class probabilities for a *standardised* x.
func (m *Model) softmax(x []float64, out []float64) {
	maxZ := math.Inf(-1)
	for c := range m.W {
		z := m.B[c]
		for j, xv := range x {
			z += m.W[c][j] * xv
		}
		out[c] = z
		if z > maxZ {
			maxZ = z
		}
	}
	sum := 0.0
	for c := range out {
		out[c] = math.Exp(out[c] - maxZ)
		sum += out[c]
	}
	for c := range out {
		out[c] /= sum
	}
}

// PredictProba returns class probabilities for a raw (unscaled) x.
func (m *Model) PredictProba(x []float64) []float64 {
	out := make([]float64, len(m.Classes))
	m.softmax(m.scaler.Transform(x), out)
	return out
}

// Predict returns the most probable class index.
func (m *Model) Predict(x []float64) int {
	p := m.PredictProba(x)
	best, bv := 0, p[0]
	for c, v := range p {
		if v > bv {
			best, bv = c, v
		}
	}
	return best
}
