// Package dataset provides labelled feature matrices and the splitting,
// stratification, scaling, and cross-validation utilities shared by every
// classifier in this repository.
package dataset

import (
	"fmt"
	"math"

	"ltefp/internal/sim"
)

// Dataset is a labelled feature matrix.
type Dataset struct {
	// X holds one feature vector per row.
	X [][]float64
	// Y holds the class index of each row.
	Y []int
	// Classes names the class indices.
	Classes []string
	// Features names the feature columns (optional, for reporting).
	Features []string
}

// New returns an empty dataset over the given classes.
func New(classes, featureNames []string) *Dataset {
	return &Dataset{Classes: classes, Features: featureNames}
}

// Add appends one labelled row.
func (d *Dataset) Add(x []float64, y int) {
	d.X = append(d.X, x)
	d.Y = append(d.Y, y)
}

// AddAll appends many rows with one label.
func (d *Dataset) AddAll(xs [][]float64, y int) {
	for _, x := range xs {
		d.Add(x, y)
	}
}

// Len returns the number of rows.
func (d *Dataset) Len() int { return len(d.X) }

// Dim returns the feature dimensionality (0 when empty).
func (d *Dataset) Dim() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Validate checks internal consistency.
func (d *Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("dataset: %d rows but %d labels", len(d.X), len(d.Y))
	}
	dim := d.Dim()
	for i, x := range d.X {
		if len(x) != dim {
			return fmt.Errorf("dataset: row %d has %d features, want %d", i, len(x), dim)
		}
	}
	for i, y := range d.Y {
		if y < 0 || y >= len(d.Classes) {
			return fmt.Errorf("dataset: row %d label %d outside %d classes", i, y, len(d.Classes))
		}
	}
	return nil
}

// ClassCounts returns the per-class row counts.
func (d *Dataset) ClassCounts() []int {
	out := make([]int, len(d.Classes))
	for _, y := range d.Y {
		out[y]++
	}
	return out
}

// Subset returns a dataset containing the given rows. The row and label
// bookkeeping is fresh, but the feature vectors themselves are SHARED with
// the parent — mutating a row through either dataset is visible in both.
// Everything derived through Subset (Split, KFold, SamplePerClass)
// inherits this sharing; use Clone before mutating rows in place.
func (d *Dataset) Subset(idx []int) *Dataset {
	out := New(d.Classes, d.Features)
	out.X = make([][]float64, len(idx))
	out.Y = make([]int, len(idx))
	for i, j := range idx {
		out.X[i] = d.X[j]
		out.Y[i] = d.Y[j]
	}
	return out
}

// Clone returns a deep copy whose feature vectors are independent of the
// receiver's — the escape hatch from the row-sharing contract of Subset
// and its derivatives for callers that mutate rows.
func (d *Dataset) Clone() *Dataset {
	out := New(d.Classes, d.Features)
	out.X = make([][]float64, len(d.X))
	out.Y = make([]int, len(d.Y))
	copy(out.Y, d.Y)
	flat := make([]float64, 0, len(d.X)*d.Dim())
	for i, x := range d.X {
		flat = append(flat, x...)
		out.X[i] = flat[len(flat)-len(x) : len(flat) : len(flat)]
	}
	return out
}

// Shuffle permutes rows in place.
func (d *Dataset) Shuffle(rng *sim.RNG) {
	rng.Shuffle(len(d.X), func(i, j int) {
		d.X[i], d.X[j] = d.X[j], d.X[i]
		d.Y[i], d.Y[j] = d.Y[j], d.Y[i]
	})
}

// Split partitions the dataset into train and test sets with the given
// training fraction, stratified by class so that splits preserve class
// proportions (the paper's 80/20 protocol). Both halves share their
// feature vectors with the receiver (see Subset).
func (d *Dataset) Split(trainFrac float64, rng *sim.RNG) (train, test *Dataset) {
	if trainFrac <= 0 || trainFrac >= 1 {
		panic(fmt.Sprintf("dataset: train fraction %.3f outside (0, 1)", trainFrac))
	}
	perClass := make(map[int][]int)
	for i, y := range d.Y {
		perClass[y] = append(perClass[y], i)
	}
	var trainIdx, testIdx []int
	for y := 0; y < len(d.Classes); y++ {
		idx := perClass[y]
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		cut := int(float64(len(idx)) * trainFrac)
		trainIdx = append(trainIdx, idx[:cut]...)
		testIdx = append(testIdx, idx[cut:]...)
	}
	rng.Shuffle(len(trainIdx), func(i, j int) { trainIdx[i], trainIdx[j] = trainIdx[j], trainIdx[i] })
	rng.Shuffle(len(testIdx), func(i, j int) { testIdx[i], testIdx[j] = testIdx[j], testIdx[i] })
	return d.Subset(trainIdx), d.Subset(testIdx)
}

// Fold is one cross-validation fold.
type Fold struct {
	Train *Dataset
	Test  *Dataset
}

// KFold returns k stratified folds. Every fold shares its feature vectors
// with the receiver (see Subset).
func (d *Dataset) KFold(k int, rng *sim.RNG) []Fold {
	if k < 2 {
		panic("dataset: k-fold needs k >= 2")
	}
	perClass := make(map[int][]int)
	for i, y := range d.Y {
		perClass[y] = append(perClass[y], i)
	}
	assign := make([]int, len(d.Y)) // row → fold
	for _, idx := range perClass {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for i, row := range idx {
			assign[row] = i % k
		}
	}
	folds := make([]Fold, k)
	for f := 0; f < k; f++ {
		var trainIdx, testIdx []int
		for row, fa := range assign {
			if fa == f {
				testIdx = append(testIdx, row)
			} else {
				trainIdx = append(trainIdx, row)
			}
		}
		folds[f] = Fold{Train: d.Subset(trainIdx), Test: d.Subset(testIdx)}
	}
	return folds
}

// SamplePerClass returns a dataset holding at most n rows of each class,
// chosen uniformly — used to cap dataset sizes for expensive learners. The
// sampled rows share their feature vectors with the receiver (see Subset).
func (d *Dataset) SamplePerClass(n int, rng *sim.RNG) *Dataset {
	perClass := make(map[int][]int)
	for i, y := range d.Y {
		perClass[y] = append(perClass[y], i)
	}
	var keep []int
	for y := 0; y < len(d.Classes); y++ {
		idx := perClass[y]
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		if len(idx) > n {
			idx = idx[:n]
		}
		keep = append(keep, idx...)
	}
	rng.Shuffle(len(keep), func(i, j int) { keep[i], keep[j] = keep[j], keep[i] })
	return d.Subset(keep)
}

// Scaler standardises features to zero mean and unit variance; distance-
// and gradient-based learners need it, trees do not.
type Scaler struct {
	Mean []float64
	Std  []float64
}

// FitScaler learns standardisation parameters from a dataset.
func FitScaler(d *Dataset) *Scaler {
	dim := d.Dim()
	s := &Scaler{Mean: make([]float64, dim), Std: make([]float64, dim)}
	if d.Len() == 0 {
		for j := range s.Std {
			s.Std[j] = 1
		}
		return s
	}
	n := float64(d.Len())
	for _, x := range d.X {
		for j, v := range x {
			s.Mean[j] += v
		}
	}
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, x := range d.X {
		for j, v := range x {
			dv := v - s.Mean[j]
			s.Std[j] += dv * dv
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / n)
		if s.Std[j] < 1e-12 {
			s.Std[j] = 1
		}
	}
	return s
}

// Transform standardises one vector into a new slice.
func (s *Scaler) Transform(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - s.Mean[j]) / s.Std[j]
	}
	return out
}

// TransformAll standardises a whole dataset into a copy.
func (s *Scaler) TransformAll(d *Dataset) *Dataset {
	out := New(d.Classes, d.Features)
	out.X = make([][]float64, d.Len())
	out.Y = make([]int, d.Len())
	copy(out.Y, d.Y)
	for i, x := range d.X {
		out.X[i] = s.Transform(x)
	}
	return out
}
