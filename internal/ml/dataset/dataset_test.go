package dataset_test

import (
	"math"
	"testing"

	"ltefp/internal/ml/dataset"
	"ltefp/internal/sim"
)

func synthetic(n int, seed uint64) *dataset.Dataset {
	g := sim.NewRNG(seed)
	ds := dataset.New([]string{"a", "b", "c"}, []string{"x", "y"})
	for i := 0; i < n; i++ {
		y := g.IntN(3)
		ds.Add([]float64{g.Normal(float64(y), 1), g.Normal(-float64(y), 2)}, y)
	}
	return ds
}

func TestValidate(t *testing.T) {
	ds := synthetic(50, 1)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	ds.Y[0] = 7
	if err := ds.Validate(); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	ds.Y[0] = 0
	ds.X[0] = []float64{1}
	if err := ds.Validate(); err == nil {
		t.Fatal("ragged rows accepted")
	}
	bad := &dataset.Dataset{X: [][]float64{{1}}, Classes: []string{"a"}}
	if err := bad.Validate(); err == nil {
		t.Fatal("row/label mismatch accepted")
	}
}

func TestSplitStratified(t *testing.T) {
	ds := synthetic(1000, 2)
	train, test := ds.Split(0.8, sim.NewRNG(3))
	if train.Len()+test.Len() != ds.Len() {
		t.Fatalf("split lost rows: %d + %d != %d", train.Len(), test.Len(), ds.Len())
	}
	all := ds.ClassCounts()
	tr := train.ClassCounts()
	for c := range all {
		frac := float64(tr[c]) / float64(all[c])
		if math.Abs(frac-0.8) > 0.01 {
			t.Fatalf("class %d train fraction = %.3f, want 0.8 (stratified)", c, frac)
		}
	}
}

func TestSplitPanicsOnBadFraction(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Split(1.5) did not panic")
		}
	}()
	synthetic(10, 1).Split(1.5, sim.NewRNG(1))
}

func TestKFoldPartition(t *testing.T) {
	ds := synthetic(300, 4)
	folds := ds.KFold(5, sim.NewRNG(5))
	if len(folds) != 5 {
		t.Fatalf("%d folds", len(folds))
	}
	testTotal := 0
	for _, f := range folds {
		testTotal += f.Test.Len()
		if f.Train.Len()+f.Test.Len() != ds.Len() {
			t.Fatal("fold does not partition the dataset")
		}
	}
	if testTotal != ds.Len() {
		t.Fatalf("test folds cover %d rows, want %d", testTotal, ds.Len())
	}
}

func TestSamplePerClass(t *testing.T) {
	ds := synthetic(900, 6)
	small := ds.SamplePerClass(50, sim.NewRNG(7))
	for c, n := range small.ClassCounts() {
		if n > 50 {
			t.Fatalf("class %d has %d rows after capping at 50", c, n)
		}
	}
}

func TestScaler(t *testing.T) {
	ds := synthetic(5000, 8)
	sc := dataset.FitScaler(ds)
	scaled := sc.TransformAll(ds)
	dim := ds.Dim()
	for j := 0; j < dim; j++ {
		var sum, sq float64
		for _, x := range scaled.X {
			sum += x[j]
			sq += x[j] * x[j]
		}
		n := float64(scaled.Len())
		mean := sum / n
		variance := sq/n - mean*mean
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("feature %d scaled mean = %v", j, mean)
		}
		if math.Abs(variance-1) > 1e-6 {
			t.Fatalf("feature %d scaled variance = %v", j, variance)
		}
	}
}

func TestScalerConstantFeature(t *testing.T) {
	ds := dataset.New([]string{"a"}, nil)
	ds.Add([]float64{5}, 0)
	ds.Add([]float64{5}, 0)
	sc := dataset.FitScaler(ds)
	out := sc.Transform([]float64{5})
	if math.IsNaN(out[0]) || math.IsInf(out[0], 0) {
		t.Fatalf("constant feature scaled to %v", out[0])
	}
}

func TestSubsetCopies(t *testing.T) {
	ds := synthetic(10, 9)
	sub := ds.Subset([]int{0, 1})
	sub.Y[0] = 2
	if ds.Y[0] == 2 && ds.Y[0] != synthetic(10, 9).Y[0] {
		t.Fatal("Subset shares label storage with parent")
	}
}

func TestSubsetSharesRowsCloneDoesNot(t *testing.T) {
	ds := synthetic(10, 9)
	orig := ds.X[0][0]

	sub := ds.Subset([]int{0, 1})
	sub.X[0][0] = orig + 100
	if ds.X[0][0] != orig+100 {
		t.Fatal("Subset documented as sharing rows, but mutation did not propagate")
	}
	ds.X[0][0] = orig

	cl := ds.Clone()
	if err := cl.Validate(); err != nil {
		t.Fatal(err)
	}
	if cl.Len() != ds.Len() || cl.Dim() != ds.Dim() {
		t.Fatalf("Clone shape (%d, %d) != (%d, %d)", cl.Len(), cl.Dim(), ds.Len(), ds.Dim())
	}
	for i := range cl.X {
		if cl.Y[i] != ds.Y[i] {
			t.Fatalf("Clone label %d differs", i)
		}
		for j := range cl.X[i] {
			if cl.X[i][j] != ds.X[i][j] {
				t.Fatalf("Clone row %d differs at %d", i, j)
			}
		}
	}
	cl.X[0][0] = orig + 500
	if ds.X[0][0] != orig {
		t.Fatal("Clone shares row storage with parent")
	}
}
