package metrics_test

import (
	"math"
	"strings"
	"testing"

	"ltefp/internal/ml/metrics"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestConfusionHandChecked(t *testing.T) {
	c := metrics.NewConfusion([]string{"cat", "dog"})
	// 3 cats: 2 right, 1 predicted dog. 2 dogs: 1 right, 1 predicted cat.
	c.Add(0, 0)
	c.Add(0, 0)
	c.Add(0, 1)
	c.Add(1, 1)
	c.Add(1, 0)

	if c.Total() != 5 {
		t.Fatalf("Total = %d", c.Total())
	}
	if c.Support(0) != 3 || c.Support(1) != 2 {
		t.Fatal("supports wrong")
	}
	if !almost(c.Precision(0), 2.0/3) {
		t.Fatalf("precision(cat) = %v", c.Precision(0))
	}
	if !almost(c.Recall(0), 2.0/3) {
		t.Fatalf("recall(cat) = %v", c.Recall(0))
	}
	if !almost(c.F1(0), 2.0/3) {
		t.Fatalf("f1(cat) = %v", c.F1(0))
	}
	if !almost(c.Precision(1), 0.5) || !almost(c.Recall(1), 0.5) {
		t.Fatal("dog metrics wrong")
	}
	if !almost(c.Accuracy(), 0.6) {
		t.Fatalf("accuracy = %v", c.Accuracy())
	}
	wantWeighted := (2.0/3*3 + 0.5*2) / 5
	if !almost(c.WeightedF1(), wantWeighted) {
		t.Fatalf("weighted f1 = %v, want %v", c.WeightedF1(), wantWeighted)
	}
	if !almost(c.MacroF1(), (2.0/3+0.5)/2) {
		t.Fatalf("macro f1 = %v", c.MacroF1())
	}
}

func TestConfusionDegenerate(t *testing.T) {
	c := metrics.NewConfusion([]string{"a", "b"})
	if c.Accuracy() != 0 || c.F1(0) != 0 || c.Precision(0) != 0 || c.Recall(0) != 0 {
		t.Fatal("empty confusion should score zero, not NaN")
	}
	c.Add(0, 0)
	if c.Recall(1) != 0 || c.Precision(1) != 0 {
		t.Fatal("absent class should score zero")
	}
}

func TestConfusionString(t *testing.T) {
	c := metrics.NewConfusion([]string{"a"})
	c.Add(0, 0)
	s := c.String()
	if !strings.Contains(s, "a") || !strings.Contains(s, "accuracy") {
		t.Fatalf("String() = %q", s)
	}
}

func TestBinaryCounts(t *testing.T) {
	var b metrics.BinaryCounts
	b.Add(true, true)   // TP
	b.Add(true, true)   // TP
	b.Add(true, false)  // FN
	b.Add(false, true)  // FP
	b.Add(false, false) // TN
	if b.TP != 2 || b.FN != 1 || b.FP != 1 || b.TN != 1 {
		t.Fatalf("counts = %+v", b)
	}
	if !almost(b.Precision(), 2.0/3) {
		t.Fatalf("precision = %v", b.Precision())
	}
	if !almost(b.Recall(), 2.0/3) {
		t.Fatalf("recall = %v", b.Recall())
	}
	if !almost(b.F1(), 2.0/3) {
		t.Fatalf("f1 = %v", b.F1())
	}
	if !almost(b.Accuracy(), 0.6) {
		t.Fatalf("accuracy = %v", b.Accuracy())
	}
	var empty metrics.BinaryCounts
	if empty.Precision() != 0 || empty.Recall() != 0 || empty.F1() != 0 || empty.Accuracy() != 0 {
		t.Fatal("empty binary counts should score zero")
	}
}
