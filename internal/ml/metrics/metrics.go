// Package metrics provides the classification quality measures the paper
// reports: per-class precision, recall, and F-score, overall and weighted
// accuracy, and the confusion matrix behind them.
package metrics

import (
	"fmt"
	"strings"
)

// Confusion is a confusion matrix over named classes. Rows are true
// classes, columns predicted classes.
type Confusion struct {
	Classes []string
	Counts  [][]int
	total   int
}

// NewConfusion returns an empty matrix over the given classes.
func NewConfusion(classes []string) *Confusion {
	m := make([][]int, len(classes))
	for i := range m {
		m[i] = make([]int, len(classes))
	}
	return &Confusion{Classes: classes, Counts: m}
}

// Add records one prediction.
func (c *Confusion) Add(trueClass, predicted int) {
	c.Counts[trueClass][predicted]++
	c.total++
}

// Total returns the number of recorded predictions.
func (c *Confusion) Total() int { return c.total }

// Support returns the number of true instances of a class.
func (c *Confusion) Support(class int) int {
	n := 0
	for _, v := range c.Counts[class] {
		n += v
	}
	return n
}

// Precision returns TP / (TP + FP) for a class (0 when never predicted).
func (c *Confusion) Precision(class int) float64 {
	tp := c.Counts[class][class]
	pred := 0
	for t := range c.Counts {
		pred += c.Counts[t][class]
	}
	if pred == 0 {
		return 0
	}
	return float64(tp) / float64(pred)
}

// Recall returns TP / (TP + FN) for a class (0 when no true instances).
func (c *Confusion) Recall(class int) float64 {
	sup := c.Support(class)
	if sup == 0 {
		return 0
	}
	return float64(c.Counts[class][class]) / float64(sup)
}

// F1 returns the harmonic mean of precision and recall for a class.
func (c *Confusion) F1(class int) float64 {
	p, r := c.Precision(class), c.Recall(class)
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy returns overall accuracy.
func (c *Confusion) Accuracy() float64 {
	if c.total == 0 {
		return 0
	}
	correct := 0
	for i := range c.Counts {
		correct += c.Counts[i][i]
	}
	return float64(correct) / float64(c.total)
}

// WeightedF1 returns the support-weighted mean of per-class F-scores.
func (c *Confusion) WeightedF1() float64 {
	if c.total == 0 {
		return 0
	}
	sum := 0.0
	for i := range c.Classes {
		sum += c.F1(i) * float64(c.Support(i))
	}
	return sum / float64(c.total)
}

// MacroF1 returns the unweighted mean of per-class F-scores.
func (c *Confusion) MacroF1() float64 {
	if len(c.Classes) == 0 {
		return 0
	}
	sum := 0.0
	for i := range c.Classes {
		sum += c.F1(i)
	}
	return sum / float64(len(c.Classes))
}

// String renders the matrix with per-class metrics, one class per line.
func (c *Confusion) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %9s %9s %9s %9s\n", "class", "support", "prec", "recall", "f1")
	for i, name := range c.Classes {
		fmt.Fprintf(&b, "%-16s %9d %9.3f %9.3f %9.3f\n",
			name, c.Support(i), c.Precision(i), c.Recall(i), c.F1(i))
	}
	fmt.Fprintf(&b, "accuracy %.3f  weighted-f1 %.3f\n", c.Accuracy(), c.WeightedF1())
	return b.String()
}

// BinaryCounts accumulates binary detection outcomes for attacks that are
// yes/no decisions (the correlation attack's contact detection).
type BinaryCounts struct {
	TP, FP, TN, FN int
}

// Add records one binary outcome.
func (b *BinaryCounts) Add(truth, predicted bool) {
	switch {
	case truth && predicted:
		b.TP++
	case !truth && predicted:
		b.FP++
	case truth && !predicted:
		b.FN++
	default:
		b.TN++
	}
}

// Precision returns TP / (TP + FP), 0 when nothing was predicted positive.
func (b *BinaryCounts) Precision() float64 {
	if b.TP+b.FP == 0 {
		return 0
	}
	return float64(b.TP) / float64(b.TP+b.FP)
}

// Recall returns TP / (TP + FN), 0 when there were no positives.
func (b *BinaryCounts) Recall() float64 {
	if b.TP+b.FN == 0 {
		return 0
	}
	return float64(b.TP) / float64(b.TP+b.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (b *BinaryCounts) F1() float64 {
	p, r := b.Precision(), b.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy returns the fraction of correct decisions.
func (b *BinaryCounts) Accuracy() float64 {
	n := b.TP + b.FP + b.TN + b.FN
	if n == 0 {
		return 0
	}
	return float64(b.TP+b.TN) / float64(n)
}
