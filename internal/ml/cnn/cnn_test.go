package cnn_test

import (
	"math"
	"testing"

	"ltefp/internal/ml/cnn"
	"ltefp/internal/ml/dataset"
	"ltefp/internal/sim"
)

func blobs(n, dim int, seed uint64) *dataset.Dataset {
	g := sim.NewRNG(seed)
	ds := dataset.New([]string{"a", "b", "c"}, nil)
	for i := 0; i < n; i++ {
		y := i % 3
		x := make([]float64, dim)
		for j := range x {
			x[j] = g.Normal(float64(2*y), 1)
		}
		x[y] += 4 // positional signature for the convolution to find
		ds.Add(x, y)
	}
	return ds
}

func TestSeparableAccuracy(t *testing.T) {
	ds := blobs(1500, 18, 1)
	train, test := ds.Split(0.8, sim.NewRNG(2))
	m, err := cnn.Train(train, cnn.Config{Epochs: 25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, x := range test.X {
		if m.Predict(x) == test.Y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(test.Len()); acc < 0.9 {
		t.Fatalf("accuracy on separable blobs = %.3f", acc)
	}
}

func TestProbabilities(t *testing.T) {
	ds := blobs(300, 12, 3)
	m, err := cnn.Train(ds, cnn.Config{Epochs: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range ds.X[:30] {
		p := m.PredictProba(x)
		sum := 0.0
		for _, v := range p {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("probability %v out of range", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("probabilities sum to %v", sum)
		}
	}
}

// TestSurvivesOutliers: extreme rows (heavy-tailed traffic features) must
// not blow up training — the gradient clipping regression test.
func TestSurvivesOutliers(t *testing.T) {
	ds := blobs(600, 10, 4)
	g := sim.NewRNG(5)
	// Heavy-tailed bursts: a few rows with features dozens of standard
	// deviations out, as burst windows in real traffic are.
	for i := 0; i < 30; i++ {
		row := g.IntN(ds.Len())
		ds.X[row][g.IntN(10)] += 200
	}
	m, err := cnn.Train(ds, cnn.Config{Epochs: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	preds := make(map[int]int)
	correct := 0
	for i, x := range ds.X {
		p := m.Predict(x)
		preds[p]++
		if p == ds.Y[i] {
			correct++
		}
	}
	if len(preds) < 2 {
		t.Fatalf("model collapsed to a single class: %v", preds)
	}
	if acc := float64(correct) / float64(ds.Len()); acc < 0.6 {
		t.Fatalf("accuracy with outliers = %.3f", acc)
	}
}

func TestOddInputLength(t *testing.T) {
	// Odd dims exercise the max-pool edge (last slot pools one element).
	ds := blobs(300, 7, 6)
	m, err := cnn.Train(ds, cnn.Config{Epochs: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_ = m.Predict(ds.X[0])
}

func TestErrors(t *testing.T) {
	empty := dataset.New([]string{"a"}, nil)
	if _, err := cnn.Train(empty, cnn.Config{}); err == nil {
		t.Fatal("empty training set accepted")
	}
}
