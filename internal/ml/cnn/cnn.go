// Package cnn implements a small one-dimensional convolutional network
// (conv → ReLU → max-pool → dense → softmax) trained with softmax
// cross-entropy, reproducing the paper's Table VIII CNN baseline. The paper
// finds the CNN the *weakest* of the four learners on this task — the
// features are simple tabular aggregates where convolution has little
// structure to exploit — and prefers Random Forest for accuracy and cost;
// this implementation exists to reproduce that comparison honestly.
package cnn

import (
	"fmt"
	"math"

	"ltefp/internal/ml/dataset"
	"ltefp/internal/sim"
)

// Config controls network shape and training. Zero values select the
// noted defaults.
type Config struct {
	// Channels is the number of convolution filters (default 8).
	Channels int
	// Kernel is the convolution width (default 3, stride 1, same-pad).
	Kernel int
	// Epochs is the number of training passes (default 40).
	Epochs int
	// LearningRate is the SGD step (default 0.02).
	LearningRate float64
	// Momentum is the SGD momentum coefficient (default 0.9).
	Momentum float64
	// Seed drives weight initialisation and shuffling.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Channels <= 0 {
		c.Channels = 8
	}
	if c.Kernel <= 0 {
		c.Kernel = 3
	}
	if c.Epochs <= 0 {
		c.Epochs = 40
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.02
	}
	if c.Momentum <= 0 {
		c.Momentum = 0.9
	}
	return c
}

// Model is a trained network.
type Model struct {
	Classes []string

	cfg    Config
	dim    int // input length
	pooled int // length after 2-wide max pooling

	convW []float64 // [channel][kernel]
	convB []float64 // [channel]
	fcW   []float64 // [class][channel*pooled]
	fcB   []float64 // [class]

	scaler *dataset.Scaler
}

// Train fits the network with momentum SGD.
func Train(d *dataset.Dataset, cfg Config) (*Model, error) {
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("cnn: %w", err)
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("cnn: empty training set")
	}
	cfg = cfg.withDefaults()
	sc := dataset.FitScaler(d)
	scaled := sc.TransformAll(d)

	dim := d.Dim()
	m := &Model{
		Classes: d.Classes,
		cfg:     cfg,
		dim:     dim,
		pooled:  (dim + 1) / 2,
		scaler:  sc,
	}
	nc := len(d.Classes)
	rng := sim.NewRNG(cfg.Seed + 0x9747b28c)
	m.convW = heInit(rng, cfg.Channels*cfg.Kernel, float64(cfg.Kernel))
	m.convB = make([]float64, cfg.Channels)
	m.fcW = heInit(rng, nc*cfg.Channels*m.pooled, float64(cfg.Channels*m.pooled))
	m.fcB = make([]float64, nc)

	vConvW := make([]float64, len(m.convW))
	vConvB := make([]float64, len(m.convB))
	vFcW := make([]float64, len(m.fcW))
	vFcB := make([]float64, len(m.fcB))

	order := make([]int, d.Len())
	for i := range order {
		order[i] = i
	}
	ws := m.newWorkspace()
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		lr := cfg.LearningRate / (1 + 0.05*float64(epoch))
		for _, i := range order {
			m.forward(scaled.X[i], ws)
			m.backward(scaled.X[i], scaled.Y[i], ws)
			// Heavy-tailed traffic features produce extreme standardised
			// outliers; clip the per-sample gradient so one burst window
			// cannot blow up the weights.
			clipGradients(5, ws.gConvW, ws.gConvB, ws.gFcW, ws.gFcB)
			applyMomentum(m.convW, ws.gConvW, vConvW, lr, cfg.Momentum)
			applyMomentum(m.convB, ws.gConvB, vConvB, lr, cfg.Momentum)
			applyMomentum(m.fcW, ws.gFcW, vFcW, lr, cfg.Momentum)
			applyMomentum(m.fcB, ws.gFcB, vFcB, lr, cfg.Momentum)
		}
	}
	return m, nil
}

// workspace holds per-sample activations and gradients, reused across
// steps to avoid allocation.
type workspace struct {
	act    []float64 // conv activations [channel][dim]
	pool   []float64 // pooled [channel][pooled]
	argmax []int
	logits []float64
	probs  []float64

	gConvW, gConvB []float64
	gFcW, gFcB     []float64
}

func (m *Model) newWorkspace() *workspace {
	ch, nc := m.cfg.Channels, len(m.Classes)
	return &workspace{
		act:    make([]float64, ch*m.dim),
		pool:   make([]float64, ch*m.pooled),
		argmax: make([]int, ch*m.pooled),
		logits: make([]float64, nc),
		probs:  make([]float64, nc),
		gConvW: make([]float64, len(m.convW)),
		gConvB: make([]float64, len(m.convB)),
		gFcW:   make([]float64, len(m.fcW)),
		gFcB:   make([]float64, len(m.fcB)),
	}
}

// forward runs the network on a standardised input.
func (m *Model) forward(x []float64, ws *workspace) {
	ch, k := m.cfg.Channels, m.cfg.Kernel
	half := k / 2
	for c := 0; c < ch; c++ {
		for p := 0; p < m.dim; p++ {
			z := m.convB[c]
			for kk := 0; kk < k; kk++ {
				ip := p + kk - half
				if ip < 0 || ip >= m.dim {
					continue
				}
				z += m.convW[c*k+kk] * x[ip]
			}
			if z < 0 {
				z = 0
			}
			ws.act[c*m.dim+p] = z
		}
		for q := 0; q < m.pooled; q++ {
			i0 := 2 * q
			best, arg := ws.act[c*m.dim+i0], i0
			if i1 := i0 + 1; i1 < m.dim && ws.act[c*m.dim+i1] > best {
				best, arg = ws.act[c*m.dim+i1], i1
			}
			ws.pool[c*m.pooled+q] = best
			ws.argmax[c*m.pooled+q] = arg
		}
	}
	flat := ws.pool
	nc := len(m.Classes)
	maxZ := math.Inf(-1)
	for y := 0; y < nc; y++ {
		z := m.fcB[y]
		w := m.fcW[y*len(flat) : (y+1)*len(flat)]
		for j, v := range flat {
			z += w[j] * v
		}
		ws.logits[y] = z
		if z > maxZ {
			maxZ = z
		}
	}
	sum := 0.0
	for y := range ws.probs {
		ws.probs[y] = math.Exp(ws.logits[y] - maxZ)
		sum += ws.probs[y]
	}
	for y := range ws.probs {
		ws.probs[y] /= sum
	}
}

// backward fills the gradient buffers for one sample.
func (m *Model) backward(x []float64, y int, ws *workspace) {
	ch, k := m.cfg.Channels, m.cfg.Kernel
	half := k / 2
	flatLen := ch * m.pooled
	zero(ws.gConvW)
	zero(ws.gConvB)
	zero(ws.gFcW)
	zero(ws.gFcB)

	// Softmax cross-entropy gradient at the logits.
	for c := 0; c < len(m.Classes); c++ {
		g := ws.probs[c]
		if c == y {
			g -= 1
		}
		ws.gFcB[c] = g
		w := ws.gFcW[c*flatLen : (c+1)*flatLen]
		for j, v := range ws.pool {
			w[j] = g * v
		}
	}
	// Backprop into the pooled map, routed through argmax and ReLU.
	for c := 0; c < ch; c++ {
		for q := 0; q < m.pooled; q++ {
			var gp float64
			for cls := 0; cls < len(m.Classes); cls++ {
				gp += ws.gFcB[cls] * m.fcW[cls*flatLen+c*m.pooled+q]
			}
			p := ws.argmax[c*m.pooled+q]
			if ws.act[c*m.dim+p] <= 0 {
				continue // ReLU gate
			}
			ws.gConvB[c] += gp
			for kk := 0; kk < k; kk++ {
				ip := p + kk - half
				if ip < 0 || ip >= m.dim {
					continue
				}
				ws.gConvW[c*k+kk] += gp * x[ip]
			}
		}
	}
}

// PredictProba returns class probabilities for a raw (unscaled) input.
func (m *Model) PredictProba(x []float64) []float64 {
	ws := m.newWorkspace()
	m.forward(m.scaler.Transform(x), ws)
	out := make([]float64, len(ws.probs))
	copy(out, ws.probs)
	return out
}

// Predict returns the most probable class index.
func (m *Model) Predict(x []float64) int {
	p := m.PredictProba(x)
	best, bv := 0, p[0]
	for c, v := range p {
		if v > bv {
			best, bv = c, v
		}
	}
	return best
}

func heInit(rng *sim.RNG, n int, fanIn float64) []float64 {
	out := make([]float64, n)
	s := math.Sqrt(2 / fanIn)
	for i := range out {
		out[i] = rng.Normal(0, s)
	}
	return out
}

// clipGradients rescales the concatenated gradient to the given L2 norm
// when it exceeds it.
func clipGradients(maxNorm float64, grads ...[]float64) {
	var sq float64
	for _, g := range grads {
		for _, v := range g {
			sq += v * v
		}
	}
	if sq <= maxNorm*maxNorm {
		return
	}
	scale := maxNorm / math.Sqrt(sq)
	for _, g := range grads {
		for i := range g {
			g[i] *= scale
		}
	}
}

func applyMomentum(w, g, v []float64, lr, mom float64) {
	for i := range w {
		v[i] = mom*v[i] - lr*g[i]
		w[i] += v[i]
	}
}

func zero(v []float64) {
	for i := range v {
		v[i] = 0
	}
}
