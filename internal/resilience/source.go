package resilience

import (
	"fmt"
	"time"

	"ltefp/internal/obs"
	"ltefp/internal/trace"
)

// Source mirrors stream.Source structurally, so any pipeline source can
// be wrapped without importing the stream package here.
type Source interface {
	Next(dst trace.Trace) (out trace.Trace, now time.Duration, more bool)
}

// GuardedSource degrades a flaky sniffer instead of crashing the
// pipeline: a panicking Next is recovered and converted into an empty
// slice (simulated time keeps advancing by Slice so downstream windows
// stay aligned), every shed slice is counted, and a circuit breaker
// decides when the sniffer is unhealthy enough to stop probing for a
// cooldown. Only after GiveUpAfter consecutive failures does the source
// report end-of-stream — the daemon's supervisor then restarts the
// capture from its last checkpoint.
//
// GuardedSource is not safe for concurrent use, matching the Source
// contract.
type GuardedSource struct {
	Src Source
	// Slice is the simulated time advanced per shed slice (default
	// 100 ms, the pipeline's default slice).
	Slice time.Duration
	// Breaker, when set, gates probes of the wrapped source after
	// failures; while open, slices are shed without touching the source.
	Breaker *Breaker
	// GiveUpAfter ends the stream after this many consecutive failed
	// probes (default 0: never give up; the breaker alone paces probing).
	GiveUpAfter int
	// Metrics counts sheds and recovered panics. Zero Scope disables.
	Metrics obs.Scope

	// ShedSlices counts slices degraded to empty; Panics counts recovered
	// source panics; LastErr keeps the newest failure.
	ShedSlices int64
	Panics     int64
	LastErr    error

	consecutive int
	now         time.Duration
	shedC       *obs.Counter
	panicC      *obs.Counter
	bound       bool
}

func (g *GuardedSource) bind() {
	if g.bound {
		return
	}
	g.bound = true
	g.shedC = g.Metrics.Counter("guard_shed_slices")
	g.panicC = g.Metrics.Counter("guard_panics")
	if g.Slice <= 0 {
		g.Slice = 100 * time.Millisecond
	}
}

// shed returns one degraded (empty) slice.
func (g *GuardedSource) shed(dst trace.Trace) (trace.Trace, time.Duration, bool) {
	g.ShedSlices++
	g.shedC.Inc()
	g.now += g.Slice
	return dst, g.now, true
}

// probe calls the wrapped source, converting a panic into an error.
func (g *GuardedSource) probe(dst trace.Trace) (out trace.Trace, now time.Duration, more bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			g.Panics++
			g.panicC.Inc()
			err = fmt.Errorf("resilience: source panicked: %v", r)
		}
	}()
	out, now, more = g.Src.Next(dst)
	return out, now, more, nil
}

// Next implements Source.
func (g *GuardedSource) Next(dst trace.Trace) (trace.Trace, time.Duration, bool) {
	g.bind()
	if g.GiveUpAfter > 0 && g.consecutive >= g.GiveUpAfter {
		return dst, g.now, false
	}
	if g.Breaker != nil && !g.Breaker.Allow() {
		return g.shed(dst)
	}
	out, now, more, err := g.probe(dst)
	if g.Breaker != nil {
		g.Breaker.Record(err)
	}
	if err != nil {
		g.LastErr = err
		g.consecutive++
		if g.GiveUpAfter > 0 && g.consecutive >= g.GiveUpAfter {
			return dst, g.now, false
		}
		return g.shed(dst)
	}
	g.consecutive = 0
	g.now = now
	return out, now, more
}
