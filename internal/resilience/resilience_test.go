package resilience_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"ltefp/internal/resilience"
	"ltefp/internal/sim"
	"ltefp/internal/trace"
)

func TestBackoffSchedule(t *testing.T) {
	b := resilience.Backoff{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second,
	}
	for i, w := range want {
		if got := b.Delay(i); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	b := resilience.NewBackoff(sim.NewRNG(7))
	for i := 0; i < 8; i++ {
		full := resilience.Backoff{Base: b.Base, Max: b.Max, Factor: b.Factor}.Delay(i)
		for trial := 0; trial < 50; trial++ {
			d := b.Delay(i)
			if d > full || d < full/2 {
				t.Fatalf("Delay(%d) = %v outside [%v, %v]", i, d, full/2, full)
			}
		}
	}
}

func TestRetryStopsOnSuccess(t *testing.T) {
	calls := 0
	err := resilience.Retry(context.Background(), resilience.RetryConfig{
		Sleep: func(context.Context, time.Duration) error { return nil },
	}, func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err = %v, calls = %d; want nil, 3", err, calls)
	}
}

func TestRetryExhaustsBudget(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	err := resilience.Retry(context.Background(), resilience.RetryConfig{
		Attempts: 4,
		Sleep:    func(context.Context, time.Duration) error { return nil },
	}, func(context.Context) error { calls++; return boom })
	if calls != 4 || !errors.Is(err, boom) {
		t.Fatalf("calls = %d, err = %v; want 4 attempts wrapping boom", calls, err)
	}
}

func TestRetryPermanentShortCircuits(t *testing.T) {
	boom := errors.New("fatal")
	calls := 0
	err := resilience.Retry(context.Background(), resilience.RetryConfig{
		Sleep: func(context.Context, time.Duration) error { return nil },
	}, func(context.Context) error {
		calls++
		return resilience.Permanent{Err: boom}
	})
	if calls != 1 || !errors.Is(err, boom) {
		t.Fatalf("calls = %d, err = %v; want 1 call returning the permanent error", calls, err)
	}
	if !resilience.IsPermanent(err) {
		t.Error("permanence mark lost through Retry")
	}
}

func TestRetryHonoursCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := resilience.Retry(ctx, resilience.RetryConfig{
		Attempts: -1,
		Sleep: func(ctx context.Context, _ time.Duration) error {
			cancel()
			return ctx.Err()
		},
	}, func(context.Context) error { calls++; return errors.New("transient") })
	if calls != 1 || err == nil {
		t.Fatalf("calls = %d, err = %v; want 1 call and the last failure", calls, err)
	}
}

// fakeClock is a manually advanced breaker clock.
type fakeClock struct{ at time.Time }

func (f *fakeClock) now() time.Time { return f.at }

func TestBreakerLifecycle(t *testing.T) {
	clk := &fakeClock{at: time.Unix(0, 0)}
	var transitions []string
	b := resilience.NewBreaker(resilience.BreakerConfig{
		FailureThreshold: 3,
		Cooldown:         time.Second,
		SuccessesToClose: 2,
		Clock:            clk.now,
		OnStateChange: func(from, to resilience.BreakerState) {
			transitions = append(transitions, from.String()+"->"+to.String())
		},
	})

	boom := errors.New("boom")
	fail := func() error { return b.Do(func() error { return boom }) }
	ok := func() error { return b.Do(func() error { return nil }) }

	// Two failures stay closed; the third trips it.
	fail()
	fail()
	if b.State() != resilience.Closed {
		t.Fatal("breaker tripped early")
	}
	fail()
	if b.State() != resilience.Open {
		t.Fatal("breaker did not trip at the threshold")
	}
	if err := fail(); !errors.Is(err, resilience.ErrOpen) {
		t.Fatalf("open breaker ran the call: %v", err)
	}

	// Cooldown elapses: one probe is admitted; a failure re-opens.
	clk.at = clk.at.Add(time.Second)
	if b.State() != resilience.HalfOpen {
		t.Fatal("cooldown did not half-open the breaker")
	}
	fail()
	if b.State() != resilience.Open {
		t.Fatal("failed probe did not re-open")
	}

	// Next cooldown: two successful probes close it.
	clk.at = clk.at.Add(time.Second)
	ok()
	if b.State() != resilience.HalfOpen {
		t.Fatal("closed after a single probe success")
	}
	ok()
	if b.State() != resilience.Closed {
		t.Fatal("did not close after enough probe successes")
	}

	want := "closed->open open->half-open half-open->open open->half-open half-open->closed"
	got := ""
	for i, tr := range transitions {
		if i > 0 {
			got += " "
		}
		got += tr
	}
	if got != want {
		t.Fatalf("transitions = %q, want %q", got, want)
	}
}

// flakySource panics on scheduled calls and otherwise emits one record
// per slice.
type flakySource struct {
	calls   int
	panicOn map[int]bool
	now     time.Duration
	dead    bool
}

func (f *flakySource) Next(dst trace.Trace) (trace.Trace, time.Duration, bool) {
	f.calls++
	if f.panicOn[f.calls] {
		panic("sniffer fault")
	}
	if f.dead {
		panic("sniffer dead")
	}
	f.now += 100 * time.Millisecond
	dst = append(dst, trace.Record{At: f.now - time.Millisecond, CellID: 1, RNTI: 100, Bytes: 42})
	return dst, f.now, f.now < time.Second
}

func TestGuardedSourceShedsAndRecovers(t *testing.T) {
	src := &flakySource{panicOn: map[int]bool{2: true, 3: true}}
	g := &resilience.GuardedSource{Src: src}

	var records int
	slices := 0
	for {
		out, _, more := g.Next(nil)
		records += len(out)
		slices++
		if !more || slices > 100 {
			break
		}
	}
	if g.ShedSlices != 2 || g.Panics != 2 {
		t.Fatalf("ShedSlices = %d, Panics = %d; want 2, 2", g.ShedSlices, g.Panics)
	}
	if records != 10 { // 10 healthy slices of 1 record each
		t.Fatalf("records = %d, want 10", records)
	}
	if g.LastErr == nil {
		t.Fatal("LastErr not recorded")
	}
}

func TestGuardedSourceTimeKeepsAdvancing(t *testing.T) {
	src := &flakySource{panicOn: map[int]bool{1: true, 2: true, 3: true}}
	g := &resilience.GuardedSource{Src: src}
	var prev time.Duration
	for i := 0; i < 3; i++ {
		_, now, more := g.Next(nil)
		if now <= prev || !more {
			t.Fatalf("slice %d: now = %v (prev %v), more = %v; shed slices must advance time", i, now, prev, more)
		}
		prev = now
	}
}

func TestGuardedSourceGivesUp(t *testing.T) {
	src := &flakySource{dead: true}
	g := &resilience.GuardedSource{Src: src, GiveUpAfter: 3}
	for i := 0; i < 10; i++ {
		if _, _, more := g.Next(nil); !more {
			if g.Panics != 3 {
				t.Fatalf("Panics = %d at give-up, want 3", g.Panics)
			}
			return
		}
	}
	t.Fatal("guarded source never gave up on a dead sniffer")
}

func TestGuardedSourceBreakerPacesProbes(t *testing.T) {
	clk := &fakeClock{at: time.Unix(0, 0)}
	src := &flakySource{dead: true}
	g := &resilience.GuardedSource{
		Src: src,
		Breaker: resilience.NewBreaker(resilience.BreakerConfig{
			FailureThreshold: 2,
			Cooldown:         time.Hour,
			Clock:            clk.now,
		}),
	}
	for i := 0; i < 20; i++ {
		g.Next(nil)
	}
	if src.calls != 2 {
		t.Fatalf("dead sniffer probed %d times behind an open breaker, want 2", src.calls)
	}
	if g.ShedSlices != 20 {
		t.Fatalf("ShedSlices = %d, want 20 (every slice degraded)", g.ShedSlices)
	}

	// Cooldown elapses: exactly one more probe.
	clk.at = clk.at.Add(time.Hour)
	g.Next(nil)
	if src.calls != 3 {
		t.Fatalf("half-open breaker probed %d times total, want 3", src.calls)
	}
}
