// Package resilience holds the failure-handling primitives the capture
// daemon composes around the streaming pipeline: retry with jittered
// exponential backoff for restartable stages, a per-stage circuit breaker
// that stops hammering a persistently failing dependency, and a source
// guard that degrades a flapping sniffer into counted sheds instead of a
// pipeline crash.
//
// Everything here is deterministic given its inputs: time is injected
// (Clock/Sleep hooks) and jitter draws come from the repository's seeded
// sim.RNG, so the daemon's e2e tests replay failure schedules exactly.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"ltefp/internal/obs"
	"ltefp/internal/sim"
)

// Backoff computes jittered exponential delays: attempt n (0-based)
// waits Base·Factor^n, capped at Max, with the final delay drawn
// uniformly from [delay·(1−Jitter), delay]. The zero value is unusable;
// use NewBackoff for the daemon's defaults.
type Backoff struct {
	Base   time.Duration
	Max    time.Duration
	Factor float64
	// Jitter is the fraction of the delay randomised away (0 disables,
	// 0.5 means delays land in [half, full]).
	Jitter float64
	// RNG drives the jitter draws (required when Jitter > 0).
	RNG *sim.RNG
}

// NewBackoff returns the daemon's default schedule: 100 ms doubling to a
// 10 s cap with 50% jitter.
func NewBackoff(rng *sim.RNG) Backoff {
	return Backoff{Base: 100 * time.Millisecond, Max: 10 * time.Second, Factor: 2, Jitter: 0.5, RNG: rng}
}

// Delay returns the wait before retry attempt n (0-based).
func (b Backoff) Delay(attempt int) time.Duration {
	d := float64(b.Base)
	for i := 0; i < attempt; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if d > float64(b.Max) {
		d = float64(b.Max)
	}
	if b.Jitter > 0 && b.RNG != nil {
		d *= 1 - b.Jitter*b.RNG.Float64()
	}
	return time.Duration(d)
}

// Permanent marks an error as not worth retrying; Retry stops and returns
// it immediately.
type Permanent struct{ Err error }

// Error implements error.
func (p Permanent) Error() string { return p.Err.Error() }

// Unwrap exposes the wrapped error to errors.Is/As.
func (p Permanent) Unwrap() error { return p.Err }

// IsPermanent reports whether err is marked Permanent.
func IsPermanent(err error) bool {
	var p Permanent
	return errors.As(err, &p)
}

// RetryConfig controls Retry.
type RetryConfig struct {
	// Attempts bounds the total tries (default 5; <0 means unbounded).
	Attempts int
	Backoff  Backoff
	// Sleep replaces the inter-attempt wait (default time.Sleep with
	// context cancellation). Tests inject instant sleeps; the daemon's
	// supervisor injects the simulation clock.
	Sleep func(ctx context.Context, d time.Duration) error
	// OnRetry, when set, observes each failure that will be retried.
	OnRetry func(attempt int, err error, delay time.Duration)
}

// sleep is the default Sleep: real time, cancellable.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Retry runs fn until it succeeds, returns a Permanent error, exhausts
// the attempt budget, or the context is cancelled. The returned error is
// the last failure (wrapped with the attempt count when the budget is
// exhausted).
func Retry(ctx context.Context, cfg RetryConfig, fn func(ctx context.Context) error) error {
	attempts := cfg.Attempts
	if attempts == 0 {
		attempts = 5
	}
	slp := cfg.Sleep
	if slp == nil {
		slp = sleep
	}
	var last error
	for attempt := 0; attempts < 0 || attempt < attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			if last != nil {
				return last
			}
			return err
		}
		err := fn(ctx)
		if err == nil {
			return nil
		}
		last = err
		if IsPermanent(err) {
			return err
		}
		if attempts >= 0 && attempt == attempts-1 {
			break
		}
		d := cfg.Backoff.Delay(attempt)
		if cfg.OnRetry != nil {
			cfg.OnRetry(attempt, err, d)
		}
		if serr := slp(ctx, d); serr != nil {
			return last
		}
	}
	return fmt.Errorf("resilience: %d attempts exhausted: %w", attempts, last)
}

// BreakerState is a circuit breaker's position.
type BreakerState int

// Breaker states: Closed passes calls through, Open fails fast, HalfOpen
// admits probes.
const (
	Closed BreakerState = iota
	Open
	HalfOpen
)

// String names the state for logs and metrics.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", int(s))
}

// ErrOpen is returned by Breaker.Do while the circuit is open.
var ErrOpen = errors.New("resilience: circuit open")

// BreakerConfig controls a Breaker.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive failures trip the circuit
	// (default 5).
	FailureThreshold int
	// Cooldown is how long the circuit stays open before admitting a
	// half-open probe (default 5 s).
	Cooldown time.Duration
	// SuccessesToClose is how many consecutive probe successes close the
	// circuit again (default 2).
	SuccessesToClose int
	// Clock replaces time.Now (tests and the simulation-driven daemon).
	Clock func() time.Time
	// Metrics, when enabled, counts trips, probes, and fast-fails. Zero
	// Scope disables.
	Metrics obs.Scope
	// OnStateChange, when set, observes every transition.
	OnStateChange func(from, to BreakerState)
}

// Breaker is a consecutive-failure circuit breaker, safe for concurrent
// use.
type Breaker struct {
	cfg BreakerConfig

	mu        sync.Mutex
	state     BreakerState
	failures  int
	successes int
	openedAt  time.Time

	trips, fastFails, probes *obs.Counter
	bound                    bool
}

// NewBreaker returns a breaker with the defaults filled in.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 5
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 5 * time.Second
	}
	if cfg.SuccessesToClose <= 0 {
		cfg.SuccessesToClose = 2
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	b := &Breaker{cfg: cfg}
	b.trips = cfg.Metrics.Counter("breaker_trips")
	b.fastFails = cfg.Metrics.Counter("breaker_fast_fails")
	b.probes = cfg.Metrics.Counter("breaker_probes")
	return b
}

// State reports the current position (advancing Open→HalfOpen if the
// cooldown has elapsed).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advance()
	return b.state
}

// advance moves Open→HalfOpen once the cooldown elapses. Callers hold mu.
func (b *Breaker) advance() {
	if b.state == Open && b.cfg.Clock().Sub(b.openedAt) >= b.cfg.Cooldown {
		b.transition(HalfOpen)
		b.successes = 0
	}
}

// transition updates state and fires the callback. Callers hold mu.
func (b *Breaker) transition(to BreakerState) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	if b.cfg.OnStateChange != nil {
		b.cfg.OnStateChange(from, to)
	}
}

// Allow reports whether a call may proceed right now, reserving a probe
// slot when half-open.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advance()
	switch b.state {
	case Open:
		b.fastFails.Inc()
		return false
	case HalfOpen:
		b.probes.Inc()
	}
	return true
}

// Record feeds a call outcome into the breaker.
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advance()
	if err == nil {
		b.failures = 0
		if b.state == HalfOpen {
			b.successes++
			if b.successes >= b.cfg.SuccessesToClose {
				b.transition(Closed)
			}
		}
		return
	}
	b.successes = 0
	switch b.state {
	case HalfOpen:
		// A failed probe re-opens immediately.
		b.openedAt = b.cfg.Clock()
		b.transition(Open)
		b.trips.Inc()
	case Closed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.openedAt = b.cfg.Clock()
			b.transition(Open)
			b.trips.Inc()
		}
	}
}

// Do runs fn through the breaker: ErrOpen while open, otherwise fn's
// error recorded into the state machine.
func (b *Breaker) Do(fn func() error) error {
	if !b.Allow() {
		return ErrOpen
	}
	err := fn()
	b.Record(err)
	return err
}
