package sniffer_test

import (
	"sort"
	"testing"
	"time"

	"ltefp/internal/lte/crc"
	"ltefp/internal/lte/dci"
	"ltefp/internal/lte/phy"
	"ltefp/internal/lte/rnti"
	"ltefp/internal/obs"
	"ltefp/internal/sim"
	"ltefp/internal/sniffer"
	"ltefp/internal/trace"
)

// grantFor builds one valid PDCCH candidate addressed to r.
func grantFor(t *testing.T, r rnti.RNTI) phy.Transmission {
	t.Helper()
	msg := dci.Message{Format: dci.Format1A, NPRB: 2, MCS: 9}
	payload, err := msg.Pack()
	if err != nil {
		t.Fatal(err)
	}
	return phy.Transmission{Payload: payload, MaskedCRC: crc.Attach(payload, uint16(r))}
}

// TestValidationIsIdempotent is the regression test for the
// plausibility_rejects double-count: re-validating the same records used to
// increment the obs counter again on every call, diverging from Stats.
// Both views must now report the same value, unchanged across repeat calls.
func TestValidationIsIdempotent(t *testing.T) {
	reg := obs.NewRegistry()
	s := sniffer.New(sniffer.Config{CorruptProb: 0.3, Metrics: reg.Scope("sniffer")}, sim.NewRNG(5))
	b := newBench(t, s)
	b.cell.DeliverDL(b.u, 200000, b.now)
	b.run(2 * time.Second)

	first := s.ValidatedRecords(3)
	rejects := reg.Snapshot().Counter("sniffer.plausibility_rejects")
	if rejects == 0 {
		t.Fatal("corrupting capture produced no plausibility rejects; nothing to regress")
	}
	if got := s.Stats().PlausibilityRejects; got != rejects {
		t.Fatalf("Stats.PlausibilityRejects = %d, obs counter = %d", got, rejects)
	}
	for i := 0; i < 3; i++ {
		again := s.ValidatedRecords(3)
		if len(again) != len(first) {
			t.Fatalf("revalidation %d returned %d records, first returned %d", i, len(again), len(first))
		}
		if now := reg.Snapshot().Counter("sniffer.plausibility_rejects"); now != rejects {
			t.Fatalf("revalidation %d moved plausibility_rejects %d -> %d (double count)", i, rejects, now)
		}
		if got := s.Stats().PlausibilityRejects; got != rejects {
			t.Fatalf("revalidation %d: Stats says %d, obs says %d", i, got, rejects)
		}
	}
}

// TestObserveZeroLengthPayload is the regression test for the corrupt()
// panic: a zero-byte PDCCH payload fed through Observe with corruption
// certain used to call rng.IntN(0).
func TestObserveZeroLengthPayload(t *testing.T) {
	s := sniffer.New(sniffer.Config{CorruptProb: 1}, sim.NewRNG(6))
	sf := &phy.Subframe{PDCCH: []phy.Transmission{{Payload: nil, MaskedCRC: crc.Attach(nil, 0x4242)}}}
	for i := 0; i < 16; i++ { // several draws so the corruption branch is taken
		s.Observe(1, sf)
	}
	st := s.Stats()
	if st.Corrupted == 0 {
		t.Fatal("CorruptProb=1 but no payload was corrupted")
	}
	if st.ParseRejects != st.Candidates {
		t.Fatalf("%d of %d empty candidates decoded", st.Candidates-st.ParseRejects, st.Candidates)
	}
}

// TestActiveRNTIsBusyCell exercises the live user list at realistic scale:
// hundreds of distinct C-RNTIs active at once must come back complete,
// sorted, and correctly windowed.
func TestActiveRNTIsBusyCell(t *testing.T) {
	s := sniffer.New(sniffer.Config{}, sim.NewRNG(7))
	const users = 400
	rng := sim.NewRNG(8)
	rs := make([]rnti.RNTI, 0, users)
	used := make(map[rnti.RNTI]bool)
	for len(rs) < users {
		r := rnti.RNTI(int(rnti.CMin) + rng.IntN(int(rnti.CMax-rnti.CMin)+1))
		if used[r] {
			continue
		}
		used[r] = true
		rs = append(rs, r)
	}
	// Each RNTI is seen on its own subframe, spread over 2 s in
	// first-sighting order that is NOT sorted.
	for i, r := range rs {
		sf := &phy.Subframe{Index: int64(i * 5), PDCCH: []phy.Transmission{grantFor(t, r)}}
		s.Observe(1, sf)
	}
	now := time.Duration(users*5) * sim.TTI
	active := s.ActiveRNTIs(now, time.Minute)
	if len(active) != users {
		t.Fatalf("busy cell: %d active RNTIs, want %d", len(active), users)
	}
	if !sort.SliceIsSorted(active, func(i, j int) bool { return active[i] < active[j] }) {
		t.Fatal("ActiveRNTIs output is not sorted")
	}
	want := append([]rnti.RNTI(nil), rs...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if active[i] != want[i] {
			t.Fatalf("ActiveRNTIs[%d] = %v, want %v", i, active[i], want[i])
		}
	}
	// A window covering only the tail keeps only recently-seen users.
	tail := s.ActiveRNTIs(now, time.Duration(50*5)*sim.TTI)
	if len(tail) >= users || len(tail) == 0 {
		t.Fatalf("tail window returned %d of %d users", len(tail), users)
	}
}

// TestStatsMatchMetrics is the property-style parity check: after a lossy,
// corrupting capture plus validation, every Stats field must equal its obs
// counter. This is the net that would have caught the reject double-count.
func TestStatsMatchMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	s := sniffer.New(sniffer.Config{LossProb: 0.15, CorruptProb: 0.25, Metrics: reg.Scope("sniffer")}, sim.NewRNG(9))
	b := newBench(t, s)
	for i := 0; i < 5; i++ {
		b.cell.DeliverDL(b.u, 80000, b.now)
		b.cell.DeliverUL(b.u, 30000, b.now)
		b.run(time.Second)
	}
	s.ValidatedRecords(3)
	s.ValidatedRecords(3) // idempotency under the same lens

	st := s.Stats()
	snap := reg.Snapshot()
	pairs := []struct {
		field string
		stat  int64
		name  string
	}{
		{"Candidates", st.Candidates, "sniffer.candidates"},
		{"Captured", st.Captured, "sniffer.records"},
		{"Dropped", st.Dropped, "sniffer.lost"},
		{"Corrupted", st.Corrupted, "sniffer.corrupted"},
		{"CorruptCaught", st.CorruptCaught, "sniffer.corrupt_caught"},
		{"CorruptLeaked", st.CorruptLeaked, "sniffer.corrupt_leaked"},
		{"ParseRejects", st.ParseRejects, "sniffer.parse_rejects"},
		{"PlausibilityRejects", st.PlausibilityRejects, "sniffer.plausibility_rejects"},
	}
	for _, p := range pairs {
		if got := snap.Counter(p.name); got != p.stat {
			t.Errorf("Stats.%s = %d but obs %s = %d", p.field, p.stat, p.name, got)
		}
	}
	if st.Candidates == 0 || st.Dropped == 0 || st.Corrupted == 0 {
		t.Fatalf("capture not degraded enough to exercise the funnel: %+v", st)
	}
}

// TestDrainValidatedMatchesBatch checks the streaming drain contract: two
// identically-seeded sniffers observing the same cell, one drained
// mid-capture at arbitrary points and one batch-validated at the end, must
// deliver the same record multiset, and FlushRejected must agree with the
// batch path's reject count.
func TestDrainValidatedMatchesBatch(t *testing.T) {
	const minCount = 3
	streamed := sniffer.New(sniffer.Config{CorruptProb: 0.3}, sim.NewRNG(10))
	batch := sniffer.New(sniffer.Config{CorruptProb: 0.3}, sim.NewRNG(10))
	b := newBench(t, streamed)
	b.cell.AddObserver(batch)
	b.cell.DeliverDL(b.u, 150000, b.now)

	var drained trace.Trace
	for i := 0; i < 20; i++ { // drain every 100 ms, mid-capture
		b.run(100 * time.Millisecond)
		drained = streamed.DrainValidated(drained, minCount)
	}
	drained = streamed.DrainValidated(drained, minCount)
	flushRejects := streamed.FlushRejected()

	want := batch.ValidatedRecords(minCount)
	if len(drained) != len(want) {
		t.Fatalf("drained %d records, batch validated %d", len(drained), len(want))
	}
	key := func(r trace.Record) [5]int64 {
		return [5]int64{int64(r.At), int64(r.CellID), int64(r.RNTI), int64(r.Dir), int64(r.Bytes)}
	}
	sortTrace := func(tr trace.Trace) {
		sort.Slice(tr, func(i, j int) bool {
			a, b := key(tr[i]), key(tr[j])
			for k := range a {
				if a[k] != b[k] {
					return a[k] < b[k]
				}
			}
			return false
		})
	}
	a := append(trace.Trace(nil), drained...)
	w := append(trace.Trace(nil), want...)
	sortTrace(a)
	sortTrace(w)
	for i := range w {
		if a[i] != w[i] {
			t.Fatalf("record %d: drained %+v, batch %+v", i, a[i], w[i])
		}
	}
	if br := batch.Stats().PlausibilityRejects; flushRejects != br {
		t.Fatalf("FlushRejected = %d, batch PlausibilityRejects = %d", flushRejects, br)
	}
	if got := streamed.Stats().PlausibilityRejects; got != flushRejects {
		t.Fatalf("streamed Stats.PlausibilityRejects = %d, FlushRejected returned %d", got, flushRejects)
	}
	if flushRejects == 0 {
		t.Fatal("corrupting capture produced no rejects; drain path untested")
	}
	// Per-RNTI time order must survive the held-back release.
	lastAt := map[rnti.RNTI]time.Duration{}
	for _, r := range drained {
		if at, ok := lastAt[r.RNTI]; ok && r.At < at {
			t.Fatalf("drain broke time order for %v: %v after %v", r.RNTI, r.At, at)
		}
		lastAt[r.RNTI] = r.At
	}
}
