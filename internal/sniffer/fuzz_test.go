package sniffer_test

import (
	"testing"

	"ltefp/internal/lte/crc"
	"ltefp/internal/lte/dci"
	"ltefp/internal/lte/phy"
	"ltefp/internal/sim"
	"ltefp/internal/sniffer"
)

// FuzzBlindDecode exercises the sniffer's blind-decoding step with
// arbitrary payloads, RNTIs, and bit corruptions:
//
//   - CRC16 unmasking must be exact: RecoverRNTI inverts Attach for every
//     payload/RNTI pair, and an intact payload always verifies.
//   - Nothing panics — not dci.Parse on garbage candidates, and not a live
//     Sniffer observing a subframe built from fuzzer bytes.
//   - A 1–2-bit corrupted payload is never accepted as a valid message for
//     the original RNTI: gCRC16 detects all 1- and 2-bit errors within its
//     period, which is the guarantee the plausibility filter builds on.
func FuzzBlindDecode(f *testing.F) {
	f.Add([]byte{0x00, 0x00, 0x00, 0x00}, uint16(0x003D), uint16(0), uint16(9))
	f.Add([]byte{0x20, 0x01, 0x18, 0x40}, uint16(0xFFFF), uint16(31), uint16(31))
	f.Add([]byte{0xAB}, uint16(1), uint16(3), uint16(3))
	f.Add([]byte{}, uint16(0), uint16(0), uint16(0))
	f.Add([]byte{0xDE, 0xAD, 0xBE, 0xEF, 0x42}, uint16(0x4242), uint16(17), uint16(38))
	f.Fuzz(func(t *testing.T, payload []byte, rnti, flipA, flipB uint16) {
		masked := crc.Attach(payload, rnti)
		if got := crc.RecoverRNTI(payload, masked); got != rnti {
			t.Fatalf("unmask recovered %#04x, want %#04x", got, rnti)
		}
		if !crc.Verify(payload, masked, rnti) {
			t.Fatal("Verify rejects an intact payload")
		}
		// A blind decoder sees every candidate; neither the parser nor a
		// live sniffer may panic on one. The CorruptProb=1 sniffer forces
		// every candidate through the bit-flip path, which used to panic on
		// zero-length payloads.
		_, _ = dci.Parse(payload)
		sf := &phy.Subframe{PDCCH: []phy.Transmission{{Payload: payload, MaskedCRC: masked}}}
		sniffer.New(sniffer.Config{}, sim.NewRNG(1)).Observe(1, sf)
		sniffer.New(sniffer.Config{CorruptProb: 1}, sim.NewRNG(2)).Observe(1, sf)

		if len(payload) == 0 || len(payload) > 256 {
			// gCRC16's 2-bit-error guarantee holds within the polynomial's
			// period (32767 bits). Real DCI payloads are 4 bytes; capping
			// the corruption check at 256 keeps the property sound.
			return
		}
		corrupt := append([]byte(nil), payload...)
		bitLen := uint(len(corrupt)) * 8
		a := uint(flipA) % bitLen
		b := uint(flipB) % bitLen
		corrupt[a/8] ^= 1 << (a % 8)
		if b != a {
			corrupt[b/8] ^= 1 << (b % 8)
		}
		if crc.Verify(corrupt, masked, rnti) {
			t.Fatalf("corrupted payload % x passes CRC for RNTI %#04x", corrupt, rnti)
		}
		if crc.RecoverRNTI(corrupt, masked) == rnti {
			t.Fatalf("corrupted payload % x still unmasks to RNTI %#04x", corrupt, rnti)
		}
	})
}
