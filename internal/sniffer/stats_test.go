package sniffer_test

import (
	"math"
	"testing"
	"time"

	"ltefp/internal/obs"
	"ltefp/internal/sim"
	"ltefp/internal/sniffer"
)

// TestLossRateMatchesModel checks the capture-loss model statistically:
// over a large capture with LossProb=p, the miss rate reported by the obs
// counters must land inside the 4σ binomial confidence interval around p.
// The run is seeded, so a failure means the model or the counters drifted,
// not bad luck.
func TestLossRateMatchesModel(t *testing.T) {
	const p = 0.2
	reg := obs.NewRegistry()
	s := sniffer.New(sniffer.Config{LossProb: p, Metrics: reg.Scope("sniffer")}, sim.NewRNG(101))
	b := newBench(t, s)
	// Stream deliveries across the run: each grant carries kilobytes, so a
	// single burst would finish in ~100 subframes — far too few candidates
	// for a tight confidence interval.
	for i := 0; i < 50; i++ {
		b.cell.DeliverDL(b.u, 300000, b.now)
		b.cell.DeliverUL(b.u, 120000, b.now)
		b.run(400 * time.Millisecond)
	}

	snap := reg.Snapshot()
	n := snap.Counter("sniffer.candidates")
	lost := snap.Counter("sniffer.lost")
	st := s.Stats()
	if st.Candidates != n || st.Dropped != lost {
		t.Fatalf("Stats (%d scanned, %d dropped) disagrees with obs counters (%d, %d)",
			st.Candidates, st.Dropped, n, lost)
	}
	if n < 1000 {
		t.Fatalf("capture too small for a binomial test: %d candidates", n)
	}
	phat := float64(lost) / float64(n)
	sigma := math.Sqrt(p * (1 - p) / float64(n))
	if diff := math.Abs(phat - p); diff > 4*sigma {
		t.Errorf("observed loss rate %.4f is outside the 4σ interval around %.2f (n=%d, σ=%.5f)",
			phat, p, n, sigma)
	}
}

// TestNoCorruptionMeansNoRejects checks the converse guarantee: with
// CorruptProb=0 a capture produces no corrupted payloads, no corruption
// leaks, and — because every real record traces to a persistently active
// RNTI — zero plausibility rejects.
func TestNoCorruptionMeansNoRejects(t *testing.T) {
	reg := obs.NewRegistry()
	s := sniffer.New(sniffer.Config{Metrics: reg.Scope("sniffer")}, sim.NewRNG(102))
	b := newBench(t, s)
	b.cell.DeliverDL(b.u, 100000, b.now)
	b.run(3 * time.Second)
	validated := s.ValidatedRecords(3)
	if len(validated) == 0 {
		t.Fatal("capture produced no validated records")
	}
	snap := reg.Snapshot()
	for _, name := range []string{"sniffer.corrupted", "sniffer.corrupt_caught", "sniffer.corrupt_leaked", "sniffer.plausibility_rejects"} {
		if v := snap.Counter(name); v != 0 {
			t.Errorf("CorruptProb=0 but %s = %d", name, v)
		}
	}
	if len(validated) != len(s.Records()) {
		t.Errorf("plausibility filter removed %d of %d records without corruption",
			len(s.Records())-len(validated), len(s.Records()))
	}
}
