package sniffer_test

import (
	"testing"
	"time"

	"ltefp/internal/lte/dci"
	"ltefp/internal/lte/enb"
	"ltefp/internal/lte/epc"
	"ltefp/internal/lte/operator"
	"ltefp/internal/lte/rnti"
	"ltefp/internal/lte/ue"
	"ltefp/internal/sim"
	"ltefp/internal/sniffer"
)

// bench wires a lab cell with one UE and the sniffer under test.
type bench struct {
	cell *enb.Cell
	u    *ue.UE
	now  time.Duration
}

func newBench(t *testing.T, s *sniffer.Sniffer) *bench {
	t.Helper()
	rng := sim.NewRNG(11)
	core := epc.NewCore(rng.Fork())
	cell, err := enb.NewCell(1, operator.Lab(), core, rng.Fork())
	if err != nil {
		t.Fatal(err)
	}
	cell.AddObserver(s)
	u := ue.New("victim", "900170000000001", rng.Fork())
	u.TMSI = core.Attach(u.IMSI)
	u.HasTMSI = true
	cell.Camp(u)
	return &bench{cell: cell, u: u}
}

func (b *bench) run(d time.Duration) {
	end := b.now + d
	for b.now < end {
		b.cell.Tick(b.now)
		b.now += sim.TTI
	}
}

func TestLosslessCaptureIsComplete(t *testing.T) {
	s := sniffer.New(sniffer.Config{}, sim.NewRNG(1))
	b := newBench(t, s)
	b.cell.DeliverDL(b.u, 50000, b.now)
	b.cell.DeliverUL(b.u, 20000, b.now)
	b.run(2 * time.Second)

	// The sniffer's user-plane byte count must cover exactly what the cell
	// scheduled for the victim's C-RNTI (control traffic rides on MCS 0
	// and is part of the count too, so >=).
	recs := s.Records()
	if len(recs) == 0 {
		t.Fatal("lossless sniffer captured nothing")
	}
	var bytes int
	for _, r := range recs {
		if !r.RNTI.IsC() {
			t.Fatalf("user-plane record with %v", r.RNTI)
		}
		bytes += r.Bytes
	}
	if bytes < 70000 {
		t.Fatalf("captured %d bytes, want at least the 70000 delivered", bytes)
	}
	st := s.Stats()
	if st.Dropped != 0 {
		t.Fatalf("lossless sniffer dropped %d", st.Dropped)
	}
	if st.Captured != int64(len(recs)) {
		t.Fatalf("Stats captured %d != %d records", st.Captured, len(recs))
	}
	if st.Candidates < st.Captured {
		t.Fatalf("scanned %d candidates < %d captured", st.Candidates, st.Captured)
	}
}

func TestBlindDecodeRecoversGroundTruthRNTI(t *testing.T) {
	s := sniffer.New(sniffer.Config{}, sim.NewRNG(2))
	b := newBench(t, s)
	b.cell.DeliverDL(b.u, 10000, b.now)
	b.run(time.Second)
	if b.u.RNTI == 0 {
		t.Fatal("UE never connected")
	}
	for _, r := range s.Records() {
		if r.RNTI != b.u.RNTI {
			t.Fatalf("recovered RNTI %v, ground truth %v", r.RNTI, b.u.RNTI)
		}
	}
}

func TestDirectionFilters(t *testing.T) {
	for _, cfg := range []sniffer.Config{{DownlinkOnly: true}, {UplinkOnly: true}} {
		s := sniffer.New(cfg, sim.NewRNG(3))
		b := newBench(t, s)
		b.cell.DeliverDL(b.u, 30000, b.now)
		b.cell.DeliverUL(b.u, 30000, b.now)
		b.run(2 * time.Second)
		for _, r := range s.Records() {
			if cfg.DownlinkOnly && r.Dir != dci.Downlink {
				t.Fatal("downlink-only sniffer recorded uplink")
			}
			if cfg.UplinkOnly && r.Dir != dci.Uplink {
				t.Fatal("uplink-only sniffer recorded downlink")
			}
		}
		if len(s.Records()) == 0 {
			t.Fatal("direction-filtered sniffer captured nothing")
		}
	}
}

func TestLossDropsRecords(t *testing.T) {
	full := sniffer.New(sniffer.Config{}, sim.NewRNG(4))
	lossy := sniffer.New(sniffer.Config{LossProb: 0.4}, sim.NewRNG(4))
	b := newBench(t, full)
	b.cell.AddObserver(lossy)
	b.cell.DeliverDL(b.u, 100000, b.now)
	b.run(2 * time.Second)
	if len(lossy.Records()) >= len(full.Records()) {
		t.Fatalf("lossy sniffer captured %d >= lossless %d",
			len(lossy.Records()), len(full.Records()))
	}
	if lossy.Stats().Dropped == 0 {
		t.Fatal("lossy sniffer reports zero drops")
	}
}

func TestPlausibilityFilterRemovesGhosts(t *testing.T) {
	s := sniffer.New(sniffer.Config{CorruptProb: 0.3}, sim.NewRNG(5))
	b := newBench(t, s)
	b.cell.DeliverDL(b.u, 200000, b.now)
	b.run(2 * time.Second)

	validated := s.ValidatedRecords(3)
	ghosts := 0
	for _, r := range validated {
		if r.RNTI != b.u.RNTI {
			ghosts++
		}
	}
	// Corruption scatters recovered RNTIs uniformly; almost none repeat
	// three times, so validation should remove essentially all of them.
	if frac := float64(ghosts) / float64(len(validated)); frac > 0.02 {
		t.Fatalf("%.1f%% ghost records survived validation", 100*frac)
	}
	raw := s.Records()
	rawGhosts := 0
	for _, r := range raw {
		if r.RNTI != b.u.RNTI {
			rawGhosts++
		}
	}
	if rawGhosts == 0 {
		t.Fatal("corruption produced no ghost records; the filter is untested")
	}
}

func TestIdentityEventsObserved(t *testing.T) {
	s := sniffer.New(sniffer.Config{}, sim.NewRNG(6))
	b := newBench(t, s)
	b.cell.DeliverUL(b.u, 1000, b.now)
	b.run(time.Second)
	events := s.IdentityEvents()
	if len(events) == 0 {
		t.Fatal("no identity events from connection establishment")
	}
	for _, e := range events {
		if !e.HasTMSI || e.TMSI != uint32(b.u.TMSI) {
			t.Fatalf("identity event %+v does not carry the victim's TMSI", e)
		}
		if e.RNTI != b.u.RNTI {
			t.Fatalf("identity event binds %v, UE holds %v", e.RNTI, b.u.RNTI)
		}
	}
}

func TestDownlinkOnlySkipsMsg3(t *testing.T) {
	// msg3 content rides on the uplink shared channel: a downlink-only
	// sniffer must bind via msg4 only (one event per establishment).
	dl := sniffer.New(sniffer.Config{DownlinkOnly: true}, sim.NewRNG(7))
	both := sniffer.New(sniffer.Config{}, sim.NewRNG(7))
	b := newBench(t, dl)
	b.cell.AddObserver(both)
	b.cell.DeliverUL(b.u, 1000, b.now)
	b.run(time.Second)
	if got, want := len(dl.IdentityEvents()), len(both.IdentityEvents()); got >= want {
		t.Fatalf("downlink-only sniffer saw %d identity events, dual saw %d", got, want)
	}
}

func TestPagingEvents(t *testing.T) {
	s := sniffer.New(sniffer.Config{}, sim.NewRNG(8))
	b := newBench(t, s)
	b.cell.DeliverDL(b.u, 1000, b.now) // idle UE → paging
	b.run(500 * time.Millisecond)
	pages := s.PagingEvents()
	if len(pages) == 0 {
		t.Fatal("no paging events observed")
	}
	if pages[0].TMSI != uint32(b.u.TMSI) {
		t.Fatalf("paging TMSI %08x, want %08x", pages[0].TMSI, uint32(b.u.TMSI))
	}
}

func TestActiveRNTIs(t *testing.T) {
	s := sniffer.New(sniffer.Config{}, sim.NewRNG(9))
	b := newBench(t, s)
	b.cell.DeliverDL(b.u, 5000, b.now)
	b.run(time.Second)
	active := s.ActiveRNTIs(b.now, 2*time.Second)
	if len(active) != 1 || active[0] != b.u.RNTI {
		t.Fatalf("ActiveRNTIs = %v, want [%v]", active, b.u.RNTI)
	}
	if got := s.ActiveRNTIs(b.now+time.Minute, time.Second); len(got) != 0 {
		t.Fatalf("stale window returned %v", got)
	}
	_ = rnti.RNTI(0)
}
