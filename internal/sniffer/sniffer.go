// Package sniffer implements the attacker's capture equipment: a passive
// PDCCH observer that blind-decodes every DCI it receives by re-computing
// the CRC16 over the payload and XOR-ing it with the received parity bits,
// recovering the addressed RNTI without any key material — the same
// technique the OWL and FALCON tools use and the paper's data-acquisition
// step ② relies on. The sniffer additionally reads the handful of plaintext
// pre-security messages (random access responses, RRC connection setup
// with its contention-resolution identity, paging records), which feed the
// identity-mapping step ①.
//
// The sniffer is honest: it sees only phy.Subframe contents, never
// simulator-internal state, and its capture is degraded by a configurable
// loss and corruption model standing in for real-world decode failures.
package sniffer

import (
	"slices"
	"time"

	"ltefp/internal/lte/crc"
	"ltefp/internal/lte/dci"
	"ltefp/internal/lte/phy"
	"ltefp/internal/lte/rnti"
	"ltefp/internal/lte/rrc"
	"ltefp/internal/obs"
	"ltefp/internal/sim"
	"ltefp/internal/trace"
)

// Config controls a sniffer's capture fidelity and coverage.
type Config struct {
	// LossProb is the probability a PDCCH message is missed entirely.
	LossProb float64
	// CorruptProb is the probability a captured payload is bit-corrupted,
	// producing a bogus RNTI/DCI that the plausibility filter must reject.
	CorruptProb float64
	// Downlink and Uplink select which scheduling directions the sniffer
	// records. The paper's threat model needs one sniffer per channel; a
	// default-constructed config with both false records both (the lab
	// Down+Up setting).
	DownlinkOnly bool
	UplinkOnly   bool
	// Metrics, when enabled, receives decode-health counters under this
	// scope (candidates, crc_matches, lost, corrupt_caught, ...). The zero
	// Scope disables instrumentation at no cost.
	Metrics obs.Scope
}

// IdentityEvent is an RNTI↔TMSI binding observed in plaintext during
// connection establishment (msg4's contention resolution identity).
type IdentityEvent struct {
	At     time.Duration
	CellID int
	RNTI   rnti.RNTI
	TMSI   uint32
	// HasTMSI is false when the UE connected with a random identity, which
	// yields no stable mapping.
	HasTMSI bool
}

// PagingEvent is a TMSI observed on the paging channel.
type PagingEvent struct {
	At     time.Duration
	CellID int
	TMSI   uint32
}

// Stats are a sniffer's capture-health counters. Candidates counts every
// PDCCH transmission the sniffer was offered; the remaining fields
// partition what became of them.
type Stats struct {
	// Candidates is the number of PDCCH candidates scanned (including ones
	// subsequently lost or rejected).
	Candidates int64
	// Captured is the number of user-plane records kept.
	Captured int64
	// Dropped is the number of candidates lost to the capture-loss model.
	Dropped int64
	// Corrupted is the number of payloads the corruption model bit-flipped.
	Corrupted int64
	// CorruptCaught counts corrupted payloads rejected at the decode stage
	// (CRC/format check), CorruptLeaked the ones that decoded anyway and
	// entered the record stream as ghost RNTIs for the plausibility filter.
	CorruptCaught int64
	CorruptLeaked int64
	// ParseRejects is the number of candidates (corrupted or not) that
	// failed DCI validation.
	ParseRejects int64
	// PlausibilityRejects is the number of captured records the last
	// validation pass (AppendValidated / ValidatedRecords, or the streaming
	// DrainValidated + FlushRejected sequence) discarded for an
	// implausible RNTI. Unlike the funnel counters above it is a property
	// of the validated view, not of capture: re-validating the same records
	// reports the same value instead of accumulating.
	PlausibilityRejects int64
}

// Sniffer captures one cell's PDCCH. It implements enb.Observer.
type Sniffer struct {
	cfg Config
	rng *sim.RNG

	records trace.Trace
	ids     []IdentityEvent
	pagings []PagingEvent

	// activity is a dense RNTI-indexed table (the RNTI space is 16-bit):
	// the per-record bookkeeping of the blind-decode loop touches one slot
	// without hashing or map churn. seen lists the RNTIs with a non-zero
	// Count, in first-sighting order, for the iterating accessors.
	activity []Activity
	seen     []rnti.RNTI

	stats Stats
	m     snifferMetrics

	// Streaming-drain state (DrainValidated): the index of the first
	// record not yet drained, and per-RNTI record indices held back until
	// their RNTI passes the plausibility threshold.
	drained int
	pending map[rnti.RNTI][]int32
}

// snifferMetrics caches the scope's counter handles; with a disabled scope
// every field is nil and each update is a no-op method on a nil pointer.
type snifferMetrics struct {
	candidates          *obs.Counter
	crcMatches          *obs.Counter
	lost                *obs.Counter
	corrupted           *obs.Counter
	corruptCaught       *obs.Counter
	corruptLeaked       *obs.Counter
	parseRejects        *obs.Counter
	records             *obs.Counter
	plausibilityRejects *obs.Counter
	identityEvents      *obs.Counter
	pagingEvents        *obs.Counter
}

func newSnifferMetrics(sc obs.Scope) snifferMetrics {
	return snifferMetrics{
		candidates:          sc.Counter("candidates"),
		crcMatches:          sc.Counter("crc_matches"),
		lost:                sc.Counter("lost"),
		corrupted:           sc.Counter("corrupted"),
		corruptCaught:       sc.Counter("corrupt_caught"),
		corruptLeaked:       sc.Counter("corrupt_leaked"),
		parseRejects:        sc.Counter("parse_rejects"),
		records:             sc.Counter("records"),
		plausibilityRejects: sc.Counter("plausibility_rejects"),
		identityEvents:      sc.Counter("identity_events"),
		pagingEvents:        sc.Counter("paging_events"),
	}
}

// Activity summarises how often and when an RNTI was seen — the OWL-style
// table used to filter decode artefacts from real users.
type Activity struct {
	First, Last time.Duration
	Count       int
}

// New returns a sniffer with the given capture configuration, using rng
// for its loss and corruption draws.
func New(cfg Config, rng *sim.RNG) *Sniffer {
	return &Sniffer{
		cfg:      cfg,
		rng:      rng,
		activity: make([]Activity, 1<<16),
		m:        newSnifferMetrics(cfg.Metrics),
	}
}

// Observe ingests one subframe. It implements enb.Observer.
func (s *Sniffer) Observe(cellID int, sf *phy.Subframe) {
	at := time.Duration(sf.Index) * sim.TTI
	for i := range sf.PDCCH {
		tx := &sf.PDCCH[i]
		s.stats.Candidates++
		s.m.candidates.Inc()
		if s.cfg.LossProb > 0 && s.rng.Bool(s.cfg.LossProb) {
			s.stats.Dropped++
			s.m.lost.Inc()
			continue
		}
		payload := tx.Payload
		maskedCRC := tx.MaskedCRC
		corrupted := s.cfg.CorruptProb > 0 && s.rng.Bool(s.cfg.CorruptProb)
		if corrupted {
			payload = s.corrupt(payload)
			s.stats.Corrupted++
			s.m.corrupted.Inc()
		}
		r := rnti.RNTI(crc.RecoverRNTI(payload, maskedCRC))
		msg, err := dci.Parse(payload)
		if err != nil {
			// Undecodable candidate, as a real blind decoder skips.
			s.stats.ParseRejects++
			s.m.parseRejects.Inc()
			if corrupted {
				s.stats.CorruptCaught++
				s.m.corruptCaught.Inc()
			}
			continue
		}
		s.m.crcMatches.Inc()
		if corrupted {
			s.stats.CorruptLeaked++
			s.m.corruptLeaked.Inc()
		}
		// Plaintext pre-security content rides on uncorrupted frames only.
		if !corrupted {
			s.inspectPlaintext(at, cellID, r, tx.Plaintext)
		}
		if !r.IsC() {
			continue // paging / RAR / SI scheduling, not user traffic
		}
		dir := msg.Format.Direction()
		if s.cfg.DownlinkOnly && dir != dci.Downlink {
			continue
		}
		if s.cfg.UplinkOnly && dir != dci.Uplink {
			continue
		}
		bytes, err := msg.TransportBlockBytes()
		if err != nil {
			continue
		}
		s.stats.Captured++
		s.m.records.Inc()
		s.records = append(s.records, trace.Record{
			At:     at,
			CellID: cellID,
			RNTI:   r,
			Dir:    dir,
			Bytes:  bytes,
		})
		a := &s.activity[r]
		if a.Count == 0 {
			a.First = at
			s.seen = append(s.seen, r)
		}
		a.Last = at
		a.Count++
	}
}

// inspectPlaintext extracts identity-relevant plaintext. Two messages bind
// an RNTI to an identity: msg3 (the RRC connection request, on the uplink
// shared channel — visible only when the sniffer covers the uplink) and
// msg4 (the connection setup echoing the contention-resolution identity on
// the downlink). Reading both halves the chance a capture loss costs the
// attacker the binding.
func (s *Sniffer) inspectPlaintext(at time.Duration, cellID int, r rnti.RNTI, plaintext any) {
	switch m := plaintext.(type) {
	case rrc.ConnectionRequest:
		if s.cfg.DownlinkOnly {
			return // msg3 content rides on the PUSCH
		}
		s.m.identityEvents.Inc()
		s.ids = append(s.ids, IdentityEvent{
			At:      at,
			CellID:  cellID,
			RNTI:    r,
			TMSI:    m.Identity.TMSI,
			HasTMSI: m.Identity.HasTMSI,
		})
	case rrc.ConnectionSetup:
		if s.cfg.UplinkOnly {
			return // msg4 rides on the PDSCH
		}
		s.m.identityEvents.Inc()
		s.ids = append(s.ids, IdentityEvent{
			At:      at,
			CellID:  cellID,
			RNTI:    r,
			TMSI:    m.ContentionResolution.TMSI,
			HasTMSI: m.ContentionResolution.HasTMSI,
		})
	case rrc.Paging:
		if s.cfg.UplinkOnly {
			return
		}
		for _, rec := range m.Records {
			s.m.pagingEvents.Inc()
			s.pagings = append(s.pagings, PagingEvent{At: at, CellID: cellID, TMSI: rec.TMSI})
		}
	}
}

// corrupt flips a couple of random bits in a copy of the payload. A
// zero-length payload has no bits to flip and passes through unchanged
// (it will fail DCI parsing regardless); the guard keeps the rng.IntN
// draws off the empty case, which would panic.
func (s *Sniffer) corrupt(payload []byte) []byte {
	if len(payload) == 0 {
		return payload
	}
	out := make([]byte, len(payload))
	copy(out, payload)
	for flips := 1 + s.rng.IntN(2); flips > 0; flips-- {
		out[s.rng.IntN(len(out))] ^= 1 << s.rng.IntN(8)
	}
	return out
}

// Records returns everything captured so far, time-ordered.
func (s *Sniffer) Records() trace.Trace { return s.records }

// ValidatedRecords returns captured records whose RNTI was seen at least
// minCount times — the plausibility filter that removes ghost RNTIs
// produced by corrupted decodes.
func (s *Sniffer) ValidatedRecords(minCount int) trace.Trace {
	return s.AppendValidated(make(trace.Trace, 0, len(s.records)), minCount)
}

// AppendValidated appends the validated records to dst and returns it,
// letting the capture assembly collect all sniffers into one
// run-owned slice. Each call re-derives the reject count from scratch and
// publishes it through setPlausibilityRejects, so validating twice reports
// the current truth instead of double-counting.
func (s *Sniffer) AppendValidated(dst trace.Trace, minCount int) trace.Trace {
	var rejects int64
	for _, r := range s.records {
		if s.activity[r.RNTI].Count >= minCount {
			dst = append(dst, r)
		} else {
			rejects++
		}
	}
	s.setPlausibilityRejects(rejects)
	return dst
}

// setPlausibilityRejects moves Stats.PlausibilityRejects to n and applies
// the same delta to the obs counter, keeping the two views agreeing. The
// metric stays a monotone-named counter for report aggregation, but the
// value tracks the latest validation pass: it can step down when records
// pending validation later clear the threshold.
func (s *Sniffer) setPlausibilityRejects(n int64) {
	if d := n - s.stats.PlausibilityRejects; d != 0 {
		s.stats.PlausibilityRejects = n
		s.m.plausibilityRejects.Add(d)
	}
}

// DrainValidated is the streaming counterpart of AppendValidated: it
// appends to dst every record captured since the previous drain whose RNTI
// already passes the plausibility threshold, and holds the rest back.
// A held-back record is released by the drain that first sees its RNTI
// reach minCount sightings (immediately before that RNTI's newest record,
// preserving per-RNTI time order); records of RNTIs that never validate
// surface only through FlushRejected. Use either the batch accessors or
// the drain sequence on one sniffer, not both: draining consumes records.
func (s *Sniffer) DrainValidated(dst trace.Trace, minCount int) trace.Trace {
	if s.pending == nil {
		s.pending = make(map[rnti.RNTI][]int32)
	}
	for ; s.drained < len(s.records); s.drained++ {
		r := s.records[s.drained]
		if s.activity[r.RNTI].Count < minCount {
			s.pending[r.RNTI] = append(s.pending[r.RNTI], int32(s.drained))
			continue
		}
		if held, ok := s.pending[r.RNTI]; ok {
			for _, idx := range held {
				dst = append(dst, s.records[idx])
			}
			delete(s.pending, r.RNTI)
		}
		dst = append(dst, r)
	}
	return dst
}

// FlushRejected closes a drain sequence: after a final DrainValidated has
// consumed every record, the still-pending records belong to RNTIs that
// never cleared the threshold. It publishes their count as the
// plausibility-reject total (Stats and obs agreeing, as with
// AppendValidated), clears the pending state, and returns the count.
func (s *Sniffer) FlushRejected() int64 {
	var rejects int64
	for _, held := range s.pending {
		rejects += int64(len(held))
	}
	s.setPlausibilityRejects(rejects)
	s.pending = nil
	return rejects
}

// IdentityEvents returns the observed RNTI↔TMSI bindings.
func (s *Sniffer) IdentityEvents() []IdentityEvent { return s.ids }

// PagingEvents returns the observed paging records.
func (s *Sniffer) PagingEvents() []PagingEvent { return s.pagings }

// ActiveRNTIs returns the RNTIs seen within the window ending at now,
// mirroring OWL's live user list.
func (s *Sniffer) ActiveRNTIs(now, window time.Duration) []rnti.RNTI {
	var out []rnti.RNTI
	for _, r := range s.seen {
		if now-s.activity[r].Last <= window {
			out = append(out, r)
		}
	}
	sortRNTIs(out)
	return out
}

// Stats reports the capture-health counters accumulated so far.
func (s *Sniffer) Stats() Stats { return s.stats }

func sortRNTIs(rs []rnti.RNTI) {
	// A busy cell tracks hundreds of live RNTIs; the former insertion sort
	// made every ActiveRNTIs scan quadratic.
	slices.Sort(rs)
}
