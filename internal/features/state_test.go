package features_test

import (
	"reflect"
	"testing"
	"time"

	"ltefp/internal/features"
	"ltefp/internal/lte/dci"
	"ltefp/internal/trace"
)

// synthTrace builds a deterministic two-burst trace long enough to span
// several windows.
func stateTestTrace() trace.Trace {
	var tr trace.Trace
	for i := 0; i < 400; i++ {
		at := time.Duration(i) * 7 * time.Millisecond
		dir := dci.Downlink
		if i%3 == 0 {
			dir = dci.Uplink
		}
		tr = append(tr, trace.Record{
			At: at, CellID: 1, RNTI: 4660, Dir: dir,
			Bytes: 100 + (i*37)%900,
		})
	}
	return tr
}

// TestIncrementalStateRoundTrip pins the checkpoint/restore contract at
// the extractor level: snapshot an Incremental mid-stream, restore it,
// and the restored copy must emit bit-identical rows for the rest of the
// stream — and its own state must track the original's exactly.
func TestIncrementalStateRoundTrip(t *testing.T) {
	const width, stride = 100 * time.Millisecond, 100 * time.Millisecond
	tr := stateTestTrace()

	type emit struct {
		start time.Duration
		row   []float64
	}
	run := func(inc *features.Incremental, tr trace.Trace, from int) []emit {
		var out []emit
		for _, r := range tr[from:] {
			inc.Push(r, func(start time.Duration, row []float64) {
				out = append(out, emit{start, append([]float64(nil), row...)})
			})
		}
		inc.Flush(func(start time.Duration, row []float64) {
			out = append(out, emit{start, append([]float64(nil), row...)})
		})
		return out
	}

	for _, cut := range []int{0, 1, 57, 200, 399} {
		ref := features.NewIncremental(width, stride)
		var refOut []emit
		for _, r := range tr[:cut] {
			ref.Push(r, func(start time.Duration, row []float64) {
				refOut = append(refOut, emit{start, append([]float64(nil), row...)})
			})
		}
		st := ref.State()

		restored, err := features.RestoreIncremental(st)
		if err != nil {
			t.Fatalf("cut %d: restore: %v", cut, err)
		}
		if !reflect.DeepEqual(restored.State(), st) {
			t.Fatalf("cut %d: restored state differs from snapshot", cut)
		}

		got := run(restored, tr, cut)
		want := run(ref, tr, cut)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cut %d: restored extractor diverged: got %d rows, want %d", cut, len(got), len(want))
		}
	}
}

// TestIncrementalStateIsACopy pins that State detaches the buffer: later
// Adds on the live extractor must not mutate an already-taken snapshot.
func TestIncrementalStateIsACopy(t *testing.T) {
	inc := features.NewIncremental(100*time.Millisecond, 100*time.Millisecond)
	tr := stateTestTrace()
	for _, r := range tr[:50] {
		inc.Push(r, func(time.Duration, []float64) {})
	}
	st := inc.State()
	frozen := append([]trace.Record(nil), st.Buf...)
	for _, r := range tr[50:100] {
		inc.Push(r, func(time.Duration, []float64) {})
	}
	if !reflect.DeepEqual(st.Buf, frozen) {
		t.Fatal("State buffer aliased the live extractor's buffer")
	}
}

// TestRestoreIncrementalRejectsBadGeometry pins the validation contract.
func TestRestoreIncrementalRejectsBadGeometry(t *testing.T) {
	for _, st := range []features.IncrementalState{
		{Width: 0, Stride: 100 * time.Millisecond},
		{Width: 100 * time.Millisecond, Stride: 0},
		{Width: -time.Second, Stride: time.Second},
	} {
		if _, err := features.RestoreIncremental(st); err == nil {
			t.Errorf("RestoreIncremental(%+v) accepted invalid geometry", st)
		}
	}
}
