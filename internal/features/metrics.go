package features

import (
	"sync/atomic"

	"ltefp/internal/obs"
)

// metrics holds the package's instrumentation handles. A nil *metrics (the
// default) disables instrumentation; FromTrace loads the pointer once per
// call and skips everything on nil.
type metrics struct {
	extractMS *obs.Histogram
	rows      *obs.Counter
}

var activeMetrics atomic.Pointer[metrics]

// SetMetrics points the package's extraction instrumentation at a scope:
// an extract_ms latency histogram per FromTrace call and a rows counter of
// feature vectors produced. A disabled scope turns instrumentation off.
func SetMetrics(sc obs.Scope) {
	if !sc.Enabled() {
		activeMetrics.Store(nil)
		return
	}
	activeMetrics.Store(&metrics{
		extractMS: sc.Histogram("extract_ms", nil),
		rows:      sc.Counter("rows"),
	})
}
