package features

import (
	"fmt"
	"testing"
	"time"

	"ltefp/internal/lte/dci"
	"ltefp/internal/sim"
	"ltefp/internal/trace"
)

// randomTrace builds a time-ordered trace with bursty arrivals and
// occasional long silences, the shapes the live pipeline sees.
func randomTrace(rng *sim.RNG, n int) trace.Trace {
	t := make(trace.Trace, 0, n)
	at := time.Duration(rng.IntN(50)) * time.Millisecond
	for len(t) < n {
		switch rng.IntN(10) {
		case 0: // long silence: several windows of nothing
			at += time.Duration(500+rng.IntN(4000)) * time.Millisecond
		case 1, 2: // inter-burst pause
			at += time.Duration(50+rng.IntN(400)) * time.Millisecond
		default: // inside a burst; 0 advances produce same-tick ties
			at += time.Duration(rng.IntN(4)) * time.Millisecond
		}
		dir := dci.Downlink
		if rng.IntN(4) == 0 {
			dir = dci.Uplink
		}
		t = append(t, trace.Record{
			At:    at,
			RNTI:  0x1000,
			Dir:   dir,
			Bytes: 1 + rng.IntN(1500),
		})
	}
	return t
}

// streamRows runs tr through an Incremental one record at a time and
// collects the emitted (start, row) pairs. With advance set, it also calls
// AdvanceTo before every push (the time-sliced source pattern), which must
// not change the output.
func streamRows(tr trace.Trace, width, stride time.Duration, advance bool) (starts []time.Duration, rows [][]float64) {
	inc := NewIncremental(width, stride)
	emit := func(start time.Duration, row []float64) {
		starts = append(starts, start)
		rows = append(rows, append([]float64(nil), row...))
	}
	for _, r := range tr {
		if advance {
			inc.AdvanceTo(r.At, emit)
		}
		inc.Push(r, emit)
	}
	if advance && len(tr) > 0 {
		inc.AdvanceTo(tr[len(tr)-1].At+width+stride, emit)
	}
	inc.Flush(emit)
	return starts, rows
}

// TestIncrementalMatchesFromTrace is the streaming extractor's contract:
// pushing a trace record-by-record yields bit-identical rows, in the same
// window order, as the offline batch extractor.
func TestIncrementalMatchesFromTrace(t *testing.T) {
	geoms := []struct{ width, stride time.Duration }{
		{100 * time.Millisecond, 100 * time.Millisecond}, // paper's windows
		{100 * time.Millisecond, 50 * time.Millisecond},  // overlapping
		{50 * time.Millisecond, 150 * time.Millisecond},  // gappy stride > width
		{1 * time.Second, 250 * time.Millisecond},        // wide overlap
		{30 * time.Millisecond, 30 * time.Millisecond},   // sub-slot windows
	}
	rng := sim.NewRNG(42)
	for gi, g := range geoms {
		for rep := 0; rep < 6; rep++ {
			tr := randomTrace(rng, 40+rng.IntN(500))
			name := fmt.Sprintf("geom%d_rep%d", gi, rep)
			wantRows := FromTrace(tr, g.width, g.stride)
			var wantStarts []time.Duration
			for _, w := range tr.Windows(g.width, g.stride) {
				if len(w.Records) > 0 {
					wantStarts = append(wantStarts, w.Start)
				}
			}
			for _, advance := range []bool{false, true} {
				gotStarts, gotRows := streamRows(tr, g.width, g.stride, advance)
				if len(gotRows) != len(wantRows) {
					t.Fatalf("%s advance=%v: streamed %d rows, offline %d", name, advance, len(gotRows), len(wantRows))
				}
				for i := range wantRows {
					if gotStarts[i] != wantStarts[i] {
						t.Fatalf("%s advance=%v row %d: window start %v, offline %v", name, advance, i, gotStarts[i], wantStarts[i])
					}
					for k := range wantRows[i] {
						if gotRows[i][k] != wantRows[i][k] {
							t.Fatalf("%s advance=%v row %d feature %s: streamed %v, offline %v",
								name, advance, i, Names()[k], gotRows[i][k], wantRows[i][k])
						}
					}
				}
			}
		}
	}
}

// TestIncrementalEdgeCases covers the degenerate shapes the property test
// may not hit every seed: empty, single record, and a lone pair separated
// by more than the gap cap.
func TestIncrementalEdgeCases(t *testing.T) {
	cases := map[string]trace.Trace{
		"empty":  {},
		"single": {{At: 123 * time.Millisecond, Bytes: 77, Dir: dci.Downlink}},
		"pair_far_apart": {
			{At: 10 * time.Millisecond, Bytes: 5, Dir: dci.Downlink},
			{At: 25 * time.Second, Bytes: 9, Dir: dci.Uplink},
		},
		"same_tick_burst": {
			{At: 40 * time.Millisecond, Bytes: 1, Dir: dci.Downlink},
			{At: 40 * time.Millisecond, Bytes: 2, Dir: dci.Downlink},
			{At: 40 * time.Millisecond, Bytes: 3, Dir: dci.Uplink},
		},
	}
	for name, tr := range cases {
		want := FromTrace(tr, 100*time.Millisecond, 100*time.Millisecond)
		_, got := streamRows(tr, 100*time.Millisecond, 100*time.Millisecond, false)
		if len(got) != len(want) {
			t.Fatalf("%s: streamed %d rows, offline %d", name, len(got), len(want))
		}
		for i := range want {
			for k := range want[i] {
				if got[i][k] != want[i][k] {
					t.Fatalf("%s row %d feature %d: streamed %v, offline %v", name, i, k, got[i][k], want[i][k])
				}
			}
		}
	}
}

// TestIncrementalBoundedBuffer checks the context-horizon eviction: after
// streaming minutes of steady traffic the retained buffer stays a few
// seconds deep instead of growing with the capture.
func TestIncrementalBoundedBuffer(t *testing.T) {
	inc := NewIncremental(100*time.Millisecond, 100*time.Millisecond)
	emit := func(time.Duration, []float64) {}
	perSecond := 50
	for s := 0; s < 120; s++ {
		for k := 0; k < perSecond; k++ {
			at := time.Duration(s)*time.Second + time.Duration(k)*(time.Second/time.Duration(perSecond))
			inc.Push(trace.Record{At: at, Bytes: 100, Dir: dci.Downlink}, emit)
		}
	}
	// 3 s of context at 50 rec/s plus the open window's backlog.
	if max := 4 * perSecond; inc.Buffered() > max {
		t.Fatalf("buffer holds %d records after 120 s of traffic, want <= %d", inc.Buffered(), max)
	}
}

// TestIncrementalOutOfOrder pins the documented drop-and-count behaviour
// for records violating At order.
func TestIncrementalOutOfOrder(t *testing.T) {
	inc := NewIncremental(100*time.Millisecond, 100*time.Millisecond)
	emit := func(time.Duration, []float64) {}
	inc.Push(trace.Record{At: 500 * time.Millisecond, Bytes: 1}, emit)
	inc.Push(trace.Record{At: 200 * time.Millisecond, Bytes: 1}, emit)
	if inc.OutOfOrder != 1 {
		t.Fatalf("OutOfOrder = %d, want 1", inc.OutOfOrder)
	}
}
