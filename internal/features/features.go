// Package features turns windowed radio traces into the fixed-length
// vectors the classifiers consume. The feature families follow the paper's
// Table II — time vector (interarrival and cumulative time), size vector
// (transport block sizes), direction vector (uplink/downlink) — aggregated
// per sliding window; the RNTI identity vector is used upstream for
// grouping, not as a model input.
package features

import (
	"math"
	"math/bits"
	"time"

	"ltefp/internal/lte/dci"
	"ltefp/internal/obs"
	"ltefp/internal/trace"
)

// baseNames lists the per-window features in vector order.
var baseNames = []string{
	"frame_count",
	"dl_count",
	"ul_count",
	"total_bytes",
	"dl_bytes",
	"ul_bytes",
	"size_mean",
	"size_std",
	"size_min",
	"size_max",
	"iat_mean",
	"iat_std",
	"iat_max",
	"cumulative_time",
	"dl_byte_ratio",
	"burstiness",
	"active_fraction",
	"size_p50",
}

// contextNames lists the cross-window context features appended by
// FromTrace: burst cadence is invisible inside a single 100 ms window, so
// the extractor also looks at the trace's recent past — the gap since the
// previous frame, the previous window's volume, and the trailing one-second
// rate. These are still pure radio-layer observables.
var contextNames = []string{
	"gap_prev_ms",
	"prev_count",
	"prev_bytes",
	"rate_1s_bytes",
	"rate_1s_count",
	"bytes_3s",
	"active_frac_3s",
}

// Dim is the length of a per-window feature vector.
const Dim = 18

// ContextDim is the number of appended cross-window features.
const ContextDim = 7

// TotalDim is the length of vectors produced by FromTrace.
const TotalDim = Dim + ContextDim

// Names returns the FromTrace feature names in vector order.
func Names() []string {
	out := make([]string, 0, TotalDim)
	out = append(out, baseNames...)
	return append(out, contextNames...)
}

// BaseNames returns the single-window feature names in vector order.
func BaseNames() []string {
	out := make([]string, len(baseNames))
	copy(out, baseNames)
	return out
}

// gapCapMilliseconds bounds the gap feature (and encodes "no previous
// activity" for the first window).
const gapCapMilliseconds = 10000

// Extractor computes feature vectors while reusing its internal scratch
// buffers (size sort space, occupancy bitsets) across calls, so sustained
// window extraction does not allocate beyond the returned vectors. An
// Extractor is not safe for concurrent use; callers that extract in
// parallel create one per goroutine.
type Extractor struct {
	sizes []float64
	occ   []uint64
	wins  []trace.Window
}

// NewExtractor returns an Extractor with empty scratch state.
func NewExtractor() *Extractor { return &Extractor{} }

// FromTrace extracts one TotalDim feature vector per non-empty window of
// the trace: the Dim per-window aggregates plus the ContextDim trailing
// context features.
func FromTrace(t trace.Trace, width, stride time.Duration) [][]float64 {
	return NewExtractor().FromTrace(t, width, stride)
}

// FromTrace is the package-level FromTrace reusing the extractor's scratch.
func (e *Extractor) FromTrace(t trace.Trace, width, stride time.Duration) [][]float64 {
	return e.FromTraceInto(nil, t, width, stride)
}

// FromTraceInto is FromTrace appending into dst. Pass the previous call's
// return value resliced to zero length (buf = e.FromTraceInto(buf[:0], ...))
// and the extractor recycles both dst's row slices and its internal window
// scratch, making sustained extraction of same-sized traces allocation-free.
// Rows still owned by dst's backing array beyond its length are reused in
// place, so callers must not retain rows across reuse cycles.
func (e *Extractor) FromTraceInto(dst [][]float64, t trace.Trace, width, stride time.Duration) [][]float64 {
	m := activeMetrics.Load()
	var timer obs.Timer
	if m != nil {
		timer = m.extractMS.Start()
	}
	ws := t.WindowsInto(e.wins[:0], width, stride)
	e.wins = ws
	out := dst
	if out == nil {
		out = make([][]float64, 0, len(ws))
	}
	base := len(out)
	recIdx := 0 // first record at or after the current window start
	lo := 0     // first record inside the trailing 1 s horizon
	lo3 := 0    // first record inside the trailing 3 s horizon
	var prevCount, prevBytes float64
	for _, w := range ws {
		end := w.Start + width
		for recIdx < len(t) && t[recIdx].At < w.Start {
			recIdx++
		}
		for lo < len(t) && t[lo].At < end-time.Second {
			lo++
		}
		for lo3 < len(t) && t[lo3].At < end-3*time.Second {
			lo3++
		}
		if len(w.Records) == 0 {
			continue
		}
		// Recycle the row slice parked past dst's length by an earlier
		// cycle, if there is one; otherwise allocate a fresh row.
		var v []float64
		if n := len(out); n < cap(out) {
			if r := out[:n+1][n]; cap(r) >= TotalDim {
				v = r[:TotalDim]
				for i := range v {
					v[i] = 0
				}
			}
		}
		if v == nil {
			v = make([]float64, TotalDim)
		}
		e.fromWindowInto(v[:Dim], w, width)

		gap := float64(gapCapMilliseconds)
		if recIdx > 0 {
			g := float64((w.Records[0].At - t[recIdx-1].At).Microseconds()) / 1000
			if g < gap {
				gap = g
			}
		}
		v[Dim] = gap
		v[Dim+1] = prevCount
		v[Dim+2] = prevBytes

		var rb, rc float64
		for i := lo; i < len(t) && t[i].At < end; i++ {
			rb += float64(t[i].Bytes)
			rc++
		}
		v[Dim+3] = rb
		v[Dim+4] = rc

		// Trailing 3 s duty cycle: byte volume plus the fraction of 100 ms
		// slots carrying any traffic. Duty cycle separates burst-and-idle
		// delivery (Netflix-style) from near-continuous delivery
		// (YouTube-style) robustly across channel conditions. The horizon
		// spans at most 31 distinct 100 ms slots, so one uint64 bitset
		// relative to the horizon's first slot replaces the old per-window
		// set allocation.
		var b3 float64
		var slotBits uint64
		slotBase := (end - 3*time.Second) / (100 * time.Millisecond)
		if slotBase < 0 {
			slotBase = 0
		}
		for i := lo3; i < len(t) && t[i].At < end; i++ {
			b3 += float64(t[i].Bytes)
			slotBits |= 1 << uint(t[i].At/(100*time.Millisecond)-slotBase)
		}
		v[Dim+5] = b3
		v[Dim+6] = float64(bits.OnesCount64(slotBits)) / 30
		out = append(out, v)

		prevCount = v[0]
		prevBytes = v[3]
	}
	if m != nil {
		m.rows.Add(int64(len(out) - base))
		timer.Stop()
	}
	return out
}

// FromWindow extracts the feature vector of one window. width is the
// window width the trace was split with (it bounds time features for
// sparse windows). Empty windows yield the zero vector — "silence" rows
// that let the classifier learn burst cadence.
func FromWindow(w trace.Window, width time.Duration) []float64 {
	return NewExtractor().FromWindow(w, width)
}

// FromWindow is the package-level FromWindow reusing the extractor's
// scratch.
func (e *Extractor) FromWindow(w trace.Window, width time.Duration) []float64 {
	v := make([]float64, Dim)
	e.fromWindowInto(v, w, width)
	return v
}

// fromWindowInto fills v (len Dim, zeroed) with one window's features.
func (e *Extractor) fromWindowInto(v []float64, w trace.Window, width time.Duration) {
	recs := w.Records
	if len(recs) == 0 {
		return
	}
	if cap(e.sizes) < len(recs) {
		e.sizes = make([]float64, len(recs))
	}
	var (
		dlCount, ulCount float64
		dlBytes, ulBytes float64
		sizes            = e.sizes[:len(recs)]
		sumSize, sumSq   float64
		minSize          = math.Inf(1)
		maxSize          float64
	)
	for i, r := range recs {
		b := float64(r.Bytes)
		sizes[i] = b
		sumSize += b
		sumSq += b * b
		if b < minSize {
			minSize = b
		}
		if b > maxSize {
			maxSize = b
		}
		if r.Dir == dci.Downlink {
			dlCount++
			dlBytes += b
		} else {
			ulCount++
			ulBytes += b
		}
	}
	n := float64(len(recs))
	meanSize := sumSize / n
	varSize := sumSq/n - meanSize*meanSize
	if varSize < 0 {
		varSize = 0
	}

	// Interarrival times in milliseconds.
	var iatMean, iatStd, iatMax, cum float64
	if len(recs) >= 2 {
		var sum, sumSq2 float64
		k := float64(len(recs) - 1)
		for i := 1; i < len(recs); i++ {
			d := float64((recs[i].At - recs[i-1].At).Microseconds()) / 1000
			sum += d
			sumSq2 += d * d
			if d > iatMax {
				iatMax = d
			}
		}
		iatMean = sum / k
		v2 := sumSq2/k - iatMean*iatMean
		if v2 < 0 {
			v2 = 0
		}
		iatStd = math.Sqrt(v2)
		cum = sum
	} else {
		// A lone record: the only time information is the window itself.
		iatMean = float64(width.Microseconds()) / 1000
	}

	burst := 0.0
	if iatMean > 0 {
		burst = iatStd / iatMean
	}

	// Fraction of 1 ms bins inside the window holding at least one record,
	// counted in a reusable bitset instead of a per-window set.
	bins := int(width / time.Millisecond)
	if bins < 1 {
		bins = 1
	}
	words := bins/64 + 1
	if cap(e.occ) < words {
		e.occ = make([]uint64, words)
	}
	occ := e.occ[:words]
	for i := range occ {
		occ[i] = 0
	}
	for _, r := range recs {
		idx := int((r.At - w.Start) / time.Millisecond)
		if idx < 0 {
			idx = 0
		} else if idx > bins {
			idx = bins
		}
		occ[idx/64] |= 1 << uint(idx%64)
	}
	occupied := 0
	for _, word := range occ {
		occupied += bits.OnesCount64(word)
	}
	active := float64(occupied) / float64(bins)

	v[0] = n
	v[1] = dlCount
	v[2] = ulCount
	v[3] = sumSize
	v[4] = dlBytes
	v[5] = ulBytes
	v[6] = meanSize
	v[7] = math.Sqrt(varSize)
	v[8] = minSize
	v[9] = maxSize
	v[10] = iatMean
	v[11] = iatStd
	v[12] = iatMax
	v[13] = cum
	if sumSize > 0 {
		v[14] = dlBytes / sumSize
	}
	v[15] = burst
	v[16] = active
	v[17] = median(sizes)
}

// FromWindows extracts a feature matrix, one row per window.
func FromWindows(ws []trace.Window, width time.Duration) [][]float64 {
	e := NewExtractor()
	out := make([][]float64, len(ws))
	for i, w := range ws {
		out[i] = e.FromWindow(w, width)
	}
	return out
}

// median computes the median, reordering its argument.
func median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	// Insertion sort: window sizes are small.
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
	m := len(v) / 2
	if len(v)%2 == 1 {
		return v[m]
	}
	return (v[m-1] + v[m]) / 2
}
