package features

import (
	"fmt"
	"math/bits"
	"time"

	"ltefp/internal/trace"
)

// Incremental is a push-based sliding-window feature extractor producing
// rows bit-identical to FromTrace over the same record sequence. It exists
// for the live pipeline: records arrive one at a time from a draining
// sniffer, and a window's row is emitted as soon as the window can no
// longer receive records (a record at or past its end arrives, or Flush is
// called), instead of after the whole capture is on disk.
//
// The extractor retains only the trailing context horizon (the records the
// gap, 1 s rate, and 3 s duty-cycle features still reference — at most 3 s
// behind the next window), so memory stays bounded by traffic rate, not
// capture length. The emitted row slice is scratch owned by the
// Incremental and is only valid during the emit callback; callers that
// retain rows must copy them.
//
// An Incremental is not safe for concurrent use. Records must be pushed in
// non-decreasing At order (the order sniffers drain them); out-of-order
// records are dropped and counted in OutOfOrder, never silently reordered.
type Incremental struct {
	width  time.Duration
	stride time.Duration

	ex  Extractor // fromWindowInto scratch (sizes, occupancy bitset)
	row []float64 // emit scratch, TotalDim

	buf     []trace.Record // retained records, time-ordered
	started bool
	next    time.Duration // start of the next window to finalize
	lastAt  time.Duration // At of the newest accepted record

	prevCount, prevBytes float64 // previous emitted window's count/bytes

	// Last record evicted from buf: the gap feature's reference when no
	// buffered record precedes the window start.
	hasEvicted bool
	evictedAt  time.Duration

	// OutOfOrder counts records dropped for violating At order.
	OutOfOrder int64
}

// NewIncremental returns an extractor for the given window geometry. It
// panics if width or stride is not positive, mirroring trace.Windows.
func NewIncremental(width, stride time.Duration) *Incremental {
	if width <= 0 || stride <= 0 {
		panic(fmt.Sprintf("features: invalid window width %v / stride %v", width, stride))
	}
	return &Incremental{
		width:  width,
		stride: stride,
		row:    make([]float64, TotalDim),
	}
}

// IncrementalState is the complete restorable state of an Incremental:
// everything Push/AdvanceTo/Flush read or write apart from reusable
// scratch. It exists for the streaming pipeline's checkpoints — an
// extractor rebuilt from it continues emitting rows bit-identical to the
// one it was captured from.
type IncrementalState struct {
	Width, Stride        time.Duration
	Buf                  []trace.Record
	Started              bool
	Next, LastAt         time.Duration
	PrevCount, PrevBytes float64
	HasEvicted           bool
	EvictedAt            time.Duration
	OutOfOrder           int64
}

// State captures the extractor's restorable state. The returned record
// slice is a copy: it stays valid while the extractor keeps running.
func (inc *Incremental) State() IncrementalState {
	return IncrementalState{
		Width:      inc.width,
		Stride:     inc.stride,
		Buf:        append([]trace.Record(nil), inc.buf...),
		Started:    inc.started,
		Next:       inc.next,
		LastAt:     inc.lastAt,
		PrevCount:  inc.prevCount,
		PrevBytes:  inc.prevBytes,
		HasEvicted: inc.hasEvicted,
		EvictedAt:  inc.evictedAt,
		OutOfOrder: inc.OutOfOrder,
	}
}

// RestoreIncremental rebuilds an extractor from captured state. The
// record slice is copied, so the state remains reusable.
func RestoreIncremental(st IncrementalState) (*Incremental, error) {
	if st.Width <= 0 || st.Stride <= 0 {
		return nil, fmt.Errorf("features: restoring incremental: invalid window width %v / stride %v", st.Width, st.Stride)
	}
	inc := NewIncremental(st.Width, st.Stride)
	inc.buf = append(inc.buf, st.Buf...)
	inc.started = st.Started
	inc.next = st.Next
	inc.lastAt = st.LastAt
	inc.prevCount = st.PrevCount
	inc.prevBytes = st.PrevBytes
	inc.hasEvicted = st.HasEvicted
	inc.evictedAt = st.EvictedAt
	inc.OutOfOrder = st.OutOfOrder
	return inc, nil
}

// Reset returns the extractor to its initial state, keeping scratch
// capacity.
func (inc *Incremental) Reset() {
	inc.buf = inc.buf[:0]
	inc.started = false
	inc.next = 0
	inc.lastAt = 0
	inc.prevCount = 0
	inc.prevBytes = 0
	inc.hasEvicted = false
	inc.evictedAt = 0
	inc.OutOfOrder = 0
}

// Buffered reports how many records the context horizon currently retains.
func (inc *Incremental) Buffered() int { return len(inc.buf) }

// Push feeds one record, emitting every window the record proves complete
// (all windows ending at or before r.At). emit receives the window start
// and the TotalDim feature row; the row is scratch reused by the next
// emission.
func (inc *Incremental) Push(r trace.Record, emit func(start time.Duration, row []float64)) {
	if inc.started && r.At < inc.lastAt {
		inc.OutOfOrder++
		return
	}
	if !inc.started {
		inc.started = true
		inc.next = r.At - r.At%inc.stride
	}
	// A window [next, next+width) can still gain records until one arrives
	// at or past its end; r proves every earlier window complete.
	for inc.next+inc.width <= r.At {
		inc.finalize(emit)
	}
	inc.buf = append(inc.buf, r)
	inc.lastAt = r.At
}

// AdvanceTo emits every window ending at or before now. It is only sound
// when the caller guarantees all records with At < now have been pushed —
// the invariant a time-sliced source provides after draining a slice — in
// which case the emitted rows are identical to the ones a later Push or
// Flush would have produced. Windows the extractor skips past are
// record-free and would never have emitted.
func (inc *Incremental) AdvanceTo(now time.Duration, emit func(start time.Duration, row []float64)) {
	if !inc.started {
		return
	}
	for inc.next+inc.width <= now {
		inc.finalize(emit)
	}
}

// Flush emits every remaining window through the one containing the last
// record, matching FromTrace's iteration bound (start <= last record At).
// The extractor keeps accepting pushes afterwards, but records older than
// the already-emitted windows count as out-of-order.
func (inc *Incremental) Flush(emit func(start time.Duration, row []float64)) {
	if !inc.started {
		return
	}
	for inc.next <= inc.lastAt {
		inc.finalize(emit)
	}
}

// finalize extracts the window starting at inc.next (emitting only if it
// holds records, as FromTrace does), advances to the following window, and
// evicts records the remaining windows can no longer reference.
func (inc *Incremental) finalize(emit func(start time.Duration, row []float64)) {
	start := inc.next
	end := start + inc.width
	buf := inc.buf
	i := 0
	for i < len(buf) && buf[i].At < start {
		i++
	}
	j := i
	for j < len(buf) && buf[j].At < end {
		j++
	}
	if j > i {
		v := inc.row
		for k := range v {
			v[k] = 0
		}
		inc.ex.fromWindowInto(v[:Dim], trace.Window{Start: start, Records: buf[i:j]}, inc.width)

		// Gap to the last record before the window start: a buffered
		// predecessor if one survives, else the last evicted record.
		gap := float64(gapCapMilliseconds)
		prevAt := inc.evictedAt
		havePrev := inc.hasEvicted
		if i > 0 {
			prevAt = buf[i-1].At
			havePrev = true
		}
		if havePrev {
			g := float64((buf[i].At - prevAt).Microseconds()) / 1000
			if g < gap {
				gap = g
			}
		}
		v[Dim] = gap
		v[Dim+1] = inc.prevCount
		v[Dim+2] = inc.prevBytes

		lo := 0
		for lo < len(buf) && buf[lo].At < end-time.Second {
			lo++
		}
		var rb, rc float64
		for k := lo; k < len(buf) && buf[k].At < end; k++ {
			rb += float64(buf[k].Bytes)
			rc++
		}
		v[Dim+3] = rb
		v[Dim+4] = rc

		lo3 := 0
		for lo3 < len(buf) && buf[lo3].At < end-3*time.Second {
			lo3++
		}
		var b3 float64
		var slotBits uint64
		slotBase := (end - 3*time.Second) / (100 * time.Millisecond)
		if slotBase < 0 {
			slotBase = 0
		}
		for k := lo3; k < len(buf) && buf[k].At < end; k++ {
			b3 += float64(buf[k].Bytes)
			slotBits |= 1 << uint(buf[k].At/(100*time.Millisecond)-slotBase)
		}
		v[Dim+5] = b3
		v[Dim+6] = float64(bits.OnesCount64(slotBits)) / 30

		emit(start, v)

		inc.prevCount = v[0]
		inc.prevBytes = v[3]
	}
	inc.next = start + inc.stride

	// Evict records no future window references: the next window needs its
	// 3 s context horizon and, for the gap feature, at most one record
	// before its start (tracked in evictedAt).
	evictBefore := inc.next + inc.width - 3*time.Second
	if evictBefore > inc.next {
		evictBefore = inc.next
	}
	k := 0
	for k < len(buf) && buf[k].At < evictBefore {
		k++
	}
	if k > 0 {
		inc.evictedAt = buf[k-1].At
		inc.hasEvicted = true
		n := copy(buf, buf[k:])
		inc.buf = buf[:n]
	}
}
