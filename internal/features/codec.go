package features

import (
	"fmt"

	"ltefp/internal/snapshot"
)

// SchemaVersion identifies the feature definition: the set, order, and
// semantics of the TotalDim vector components FromTrace emits. It
// participates in every cached artifact key derived from feature vectors
// (window matrices, datasets, trained forests), so changing a feature —
// adding one, reordering, altering an aggregate — must bump it, making
// stale cache entries unreachable instead of silently wrong.
const SchemaVersion uint32 = 1

// EncodeMatrix appends a window/feature matrix to the encoder: row count,
// then each row's length-prefixed float64 bit patterns. Equal matrices
// always produce equal bytes.
func EncodeMatrix(e *snapshot.Encoder, m [][]float64) {
	e.Uvarint(uint64(len(m)))
	for _, row := range m {
		e.Uvarint(uint64(len(row)))
		for _, v := range row {
			e.F64(v)
		}
	}
}

// DecodeMatrix reads a matrix written by EncodeMatrix, validating that
// every row carries exactly TotalDim features — a matrix of any other
// shape cannot have come from this pipeline. An empty matrix decodes as
// nil, matching FromTrace on a silent trace.
func DecodeMatrix(d *snapshot.Decoder) ([][]float64, error) {
	n := d.Count(2)
	if d.Err() != nil {
		return nil, d.Err()
	}
	var m [][]float64
	if n > 0 {
		m = make([][]float64, 0, n)
	}
	for i := 0; i < n; i++ {
		k := d.Count(8)
		if d.Err() != nil {
			return nil, d.Err()
		}
		if k != TotalDim {
			return nil, fmt.Errorf("%w: feature row of %d values, schema has %d", snapshot.ErrCorrupt, k, TotalDim)
		}
		row := make([]float64, k)
		for j := range row {
			row[j] = d.F64()
		}
		m = append(m, row)
	}
	return m, d.Err()
}

// MatrixSize approximates a matrix's in-memory footprint.
func MatrixSize(m [][]float64) int64 {
	return int64(len(m)) * (24 + 8*TotalDim)
}
