package features_test

import (
	"math"
	"testing"
	"time"

	"ltefp/internal/features"
	"ltefp/internal/lte/dci"
	"ltefp/internal/trace"
)

const ms = time.Millisecond

func TestNamesMatchDims(t *testing.T) {
	if len(features.Names()) != features.TotalDim {
		t.Fatalf("Names() has %d entries, TotalDim = %d", len(features.Names()), features.TotalDim)
	}
	if len(features.BaseNames()) != features.Dim {
		t.Fatalf("BaseNames() has %d entries, Dim = %d", len(features.BaseNames()), features.Dim)
	}
	if features.TotalDim != features.Dim+features.ContextDim {
		t.Fatal("dimension constants inconsistent")
	}
}

func TestEmptyWindowIsZero(t *testing.T) {
	v := features.FromWindow(trace.Window{Start: 0}, 100*ms)
	if len(v) != features.Dim {
		t.Fatalf("vector length %d", len(v))
	}
	for i, x := range v {
		if x != 0 {
			t.Fatalf("feature %d of empty window = %v", i, x)
		}
	}
}

func TestHandComputedWindow(t *testing.T) {
	w := trace.Window{
		Start: 0,
		Records: trace.Trace{
			{At: 10 * ms, Dir: dci.Downlink, Bytes: 100},
			{At: 30 * ms, Dir: dci.Uplink, Bytes: 300},
			{At: 70 * ms, Dir: dci.Downlink, Bytes: 200},
		},
	}
	v := features.FromWindow(w, 100*ms)
	check := func(name string, idx int, want float64) {
		t.Helper()
		if math.Abs(v[idx]-want) > 1e-9 {
			t.Errorf("%s = %v, want %v", name, v[idx], want)
		}
	}
	check("frame_count", 0, 3)
	check("dl_count", 1, 2)
	check("ul_count", 2, 1)
	check("total_bytes", 3, 600)
	check("dl_bytes", 4, 300)
	check("ul_bytes", 5, 300)
	check("size_mean", 6, 200)
	check("size_min", 8, 100)
	check("size_max", 9, 300)
	check("iat_mean", 10, 30) // gaps 20 ms and 40 ms
	check("iat_max", 12, 40)
	check("cumulative_time", 13, 60)
	check("dl_byte_ratio", 14, 0.5)
	check("active_fraction", 16, 0.03) // 3 of 100 one-ms bins
	check("size_p50", 17, 200)
}

func TestSingleRecordWindow(t *testing.T) {
	w := trace.Window{Start: 0, Records: trace.Trace{{At: 5 * ms, Dir: dci.Downlink, Bytes: 64}}}
	v := features.FromWindow(w, 100*ms)
	if v[10] != 100 { // iat_mean falls back to the window width in ms
		t.Fatalf("iat_mean for lone record = %v, want 100", v[10])
	}
	if v[6] != 64 || v[17] != 64 {
		t.Fatal("size stats for lone record wrong")
	}
}

func TestFromTraceContextFeatures(t *testing.T) {
	// Two bursts separated by 2 s: the second burst's first window must
	// carry the gap in gap_prev_ms and the previous window's stats.
	tr := trace.Trace{
		{At: 10 * ms, Dir: dci.Downlink, Bytes: 500},
		{At: 20 * ms, Dir: dci.Downlink, Bytes: 700},
		{At: 2020 * ms, Dir: dci.Downlink, Bytes: 900},
	}
	vecs := features.FromTrace(tr, 100*ms, 100*ms)
	if len(vecs) != 2 {
		t.Fatalf("%d non-empty windows, want 2", len(vecs))
	}
	first, second := vecs[0], vecs[1]
	if len(first) != features.TotalDim {
		t.Fatalf("vector length %d", len(first))
	}
	gapIdx := features.Dim
	if first[gapIdx] != 10000 {
		t.Fatalf("first window gap_prev = %v, want the 10 s cap", first[gapIdx])
	}
	if second[gapIdx] != 2000 {
		t.Fatalf("second window gap_prev = %v ms, want 2000", second[gapIdx])
	}
	if second[features.Dim+1] != 2 || second[features.Dim+2] != 1200 {
		t.Fatalf("prev-window context = (%v, %v), want (2, 1200)",
			second[features.Dim+1], second[features.Dim+2])
	}
	// Trailing 1 s of the second window holds only its own record.
	if second[features.Dim+3] != 900 || second[features.Dim+4] != 1 {
		t.Fatalf("rate_1s = (%v, %v), want (900, 1)",
			second[features.Dim+3], second[features.Dim+4])
	}
	// Trailing 3 s of the second window sees all three records in two
	// occupied 100 ms slots.
	if second[features.Dim+5] != 2100 {
		t.Fatalf("bytes_3s = %v, want 2100", second[features.Dim+5])
	}
	if math.Abs(second[features.Dim+6]-2.0/30) > 1e-9 {
		t.Fatalf("active_frac_3s = %v, want 2/30", second[features.Dim+6])
	}
}

func TestFromTraceEmptyTrace(t *testing.T) {
	if got := features.FromTrace(nil, 100*ms, 100*ms); len(got) != 0 {
		t.Fatalf("FromTrace(nil) returned %d vectors", len(got))
	}
}

func TestFromWindowsMatrix(t *testing.T) {
	tr := trace.Trace{
		{At: 10 * ms, Dir: dci.Downlink, Bytes: 100},
		{At: 200 * ms, Dir: dci.Downlink, Bytes: 100},
	}
	ws := tr.Windows(100*ms, 100*ms)
	m := features.FromWindows(ws, 100*ms)
	if len(m) != len(ws) {
		t.Fatalf("matrix rows %d, windows %d", len(m), len(ws))
	}
}

// synthTrace builds a deterministic busy trace spanning roughly n*spacing.
func synthTrace(n int, spacing time.Duration) trace.Trace {
	tr := make(trace.Trace, n)
	for i := 0; i < n; i++ {
		dir := dci.Downlink
		if i%3 == 0 {
			dir = dci.Uplink
		}
		tr[i] = trace.Record{At: time.Duration(i) * spacing, Dir: dir, Bytes: 100 + i%700}
	}
	return tr
}

func TestFromTraceIntoMatchesFromTrace(t *testing.T) {
	tr := synthTrace(5000, 7*ms)
	want := features.FromTrace(tr, 100*ms, 100*ms)

	e := features.NewExtractor()
	var buf [][]float64
	// Two cycles: the second reuses the first's rows, and must still be
	// identical to the fresh extraction.
	for cycle := 0; cycle < 2; cycle++ {
		buf = e.FromTraceInto(buf[:0], tr, 100*ms, 100*ms)
		if len(buf) != len(want) {
			t.Fatalf("cycle %d: %d rows, want %d", cycle, len(buf), len(want))
		}
		for i := range buf {
			for j := range buf[i] {
				if buf[i][j] != want[i][j] {
					t.Fatalf("cycle %d: row %d feature %d = %v, want %v",
						cycle, i, j, buf[i][j], want[i][j])
				}
			}
		}
	}
}

// TestFromTraceIntoAllocationFree is the regression guard for the reused
// dataset buffer: once warmed, re-extracting a same-sized trace must not
// allocate at all (window scratch, row slices, and size/occupancy scratch
// are all recycled).
func TestFromTraceIntoAllocationFree(t *testing.T) {
	tr := synthTrace(5000, 7*ms)
	e := features.NewExtractor()
	var buf [][]float64
	buf = e.FromTraceInto(buf[:0], tr, 100*ms, 100*ms) // warm the scratch
	if len(buf) == 0 {
		t.Fatal("synthetic trace produced no windows")
	}
	allocs := testing.AllocsPerRun(20, func() {
		buf = e.FromTraceInto(buf[:0], tr, 100*ms, 100*ms)
	})
	if allocs != 0 {
		t.Fatalf("steady-state FromTraceInto allocates %v objects/run, want 0", allocs)
	}
}
