// Package cliflag validates parsed command-line flag values for the
// repository's binaries. The flag package accepts any well-formed integer
// or duration, so every command used to forward nonsense like
// `-population -5` straight into the simulation; these helpers turn such
// values into a uniform error before any work starts, and the caller's
// usual error path maps that to a non-zero exit.
package cliflag

import (
	"fmt"
	"time"
)

// NonNegative rejects a negative integer flag.
func NonNegative(name string, v int) error {
	if v < 0 {
		return fmt.Errorf("-%s must not be negative (got %d)", name, v)
	}
	return nil
}

// Positive rejects a zero or negative integer flag.
func Positive(name string, v int) error {
	if v <= 0 {
		return fmt.Errorf("-%s must be positive (got %d)", name, v)
	}
	return nil
}

// NonNegativeDuration rejects a negative duration flag.
func NonNegativeDuration(name string, v time.Duration) error {
	if v < 0 {
		return fmt.Errorf("-%s must not be negative (got %v)", name, v)
	}
	return nil
}

// PositiveDuration rejects a zero or negative duration flag.
func PositiveDuration(name string, v time.Duration) error {
	if v <= 0 {
		return fmt.Errorf("-%s must be positive (got %v)", name, v)
	}
	return nil
}

// Check returns the first error in the list, so a command can validate all
// of its flags in one statement.
func Check(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
