package cliflag

import (
	"testing"
	"time"
)

func TestValidators(t *testing.T) {
	if err := NonNegative("population", -5); err == nil {
		t.Error("NonNegative accepted -5")
	}
	if err := NonNegative("population", 0); err != nil {
		t.Errorf("NonNegative rejected 0: %v", err)
	}
	if err := Positive("cells", 0); err == nil {
		t.Error("Positive accepted 0")
	}
	if err := Positive("cells", 3); err != nil {
		t.Errorf("Positive rejected 3: %v", err)
	}
	if err := NonNegativeDuration("gap", -time.Second); err == nil {
		t.Error("NonNegativeDuration accepted -1s")
	}
	if err := PositiveDuration("duration", 0); err == nil {
		t.Error("PositiveDuration accepted 0")
	}
	if err := PositiveDuration("duration", time.Minute); err != nil {
		t.Errorf("PositiveDuration rejected 1m: %v", err)
	}
}

func TestCheck(t *testing.T) {
	if err := Check(nil, nil); err != nil {
		t.Errorf("Check(nil, nil) = %v", err)
	}
	want := Positive("cells", -1)
	if got := Check(nil, want, NonNegative("x", -1)); got != want {
		t.Errorf("Check returned %v, want first error %v", got, want)
	}
}
