package obs

import (
	"fmt"
	"testing"
)

// The hot-path budget: counters and histogram observations sit inside the
// per-candidate sniffer loop and the per-tick scheduler loop, so they must
// stay in the nanoseconds and allocate nothing.

func BenchmarkObsCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench.counter")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkObsCounterIncParallel(b *testing.B) {
	c := NewRegistry().Counter("bench.counter")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkObsHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench.hist", LatencyBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 1000))
	}
}

func BenchmarkObsTimer(b *testing.B) {
	h := NewRegistry().Histogram("bench.hist", LatencyBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Start().Stop()
	}
}

// BenchmarkObsNilCounterInc measures the disabled path: a nil counter from
// a scope with no registry behind it. This is what the pipeline pays when
// metrics are off, so it should be close to free.
func BenchmarkObsNilCounterInc(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkObsNilTimer(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Start().Stop()
	}
}

func BenchmarkObsSnapshot(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 64; i++ {
		r.Counter(fmt.Sprintf("bench.counter%02d", i))
	}
	r.Histogram("bench.hist", LatencyBuckets()).Observe(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Snapshot()
	}
}
