package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// expvarPublished guards against double expvar.Publish panics when
// several registries (tests, repeated runs) publish under the same name.
var expvarPublished sync.Map // name -> struct{}

// PublishExpvar exposes the registry under the given name in the
// process-wide expvar namespace (the /debug/vars JSON). Re-publishing a
// name rebinds it to this registry instead of panicking, so tests and
// repeated runs stay safe.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	slot := &registrySlot{}
	slot.reg.Store(r)
	if v, loaded := expvarPublished.LoadOrStore(name, slot); loaded {
		v.(*registrySlot).reg.Store(r)
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return slot.reg.Load().Snapshot() }))
}

// registrySlot is the rebindable target behind one expvar name.
type registrySlot struct {
	reg atomic.Pointer[Registry]
}

// DebugServer is the -debug-addr HTTP endpoint: expvar under /debug/vars,
// the full net/http/pprof suite under /debug/pprof/, and the registry as
// text and JSON under /metrics and /metrics.json.
type DebugServer struct {
	// Addr is the bound listen address (useful with ":0").
	Addr net.Addr

	srv *http.Server
	lis net.Listener
}

// StartDebugServer binds addr and serves the debug endpoints for r in a
// background goroutine until Close. The registry is also published to
// expvar as "ltefp".
func StartDebugServer(addr string, r *Registry) (*DebugServer, error) {
	return StartDebugServerWith(addr, r, nil)
}

// StartDebugServerWith is StartDebugServer plus caller-supplied handlers
// mounted on the same mux — how the capture daemon adds /healthz,
// /verdicts, and /sweep next to the standard debug surface. Extra paths
// must not collide with the built-in ones.
func StartDebugServerWith(addr string, r *Registry, extra map[string]http.Handler) (*DebugServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server: %w", err)
	}
	r.PublishExpvar("ltefp")
	mux := http.NewServeMux()
	for path, h := range extra {
		mux.Handle(path, h)
	}
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = r.WriteText(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.Dump(w)
	})
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	ds := &DebugServer{Addr: lis.Addr(), srv: srv, lis: lis}
	go func() { _ = srv.Serve(lis) }()
	return ds, nil
}

// Close stops the server and releases the listener.
func (s *DebugServer) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}
