package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// MetricValue is one named counter or gauge reading.
type MetricValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramValue is one histogram reading: cumulative-free bucket counts
// parallel to Bounds, plus the +Inf overflow count in the final slot.
type HistogramValue struct {
	Name   string    `json:"name"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// Mean returns the mean observed value (0 when empty).
func (h HistogramValue) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// inside the bucket containing it. Values beyond the last bound are
// reported as the last bound — fixed-bucket histograms cannot see further.
func (h HistogramValue) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	rank := q * float64(h.Count)
	var cum int64
	lower := 0.0
	for i, c := range h.Counts {
		if i >= len(h.Bounds) {
			return h.Bounds[len(h.Bounds)-1]
		}
		upper := h.Bounds[i]
		if float64(cum+c) >= rank {
			if c == 0 {
				return upper
			}
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lower + (upper-lower)*frac
		}
		cum += c
		lower = upper
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Snapshot is a point-in-time copy of every metric in a registry, sorted
// by name. It is plain data: safe to retain, compare, and serialise.
type Snapshot struct {
	Counters   []MetricValue    `json:"counters"`
	Gauges     []MetricValue    `json:"gauges"`
	Histograms []HistogramValue `json:"histograms"`
}

// Counter returns the named counter's value (0 when absent).
func (s Snapshot) Counter(name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Gauge returns the named gauge's value (0 when absent).
func (s Snapshot) Gauge(name string) int64 {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

// Histogram returns the named histogram's reading and whether it exists.
func (s Snapshot) Histogram(name string) (HistogramValue, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramValue{}, false
}

// Snapshot captures the registry. Concurrent updates during the copy may
// land in either side of the cut (each metric is read atomically); for an
// exact cut, snapshot a quiescent registry. A nil registry yields the
// empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var out Snapshot
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out.Counters = make([]MetricValue, 0, len(r.counters))
	for name, c := range r.counters {
		out.Counters = append(out.Counters, MetricValue{Name: name, Value: c.v.Load()})
	}
	out.Gauges = make([]MetricValue, 0, len(r.gauges))
	for name, g := range r.gauges {
		out.Gauges = append(out.Gauges, MetricValue{Name: name, Value: g.v.Load()})
	}
	out.Histograms = make([]HistogramValue, 0, len(r.histograms))
	for name, h := range r.histograms {
		hv := HistogramValue{
			Name:   name,
			Count:  h.count.Load(),
			Sum:    h.sum.load(),
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
		}
		for i := range h.counts {
			hv.Counts[i] = h.counts[i].Load()
		}
		out.Histograms = append(out.Histograms, hv)
	}
	sort.Slice(out.Counters, func(i, j int) bool { return out.Counters[i].Name < out.Counters[j].Name })
	sort.Slice(out.Gauges, func(i, j int) bool { return out.Gauges[i].Name < out.Gauges[j].Name })
	sort.Slice(out.Histograms, func(i, j int) bool { return out.Histograms[i].Name < out.Histograms[j].Name })
	return out
}

// WriteText renders the snapshot in the one-metric-per-line form the
// per-run reports and the /metrics endpoint use:
//
//	counter   cell1.sniffer.candidates 843021
//	gauge     experiments.workers_active 0
//	histogram pipeline.forest.batch_ms count=42 sum=918.400 mean=21.867 p50=18.21 p95=49.30 p99=88.75
func (s Snapshot) WriteText(w io.Writer) error {
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "counter   %s %d\n", c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if _, err := fmt.Fprintf(w, "gauge     %s %d\n", g.Name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if _, err := fmt.Fprintf(w, "histogram %s count=%d sum=%.3f mean=%.3f p50=%.2f p95=%.2f p99=%.2f\n",
			h.Name, h.Count, h.Sum, h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)); err != nil {
			return err
		}
	}
	return nil
}

// WriteText renders the registry's current state as text (see
// Snapshot.WriteText).
func (r *Registry) WriteText(w io.Writer) error { return r.Snapshot().WriteText(w) }

// Dump renders the registry's current state as indented JSON.
func (r *Registry) Dump(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
