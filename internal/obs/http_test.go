package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestDebugServer(t *testing.T) {
	r := NewRegistry()
	r.Scope("cell1").Counter("records").Add(42)

	srv, err := StartDebugServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr.String()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if body := get("/metrics"); !strings.Contains(body, "counter   cell1.records 42") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/metrics.json")), &snap); err != nil {
		t.Fatalf("/metrics.json not JSON: %v", err)
	}
	if snap.Counter("cell1.records") != 42 {
		t.Errorf("/metrics.json counters = %+v", snap.Counters)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "ltefp") {
		t.Errorf("/debug/vars missing published registry:\n%.400s", body)
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "profile") {
		t.Errorf("/debug/pprof/ index unexpected:\n%.400s", body)
	}
}

func TestPublishExpvarRebinds(t *testing.T) {
	name := fmt.Sprintf("rebind-%p", t)
	r1 := NewRegistry()
	r1.Counter("x").Add(1)
	r1.PublishExpvar(name)
	r2 := NewRegistry()
	r2.Counter("x").Add(2)
	r2.PublishExpvar(name) // must not panic, must rebind
	v, ok := expvarPublished.Load(name)
	if !ok {
		t.Fatal("name not tracked")
	}
	if got := v.(*registrySlot).reg.Load().Snapshot().Counter("x"); got != 2 {
		t.Errorf("expvar still bound to old registry (x=%d)", got)
	}
}
