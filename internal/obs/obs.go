// Package obs is the pipeline's observability substrate: a zero-dependency,
// concurrency-safe metrics registry holding counters, gauges, and
// fixed-bucket histograms, plus a Scope type for cheap hierarchical
// labelling (per cell, per pipeline stage, per run).
//
// The design goal is that instrumentation can stay compiled into every hot
// path of the attack pipeline — the sniffer's blind-decode loop, the eNB's
// per-TTI scheduler, batched forest inference — at a cost that is either
// zero (disabled) or a handful of atomic adds (enabled):
//
//   - Every metric method is nil-safe. A nil *Counter, *Gauge, or
//     *Histogram is a no-op, and the zero Scope hands out nil metrics, so
//     library code caches its metric pointers once and never branches on
//     an "enabled" flag.
//   - Metric updates are lock-free (atomic counters, preallocated
//     histogram buckets); the registry lock is taken only at registration
//     and snapshot time, never on the update path.
//   - Nothing allocates after registration: Observe, Add, Inc, and Set
//     touch only preallocated atomics.
//
// The paper's real-world F-score drop versus the lab traces back to
// capture loss and operator scheduling (its §VII-B discussion), and
// FALCON-lineage PDCCH tools ship decode-health counters for exactly this
// reason: a fingerprinting result is only interpretable next to the
// decode-health numbers of the capture that produced it. This package is
// how the repository records those numbers.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; a nil *Counter is a no-op, which is how disabled instrumentation
// stays free.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (which should be non-negative; Add does not check).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down (queue depths, pool
// occupancy). A nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores an absolute value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current level (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets defined by their
// inclusive upper bounds, with an implicit +Inf overflow bucket, and
// tracks the running count and sum. Buckets are allocated once at
// registration; Observe performs a short search plus two atomic adds and
// one atomic float accumulate — no locks, no allocation. A nil *Histogram
// is a no-op.
type Histogram struct {
	bounds []float64      // sorted inclusive upper bounds
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Int64
	sum    atomicFloat
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket lists are short (≤ ~20) and the common case hits
	// an early bucket, which beats binary search's mispredictions.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// ObserveDuration records a duration in milliseconds, the unit every
// latency histogram in this repository uses.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d) / float64(time.Millisecond))
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.load()
}

// Reset zeroes the histogram in place.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.store(0)
}

// Timer measures one interval into a latency histogram. Obtain one from
// Histogram.Start; the zero Timer (from a nil histogram) is a no-op and
// never reads the clock, so disabled timing costs nothing.
type Timer struct {
	h     *Histogram
	start time.Time
}

// Start returns a running Timer, or a no-op Timer for a nil histogram.
func (h *Histogram) Start() Timer {
	if h == nil {
		return Timer{}
	}
	return Timer{h: h, start: time.Now()}
}

// Stop records the elapsed time in milliseconds and returns it. Stopping a
// no-op Timer returns 0 without touching the clock.
func (t Timer) Stop() time.Duration {
	if t.h == nil {
		return 0
	}
	d := time.Since(t.start)
	t.h.ObserveDuration(d)
	return d
}

// atomicFloat is a float64 accumulated by compare-and-swap on its bits.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) load() float64   { return math.Float64frombits(f.bits.Load()) }
func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }

// LatencyBuckets are the default duration buckets, in milliseconds, used
// by the pipeline's latency histograms: 50 µs to 10 s, roughly 2.5× apart.
func LatencyBuckets() []float64 {
	return []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}
}

// FractionBuckets are the default buckets for ratios in [0, 1] (PRB
// utilisation, duty cycles): steps of 0.1.
func FractionBuckets() []float64 {
	return []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
}

// Registry owns a flat namespace of metrics. Metric handles are created on
// first use and cached by callers; the registry lock guards only the name
// maps, never the update path. A nil *Registry hands out nil metrics
// everywhere, so "no registry" and "registry off" are the same cheap case.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	names      map[nameKey]string // interned "prefix.name" joins
}

// nameKey identifies one scoped-name join.
type nameKey struct {
	prefix, name string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		names:      make(map[nameKey]string),
	}
}

// joinName returns prefix + "." + name, interning the result so repeated
// scoped lookups (instrumentation re-attached per capture run) stop
// allocating after the first join.
func (r *Registry) joinName(prefix, name string) string {
	if prefix == "" {
		return name
	}
	if r == nil {
		return prefix + "." + name
	}
	k := nameKey{prefix: prefix, name: name}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names == nil {
		r.names = make(map[nameKey]string)
	}
	if s, ok := r.names[k]; ok {
		return s
	}
	s := prefix + "." + name
	r.names[k] = s
	return s
}

// Counter returns the named counter, creating it if needed (nil for a nil
// registry).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed (nil for a nil
// registry).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds if needed (nil for a nil registry). Bounds are sorted and
// deduplicated; for an existing histogram the bounds argument is ignored.
// Empty bounds default to LatencyBuckets.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		if len(bounds) == 0 {
			bounds = LatencyBuckets()
		}
		b := make([]float64, len(bounds))
		copy(b, bounds)
		sort.Float64s(b)
		n := 0
		for i, v := range b {
			if i == 0 || v != b[n-1] {
				b[n] = v
				n++
			}
		}
		b = b[:n]
		h = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
		r.histograms[name] = h
	}
	return h
}

// Scope returns a labelling scope rooted at prefix. Works on a nil
// registry (the returned Scope is disabled).
func (r *Registry) Scope(prefix string) Scope {
	return Scope{r: r, prefix: prefix}
}

// Reset zeroes every registered metric in place, keeping registrations
// (and the pointers instrumented code has cached) intact. Used between
// experiment runs to attribute metrics per run.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.histograms {
		h.Reset()
	}
}

// Scope names a subtree of a registry's metric namespace: scope "cell1"
// hands out metrics named "cell1.<name>", and scopes nest
// ("cell1.sniffer.<name>"). Scope is a two-word value; deriving and
// passing scopes costs nothing beyond the strings themselves. The zero
// Scope is disabled and hands out nil (no-op) metrics.
type Scope struct {
	r      *Registry
	prefix string
}

// Enabled reports whether the scope is backed by a live registry.
func (s Scope) Enabled() bool { return s.r != nil }

// Registry returns the backing registry (nil for a disabled scope).
func (s Scope) Registry() *Registry { return s.r }

// Scope derives a child scope.
func (s Scope) Scope(name string) Scope {
	if s.r == nil {
		return Scope{}
	}
	return Scope{r: s.r, prefix: s.join(name)}
}

// Counter returns the scoped counter (nil when disabled).
func (s Scope) Counter(name string) *Counter { return s.r.Counter(s.join(name)) }

// Gauge returns the scoped gauge (nil when disabled).
func (s Scope) Gauge(name string) *Gauge { return s.r.Gauge(s.join(name)) }

// Histogram returns the scoped histogram (nil when disabled).
func (s Scope) Histogram(name string, bounds []float64) *Histogram {
	return s.r.Histogram(s.join(name), bounds)
}

func (s Scope) join(name string) string {
	return s.r.joinName(s.prefix, name)
}
