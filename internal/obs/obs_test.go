package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilMetricsAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Error("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(1)
	h.ObserveDuration(time.Second)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram has observations")
	}
	if d := h.Start().Stop(); d != 0 {
		t.Error("nil-histogram timer measured time")
	}

	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", nil) != nil {
		t.Error("nil registry handed out live metrics")
	}
	r.Reset()
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Error("nil registry snapshot non-empty")
	}

	var sc Scope // zero scope: disabled
	if sc.Enabled() {
		t.Error("zero scope claims enabled")
	}
	sc.Counter("x").Inc()
	sc.Gauge("x").Set(1)
	sc.Histogram("x", nil).Observe(1)
	if sc.Scope("child").Enabled() {
		t.Error("child of zero scope claims enabled")
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs")
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Errorf("counter = %d, want 10", c.Value())
	}
	if r.Counter("reqs") != c {
		t.Error("counter not interned by name")
	}

	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Errorf("gauge = %d, want 5", g.Value())
	}

	h := r.Histogram("lat", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 106 {
		t.Errorf("sum = %g, want 106", h.Sum())
	}
	snap, ok := r.Snapshot().Histogram("lat")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	// Buckets: ≤1: {0.5, 1}, ≤2: {1.5}, ≤4: {3}, +Inf: {100}.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if snap.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, snap.Counts[i], w)
		}
	}
	if m := snap.Mean(); m != 106.0/5 {
		t.Errorf("mean = %g", m)
	}
	if q := snap.Quantile(0.99); q > 4 {
		t.Errorf("q99 = %g escapes the last bound", q)
	}

	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("reset left observations behind")
	}
}

func TestHistogramBoundsSortedDeduped(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{4, 1, 4, 2})
	h.Observe(3)
	snap, _ := r.Snapshot().Histogram("h")
	if len(snap.Bounds) != 3 || snap.Bounds[0] != 1 || snap.Bounds[1] != 2 || snap.Bounds[2] != 4 {
		t.Errorf("bounds = %v, want [1 2 4]", snap.Bounds)
	}
	if snap.Counts[2] != 1 {
		t.Errorf("observation landed in %v", snap.Counts)
	}
}

func TestScopeNaming(t *testing.T) {
	r := NewRegistry()
	cell := r.Scope("cell1")
	cell.Scope("sniffer").Counter("lost").Add(3)
	snap := r.Snapshot()
	if got := snap.Counter("cell1.sniffer.lost"); got != 3 {
		t.Errorf("scoped counter = %d, want 3 (snapshot: %+v)", got, snap.Counters)
	}
	if !cell.Enabled() || cell.Registry() != r {
		t.Error("scope lost its registry")
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Add(4)
	g := r.Gauge("g")
	g.Set(2)
	h := r.Histogram("h", []float64{1})
	h.Observe(0.5)
	r.Reset()
	// The same cached pointers must observe the reset and stay usable.
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Errorf("reset missed a metric: c=%d g=%d h=%d", c.Value(), g.Value(), h.Count())
	}
	c.Inc()
	if r.Snapshot().Counter("c") != 1 {
		t.Error("counter unusable after reset")
	}
}

// TestConcurrentUpdates hammers one registry from many goroutines; run
// under -race this is the concurrency-safety proof for the whole package.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := r.Scope("cell1")
			c := sc.Counter("n")
			h := sc.Histogram("v", []float64{1, 10, 100})
			g := sc.Gauge("depth")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(float64(i % 128))
				g.Add(1)
				g.Add(-1)
				if i%512 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	snap := r.Snapshot()
	if got := snap.Counter("cell1.n"); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	h, _ := snap.Histogram("cell1.v")
	if h.Count != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", h.Count, workers*perWorker)
	}
	var inBuckets int64
	for _, c := range h.Counts {
		inBuckets += c
	}
	if inBuckets != h.Count {
		t.Errorf("bucket sum %d != count %d", inBuckets, h.Count)
	}
}

func TestWriteTextAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(2)
	r.Counter("a.count").Add(1)
	r.Gauge("depth").Set(3)
	r.Histogram("lat_ms", []float64{1, 10}).Observe(0.4)

	var text bytes.Buffer
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	out := text.String()
	for _, want := range []string{"counter   a.count 1", "counter   b.count 2", "gauge     depth 3", "histogram lat_ms count=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("text dump missing %q:\n%s", want, out)
		}
	}
	// Sorted: a.count before b.count.
	if strings.Index(out, "a.count") > strings.Index(out, "b.count") {
		t.Error("text dump not sorted by name")
	}

	var buf bytes.Buffer
	if err := r.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("JSON dump not parseable: %v", err)
	}
	if decoded.Counter("b.count") != 2 || decoded.Gauge("depth") != 3 {
		t.Errorf("JSON round-trip lost values: %+v", decoded)
	}
}

func TestTimerObservesMilliseconds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t", []float64{1000})
	timer := h.Start()
	time.Sleep(2 * time.Millisecond)
	d := timer.Stop()
	if d < 2*time.Millisecond {
		t.Errorf("timer measured %v", d)
	}
	if h.Count() != 1 {
		t.Fatal("timer did not observe")
	}
	if s := h.Sum(); s < 1 || s > 1000 {
		t.Errorf("timer observed %g, want a millisecond-scale value", s)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var empty HistogramValue
	if empty.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile non-zero")
	}
	h := HistogramValue{Count: 4, Bounds: []float64{10, 20}, Counts: []int64{4, 0, 0}}
	if q := h.Quantile(0.5); q <= 0 || q > 10 {
		t.Errorf("q50 = %g, want within (0, 10]", q)
	}
	over := HistogramValue{Count: 1, Bounds: []float64{10}, Counts: []int64{0, 1}}
	if q := over.Quantile(0.99); q != 10 {
		t.Errorf("overflow quantile = %g, want clamp to 10", q)
	}
}

// TestScopedLookupAllocationFree guards the interned-name join: once a
// scoped metric has been looked up, re-attaching instrumentation (as every
// capture run does through SetMetrics / newSnifferMetrics) must not
// allocate — neither for the joined name nor for the metric handle.
func TestScopedLookupAllocationFree(t *testing.T) {
	reg := NewRegistry()
	cell := reg.Scope("pipeline").Scope("cell1")
	sn := cell.Scope("sniffer")
	bounds := FractionBuckets()
	warm := func() {
		_ = sn.Counter("candidates")
		_ = sn.Counter("records")
		_ = cell.Scope("enb").Histogram("prb_util_dl", bounds)
		_ = cell.Scope("enb").Gauge("queue_depth_bytes")
	}
	warm()
	if allocs := testing.AllocsPerRun(100, warm); allocs != 0 {
		t.Fatalf("warmed scoped metric lookup allocates %v objects/run, want 0", allocs)
	}
}
