// Package history implements Attack II of the paper: reconstructing a
// victim's movement between cell zones together with their per-location app
// usage. The attacker pre-installs one sniffer per zone, tracks the victim
// across zones by identity mapping (with IMSI-catcher assistance standing
// in for cross-TMSI continuity, as the paper's threat model allows), and
// runs the fingerprinting classifier over each per-zone trace segment. A
// prediction whose window-vote confidence falls below the 70% stability
// threshold is flagged unstable, matching the paper's empirical observation
// that "the prediction results become unstable if the F-score falls below
// 70%" (Table V).
package history

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"ltefp/internal/appmodel"
	"ltefp/internal/attack/fingerprint"
	"ltefp/internal/capture"
	"ltefp/internal/lte/operator"
	"ltefp/internal/sniffer"
)

// StabilityThreshold is the confidence below which per-trace predictions
// are considered unstable (the paper's 70% gate).
const StabilityThreshold = 0.70

// ZoneSession is one victim activity the attacker hopes to reconstruct:
// the victim spends Duration in a zone running one app.
type ZoneSession struct {
	// Zone is the cell-zone identifier (the paper's A', B', C').
	Zone int
	// Day is the simulated day (drift applies relative to the training
	// day, day 1).
	Day int
	// Start is the session start within its day.
	Start time.Duration
	// Duration is the session length (5–10 minutes in the paper).
	Duration time.Duration
	// App is the ground-truth app in use.
	App appmodel.App
}

// Attempt is the attacker's reconstruction of one zone session.
type Attempt struct {
	Zone     int
	Day      int
	Start    time.Duration
	Duration time.Duration

	// TrueApp is the ground truth (for scoring).
	TrueApp string
	// TrueCategory is the ground-truth category.
	TrueCategory appmodel.Category
	// Predicted is the attacker's app prediction.
	Predicted string
	// PredictedCategory is the category of the prediction.
	PredictedCategory appmodel.Category
	// Confidence is the window-vote fraction backing the prediction (the
	// Table V "F-score" column).
	Confidence float64
	// Windows is the number of classified windows.
	Windows int
	// Correct reports whether Predicted == TrueApp.
	Correct bool
	// Stable reports Confidence >= StabilityThreshold.
	Stable bool
}

// Result is a full history-attack evaluation.
type Result struct {
	Attempts []Attempt
	// Successes counts correct app predictions.
	Successes int
}

// SuccessRate is the fraction of attempts whose app was identified.
func (r *Result) SuccessRate() float64 {
	if len(r.Attempts) == 0 {
		return 0
	}
	return float64(r.Successes) / float64(len(r.Attempts))
}

// Config controls a history-attack run.
type Config struct {
	// Profile is the operator configuration of all zones (the paper runs
	// this experiment on T-Mobile).
	Profile operator.Profile
	// Zones lists the zone identifiers to instantiate as cells.
	Zones []int
	// Sessions is the victim's itinerary.
	Sessions []ZoneSession
	// Seed namespaces the runs.
	Seed uint64
	// Sniffer configures capture fidelity per zone.
	Sniffer          sniffer.Config
	ApplyProfileLoss bool
}

// Run executes the attack: one capture per day across all zones, identity
// mapping to stitch the victim's RNTIs together, then per-session
// classification. The classifier must already be trained (on day-1 data).
func Run(clf *fingerprint.Classifier, cfg Config) (*Result, error) {
	if len(cfg.Zones) == 0 {
		return nil, fmt.Errorf("history: no zones configured")
	}
	byDay := make(map[int][]ZoneSession)
	for _, s := range cfg.Sessions {
		if !containsInt(cfg.Zones, s.Zone) {
			return nil, fmt.Errorf("history: session in unknown zone %d", s.Zone)
		}
		byDay[s.Day] = append(byDay[s.Day], s)
	}
	days := make([]int, 0, len(byDay))
	for d := range byDay {
		days = append(days, d)
	}
	sort.Ints(days)

	res := &Result{}
	for _, day := range days {
		attempts, err := runDay(clf, cfg, day, byDay[day])
		if err != nil {
			return nil, fmt.Errorf("history: day %d: %w", day, err)
		}
		res.Attempts = append(res.Attempts, attempts...)
	}
	for _, a := range res.Attempts {
		if a.Correct {
			res.Successes++
		}
	}
	return res, nil
}

// runDay captures one day's roaming and classifies each zone session.
func runDay(clf *fingerprint.Classifier, cfg Config, day int, sessions []ZoneSession) ([]Attempt, error) {
	cells := make([]capture.Cell, len(cfg.Zones))
	for i, z := range cfg.Zones {
		cells[i] = capture.Cell{ID: z, Profile: cfg.Profile}
	}
	capSessions := make([]capture.Session, len(sessions))
	for i, s := range sessions {
		capSessions[i] = capture.Session{
			UE:       "victim",
			CellID:   s.Zone,
			App:      s.App,
			Start:    s.Start,
			Duration: s.Duration,
			Day:      day,
		}
	}
	capRes, err := capture.Run(capture.Scenario{
		Seed:             cfg.Seed*1000003 + uint64(day),
		Cells:            cells,
		Sessions:         capSessions,
		Sniffer:          cfg.Sniffer,
		ApplyProfileLoss: cfg.ApplyProfileLoss,
	})
	if err != nil {
		return nil, err
	}
	victim := capRes.UserTrace("victim")

	out := make([]Attempt, 0, len(sessions))
	for _, s := range sessions {
		// The attacker segments the victim's trace by zone and time.
		seg := victim.FilterSpan(s.Start, s.Start+s.Duration+2*time.Second)
		zoneSeg := seg[:0:0]
		for _, rec := range seg {
			if rec.CellID == s.Zone {
				zoneSeg = append(zoneSeg, rec)
			}
		}
		pred := clf.PredictTrace(zoneSeg)
		out = append(out, Attempt{
			Zone:              s.Zone,
			Day:               day,
			Start:             s.Start,
			Duration:          s.Duration,
			TrueApp:           s.App.Name,
			TrueCategory:      s.App.Category,
			Predicted:         pred.App,
			PredictedCategory: pred.Category,
			Confidence:        pred.Confidence,
			Windows:           pred.Windows,
			Correct:           pred.App == s.App.Name,
			Stable:            pred.Confidence >= StabilityThreshold,
		})
	}
	return out, nil
}

// String renders the result in the layout of the paper's Table V.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-4s %-10s %-10s %-14s %-14s %8s %7s\n",
		"zone", "day", "start", "duration", "category", "prediction", "conf", "result")
	for _, a := range r.Attempts {
		result := "TRUE"
		if !a.Correct {
			result = "FALSE"
		}
		fmt.Fprintf(&b, "%-6s %-4d %-10v %-10v %-14s %-14s %7.2f%% %7s\n",
			zoneName(a.Zone), a.Day, a.Start, a.Duration,
			a.TrueCategory, a.Predicted, 100*a.Confidence, result)
	}
	fmt.Fprintf(&b, "success rate: %d/%d = %.0f%%\n",
		r.Successes, len(r.Attempts), 100*r.SuccessRate())
	return b.String()
}

// zoneName renders zone IDs in the paper's A'/B'/C' style.
func zoneName(z int) string {
	if z >= 1 && z <= 26 {
		return fmt.Sprintf("Zone %c'", 'A'+z-1)
	}
	return fmt.Sprintf("Zone %d", z)
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
