package history_test

import (
	"strings"
	"testing"
	"time"

	"ltefp/internal/appmodel"
	"ltefp/internal/attack/fingerprint"
	"ltefp/internal/attack/history"
	"ltefp/internal/lte/operator"
	"ltefp/internal/ml/forest"
)

// labClassifier trains a small lab classifier shared by the tests.
func labClassifier(t *testing.T) *fingerprint.Classifier {
	t.Helper()
	ts := fingerprint.NewTrainingSet()
	for i, app := range appmodel.Apps() {
		n := 2
		if app.Category == appmodel.Messaging {
			n = 6
		}
		vecs, err := fingerprint.Collect(fingerprint.CollectSpec{
			Profile:    operator.Lab(),
			App:        app,
			Sessions:   n,
			SessionDur: 30 * time.Second,
			Seed:       uint64(i+1) * 17,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := ts.Add(app.Name, vecs); err != nil {
			t.Fatal(err)
		}
	}
	clf, err := fingerprint.Train(ts, fingerprint.Config{
		Forest: forest.Config{Trees: 25, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return clf
}

func itinerary(t *testing.T) []history.ZoneSession {
	t.Helper()
	mk := func(zone, day int, start time.Duration, app string) history.ZoneSession {
		a, err := appmodel.ByName(app)
		if err != nil {
			t.Fatal(err)
		}
		return history.ZoneSession{
			Zone: zone, Day: day, Start: start, Duration: 30 * time.Second, App: a,
		}
	}
	return []history.ZoneSession{
		mk(1, 1, 2*time.Second, "Netflix"),
		mk(2, 1, 50*time.Second, "Skype"),
		mk(3, 1, 100*time.Second, "Telegram"),
		mk(1, 2, 2*time.Second, "YouTube"),
	}
}

func TestEndToEnd(t *testing.T) {
	clf := labClassifier(t)
	res, err := history.Run(clf, history.Config{
		Profile:  operator.Lab(),
		Zones:    []int{1, 2, 3},
		Sessions: itinerary(t),
		Seed:     9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Attempts) != 4 {
		t.Fatalf("%d attempts, want 4", len(res.Attempts))
	}
	for _, a := range res.Attempts {
		if a.Windows == 0 {
			t.Fatalf("zone %d day %d: no windows captured", a.Zone, a.Day)
		}
		if a.TrueApp == a.Predicted != a.Correct {
			t.Fatal("Correct flag inconsistent with prediction")
		}
	}
	// In the lab, the attack should recover most of the itinerary.
	if res.SuccessRate() < 0.5 {
		t.Fatalf("lab success rate %.2f\n%s", res.SuccessRate(), res)
	}
	// Days must both appear (day-grouped captures all ran).
	days := map[int]bool{}
	for _, a := range res.Attempts {
		days[a.Day] = true
	}
	if !days[1] || !days[2] {
		t.Fatal("a day's attempts are missing")
	}
}

func TestRejectsUnknownZone(t *testing.T) {
	clf := labClassifier(t)
	bad := itinerary(t)
	bad[0].Zone = 99
	if _, err := history.Run(clf, history.Config{
		Profile:  operator.Lab(),
		Zones:    []int{1, 2, 3},
		Sessions: bad,
		Seed:     1,
	}); err == nil {
		t.Fatal("unknown zone accepted")
	}
}

func TestRejectsNoZones(t *testing.T) {
	if _, err := history.Run(nil, history.Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestResultString(t *testing.T) {
	res := &history.Result{
		Attempts: []history.Attempt{{
			Zone: 1, Day: 1, TrueApp: "Netflix",
			TrueCategory: appmodel.Streaming,
			Predicted:    "Netflix", Confidence: 0.9, Correct: true, Stable: true,
		}},
		Successes: 1,
	}
	s := res.String()
	for _, want := range []string{"Zone A'", "Netflix", "100%"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q:\n%s", want, s)
		}
	}
}
