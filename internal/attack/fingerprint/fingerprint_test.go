package fingerprint_test

import (
	"bytes"
	"testing"
	"time"

	"ltefp/internal/appmodel"
	"ltefp/internal/attack/fingerprint"
	"ltefp/internal/lte/operator"
	"ltefp/internal/ml/forest"
	"ltefp/internal/sniffer"
)

// collectAll records a small lab corpus for every app (cached per test run
// via the outer test structure — collection is fast on the lab profile).
func collectAll(t *testing.T, sessions int, dur time.Duration) map[string][][]float64 {
	t.Helper()
	out := make(map[string][][]float64)
	for i, app := range appmodel.Apps() {
		n := sessions
		if app.Category == appmodel.Messaging {
			n *= 3
		}
		vecs, err := fingerprint.Collect(fingerprint.CollectSpec{
			Profile:          operator.Lab(),
			App:              app,
			Sessions:         n,
			SessionDur:       dur,
			Seed:             uint64(i+1) * 31,
			Sniffer:          sniffer.Config{CorruptProb: 0.002},
			ApplyProfileLoss: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(vecs) == 0 {
			t.Fatalf("%s: no windows collected", app.Name)
		}
		out[app.Name] = vecs
	}
	return out
}

func trainSmall(t *testing.T, byApp map[string][][]float64) *fingerprint.Classifier {
	t.Helper()
	ts := fingerprint.NewTrainingSet()
	for app, vecs := range byApp {
		cut := len(vecs) * 4 / 5
		if err := ts.Add(app, vecs[:cut]); err != nil {
			t.Fatal(err)
		}
	}
	clf, err := fingerprint.Train(ts, fingerprint.Config{
		Forest: forest.Config{Trees: 30, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return clf
}

func TestEndToEndLabAccuracy(t *testing.T) {
	byApp := collectAll(t, 3, 40*time.Second)
	clf := trainSmall(t, byApp)
	test := make(map[string][][]float64)
	for app, vecs := range byApp {
		test[app] = vecs[len(vecs)*4/5:]
	}
	conf, err := clf.Evaluate(test)
	if err != nil {
		t.Fatal(err)
	}
	if acc := conf.Accuracy(); acc < 0.80 {
		t.Fatalf("lab window accuracy = %.3f, want ≥ 0.80 even at toy scale\n%s", acc, conf)
	}
}

func TestPredictTraceMajorityVote(t *testing.T) {
	byApp := collectAll(t, 3, 40*time.Second)
	clf := trainSmall(t, byApp)
	// A fresh Skype session must be identified with strong confidence.
	traces, err := fingerprint.CollectTraces(fingerprint.CollectSpec{
		Profile:    operator.Lab(),
		App:        mustApp(t, "Skype"),
		Sessions:   1,
		SessionDur: 30 * time.Second,
		Seed:       999,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := clf.PredictTrace(traces[0])
	if p.App != "Skype" {
		t.Fatalf("predicted %q (confidence %.2f)", p.App, p.Confidence)
	}
	if p.Confidence < 0.5 || p.Windows == 0 {
		t.Fatalf("weak prediction: %+v", p)
	}
	votes := 0
	for _, v := range p.Votes {
		votes += v
	}
	if votes != p.Windows {
		t.Fatalf("votes %d != windows %d", votes, p.Windows)
	}
}

func TestPredictEmptyTrace(t *testing.T) {
	byApp := collectAll(t, 2, 20*time.Second)
	clf := trainSmall(t, byApp)
	p := clf.PredictTrace(nil)
	if p.App != "" || p.Windows != 0 || p.Confidence != 0 {
		t.Fatalf("empty trace predicted %+v", p)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	byApp := collectAll(t, 2, 20*time.Second)
	clf := trainSmall(t, byApp)
	var buf bytes.Buffer
	if err := clf.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := fingerprint.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Window != clf.Window || loaded.Stride != clf.Stride {
		t.Fatal("windowing parameters lost")
	}
	for app, vecs := range byApp {
		for _, v := range vecs[:10] {
			a1, c1 := clf.PredictVector(v)
			a2, c2 := loaded.PredictVector(v)
			if a1 != a2 || c1 != c2 {
				t.Fatalf("%s: loaded model diverges", app)
			}
		}
	}
}

func TestTrainingSetRejectsUnknownApp(t *testing.T) {
	ts := fingerprint.NewTrainingSet()
	if err := ts.Add("Snapchat", nil); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestTrainRequiresAllApps(t *testing.T) {
	ts := fingerprint.NewTrainingSet()
	if err := ts.Add("Netflix", [][]float64{make([]float64, 25)}); err != nil {
		t.Fatal(err)
	}
	if _, err := fingerprint.Train(ts, fingerprint.Config{}); err == nil {
		t.Fatal("training with missing apps accepted")
	}
}

func TestCollectValidation(t *testing.T) {
	if _, err := fingerprint.Collect(fingerprint.CollectSpec{}); err == nil {
		t.Fatal("zero-session collect accepted")
	}
}

func mustApp(t *testing.T, name string) appmodel.App {
	t.Helper()
	a, err := appmodel.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return a
}
