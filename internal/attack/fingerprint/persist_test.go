package fingerprint_test

import (
	"bytes"
	"encoding/gob"
	"errors"
	"testing"
	"time"

	"ltefp/internal/appmodel"
	"ltefp/internal/attack/fingerprint"
	"ltefp/internal/ml/forest"
	"ltefp/internal/snapshot"
)

// tinyClassifier builds a small hand-made hierarchy: enough structure to
// exercise every branch of the codec without a training run.
func tinyClassifier() *fingerprint.Classifier {
	mk := func(classes ...string) *forest.Forest {
		leaf := func(dist ...float32) forest.Node {
			return forest.Node{Feature: -1, Dist: dist}
		}
		return &forest.Forest{
			Classes: classes,
			Trees: []forest.Tree{
				{Nodes: []forest.Node{
					{Feature: 2, Threshold: 0.5, Left: 1, Right: 2},
					leaf(make([]float32, len(classes))...),
					leaf(make([]float32, len(classes))...),
				}},
				{Nodes: []forest.Node{leaf(make([]float32, len(classes))...)}},
			},
		}
	}
	return &fingerprint.Classifier{
		Window:   100 * time.Millisecond,
		Stride:   100 * time.Millisecond,
		Category: mk("social", "video", "voip"),
		PerCategory: map[appmodel.Category]*forest.Forest{
			0: mk("a", "b", "c"),
			2: mk("d", "e", "f"),
		},
	}
}

// TestSaveRejectsGobEra pins the motivating property of the format
// change: a checkpoint or model file written by the old gob encoder is
// detectably rejected (bad magic), never half-decoded into a wrong model.
func TestSaveRejectsGobEra(t *testing.T) {
	var buf bytes.Buffer
	type oldPersisted struct {
		Window, Stride time.Duration
	}
	if err := gob.NewEncoder(&buf).Encode(oldPersisted{Window: time.Second}); err != nil {
		t.Fatal(err)
	}
	_, err := fingerprint.Load(&buf)
	if !errors.Is(err, snapshot.ErrMagic) {
		t.Fatalf("loading a gob-era file: err = %v, want ErrMagic", err)
	}
}

func TestSaveDeterministicBytes(t *testing.T) {
	c := tinyClassifier()
	var one, two bytes.Buffer
	if err := c.Save(&one); err != nil {
		t.Fatal(err)
	}
	if err := c.Save(&two); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one.Bytes(), two.Bytes()) {
		t.Fatal("two saves of the same classifier produced different bytes")
	}
}

func TestLoadDetectsDamage(t *testing.T) {
	c := tinyClassifier()
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	for cut := 0; cut < len(raw); cut += 7 {
		if _, err := fingerprint.Load(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes loaded successfully", cut)
		}
	}
	for i := 0; i < len(raw); i += 11 {
		bad := append([]byte(nil), raw...)
		bad[i] ^= 0x10
		if _, err := fingerprint.Load(bytes.NewReader(bad)); err == nil {
			t.Fatalf("bit flip at byte %d loaded successfully", i)
		}
	}
}

// TestLoadValidatesStructure pins that structurally impossible trees are
// rejected even when the container checksums pass (i.e. a buggy writer,
// not wire corruption).
func TestLoadValidatesStructure(t *testing.T) {
	save := func(c *fingerprint.Classifier) []byte {
		var buf bytes.Buffer
		if err := c.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	c := tinyClassifier()
	c.Category.Trees[0].Nodes[0].Left = 99 // child out of range
	if _, err := fingerprint.Load(bytes.NewReader(save(c))); err == nil {
		t.Error("out-of-range child index loaded successfully")
	}

	c = tinyClassifier()
	c.Category.Trees[0].Nodes[1].Dist = []float32{1} // wrong distribution arity
	if _, err := fingerprint.Load(bytes.NewReader(save(c))); err == nil {
		t.Error("wrong leaf distribution arity loaded successfully")
	}

	c = tinyClassifier()
	c.Category.Trees[0].Nodes[0].Feature = -7 // neither leaf nor feature
	if _, err := fingerprint.Load(bytes.NewReader(save(c))); err == nil {
		t.Error("invalid feature index loaded successfully")
	}
}

// TestSectionsEmbed pins the daemon's usage: classifier sections written
// into a shared container alongside other sections still round-trip.
func TestSectionsEmbed(t *testing.T) {
	c := tinyClassifier()
	var buf bytes.Buffer
	w, err := snapshot.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Section("daemon.meta", []byte("unrelated")); err != nil {
		t.Fatal(err)
	}
	if err := c.AppendTo(w); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	sections, err := snapshot.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := fingerprint.FromSections(sections)
	if err != nil {
		t.Fatal(err)
	}
	if got.Window != c.Window || len(got.PerCategory) != len(c.PerCategory) {
		t.Fatalf("embedded classifier did not round-trip: %+v", got)
	}
}
