// Package fingerprint implements Attack I of the paper: identifying which
// mobile app a victim is running from nothing but physical-channel
// metadata. Traces are cut into sliding windows (100 ms by default),
// aggregated into Table II feature vectors, and classified hierarchically —
// first into a category (streaming / messaging / VoIP), then into the
// specific app within that category — exactly the two-level Random Forest
// structure of the paper's §VI. Asynchronous sessions are handled by
// classifying every window independently and majority-voting, so the
// attacker needs no knowledge of where sessions begin or end.
package fingerprint

import (
	"fmt"
	"time"

	"ltefp/internal/appmodel"
	"ltefp/internal/features"
	"ltefp/internal/ml/dataset"
	"ltefp/internal/ml/forest"
	"ltefp/internal/ml/metrics"
	"ltefp/internal/trace"
)

// DefaultWindow is the paper's empirically chosen window size.
const DefaultWindow = 100 * time.Millisecond

// Config controls classifier construction.
type Config struct {
	// Window is the sliding-window width (default 100 ms).
	Window time.Duration
	// Stride is the window step (default = Window, non-overlapping).
	Stride time.Duration
	// Forest configures every forest in the hierarchy (defaults: 100
	// trees, seed 1 — the paper's Table VIII setting).
	Forest forest.Config
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.Stride <= 0 {
		c.Stride = c.Window
	}
	if c.Forest.Seed == 0 {
		c.Forest.Seed = 1
	}
	return c
}

// WindowVectors converts a radio trace into per-window feature vectors
// (window aggregates plus trailing context), dropping silent windows — the
// classifier sees traffic, not absence of a user.
func WindowVectors(t trace.Trace, window, stride time.Duration) [][]float64 {
	return features.FromTrace(t, window, stride)
}

// TrainingSet accumulates labelled window vectors per app.
type TrainingSet struct {
	byApp map[string][][]float64
}

// NewTrainingSet returns an empty training set.
func NewTrainingSet() *TrainingSet {
	return &TrainingSet{byApp: make(map[string][][]float64)}
}

// Add appends window vectors recorded while the named app was running.
// The app must be one of the nine fingerprinted apps.
func (ts *TrainingSet) Add(appName string, vectors [][]float64) error {
	if _, err := appmodel.ByName(appName); err != nil {
		return fmt.Errorf("fingerprint: %w", err)
	}
	ts.byApp[appName] = append(ts.byApp[appName], vectors...)
	return nil
}

// Count returns the number of window vectors stored for an app.
func (ts *TrainingSet) Count(appName string) int { return len(ts.byApp[appName]) }

// Classifier is the trained two-level hierarchy.
type Classifier struct {
	// Window and Stride are the trace-splitting parameters the classifier
	// was trained with; classification must use the same.
	Window time.Duration
	Stride time.Duration

	// Category is the top-level 3-class forest.
	Category *forest.Forest
	// PerCategory holds one 3-class app forest per category, indexed by
	// category value.
	PerCategory map[appmodel.Category]*forest.Forest
}

// Train fits the hierarchy from a training set.
func Train(ts *TrainingSet, cfg Config) (*Classifier, error) {
	cfg = cfg.withDefaults()
	cats := appmodel.Categories()

	catNames := make([]string, len(cats))
	for i, c := range cats {
		catNames[i] = c.String()
	}
	catDS := dataset.New(catNames, features.Names())
	perCatDS := make(map[appmodel.Category]*dataset.Dataset, len(cats))
	for _, c := range cats {
		apps := appmodel.ByCategory(c)
		names := make([]string, len(apps))
		for i, a := range apps {
			names[i] = a.Name
		}
		perCatDS[c] = dataset.New(names, features.Names())
	}

	for _, app := range appmodel.Apps() {
		vecs := ts.byApp[app.Name]
		if len(vecs) == 0 {
			return nil, fmt.Errorf("fingerprint: no training windows for %s", app.Name)
		}
		catIdx := categoryIndex(app.Category)
		appIdx := appIndexInCategory(app)
		for _, v := range vecs {
			catDS.Add(v, catIdx)
			perCatDS[app.Category].Add(v, appIdx)
		}
	}

	cf, err := forest.Train(catDS, cfg.Forest)
	if err != nil {
		return nil, fmt.Errorf("fingerprint: training category forest: %w", err)
	}
	out := &Classifier{
		Window:      cfg.Window,
		Stride:      cfg.Stride,
		Category:    cf,
		PerCategory: make(map[appmodel.Category]*forest.Forest, len(cats)),
	}
	for _, c := range cats {
		f, err := forest.Train(perCatDS[c], cfg.Forest)
		if err != nil {
			return nil, fmt.Errorf("fingerprint: training %s forest: %w", c, err)
		}
		out.PerCategory[c] = f
	}
	return out, nil
}

// PredictVector classifies one window vector, returning the predicted app
// name and its category.
func (c *Classifier) PredictVector(x []float64) (appName string, cat appmodel.Category) {
	cats := appmodel.Categories()
	cat = cats[c.Category.Predict(x)]
	apps := appmodel.ByCategory(cat)
	return apps[c.PerCategory[cat].Predict(x)].Name, cat
}

// PredictBatch classifies many window vectors at once, returning one app
// name per vector. The category forest runs batched over all rows, rows
// are then grouped by predicted category, and each app forest runs batched
// over its group — the same hierarchy as PredictVector with tree-major
// cache locality, so results are identical but several times faster.
func (c *Classifier) PredictBatch(vecs [][]float64) []string {
	out := make([]string, len(vecs))
	var s BatchScratch
	c.PredictBatchInto(vecs, out, &s)
	return out
}

// BatchScratch holds the working memory of PredictBatchInto — group
// indices, sub-batch row views, per-level prediction buffers, and the
// forests' own scratch — so a long-lived caller classifying many batches
// reaches a steady state with zero allocations per call. The zero value is
// ready; a scratch must not be shared between concurrent calls.
type BatchScratch struct {
	catPred []int
	appPred []int
	byCat   [][]int
	sub     [][]float64
	forest  forest.BatchScratch
	// cats/catApps cache the category and app-name tables: appmodel
	// rebuilds its catalog (closures included) on every lookup, which is
	// fine per trace but not per streaming batch.
	cats    []appmodel.Category
	catApps [][]string
}

// tables builds the cached category/app-name lookup on first use.
func (s *BatchScratch) tables() {
	if s.cats != nil {
		return
	}
	s.cats = appmodel.Categories()
	s.catApps = make([][]string, len(s.cats))
	for i, c := range s.cats {
		apps := appmodel.ByCategory(c)
		names := make([]string, len(apps))
		for j, a := range apps {
			names[j] = a.Name
		}
		s.catApps[i] = names
	}
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// PredictBatchInto is PredictBatch writing app names into out (len(out)
// must equal len(vecs)), reusing scratch across calls. Results are
// identical to PredictBatch.
func (c *Classifier) PredictBatchInto(vecs [][]float64, out []string, s *BatchScratch) {
	if len(vecs) == 0 {
		return
	}
	s.tables()
	s.catPred = growInts(s.catPred, len(vecs))
	c.Category.PredictBatchScratch(vecs, s.catPred, &s.forest)
	if cap(s.byCat) < len(s.cats) {
		s.byCat = make([][]int, len(s.cats))
	}
	s.byCat = s.byCat[:len(s.cats)]
	for ci := range s.byCat {
		s.byCat[ci] = s.byCat[ci][:0]
	}
	for i, ci := range s.catPred {
		s.byCat[ci] = append(s.byCat[ci], i)
	}
	for ci, rows := range s.byCat {
		if len(rows) == 0 {
			continue
		}
		cat := s.cats[ci]
		names := s.catApps[ci]
		s.sub = s.sub[:0]
		for _, r := range rows {
			s.sub = append(s.sub, vecs[r])
		}
		s.appPred = growInts(s.appPred, len(rows))
		c.PerCategory[cat].PredictBatchScratch(s.sub, s.appPred, &s.forest)
		for j, r := range rows {
			out[r] = names[s.appPred[j]]
		}
	}
}

// Prediction summarises the classification of one trace.
type Prediction struct {
	// App is the majority-voted app name.
	App string
	// Category is the majority app's category.
	Category appmodel.Category
	// Confidence is the fraction of windows voting for App — the per-trace
	// score the history attack thresholds (the paper's 70% stability gate).
	Confidence float64
	// Windows is the number of non-empty windows classified.
	Windows int
	// Votes holds the per-app window votes.
	Votes map[string]int
}

// PredictTrace classifies a whole radio trace by majority vote over its
// windows. An empty trace yields a zero Prediction.
func (c *Classifier) PredictTrace(t trace.Trace) Prediction {
	vecs := WindowVectors(t, c.Window, c.Stride)
	return c.PredictVectors(vecs)
}

// PredictVectors is PredictTrace over pre-extracted window vectors.
func (c *Classifier) PredictVectors(vecs [][]float64) Prediction {
	p := Prediction{Votes: make(map[string]int)}
	if len(vecs) == 0 {
		return p
	}
	for _, name := range c.PredictBatch(vecs) {
		p.Votes[name]++
	}
	p.Windows = len(vecs)
	best := -1
	for _, app := range appmodel.Apps() { // stable tie-break in table order
		if n := p.Votes[app.Name]; n > best {
			best = n
			p.App = app.Name
			p.Category = app.Category
		}
	}
	if p.Windows > 0 && best >= 0 {
		p.Confidence = float64(best) / float64(p.Windows)
	}
	return p
}

// Evaluate classifies labelled window vectors and returns the 9-class
// confusion matrix the paper's Tables III and IV report from.
func (c *Classifier) Evaluate(byApp map[string][][]float64) (*metrics.Confusion, error) {
	names := appmodel.Names()
	idx := make(map[string]int, len(names))
	for i, n := range names {
		idx[n] = i
	}
	conf := metrics.NewConfusion(names)
	for appName, vecs := range byApp {
		trueIdx, ok := idx[appName]
		if !ok {
			return nil, fmt.Errorf("fingerprint: evaluate: unknown app %q", appName)
		}
		for _, pred := range c.PredictBatch(vecs) {
			conf.Add(trueIdx, idx[pred])
		}
	}
	return conf, nil
}

func categoryIndex(c appmodel.Category) int {
	for i, cc := range appmodel.Categories() {
		if cc == c {
			return i
		}
	}
	panic("fingerprint: unknown category")
}

func appIndexInCategory(a appmodel.App) int {
	for i, app := range appmodel.ByCategory(a.Category) {
		if app.Name == a.Name {
			return i
		}
	}
	panic("fingerprint: app missing from its category")
}
