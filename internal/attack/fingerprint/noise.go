package fingerprint

import (
	"time"

	"ltefp/internal/appmodel"
	"ltefp/internal/sim"
)

// mergedArrivals builds the victim's arrival stream for noisy sessions:
// the foreground app overlaid with BackgroundApps noise apps started with
// small mutual delays, reproducing the paper's Fig. 9 methodology ("we run
// the 5 to 10 apps in the background with a delay of 3–4 seconds, chosen
// randomly from the Google store's top 10 free apps including the 9 apps
// we selected").
func mergedArrivals(spec CollectSpec, seed uint64) []appmodel.Arrival {
	g := sim.NewRNG(seed ^ 0xB0B0B0B0)
	day := spec.Day
	if day < 1 {
		day = 1
	}
	env := appmodel.Env{Quality: (spec.Profile.CQIMean - 1) / 14}
	sessions := make([][]appmodel.Arrival, 0, spec.BackgroundApps+1)
	sessions = append(sessions, spec.App.SessionEnv(g, spec.SessionDur, day, env))

	// Candidate pool: generic top-chart apps plus the nine targets.
	pool := appmodel.BackgroundPool()
	pool = append(pool, appmodel.Apps()...)
	delay := time.Duration(0)
	for i := 0; i < spec.BackgroundApps; i++ {
		bg := pool[g.IntN(len(pool))]
		delay += time.Duration(g.Uniform(3, 4) * float64(time.Second))
		remaining := spec.SessionDur - delay
		if remaining <= 0 {
			continue
		}
		arr := bg.SessionEnv(g, remaining, day, env)
		for j := range arr {
			arr[j].At += delay
		}
		sessions = append(sessions, arr)
	}
	return appmodel.MergeSessions(sessions...)
}
