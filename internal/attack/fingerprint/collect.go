package fingerprint

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"ltefp/internal/appmodel"
	"ltefp/internal/capture"
	"ltefp/internal/lte/operator"
	"ltefp/internal/obs"
	"ltefp/internal/sniffer"
	"ltefp/internal/trace"
)

// CollectSpec describes one labelled data-collection campaign: repeated
// sessions of one app on one network, captured by the attacker's sniffer
// and reduced to window vectors (the paper's steps ②–③).
type CollectSpec struct {
	// Profile is the network environment.
	Profile operator.Profile
	// App is the foreground app the victim runs.
	App appmodel.App
	// Sessions is how many independent traces to record.
	Sessions int
	// SessionDur is the length of each trace (the paper records 10-minute
	// traces; shorter sessions trade fidelity for runtime).
	SessionDur time.Duration
	// Day selects the drift-model day (≤1 = training day).
	Day int
	// Seed namespaces this campaign's randomness.
	Seed uint64
	// Sniffer configures capture fidelity; combined with ApplyProfileLoss
	// as in capture.Scenario.
	Sniffer          sniffer.Config
	ApplyProfileLoss bool
	// BackgroundApps, when positive, runs this many noise apps on the
	// victim's own UE alongside the foreground app (the Fig. 9 setting).
	BackgroundApps int
	// Population attaches this many mostly-idle background UEs to the
	// cell (~1% concurrently active), so campaigns record the victim
	// inside a metro-scale crowd of attached subscribers.
	Population int
	// Window and Stride control feature windowing (defaults as in Config).
	Window time.Duration
	Stride time.Duration
	// Metrics, when enabled, receives each session capture's per-cell
	// decode-health and scheduler metrics (see capture.Scenario.Metrics).
	Metrics obs.Scope
}

// normalize applies the spec defaults.
func (s CollectSpec) normalize() (CollectSpec, error) {
	if s.Sessions <= 0 {
		return s, fmt.Errorf("fingerprint: collect: no sessions requested")
	}
	if s.Window <= 0 {
		s.Window = DefaultWindow
	}
	if s.Stride <= 0 {
		s.Stride = s.Window
	}
	return s, nil
}

// CollectTraces runs the campaign and returns one victim radio trace per
// session. Sessions run in parallel; output order and content are
// deterministic in Seed.
func CollectTraces(spec CollectSpec) ([]trace.Trace, error) {
	spec, err := spec.normalize()
	if err != nil {
		return nil, err
	}
	traces := make([]trace.Trace, spec.Sessions)
	errs := make([]error, spec.Sessions)
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := 0; i < spec.Sessions; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			traces[i], errs[i] = collectOne(spec, i)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("fingerprint: session %d: %w", i, err)
		}
	}
	return traces, nil
}

// CollectPerSession runs the campaign and returns window vectors grouped
// by session, enabling session-aware train/test splits.
func CollectPerSession(spec CollectSpec) ([][][]float64, error) {
	spec, err := spec.normalize()
	if err != nil {
		return nil, err
	}
	traces, err := CollectTraces(spec)
	if err != nil {
		return nil, err
	}
	out := make([][][]float64, len(traces))
	for i, t := range traces {
		out[i] = WindowVectors(t, spec.Window, spec.Stride)
	}
	return out, nil
}

// Collect runs the campaign and returns the victim's window vectors, all
// sessions concatenated.
func Collect(spec CollectSpec) ([][]float64, error) {
	perSession, err := CollectPerSession(spec)
	if err != nil {
		return nil, err
	}
	var out [][]float64
	for _, vecs := range perSession {
		out = append(out, vecs...)
	}
	return out, nil
}

// CollectTrace records the campaign's single numbered session and returns
// the victim's trace. It is the unit of work CollectTraces parallelises;
// experiment runners that already fan campaigns out over a worker pool
// call it directly, one task per (campaign, session) pair, instead of
// nesting a second layer of goroutines.
func CollectTrace(spec CollectSpec, session int) (trace.Trace, error) {
	spec, err := spec.normalize()
	if err != nil {
		return nil, err
	}
	return collectOne(spec, session)
}

// collectOne records a single session and returns the victim's trace. The
// capture behind it is memoized (capture.RunCached), so replaying the same
// campaign — a re-run benchmark, a sweep re-using a setting's captures —
// skips the simulation and re-reads the immutable cached capture.
func collectOne(spec CollectSpec, session int) (trace.Trace, error) {
	res, err := capture.RunCached(scenarioFor(spec, session))
	if err != nil {
		return nil, err
	}
	return res.UserTrace("victim"), nil
}
