package fingerprint

import (
	"bytes"
	"fmt"
	"time"

	"ltefp/internal/appmodel"
	"ltefp/internal/artifact"
	"ltefp/internal/capture"
	"ltefp/internal/features"
	"ltefp/internal/lte/dci"
	"ltefp/internal/snapshot"
	"ltefp/internal/trace"
)

// This file wires the fingerprinting pipeline's two derived artifacts into
// the content-addressed store: per-capture window/feature matrices (keyed
// by the capture's scenario key plus the extraction parameters) and
// trained classifiers (keyed by the training-set content plus the forest
// configuration). Both ride the same two-tier store as raw captures, so a
// warm run skips simulation, extraction, and training alike — and both
// bypass the store entirely on metrics-enabled runs, where instrumentation
// must measure real work.

// DirectionFilter restricts a session trace to one link direction before
// windowing — Table III's sniffer-coverage variants, expressed over a
// both-direction capture.
type DirectionFilter int

// The direction filters, in Table III column order.
const (
	AllDirections DirectionFilter = iota
	DownlinkOnly
	UplinkOnly
)

// Apply restricts a trace to the filter's coverage.
func (f DirectionFilter) Apply(t trace.Trace) trace.Trace {
	switch f {
	case DownlinkOnly:
		return t.FilterDirection(dci.Downlink)
	case UplinkOnly:
		return t.FilterDirection(dci.Uplink)
	default:
		return t
	}
}

// scenarioFor builds the capture scenario behind one numbered session of a
// campaign (the same scenario collectOne runs).
func scenarioFor(spec CollectSpec, session int) capture.Scenario {
	seed := spec.Seed*0x9E3779B9 + uint64(session)*0x85EBCA77 + 1
	sess := capture.Session{
		UE:       "victim",
		CellID:   1,
		App:      spec.App,
		Start:    500 * time.Millisecond,
		Duration: spec.SessionDur,
		Day:      spec.Day,
	}
	if spec.BackgroundApps > 0 {
		sess.Arrivals = mergedArrivals(spec, seed)
	}
	return capture.Scenario{
		Seed:             seed,
		Cells:            []capture.Cell{{ID: 1, Profile: spec.Profile}},
		Sessions:         []capture.Session{sess},
		Population:       spec.Population,
		Sniffer:          spec.Sniffer,
		ApplyProfileLoss: spec.ApplyProfileLoss,
		Metrics:          spec.Metrics,
	}
}

// windowsCodec persists one session's window/feature matrix.
type windowsCodec struct{}

func (windowsCodec) Kind() artifact.Kind { return artifact.KindFeatures }

// Version couples the payload layout to the feature schema: either change
// invalidates persisted matrices.
func (windowsCodec) Version() uint32 { return 1<<16 | features.SchemaVersion }

func (windowsCodec) Encode(e *snapshot.Encoder, v any) error {
	m, ok := v.([][]float64)
	if !ok {
		return fmt.Errorf("fingerprint: windows codec got %T", v)
	}
	features.EncodeMatrix(e, m)
	return nil
}

func (windowsCodec) Decode(d *snapshot.Decoder) (any, error) {
	return features.DecodeMatrix(d)
}

func (windowsCodec) Size(v any) int64 {
	m, ok := v.([][]float64)
	if !ok {
		return 0
	}
	return features.MatrixSize(m)
}

// CollectWindows records one numbered session of a campaign and returns
// the victim's window vectors under the given direction filter, through
// the artifact store: a warm run decodes the matrix without touching the
// capture at all, a capture-warm run re-windows the cached capture, and a
// cold run simulates. Metrics-enabled specs bypass every tier, as does a
// scenario without a content key.
func CollectWindows(spec CollectSpec, session int, filter DirectionFilter) ([][]float64, error) {
	spec, err := spec.normalize()
	if err != nil {
		return nil, err
	}
	sc := scenarioFor(spec, session)
	compute := func() ([][]float64, error) {
		res, err := capture.RunCached(sc)
		if err != nil {
			return nil, err
		}
		return WindowVectors(filter.Apply(res.UserTrace("victim")), spec.Window, spec.Stride), nil
	}
	capKey, hashable := capture.ScenarioKey(sc)
	if !hashable || spec.Metrics.Enabled() {
		artifact.Default.CountBypass(artifact.KindFeatures)
		return compute()
	}
	h := artifact.NewHasher("ltefp-windows-v1")
	h.Bytes(capKey[:])
	h.Str("victim")
	h.U64(uint64(filter))
	h.Duration(spec.Window)
	h.Duration(spec.Stride)
	h.U64(uint64(features.SchemaVersion))
	v, err := artifact.Default.GetOrCompute(windowsCodec{}, h.Key(), func() (any, error) {
		return compute()
	})
	if err != nil {
		return nil, err
	}
	return v.([][]float64), nil
}

// classifierCodec persists a trained classifier, reusing the Save/Load
// container (persist.go) as the payload so the structural validation of
// decodeForest guards cache entries exactly as it guards model files.
type classifierCodec struct{}

func (classifierCodec) Kind() artifact.Kind { return artifact.KindForest }

func (classifierCodec) Version() uint32 { return 1 }

func (classifierCodec) Encode(e *snapshot.Encoder, v any) error {
	c, ok := v.(*Classifier)
	if !ok {
		return fmt.Errorf("fingerprint: classifier codec got %T", v)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		return err
	}
	e.Blob(buf.Bytes())
	return nil
}

func (classifierCodec) Decode(d *snapshot.Decoder) (any, error) {
	b := d.Blob()
	if err := d.Err(); err != nil {
		return nil, err
	}
	return Load(bytes.NewReader(b))
}

func (classifierCodec) Size(v any) int64 {
	c, ok := v.(*Classifier)
	if !ok {
		return 0
	}
	sz := int64(256)
	if c.Category != nil {
		for i := range c.Category.Trees {
			sz += int64(len(c.Category.Trees[i].Nodes)) * 48
		}
	}
	for _, f := range c.PerCategory {
		if f == nil {
			continue
		}
		for i := range f.Trees {
			sz += int64(len(f.Trees[i].Nodes)) * 48
		}
	}
	return sz
}

// TrainingKey derives the content address of a training run: the full
// per-app training matrices (in registry order) plus the effective
// configuration. Training is deterministic in these inputs, so equal keys
// guarantee byte-identical classifiers.
func TrainingKey(ts *TrainingSet, cfg Config) artifact.Key {
	cfg = cfg.withDefaults()
	h := artifact.NewHasher("ltefp-forest-v1")
	h.U64(uint64(features.SchemaVersion))
	h.Duration(cfg.Window)
	h.Duration(cfg.Stride)
	// forest.Config is a flat struct of scalars; %#v serialises it fully.
	h.Str(fmt.Sprintf("%#v", cfg.Forest))
	apps := appmodel.Apps()
	h.U64(uint64(len(apps)))
	for _, app := range apps {
		h.Str(app.Name)
		vecs := ts.byApp[app.Name]
		h.U64(uint64(len(vecs)))
		for _, row := range vecs {
			h.U64(uint64(len(row)))
			for _, v := range row {
				h.F64(v)
			}
		}
	}
	return h.Key()
}

// TrainCached trains through the artifact store: a warm run decodes the
// persisted classifier (skipping forest training entirely), and the first
// cold run populates the store. Callers whose run must be measured
// (metrics enabled) should call Train directly.
func TrainCached(ts *TrainingSet, cfg Config) (*Classifier, error) {
	v, err := artifact.Default.GetOrCompute(classifierCodec{}, TrainingKey(ts, cfg), func() (any, error) {
		return Train(ts, cfg)
	})
	if err != nil {
		return nil, err
	}
	return v.(*Classifier), nil
}
