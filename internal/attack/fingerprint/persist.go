package fingerprint

import (
	"fmt"
	"io"
	"sort"

	"ltefp/internal/appmodel"
	"ltefp/internal/ml/forest"
	"ltefp/internal/snapshot"
)

// Section names of a persisted classifier inside a snapshot container.
// The daemon embeds these alongside the stream checkpoint sections in one
// checkpoint file; Save/Load wrap them in a standalone container for the
// ltetrain/lteattack model-file handoff.
const (
	SectionMeta  = "fingerprint.meta"
	SectionModel = "fingerprint.model"
)

// Save serialises the classifier as a standalone snapshot container. The
// format is versioned, length-prefixed, and CRC-guarded: a model file
// from an incompatible build (including the old gob era) is rejected with
// a typed error instead of being half-decoded.
func (c *Classifier) Save(w io.Writer) error {
	sw, err := snapshot.NewWriter(w)
	if err != nil {
		return fmt.Errorf("fingerprint: saving classifier: %w", err)
	}
	if err := c.AppendTo(sw); err != nil {
		return fmt.Errorf("fingerprint: saving classifier: %w", err)
	}
	if err := sw.Close(); err != nil {
		return fmt.Errorf("fingerprint: saving classifier: %w", err)
	}
	return nil
}

// Load deserialises a classifier written by Save. Wrong magic, an
// unsupported container version, truncation, and corruption surface as
// snapshot.ErrMagic/ErrVersion/ErrTruncated/ErrCorrupt in the error
// chain.
func Load(r io.Reader) (*Classifier, error) {
	sections, err := snapshot.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("fingerprint: loading classifier: %w", err)
	}
	c, err := FromSections(sections)
	if err != nil {
		return nil, fmt.Errorf("fingerprint: loading classifier: %w", err)
	}
	return c, nil
}

// AppendTo writes the classifier's sections into an open snapshot
// container. Per-category forests are written in ascending category
// order, so equal classifiers always produce equal bytes.
func (c *Classifier) AppendTo(w *snapshot.Writer) error {
	meta := snapshot.NewEncoder(32)
	meta.Duration(c.Window)
	meta.Duration(c.Stride)
	if err := w.Section(SectionMeta, meta.Bytes()); err != nil {
		return err
	}

	e := snapshot.NewEncoder(1 << 16)
	encodeForest(e, c.Category)
	cats := make([]int, 0, len(c.PerCategory))
	for cat := range c.PerCategory {
		cats = append(cats, int(cat))
	}
	sort.Ints(cats)
	e.Uvarint(uint64(len(cats)))
	for _, cat := range cats {
		e.Varint(int64(cat))
		encodeForest(e, c.PerCategory[appmodel.Category(cat)])
	}
	return w.Section(SectionModel, e.Bytes())
}

// FromSections rebuilds a classifier from a decoded container's sections,
// for callers (the daemon) that embed the model inside a larger file.
func FromSections(sections map[string][]byte) (*Classifier, error) {
	metaRaw, ok := sections[SectionMeta]
	if !ok {
		return nil, fmt.Errorf("missing section %q", SectionMeta)
	}
	modelRaw, ok := sections[SectionModel]
	if !ok {
		return nil, fmt.Errorf("missing section %q", SectionModel)
	}

	md := snapshot.NewDecoder(metaRaw)
	c := &Classifier{
		Window: md.Duration(),
		Stride: md.Duration(),
	}
	if err := md.Finish(); err != nil {
		return nil, fmt.Errorf("classifier meta: %w", err)
	}
	if c.Window <= 0 || c.Stride <= 0 {
		return nil, fmt.Errorf("classifier meta: invalid window %v / stride %v", c.Window, c.Stride)
	}

	d := snapshot.NewDecoder(modelRaw)
	var err error
	if c.Category, err = decodeForest(d); err != nil {
		return nil, fmt.Errorf("category forest: %w", err)
	}
	n := d.Count(2)
	c.PerCategory = make(map[appmodel.Category]*forest.Forest, n)
	prev := int64(-1 << 62)
	for i := 0; i < n && d.Err() == nil; i++ {
		cat := d.Varint()
		if cat <= prev {
			return nil, fmt.Errorf("per-category forests not in ascending order")
		}
		prev = cat
		f, err := decodeForest(d)
		if err != nil {
			return nil, fmt.Errorf("forest for category %d: %w", cat, err)
		}
		c.PerCategory[appmodel.Category(cat)] = f
	}
	if err := d.Finish(); err != nil {
		return nil, fmt.Errorf("classifier model: %w", err)
	}
	return c, nil
}

// encodeForest appends one forest (possibly nil) to the encoder: class
// names, then each tree as a flat node array.
func encodeForest(e *snapshot.Encoder, f *forest.Forest) {
	if f == nil {
		e.Bool(false)
		return
	}
	e.Bool(true)
	e.Uvarint(uint64(len(f.Classes)))
	for _, c := range f.Classes {
		e.Str(c)
	}
	e.Uvarint(uint64(len(f.Trees)))
	for i := range f.Trees {
		nodes := f.Trees[i].Nodes
		e.Uvarint(uint64(len(nodes)))
		for j := range nodes {
			n := &nodes[j]
			e.Varint(int64(n.Feature))
			e.F64(n.Threshold)
			e.Varint(int64(n.Left))
			e.Varint(int64(n.Right))
			e.Uvarint(uint64(len(n.Dist)))
			for _, p := range n.Dist {
				e.F32(p)
			}
		}
	}
}

// decodeForest reads one forest, validating the tree structure: internal
// nodes must point at in-range children, leaves must carry a class
// distribution over the declared classes.
func decodeForest(d *snapshot.Decoder) (*forest.Forest, error) {
	if !d.Bool() {
		if d.Err() != nil {
			return nil, d.Err()
		}
		return nil, nil
	}
	f := &forest.Forest{}
	nClasses := d.Count(1)
	for i := 0; i < nClasses && d.Err() == nil; i++ {
		f.Classes = append(f.Classes, d.Str())
	}
	nTrees := d.Count(1)
	for i := 0; i < nTrees && d.Err() == nil; i++ {
		nNodes := d.Count(12) // feature + 8-byte threshold + left + right + dist count
		if d.Err() != nil {
			break
		}
		nodes := make([]forest.Node, nNodes)
		for j := range nodes {
			n := &nodes[j]
			n.Feature = int32(d.Varint())
			n.Threshold = d.F64()
			n.Left = int32(d.Varint())
			n.Right = int32(d.Varint())
			nDist := d.Count(4)
			if d.Err() != nil {
				return nil, d.Err()
			}
			if nDist > 0 {
				n.Dist = make([]float32, nDist)
				for k := range n.Dist {
					n.Dist[k] = d.F32()
				}
			}
			switch {
			case n.Feature == -1: // leaf
				if len(n.Dist) != nClasses {
					return nil, fmt.Errorf("leaf node %d/%d: %d-class distribution, forest has %d classes",
						i, j, len(n.Dist), nClasses)
				}
			case n.Feature >= 0:
				if n.Left <= int32(j) || int(n.Left) >= nNodes || n.Right <= int32(j) || int(n.Right) >= nNodes {
					return nil, fmt.Errorf("node %d/%d: children (%d,%d) out of range [%d,%d)",
						i, j, n.Left, n.Right, j+1, nNodes)
				}
			default:
				return nil, fmt.Errorf("node %d/%d: invalid feature %d", i, j, n.Feature)
			}
		}
		f.Trees = append(f.Trees, forest.Tree{Nodes: nodes})
	}
	if d.Err() != nil {
		return nil, d.Err()
	}
	return f, nil
}
