package fingerprint

import (
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"ltefp/internal/appmodel"
	"ltefp/internal/ml/forest"
)

// persisted is the on-disk layout of a trained classifier. Maps keyed by
// custom types travel poorly across gob versions, so categories are stored
// as a parallel slice.
type persisted struct {
	Window     time.Duration
	Stride     time.Duration
	Category   *forest.Forest
	Categories []int
	Forests    []*forest.Forest
}

// Save serialises the classifier with encoding/gob.
func (c *Classifier) Save(w io.Writer) error {
	p := persisted{
		Window:   c.Window,
		Stride:   c.Stride,
		Category: c.Category,
	}
	for cat, f := range c.PerCategory {
		p.Categories = append(p.Categories, int(cat))
		p.Forests = append(p.Forests, f)
	}
	if err := gob.NewEncoder(w).Encode(p); err != nil {
		return fmt.Errorf("fingerprint: saving classifier: %w", err)
	}
	return nil
}

// Load deserialises a classifier written by Save.
func Load(r io.Reader) (*Classifier, error) {
	var p persisted
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("fingerprint: loading classifier: %w", err)
	}
	if len(p.Categories) != len(p.Forests) {
		return nil, fmt.Errorf("fingerprint: corrupt classifier: %d categories, %d forests",
			len(p.Categories), len(p.Forests))
	}
	c := &Classifier{
		Window:      p.Window,
		Stride:      p.Stride,
		Category:    p.Category,
		PerCategory: make(map[appmodel.Category]*forest.Forest, len(p.Forests)),
	}
	for i, cat := range p.Categories {
		c.PerCategory[appmodel.Category(cat)] = p.Forests[i]
	}
	return c, nil
}
