package fingerprint_test

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"ltefp/internal/appmodel"
	"ltefp/internal/artifact"
	"ltefp/internal/attack/fingerprint"
	"ltefp/internal/lte/operator"
	"ltefp/internal/ml/forest"
	"ltefp/internal/sniffer"
)

// artifactSpec is a small campaign used by the artifact-layer tests.
func artifactSpec(t *testing.T) fingerprint.CollectSpec {
	t.Helper()
	app, err := appmodel.ByName("YouTube")
	if err != nil {
		t.Fatal(err)
	}
	return fingerprint.CollectSpec{
		Profile:          operator.Lab(),
		App:              app,
		Sessions:         2,
		SessionDur:       5 * time.Second,
		Seed:             41,
		Sniffer:          sniffer.Config{CorruptProb: 0.002},
		ApplyProfileLoss: true,
	}
}

// withDiskStore points the shared artifact store at a fresh temp
// directory for one test, restoring the memory-only default afterwards.
func withDiskStore(t *testing.T) string {
	t.Helper()
	artifact.Default.Reset()
	dir := t.TempDir()
	if err := artifact.Default.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := artifact.Default.SetDir(""); err != nil {
			t.Fatal(err)
		}
		artifact.Default.Reset()
	})
	return dir
}

// corruptOneEntry flips a byte in the middle of one on-disk entry of the
// given kind and returns its path.
func corruptOneEntry(t *testing.T, dir string, kind artifact.Kind) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, string(kind), "*", "*.snap"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no %s entries on disk (err=%v)", kind, err)
	}
	path := matches[0]
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x08
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCollectWindowsMatchesDirectCollection proves the window-matrix
// artifact is transparent: under every direction filter, the cached path
// returns exactly what windowing the collected trace directly returns —
// cold, and again when served back from disk.
func TestCollectWindowsMatchesDirectCollection(t *testing.T) {
	withDiskStore(t)
	spec := artifactSpec(t)
	for _, filter := range []fingerprint.DirectionFilter{
		fingerprint.AllDirections, fingerprint.DownlinkOnly, fingerprint.UplinkOnly,
	} {
		tr, err := fingerprint.CollectTrace(spec, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := fingerprint.WindowVectors(filter.Apply(tr), fingerprint.DefaultWindow, fingerprint.DefaultWindow)
		if len(want) == 0 {
			t.Fatal("test spec produced no windows")
		}
		cold, err := fingerprint.CollectWindows(spec, 0, filter)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cold, want) {
			t.Fatalf("filter %v: cold CollectWindows differs from direct collection", filter)
		}
		// Drop the memory tier: the warm read decodes the persisted matrix.
		artifact.Default.Reset()
		warm, err := fingerprint.CollectWindows(spec, 0, filter)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(warm, want) {
			t.Fatalf("filter %v: disk-served matrix differs from direct collection", filter)
		}
		st := artifact.Default.ReadStats().PerKind[artifact.KindFeatures]
		if st.DiskHits == 0 {
			t.Fatalf("filter %v: expected a features disk hit, stats %+v", filter, st)
		}
	}
}

// TestWindowsEntryCorruptionRecomputed flips a byte in a persisted
// window matrix: the next cold-memory read must discard it and recompute
// the identical matrix from the (also cached) capture.
func TestWindowsEntryCorruptionRecomputed(t *testing.T) {
	dir := withDiskStore(t)
	spec := artifactSpec(t)
	want, err := fingerprint.CollectWindows(spec, 0, fingerprint.AllDirections)
	if err != nil {
		t.Fatal(err)
	}
	corruptOneEntry(t, dir, artifact.KindFeatures)
	artifact.Default.Reset()
	got, err := fingerprint.CollectWindows(spec, 0, fingerprint.AllDirections)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("recomputed matrix differs from the original")
	}
	st := artifact.Default.ReadStats().PerKind[artifact.KindFeatures]
	if st.DiskDiscards != 1 || st.DiskHits != 0 {
		t.Fatalf("stats %+v: want the corrupted entry discarded, not served", st)
	}
}

// TestTrainCachedDurableAndByteIdentical trains through the artifact
// store and proves the persisted classifier is byte-for-byte the trained
// one (via Save), that a restarted process loads it from disk without
// retraining, and that a corrupted model entry is retrained, not trusted.
func TestTrainCachedDurableAndByteIdentical(t *testing.T) {
	dir := withDiskStore(t)
	byApp := collectAll(t, 1, 5*time.Second)
	makeTS := func() *fingerprint.TrainingSet {
		ts := fingerprint.NewTrainingSet()
		for app, vecs := range byApp {
			if err := ts.Add(app, vecs); err != nil {
				t.Fatal(err)
			}
		}
		return ts
	}
	cfg := fingerprint.Config{Forest: forest.Config{Trees: 10, Seed: 3}}

	cold, err := fingerprint.TrainCached(makeTS(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var coldBytes bytes.Buffer
	if err := cold.Save(&coldBytes); err != nil {
		t.Fatal(err)
	}

	artifact.Default.Reset()
	warm, err := fingerprint.TrainCached(makeTS(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := artifact.Default.ReadStats().PerKind[artifact.KindForest]
	if st.DiskHits != 1 || st.Misses != 0 {
		t.Fatalf("warm stats %+v: want a pure disk hit", st)
	}
	var warmBytes bytes.Buffer
	if err := warm.Save(&warmBytes); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(coldBytes.Bytes(), warmBytes.Bytes()) {
		t.Fatal("disk-served classifier is not byte-identical to the trained one")
	}

	corruptOneEntry(t, dir, artifact.KindForest)
	artifact.Default.Reset()
	re, err := fingerprint.TrainCached(makeTS(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	st = artifact.Default.ReadStats().PerKind[artifact.KindForest]
	if st.DiskDiscards != 1 || st.DiskHits != 0 {
		t.Fatalf("post-corruption stats %+v: want the entry discarded", st)
	}
	var reBytes bytes.Buffer
	if err := re.Save(&reBytes); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(coldBytes.Bytes(), reBytes.Bytes()) {
		t.Fatal("retrained classifier differs from the original")
	}
}

// TestTrainingKeySensitivity checks the forest key tracks its inputs: the
// same content hashes equal, and any change — a training row, the forest
// config, the window — produces a different address.
func TestTrainingKeySensitivity(t *testing.T) {
	byApp := collectAll(t, 1, 5*time.Second)
	makeTS := func(mutate bool) *fingerprint.TrainingSet {
		ts := fingerprint.NewTrainingSet()
		for app, vecs := range byApp {
			if mutate && app == "YouTube" {
				mutated := make([][]float64, len(vecs))
				copy(mutated, vecs)
				row := append([]float64(nil), mutated[0]...)
				row[0]++
				mutated[0] = row
				vecs = mutated
			}
			if err := ts.Add(app, vecs); err != nil {
				t.Fatal(err)
			}
		}
		return ts
	}
	cfg := fingerprint.Config{Forest: forest.Config{Trees: 10, Seed: 3}}
	base := fingerprint.TrainingKey(makeTS(false), cfg)
	if again := fingerprint.TrainingKey(makeTS(false), cfg); again != base {
		t.Fatal("identical training inputs produced different keys")
	}
	if k := fingerprint.TrainingKey(makeTS(true), cfg); k == base {
		t.Fatal("changed training row did not change the key")
	}
	cfg2 := cfg
	cfg2.Forest.Trees = 11
	if k := fingerprint.TrainingKey(makeTS(false), cfg2); k == base {
		t.Fatal("changed forest config did not change the key")
	}
	cfg3 := cfg
	cfg3.Window = 200 * time.Millisecond
	if k := fingerprint.TrainingKey(makeTS(false), cfg3); k == base {
		t.Fatal("changed window did not change the key")
	}
}
