// Package cost implements the paper's analytical attacker cost model
// (§VII-D, Fig. 7, Eqs. 2–3): what it costs an adversary to build, run, and
// *keep* running the fingerprinting pipeline, given that traffic drift
// forces periodic retraining. Costs are expressed in abstract work units
// per instance (the paper never fixes a currency for the per-task terms)
// plus a hardware term priced from the paper's $500–1,000-per-sniffer
// estimate.
package cost

import (
	"fmt"
	"strings"
)

// Params are the model's inputs, named after the paper's symbols.
type Params struct {
	// TrainApps is A_t, the number of apps to fingerprint.
	TrainApps int
	// VersionsPerApp is A_v, the number of sufficiently different versions
	// of each app.
	VersionsPerApp int
	// InstancesPerApp is A_i, the traces recorded per app version.
	InstancesPerApp int

	// CollectUnit is the cost of recording one instance (Col_cost term).
	CollectUnit float64
	// FeatureUnit is F_m, the cost of measuring features for one instance.
	FeatureUnit float64
	// TrainUnit is T_s, the cost of training on one instance.
	TrainUnit float64
	// ClassifyUnit is the per-instance classification cost (T_c use).
	ClassifyUnit float64

	// Victims is V_n, the number of targeted victims.
	Victims int
	// AppsPerVictim is A_a, the average number of apps each victim runs.
	AppsPerVictim int

	// RetrainPeriodDays is D: after this many days the classifier has
	// drifted below the performance threshold X and must be retrained.
	RetrainPeriodDays int
	// PerformanceThreshold is X, the F-score floor the attacker maintains.
	PerformanceThreshold float64

	// Sniffers and SnifferUnitUSD price the hardware (the paper estimates
	// 500–1,000 USD per SDR-based sniffer).
	Sniffers       int
	SnifferUnitUSD float64
}

// Defaults returns the running example used by the experiments: the
// paper's nine apps, the 70% threshold, and the ~7-day drift horizon
// measured in Fig. 8.
func Defaults() Params {
	return Params{
		TrainApps:            9,
		VersionsPerApp:       2,
		InstancesPerApp:      10,
		CollectUnit:          1.0,
		FeatureUnit:          0.2,
		TrainUnit:            0.5,
		ClassifyUnit:         0.05,
		Victims:              5,
		AppsPerVictim:        4,
		RetrainPeriodDays:    7,
		PerformanceThreshold: 0.70,
		Sniffers:             3,
		SnifferUnitUSD:       750,
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	switch {
	case p.TrainApps <= 0 || p.VersionsPerApp <= 0 || p.InstancesPerApp <= 0:
		return fmt.Errorf("cost: A_t, A_v, A_i must be positive")
	case p.Victims < 0 || p.AppsPerVictim < 0:
		return fmt.Errorf("cost: V_n and A_a must be non-negative")
	case p.RetrainPeriodDays <= 0:
		return fmt.Errorf("cost: retrain period D must be positive")
	case p.PerformanceThreshold <= 0 || p.PerformanceThreshold >= 1:
		return fmt.Errorf("cost: threshold X must lie in (0, 1)")
	}
	return nil
}

// RecordedInstances is A_n = A_t × A_v × A_i.
func (p Params) RecordedInstances() int {
	return p.TrainApps * p.VersionsPerApp * p.InstancesPerApp
}

// CollectingCost is Col_cost(A_n) — recording the training corpus (③).
func (p Params) CollectingCost() float64 {
	return float64(p.RecordedInstances()) * p.CollectUnit
}

// TrainingCost is Train_cost(A_n, F_m, T_c) = A_n × T_s with feature
// measurement included (⑤).
func (p Params) TrainingCost() float64 {
	return float64(p.RecordedInstances()) * (p.FeatureUnit + p.TrainUnit)
}

// TestInstances is T_d = V_n × A_a.
func (p Params) TestInstances() int {
	return p.Victims * p.AppsPerVictim
}

// IdentificationCost is Col_cost(T_d) + Id_cost(T_d, F_m, T_c) (④⑥).
func (p Params) IdentificationCost() float64 {
	td := float64(p.TestInstances())
	return td*p.CollectUnit + td*(p.FeatureUnit+p.ClassifyUnit)
}

// PerformanceCost is Eq. 2: the cost of standing up the attack and
// identifying the victims' apps once.
func (p Params) PerformanceCost() float64 {
	return p.CollectingCost() + p.TrainingCost() + p.IdentificationCost()
}

// RetrainCost is Retrain_cost(A_n, F_m, T_c): one full re-collection and
// retraining cycle (⑩).
func (p Params) RetrainCost() float64 {
	return p.CollectingCost() + p.TrainingCost()
}

// DailyRetrainCost is Retrain_cost / D — the amortised daily spend needed
// to hold the classifier above X.
func (p Params) DailyRetrainCost() float64 {
	return p.RetrainCost() / float64(p.RetrainPeriodDays)
}

// TotalCost is Eq. 3 over a monitoring horizon of the given number of
// days: the one-off performance cost, plus — because drift drops the
// classifier below X every D days (Fig. 8) — the amortised retraining term
// for every monitored day.
func (p Params) TotalCost(horizonDays int) float64 {
	if horizonDays < 0 {
		horizonDays = 0
	}
	return p.PerformanceCost() + float64(horizonDays)*p.DailyRetrainCost()
}

// HardwareUSD prices the sniffer fleet.
func (p Params) HardwareUSD() float64 {
	return float64(p.Sniffers) * p.SnifferUnitUSD
}

// Breakdown renders the Fig. 7 cost structure for a monitoring horizon.
func (p Params) Breakdown(horizonDays int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "attacker cost model (work units; paper Eqs. 2-3)\n")
	fmt.Fprintf(&b, "  A_n recorded instances         %8d  (A_t=%d × A_v=%d × A_i=%d)\n",
		p.RecordedInstances(), p.TrainApps, p.VersionsPerApp, p.InstancesPerApp)
	fmt.Fprintf(&b, "  ③ collecting                   %8.1f\n", p.CollectingCost())
	fmt.Fprintf(&b, "  ⑤ training                     %8.1f\n", p.TrainingCost())
	fmt.Fprintf(&b, "  ④⑥ identification (T_d=%d)     %8.1f\n", p.TestInstances(), p.IdentificationCost())
	fmt.Fprintf(&b, "  Perf() one-off (Eq. 2)         %8.1f\n", p.PerformanceCost())
	fmt.Fprintf(&b, "  ⑩ retrain cycle (every %d d)    %8.1f  (%.1f/day)\n",
		p.RetrainPeriodDays, p.RetrainCost(), p.DailyRetrainCost())
	fmt.Fprintf(&b, "  Cost() over %3d days (Eq. 3)   %8.1f\n", horizonDays, p.TotalCost(horizonDays))
	fmt.Fprintf(&b, "  hardware: %d sniffers × $%.0f = $%.0f\n",
		p.Sniffers, p.SnifferUnitUSD, p.HardwareUSD())
	return b.String()
}
