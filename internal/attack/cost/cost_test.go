package cost_test

import (
	"math"
	"strings"
	"testing"

	"ltefp/internal/attack/cost"
)

func params() cost.Params {
	return cost.Params{
		TrainApps:            9,
		VersionsPerApp:       2,
		InstancesPerApp:      10,
		CollectUnit:          1,
		FeatureUnit:          0.2,
		TrainUnit:            0.5,
		ClassifyUnit:         0.05,
		Victims:              5,
		AppsPerVictim:        4,
		RetrainPeriodDays:    7,
		PerformanceThreshold: 0.7,
		Sniffers:             3,
		SnifferUnitUSD:       750,
	}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestHandChecked(t *testing.T) {
	p := params()
	if p.RecordedInstances() != 180 { // 9 × 2 × 10
		t.Fatalf("A_n = %d", p.RecordedInstances())
	}
	if !almost(p.CollectingCost(), 180) {
		t.Fatalf("Col_cost = %v", p.CollectingCost())
	}
	if !almost(p.TrainingCost(), 180*0.7) {
		t.Fatalf("Train_cost = %v", p.TrainingCost())
	}
	if p.TestInstances() != 20 { // 5 × 4
		t.Fatalf("T_d = %d", p.TestInstances())
	}
	if !almost(p.IdentificationCost(), 20*1+20*0.25) {
		t.Fatalf("Id_cost = %v", p.IdentificationCost())
	}
	wantPerf := 180 + 126 + 25.0
	if !almost(p.PerformanceCost(), wantPerf) {
		t.Fatalf("Perf = %v, want %v", p.PerformanceCost(), wantPerf)
	}
	if !almost(p.RetrainCost(), 180+126) {
		t.Fatalf("Retrain = %v", p.RetrainCost())
	}
	if !almost(p.DailyRetrainCost(), 306.0/7) {
		t.Fatalf("daily retrain = %v", p.DailyRetrainCost())
	}
	// Eq. 3 over 14 days: Perf + 14 × daily.
	if !almost(p.TotalCost(14), wantPerf+14*306.0/7) {
		t.Fatalf("Cost(14) = %v", p.TotalCost(14))
	}
	if !almost(p.TotalCost(0), wantPerf) {
		t.Fatal("zero horizon should cost exactly Perf()")
	}
	if !almost(p.TotalCost(-5), wantPerf) {
		t.Fatal("negative horizon should clamp to zero")
	}
	if !almost(p.HardwareUSD(), 2250) {
		t.Fatalf("hardware = %v", p.HardwareUSD())
	}
}

func TestValidate(t *testing.T) {
	good := params()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*cost.Params){
		func(p *cost.Params) { p.TrainApps = 0 },
		func(p *cost.Params) { p.Victims = -1 },
		func(p *cost.Params) { p.RetrainPeriodDays = 0 },
		func(p *cost.Params) { p.PerformanceThreshold = 1 },
		func(p *cost.Params) { p.PerformanceThreshold = 0 },
	}
	for i, mutate := range cases {
		p := params()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestDefaultsValid(t *testing.T) {
	if err := cost.Defaults().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBreakdownMentionsEquations(t *testing.T) {
	s := params().Breakdown(30)
	for _, want := range []string{"Eq. 2", "Eq. 3", "sniffers"} {
		if !strings.Contains(s, want) {
			t.Errorf("breakdown missing %q", want)
		}
	}
}

func TestMoreVictimsCostMore(t *testing.T) {
	small := params()
	big := params()
	big.Victims = 500
	if big.TotalCost(30) <= small.TotalCost(30) {
		t.Fatal("500 victims cost no more than 5")
	}
}
