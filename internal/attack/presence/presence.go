// Package presence implements the paging-channel presence-testing attack:
// the attacker triggers silent downlink pushes toward a target at chosen
// times (a messaging app delivers them without any user-visible
// notification) and watches the broadcast paging channel. An idle target
// is paged within one paging cycle of each probe, so the TMSI whose paging
// record keeps answering the probe schedule — against a background of
// unrelated pages — reveals whether the subscriber is present in the
// monitored area (Shaik et al.; Sørseth et al.'s experimental analysis of
// LTE paging exposure). Coarsened "smart paging" cycles enlarge the
// per-occasion anonymity set and blur the timing correlation; rotating
// paging pseudonyms destroy the linkage entirely.
package presence

import (
	"sort"
	"time"

	"ltefp/internal/sniffer"
)

// Candidate is one TMSI's correlation against the probe schedule.
type Candidate struct {
	// TMSI is the paged identity.
	TMSI uint32
	// Hits is the number of probes answered by at least one paging of
	// this TMSI inside the correlation window.
	Hits int
	// InWindow counts this TMSI's paging records inside any window,
	// Outside those elsewhere — a TMSI that pages constantly scores high
	// by accident and is down-ranked by its outside activity.
	InWindow int
	Outside  int
	// Score is Hits over the number of probes.
	Score float64
}

// Score correlates observed paging records against the probe schedule:
// a paging at time t answers the latest probe p with p <= t < p+window.
// Candidates are ranked by probe hits, then by fewest out-of-window
// pages (background chatter), then by TMSI for determinism.
func Score(pagings []sniffer.PagingEvent, probes []time.Duration, window time.Duration) []Candidate {
	if len(probes) == 0 || window <= 0 {
		return nil
	}
	sorted := append([]time.Duration(nil), probes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	type tally struct {
		hit      map[int]bool
		inWindow int
		outside  int
	}
	byTMSI := make(map[uint32]*tally)
	for _, pg := range pagings {
		t := byTMSI[pg.TMSI]
		if t == nil {
			t = &tally{hit: make(map[int]bool)}
			byTMSI[pg.TMSI] = t
		}
		// Latest probe at or before the paging.
		i := sort.Search(len(sorted), func(i int) bool { return sorted[i] > pg.At }) - 1
		if i >= 0 && pg.At-sorted[i] < window {
			t.hit[i] = true
			t.inWindow++
		} else {
			t.outside++
		}
	}
	out := make([]Candidate, 0, len(byTMSI))
	for tmsi, t := range byTMSI {
		out = append(out, Candidate{
			TMSI:     tmsi,
			Hits:     len(t.hit),
			InWindow: t.inWindow,
			Outside:  t.outside,
			Score:    float64(len(t.hit)) / float64(len(sorted)),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hits != out[j].Hits {
			return out[i].Hits > out[j].Hits
		}
		if out[i].Outside != out[j].Outside {
			return out[i].Outside < out[j].Outside
		}
		return out[i].TMSI < out[j].TMSI
	})
	return out
}

// AnonymitySet counts the distinct TMSIs paged inside at least one probe
// window — the crowd the attacker must tell the target apart from. Smart
// paging grows it by batching more subscribers into each occasion.
func AnonymitySet(cands []Candidate) int {
	n := 0
	for _, c := range cands {
		if c.InWindow > 0 {
			n++
		}
	}
	return n
}
