package correlation

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ltefp/internal/ml/dtw"
	"ltefp/internal/obs"
	"ltefp/internal/trace"
)

// UserTrace is one observed user in a many-user contact sweep: an opaque
// identifier (RNTI, TMSI, or an attacker-assigned label) and the user's
// radio-layer trace.
type UserTrace struct {
	ID    string
	Trace trace.Trace
}

// SweepConfig parameterises Sweep.
type SweepConfig struct {
	// Bin is the similarity window T_w (0 = DefaultBin).
	Bin time.Duration
	// Start and End bound the common observation span [Start, End).
	Start, End time.Duration
	// MinSimilarity is the contact decision threshold on the frame-rate DTW
	// similarity (the paper's Table VI quantity): pairs scoring below it
	// are not reported. It is also the cascade's pruning lever — the
	// threshold is converted to a distance cutoff so most pairs are
	// rejected by LB_Kim, LB_Keogh, or early abandoning without a full DTW,
	// and never with a changed score. 0 keeps (and fully scores) all pairs.
	MinSimilarity float64
	// TopK caps reported contacts per user: a pair is kept only if it ranks
	// in the top K of at least one of its endpoints, ordered by similarity
	// (ties broken by pair index). 0 = unlimited.
	TopK int
	// Workers is the shard count (0 = GOMAXPROCS).
	Workers int
	// Model optionally scores every surviving pair through the trained
	// contact classifier (the PairEvidence → logreg path).
	Model *Model
}

// Contact is one surviving pair of a sweep.
type Contact struct {
	// A and B index the users slice passed to Sweep, with A < B.
	A, B int
	// Evidence is byte-identical to PairEvidenceWith on the same traces.
	Evidence Evidence
	// Score and Detected are the Model outputs (zero when no model is set).
	Score    float64
	Detected bool
}

// Sweep runs all-pairs contact discovery over the users' common span: each
// user's comparison series are built exactly once, the O(n²) pair space is
// sharded across workers (one DTW aligner per goroutine), and each pair
// goes through the LB_Kim → LB_Keogh → early-abandon cascade before any
// full DTW. Exactness is the contract: the returned contacts — membership,
// order, and every Evidence bit — equal what the brute-force nested
// PairEvidenceWith loop over the same inputs produces, for any worker
// count. Pairs are reported with A < B, sorted by (A, B).
func Sweep(users []UserTrace, cfg SweepConfig) ([]Contact, error) {
	if cfg.Bin <= 0 {
		cfg.Bin = DefaultBin
	}
	if cfg.End <= cfg.Start {
		return nil, fmt.Errorf("correlation: sweep span [%v, %v) is empty", cfg.Start, cfg.End)
	}
	if cfg.TopK < 0 {
		return nil, fmt.Errorf("correlation: negative TopK %d", cfg.TopK)
	}
	if len(users) < 2 {
		return nil, nil
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(users) {
		workers = len(users)
	}

	// Stage 1: per-user series, built once and shared read-only by every
	// shard. The dtw.Series carries the precomputed normalisation and
	// Sakoe-Chiba envelopes the cascade's lower bounds feed on.
	prep := make([]sweepUser, len(users))
	var nextUser atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(nextUser.Add(1)) - 1
				if i >= len(users) {
					return
				}
				s := buildSide(users[i].Trace, cfg.Bin, cfg.Start, cfg.End)
				prep[i] = sweepUser{side: s, rate: dtw.NewSeries(s.rate)}
			}
		}()
	}
	wg.Wait()

	// Stage 2: shard the pair space by row. Workers pull rows from an
	// atomic counter (cheap dynamic balancing: early rows hold more pairs),
	// accumulate contacts and funnel tallies locally, and flush once.
	m := activeMetrics.Load()
	shards := make([][]Contact, workers)
	var nextRow atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var timer obs.Timer
			if m != nil {
				timer = m.stageMS.Start()
			}
			al := dtw.NewAligner()
			var local []Contact
			var funnel sweepFunnel
			for {
				i := int(nextRow.Add(1)) - 1
				if i >= len(users)-1 {
					break
				}
				for j := i + 1; j < len(users); j++ {
					funnel.pairs++
					ev, ok := cascadeEvidence(al, &prep[i], &prep[j], cfg.MinSimilarity, &funnel)
					if !ok {
						continue
					}
					c := Contact{A: i, B: j, Evidence: ev}
					if cfg.Model != nil {
						c.Score = cfg.Model.Score(ev)
						c.Detected = cfg.Model.Predict(ev)
					}
					local = append(local, c)
				}
			}
			shards[w] = local
			funnel.flush(m)
			timer.Stop()
		}(w)
	}
	wg.Wait()

	total := 0
	for _, s := range shards {
		total += len(s)
	}
	out := make([]Contact, 0, total)
	for _, s := range shards {
		out = append(out, s...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return topKFilter(out, len(users), cfg.TopK), nil
}

// sweepUser is one user's prepared comparison state.
type sweepUser struct {
	side
	rate *dtw.Series
}

// cascadeEvidence compares two prepared users through the lower-bound
// cascade. It reports (evidence, true) only for pairs whose frame-rate
// similarity reaches minSim, and that evidence is byte-identical to
// PairEvidenceWith's: a surviving cascade computes the identical banded
// DTW distance, and the remaining features never depend on the pruning.
func cascadeEvidence(al *dtw.Aligner, a, b *sweepUser, minSim float64, f *sweepFunnel) (Evidence, bool) {
	sim, stage := al.CascadeSimilarity(a.rate, b.rate, minSim)
	switch stage {
	case dtw.StageLBKim:
		f.lbKim++
		return Evidence{}, false
	case dtw.StageLBKeogh:
		f.lbKeogh++
		return Evidence{}, false
	case dtw.StageAbandoned:
		f.abandoned++
		return Evidence{}, false
	}
	f.fullDTW++
	if sim < minSim {
		return Evidence{}, false
	}
	f.kept++
	return finishEvidence(al, &a.side, &b.side, sim), true
}

// topKFilter keeps contacts ranking in the top k of at least one endpoint,
// ordered by similarity with pair index breaking ties — a deterministic
// rule, so the result is independent of shard scheduling. k = 0 keeps all.
// Contacts must arrive (and leave) sorted by (A, B).
func topKFilter(contacts []Contact, users, k int) []Contact {
	if k <= 0 || len(contacts) == 0 {
		return contacts
	}
	per := make([][]int, users) // contact indices per endpoint
	for i, c := range contacts {
		per[c.A] = append(per[c.A], i)
		per[c.B] = append(per[c.B], i)
	}
	keep := make([]bool, len(contacts))
	for _, idx := range per {
		if len(idx) > k {
			sort.SliceStable(idx, func(x, y int) bool {
				sx, sy := contacts[idx[x]].Evidence.Similarity, contacts[idx[y]].Evidence.Similarity
				if sx != sy {
					return sx > sy
				}
				return idx[x] < idx[y]
			})
			idx = idx[:k]
		}
		for _, i := range idx {
			keep[i] = true
		}
	}
	out := contacts[:0]
	for i, c := range contacts {
		if keep[i] {
			out = append(out, c)
		}
	}
	return out
}
