package correlation_test

import (
	"testing"
	"time"

	"ltefp/internal/appmodel"
	"ltefp/internal/attack/correlation"
	"ltefp/internal/lte/dci"
	"ltefp/internal/lte/operator"
	"ltefp/internal/trace"
)

const sec = time.Second

func TestRateSeries(t *testing.T) {
	tr := trace.Trace{
		{At: 100 * time.Millisecond, Bytes: 10},
		{At: 900 * time.Millisecond, Bytes: 20},
		{At: 1500 * time.Millisecond, Bytes: 30},
		{At: 5 * sec, Bytes: 40}, // outside [0, 3s)
	}
	got := correlation.RateSeries(tr, sec, 0, 3*sec)
	want := []float64{2, 1, 0}
	if len(got) != len(want) {
		t.Fatalf("series length %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bin %d = %v, want %v", i, got[i], want[i])
		}
	}
	bytes := correlation.ByteRateSeries(tr, sec, 0, 3*sec)
	if bytes[0] != 30 || bytes[1] != 30 || bytes[2] != 0 {
		t.Fatalf("byte series = %v", bytes)
	}
}

func TestRateSeriesPanicsOnBadBin(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad bin accepted")
		}
	}()
	correlation.RateSeries(nil, 0, 0, sec)
}

// TestPairEvidenceDegenerateSpan is the regression test for silently-scored
// garbage evidence: an empty/inverted span or non-positive bin used to
// produce empty rate series (or panic) whose zero similarity entered the
// contact classifier as a real measurement. The contract is now the zero
// Evidence, without panicking even for bin <= 0.
func TestPairEvidenceDegenerateSpan(t *testing.T) {
	a, b := mirrorTraces(10)
	cases := []struct {
		name            string
		bin, start, end time.Duration
	}{
		{"empty_span", sec, 5 * sec, 5 * sec},
		{"inverted_span", sec, 8 * sec, 2 * sec},
		{"zero_bin", 0, 0, 10 * sec},
		{"negative_bin", -sec, 0, 10 * sec},
	}
	for _, c := range cases {
		if got := correlation.PairEvidence(a, b, c.bin, c.start, c.end); got != (correlation.Evidence{}) {
			t.Errorf("%s: PairEvidence = %+v, want zero Evidence", c.name, got)
		}
	}
	// The guard must not eat real comparisons.
	if got := correlation.PairEvidence(a, b, sec, 0, 10*sec); got.Similarity == 0 {
		t.Fatal("valid span produced zero similarity for mirrored traces")
	}
}

// mirrorTraces builds a synthetic communicating pair: B receives what A
// sends, one bin later.
func mirrorTraces(n int) (a, b trace.Trace) {
	for i := 0; i < n; i++ {
		at := time.Duration(i) * sec
		// A speaks in bursts every third second.
		if i%3 == 0 {
			for j := 0; j < 5; j++ {
				a = append(a, trace.Record{At: at, Dir: dci.Uplink, Bytes: 150})
				b = append(b, trace.Record{At: at + 80*time.Millisecond, Dir: dci.Downlink, Bytes: 150})
			}
		}
		a = append(a, trace.Record{At: at, Dir: dci.Downlink, Bytes: 60})
		b = append(b, trace.Record{At: at, Dir: dci.Uplink, Bytes: 60})
	}
	return a, b
}

func independentTrace(n, phase int) trace.Trace {
	var out trace.Trace
	for i := 0; i < n; i++ {
		if (i+phase)%4 < 2 {
			for j := 0; j < 3+((i*7+phase)%4); j++ {
				out = append(out, trace.Record{
					At:  time.Duration(i)*sec + time.Duration(j*37)*time.Millisecond,
					Dir: dci.Downlink, Bytes: 100 + (i*13+phase*29)%200,
				})
			}
		}
	}
	return out
}

func TestPairEvidenceSeparates(t *testing.T) {
	a, b := mirrorTraces(60)
	talking := correlation.PairEvidence(a, b, sec, 0, 60*sec)
	x := independentTrace(60, 0)
	y := independentTrace(60, 2)
	apart := correlation.PairEvidence(x, y, sec, 0, 60*sec)

	if talking.Similarity <= apart.Similarity {
		t.Fatalf("communicating similarity %.3f not above independent %.3f",
			talking.Similarity, apart.Similarity)
	}
	if talking.CrossUD <= apart.CrossUD {
		t.Fatalf("communicating cross-correlation %.3f not above independent %.3f",
			talking.CrossUD, apart.CrossUD)
	}
	if talking.VolumeRatio < 0.8 {
		t.Fatalf("mirrored volumes ratio %.3f", talking.VolumeRatio)
	}
}

func TestModelLearnsContact(t *testing.T) {
	var samples []correlation.Evidence
	for i := 0; i < 12; i++ {
		a, b := mirrorTraces(40 + i)
		e := correlation.PairEvidence(a, b, sec, 0, time.Duration(40+i)*sec)
		e.Communicating = true
		samples = append(samples, e)

		x := independentTrace(40+i, i)
		y := independentTrace(40+i, i+3)
		e2 := correlation.PairEvidence(x, y, sec, 0, time.Duration(40+i)*sec)
		samples = append(samples, e2)
	}
	m, err := correlation.TrainModel(samples, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, b := mirrorTraces(55)
	pos := correlation.PairEvidence(a, b, sec, 0, 55*sec)
	if !m.Predict(pos) {
		t.Fatalf("missed a communicating pair (score %.3f)", m.Score(pos))
	}
	x := independentTrace(55, 1)
	y := independentTrace(55, 5)
	neg := correlation.PairEvidence(x, y, sec, 0, 55*sec)
	if m.Predict(neg) {
		t.Fatalf("false contact on independent pair (score %.3f)", m.Score(neg))
	}
	if m.Score(pos) <= m.Score(neg) {
		t.Fatal("scores not ordered")
	}
}

func TestTrainModelEmpty(t *testing.T) {
	if _, err := correlation.TrainModel(nil, 1); err == nil {
		t.Fatal("empty training accepted")
	}
}

func TestCollectPairEndToEnd(t *testing.T) {
	app, err := appmodel.ByName("WhatsApp Call")
	if err != nil {
		t.Fatal(err)
	}
	pos, err := correlation.CollectPair(correlation.PairSpec{
		Profile:       operator.Lab(),
		App:           app,
		Communicating: true,
		Duration:      20 * sec,
		Seed:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	neg, err := correlation.CollectPair(correlation.PairSpec{
		Profile:       operator.Lab(),
		App:           app,
		Communicating: false,
		Duration:      20 * sec,
		Seed:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !pos.Communicating || neg.Communicating {
		t.Fatal("labels wrong")
	}
	if pos.Similarity <= neg.Similarity {
		t.Fatalf("simulated conversation similarity %.3f not above coincidence %.3f",
			pos.Similarity, neg.Similarity)
	}
}

func TestCollectPairRejectsStreaming(t *testing.T) {
	app, err := appmodel.ByName("Netflix")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := correlation.CollectPair(correlation.PairSpec{
		Profile: operator.Lab(), App: app, Duration: sec,
	}); err == nil {
		t.Fatal("streaming app accepted")
	}
}

func TestCollectPairsLayout(t *testing.T) {
	app, err := appmodel.ByName("Telegram")
	if err != nil {
		t.Fatal(err)
	}
	ev, err := correlation.CollectPairs(correlation.PairSpec{
		Profile:  operator.Lab(),
		App:      app,
		Duration: 15 * sec,
		Seed:     6,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 4 {
		t.Fatalf("%d evidence samples, want 4", len(ev))
	}
	if !ev[0].Communicating || !ev[1].Communicating || ev[2].Communicating || ev[3].Communicating {
		t.Fatal("label layout wrong: want communicating pairs first")
	}
}
