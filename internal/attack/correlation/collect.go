package correlation

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"ltefp/internal/appmodel"
	"ltefp/internal/capture"
	"ltefp/internal/lte/operator"
	"ltefp/internal/ml/dataset"
	"ltefp/internal/sim"
	"ltefp/internal/sniffer"
	"ltefp/internal/trace"
)

// pairRNG derives the conversation-content stream for a pair capture.
func pairRNG(seed uint64) *sim.RNG {
	return sim.NewRNG(seed ^ 0xC0FFEE12345)
}

// noisy reports whether the setting adds on-phone background traffic to
// the victims: commercial-network phones always carry OS chatter, while
// the paper's lab pairs ran the conversation app alone.
func noisy(spec PairSpec) bool { return spec.Profile.BackgroundUEs > 0 }

// lightNoiseApps names the always-on OS chatter overlaid on commercial
// victims (push, mail sync, weather) — light enough that a conversation
// still dominates the trace, as on a phone that is actively in use.
var lightNoiseApps = map[string]bool{
	"PushNotifications": true,
	"EmailSync":         true,
	"Weather":           true,
}

// withPairNoise overlays a victim's conversation with one or two
// independent light background apps on commercial settings.
func withPairNoise(spec PairSpec, g *sim.RNG, env appmodel.Env, conv []appmodel.Arrival) []appmodel.Arrival {
	if !noisy(spec) {
		return conv
	}
	var pool []appmodel.App
	for _, a := range appmodel.BackgroundPool() {
		if lightNoiseApps[a.Name] {
			pool = append(pool, a)
		}
	}
	streams := [][]appmodel.Arrival{conv}
	for i := 0; i < 1+g.IntN(2); i++ {
		bg := pool[g.IntN(len(pool))]
		streams = append(streams, bg.SessionEnv(g, spec.Duration, 1, env))
	}
	return appmodel.MergeSessions(streams...)
}

// PairSpec describes one two-victim capture.
type PairSpec struct {
	// Profile is the network environment of both victims' cells.
	Profile operator.Profile
	// App is the messaging or VoIP app under test.
	App appmodel.App
	// Communicating selects a real conversation (paired traffic) versus
	// two independent sessions of the same app — the hard negatives the
	// contact classifier must reject.
	Communicating bool
	// Duration is the conversation length.
	Duration time.Duration
	// Bin is the similarity window T_w (default 1 s).
	Bin time.Duration
	// Seed makes the pair reproducible.
	Seed uint64
	// Sniffer and ApplyProfileLoss configure capture fidelity.
	Sniffer          sniffer.Config
	ApplyProfileLoss bool
}

// CollectPair runs one two-victim capture (victims in adjacent cells, one
// sniffer each) and reduces it to contact evidence.
func CollectPair(spec PairSpec) (Evidence, error) {
	if spec.Bin <= 0 {
		spec.Bin = DefaultBin
	}
	a, b, start, end, err := CollectPairTraces(spec)
	if err != nil {
		return Evidence{}, err
	}
	ev := PairEvidence(a, b, spec.Bin, start, end)
	ev.Communicating = spec.Communicating
	return ev, nil
}

// CollectPairTraces runs one two-victim capture and returns the two
// victims' raw radio traces with their common span — the input for
// evidence extraction at any similarity window T_w.
func CollectPairTraces(spec PairSpec) (a, b trace.Trace, start, end time.Duration, err error) {
	if spec.App.Category == appmodel.Streaming {
		return nil, nil, 0, 0, fmt.Errorf("correlation: %s is a streaming app; the attack covers messaging and VoIP", spec.App.Name)
	}
	start = 500 * time.Millisecond
	sessions := []capture.Session{
		{UE: "victim-A", CellID: 1, Start: start, Duration: spec.Duration},
		{UE: "victim-B", CellID: 2, Start: start, Duration: spec.Duration},
	}
	g := pairRNG(spec.Seed)
	env := appmodel.Env{Quality: (spec.Profile.CQIMean - 1) / 14}
	if spec.Communicating {
		// One conversation, two derived sides, generated under the
		// network conditions of the setting's typical channel.
		caller, callee := appmodel.Paired(spec.App, g, spec.Duration, 1, env)
		sessions[0].Arrivals = withPairNoise(spec, g, env, caller)
		sessions[1].Arrivals = withPairNoise(spec, g, env, callee)
	} else if noisy(spec) {
		sideA := spec.App.SessionEnv(g, spec.Duration, 1, env)
		sideB := spec.App.SessionEnv(g, spec.Duration, 1, env)
		sessions[0].Arrivals = withPairNoise(spec, g, env, sideA)
		sessions[1].Arrivals = withPairNoise(spec, g, env, sideB)
	} else {
		sessions[0].App = spec.App
		sessions[1].App = spec.App
	}
	res, err := capture.Run(capture.Scenario{
		Seed: spec.Seed,
		Cells: []capture.Cell{
			{ID: 1, Profile: spec.Profile},
			{ID: 2, Profile: spec.Profile},
		},
		Sessions:         sessions,
		Sniffer:          spec.Sniffer,
		ApplyProfileLoss: spec.ApplyProfileLoss,
	})
	if err != nil {
		return nil, nil, 0, 0, fmt.Errorf("correlation: %w", err)
	}
	return res.UserTrace("victim-A"), res.UserTrace("victim-B"), start, start + spec.Duration, nil
}

// CollectPairs gathers n communicating and n independent pairs for one app
// and setting, in parallel, deterministically in seed.
func CollectPairs(spec PairSpec, n int) ([]Evidence, error) {
	out := make([]Evidence, 2*n)
	errs := make([]error, 2*n)
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := 0; i < 2*n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			s := spec
			s.Communicating = i < n
			s.Seed = spec.Seed*0x01000193 + uint64(i)*0x10001 + 7
			out[i], errs[i] = CollectPair(s)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// newEvidenceDataset converts evidence samples into a dataset for the
// logistic regression.
func newEvidenceDataset(samples []Evidence) *dataset.Dataset {
	ds := dataset.New(classNames, featureNames)
	for _, e := range samples {
		y := 0
		if e.Communicating {
			y = 1
		}
		ds.Add(e.vector(), y)
	}
	return ds
}
