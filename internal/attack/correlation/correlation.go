// Package correlation implements Attack III of the paper: deciding whether
// two users are talking to each other from nothing but their radio-layer
// traffic patterns. Each user's trace is reduced to a per-second
// traffic-rate series (the paper's T_w = 1 s windows of T_a frames), pairs
// of series are compared with dynamic time warping (Eq. 1, Table VI), and a
// logistic regression over the similarity evidence decides contact versus
// coincidence (Table VII).
package correlation

import (
	"fmt"
	"math"
	"time"

	"ltefp/internal/lte/dci"
	"ltefp/internal/ml/dtw"
	"ltefp/internal/ml/logreg"
	"ltefp/internal/trace"
)

// DefaultBin is the paper's default similarity window T_w.
const DefaultBin = time.Second

// RateSeries reduces a trace to per-bin frame counts over [start, end).
func RateSeries(t trace.Trace, bin, start, end time.Duration) []float64 {
	if bin <= 0 {
		panic("correlation: non-positive bin")
	}
	n := int((end - start + bin - 1) / bin) // ceil: a partial last bin counts
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	for _, r := range t {
		if r.At < start || r.At >= end {
			continue
		}
		out[int((r.At-start)/bin)]++
	}
	return out
}

// ByteRateSeries reduces a trace to per-bin byte volumes over [start, end).
func ByteRateSeries(t trace.Trace, bin, start, end time.Duration) []float64 {
	if bin <= 0 {
		panic("correlation: non-positive bin")
	}
	n := int((end - start + bin - 1) / bin)
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	for _, r := range t {
		if r.At < start || r.At >= end {
			continue
		}
		out[int((r.At-start)/bin)] += float64(r.Bytes)
	}
	return out
}

// Evidence is the per-pair feature vector the contact classifier consumes,
// plus the ground-truth label used in training and evaluation.
type Evidence struct {
	// Similarity is D(T_w, T_a): the DTW similarity of the two users'
	// frame-rate series — the quantity Table VI reports.
	Similarity float64
	// ByteSimilarity is the DTW similarity of the byte-rate series.
	ByteSimilarity float64
	// CrossUD is the peak normalised cross-correlation between one side's
	// uplink byte rate and the other side's downlink byte rate (what A
	// sends, B receives).
	CrossUD float64
	// VolumeRatio is min/max of the two users' total traffic volumes.
	VolumeRatio float64

	// Communicating is the ground truth.
	Communicating bool
}

// vector flattens the evidence for the logistic regression.
func (e Evidence) vector() []float64 {
	return []float64{e.Similarity, e.ByteSimilarity, e.CrossUD, e.VolumeRatio}
}

// featureNames names the evidence features.
var featureNames = []string{"dtw_rate", "dtw_bytes", "cross_ud", "volume_ratio"}

// PairEvidence computes the evidence for two users' traces over the common
// span [start, end).
func PairEvidence(a, b trace.Trace, bin, start, end time.Duration) Evidence {
	return PairEvidenceWith(dtw.NewAligner(), a, b, bin, start, end)
}

// PairEvidenceWith is PairEvidence reusing a caller-owned DTW aligner, so
// pairwise sweeps amortise the normalization and DP-row buffers across
// every comparison. The aligner must not be shared between goroutines.
//
// A degenerate comparison — non-positive bin or an empty span (end <=
// start) — returns the zero Evidence. Callers must treat that as "no
// comparison was made", not as measured dissimilarity: before this guard,
// such spans produced empty rate series whose zero scores were fed to the
// contact classifier as if they were real observations.
func PairEvidenceWith(al *dtw.Aligner, a, b trace.Trace, bin, start, end time.Duration) Evidence {
	if bin <= 0 || end <= start {
		return Evidence{}
	}
	sa := buildSide(a, bin, start, end)
	sb := buildSide(b, bin, start, end)
	ev, _ := evidenceBetween(al, &sa, &sb)
	return ev
}

// side is one user's comparison-ready view of a span: the four rate series
// every pairwise comparison consumes plus the total volume. It used to be
// rebuilt eight-series-at-a-time inside every PairEvidenceWith call (four
// FilterDirection copies per pair); building it once per user and reusing
// it across all of that user's pairs is what makes the many-user sweep's
// per-pair work start at the DTW cascade instead of at trace scans.
type side struct {
	rate, bytes []float64 // per-bin frame counts and byte volumes
	ul, dl      []float64 // per-bin byte volumes split by direction
	vol         float64   // sum of bytes — the volume-ratio input
}

// buildSide reduces a trace to its comparison series in a single pass.
// The per-bin accumulation visits records in trace order, exactly like the
// old RateSeries/ByteRateSeries-over-FilterDirection stack, so every float
// lands with the identical value bit for bit.
func buildSide(t trace.Trace, bin, start, end time.Duration) side {
	if bin <= 0 {
		panic("correlation: non-positive bin")
	}
	n := int((end - start + bin - 1) / bin)
	if n <= 0 {
		return side{}
	}
	s := side{
		rate:  make([]float64, n),
		bytes: make([]float64, n),
		ul:    make([]float64, n),
		dl:    make([]float64, n),
	}
	for _, r := range t {
		if r.At < start || r.At >= end {
			continue
		}
		i := int((r.At - start) / bin)
		s.rate[i]++
		s.bytes[i] += float64(r.Bytes)
		switch r.Dir {
		case dci.Uplink:
			s.ul[i] += float64(r.Bytes)
		case dci.Downlink:
			s.dl[i] += float64(r.Bytes)
		}
	}
	s.vol = sum(s.bytes)
	return s
}

// evidenceBetween assembles the full evidence for two prepared sides. The
// returned Stage is always dtw.StageFull here (the rate similarity is
// computed unconditionally); cascadeEvidence is the pruning variant.
func evidenceBetween(al *dtw.Aligner, a, b *side) (Evidence, dtw.Stage) {
	return finishEvidence(al, a, b, al.Similarity(a.rate, b.rate)), dtw.StageFull
}

// finishEvidence completes an Evidence whose frame-rate similarity has
// already been computed (by the plain path or by a surviving cascade —
// both produce the identical value).
func finishEvidence(al *dtw.Aligner, a, b *side, rateSim float64) Evidence {
	cross := math.Max(peakCrossCorr(a.ul, b.dl, 3), peakCrossCorr(b.ul, a.dl, 3))
	ratio := 0.0
	if a.vol > 0 && b.vol > 0 {
		ratio = math.Min(a.vol, b.vol) / math.Max(a.vol, b.vol)
	}
	return Evidence{
		Similarity:     rateSim,
		ByteSimilarity: al.Similarity(a.bytes, b.bytes),
		CrossUD:        cross,
		VolumeRatio:    ratio,
	}
}

// peakCrossCorr returns the maximum Pearson correlation between x and y
// over integer lags in [-maxLag, maxLag], clamped to [0, 1].
func peakCrossCorr(x, y []float64, maxLag int) float64 {
	best := 0.0
	for lag := -maxLag; lag <= maxLag; lag++ {
		if c := corrAtLag(x, y, lag); c > best {
			best = c
		}
	}
	return best
}

// corrAtLag computes Pearson correlation of x[i] against y[i+lag]. Two
// passes over the overlap replace the old paired-slice copies, keeping the
// float accumulation order (and therefore the result bits) identical.
func corrAtLag(x, y []float64, lag int) float64 {
	var sumX, sumY float64
	n := 0
	for i := range x {
		j := i + lag
		if j < 0 || j >= len(y) {
			continue
		}
		sumX += x[i]
		sumY += y[j]
		n++
	}
	if n < 3 {
		return 0
	}
	mx, my := sumX/float64(n), sumY/float64(n)
	var num, dx, dy float64
	for i := range x {
		j := i + lag
		if j < 0 || j >= len(y) {
			continue
		}
		a, b := x[i]-mx, y[j]-my
		num += a * b
		dx += a * a
		dy += b * b
	}
	if dx <= 0 || dy <= 0 {
		return 0
	}
	return num / math.Sqrt(dx*dy)
}

func sum(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// Model is the trained contact classifier.
type Model struct {
	lr *logreg.Model
}

// classNames for the binary decision.
var classNames = []string{"independent", "communicating"}

// TrainModel fits the logistic regression on labelled evidence.
func TrainModel(samples []Evidence, seed uint64) (*Model, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("correlation: no training samples")
	}
	ds := newEvidenceDataset(samples)
	m, err := logreg.Train(ds, logreg.Config{C: 1, Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("correlation: %w", err)
	}
	return &Model{lr: m}, nil
}

// Predict reports whether the evidence indicates contact.
func (m *Model) Predict(e Evidence) bool {
	return m.lr.Predict(e.vector()) == 1
}

// Score returns the model's contact probability.
func (m *Model) Score(e Evidence) float64 {
	return m.lr.PredictProba(e.vector())[1]
}
