package correlation

import (
	"sync/atomic"

	"ltefp/internal/obs"
)

// sweepMetrics holds the package's sweep-funnel instrumentation. A nil
// *sweepMetrics (the default) disables it; Sweep loads the pointer once per
// call and workers tally locally, flushing one Add per counter per shard,
// so the per-pair hot path never touches an atomic.
type sweepMetrics struct {
	pairsTotal    *obs.Counter
	prunedLBKim   *obs.Counter
	prunedLBKeogh *obs.Counter
	abandoned     *obs.Counter
	fullDTW       *obs.Counter
	kept          *obs.Counter
	stageMS       *obs.Histogram
}

var activeMetrics atomic.Pointer[sweepMetrics]

// SetMetrics points the sweep instrumentation at a scope: the
// pairs_total → pruned_lb_kim / pruned_lb_keogh / abandoned → full_dtw →
// kept funnel counters and the per-shard stage_ms latency histogram. A
// disabled scope turns instrumentation off. Safe to call concurrently with
// sweeps.
func SetMetrics(sc obs.Scope) {
	if !sc.Enabled() {
		activeMetrics.Store(nil)
		return
	}
	activeMetrics.Store(&sweepMetrics{
		pairsTotal:    sc.Counter("pairs_total"),
		prunedLBKim:   sc.Counter("pruned_lb_kim"),
		prunedLBKeogh: sc.Counter("pruned_lb_keogh"),
		abandoned:     sc.Counter("abandoned"),
		fullDTW:       sc.Counter("full_dtw"),
		kept:          sc.Counter("kept"),
		stageMS:       sc.Histogram("stage_ms", nil),
	})
}

// sweepFunnel is one shard's local funnel tally.
type sweepFunnel struct {
	pairs, lbKim, lbKeogh, abandoned, fullDTW, kept int64
}

// flush publishes the shard's tally (no-op when instrumentation is off).
func (f *sweepFunnel) flush(m *sweepMetrics) {
	if m == nil {
		return
	}
	m.pairsTotal.Add(f.pairs)
	m.prunedLBKim.Add(f.lbKim)
	m.prunedLBKeogh.Add(f.lbKeogh)
	m.abandoned.Add(f.abandoned)
	m.fullDTW.Add(f.fullDTW)
	m.kept.Add(f.kept)
}
