package correlation_test

import (
	"fmt"
	"testing"
	"time"

	"ltefp/internal/attack/correlation"
	"ltefp/internal/lte/dci"
	"ltefp/internal/ml/dtw"
	"ltefp/internal/obs"
	"ltefp/internal/sim"
	"ltefp/internal/trace"
)

// sweepPopulation builds n synthetic users with deliberately varied radio
// behaviour: mirrored conversation pairs (users 2k ↔ 2k+1 for k < pairs),
// plus independent users drawn from four activity archetypes so most pairs
// are dissimilar enough for the cascade to prune.
func sweepPopulation(n, pairs, seconds int, seed uint64) []correlation.UserTrace {
	g := sim.NewRNG(seed)
	users := make([]correlation.UserTrace, n)
	for k := 0; k < pairs && 2*k+1 < n; k++ {
		a, b := plantedPair(g, seconds)
		users[2*k] = correlation.UserTrace{ID: fmt.Sprintf("pair%d-a", k), Trace: a}
		users[2*k+1] = correlation.UserTrace{ID: fmt.Sprintf("pair%d-b", k), Trace: b}
	}
	for u := 2 * pairs; u < n; u++ {
		users[u] = correlation.UserTrace{ID: fmt.Sprintf("solo%d", u), Trace: archetypeTrace(g, u, seconds)}
	}
	return users
}

// plantedPair synthesises one communicating conversation, randomised per
// pair so no two pairs are clones: B receives what A sends 80 ms later.
func plantedPair(g *sim.RNG, seconds int) (a, b trace.Trace) {
	for i := 0; i < seconds; i++ {
		at := time.Duration(i) * time.Second
		if g.Bool(0.4) { // speaker burst this second
			burst := 3 + g.IntN(5)
			bytes := 120 + g.IntN(120)
			for j := 0; j < burst; j++ {
				off := time.Duration(j*13) * time.Millisecond
				a = append(a, trace.Record{At: at + off, Dir: dci.Uplink, Bytes: bytes})
				b = append(b, trace.Record{At: at + off + 80*time.Millisecond, Dir: dci.Downlink, Bytes: bytes})
			}
		}
		a = append(a, trace.Record{At: at, Dir: dci.Downlink, Bytes: 60})
		b = append(b, trace.Record{At: at, Dir: dci.Uplink, Bytes: 60})
	}
	return a, b
}

// archetypeTrace synthesises one independent user from one of four traffic
// shapes (steady VoIP-like, bursty messaging, sparse background, periodic
// sync), randomised in phase and amplitude.
func archetypeTrace(g *sim.RNG, u, seconds int) trace.Trace {
	var out trace.Trace
	phase := g.IntN(7)
	amp := 1 + g.IntN(4)
	for i := 0; i < seconds; i++ {
		at := time.Duration(i) * time.Second
		switch u % 4 {
		case 0: // steady small packets every second
			for j := 0; j < amp; j++ {
				out = append(out, trace.Record{At: at + time.Duration(j*11)*time.Millisecond,
					Dir: dci.Uplink, Bytes: 80 + g.IntN(40)})
			}
		case 1: // bursty: quiet, then clumps
			if (i+phase)%5 < 2 {
				for j := 0; j < 4*amp; j++ {
					out = append(out, trace.Record{At: at + time.Duration(j*9)*time.Millisecond,
						Dir: dci.Downlink, Bytes: 300 + g.IntN(500)})
				}
			}
		case 2: // sparse background chatter
			if g.Bool(0.25) {
				out = append(out, trace.Record{At: at, Dir: dci.Downlink, Bytes: 60 + g.IntN(30)})
			}
		case 3: // periodic sync spikes
			if (i+phase)%8 == 0 {
				for j := 0; j < 10; j++ {
					out = append(out, trace.Record{At: at + time.Duration(j*5)*time.Millisecond,
						Dir: dci.Uplink, Bytes: 1200})
				}
			}
		}
	}
	return out
}

// bruteForceSweep is the unaccelerated reference: the nested
// PairEvidenceWith loop plus the same threshold and top-K rules, written
// independently of Sweep's sharding and pruning.
func bruteForceSweep(users []correlation.UserTrace, cfg correlation.SweepConfig) []correlation.Contact {
	if cfg.Bin <= 0 {
		cfg.Bin = correlation.DefaultBin
	}
	al := dtw.NewAligner()
	var out []correlation.Contact
	for i := 0; i < len(users); i++ {
		for j := i + 1; j < len(users); j++ {
			ev := correlation.PairEvidenceWith(al, users[i].Trace, users[j].Trace, cfg.Bin, cfg.Start, cfg.End)
			if ev.Similarity < cfg.MinSimilarity {
				continue
			}
			c := correlation.Contact{A: i, B: j, Evidence: ev}
			if cfg.Model != nil {
				c.Score = cfg.Model.Score(ev)
				c.Detected = cfg.Model.Predict(ev)
			}
			out = append(out, c)
		}
	}
	if cfg.TopK > 0 {
		// Independent top-K: a contact survives if it ranks in the top K of
		// either endpoint by (similarity desc, pair order asc).
		rank := func(user int) map[int]bool {
			var mine []int
			for idx, c := range out {
				if c.A == user || c.B == user {
					mine = append(mine, idx)
				}
			}
			for x := 1; x < len(mine); x++ { // insertion sort: stable, simple
				for y := x; y > 0; y-- {
					sy, sp := out[mine[y]].Evidence.Similarity, out[mine[y-1]].Evidence.Similarity
					if sy > sp || (sy == sp && mine[y] < mine[y-1]) {
						mine[y], mine[y-1] = mine[y-1], mine[y]
					} else {
						break
					}
				}
			}
			keep := map[int]bool{}
			for x := 0; x < len(mine) && x < cfg.TopK; x++ {
				keep[mine[x]] = true
			}
			return keep
		}
		keep := map[int]bool{}
		for u := 0; u < len(users); u++ {
			for idx := range rank(u) {
				keep[idx] = true
			}
		}
		var filtered []correlation.Contact
		for idx, c := range out {
			if keep[idx] {
				filtered = append(filtered, c)
			}
		}
		out = filtered
	}
	return out
}

// TestSweepMatchesBruteForce pins the exactness contract over a 56-user
// population: for every threshold and top-K combination, Sweep's output —
// membership, ordering, and every Evidence bit — must equal the brute-force
// nested loop's.
func TestSweepMatchesBruteForce(t *testing.T) {
	users := sweepPopulation(56, 8, 45, 21)
	span := 45 * time.Second
	for _, tc := range []struct {
		name   string
		minSim float64
		topK   int
	}{
		{"no_threshold", 0, 0},
		{"low_threshold", 0.3, 0},
		{"high_threshold", 0.7, 0},
		{"topk", 0.3, 3},
		{"topk_tight", 0, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := correlation.SweepConfig{
				End:           span,
				MinSimilarity: tc.minSim,
				TopK:          tc.topK,
			}
			got, err := correlation.Sweep(users, cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteForceSweep(users, cfg)
			if len(got) != len(want) {
				t.Fatalf("Sweep returned %d contacts, brute force %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("contact %d differs:\n sweep: %+v\n brute: %+v", i, got[i], want[i])
				}
			}
			if tc.minSim == 0 && tc.topK == 0 && len(got) != 56*55/2 {
				t.Fatalf("unfiltered sweep returned %d contacts, want all %d pairs", len(got), 56*55/2)
			}
		})
	}
}

// TestSweepWorkerCountInvariance: the contract holds for any shard count.
func TestSweepWorkerCountInvariance(t *testing.T) {
	users := sweepPopulation(24, 4, 30, 22)
	cfg := correlation.SweepConfig{End: 30 * time.Second, MinSimilarity: 0.4}
	var ref []correlation.Contact
	for _, workers := range []int{1, 2, 7, 64} {
		cfg.Workers = workers
		got, err := correlation.Sweep(users, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = got
			continue
		}
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d contacts, want %d", workers, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: contact %d differs", workers, i)
			}
		}
	}
}

// TestSweepModelScoring: with a trained model attached, survivors carry the
// model's score and verdict for their (exact) evidence.
func TestSweepModelScoring(t *testing.T) {
	var samples []correlation.Evidence
	for i := 0; i < 10; i++ {
		a, b := mirrorTraces(40 + i)
		e := correlation.PairEvidence(a, b, sec, 0, time.Duration(40+i)*sec)
		e.Communicating = true
		samples = append(samples, e)
		x := independentTrace(40+i, i)
		y := independentTrace(40+i, i+3)
		samples = append(samples, correlation.PairEvidence(x, y, sec, 0, time.Duration(40+i)*sec))
	}
	model, err := correlation.TrainModel(samples, 1)
	if err != nil {
		t.Fatal(err)
	}
	users := sweepPopulation(12, 3, 40, 23)
	got, err := correlation.Sweep(users, correlation.SweepConfig{
		End: 40 * time.Second, MinSimilarity: 0.2, Model: model,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no contacts survived")
	}
	detected := 0
	for _, c := range got {
		if c.Score != model.Score(c.Evidence) || c.Detected != model.Predict(c.Evidence) {
			t.Fatalf("contact (%d,%d) score/verdict does not match the model", c.A, c.B)
		}
		if c.Detected {
			detected++
		}
	}
	if detected == 0 {
		t.Fatal("model detected no contacts in a population with mirrored pairs")
	}
}

// TestSweepFindsPlantedPairs: the mirrored conversation pairs must surface
// as the strongest contacts.
func TestSweepFindsPlantedPairs(t *testing.T) {
	users := sweepPopulation(20, 5, 50, 24)
	got, err := correlation.Sweep(users, correlation.SweepConfig{
		End: 50 * time.Second, MinSimilarity: 0.5, TopK: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	found := map[[2]int]bool{}
	for _, c := range got {
		found[[2]int{c.A, c.B}] = true
	}
	for k := 0; k < 5; k++ {
		if !found[[2]int{2 * k, 2*k + 1}] {
			t.Fatalf("planted pair (%d, %d) missing from top-1 contacts %v", 2*k, 2*k+1, found)
		}
	}
}

// TestSweepValidation: degenerate configurations are rejected or empty.
func TestSweepValidation(t *testing.T) {
	users := sweepPopulation(4, 1, 10, 25)
	if _, err := correlation.Sweep(users, correlation.SweepConfig{Start: 5 * sec, End: 5 * sec}); err == nil {
		t.Fatal("empty span accepted")
	}
	if _, err := correlation.Sweep(users, correlation.SweepConfig{End: 10 * sec, TopK: -1}); err == nil {
		t.Fatal("negative TopK accepted")
	}
	got, err := correlation.Sweep(users[:1], correlation.SweepConfig{End: 10 * sec})
	if err != nil || got != nil {
		t.Fatalf("single-user sweep = (%v, %v), want (nil, nil)", got, err)
	}
}

// TestSweepFunnelMetrics: the obs funnel must account for every pair
// exactly once and show live pruning on a prunable population.
func TestSweepFunnelMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	correlation.SetMetrics(reg.Scope("corr"))
	defer correlation.SetMetrics(obs.Scope{})

	users := sweepPopulation(40, 5, 45, 26)
	if _, err := correlation.Sweep(users, correlation.SweepConfig{
		End: 45 * time.Second, MinSimilarity: 0.6, Workers: 4,
	}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	pairs := snap.Counter("corr.pairs_total")
	kim := snap.Counter("corr.pruned_lb_kim")
	keogh := snap.Counter("corr.pruned_lb_keogh")
	abandoned := snap.Counter("corr.abandoned")
	full := snap.Counter("corr.full_dtw")
	if want := int64(40 * 39 / 2); pairs != want {
		t.Fatalf("pairs_total = %d, want %d", pairs, want)
	}
	if kim+keogh+abandoned+full != pairs {
		t.Fatalf("funnel does not add up: kim %d + keogh %d + abandoned %d + full %d != %d",
			kim, keogh, abandoned, full, pairs)
	}
	if kim+keogh+abandoned == 0 {
		t.Fatal("no pairs pruned at threshold 0.6 on a mostly-dissimilar population")
	}
	if full == 0 {
		t.Fatal("no pair reached full DTW")
	}
	if h, ok := snap.Histogram("corr.stage_ms"); !ok || h.Count != 4 {
		t.Fatalf("stage_ms histogram count = %v, want one observation per shard (4)", h)
	}
	// Metrics must never alter results: re-run without instrumentation.
	correlation.SetMetrics(obs.Scope{})
	with, err := correlation.Sweep(users, correlation.SweepConfig{End: 45 * time.Second, MinSimilarity: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	correlation.SetMetrics(reg.Scope("corr"))
	without, err := correlation.Sweep(users, correlation.SweepConfig{End: 45 * time.Second, MinSimilarity: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if len(with) != len(without) {
		t.Fatalf("metrics changed the contact count: %d vs %d", len(with), len(without))
	}
	for i := range with {
		if with[i] != without[i] {
			t.Fatalf("metrics changed contact %d", i)
		}
	}
}
