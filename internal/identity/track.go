// Cross-cell target tracking: the LTrack-style extension of identity
// mapping. Plaintext RNTI↔TMSI bindings only exist where a UE performs
// contention-based access; a handover admits the UE into the target cell
// via non-contention RACH, exposing no identity at all. The tracker closes
// that gap by chaining anonymous admissions to the victim's last known
// segment on timing (an admission right after the tracked RNTI fell
// silent) and traffic-fingerprint continuity (the app's rate and direction
// mix survive the cell change), re-identifying the target across cells
// despite RNTI churn and TMSI reallocation.
package identity

import (
	"sort"
	"time"

	"ltefp/internal/lte/dci"
	"ltefp/internal/lte/rnti"
	"ltefp/internal/sniffer"
	"ltefp/internal/trace"
)

// LinkKind says how a tracked segment was attributed to the target.
type LinkKind int

const (
	// LinkSeed is a plaintext RNTI↔TMSI binding for a known target TMSI.
	LinkSeed LinkKind = iota
	// LinkTMSI is a later plaintext binding matching another of the
	// target's known TMSIs (after GUTI reallocation).
	LinkTMSI
	// LinkHandover is an anonymous admission chained to the previous
	// segment by timing and traffic continuity.
	LinkHandover
)

// String renders the link kind.
func (k LinkKind) String() string {
	switch k {
	case LinkSeed:
		return "seed"
	case LinkTMSI:
		return "tmsi"
	case LinkHandover:
		return "handover"
	}
	return "unknown"
}

// Segment is one continuous stretch of the target's radio activity under
// one RNTI in one cell, as attributed by the tracker.
type Segment struct {
	CellID int
	RNTI   rnti.RNTI
	// TMSI is the target identity this segment is attributed to. For
	// handover links it is inherited from the chained-from segment, not
	// observed on air.
	TMSI uint32
	// Observed reports whether the TMSI was seen in plaintext during this
	// segment (false for handover-chained segments).
	Observed bool
	// From and To bound the segment's observed activity.
	From, To time.Duration
	// Link says how the segment was attributed.
	Link LinkKind
	// Confidence is 1 for plaintext links and the traffic-continuity score
	// in (0, 1] for handover links.
	Confidence float64
}

// TrackConfig tunes the cross-cell tracker.
type TrackConfig struct {
	// TMSIs are the target's known identities (the paper's threat model
	// grants the attacker the victim's TMSI history; ground truth supplies
	// it in simulation).
	TMSIs []uint32
	// HandoverWindow bounds how long after a tracked RNTI falls silent an
	// anonymous admission elsewhere may still be chained (default 500 ms:
	// the handover procedure plus scheduling slack).
	HandoverWindow time.Duration
	// ContinuityWindow is how much traffic on each side of the cell change
	// feeds the continuity score (default 1 s).
	ContinuityWindow time.Duration
	// MinContinuity rejects chains whose traffic profiles disagree
	// (default 0.35).
	MinContinuity float64
	// IdleGap is the silence that ends a segment — the operator's
	// inactivity release observed passively (default 12 s).
	IdleGap time.Duration
}

func (c *TrackConfig) defaults() {
	if c.HandoverWindow <= 0 {
		c.HandoverWindow = 500 * time.Millisecond
	}
	if c.ContinuityWindow <= 0 {
		c.ContinuityWindow = time.Second
	}
	if c.MinContinuity <= 0 {
		c.MinContinuity = 0.35
	}
	if c.IdleGap <= 0 {
		c.IdleGap = 12 * time.Second
	}
}

// burst is one continuous stretch of activity of one (cell, RNTI): the
// tracker's unit of attribution.
type burst struct {
	cell      int
	r         rnti.RNTI
	recs      trace.Trace // time-ordered view into the caller's records
	anonymous bool        // no plaintext identity near the start
	claimed   bool
}

func (b *burst) from() time.Duration { return b.recs[0].At }
func (b *burst) to() time.Duration   { return b.recs[len(b.recs)-1].At }

// identityLead is how far a plaintext binding may precede a burst's first
// data record (msg3/msg4 precede the first scheduled data) and identityLag
// how far it may trail it, for the burst still to count as identified.
const (
	identityLead = 200 * time.Millisecond
	identityLag  = 50 * time.Millisecond
)

// buildBursts splits every (cell, RNTI)'s records into bursts separated by
// idleGap silence, marking bursts that start without a nearby plaintext
// binding as anonymous. Bursts are returned sorted by start time.
func buildBursts(events []sniffer.IdentityEvent, records trace.Trace, idleGap time.Duration) []*burst {
	byKey := make(map[cellRNTI]trace.Trace)
	var keys []cellRNTI
	for _, rec := range records {
		k := cellRNTI{rec.CellID, rec.RNTI}
		if _, ok := byKey[k]; !ok {
			keys = append(keys, k)
		}
		byKey[k] = append(byKey[k], rec)
	}
	evTimes := make(map[cellRNTI][]time.Duration)
	for _, e := range events {
		k := cellRNTI{e.CellID, e.RNTI}
		evTimes[k] = append(evTimes[k], e.At)
	}
	for _, ts := range evTimes {
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	}
	identified := func(k cellRNTI, start time.Duration) bool {
		for _, t := range evTimes[k] {
			if t >= start-identityLead && t <= start+identityLag {
				return true
			}
		}
		return false
	}
	var out []*burst
	for _, k := range keys {
		recs := byKey[k]
		sort.SliceStable(recs, func(i, j int) bool { return recs[i].At < recs[j].At })
		lo := 0
		for i := 1; i <= len(recs); i++ {
			if i == len(recs) || recs[i].At-recs[i-1].At > idleGap {
				seg := recs[lo:i]
				out = append(out, &burst{
					cell: k.cell, r: k.r, recs: seg,
					anonymous: !identified(k, seg[0].At),
				})
				lo = i
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.from() != b.from() {
			return a.from() < b.from()
		}
		if a.cell != b.cell {
			return a.cell < b.cell
		}
		return a.r < b.r
	})
	return out
}

// profile summarises one side of a cell change for continuity scoring.
type profile struct {
	ul, dl int64 // bytes by direction
	n      int64 // records
}

func profileOf(recs trace.Trace, from, to time.Duration) profile {
	var p profile
	for _, r := range recs {
		if r.At < from || r.At >= to {
			continue
		}
		if r.Dir == dci.Downlink {
			p.dl += int64(r.Bytes)
		} else {
			p.ul += int64(r.Bytes)
		}
		p.n++
	}
	return p
}

// ratioSim compares two magnitudes as min/max in [0, 1]; two silences
// agree perfectly, silence against traffic not at all.
func ratioSim(a, b int64) float64 {
	if a == b {
		return 1
	}
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi == 0 {
		return 1
	}
	return float64(lo) / float64(hi)
}

// continuity scores how plausibly the traffic after a cell change
// continues the traffic before it: the mean ratio similarity of uplink
// volume, downlink volume, and scheduling density across the change.
func continuity(pre, post profile) float64 {
	return (ratioSim(pre.ul, post.ul) + ratioSim(pre.dl, post.dl) + ratioSim(pre.n, post.n)) / 3
}

// Track reconstructs the target's cross-cell timeline. Plaintext bindings
// for the configured TMSIs seed segments; every segment end is then
// checked against anonymous admissions in other cells within the handover
// window, and the best traffic-continuity candidate above the threshold
// extends the chain — hop after hop, until the trail goes cold.
func Track(events []sniffer.IdentityEvent, records trace.Trace, cfg TrackConfig) []Segment {
	cfg.defaults()
	want := make(map[uint32]struct{}, len(cfg.TMSIs))
	for _, t := range cfg.TMSIs {
		want[t] = struct{}{}
	}
	bursts := buildBursts(events, records, cfg.IdleGap)

	// Index plaintext bindings of the target's TMSIs by (cell, RNTI) and
	// time, to seed and re-seed the chain.
	type seedEv struct {
		at   time.Duration
		tmsi uint32
	}
	seedsByKey := make(map[cellRNTI][]seedEv)
	for _, e := range events {
		if !e.HasTMSI {
			continue
		}
		if _, ok := want[e.TMSI]; !ok {
			continue
		}
		k := cellRNTI{e.CellID, e.RNTI}
		seedsByKey[k] = append(seedsByKey[k], seedEv{e.At, e.TMSI})
	}

	type tracked struct {
		b    *burst
		seg  Segment
		hops int
	}
	var chain []tracked

	// Seed: bursts whose start is bound to a target TMSI in plaintext.
	first := true
	for _, b := range bursts {
		if b.anonymous || b.claimed {
			continue
		}
		k := cellRNTI{b.cell, b.r}
		for _, se := range seedsByKey[k] {
			if se.at >= b.from()-identityLead && se.at <= b.from()+identityLag {
				link := LinkTMSI
				if first {
					link = LinkSeed
					first = false
				}
				b.claimed = true
				chain = append(chain, tracked{b: b, seg: Segment{
					CellID: b.cell, RNTI: b.r, TMSI: se.tmsi, Observed: true,
					From: b.from(), To: b.to(), Link: link, Confidence: 1,
				}})
				break
			}
		}
	}

	// Chain: process segment ends in time order; each may hand the trail
	// to one anonymous admission elsewhere.
	for i := 0; i < len(chain); i++ {
		// Always extend from the earliest-ending unprocessed segment so
		// multi-hop itineraries chain in timeline order.
		for j := i + 1; j < len(chain); j++ {
			if chain[j].seg.To < chain[i].seg.To {
				chain[i], chain[j] = chain[j], chain[i]
			}
		}
		cur := chain[i]
		handAt := cur.seg.To
		pre := profileOf(cur.b.recs, handAt-cfg.ContinuityWindow, handAt+1)
		var best *burst
		bestScore := 0.0
		for _, cand := range bursts {
			if !cand.anonymous || cand.claimed || cand.cell == cur.seg.CellID {
				continue
			}
			if cand.from() <= handAt-identityLag || cand.from() > handAt+cfg.HandoverWindow {
				continue
			}
			post := profileOf(cand.recs, cand.from(), cand.from()+cfg.ContinuityWindow)
			if score := continuity(pre, post); score > bestScore ||
				(score == bestScore && best != nil && cand.from() < best.from()) {
				best, bestScore = cand, score
			}
		}
		if best == nil || bestScore < cfg.MinContinuity {
			continue
		}
		best.claimed = true
		chain = append(chain, tracked{b: best, hops: cur.hops + 1, seg: Segment{
			CellID: best.cell, RNTI: best.r, TMSI: cur.seg.TMSI, Observed: false,
			From: best.from(), To: best.to(), Link: LinkHandover,
			Confidence: bestScore * cur.seg.Confidence,
		}})
	}

	out := make([]Segment, len(chain))
	for i, tr := range chain {
		out[i] = tr.seg
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].From < out[j].From })
	return out
}

// TraceFor extracts every record covered by the tracked segments — the
// target's reconstructed cross-cell radio trace.
func TraceFor(segments []Segment, records trace.Trace) trace.Trace {
	var out trace.Trace
	for _, rec := range records {
		for i := range segments {
			s := &segments[i]
			if rec.CellID == s.CellID && rec.RNTI == s.RNTI &&
				rec.At >= s.From && rec.At <= s.To {
				out = append(out, rec)
				break
			}
		}
	}
	out.Sort()
	return out
}
