// Package identity implements the paper's step ①, target identity mapping:
// binding the ephemeral RNTIs a sniffer observes to stable subscriber
// identities (TMSIs) by reading the plaintext contention-resolution echo of
// the RRC connection setup (Rupprecht et al.'s passive method). The result
// is a per-user view of the capture: every RNTI interval a TMSI held, and
// therefore every radio-layer record attributable to that user — the
// prerequisite for fingerprinting a *specific* victim rather than a cell.
package identity

import (
	"sort"
	"time"

	"ltefp/internal/lte/rnti"
	"ltefp/internal/sniffer"
	"ltefp/internal/trace"
)

// Interval is one continuous assignment of an RNTI to a subscriber within
// one cell, as reconstructed by the attacker.
type Interval struct {
	CellID int
	RNTI   rnti.RNTI
	TMSI   uint32
	// From is when the binding was observed (connection setup).
	From time.Duration
	// To is when the binding provably ended: the RNTI was re-bound, or
	// activity ceased for longer than the idle gap. Open intervals carry
	// the maximum duration.
	To time.Duration
}

// openEnd marks an interval not yet closed by a later observation.
const openEnd = time.Duration(1<<63 - 1)

// Mapper holds the reconstructed RNTI↔TMSI timeline.
type Mapper struct {
	intervals []Interval
	byTMSI    map[uint32][]int // indices into intervals
}

// cellRNTI keys per-cell RNTI timelines.
type cellRNTI struct {
	cell int
	r    rnti.RNTI
}

// Build reconstructs the identity map from a capture: the sniffer's setup
// events open bindings; a later event for the same (cell, RNTI) closes the
// previous one; and a binding also closes once its RNTI has been silent for
// idleGap (the operator's inactivity release, observed as silence).
func Build(events []sniffer.IdentityEvent, records trace.Trace, idleGap time.Duration) *Mapper {
	evs := make([]sniffer.IdentityEvent, len(events))
	copy(evs, events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })

	m := &Mapper{byTMSI: make(map[uint32][]int)}
	open := make(map[cellRNTI]int) // open interval index per cell+RNTI

	// Last-activity times per cell+RNTI, for idle-gap closing.
	lastSeen := make(map[cellRNTI][]time.Duration)
	for _, rec := range records {
		k := cellRNTI{rec.CellID, rec.RNTI}
		lastSeen[k] = append(lastSeen[k], rec.At)
	}

	for _, e := range evs {
		k := cellRNTI{e.CellID, e.RNTI}
		if idx, ok := open[k]; ok {
			m.intervals[idx].To = e.At
			delete(open, k)
		}
		if !e.HasTMSI {
			// Random-identity connection: closes the previous binding but
			// opens nothing trackable.
			continue
		}
		open[k] = len(m.intervals)
		m.intervals = append(m.intervals, Interval{
			CellID: e.CellID, RNTI: e.RNTI, TMSI: e.TMSI, From: e.At, To: openEnd,
		})
	}

	// Close remaining intervals at the end of their continuous activity:
	// the binding survives as long as consecutive observations are closer
	// together than the idle gap; the first longer silence releases the
	// RNTI, so later records belong to whoever it was reassigned to.
	for k, idx := range open {
		iv := &m.intervals[idx]
		times := lastSeen[k]
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		end := iv.From + idleGap
		for _, tm := range times {
			if tm < iv.From {
				continue
			}
			if tm > end {
				break // silence exceeded the idle gap: activity after this is not ours
			}
			end = tm + idleGap
		}
		iv.To = end
	}
	for i := range m.intervals {
		iv := &m.intervals[i]
		m.byTMSI[iv.TMSI] = append(m.byTMSI[iv.TMSI], i)
	}
	return m
}

// FromIntervals reconstructs a Mapper from a previously extracted interval
// timeline (Intervals), rebuilding the per-TMSI index. Round-trip
// contract: FromIntervals(m.Intervals()) answers every query exactly as m
// does — the intervals slice is the Mapper's complete state.
func FromIntervals(ivs []Interval) *Mapper {
	m := &Mapper{
		intervals: make([]Interval, len(ivs)),
		byTMSI:    make(map[uint32][]int),
	}
	copy(m.intervals, ivs)
	for i := range m.intervals {
		m.byTMSI[m.intervals[i].TMSI] = append(m.byTMSI[m.intervals[i].TMSI], i)
	}
	return m
}

// Intervals returns every reconstructed binding, in observation order.
func (m *Mapper) Intervals() []Interval {
	out := make([]Interval, len(m.intervals))
	copy(out, m.intervals)
	return out
}

// IntervalsFor returns the bindings of one TMSI.
func (m *Mapper) IntervalsFor(tmsi uint32) []Interval {
	var out []Interval
	for _, idx := range m.byTMSI[tmsi] {
		out = append(out, m.intervals[idx])
	}
	return out
}

// UserTrace extracts, from a capture, every record attributable to a user
// known by any of the given TMSIs (a user holds several TMSIs over time as
// the core reallocates them). The result is time-ordered.
func (m *Mapper) UserTrace(records trace.Trace, tmsis ...uint32) trace.Trace {
	want := make(map[uint32]struct{}, len(tmsis))
	for _, t := range tmsis {
		want[t] = struct{}{}
	}
	var ivs []Interval
	for _, iv := range m.intervals {
		if _, ok := want[iv.TMSI]; ok {
			ivs = append(ivs, iv)
		}
	}
	var out trace.Trace
	for _, rec := range records {
		for _, iv := range ivs {
			if rec.CellID == iv.CellID && rec.RNTI == iv.RNTI &&
				rec.At >= iv.From && rec.At < iv.To {
				out = append(out, rec)
				break
			}
		}
	}
	out.Sort()
	return out
}

// TMSIs returns every subscriber identity observed, sorted.
func (m *Mapper) TMSIs() []uint32 {
	out := make([]uint32, 0, len(m.byTMSI))
	for t := range m.byTMSI {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
