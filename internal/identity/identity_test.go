package identity_test

import (
	"testing"
	"time"

	"ltefp/internal/identity"
	"ltefp/internal/lte/dci"
	"ltefp/internal/lte/rnti"
	"ltefp/internal/sniffer"
	"ltefp/internal/trace"
)

func event(at time.Duration, cell int, r rnti.RNTI, tmsi uint32) sniffer.IdentityEvent {
	return sniffer.IdentityEvent{At: at, CellID: cell, RNTI: r, TMSI: tmsi, HasTMSI: true}
}

func rec(at time.Duration, cell int, r rnti.RNTI, bytes int) trace.Record {
	return trace.Record{At: at, CellID: cell, RNTI: r, Dir: dci.Downlink, Bytes: bytes}
}

func TestSingleBinding(t *testing.T) {
	events := []sniffer.IdentityEvent{event(time.Second, 1, 0x100, 0xAAAA)}
	records := trace.Trace{
		rec(2*time.Second, 1, 0x100, 100),
		rec(3*time.Second, 1, 0x100, 200),
		rec(3*time.Second, 1, 0x200, 999), // someone else
	}
	m := identity.Build(events, records, 10*time.Second)
	got := m.UserTrace(records, 0xAAAA)
	if len(got) != 2 {
		t.Fatalf("user trace has %d records, want 2", len(got))
	}
	if got.TotalBytes() != 300 {
		t.Fatalf("user bytes = %d", got.TotalBytes())
	}
	if tmsis := m.TMSIs(); len(tmsis) != 1 || tmsis[0] != 0xAAAA {
		t.Fatalf("TMSIs = %v", tmsis)
	}
}

func TestRNTIReuseClosedByNextEvent(t *testing.T) {
	// RNTI 0x100 belongs to Alice, goes idle, and is later reassigned to
	// Bob. Records in each era must map to the right user.
	events := []sniffer.IdentityEvent{
		event(1*time.Second, 1, 0x100, 0xA11CE),
		event(60*time.Second, 1, 0x100, 0xB0B),
	}
	records := trace.Trace{
		rec(2*time.Second, 1, 0x100, 111),
		rec(61*time.Second, 1, 0x100, 222),
	}
	m := identity.Build(events, records, 10*time.Second)
	alice := m.UserTrace(records, 0xA11CE)
	bob := m.UserTrace(records, 0xB0B)
	if len(alice) != 1 || alice[0].Bytes != 111 {
		t.Fatalf("alice trace = %+v", alice)
	}
	if len(bob) != 1 || bob[0].Bytes != 222 {
		t.Fatalf("bob trace = %+v", bob)
	}
}

func TestIdleGapClosesInterval(t *testing.T) {
	// Alice's binding goes silent; a record long after the idle gap (from
	// an unobserved reassignment) must not be attributed to her.
	events := []sniffer.IdentityEvent{event(1*time.Second, 1, 0x100, 0xA11CE)}
	records := trace.Trace{
		rec(2*time.Second, 1, 0x100, 111),
		rec(200*time.Second, 1, 0x100, 999),
	}
	m := identity.Build(events, records, 10*time.Second)
	alice := m.UserTrace(records, 0xA11CE)
	if len(alice) != 1 || alice[0].Bytes != 111 {
		t.Fatalf("alice trace = %+v; the idle gap should have closed her interval", alice)
	}
}

func TestRandomIdentityOpensNothing(t *testing.T) {
	events := []sniffer.IdentityEvent{
		event(1*time.Second, 1, 0x100, 0xA11CE),
		{At: 30 * time.Second, CellID: 1, RNTI: 0x100, HasTMSI: false},
	}
	records := trace.Trace{
		rec(2*time.Second, 1, 0x100, 111),
		rec(31*time.Second, 1, 0x100, 999), // belongs to the anonymous user
	}
	m := identity.Build(events, records, 60*time.Second)
	alice := m.UserTrace(records, 0xA11CE)
	if len(alice) != 1 {
		t.Fatalf("alice trace = %+v; the random-identity rebind should close hers", alice)
	}
	if ivs := m.Intervals(); len(ivs) != 1 {
		t.Fatalf("%d intervals, want 1 (random identity opens none)", len(ivs))
	}
}

func TestCrossCellTracking(t *testing.T) {
	// The same TMSI appearing in two cells (the victim moved) yields one
	// user trace spanning both — the basis of the history attack.
	events := []sniffer.IdentityEvent{
		event(1*time.Second, 1, 0x100, 0xCAFE),
		event(100*time.Second, 2, 0x377, 0xCAFE),
	}
	records := trace.Trace{
		rec(2*time.Second, 1, 0x100, 10),
		rec(101*time.Second, 2, 0x377, 20),
		rec(101*time.Second, 1, 0x377, 31337), // same RNTI, other cell: not ours
	}
	m := identity.Build(events, records, 10*time.Second)
	got := m.UserTrace(records, 0xCAFE)
	if len(got) != 2 || got.TotalBytes() != 30 {
		t.Fatalf("cross-cell trace = %+v", got)
	}
}

func TestMultipleTMSIsOneUser(t *testing.T) {
	// After a GUTI reallocation the user holds a new TMSI; querying with
	// both (IMSI-catcher assistance) merges the eras.
	events := []sniffer.IdentityEvent{
		event(1*time.Second, 1, 0x100, 0xAAA1),
		event(50*time.Second, 1, 0x200, 0xAAA2),
	}
	records := trace.Trace{
		rec(2*time.Second, 1, 0x100, 1),
		rec(51*time.Second, 1, 0x200, 2),
	}
	m := identity.Build(events, records, 10*time.Second)
	got := m.UserTrace(records, 0xAAA1, 0xAAA2)
	if len(got) != 2 {
		t.Fatalf("merged trace has %d records", len(got))
	}
	if len(m.IntervalsFor(0xAAA1)) != 1 || len(m.IntervalsFor(0xAAA2)) != 1 {
		t.Fatal("per-TMSI intervals wrong")
	}
}
