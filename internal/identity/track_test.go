package identity_test

import (
	"testing"
	"time"

	"ltefp/internal/appmodel"
	"ltefp/internal/capture"
	"ltefp/internal/identity"
	"ltefp/internal/lte/operator"
)

// trackScenario is a three-cell itinerary: the victim starts a VoIP call
// in cell 1, is handed over mid-call to cell 2 and then to cell 3 — two
// anonymous admissions the tracker must chain — with background UEs
// providing decoys in every cell.
func trackScenario() capture.Scenario {
	p := operator.Lab()
	p.BackgroundUEs = 3
	app, err := appmodel.ByName("WhatsApp Call")
	if err != nil {
		panic(err)
	}
	return capture.Scenario{
		Seed: 77,
		Cells: []capture.Cell{
			{ID: 1, Profile: p}, {ID: 2, Profile: p}, {ID: 3, Profile: p},
		},
		Sessions: []capture.Session{
			{UE: "victim", CellID: 1, App: app, Start: 500 * time.Millisecond, Duration: 8 * time.Second},
		},
		Moves: []capture.Move{
			{UE: "victim", ToCell: 2, At: 3 * time.Second, Handover: true},
			{UE: "victim", ToCell: 3, At: 6 * time.Second, Handover: true},
		},
	}
}

func TestTrackFollowsHandovers(t *testing.T) {
	cap, err := capture.Run(trackScenario())
	if err != nil {
		t.Fatal(err)
	}
	segs := identity.Track(cap.Events, cap.Records, identity.TrackConfig{
		TMSIs: cap.TMSIs["victim"],
	})
	if len(segs) < 3 {
		t.Fatalf("tracker produced %d segments, want >= 3 (one per cell): %+v", len(segs), segs)
	}
	if segs[0].Link != identity.LinkSeed || segs[0].CellID != 1 {
		t.Fatalf("first segment = %+v, want a seed in cell 1", segs[0])
	}
	cells := make(map[int]bool)
	hops := 0
	for _, s := range segs {
		cells[s.CellID] = true
		if s.Link == identity.LinkHandover {
			hops++
			if s.Observed {
				t.Fatalf("handover segment %+v claims an observed TMSI", s)
			}
			if s.Confidence <= 0 || s.Confidence > 1 {
				t.Fatalf("handover segment confidence %v outside (0, 1]", s.Confidence)
			}
		}
	}
	if !cells[1] || !cells[2] || !cells[3] {
		t.Fatalf("tracker covered cells %v, want all of 1..3", cells)
	}
	if hops < 2 {
		t.Fatalf("tracker chained %d handovers, want 2", hops)
	}

	// The reconstructed trace must be the victim's: compare against ground
	// truth via the identity mapper's plaintext-only view — tracking must
	// strictly extend it (the mapper cannot see past the first handover).
	tracked := identity.TraceFor(segs, cap.Records)
	mapped := cap.UserTrace("victim")
	if len(tracked) <= len(mapped) {
		t.Fatalf("tracked trace (%d records) does not extend the plaintext-mapped trace (%d)", len(tracked), len(mapped))
	}
	// Coverage: the call runs 0.5 s to 8.5 s; the tracked trace must span
	// deep into the final cell's tenure.
	last := tracked[len(tracked)-1]
	if last.At < 7*time.Second || last.CellID != 3 {
		t.Fatalf("tracked trace ends at %v in cell %d, want past 7s in cell 3", last.At, last.CellID)
	}
}

// TestTrackDoesNotFollowDecoys checks precision: with no handover at all,
// tracking must not chain into other cells' background traffic.
func TestTrackDoesNotFollowDecoys(t *testing.T) {
	sc := trackScenario()
	sc.Moves = nil // victim never leaves cell 1
	cap, err := capture.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	segs := identity.Track(cap.Events, cap.Records, identity.TrackConfig{
		TMSIs: cap.TMSIs["victim"],
	})
	for _, s := range segs {
		if s.CellID != 1 {
			t.Fatalf("tracker wandered into cell %d without a handover: %+v", s.CellID, s)
		}
	}
}
