package appmodel_test

import (
	"testing"
	"testing/quick"
	"time"

	"ltefp/internal/appmodel"
	"ltefp/internal/lte/dci"
	"ltefp/internal/sim"
)

func TestCatalog(t *testing.T) {
	apps := appmodel.Apps()
	if len(apps) != 9 {
		t.Fatalf("catalog has %d apps, want 9", len(apps))
	}
	perCat := make(map[appmodel.Category]int)
	for _, a := range apps {
		perCat[a.Category]++
	}
	for _, c := range appmodel.Categories() {
		if perCat[c] != 3 {
			t.Errorf("%v has %d apps, want 3", c, perCat[c])
		}
	}
	for _, name := range appmodel.Names() {
		a, err := appmodel.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if a.Name != name {
			t.Fatalf("ByName(%q).Name = %q", name, a.Name)
		}
	}
	if _, err := appmodel.ByName("TikTok"); err == nil {
		t.Fatal("unknown app resolved")
	}
}

// TestSessionsWellFormed: every app's arrivals are in-range, sorted, and
// positive-sized.
func TestSessionsWellFormed(t *testing.T) {
	const dur = 30 * time.Second
	g := sim.NewRNG(1)
	for _, a := range append(appmodel.Apps(), appmodel.BackgroundPool()...) {
		arr := a.Session(g, dur, 1)
		if len(arr) == 0 {
			// Sparse background apps (e.g. a weather widget) may sit out a
			// short window; the nine fingerprinted apps may not.
			if a.Category != appmodel.BackgroundCategory {
				t.Errorf("%s: empty session", a.Name)
			}
			continue
		}
		prev := time.Duration(-1)
		for _, x := range arr {
			if x.At < 0 || x.At >= dur {
				t.Fatalf("%s: arrival at %v outside [0, %v)", a.Name, x.At, dur)
			}
			if x.At < prev {
				t.Fatalf("%s: arrivals not sorted", a.Name)
			}
			prev = x.At
			if x.Bytes <= 0 {
				t.Fatalf("%s: non-positive arrival size %d", a.Name, x.Bytes)
			}
			if x.Dir != dci.Uplink && x.Dir != dci.Downlink {
				t.Fatalf("%s: bad direction %v", a.Name, x.Dir)
			}
		}
	}
}

func TestSessionDeterminism(t *testing.T) {
	for _, a := range appmodel.Apps() {
		x := a.Session(sim.NewRNG(5), 20*time.Second, 3)
		y := a.Session(sim.NewRNG(5), 20*time.Second, 3)
		if len(x) != len(y) {
			t.Fatalf("%s: lengths differ for identical seeds", a.Name)
		}
		for i := range x {
			if x[i] != y[i] {
				t.Fatalf("%s: arrival %d differs for identical seeds", a.Name, i)
			}
		}
	}
}

// TestCategoryShapes checks the pilot-study signatures the paper reports:
// streaming is downlink-dominated, VoIP is bidirectionally balanced, and
// messengers have long idle lulls.
func TestCategoryShapes(t *testing.T) {
	g := sim.NewRNG(2)
	const dur = 60 * time.Second
	for _, a := range appmodel.Apps() {
		arr := a.Session(g, dur, 1)
		var dl, ul float64
		maxGap := time.Duration(0)
		for i, x := range arr {
			if x.Dir == dci.Downlink {
				dl += float64(x.Bytes)
			} else {
				ul += float64(x.Bytes)
			}
			if i > 0 {
				if gap := x.At - arr[i-1].At; gap > maxGap {
					maxGap = gap
				}
			}
		}
		switch a.Category {
		case appmodel.Streaming:
			if dl < 20*ul {
				t.Errorf("%s: DL/UL byte ratio %.1f, want heavily downlink", a.Name, dl/ul)
			}
		case appmodel.VoIP:
			if r := dl / ul; r < 0.5 || r > 2 {
				t.Errorf("%s: DL/UL byte ratio %.2f, want balanced", a.Name, r)
			}
		case appmodel.Messaging:
			if maxGap < 8*time.Second {
				t.Errorf("%s: longest lull %v, want idle periods that trigger RRC release", a.Name, maxGap)
			}
		}
	}
}

func TestDriftReference(t *testing.T) {
	for _, day := range []int{0, 1} {
		d := appmodel.DriftForDay("Netflix", day)
		if d.SizeScale != 1 || d.IntervalScale != 1 || d.ShapeShift != 0 {
			t.Fatalf("day %d drift = %+v, want the reference", day, d)
		}
	}
}

func TestDriftDeterministicAndGrowing(t *testing.T) {
	a := appmodel.DriftForDay("YouTube", 10)
	b := appmodel.DriftForDay("YouTube", 10)
	if a != b {
		t.Fatal("drift not deterministic")
	}
	near := appmodel.DriftForDay("YouTube", 3)
	far := appmodel.DriftForDay("YouTube", 20)
	if dev(far.SizeScale) <= dev(near.SizeScale) {
		t.Fatalf("size drift did not grow: day3 %v, day20 %v", near.SizeScale, far.SizeScale)
	}
}

func dev(scale float64) float64 {
	if scale < 1 {
		return 1/scale - 1
	}
	return scale - 1
}

func TestDriftVariesByApp(t *testing.T) {
	if appmodel.DriftForDay("Netflix", 10) == appmodel.DriftForDay("Skype", 10) {
		t.Fatal("two apps share the same drift history")
	}
}

func TestPairedMirrorsTraffic(t *testing.T) {
	app, err := appmodel.ByName("WhatsApp Call")
	if err != nil {
		t.Fatal(err)
	}
	g := sim.NewRNG(3)
	env := appmodel.Env{Quality: 0.9}
	caller, callee := appmodel.Paired(app, g, 30*time.Second, 1, env)
	if len(caller) == 0 || len(callee) == 0 {
		t.Fatal("empty conversation side")
	}
	var callerUL, calleeDL int
	for _, a := range caller {
		if a.Dir == dci.Uplink {
			callerUL += a.Bytes
		}
	}
	for _, a := range callee {
		if a.Dir == dci.Downlink {
			calleeDL += a.Bytes
		}
	}
	// What the caller sends, the callee receives (within relay perturbation).
	r := float64(calleeDL) / float64(callerUL)
	if r < 0.85 || r > 1.15 {
		t.Fatalf("callee received %.2fx what the caller sent", r)
	}
	for i := 1; i < len(callee); i++ {
		if callee[i].At < callee[i-1].At {
			t.Fatal("callee arrivals not sorted")
		}
	}
}

func TestPairedRejectsStreaming(t *testing.T) {
	app, err := appmodel.ByName("Netflix")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Paired accepted a streaming app")
		}
	}()
	appmodel.Paired(app, sim.NewRNG(1), time.Second, 1, appmodel.Env{Quality: 1})
}

// TestMergeSessionsSorted: merging any sessions yields a time-sorted
// stream containing every arrival.
func TestMergeSessionsSorted(t *testing.T) {
	f := func(seedA, seedB uint64) bool {
		a, err := appmodel.ByName("WhatsApp")
		if err != nil {
			return false
		}
		b, err := appmodel.ByName("Telegram")
		if err != nil {
			return false
		}
		sa := a.Session(sim.NewRNG(seedA), 10*time.Second, 1)
		sb := b.Session(sim.NewRNG(seedB), 10*time.Second, 1)
		m := appmodel.MergeSessions(sa, sb)
		if len(m) != len(sa)+len(sb) {
			return false
		}
		for i := 1; i < len(m); i++ {
			if m[i].At < m[i-1].At {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestVoIPQualityAdaptation(t *testing.T) {
	app, err := appmodel.ByName("Skype")
	if err != nil {
		t.Fatal(err)
	}
	spread := func(quality float64) float64 {
		arr := app.SessionEnv(sim.NewRNG(4), 60*time.Second, 1, appmodel.Env{Quality: quality})
		var sum, sq, n float64
		for _, a := range arr {
			if a.Bytes > 300 || a.Bytes < 60 {
				continue // control/setup frames
			}
			sum += float64(a.Bytes)
			sq += float64(a.Bytes) * float64(a.Bytes)
			n++
		}
		mean := sum / n
		return (sq/n - mean*mean) / (mean * mean)
	}
	clean := spread(0.95)
	poor := spread(0.3)
	if poor <= clean {
		t.Fatalf("codec size spread on a poor channel (%.4f) not above clean (%.4f)", poor, clean)
	}
}

func TestBackgroundPool(t *testing.T) {
	pool := appmodel.BackgroundPool()
	if len(pool) < 8 {
		t.Fatalf("background pool has %d apps", len(pool))
	}
	for _, a := range pool {
		if a.Category != appmodel.BackgroundCategory {
			t.Errorf("%s: category %v, want background", a.Name, a.Category)
		}
	}
}
