// Package appmodel generates application-layer traffic for the nine mobile
// apps the paper fingerprints, plus a pool of background-noise apps. Each
// generator is a stochastic stand-in for the real app (see DESIGN.md §2),
// parameterised from the paper's own pilot-study observations: Netflix
// frames distribute "almost uniformly between 0 and 4000 bytes" with long
// burst gaps, YouTube and Prime Video transmit near-continuously, instant
// messengers are sporadic with idle lulls long enough to drop the RRC
// connection (forcing RNTI refreshes), and VoIP apps transmit constant
// small frames symmetrically in both directions.
//
// Generators emit application-layer Arrivals; the eNodeB scheduler then
// segments them into transport blocks, so the radio-layer trace a sniffer
// records reflects both the app behaviour and the operator's scheduling —
// exactly the composition the classifier must see through.
package appmodel

import (
	"fmt"
	"sort"
	"time"

	"ltefp/internal/lte/dci"
	"ltefp/internal/sim"
)

// Category is a class of mobile app, the first level of the paper's
// hierarchical classifier.
type Category int

// The paper's three app categories.
const (
	Streaming Category = iota + 1
	Messaging
	VoIP
)

// String names the category as the paper's tables do.
func (c Category) String() string {
	switch c {
	case Streaming:
		return "Streaming"
	case Messaging:
		return "Messenger"
	case VoIP:
		return "VoIP call"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Categories lists all app categories in table order.
func Categories() []Category { return []Category{Streaming, Messaging, VoIP} }

// Arrival is one application-layer data unit handed to the radio stack.
type Arrival struct {
	// At is the offset from session start.
	At time.Duration
	// Bytes is the application payload size.
	Bytes int
	// Dir is the transfer direction.
	Dir dci.Direction
}

// App is one fingerprintable application.
type App struct {
	// Name is the display name used in the paper's tables.
	Name string
	// Category is the app's class.
	Category Category

	gen generator
}

// Env captures the network conditions an adaptive application reacts to.
type Env struct {
	// Quality is the session's network quality in [0, 1] (1 = pristine lab
	// channel). Adaptive codecs step rates more and jitter sizes harder on
	// poor networks, which is a large part of why real-world traces are
	// harder to fingerprint than lab ones.
	Quality float64
}

// Poor returns the clamped badness 1 - Quality.
func (e Env) Poor() float64 {
	p := 1 - e.Quality
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// pristine is the lab-channel environment assumed when none is given.
var pristine = Env{Quality: 0.95}

// generator produces one session's arrivals. Implementations must be
// deterministic given the RNG and inputs.
type generator interface {
	session(g *sim.RNG, dur time.Duration, d Drift, env Env) []Arrival
}

// Session generates one application session of the given duration as it
// behaves on the given simulated day (day 1 is the day the training data
// was recorded; later days apply the app-update drift model) under a
// pristine channel.
func (a App) Session(g *sim.RNG, dur time.Duration, day int) []Arrival {
	return a.SessionEnv(g, dur, day, pristine)
}

// SessionEnv is Session under explicit network conditions.
func (a App) SessionEnv(g *sim.RNG, dur time.Duration, day int, env Env) []Arrival {
	arr := a.gen.session(g, dur, DriftForDay(a.Name, day), env)
	sort.SliceStable(arr, func(i, j int) bool { return arr[i].At < arr[j].At })
	return arr
}

// String formats the app as "Category/Name".
func (a App) String() string { return a.Category.String() + "/" + a.Name }

// clampBytes bounds a sampled size to a sane payload range.
func clampBytes(v float64, lo, hi int) int {
	n := int(v)
	if n < lo {
		return lo
	}
	if n > hi {
		return hi
	}
	return n
}

// secs converts float seconds to a Duration.
func secs(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
