package appmodel

import (
	"time"

	"ltefp/internal/lte/dci"
	"ltefp/internal/sim"
)

// voipParams model packet voice: fixed-cadence codec frames flowing in both
// directions for the whole call, shaped by a talk-spurt/silence alternation
// with comfort-noise frames during silence, plus periodic RTCP-style
// control. VoIP is "the only class of mobile apps with a significant and
// similar amount of data transmitted in both directions" (§IV-B), and that
// symmetry — visible as matched DCI format 0/1A streams — is what the
// correlation attack ultimately keys on.
type voipParams struct {
	// frameEvery is the codec packetisation interval, seconds (0.02 = 20 ms).
	frameEvery float64
	// frameMean and frameSigma describe the voice frame payload size.
	frameMean  float64
	frameSigma float64

	// talkMean and silenceMean are the mean talk-spurt and silence-gap
	// lengths in seconds for each direction's on/off voice-activity model.
	talkMean    float64
	silenceMean float64
	// sidEvery is the comfort-noise frame period during silence, seconds
	// (0 disables silence suppression: frames flow continuously).
	sidEvery float64
	sidSize  int

	// controlEvery is the RTCP-style report period, seconds.
	controlEvery float64
	controlSize  int

	// stepProb is the per-spurt probability the adaptive codec switches
	// bitrate step, scaling the frame size (Skype behaviour).
	stepProb  float64
	stepScale float64
}

func (p voipParams) session(g *sim.RNG, dur time.Duration, d Drift, env Env) []Arrival {
	// Adaptive voice codecs react to network conditions: on a poor channel
	// they switch bitrate steps often and their frame sizes spread out; on
	// a pristine lab channel they sit near their nominal rate.
	poor := env.Poor()
	p.stepProb *= 0.2 + 6*poor
	p.frameSigma *= 0.8 + 1.8*poor
	var out []Arrival
	// Call setup handshake.
	setup := secs(g.Uniform(0.2, 1.2))
	out = append(out,
		Arrival{At: setup / 2, Bytes: g.UniformInt(300, 700), Dir: dci.Uplink},
		Arrival{At: setup, Bytes: g.UniformInt(300, 700), Dir: dci.Downlink},
	)

	for _, dir := range []dci.Direction{dci.Uplink, dci.Downlink} {
		p.voiceStream(g, dur, d, dir, setup, &out)
	}

	// Bidirectional control reports.
	for t := setup + secs(p.controlEvery); t < dur; t += secs(p.controlEvery * g.Uniform(0.9, 1.1)) {
		out = append(out,
			Arrival{At: t, Bytes: p.controlSize + g.IntN(24), Dir: dci.Uplink},
			Arrival{At: t + secs(g.Uniform(0.01, 0.06)), Bytes: p.controlSize + g.IntN(24), Dir: dci.Downlink},
		)
	}
	return out
}

// voiceStream emits one direction's voice frames using an on/off
// voice-activity model.
func (p voipParams) voiceStream(g *sim.RNG, dur time.Duration, d Drift, dir dci.Direction, start time.Duration, out *[]Arrival) {
	t := start
	scale := 1.0
	talking := g.Bool(0.6)
	for t < dur {
		if talking {
			spurt := secs(g.Exponential(p.talkMean))
			if g.Bool(p.stepProb) {
				scale *= p.stepScale
				if scale > 1.8 || scale < 0.55 {
					scale = 1.0
				}
			}
			end := t + spurt
			for t < end && t < dur {
				size := d.scaleSize(g.Normal(p.frameMean*scale, p.frameSigma))
				*out = append(*out, Arrival{At: t, Bytes: clampBytes(size, 32, 512), Dir: dir})
				t += secs(p.frameEvery * g.Uniform(0.97, 1.03))
			}
		} else {
			gap := secs(g.Exponential(p.silenceMean))
			end := t + gap
			if p.sidEvery > 0 {
				for t < end && t < dur {
					*out = append(*out, Arrival{At: t, Bytes: p.sidSize + g.IntN(8), Dir: dir})
					t += secs(p.sidEvery)
				}
			} else {
				// No silence suppression: keep sending voice frames.
				for t < end && t < dur {
					size := d.scaleSize(g.Normal(p.frameMean, p.frameSigma))
					*out = append(*out, Arrival{At: t, Bytes: clampBytes(size, 32, 512), Dir: dir})
					t += secs(p.frameEvery * g.Uniform(0.97, 1.03))
				}
			}
			t = end
		}
		talking = !talking
	}
}

var _ generator = voipParams{}

// facebookCallParams: mid-size frames, mild silence suppression, frequent
// control traffic.
func facebookCallParams() voipParams {
	return voipParams{
		frameEvery: 0.02, frameMean: 118, frameSigma: 16,
		talkMean: 3.2, silenceMean: 1.4, sidEvery: 0.16, sidSize: 44,
		controlEvery: 2.5, controlSize: 128,
		stepProb: 0.04, stepScale: 1.2,
	}
}

// whatsAppCallParams: small Opus frames, aggressive silence suppression.
func whatsAppCallParams() voipParams {
	return voipParams{
		frameEvery: 0.02, frameMean: 92, frameSigma: 13,
		talkMean: 2.8, silenceMean: 1.8, sidEvery: 0.2, sidSize: 36,
		controlEvery: 4, controlSize: 96,
		stepProb: 0.03, stepScale: 1.25,
	}
}

// skypeCallParams: larger SILK frames, no silence suppression (continuous
// flow), adaptive bitrate stepping.
func skypeCallParams() voipParams {
	return voipParams{
		frameEvery: 0.02, frameMean: 150, frameSigma: 24,
		talkMean: 3.5, silenceMean: 1.2, sidEvery: 0, sidSize: 0,
		controlEvery: 2, controlSize: 160,
		stepProb: 0.12, stepScale: 1.25,
	}
}
