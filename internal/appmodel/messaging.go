package appmodel

import (
	"time"

	"ltefp/internal/lte/dci"
	"ltefp/internal/sim"
)

// messagingParams model instant-messaging chats: bursty exchanges of small
// text frames with occasional heavy media, typing indicators and delivery
// receipts around each message, protocol keepalives, and — decisive for the
// radio layer — idle lulls long enough for the eNodeB to release the RRC
// connection, so that resumed chats come back under a fresh RNTI (§IV-B:
// "the use of IM apps usually involves a more frequent changing of RNTIs").
type messagingParams struct {
	// exchangeGap is the mean quiet time between chat exchanges, seconds.
	exchangeGap float64
	// lullProb is the probability a post-exchange gap is a long lull.
	lullProb float64
	// lullLo and lullHi bound lull lengths in seconds; values above the
	// operator's inactivity timeout force an RNTI refresh.
	lullLo, lullHi float64

	// msgsPerExchange is the mean number of messages in one exchange.
	msgsPerExchange float64
	// replyGap is the mean gap between messages inside an exchange.
	replyGap float64

	textLo, textHi int // text frame bounds
	// mediaProb is the probability a message is a media transfer.
	mediaProb float64
	// mediaScale and mediaAlpha parameterise the Pareto media size.
	mediaScale float64
	mediaAlpha float64
	mediaCap   int

	// typing enables typing-indicator frames before uplink sends.
	typing     bool
	typingSize int
	// receiptSize is the delivery/read receipt size (0 disables).
	receiptSize int

	// keepalivePeriod is the transport keepalive period in seconds.
	keepalivePeriod float64
	keepaliveSize   int

	// padQuantum, when positive, rounds every frame up to a multiple of
	// this many bytes — MTProto-style protocol padding, a strong
	// per-protocol size signature.
	padQuantum int
}

// pad applies the protocol's size quantisation.
func (p messagingParams) pad(size int) int {
	if p.padQuantum <= 0 {
		return size
	}
	q := p.padQuantum
	return (size + q - 1) / q * q
}

func (p messagingParams) session(g *sim.RNG, dur time.Duration, d Drift, _ Env) []Arrival {
	var out []Arrival
	t := secs(g.Uniform(0.1, 0.8))
	nextKeepalive := secs(p.keepalivePeriod)

	mediaProb := p.mediaProb * (1 + d.ShapeShift)
	if mediaProb < 0 {
		mediaProb = 0
	}

	flushKeepalives := func(until time.Duration) {
		for nextKeepalive < until && nextKeepalive < dur {
			out = append(out, Arrival{At: nextKeepalive, Bytes: p.pad(p.keepaliveSize + g.IntN(16)), Dir: dci.Uplink})
			out = append(out, Arrival{
				At:    nextKeepalive + secs(g.Uniform(0.02, 0.12)),
				Bytes: p.pad(p.keepaliveSize/2 + g.IntN(12)),
				Dir:   dci.Downlink,
			})
			nextKeepalive += secs(p.keepalivePeriod * g.Uniform(0.85, 1.15))
		}
	}

	for t < dur {
		// One exchange: a short volley of alternating messages.
		n := 1 + g.Poisson(p.msgsPerExchange-1)
		dir := dci.Uplink
		if g.Bool(0.5) {
			dir = dci.Downlink
		}
		for i := 0; i < n && t < dur; i++ {
			size := float64(g.UniformInt(p.textLo, p.textHi))
			if g.Bool(mediaProb) {
				size = g.Pareto(p.mediaScale, p.mediaAlpha)
				if size > float64(p.mediaCap) {
					size = float64(p.mediaCap)
				}
			}
			size = d.scaleSize(size)
			if p.typing && dir == dci.Uplink {
				// A few typing indicators precede the send.
				for k := g.UniformInt(1, 3); k > 0; k-- {
					out = append(out, Arrival{
						At:    t - secs(g.Uniform(0.3, 1.8)),
						Bytes: p.pad(p.typingSize + g.IntN(10)),
						Dir:   dci.Uplink,
					})
				}
			}
			out = append(out, Arrival{At: t, Bytes: p.pad(clampBytes(size, 48, p.mediaCap)), Dir: dir})
			if p.receiptSize > 0 {
				out = append(out, Arrival{
					At:    t + secs(g.Uniform(0.05, 0.5)),
					Bytes: p.pad(p.receiptSize + g.IntN(14)),
					Dir:   opposite(dir),
				})
			}
			dir = opposite(dir)
			t += secs(g.Exponential(d.scaleIvl(p.replyGap)))
		}
		// Quiet period until the next exchange.
		var gap float64
		if g.Bool(p.lullProb) {
			gap = g.Uniform(p.lullLo, p.lullHi)
		} else {
			gap = g.Exponential(d.scaleIvl(p.exchangeGap))
		}
		flushKeepalives(t + secs(gap))
		t += secs(gap)
	}
	// Drop any typing indicators scheduled before session start.
	trimmed := out[:0]
	for _, a := range out {
		if a.At >= 0 && a.At < dur {
			trimmed = append(trimmed, a)
		}
	}
	return trimmed
}

var _ generator = messagingParams{}

func opposite(d dci.Direction) dci.Direction {
	if d == dci.Uplink {
		return dci.Downlink
	}
	return dci.Uplink
}

// facebookMessengerParams: MQTT-style chatty transport — frequent
// keepalives, typing indicators, read receipts, moderate media.
func facebookMessengerParams() messagingParams {
	return messagingParams{
		exchangeGap: 6.0, lullProb: 0.18, lullLo: 12, lullHi: 35,
		msgsPerExchange: 3.2, replyGap: 2.2,
		textLo: 260, textHi: 560,
		mediaProb: 0.08, mediaScale: 14e3, mediaAlpha: 1.25, mediaCap: 220e3,
		typing: true, typingSize: 96, receiptSize: 112,
		keepalivePeriod: 10, keepaliveSize: 74,
	}
}

// whatsAppParams: lean Signal-style protocol — smaller frames, sparser
// keepalives, light media, receipts but few typing frames.
func whatsAppParams() messagingParams {
	return messagingParams{
		exchangeGap: 7.5, lullProb: 0.22, lullLo: 14, lullHi: 45,
		msgsPerExchange: 2.6, replyGap: 2.8,
		textLo: 56, textHi: 190,
		mediaProb: 0.045, mediaScale: 12e3, mediaAlpha: 1.35, mediaCap: 160e3,
		typing: true, typingSize: 40, receiptSize: 52,
		keepalivePeriod: 20, keepaliveSize: 30,
	}
}

// telegramParams: MTProto — larger padded frames (sizes quantised upward),
// stickers and previews inflate media, long lulls, rare keepalives. The
// paper consistently finds Telegram the hardest app to classify; its
// parameters sit closest to the other two messengers.
func telegramParams() messagingParams {
	return messagingParams{
		exchangeGap: 6.8, lullProb: 0.25, lullLo: 12, lullHi: 50,
		msgsPerExchange: 2.9, replyGap: 2.5,
		textLo: 96, textHi: 384,
		mediaProb: 0.065, mediaScale: 18e3, mediaAlpha: 1.2, mediaCap: 300e3,
		typing: true, typingSize: 72, receiptSize: 80,
		keepalivePeriod: 15, keepaliveSize: 64,
		padQuantum: 64, // MTProto container padding
	}
}
