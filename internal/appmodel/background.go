package appmodel

import (
	"sort"
	"time"

	"ltefp/internal/lte/dci"
	"ltefp/internal/sim"
)

// BackgroundCategory marks apps that are noise rather than fingerprinting
// targets: the "5 to 10 apps in the background ... chosen randomly from the
// Google store's top 10 free apps" of the paper's Fig. 9 experiment.
const BackgroundCategory Category = 4

// genericParams is a lightweight request/response generator for
// background-noise apps: sporadic uplink requests answered by downlink
// payload bursts, with optional periodic sync beacons.
type genericParams struct {
	// reqGap is the mean gap between requests, seconds.
	reqGap float64
	// reqLo and reqHi bound the uplink request size.
	reqLo, reqHi int
	// respMu and respSigma parameterise the lognormal response size.
	respMu, respSigma float64
	// respFrames is the mean number of downlink frames per response.
	respFrames float64
	// beaconEvery emits fixed-size sync beacons at this period (0 = none).
	beaconEvery float64
	beaconSize  int
}

func (p genericParams) session(g *sim.RNG, dur time.Duration, d Drift, _ Env) []Arrival {
	var out []Arrival
	for t := secs(g.Exponential(p.reqGap)); t < dur; t += secs(g.Exponential(d.scaleIvl(p.reqGap))) {
		out = append(out, Arrival{At: t, Bytes: g.UniformInt(p.reqLo, p.reqHi), Dir: dci.Uplink})
		frames := 1 + g.Poisson(p.respFrames-1)
		rt := t + secs(g.Uniform(0.02, 0.15))
		for i := 0; i < frames && rt < dur; i++ {
			size := d.scaleSize(g.LogNormal(p.respMu, p.respSigma))
			out = append(out, Arrival{At: rt, Bytes: clampBytes(size, 60, 64*1024), Dir: dci.Downlink})
			rt += secs(g.Uniform(0.002, 0.02))
		}
	}
	if p.beaconEvery > 0 {
		for t := secs(p.beaconEvery * g.Uniform(0.2, 1.0)); t < dur; t += secs(p.beaconEvery * g.Uniform(0.9, 1.1)) {
			out = append(out, Arrival{At: t, Bytes: p.beaconSize + g.IntN(20), Dir: dci.Uplink})
		}
	}
	return out
}

var _ generator = genericParams{}

// BackgroundPool returns the pool of generic top-chart apps used as noise
// traffic. Fig. 9's experiment draws 5–10 of these (the nine fingerprinted
// apps may be added by the caller, as the paper does).
func BackgroundPool() []App {
	return []App{
		{Name: "WebBrowsing", Category: BackgroundCategory, gen: genericParams{
			reqGap: 9, reqLo: 300, reqHi: 900, respMu: 8.6, respSigma: 1.1, respFrames: 9, beaconEvery: 0}},
		{Name: "EmailSync", Category: BackgroundCategory, gen: genericParams{
			reqGap: 45, reqLo: 200, reqHi: 500, respMu: 7.8, respSigma: 1.3, respFrames: 4, beaconEvery: 60, beaconSize: 90}},
		{Name: "PushNotifications", Category: BackgroundCategory, gen: genericParams{
			reqGap: 30, reqLo: 60, reqHi: 140, respMu: 5.5, respSigma: 0.6, respFrames: 1, beaconEvery: 28, beaconSize: 64}},
		{Name: "MusicStreaming", Category: BackgroundCategory, gen: genericParams{
			reqGap: 6, reqLo: 100, reqHi: 260, respMu: 9.3, respSigma: 0.5, respFrames: 6, beaconEvery: 0}},
		{Name: "SocialFeed", Category: BackgroundCategory, gen: genericParams{
			reqGap: 7, reqLo: 250, reqHi: 700, respMu: 8.9, respSigma: 0.9, respFrames: 7, beaconEvery: 35, beaconSize: 110}},
		{Name: "Maps", Category: BackgroundCategory, gen: genericParams{
			reqGap: 12, reqLo: 200, reqHi: 450, respMu: 8.2, respSigma: 0.8, respFrames: 5, beaconEvery: 20, beaconSize: 130}},
		{Name: "AppUpdates", Category: BackgroundCategory, gen: genericParams{
			reqGap: 90, reqLo: 300, reqHi: 600, respMu: 10.5, respSigma: 0.8, respFrames: 20, beaconEvery: 0}},
		{Name: "Weather", Category: BackgroundCategory, gen: genericParams{
			reqGap: 70, reqLo: 150, reqHi: 320, respMu: 7.2, respSigma: 0.7, respFrames: 2, beaconEvery: 0}},
		{Name: "MobileGame", Category: BackgroundCategory, gen: genericParams{
			reqGap: 2.5, reqLo: 80, reqHi: 220, respMu: 6.3, respSigma: 0.7, respFrames: 2, beaconEvery: 15, beaconSize: 95}},
		{Name: "CloudSync", Category: BackgroundCategory, gen: genericParams{
			reqGap: 40, reqLo: 240, reqHi: 520, respMu: 9.8, respSigma: 1.0, respFrames: 12, beaconEvery: 50, beaconSize: 84}},
	}
}

// MergeSessions overlays several apps' sessions into one arrival stream
// (one UE running a foreground app plus background noise), sorted by time.
func MergeSessions(sessions ...[]Arrival) []Arrival {
	var total int
	for _, s := range sessions {
		total += len(s)
	}
	out := make([]Arrival, 0, total)
	for _, s := range sessions {
		out = append(out, s...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}
