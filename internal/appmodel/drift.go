package appmodel

import (
	"hash/fnv"
	"math"

	"ltefp/internal/sim"
)

// Drift captures how far an app's traffic shape has moved from its
// training-day behaviour, driven by app updates, CDN changes, and codec
// retunes. The paper measures this as a steady F-score decay that crosses
// the 70% usability threshold roughly a week after training (Fig. 8).
type Drift struct {
	// SizeScale multiplies payload sizes (1.0 on the training day).
	SizeScale float64
	// IntervalScale multiplies inter-event gaps.
	IntervalScale float64
	// ShapeShift perturbs secondary pattern parameters (burst lengths,
	// media probabilities) as a signed fraction.
	ShapeShift float64
}

// noDrift is the training-day reference.
var noDrift = Drift{SizeScale: 1, IntervalScale: 1, ShapeShift: 0}

// driftTrendPerDay and driftWalkPerDay parameterise the drift process: a
// steady per-app trend (an update cycle pushing sizes and cadence in one
// direction) plus a day-to-day random walk (CDN and load variation). The
// values are calibrated so that the fingerprinting F-score decays past the
// paper's 70% threshold near day 7 (Fig. 8).
const (
	driftTrendPerDay = 0.028
	driftWalkPerDay  = 0.012
)

// DriftForDay returns the deterministic drift of an app on a simulated day.
// Day numbers at or below 1 return the training-day reference. The process
// is seeded from the app name only, so every experiment sees the same
// drift history.
func DriftForDay(appName string, day int) Drift {
	if day <= 1 {
		return noDrift
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(appName))
	g := sim.NewRNG(h.Sum64())
	// Per-app trend directions, fixed for the app's lifetime.
	sizeTrend := driftTrendPerDay * signOf(g)
	ivlTrend := driftTrendPerDay * signOf(g)
	var logSize, logIvl, shape float64
	for d := 2; d <= day; d++ {
		logSize += sizeTrend + g.Normal(0, driftWalkPerDay)
		logIvl += ivlTrend + g.Normal(0, driftWalkPerDay)
		shape += g.Normal(0, driftWalkPerDay)
	}
	return Drift{
		SizeScale:     math.Exp(logSize),
		IntervalScale: math.Exp(logIvl),
		ShapeShift:    math.Max(-0.5, math.Min(0.5, shape)),
	}
}

// signOf draws ±1.
func signOf(g *sim.RNG) float64 {
	if g.Bool(0.5) {
		return 1
	}
	return -1
}

// scaleSize applies the drift to a payload size.
func (d Drift) scaleSize(v float64) float64 { return v * d.SizeScale }

// scaleIvl applies the drift to an inter-event gap in seconds.
func (d Drift) scaleIvl(v float64) float64 { return v * d.IntervalScale }
