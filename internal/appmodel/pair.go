package appmodel

import (
	"sort"
	"time"

	"ltefp/internal/lte/dci"
	"ltefp/internal/sim"
)

// Paired generates the two sides of one conversation over the given app:
// the caller's session plus the callee's session derived from it. What the
// caller uplinks, the callee downlinks a network-transit delay later (and
// vice versa), with per-frame jitter and relay-induced size perturbation —
// the coupling the correlation attack (§III-D) detects with DTW. Both
// returned slices are sorted by time.
//
// Paired panics if the app is a streaming app: streamed video has no second
// participant, and the paper's correlation attack covers messaging and VoIP
// only.
func Paired(a App, g *sim.RNG, dur time.Duration, day int, env Env) (caller, callee []Arrival) {
	if a.Category == Streaming {
		panic("appmodel: Paired called with a streaming app")
	}
	caller = a.SessionEnv(g, dur, day, env)
	callee = make([]Arrival, 0, len(caller))
	// One-way transit through the relay/server path.
	transit := g.Uniform(0.04, 0.12)
	for _, ar := range caller {
		mirrored := Arrival{Bytes: perturbSize(g, ar.Bytes)}
		switch ar.Dir {
		case dci.Uplink:
			// Caller sent it; callee receives it a transit later.
			mirrored.At = ar.At + secs(transit+g.Uniform(0, 0.03))
			mirrored.Dir = dci.Downlink
		case dci.Downlink:
			// Caller received it, so the callee must have sent it earlier.
			mirrored.At = ar.At - secs(transit+g.Uniform(0, 0.03))
			mirrored.Dir = dci.Uplink
		}
		if mirrored.At < 0 || mirrored.At >= dur {
			continue
		}
		callee = append(callee, mirrored)
	}
	// The callee's own client-side chatter (keepalives, UI sync) is
	// independent of the caller's.
	for t := secs(g.Uniform(1, 5)); t < dur; t += secs(g.Exponential(12)) {
		callee = append(callee, Arrival{At: t, Bytes: 60 + g.IntN(60), Dir: dci.Uplink})
	}
	sort.SliceStable(callee, func(i, j int) bool { return callee[i].At < callee[j].At })
	return caller, callee
}

// perturbSize models relay re-framing: sizes survive transit to within a
// few percent plus a small header delta.
func perturbSize(g *sim.RNG, b int) int {
	v := float64(b)*g.Uniform(0.96, 1.04) + g.Uniform(-8, 8)
	return clampBytes(v, 32, 16*1024)
}
