package appmodel

import (
	"math"
	"time"

	"ltefp/internal/lte/dci"
	"ltefp/internal/sim"
)

// Cover traffic generators: the application-layer side of the defense
// suite. Dummy bursts must be indistinguishable from real app traffic, so
// their sizes are drawn from the same heavy-tailed shape the catalog's
// generators produce rather than uniformly — a uniform dummy distribution
// would itself be a fingerprint.

// dummyBurstMinBytes is the smallest dummy burst worth injecting: anything
// below a keep-alive-sized datagram would stand out against real traffic.
const dummyBurstMinBytes = 60

// DummyBurstBytes samples the size of one injected dummy burst, bounded by
// maxBytes. Sizes are log-uniform between a keep-alive floor and the cap,
// mimicking the push-notification-to-media-chunk spread of real background
// traffic. maxBytes at or below the floor degrades to the floor.
func DummyBurstBytes(g *sim.RNG, maxBytes int) int {
	if maxBytes <= dummyBurstMinBytes {
		return dummyBurstMinBytes
	}
	lo, hi := math.Log(float64(dummyBurstMinBytes)), math.Log(float64(maxBytes))
	n := int(math.Exp(g.Uniform(lo, hi)))
	if n < dummyBurstMinBytes {
		n = dummyBurstMinBytes
	}
	if n > maxBytes {
		n = maxBytes
	}
	return n
}

// ProbeStream builds the attacker-side arrival stream of a paging
// presence probe: count silent downlink pushes of bytes each, spaced gap
// apart. Each push reaches an idle victim only through paging, so the
// paging channel's response timing is what the probe correlates against
// (Sørseth et al.'s presence-testing methodology, delivered here as silent
// app-layer messages). The gap must exceed the operator's inactivity
// timeout, or later probes find the victim still connected and page
// nothing.
func ProbeStream(count, bytes int, gap time.Duration) []Arrival {
	out := make([]Arrival, count)
	for i := range out {
		out[i] = Arrival{At: time.Duration(i) * gap, Bytes: bytes, Dir: dci.Downlink}
	}
	return out
}
