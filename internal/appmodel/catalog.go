package appmodel

import "fmt"

// The nine fingerprinted apps, in the order the paper's tables list them.
// Names match the table rows; the two Facebook entries and two WhatsApp
// entries are distinct apps (messenger versus call).
func appCatalog() []App {
	return []App{
		{Name: "Netflix", Category: Streaming, gen: netflixParams()},
		{Name: "YouTube", Category: Streaming, gen: youtubeParams()},
		{Name: "Amazon Prime", Category: Streaming, gen: primeVideoParams()},
		{Name: "Facebook", Category: Messaging, gen: facebookMessengerParams()},
		{Name: "WhatsApp", Category: Messaging, gen: whatsAppParams()},
		{Name: "Telegram", Category: Messaging, gen: telegramParams()},
		{Name: "Facebook Call", Category: VoIP, gen: facebookCallParams()},
		{Name: "WhatsApp Call", Category: VoIP, gen: whatsAppCallParams()},
		{Name: "Skype", Category: VoIP, gen: skypeCallParams()},
	}
}

// Apps returns the nine fingerprinted apps in table order.
func Apps() []App { return appCatalog() }

// ByCategory returns the three apps of one category in table order.
func ByCategory(c Category) []App {
	var out []App
	for _, a := range appCatalog() {
		if a.Category == c {
			out = append(out, a)
		}
	}
	return out
}

// ByName resolves an app by its table name.
func ByName(name string) (App, error) {
	for _, a := range appCatalog() {
		if a.Name == name {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("appmodel: unknown app %q", name)
}

// Names returns the nine app names in table order.
func Names() []string {
	apps := appCatalog()
	out := make([]string, len(apps))
	for i, a := range apps {
		out[i] = a.Name
	}
	return out
}
