package appmodel

import (
	"time"

	"ltefp/internal/lte/dci"
	"ltefp/internal/sim"
)

// streamingParams model adaptive-bitrate video delivery: a large startup
// buffer fill followed by periodic segment refills, with sparse uplink
// acknowledgement and telemetry traffic. The three streaming apps differ in
// refill cadence, chunk sizing, and segment-size distribution, matching the
// paper's pilot observations (§IV-B).
type streamingParams struct {
	// startupBytes is the mean size of the initial buffer fill.
	startupBytes float64
	// startupSpread is the relative spread of the startup fill.
	startupSpread float64
	// startupPace is the mean gap between segments during startup, seconds.
	startupPace float64

	// refillPeriod is the mean gap between steady-state refill bursts.
	refillPeriod float64
	// refillJitter is the relative jitter of the refill period.
	refillJitter float64
	// chunkBytes is the mean bytes delivered per refill burst.
	chunkBytes float64
	// chunkSpread is the relative spread of the chunk size.
	chunkSpread float64
	// pace is the mean gap between segments inside a burst, seconds.
	pace float64

	// segUniform selects a uniform segment-size distribution (Netflix's
	// "almost uniform between 0 and 4000 bytes"); otherwise lognormal.
	segUniform   bool
	segLo, segHi int     // uniform bounds
	segMu        float64 // lognormal location (of bytes)
	segSigma     float64 // lognormal scale

	// ulPerSeg is the probability a segment triggers an uplink ACK/report.
	ulPerSeg   float64
	ulLo, ulHi int
	// telemetryEvery is the period of uplink quality reports, seconds.
	telemetryEvery float64
	telemetryBytes int
}

func (p streamingParams) session(g *sim.RNG, dur time.Duration, d Drift, _ Env) []Arrival {
	var out []Arrival
	emitSeg := func(t time.Duration, remaining float64) (time.Duration, float64) {
		size := p.sampleSeg(g, d)
		if float64(size) > remaining {
			size = int(remaining)
		}
		if size < 64 {
			size = 64
		}
		out = append(out, Arrival{At: t, Bytes: size, Dir: dci.Downlink})
		if g.Bool(p.ulPerSeg) {
			lag := secs(g.Uniform(0.002, 0.03))
			out = append(out, Arrival{
				At:    t + lag,
				Bytes: g.UniformInt(p.ulLo, p.ulHi),
				Dir:   dci.Uplink,
			})
		}
		return t + secs(g.Exponential(d.scaleIvl(p.pace))), remaining - float64(size)
	}

	// Startup buffer fill: heavy, fast-paced delivery right after open.
	t := secs(g.Uniform(0.05, 0.4)) // app open / manifest fetch delay
	out = append(out, Arrival{At: t, Bytes: g.UniformInt(300, 900), Dir: dci.Uplink})
	budget := d.scaleSize(g.Normal(p.startupBytes, p.startupBytes*p.startupSpread))
	for budget > 0 && t < dur {
		t, budget = emitSeg(t, budget)
		// Startup pacing is tighter than steady-state pacing.
		t += secs(g.Exponential(p.startupPace))
	}

	// Steady state: periodic refill bursts.
	nextTelemetry := t + secs(p.telemetryEvery)
	for t < dur {
		gap := d.scaleIvl(p.refillPeriod) * g.Uniform(1-p.refillJitter, 1+p.refillJitter)
		t += secs(gap)
		if t >= dur {
			break
		}
		chunk := d.scaleSize(g.Normal(p.chunkBytes, p.chunkBytes*p.chunkSpread))
		bt := t
		for chunk > 0 && bt < dur {
			bt, chunk = emitSeg(bt, chunk)
		}
		for nextTelemetry < bt && nextTelemetry < dur {
			out = append(out, Arrival{
				At:    nextTelemetry,
				Bytes: p.telemetryBytes + g.IntN(40),
				Dir:   dci.Uplink,
			})
			nextTelemetry += secs(p.telemetryEvery * g.Uniform(0.9, 1.1))
		}
	}
	return out
}

func (p streamingParams) sampleSeg(g *sim.RNG, d Drift) int {
	if p.segUniform {
		lo := float64(p.segLo)
		hi := d.scaleSize(float64(p.segHi))
		return clampBytes(g.Uniform(lo, hi), p.segLo, 16*1024)
	}
	return clampBytes(d.scaleSize(g.LogNormal(p.segMu, p.segSigma)), 80, 16*1024)
}

var _ generator = streamingParams{}

// netflixParams: uniform 0–4000 B segments, long gaps between large refill
// bursts, big startup buffer (§IV-B: "frame sizes distribute almost
// uniformly between 0 and 4000 bytes, and the intervals between traffic
// bursts are relatively long").
func netflixParams() streamingParams {
	return streamingParams{
		startupBytes: 7.5e6, startupSpread: 0.25, startupPace: 0.004,
		refillPeriod: 4.2, refillJitter: 0.3,
		chunkBytes: 1.6e6, chunkSpread: 0.3, pace: 0.0015,
		segUniform: true, segLo: 120, segHi: 4000,
		ulPerSeg: 0.035, ulLo: 52, ulHi: 120,
		telemetryEvery: 10, telemetryBytes: 260,
	}
}

// youtubeParams: near-continuous delivery with short, frequent bursts and
// lognormal segment sizes.
func youtubeParams() streamingParams {
	return streamingParams{
		startupBytes: 4.0e6, startupSpread: 0.3, startupPace: 0.0025,
		refillPeriod: 1.1, refillJitter: 0.45,
		chunkBytes: 2.6e5, chunkSpread: 0.4, pace: 0.004,
		segUniform: false, segMu: 7.05, segSigma: 0.55, // median ≈ 1150 B
		ulPerSeg: 0.05, ulLo: 60, ulHi: 140,
		telemetryEvery: 5, telemetryBytes: 320,
	}
}

// primeVideoParams: between the other two — medium cadence, mid-size
// uniform-ish segments.
func primeVideoParams() streamingParams {
	return streamingParams{
		startupBytes: 5.5e6, startupSpread: 0.25, startupPace: 0.006,
		refillPeriod: 2.2, refillJitter: 0.35,
		chunkBytes: 1.15e6, chunkSpread: 0.3, pace: 0.0017,
		segUniform: true, segLo: 500, segHi: 2800,
		ulPerSeg: 0.04, ulLo: 56, ulHi: 128,
		telemetryEvery: 8, telemetryBytes: 240,
	}
}
