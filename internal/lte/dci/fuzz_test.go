package dci_test

import (
	"bytes"
	"testing"

	"ltefp/internal/lte/dci"
)

// FuzzDCIRoundTrip drives Parse with arbitrary candidate bytes — the exact
// situation of a blind decoder scanning a noisy control channel. Parse must
// never panic, and any payload it accepts must validate and re-pack to the
// identical bytes (decode→encode identity), which is what makes the
// sniffer's captured messages faithful to what was on the air.
func FuzzDCIRoundTrip(f *testing.F) {
	for _, m := range []dci.Message{
		{Format: dci.Format0, RBStart: 0, NPRB: 1, MCS: 0, HARQ: 0, TPC: 0},
		{Format: dci.Format1A, RBStart: 5, NPRB: 50, MCS: 17, HARQ: 7, NDI: true, RV: 3, TPC: 2},
		{Format: dci.Format1A, RBStart: 0, NPRB: 110, MCS: 28, HARQ: 3, NDI: true, RV: 1, TPC: 1},
		{Format: dci.Format0, RBStart: 109, NPRB: 1, MCS: 9, HARQ: 5, TPC: 3},
	} {
		payload, err := m.Pack()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
	}
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x02, 0x03})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{0x00, 0x00, 0x00, 0x00, 0x00})
	f.Fuzz(func(t *testing.T, payload []byte) {
		m, err := dci.Parse(payload)
		if err != nil {
			return // rejected candidates only need to not panic
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("Parse accepted an invalid message %+v: %v", m, err)
		}
		if _, err := m.TransportBlockBytes(); err != nil {
			t.Fatalf("accepted message has no TBS: %v", err)
		}
		repacked, err := m.Pack()
		if err != nil {
			t.Fatalf("accepted message does not re-pack: %v", err)
		}
		if !bytes.Equal(repacked, payload) {
			t.Fatalf("decode→encode is not the identity: % x → % x", payload, repacked)
		}
	})
}
