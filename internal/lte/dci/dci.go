// Package dci implements Downlink Control Information messages, the
// plaintext scheduling commands an eNodeB broadcasts on the PDCCH
// (3GPP TS 36.212 §5.3.3). Every uplink grant and downlink assignment for
// every connected UE is announced in one of these messages, addressed by
// CRC-masking with the UE's RNTI and never encrypted — which is precisely
// the side channel the paper's attacks consume.
//
// Two formats are modelled, the pair that carries essentially all user
// traffic scheduling: format 0 (uplink grants on PUSCH) and format 1A
// (downlink assignments on PDSCH). As on the real air interface the two
// formats have identical payload sizes and are distinguished by a leading
// flag bit, so a blind decoder learns the traffic direction from the
// payload itself.
package dci

import (
	"fmt"

	"ltefp/internal/lte/tbs"
)

// Direction is the transfer direction a DCI message schedules.
type Direction int

// Traffic directions. The paper's feature set encodes downlink as 1 and
// uplink as 0; Value reflects that convention for feature extraction.
const (
	Downlink Direction = iota + 1
	Uplink
)

// String names the direction.
func (d Direction) String() string {
	switch d {
	case Downlink:
		return "downlink"
	case Uplink:
		return "uplink"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Value returns the paper's numeric encoding: downlink 1, uplink 0.
func (d Direction) Value() int {
	if d == Downlink {
		return 1
	}
	return 0
}

// Format identifies a DCI format.
type Format int

// Supported DCI formats.
const (
	// Format0 is an uplink grant (PUSCH).
	Format0 Format = iota + 1
	// Format1A is a compact downlink assignment (PDSCH).
	Format1A
)

// String names the format as analyzers print it.
func (f Format) String() string {
	switch f {
	case Format0:
		return "DCI0"
	case Format1A:
		return "DCI1A"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// Direction returns the transfer direction the format schedules.
func (f Format) Direction() Direction {
	if f == Format0 {
		return Uplink
	}
	return Downlink
}

// bandwidthPRB is the resource-allocation bandwidth the RIV coding assumes.
// We model a 20 MHz carrier throughout.
const bandwidthPRB = tbs.MaxPRB

// PayloadLen is the packed payload size in bytes. Both formats pack to the
// same length (as in real LTE, where format 0 is padded to format 1A's
// size) so that length leaks nothing about direction.
const PayloadLen = 4

// Message is a decoded DCI payload.
type Message struct {
	Format  Format
	RBStart int  // first allocated resource block
	NPRB    int  // number of contiguous resource blocks
	MCS     int  // modulation and coding scheme index, 0..28
	HARQ    int  // HARQ process number, 0..7
	NDI     bool // new data indicator
	RV      int  // redundancy version, 0..3
	TPC     int  // transmit power control command, 0..3
}

// Validate checks field ranges.
func (m *Message) Validate() error {
	switch {
	case m.Format != Format0 && m.Format != Format1A:
		return fmt.Errorf("dci: unknown format %d", int(m.Format))
	case m.NPRB < 1 || m.RBStart < 0 || m.RBStart+m.NPRB > bandwidthPRB:
		return fmt.Errorf("dci: allocation [%d, %d) outside carrier of %d PRB",
			m.RBStart, m.RBStart+m.NPRB, bandwidthPRB)
	case m.MCS < 0 || m.MCS > tbs.MaxMCS:
		return fmt.Errorf("dci: MCS %d out of range", m.MCS)
	case m.HARQ < 0 || m.HARQ > 7:
		return fmt.Errorf("dci: HARQ process %d out of range", m.HARQ)
	case m.RV < 0 || m.RV > 3:
		return fmt.Errorf("dci: RV %d out of range", m.RV)
	case m.TPC < 0 || m.TPC > 3:
		return fmt.Errorf("dci: TPC %d out of range", m.TPC)
	}
	return nil
}

// TransportBlockBytes returns the transport block size, in bytes, that this
// message schedules. This is the "frame size" feature of the paper.
func (m *Message) TransportBlockBytes() (int, error) {
	itbs, _, err := tbs.ForMCS(m.MCS)
	if err != nil {
		return 0, fmt.Errorf("dci: %w", err)
	}
	b, err := tbs.Bytes(itbs, m.NPRB)
	if err != nil {
		return 0, fmt.Errorf("dci: %w", err)
	}
	return b, nil
}

// riv encodes the resource allocation as a Resource Indication Value
// (TS 36.213 §7.1.6.3).
func riv(rbStart, nprb int) uint32 {
	n := uint32(bandwidthPRB)
	l := uint32(nprb)
	s := uint32(rbStart)
	if l-1 <= n/2 {
		return n*(l-1) + s
	}
	return n*(n-l+1) + (n - 1 - s)
}

// unriv inverts riv.
func unriv(v uint32) (rbStart, nprb int, err error) {
	n := uint32(bandwidthPRB)
	if v >= n*(n+1)/2 {
		return 0, 0, fmt.Errorf("dci: RIV %d out of range", v)
	}
	l := v/n + 1
	s := v % n
	if s+l > n { // wrapped branch of the coding
		l = n - l + 2
		s = n - 1 - s
	}
	return int(s), int(l), nil
}

// Pack serialises the message into a fixed-size payload.
//
// Bit layout (MSB first):
//
//	flag(1) | RIV(13) | MCS(5) | HARQ(3) | NDI(1) | RV(2) | TPC(2) | pad(5)
//
// flag=0 selects format 0, flag=1 selects format 1A, mirroring the real
// format 0/1A differentiation bit.
func (m *Message) Pack() ([]byte, error) {
	out := make([]byte, PayloadLen)
	if err := m.PackInto(out); err != nil {
		return nil, err
	}
	return out, nil
}

// PackInto serialises the message into out, which must be exactly
// PayloadLen bytes. It produces the same bytes as Pack without allocating,
// for schedulers that pack into a reused payload arena.
func (m *Message) PackInto(out []byte) error {
	if len(out) != PayloadLen {
		return fmt.Errorf("dci: pack buffer length %d, want %d", len(out), PayloadLen)
	}
	if err := m.Validate(); err != nil {
		return err
	}
	var bits uint32
	if m.Format == Format1A {
		bits = 1
	}
	bits = bits<<13 | riv(m.RBStart, m.NPRB)&0x1FFF
	bits = bits<<5 | uint32(m.MCS)&0x1F
	bits = bits<<3 | uint32(m.HARQ)&0x7
	if m.NDI {
		bits = bits<<1 | 1
	} else {
		bits <<= 1
	}
	bits = bits<<2 | uint32(m.RV)&0x3
	bits = bits<<2 | uint32(m.TPC)&0x3
	bits <<= 5 // padding to 32 bits
	out[0] = byte(bits >> 24)
	out[1] = byte(bits >> 16)
	out[2] = byte(bits >> 8)
	out[3] = byte(bits)
	return nil
}

// Parse deserialises a payload produced by Pack.
func Parse(payload []byte) (Message, error) {
	if len(payload) != PayloadLen {
		return Message{}, fmt.Errorf("dci: payload length %d, want %d", len(payload), PayloadLen)
	}
	bits := uint32(payload[0])<<24 | uint32(payload[1])<<16 |
		uint32(payload[2])<<8 | uint32(payload[3])
	if bits&0x1F != 0 {
		return Message{}, fmt.Errorf("dci: nonzero padding bits")
	}
	bits >>= 5
	var m Message
	m.TPC = int(bits & 0x3)
	bits >>= 2
	m.RV = int(bits & 0x3)
	bits >>= 2
	m.NDI = bits&1 == 1
	bits >>= 1
	m.HARQ = int(bits & 0x7)
	bits >>= 3
	m.MCS = int(bits & 0x1F)
	bits >>= 5
	rbStart, nprb, err := unriv(bits & 0x1FFF)
	if err != nil {
		return Message{}, err
	}
	m.RBStart, m.NPRB = rbStart, nprb
	bits >>= 13
	if bits&1 == 1 {
		m.Format = Format1A
	} else {
		m.Format = Format0
	}
	if err := m.Validate(); err != nil {
		return Message{}, err
	}
	return m, nil
}
