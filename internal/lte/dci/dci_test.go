package dci_test

import (
	"testing"
	"testing/quick"

	"ltefp/internal/lte/dci"
	"ltefp/internal/lte/tbs"
)

func validMessage(f dci.Format, rbStart, nprb, mcs, harq, rv, tpc uint8, ndi bool) dci.Message {
	m := dci.Message{
		Format: f,
		MCS:    int(mcs) % (tbs.MaxMCS + 1),
		HARQ:   int(harq) % 8,
		NDI:    ndi,
		RV:     int(rv) % 4,
		TPC:    int(tpc) % 4,
	}
	m.NPRB = 1 + int(nprb)%tbs.MaxPRB
	m.RBStart = int(rbStart) % (tbs.MaxPRB - m.NPRB + 1)
	return m
}

// TestRoundTrip: Pack followed by Parse is the identity on every valid
// message — the property the whole sniffer decode path rests on.
func TestRoundTrip(t *testing.T) {
	f := func(isUL bool, rbStart, nprb, mcs, harq, rv, tpc uint8, ndi bool) bool {
		format := dci.Format1A
		if isUL {
			format = dci.Format0
		}
		m := validMessage(format, rbStart, nprb, mcs, harq, rv, tpc, ndi)
		payload, err := m.Pack()
		if err != nil {
			return false
		}
		if len(payload) != dci.PayloadLen {
			return false
		}
		got, err := dci.Parse(payload)
		if err != nil {
			return false
		}
		return got == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFormatDirection(t *testing.T) {
	if dci.Format0.Direction() != dci.Uplink {
		t.Error("format 0 should schedule uplink")
	}
	if dci.Format1A.Direction() != dci.Downlink {
		t.Error("format 1A should schedule downlink")
	}
	if dci.Downlink.Value() != 1 || dci.Uplink.Value() != 0 {
		t.Error("paper encoding: downlink = 1, uplink = 0")
	}
}

func TestValidate(t *testing.T) {
	bad := []dci.Message{
		{Format: 0, NPRB: 1, MCS: 0},                          // no format
		{Format: dci.Format0, RBStart: 0, NPRB: 0, MCS: 0},    // empty allocation
		{Format: dci.Format0, RBStart: 100, NPRB: 20, MCS: 0}, // allocation overflow
		{Format: dci.Format0, NPRB: 1, MCS: 29},               // MCS range
		{Format: dci.Format0, NPRB: 1, MCS: 0, HARQ: 8},       // HARQ range
		{Format: dci.Format0, NPRB: 1, MCS: 0, RV: 4},         // RV range
		{Format: dci.Format0, NPRB: 1, MCS: 0, TPC: 5},        // TPC range
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, m)
		}
		if _, err := m.Pack(); err == nil {
			t.Errorf("case %d: Pack accepted %+v", i, m)
		}
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := dci.Parse([]byte{1, 2, 3}); err == nil {
		t.Error("Parse accepted a short payload")
	}
	if _, err := dci.Parse([]byte{0, 0, 0, 0x1F}); err == nil {
		t.Error("Parse accepted nonzero padding bits")
	}
}

func TestTransportBlockBytes(t *testing.T) {
	m := dci.Message{Format: dci.Format1A, RBStart: 0, NPRB: 10, MCS: 10}
	got, err := m.TransportBlockBytes()
	if err != nil {
		t.Fatal(err)
	}
	itbs, _, err := tbs.ForMCS(10)
	if err != nil {
		t.Fatal(err)
	}
	want, err := tbs.Bytes(itbs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("TransportBlockBytes = %d, want %d", got, want)
	}
}

// TestFullSpanAllocation: the RIV coding's wrapped branch (large
// allocations) must round-trip too.
func TestFullSpanAllocation(t *testing.T) {
	m := dci.Message{Format: dci.Format1A, RBStart: 0, NPRB: tbs.MaxPRB, MCS: 28}
	payload, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := dci.Parse(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("full-span round trip = %+v, want %+v", got, m)
	}
}
