// Package rrc models the Radio Resource Control connection procedure
// messages (3GPP TS 36.331) that are exchanged *before* access-stratum
// security is activated and are therefore readable by a passive observer.
// The contention-resolution echo in ConnectionSetup is the hinge of the
// paper's identity-mapping step ①: it repeats, in plaintext, the identity
// the UE presented in its ConnectionRequest, letting a sniffer bind the
// freshly assigned C-RNTI to a stable TMSI (Rupprecht et al., "Breaking LTE
// on Layer Two").
package rrc

import (
	"fmt"

	"ltefp/internal/lte/rnti"
)

// EstablishmentCause is the reason a UE opens an RRC connection.
type EstablishmentCause int

// Establishment causes relevant to the simulation.
const (
	// CauseMOData is mobile-originated data: the UE has uplink traffic.
	CauseMOData EstablishmentCause = iota + 1
	// CauseMTAccess is mobile-terminated access: the UE answers a page.
	CauseMTAccess
	// CauseMOSignalling covers tracking-area updates and similar.
	CauseMOSignalling
)

// String names the cause.
func (c EstablishmentCause) String() string {
	switch c {
	case CauseMOData:
		return "mo-Data"
	case CauseMTAccess:
		return "mt-Access"
	case CauseMOSignalling:
		return "mo-Signalling"
	default:
		return fmt.Sprintf("EstablishmentCause(%d)", int(c))
	}
}

// UEIdentity is the identity a UE presents during connection establishment:
// its S-TMSI when it has one, otherwise a 40-bit random value.
type UEIdentity struct {
	// TMSI holds the S-TMSI when HasTMSI is true.
	TMSI uint32
	// HasTMSI distinguishes an S-TMSI identity from a random value.
	HasTMSI bool
	// Random is a 40-bit random value used when no valid S-TMSI exists.
	Random uint64
}

// String formats the identity.
func (id UEIdentity) String() string {
	if id.HasTMSI {
		return fmt.Sprintf("s-TMSI(0x%08x)", id.TMSI)
	}
	return fmt.Sprintf("randomValue(0x%010x)", id.Random&0xFFFFFFFFFF)
}

// ConnectionRequest is msg3 of the random-access procedure: sent on the
// uplink grant given by the RAR, in plaintext.
type ConnectionRequest struct {
	Identity UEIdentity
	Cause    EstablishmentCause
}

// ConnectionSetup is msg4: it assigns the dedicated configuration and —
// critically for the attacker — echoes the msg3 identity as the MAC
// contention resolution identity, in plaintext.
type ConnectionSetup struct {
	ContentionResolution UEIdentity
}

// ConnectionSetupComplete closes the connection establishment; its NAS
// payload rides before security activation.
type ConnectionSetupComplete struct{}

// ConnectionRelease moves the UE back to RRC_IDLE.
type ConnectionRelease struct{}

// RandomAccessResponse is msg2, addressed to the RA-RNTI: it answers a
// preamble with a temporary C-RNTI and an uplink grant for msg3.
type RandomAccessResponse struct {
	PreambleID int
	TempCRNTI  rnti.RNTI
}

// PagingRecord announces pending downlink traffic for an idle UE,
// identified by S-TMSI, on the paging channel in plaintext.
type PagingRecord struct {
	TMSI uint32
}

// Paging is the paging message body: one or more records.
type Paging struct {
	Records []PagingRecord
}

// SecurityModeCommand activates access-stratum security. Every subsequent
// dedicated message is encrypted; the simulator stops attaching plaintext
// from this point on, exactly as a real sniffer stops being able to read it.
type SecurityModeCommand struct{}

// ReconfigurationWithMobility is the handover command
// (RRCConnectionReconfiguration with mobilityControlInfo). On a real
// network it is sent encrypted — a sniffer cannot read the target cell or
// the new C-RNTI from it, which is why cross-cell tracking in the paper
// falls back to identity mapping in the target cell.
type ReconfigurationWithMobility struct {
	TargetCell int
	NewCRNTI   rnti.RNTI
}
