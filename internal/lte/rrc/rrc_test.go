package rrc_test

import (
	"strings"
	"testing"

	"ltefp/internal/lte/rrc"
)

func TestEstablishmentCauseStrings(t *testing.T) {
	cases := map[rrc.EstablishmentCause]string{
		rrc.CauseMOData:       "mo-Data",
		rrc.CauseMTAccess:     "mt-Access",
		rrc.CauseMOSignalling: "mo-Signalling",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", c, got, want)
		}
	}
	if got := rrc.EstablishmentCause(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown cause rendered %q", got)
	}
}

func TestUEIdentityString(t *testing.T) {
	withTMSI := rrc.UEIdentity{TMSI: 0xDEADBEEF, HasTMSI: true}
	if got := withTMSI.String(); !strings.Contains(got, "deadbeef") {
		t.Errorf("TMSI identity rendered %q", got)
	}
	random := rrc.UEIdentity{Random: 0x123456789A}
	if got := random.String(); !strings.Contains(got, "random") {
		t.Errorf("random identity rendered %q", got)
	}
	// The random value is 40 bits on the air; wider inputs must truncate
	// in the rendering rather than leak extra state.
	wide := rrc.UEIdentity{Random: 0xFF123456789A}
	if got := wide.String(); !strings.Contains(got, "123456789a") {
		t.Errorf("wide random identity rendered %q", got)
	}
}

func TestContentionResolutionEcho(t *testing.T) {
	// The security property the identity-mapping attack rests on: msg4
	// carries msg3's identity verbatim.
	id := rrc.UEIdentity{TMSI: 0xCAFE, HasTMSI: true}
	req := rrc.ConnectionRequest{Identity: id, Cause: rrc.CauseMOData}
	setup := rrc.ConnectionSetup{ContentionResolution: req.Identity}
	if setup.ContentionResolution != id {
		t.Fatal("contention resolution does not echo the request identity")
	}
}
