package enb_test

import (
	"testing"
	"time"

	"ltefp/internal/lte/dci"
	"ltefp/internal/lte/operator"
	"ltefp/internal/lte/rnti"
	"ltefp/internal/lte/rrc"
	"ltefp/internal/lte/ue"
)

func TestRNTIRefreshDefense(t *testing.T) {
	p := operator.Lab()
	p.RNTIRefreshEvery = 300 * time.Millisecond
	r := newRig(t, p)
	u := r.newUE("a")
	r.cell.DeliverUL(u, 100, r.now)
	r.run(50 * time.Millisecond)
	if u.State != ue.Connected {
		t.Fatal("UE did not connect")
	}
	first := u.RNTI
	// Keep the connection busy so inactivity release never fires.
	for i := 0; i < 20; i++ {
		r.cell.DeliverDL(u, 2000, r.now)
		r.run(100 * time.Millisecond)
	}
	if u.State != ue.Connected {
		t.Fatal("UE dropped mid-session")
	}
	if u.RNTI == first {
		t.Fatal("C-RNTI never refreshed despite the defense being on")
	}
	// The refresh must not leak any plaintext identity: the only identity
	// events are from the initial attach.
	ids := 0
	for _, pl := range r.rec.plaintexts() {
		switch pl.(type) {
		case rrc.ConnectionRequest, rrc.ConnectionSetup:
			ids++
		}
	}
	if ids > 2 {
		t.Fatalf("%d identity plaintexts observed; refreshes must be unlinkable", ids)
	}
	// Traffic continued under the new RNTIs: total delivered bytes match.
	_, _, bytesDL, _ := r.cell.Stats()
	if bytesDL != 40000 {
		t.Fatalf("delivered %d bytes across refreshes, want 40000", bytesDL)
	}
}

func TestPadBucketsDefense(t *testing.T) {
	p := operator.Lab()
	p.PadBuckets = true
	r := newRig(t, p)
	u := r.newUE("a")
	r.cell.DeliverUL(u, 1, r.now)
	r.run(50 * time.Millisecond)
	// Distinct small payloads must land on identical bucketed block sizes.
	sizes := make(map[int]bool)
	for _, payload := range []int{130, 180, 230} {
		before := len(r.rec.subframes)
		r.cell.DeliverDL(u, payload, r.now)
		r.run(50 * time.Millisecond)
		for _, sf := range r.rec.subframes[before:] {
			for i := range sf.PDCCH {
				msg, err := dci.Parse(sf.PDCCH[i].Payload)
				if err != nil || msg.Format != dci.Format1A || msg.MCS == 0 {
					continue
				}
				b, err := msg.TransportBlockBytes()
				if err != nil {
					t.Fatal(err)
				}
				sizes[b] = true
			}
		}
	}
	if len(sizes) != 1 {
		t.Fatalf("morphed block sizes = %v, want one shared bucket", sizes)
	}
	for b := range sizes {
		if b < 256 {
			t.Fatalf("bucketed block %d smaller than the 256-byte bucket", b)
		}
	}
}

func TestOneTimeIdentifiers(t *testing.T) {
	p := operator.Lab()
	p.OneTimeIdentifiers = true
	r := newRig(t, p)
	u := r.newUE("a")
	r.cell.DeliverUL(u, 100, r.now)
	r.run(100 * time.Millisecond)
	if u.State != ue.Connected {
		t.Fatal("UE did not connect under concealment")
	}
	for _, pl := range r.rec.plaintexts() {
		switch m := pl.(type) {
		case rrc.ConnectionRequest:
			if m.Identity.HasTMSI {
				t.Fatal("concealed connection request exposed a TMSI")
			}
		case rrc.ConnectionSetup:
			if m.ContentionResolution.HasTMSI {
				t.Fatal("concealed connection setup exposed a TMSI")
			}
		}
	}
	_ = rnti.RNTI(0)
}

// TestGrantQuantizationDefense checks that distinct small payloads collapse
// onto the quantization lattice: with a 256-byte quantum every sub-quantum
// payload is granted either one or two quanta, so at most two transport
// block sizes appear where an undefended scheduler would show three.
func TestGrantQuantizationDefense(t *testing.T) {
	p := operator.Lab()
	p.GrantQuantum = 256
	r := newRig(t, p)
	u := r.newUE("a")
	r.cell.DeliverUL(u, 1, r.now)
	r.run(50 * time.Millisecond)
	sizes := make(map[int]bool)
	for _, payload := range []int{130, 180, 230} {
		before := len(r.rec.subframes)
		r.cell.DeliverDL(u, payload, r.now)
		r.run(50 * time.Millisecond)
		for _, sf := range r.rec.subframes[before:] {
			for i := range sf.PDCCH {
				msg, err := dci.Parse(sf.PDCCH[i].Payload)
				if err != nil || msg.Format != dci.Format1A || msg.MCS == 0 {
					continue
				}
				b, err := msg.TransportBlockBytes()
				if err != nil {
					t.Fatal(err)
				}
				if b < 256 {
					t.Fatalf("quantized block %d smaller than one quantum", b)
				}
				sizes[b] = true
			}
		}
	}
	if len(sizes) > 2 {
		t.Fatalf("quantized block sizes = %v, want at most the one- and two-quantum lattice points", sizes)
	}
	if r.cell.DefenseStats().PadBytes == 0 {
		t.Fatal("quantization over-grants accrued no measured padding overhead")
	}
}

// TestDummyBurstDefense checks cover-burst injection: a connected but
// otherwise silent UE keeps receiving downlink grants carrying dummy
// payload, and the injected bytes are accounted as overhead.
func TestDummyBurstDefense(t *testing.T) {
	p := operator.Lab()
	p.DummyBurstProb = 1
	p.DummyBurstMaxBytes = 1200
	r := newRig(t, p)
	u := r.newUE("a")
	r.cell.DeliverUL(u, 100, r.now)
	r.run(500 * time.Millisecond)
	if u.State != ue.Connected {
		t.Fatal("UE did not stay connected under dummy bursts")
	}
	st := r.cell.DefenseStats()
	if st.DummyBytes == 0 {
		t.Fatal("no dummy bytes injected with DummyBurstProb=1")
	}
	_, _, bytesDL, _ := r.cell.Stats()
	if bytesDL == 0 {
		t.Fatal("dummy bursts never reached the air interface")
	}
}

// TestConstantRateDefense checks the constant-rate top-up: with no real
// downlink at all, the scheduler still serves at least ConstantRateBytes
// per period, so the observable rate is flat regardless of the app.
func TestConstantRateDefense(t *testing.T) {
	p := operator.Lab()
	p.ConstantRatePeriodTTI = 20
	p.ConstantRateBytes = 300
	r := newRig(t, p)
	u := r.newUE("a")
	r.cell.DeliverUL(u, 100, r.now)
	r.run(500 * time.Millisecond)
	if u.State != ue.Connected {
		t.Fatal("UE did not stay connected under constant-rate cover")
	}
	st := r.cell.DefenseStats()
	if st.CoverBytes == 0 {
		t.Fatal("no cover bytes injected")
	}
	_, _, bytesDL, _ := r.cell.Stats()
	// ~25 periods over 500 ms at 300 bytes each, minus ramp-up slack.
	if bytesDL < 4000 {
		t.Fatalf("served %d downlink bytes, want a sustained constant-rate floor", bytesDL)
	}
}
