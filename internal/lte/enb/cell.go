// Package enb models an eNodeB cell: RNTI management, the random-access
// and paging procedures, per-TTI resource scheduling, inactivity release,
// and handover. Its Tick method assembles, for every 1 ms subframe, the
// exact set of PDCCH transmissions a passive observer could capture — which
// makes this package the ground truth the sniffer package is graded
// against.
package enb

import (
	"fmt"
	"time"

	"ltefp/internal/lte/dci"
	"ltefp/internal/lte/epc"
	"ltefp/internal/lte/operator"
	"ltefp/internal/lte/phy"
	"ltefp/internal/lte/rnti"
	"ltefp/internal/lte/rrc"
	"ltefp/internal/lte/ue"
	"ltefp/internal/obs"
	"ltefp/internal/sim"
)

// Observer receives every subframe a cell transmits. Sniffers implement
// this; they must not retain the subframe past the call.
type Observer interface {
	Observe(cellID int, sf *phy.Subframe)
}

// HandoverSink receives the source side's hand-off when a handover release
// completes: the departing UE, the target cell, and the byte queues to
// carry over. The simulation fabric installs a sink that forwards the
// admission to the target cell at the next synchronization point, so the
// source cell never calls into another cell directly (cells may be
// stepping on different workers).
type HandoverSink func(u *ue.UE, targetCellID, dlQueue, ulQueue int)

// ctxState tracks the radio-bearer lifecycle of one UE context.
type ctxState int

const (
	ctxAccess ctxState = iota + 1 // random access in progress
	ctxConnected
	ctxReleased
)

// ueCtx is the cell-side context of one UE with an allocated C-RNTI.
type ueCtx struct {
	ue    *ue.UE
	rnti  rnti.RNTI
	state ctxState

	dlQueue int // bytes awaiting downlink delivery
	ulQueue int // bytes granted-for awaiting uplink delivery

	lastActivity time.Duration
	rntiAge      time.Duration // when the current C-RNTI was assigned
	nextDLSF     int64         // earliest subframe of the next DL grant
	nextULSF     int64
	harq         int
	secured      bool // AS security active: no more plaintext

	// ordIdx is this context's current position in c.order, kept in step
	// by enroll and compaction so the active ring can reproduce the dense
	// walk's rotation order without walking.
	ordIdx int
	// inRing marks membership in c.active.
	inRing bool
	// idleArmed marks a live inactivity deadline on the timer wheel for
	// this tenancy, keeping the chain at one entry per context: without
	// it, every queue drain of a chatty UE would park another
	// soon-to-be-stale entry in the wheel.
	idleArmed bool
	// gen counts tenancies of this (free-list-recycled) allocation.
	// Deferred closures and timer-wheel entries capture the generation
	// they were created under and go inert if the context has since been
	// recycled for a different UE. The dense reference never recycles, so
	// there the guards never trip.
	gen uint32
}

// Cell is one eNodeB cell.
type Cell struct {
	// ID is the cell identifier (also the paper's "cell zone").
	ID int
	// Profile is the operator configuration shaping this cell.
	Profile operator.Profile

	core  *epc.Core
	rng   *sim.RNG
	alloc *rnti.Allocator

	// byRNTI is a dense RNTI-indexed context table (the RNTI space is
	// 16-bit): per-connection lookups and releases touch one slot instead
	// of churning a map.
	byRNTI []*ueCtx
	byUE   map[*ue.UE]*ueCtx
	order  []*ueCtx // deterministic scheduling order
	rrPtr  int      // round-robin rotation pointer

	// active is the active-set scheduling ring: the contexts in connected
	// state with nonzero queues, sorted by ordIdx. scheduleData visits
	// only these, so a TTI costs O(active UEs) while thousands of parked
	// connections cost nothing. Unused by the dense reference.
	active []*ueCtx
	// free recycles released ueCtx allocations (their gen bumped) so
	// population-scale churn does not allocate per connection.
	free []*ueCtx
	// pendingRelease lists contexts released since the last compaction;
	// compaction scans only from the lowest released slot and skips
	// entirely on ticks that released nothing.
	pendingRelease []*ueCtx
	// wheel holds the inactivity-release and RNTI-refresh deadlines that
	// the dense reference discovers by walking every context every tick.
	wheel timerWheel
	// dense selects the retained O(attached) reference scheduler
	// (see SetDenseReference).
	dense bool
	// lastTick is the subframe index of the most recent Tick, -1 before
	// the first; serial-phase code uses it to bound lazy CQI catch-up.
	lastTick int64

	// dlPending buffers downlink bytes for idle UEs until paging brings
	// them back to connected mode.
	dlPending map[*ue.UE]int

	// pagingAt collects the idle UEs to be paged at each upcoming paging
	// occasion, keyed by the occasion's subframe index. The first UE queued
	// for an occasion schedules one flush closure; every UE queued for the
	// same occasion shares it, so the occasion emits batched paging
	// messages instead of one PRNTI message per UE.
	pagingAt map[int64][]*ue.UE

	// camped registers every UE currently parked on this cell. Deferred
	// control closures (paging occasions, paging responses) consult it
	// before touching a UE: a UE that re-camped elsewhere since the closure
	// was scheduled now belongs to another cell — possibly stepping on a
	// different worker — and must not be read from here.
	camped map[*ue.UE]bool

	// hoSink, when set, receives handover admissions instead of the source
	// cell calling the target directly (see HandoverSink).
	hoSink HandoverSink

	ctl sim.Queue // timed control-procedure steps
	// retryFree recycles fired ctlRetry payloads so PDCCH-congestion
	// retries — the hot event class on a loaded cell — do not allocate
	// per blocked subframe (see ctlRetry in sched.go).
	retryFree []*ctlRetry
	observers []Observer

	cur *builder // subframe under assembly; valid only inside Tick

	// Per-TTI scratch, reused across Ticks so steady-state subframe
	// assembly does not allocate: the subframe returned by Tick, the CCE
	// occupancy map, the builder, and the arena backing DCI payloads. All
	// of it is invalidated by the next Tick, which is why observers must
	// not retain subframes.
	sf    phy.Subframe
	cce   phy.CCEMap
	bld   builder
	arena []byte

	// Incremental aggregates over c.order, maintained at every queue
	// mutation and state transition so observeTick and Connected never walk
	// the context table: aggQueue is the summed dl+ul backlog of every
	// context still in the scheduling order, nConnected the number of
	// contexts in connected state.
	aggQueue   int
	nConnected int

	// stats
	grantsDL, grantsUL int64
	bytesDL, bytesUL   int64

	// defense accumulates the measured overhead of every enabled defense
	// mechanism. Always maintained (plain integer adds on paths that
	// already mutate the same cache lines), so overhead reporting never
	// perturbs scheduling output.
	defense DefenseStats

	m cellMetrics
}

// DefenseStats are a cell's cumulative defense-overhead counters: the
// byte cost of padding-style defenses (split by mechanism), and the
// paging channel's message/record/latency tallies from which smart
// paging's PDCCH savings and added delay are computed.
type DefenseStats struct {
	// PadBytes counts downlink+uplink bytes the bucket-morphing and
	// grant-quantization defenses inflated grants by, beyond the
	// scheduler's baseline sizing (baseline over-granting and TBS
	// granularity are not charged — a defenseless cell reports zero).
	PadBytes int64
	// DummyBytes counts bytes injected by the dummy-burst defense.
	DummyBytes int64
	// CoverBytes counts bytes injected by the constant-rate top-up.
	CoverBytes int64
	// PagingMessages and PagingRecords count emitted paging messages and
	// the records they carried; their ratio is the batching factor.
	PagingMessages int64
	PagingRecords  int64
	// PagingDelayTTIs sums, over all paging requests, the subframes
	// between downlink arrival and the paging occasion that served it —
	// the latency cost of coarsened (smart) paging cycles.
	PagingDelayTTIs int64
}

// Add accumulates another cell's counters (for fleet-wide aggregation).
func (s *DefenseStats) Add(o DefenseStats) {
	s.PadBytes += o.PadBytes
	s.DummyBytes += o.DummyBytes
	s.CoverBytes += o.CoverBytes
	s.PagingMessages += o.PagingMessages
	s.PagingRecords += o.PagingRecords
	s.PagingDelayTTIs += o.PagingDelayTTIs
}

// DefenseStats reports the cell's cumulative defense-overhead counters.
func (c *Cell) DefenseStats() DefenseStats { return c.defense }

// cellMetrics caches the scheduler's observability handles. The zero value
// (enabled=false) keeps the per-TTI summary computations off entirely; the
// counters are nil-safe either way.
type cellMetrics struct {
	enabled       bool
	tick          uint64 // TTIs seen, for sampling decimation
	prbUtilDL     *obs.Histogram
	prbUtilUL     *obs.Histogram
	queueDepth    *obs.Gauge
	connected     *obs.Gauge
	grantsDL      *obs.Counter
	grantsUL      *obs.Counter
	paddingEvents *obs.Counter
	pdcchBlocked  *obs.Counter
	rntiRefreshes *obs.Counter
	padBytes      *obs.Counter
	dummyBytes    *obs.Counter
	coverBytes    *obs.Counter
	pagingMsgs    *obs.Counter
	pagingRecords *obs.Counter
}

// SetMetrics points the cell's scheduler instrumentation at a scope:
// per-TTI PRB-utilisation histograms (fraction of the cell's PRBs charged,
// per direction), queue-depth and connected-UE gauges, and grant/padding/
// PDCCH-blocking counters. A disabled scope turns instrumentation off.
// fracBuckets is the shared bucket layout of the PRB-utilisation
// histograms; registration copies it, so sharing one slice across cells
// keeps repeated SetMetrics calls allocation-free.
var fracBuckets = obs.FractionBuckets()

func (c *Cell) SetMetrics(sc obs.Scope) {
	c.m = cellMetrics{
		enabled:       sc.Enabled(),
		prbUtilDL:     sc.Histogram("prb_util_dl", fracBuckets),
		prbUtilUL:     sc.Histogram("prb_util_ul", fracBuckets),
		queueDepth:    sc.Gauge("queue_depth_bytes"),
		connected:     sc.Gauge("connected_ues"),
		grantsDL:      sc.Counter("grants_dl"),
		grantsUL:      sc.Counter("grants_ul"),
		paddingEvents: sc.Counter("padding_events"),
		pdcchBlocked:  sc.Counter("pdcch_blocked"),
		rntiRefreshes: sc.Counter("rnti_refreshes"),
		padBytes:      sc.Counter("defense_pad_bytes"),
		dummyBytes:    sc.Counter("defense_dummy_bytes"),
		coverBytes:    sc.Counter("defense_cover_bytes"),
		pagingMsgs:    sc.Counter("paging_messages"),
		pagingRecords: sc.Counter("paging_records"),
	}
}

// denseReference, when true, makes NewCell build cells that schedule with
// the retained O(attached-UEs) dense-walk implementation instead of the
// active-set ring and timer wheel. The two produce bit-for-bit identical
// subframes; the reference exists so differential tests and baseline
// benchmarks can pin that equivalence. Toggle only from tests and
// benchmarks, never while cells are constructed concurrently.
var denseReference bool

// SetDenseReference switches the scheduler implementation used by
// subsequently constructed cells and returns the previous setting.
func SetDenseReference(v bool) (prev bool) {
	prev = denseReference
	denseReference = v
	return prev
}

// NewCell returns an empty cell.
func NewCell(id int, p operator.Profile, core *epc.Core, rng *sim.RNG) (*Cell, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("enb: %w", err)
	}
	c := &Cell{
		ID:        id,
		Profile:   p,
		core:      core,
		rng:       rng,
		alloc:     rnti.NewAllocator(rng),
		byRNTI:    make([]*ueCtx, 1<<16),
		byUE:      make(map[*ue.UE]*ueCtx),
		dlPending: make(map[*ue.UE]int),
		camped:    make(map[*ue.UE]bool),
		dense:     denseReference,
		lastTick:  -1,
	}
	c.wheel.cur = -1
	return c, nil
}

// AddObserver registers a subframe observer (a sniffer).
func (c *Cell) AddObserver(o Observer) { c.observers = append(c.observers, o) }

// SetHandoverSink installs the fabric's cross-cell admission channel. With
// no sink installed, BeginHandover fails.
func (c *Cell) SetHandoverSink(s HandoverSink) { c.hoSink = s }

// Camp parks an idle UE on this cell and initialises its channel model.
func (c *Cell) Camp(u *ue.UE) {
	u.CellID = c.ID
	c.camped[u] = true
	u.SetChannel(c.Profile.CQIMean, c.Profile.CQISigma, c.Profile.CQIWalkPerSec)
}

// Leave removes an idle UE from this cell. Pending downlink for it is
// dropped (as the serving gateway would re-route it).
func (c *Cell) Leave(u *ue.UE) {
	if ctx, ok := c.byUE[u]; ok {
		c.release(ctx, u.State == ue.Connected)
	}
	delete(c.dlPending, u)
	delete(c.camped, u)
	if u.CellID == c.ID {
		u.CellID = ue.NoCell
	}
	u.State = ue.Idle
	u.RNTI = 0
}

// Detach removes a UE that left via handover: the camped registration is
// forgotten and any downlink bytes that arrived after its context was
// released are returned, so the target cell can carry them over (the
// serving gateway's path switch). Unlike Leave, the UE's state is not
// touched — the target cell owns its transition.
func (c *Cell) Detach(u *ue.UE) (dlPending int) {
	delete(c.camped, u)
	dlPending = c.dlPending[u]
	delete(c.dlPending, u)
	return dlPending
}

// Connected reports the number of UE contexts in connected state.
func (c *Cell) Connected() int { return c.nConnected }

// Stats reports cumulative grant and byte counters (DL, UL).
func (c *Cell) Stats() (grantsDL, grantsUL, bytesDL, bytesUL int64) {
	return c.grantsDL, c.grantsUL, c.bytesDL, c.bytesUL
}

// newCtx returns a blank context, recycling a released one when possible.
// A recycled context keeps only its (bumped) generation number.
func (c *Cell) newCtx() *ueCtx {
	if n := len(c.free); n > 0 {
		ctx := c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
		return ctx
	}
	return &ueCtx{}
}

// enroll appends a context to the scheduling order and starts its UE's
// lazy channel-walk accrual at the next epoch the dense reference would
// step it.
func (c *Cell) enroll(ctx *ueCtx) {
	ctx.ordIdx = len(c.order)
	c.order = append(c.order, ctx)
	if !c.dense {
		next := c.cqiLimit() + 1
		ctx.ue.StartCQIAccrual((next + 99) / 100 * 100)
	}
}

// cqiLimit is the highest subframe index whose channel-walk epoch a CQI
// read at this moment must reflect. The dense reference steps channels
// late in the tick — after data scheduling and releases — so reads inside
// a Tick see epochs strictly before the current subframe, and reads
// between ticks (fabric serial phase) see epochs up to the last one.
func (c *Cell) cqiLimit() int64 {
	if c.cur != nil {
		return c.sf.Index - 1
	}
	return c.lastTick
}

// SyncChannel replays any channel-walk epochs the cell's lazy schedule
// still owes the UE, so out-of-band readers (the network's session-quality
// sampling) observe the same CQI the dense reference would show.
func (c *Cell) SyncChannel(u *ue.UE) { u.CatchUpCQI(c.cqiLimit()) }

// ringAdd inserts a connected context with pending bytes into the active
// scheduling ring, keeping it sorted by scheduling-order position. No-op
// for the dense reference and for contexts already present.
func (c *Cell) ringAdd(ctx *ueCtx) {
	if c.dense || ctx.inRing {
		return
	}
	i, n := 0, len(c.active)
	for i < n {
		h := int(uint(i+n) >> 1)
		if c.active[h].ordIdx < ctx.ordIdx {
			i = h + 1
		} else {
			n = h
		}
	}
	c.active = append(c.active, nil)
	copy(c.active[i+1:], c.active[i:])
	c.active[i] = ctx
	ctx.inRing = true
}

// ringRemove takes a context out of the active ring (release paths call
// it eagerly; drained entries are instead pruned by the post-visit sweep).
func (c *Cell) ringRemove(ctx *ueCtx) {
	if !ctx.inRing {
		return
	}
	i, n := 0, len(c.active)
	for i < n {
		h := int(uint(i+n) >> 1)
		if c.active[h].ordIdx < ctx.ordIdx {
			i = h + 1
		} else {
			n = h
		}
	}
	copy(c.active[i:], c.active[i+1:])
	c.active[len(c.active)-1] = nil
	c.active = c.active[:len(c.active)-1]
	ctx.inRing = false
}

// armIdle schedules the inactivity-release deadline for a connected
// context whose queues are empty: the first tick at which the dense walk's
// now-lastActivity >= timeout test would pass. Each tenancy keeps at most
// one live entry: while one is armed, later activity just moves
// lastActivity, and the entry re-arms itself at the new deadline when it
// fires and fails re-validation (see fireIdle).
func (c *Cell) armIdle(ctx *ueCtx) {
	if c.dense || ctx.state != ctxConnected || ctx.idleArmed {
		return
	}
	ctx.idleArmed = true
	at := int64((ctx.lastActivity + c.Profile.InactivityTimeout + sim.TTI - 1) / sim.TTI)
	c.wheel.arm(ctx, timerIdle, at)
}

// armRefresh schedules the next C-RNTI refresh occasion: the first
// multiple-of-32 tick at which the RNTI's age exceeds the profile period,
// matching the dense walk's every-32-TTI scan.
func (c *Cell) armRefresh(ctx *ueCtx) {
	if c.dense || c.Profile.RNTIRefreshEvery <= 0 || ctx.state != ctxConnected {
		return
	}
	first := int64((ctx.rntiAge + c.Profile.RNTIRefreshEvery + sim.TTI - 1) / sim.TTI)
	c.wheel.arm(ctx, timerRefresh, (first+31)/32*32)
}

// DeliverDL hands downlink payload for a UE to the cell (as arriving from
// the core network). Idle UEs are paged.
func (c *Cell) DeliverDL(u *ue.UE, bytes int, now time.Duration) {
	if bytes <= 0 {
		return
	}
	if ctx, ok := c.byUE[u]; ok && ctx.state == ctxConnected {
		ctx.dlQueue += bytes
		c.aggQueue += bytes
		c.ringAdd(ctx)
		return
	}
	first := c.dlPending[u] == 0
	c.dlPending[u] += bytes
	if first && u.State == ue.Idle {
		c.schedulePaging(u, now)
	}
}

// DeliverUL registers uplink payload generated at the UE. Idle UEs trigger
// random access; connected UEs signal a scheduling request, which reaches
// the scheduler after the SR cycle delay.
func (c *Cell) DeliverUL(u *ue.UE, bytes int, now time.Duration) {
	if bytes <= 0 {
		return
	}
	if ctx, ok := c.byUE[u]; ok && ctx.state == ctxConnected {
		g := ctx.gen
		c.ctl.Push(now+6*sim.TTI, func() {
			// The context may have been released — and possibly recycled for
			// another UE — during the SR cycle; the stale request then dies
			// here, exactly as the dense reference's compaction hides it.
			if ctx.gen != g || ctx.state != ctxConnected {
				return
			}
			ctx.ulQueue += bytes
			c.aggQueue += bytes
			c.ringAdd(ctx)
		})
		return
	}
	u.AddPendingUL(bytes, now)
	if u.State == ue.Idle {
		c.RequestConnection(u, rrc.CauseMOData, now)
	}
}

// RequestConnection starts the contention-based random access procedure
// for an idle UE camped on this cell.
func (c *Cell) RequestConnection(u *ue.UE, cause rrc.EstablishmentCause, now time.Duration) {
	if !c.camped[u] || u.State != ue.Idle || u.CellID != c.ID {
		return
	}
	u.State = ue.Connecting
	preamble := c.rng.IntN(64)
	// Preamble on the next RACH occasion.
	c.ctl.Push(now+2*sim.TTI, func() {
		c.cur.sf.RACH = append(c.cur.sf.RACH, phy.Preamble{ID: preamble})
		c.scheduleRAR(u, cause, preamble, c.cur.now)
	})
}

// scheduleRAR allocates a C-RNTI and emits msg2..msg4 plus security
// activation on their standard timeline.
func (c *Cell) scheduleRAR(u *ue.UE, cause rrc.EstablishmentCause, preamble int, now time.Duration) {
	r, err := c.alloc.Allocate()
	if err != nil {
		// Cell full: the UE backs off to idle and will retry on next data.
		u.State = ue.Idle
		return
	}
	ctx := c.newCtx()
	ctx.ue, ctx.rnti, ctx.state = u, r, ctxAccess
	c.byRNTI[r] = ctx
	c.byUE[u] = ctx
	c.enroll(ctx)
	g := ctx.gen

	tmsi, hasTMSI, random := u.Identity()
	if c.Profile.OneTimeIdentifiers {
		// 5G-style concealment: the UE presents a one-time pseudonym, so
		// the contention-resolution echo binds the RNTI to nothing stable.
		hasTMSI = false
		random = c.rng.Uint64() & 0xFFFFFFFFFF
	}
	id := rrc.UEIdentity{TMSI: uint32(tmsi), HasTMSI: hasTMSI, Random: random}

	// msg2: random access response on the RA-RNTI (common search space).
	c.ctl.Push(now+3*sim.TTI, func() {
		raRNTI := rnti.RAMin + rnti.RNTI(c.cur.sf.Index%10)
		c.cur.control(c, raRNTI, dci.Format1A, 3, rrc.RandomAccessResponse{
			PreambleID: preamble,
			TempCRNTI:  r,
		})
	})
	// msg3: UL grant carrying the RRC connection request in plaintext.
	c.ctl.Push(now+5*sim.TTI, func() {
		c.cur.control(c, r, dci.Format0, 2, rrc.ConnectionRequest{Identity: id, Cause: cause})
	})
	// msg4: connection setup echoing the contention-resolution identity —
	// the plaintext a passive identity-mapping attacker reads.
	c.ctl.Push(now+7*sim.TTI, func() {
		c.cur.control(c, r, dci.Format1A, 3, rrc.ConnectionSetup{ContentionResolution: id})
	})
	// Security activation, after which nothing is plaintext; the
	// connection is then live.
	c.ctl.Push(now+9*sim.TTI, func() {
		c.cur.control(c, r, dci.Format1A, 2, rrc.SecurityModeCommand{})
		if ctx.gen != g || ctx.state != ctxAccess {
			// Released mid-access (the UE re-camped elsewhere): the context
			// stays dead and the UE — now another cell's — is not touched.
			return
		}
		ctx.secured = true
		ctx.state = ctxConnected
		c.nConnected++
		ctx.lastActivity = c.cur.now
		ctx.rntiAge = c.cur.now
		u.State = ue.Connected
		u.RNTI = r
		if pend := u.TakePendingUL(); pend > 0 {
			ctx.ulQueue += pend
			c.aggQueue += pend
		}
		if pend := c.dlPending[u]; pend > 0 {
			ctx.dlQueue += pend
			c.aggQueue += pend
			delete(c.dlPending, u)
		}
		if ctx.dlQueue > 0 || ctx.ulQueue > 0 {
			c.ringAdd(ctx)
		} else {
			c.armIdle(ctx)
		}
		c.armRefresh(ctx)
	})
}

// pagingCycle is the paging-occasion period: every UE's paging frame
// recurs at this interval. The default 32 ms matches a common DRX
// configuration; the smart-paging defense coarsens it via the profile.
func (c *Cell) pagingCycle() time.Duration {
	if n := c.Profile.PagingCycleTTI; n > 0 {
		return time.Duration(n) * sim.TTI
	}
	return 32 * sim.TTI
}

// pagingBatchMax is the per-message paging record cap (LTE carries at
// most 16 records in one Paging message).
func (c *Cell) pagingBatchMax() int {
	if n := c.Profile.PagingBatchMax; n > 0 {
		return n
	}
	return 16
}

// schedulePaging queues an idle UE for its next paging occasion. A
// downlink arrival landing exactly on an occasion boundary is paged in
// that same subframe — the eNodeB assembles the paging message before the
// subframe goes on the air — not a full cycle later. All UEs queued for
// one occasion share batched paging messages (see flushPaging).
func (c *Cell) schedulePaging(u *ue.UE, now time.Duration) {
	cycle := c.pagingCycle()
	due := now + cycle - now%cycle
	if now%cycle == 0 {
		due = now
	}
	c.defense.PagingDelayTTIs += int64((due - now) / sim.TTI)
	occ := int64(due / sim.TTI)
	if c.pagingAt == nil {
		c.pagingAt = make(map[int64][]*ue.UE)
	}
	pending := c.pagingAt[occ]
	c.pagingAt[occ] = append(pending, u)
	if len(pending) == 0 {
		c.ctl.Push(due, func() { c.flushPaging(occ) })
	}
}

// flushPaging emits one paging occasion's records, batching up to the
// profile's per-message cap into each PRNTI message — same-occasion
// records share the PDCCH and the paging PRBs, as on a real eNodeB,
// instead of each UE costing its own message. Every paged UE then answers
// with mobile-terminated access on the standard timeline.
func (c *Cell) flushPaging(occ int64) {
	ues := c.pagingAt[occ]
	delete(c.pagingAt, occ)
	batchMax := c.pagingBatchMax()
	var records []rrc.PagingRecord
	var paged []*ue.UE
	flush := func() {
		if len(records) == 0 {
			return
		}
		// A paging record is S-TMSI sized; four fit in one robust PRB.
		nprb := (len(records) + 3) / 4
		c.cur.control(c, rnti.PRNTI, dci.Format1A, nprb, rrc.Paging{Records: records})
		c.defense.PagingMessages++
		c.defense.PagingRecords += int64(len(records))
		if c.m.enabled {
			c.m.pagingMsgs.Inc()
			c.m.pagingRecords.Add(int64(len(records)))
		}
		for _, pu := range paged {
			pu := pu
			c.ctl.Push(c.cur.now+6*sim.TTI, func() {
				c.RequestConnection(pu, rrc.CauseMTAccess, c.cur.now)
			})
		}
		records, paged = nil, nil
	}
	for _, u := range ues {
		// The camped check must come first: a UE that moved on belongs to
		// another cell's shard and may not even be read from this one.
		if !c.camped[u] || !u.HasTMSI || u.State != ue.Idle || u.CellID != c.ID {
			continue
		}
		shown := uint32(u.TMSI)
		if c.Profile.OneTimeIdentifiers {
			// Rotating paging pseudonym: useless for passive tracking.
			shown = uint32(c.rng.Uint64())
		}
		records = append(records, rrc.PagingRecord{TMSI: shown})
		paged = append(paged, u)
		if len(records) == batchMax {
			flush()
		}
	}
	flush()
}

// BeginHandover starts the source side of an X2-style handover of a
// connected UE: the (encrypted) reconfiguration command goes on the air
// now, and two TTIs later the context is released and the admission —
// with the UE's remaining byte queues — is posted to the handover sink.
// The fabric applies the admission at the target cell at the next
// synchronization point, so no plaintext identity is ever exposed in the
// target cell — exactly the property that forces the paper's attacker to
// re-map identities after handover.
func (c *Cell) BeginHandover(u *ue.UE, targetCellID int, now time.Duration) error {
	ctx, ok := c.byUE[u]
	if !ok || ctx.state != ctxConnected {
		return fmt.Errorf("enb: handover of %s: not connected in cell %d", u.Name, c.ID)
	}
	if c.hoSink == nil {
		return fmt.Errorf("enb: cell %d: no handover sink installed", c.ID)
	}
	// Encrypted RRCConnectionReconfiguration with mobilityControlInfo.
	c.ctl.Push(now, func() {
		c.cur.control(c, ctx.rnti, dci.Format1A, 2, nil)
	})
	dl, ul := ctx.dlQueue, ctx.ulQueue
	ctx.dlQueue, ctx.ulQueue = 0, 0
	c.aggQueue -= dl + ul
	c.ringRemove(ctx)
	// With its queues carried off, the context is idle-eligible: should the
	// release below somehow not run (it always does today), the inactivity
	// deadline still reclaims it, exactly as the dense walk would.
	c.armIdle(ctx)
	g := ctx.gen
	c.ctl.Push(now+2*sim.TTI, func() {
		// The UE keeps its state (Connected) and serving-cell binding until
		// the target admits it: writes to the UE from here would race with
		// its owning shard, and traffic arriving in the gap buffers against
		// the UE or the source cell instead of triggering spurious
		// contention-based access. The generation guard covers the context
		// having been released by other means and recycled meanwhile.
		if ctx.gen == g {
			c.releaseQuiet(ctx)
		}
		c.hoSink(u, targetCellID, dl, ul)
	})
	return nil
}

// AdmitHandover creates a connected, secured context for a UE arriving via
// handover (non-contention random access, ~10 ms). It must be called from
// the fabric's serial phase — it re-camps the UE onto this cell.
func (c *Cell) AdmitHandover(u *ue.UE, dlQueue, ulQueue int, now time.Duration) {
	c.Camp(u)
	u.State = ue.Connecting
	r, err := c.alloc.Allocate()
	if err != nil {
		u.State = ue.Idle
		return
	}
	ctx := c.newCtx()
	ctx.ue, ctx.rnti, ctx.state = u, r, ctxAccess
	ctx.secured = true
	ctx.dlQueue, ctx.ulQueue = dlQueue, ulQueue
	c.byRNTI[r] = ctx
	c.byUE[u] = ctx
	c.enroll(ctx)
	c.aggQueue += dlQueue + ulQueue
	g := ctx.gen
	c.ctl.Push(now+8*sim.TTI, func() {
		// Dedicated-preamble RACH completes; no contention resolution, no
		// plaintext identity on the air.
		c.cur.sf.RACH = append(c.cur.sf.RACH, phy.Preamble{ID: 60 + c.rng.IntN(4)})
		c.cur.control(c, r, dci.Format1A, 2, nil)
		if ctx.gen != g || ctx.state != ctxAccess {
			return // released before completion (the UE re-camped elsewhere)
		}
		ctx.state = ctxConnected
		c.nConnected++
		ctx.lastActivity = c.cur.now
		ctx.rntiAge = c.cur.now
		u.State = ue.Connected
		u.RNTI = r
		// Traffic that arrived during the brief context gap between release
		// at the source and admission here is carried into the new bearer.
		if pend := u.TakePendingUL(); pend > 0 {
			ctx.ulQueue += pend
			c.aggQueue += pend
		}
		if pend := c.dlPending[u]; pend > 0 {
			ctx.dlQueue += pend
			c.aggQueue += pend
			delete(c.dlPending, u)
		}
		if ctx.dlQueue > 0 || ctx.ulQueue > 0 {
			c.ringAdd(ctx)
		} else {
			c.armIdle(ctx)
		}
		c.armRefresh(ctx)
	})
}

// releaseQuiet tears down a UE context without touching the UE itself:
// the handover path uses it while the UE is formally still served by this
// cell but already bound for another, whose fabric shard owns its state.
func (c *Cell) releaseQuiet(ctx *ueCtx) {
	if ctx.state == ctxReleased {
		return
	}
	c.aggQueue -= ctx.dlQueue + ctx.ulQueue
	if ctx.state == ctxConnected {
		c.nConnected--
	}
	ctx.state = ctxReleased
	c.byRNTI[ctx.rnti] = nil
	delete(c.byUE, ctx.ue)
	c.alloc.Release(ctx.rnti)
	if !c.dense {
		c.ringRemove(ctx)
		// Settle the channel-walk epochs owed up to the point the dense
		// reference would last have stepped this UE, then freeze the walk.
		ctx.ue.CatchUpCQI(c.cqiLimit())
		ctx.ue.StopCQIAccrual()
		c.pendingRelease = append(c.pendingRelease, ctx)
	}
	// ctx is compacted out of c.order at the end of the current Tick.
}

// release tears down a UE context. withMessage emits the (encrypted)
// RRC release on the air first.
func (c *Cell) release(ctx *ueCtx, withMessage bool) {
	if ctx.state == ctxReleased {
		return
	}
	if withMessage && c.cur != nil {
		c.cur.control(c, ctx.rnti, dci.Format1A, 1, nil)
	}
	c.releaseQuiet(ctx)
	if ctx.ue.CellID == c.ID {
		ctx.ue.State = ue.Idle
		ctx.ue.RNTI = 0
	}
}
