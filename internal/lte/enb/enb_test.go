package enb_test

import (
	"testing"
	"time"

	"ltefp/internal/lte/dci"
	"ltefp/internal/lte/enb"
	"ltefp/internal/lte/epc"
	"ltefp/internal/lte/operator"
	"ltefp/internal/lte/phy"
	"ltefp/internal/lte/rrc"
	"ltefp/internal/lte/ue"
	"ltefp/internal/sim"
)

// recorder captures every subframe a cell transmits. Tick's subframe is
// cell-owned scratch, so the recorder deep-copies what it wants to keep.
type recorder struct {
	subframes []*phy.Subframe
}

func (r *recorder) Observe(_ int, sf *phy.Subframe) {
	cp := &phy.Subframe{Index: sf.Index}
	for _, tx := range sf.PDCCH {
		tx.Payload = append([]byte(nil), tx.Payload...)
		cp.PDCCH = append(cp.PDCCH, tx)
	}
	cp.RACH = append(cp.RACH, sf.RACH...)
	r.subframes = append(r.subframes, cp)
}

// plaintexts returns the non-nil plaintext payloads in transmission order.
func (r *recorder) plaintexts() []any {
	var out []any
	for _, sf := range r.subframes {
		for i := range sf.PDCCH {
			if sf.PDCCH[i].Plaintext != nil {
				out = append(out, sf.PDCCH[i].Plaintext)
			}
		}
	}
	return out
}

// rig is a one-cell test bench.
type rig struct {
	core *epc.Core
	cell *enb.Cell
	rec  *recorder
	now  time.Duration
}

func newRig(t *testing.T, p operator.Profile) *rig {
	t.Helper()
	rng := sim.NewRNG(7)
	core := epc.NewCore(rng.Fork())
	cell, err := enb.NewCell(1, p, core, rng.Fork())
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	cell.AddObserver(rec)
	return &rig{core: core, cell: cell, rec: rec}
}

func (r *rig) newUE(name string) *ue.UE {
	u := ue.New(name, epc.IMSI("90017000000"+name), sim.NewRNG(uint64(len(name))+3))
	u.TMSI = r.core.Attach(u.IMSI)
	u.HasTMSI = true
	r.cell.Camp(u)
	return u
}

func (r *rig) run(d time.Duration) {
	end := r.now + d
	for r.now < end {
		r.cell.Tick(r.now)
		r.now += sim.TTI
	}
}

func TestRACHEstablishesConnection(t *testing.T) {
	r := newRig(t, operator.Lab())
	u := r.newUE("a")
	r.cell.DeliverUL(u, 500, r.now)
	r.run(30 * time.Millisecond)

	if u.State != ue.Connected {
		t.Fatalf("UE state = %v after RACH window", u.State)
	}
	if !u.RNTI.IsC() {
		t.Fatalf("UE RNTI = %v, want a C-RNTI", u.RNTI)
	}

	// The establishment plaintexts appear in protocol order with the UE's
	// identity echoed in msg4 — the observable identity mapping reads.
	var sawRAR, sawReq, sawSetup, sawSMC bool
	for _, p := range r.rec.plaintexts() {
		switch m := p.(type) {
		case rrc.RandomAccessResponse:
			sawRAR = true
			if m.TempCRNTI != u.RNTI {
				t.Errorf("RAR temp C-RNTI %v != assigned %v", m.TempCRNTI, u.RNTI)
			}
		case rrc.ConnectionRequest:
			sawReq = true
			if !sawRAR {
				t.Error("msg3 before msg2")
			}
			if !m.Identity.HasTMSI || m.Identity.TMSI != uint32(u.TMSI) {
				t.Errorf("msg3 identity %v, want TMSI %v", m.Identity, u.TMSI)
			}
		case rrc.ConnectionSetup:
			sawSetup = true
			if !sawReq {
				t.Error("msg4 before msg3")
			}
			if m.ContentionResolution.TMSI != uint32(u.TMSI) {
				t.Error("msg4 does not echo the msg3 identity")
			}
		case rrc.SecurityModeCommand:
			sawSMC = true
			if !sawSetup {
				t.Error("security mode before msg4")
			}
		}
	}
	if !sawRAR || !sawReq || !sawSetup || !sawSMC {
		t.Fatalf("incomplete establishment: RAR=%v msg3=%v msg4=%v SMC=%v",
			sawRAR, sawReq, sawSetup, sawSMC)
	}
}

func TestDownlinkByteConservation(t *testing.T) {
	r := newRig(t, operator.Lab())
	u := r.newUE("a")
	const payload = 123456
	r.cell.DeliverDL(u, payload, r.now)
	r.run(2 * time.Second)

	_, _, bytesDL, _ := r.cell.Stats()
	if bytesDL != payload {
		t.Fatalf("granted %d bytes for a %d-byte payload", bytesDL, payload)
	}
	// The transport blocks on the air must cover the payload.
	var tbSum int
	for _, sf := range r.rec.subframes {
		for i := range sf.PDCCH {
			msg, err := dci.Parse(sf.PDCCH[i].Payload)
			if err != nil {
				t.Fatal(err)
			}
			if msg.Format != dci.Format1A {
				continue
			}
			b, err := msg.TransportBlockBytes()
			if err != nil {
				t.Fatal(err)
			}
			tbSum += b
		}
	}
	if tbSum < payload {
		t.Fatalf("air-interface transport blocks total %d < payload %d", tbSum, payload)
	}
}

func TestLabGrantsAreTight(t *testing.T) {
	// With no padding and zero link-adaptation slack, a single small
	// payload's transport block should be within one MCS step of it.
	r := newRig(t, operator.Lab())
	u := r.newUE("a")
	r.cell.DeliverUL(u, 1, r.now) // bring up the connection
	r.run(50 * time.Millisecond)
	before := len(r.rec.subframes)
	r.cell.DeliverDL(u, 200, r.now)
	r.run(50 * time.Millisecond)

	for _, sf := range r.rec.subframes[before:] {
		for i := range sf.PDCCH {
			msg, err := dci.Parse(sf.PDCCH[i].Payload)
			if err != nil || msg.Format != dci.Format1A || msg.MCS == 0 {
				continue // control traffic uses MCS 0
			}
			b, err := msg.TransportBlockBytes()
			if err != nil {
				t.Fatal(err)
			}
			if b < 200 || b > 200*13/10+8 {
				t.Fatalf("lab grant for 200 B payload was %d B", b)
			}
			return
		}
	}
	t.Fatal("no data grant observed")
}

func TestInactivityRelease(t *testing.T) {
	p := operator.Lab()
	p.InactivityTimeout = 200 * time.Millisecond
	r := newRig(t, p)
	u := r.newUE("a")
	r.cell.DeliverUL(u, 100, r.now)
	r.run(50 * time.Millisecond)
	if u.State != ue.Connected {
		t.Fatal("UE did not connect")
	}
	first := u.RNTI
	r.run(time.Second)
	if u.State != ue.Idle {
		t.Fatalf("UE state = %v after inactivity timeout", u.State)
	}
	if u.RNTI != 0 {
		t.Fatalf("UE kept RNTI %v after release", u.RNTI)
	}
	// New traffic re-establishes with a fresh RNTI.
	r.cell.DeliverUL(u, 100, r.now)
	r.run(50 * time.Millisecond)
	if u.State != ue.Connected {
		t.Fatal("UE did not reconnect")
	}
	if u.RNTI == first {
		t.Fatalf("reconnection reused RNTI %v immediately", first)
	}
}

func TestPagingForIdleDownlink(t *testing.T) {
	r := newRig(t, operator.Lab())
	u := r.newUE("a")
	r.cell.DeliverDL(u, 5000, r.now)
	r.run(200 * time.Millisecond)

	if u.State != ue.Connected {
		t.Fatalf("UE state = %v: paging did not bring it back", u.State)
	}
	sawPage := false
	for _, p := range r.rec.plaintexts() {
		if pg, ok := p.(rrc.Paging); ok {
			sawPage = true
			if len(pg.Records) != 1 || pg.Records[0].TMSI != uint32(u.TMSI) {
				t.Errorf("paging records = %+v, want the UE's TMSI", pg.Records)
			}
		}
	}
	if !sawPage {
		t.Fatal("no paging message observed")
	}
	_, _, bytesDL, _ := r.cell.Stats()
	if bytesDL != 5000 {
		t.Fatalf("delivered %d bytes after paging, want 5000", bytesDL)
	}
}

func TestHandover(t *testing.T) {
	rng := sim.NewRNG(9)
	core := epc.NewCore(rng.Fork())
	src, err := enb.NewCell(1, operator.Lab(), core, rng.Fork())
	if err != nil {
		t.Fatal(err)
	}
	dst, err := enb.NewCell(2, operator.Lab(), core, rng.Fork())
	if err != nil {
		t.Fatal(err)
	}
	dstRec := &recorder{}
	dst.AddObserver(dstRec)

	u := ue.New("a", "900170000000099", rng.Fork())
	u.TMSI = core.Attach(u.IMSI)
	u.HasTMSI = true
	src.Camp(u)

	now := time.Duration(0)
	run := func(d time.Duration) {
		end := now + d
		for now < end {
			src.Tick(now)
			dst.Tick(now)
			now += sim.TTI
		}
	}
	src.DeliverUL(u, 100, now)
	run(50 * time.Millisecond)
	if u.State != ue.Connected {
		t.Fatal("UE did not connect to source")
	}
	oldRNTI := u.RNTI
	src.DeliverDL(u, 50000, now) // in-flight data moves with the UE
	// Wire the source's handover sink directly to the target, as the
	// network fabric's admission mailbox does.
	src.SetHandoverSink(func(hu *ue.UE, target, dl, ul int) {
		dl += src.Detach(hu)
		src.Leave(hu)
		dst.Camp(hu)
		dst.AdmitHandover(hu, dl, ul, now)
	})
	if err := src.BeginHandover(u, dst.ID, now); err != nil {
		t.Fatal(err)
	}
	run(100 * time.Millisecond)

	if u.CellID != 2 {
		t.Fatalf("UE cell = %d after handover", u.CellID)
	}
	if u.State != ue.Connected {
		t.Fatalf("UE state = %v after handover", u.State)
	}
	if u.RNTI == oldRNTI {
		t.Fatal("target cell reused the source C-RNTI")
	}
	// Non-contention access: the target cell must expose no plaintext
	// identity — the property that forces the paper's attacker to re-map
	// after handover.
	for _, p := range dstRec.plaintexts() {
		switch p.(type) {
		case rrc.ConnectionRequest, rrc.ConnectionSetup:
			t.Fatalf("handover leaked identity plaintext %T in target cell", p)
		}
	}
	run(2 * time.Second)
	_, _, bytesDL, _ := dst.Stats()
	if bytesDL != 50000 {
		t.Fatalf("target delivered %d of the 50000 queued bytes", bytesDL)
	}
}

func TestHandoverRequiresConnection(t *testing.T) {
	rng := sim.NewRNG(10)
	core := epc.NewCore(rng.Fork())
	src, err := enb.NewCell(1, operator.Lab(), core, rng.Fork())
	if err != nil {
		t.Fatal(err)
	}
	dst, err := enb.NewCell(2, operator.Lab(), core, rng.Fork())
	if err != nil {
		t.Fatal(err)
	}
	u := ue.New("a", "900170000000098", rng.Fork())
	src.Camp(u)
	src.SetHandoverSink(func(*ue.UE, int, int, int) {})
	if err := src.BeginHandover(u, dst.ID, 0); err == nil {
		t.Fatal("handover of an idle UE succeeded")
	}
}

func TestPDCCHNeverOverlaps(t *testing.T) {
	p := operator.TMobile()
	p.BackgroundUEs = 0 // rig drives its own UEs
	r := newRig(t, p)
	// Enough UEs to congest the PDCCH.
	var ues []*ue.UE
	for i := 0; i < 12; i++ {
		ues = append(ues, r.newUE(string(rune('a'+i))))
	}
	for _, u := range ues {
		r.cell.DeliverUL(u, 100000, r.now)
		r.cell.DeliverDL(u, 100000, r.now)
	}
	r.run(500 * time.Millisecond)
	for _, sf := range r.rec.subframes {
		occupied := make(map[int]bool)
		for i := range sf.PDCCH {
			tx := &sf.PDCCH[i]
			for c := tx.FirstCCE; c < tx.FirstCCE+tx.AggLevel; c++ {
				if occupied[c] {
					t.Fatalf("subframe %d: CCE %d double-booked", sf.Index, c)
				}
				occupied[c] = true
			}
		}
	}
}

func TestNewCellRejectsBadProfile(t *testing.T) {
	p := operator.Lab()
	p.PRBs = 0
	if _, err := enb.NewCell(1, p, epc.NewCore(sim.NewRNG(1)), sim.NewRNG(2)); err == nil {
		t.Fatal("invalid profile accepted")
	}
}
