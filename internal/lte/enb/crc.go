package enb

import (
	"ltefp/internal/lte/crc"
	"ltefp/internal/lte/rnti"
)

// attachCRC computes the RNTI-masked CRC transmitted with a DCI payload.
func attachCRC(payload []byte, r rnti.RNTI) uint16 {
	return crc.Attach(payload, uint16(r))
}
