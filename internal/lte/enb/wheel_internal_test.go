package enb

import (
	"testing"

	"ltefp/internal/sim"
)

// TestWheelFiresExactlyOnSchedule arms entries across every span class —
// level 1, level 2, overflow, and already-past deadlines — and advances
// tick by tick checking each fires exactly once at exactly
// max(at, cur+1): never early, never late, including wraparound far past
// the 65 536-tick level-2 span.
func TestWheelFiresExactlyOnSchedule(t *testing.T) {
	g := sim.NewRNG(0x77ee1)
	var w timerWheel
	w.cur = -1
	w.advance(0) // the first Tick lands on subframe 0

	const horizon = 200_000
	type key struct {
		ctx  *ueCtx
		kind timerKind
	}
	expected := make(map[int64][]key) // fire tick -> armed entries
	armed := 0
	arm := func(at int64, kind timerKind) {
		ctx := &ueCtx{gen: uint32(armed)}
		w.arm(ctx, kind, at)
		fire := at
		if fire <= w.cur {
			fire = w.cur + 1 // arm clamps past deadlines to the next tick
		}
		expected[fire] = append(expected[fire], key{ctx, kind})
		armed++
	}

	// Boundary deltas around the slot, lap, and span edges.
	for _, d := range []int64{-5, 0, 1, 2, 255, 256, 257, 511, 512,
		65_535, 65_536, 65_537, 131_072, 180_000} {
		arm(w.cur+d, timerIdle)
		arm(w.cur+d, timerRefresh)
	}

	for tick := int64(1); tick <= horizon; tick++ {
		if g.Bool(0.01) {
			arm(tick+int64(g.IntN(190_000)), timerKind(g.IntN(2)))
		}
		w.advance(tick)
		got := make(map[key]int)
		for _, e := range w.dueIdle {
			if e.kind != timerIdle {
				t.Fatalf("tick %d: refresh entry in dueIdle", tick)
			}
			got[key{e.ctx, e.kind}]++
		}
		for _, e := range w.dueRefresh {
			if e.kind != timerRefresh {
				t.Fatalf("tick %d: idle entry in dueRefresh", tick)
			}
			got[key{e.ctx, e.kind}]++
		}
		want := make(map[key]int)
		for _, k := range expected[tick] {
			want[k]++
		}
		if len(got) != len(want) {
			t.Fatalf("tick %d: %d distinct entries fired, want %d", tick, len(got), len(want))
		}
		for k, n := range want {
			if got[k] != n {
				t.Fatalf("tick %d: entry fired %d times, want %d", tick, got[k], n)
			}
		}
		w.dueIdle = w.dueIdle[:0]
		w.dueRefresh = w.dueRefresh[:0]
		delete(expected, tick)
	}
	for at := range expected {
		if at <= horizon {
			t.Fatalf("entry due at tick %d never fired", at)
		}
	}
}

// TestWheelBatchAdvanceMatchesSingleStep drives two wheels with the same
// arms, one advanced a tick at a time and one in coarse jumps, and checks
// the accumulated due lists agree — the wheel must not skip slots when a
// cell catches up over a gap.
func TestWheelBatchAdvanceMatchesSingleStep(t *testing.T) {
	g := sim.NewRNG(0xba7c4)
	var step, batch timerWheel
	step.cur, batch.cur = -1, -1
	ctxs := make([]*ueCtx, 300)
	for i := range ctxs {
		ctxs[i] = &ueCtx{gen: uint32(i)}
		at := int64(g.IntN(150_000))
		kind := timerKind(g.IntN(2))
		step.arm(ctxs[i], kind, at)
		batch.arm(ctxs[i], kind, at)
	}
	const horizon = 160_000
	for tick := int64(0); tick <= horizon; tick++ {
		step.advance(tick)
	}
	for tick := int64(0); tick <= horizon; {
		tick += int64(1 + g.IntN(700))
		if tick > horizon {
			tick = horizon
		}
		batch.advance(tick)
		if tick == horizon {
			break
		}
	}
	type key struct {
		ctx  *ueCtx
		kind timerKind
	}
	collect := func(w *timerWheel) map[key]int {
		m := make(map[key]int)
		for _, e := range w.dueIdle {
			m[key{e.ctx, e.kind}]++
		}
		for _, e := range w.dueRefresh {
			m[key{e.ctx, e.kind}]++
		}
		return m
	}
	s, b := collect(&step), collect(&batch)
	if len(s) != len(b) {
		t.Fatalf("single-step fired %d entries, batch %d", len(s), len(b))
	}
	for k, n := range s {
		if b[k] != n {
			t.Fatalf("entry fired %d times single-step, %d batched", n, b[k])
		}
	}
}

// TestWheelStaleGeneration checks the recycling guard: arming captures the
// context's generation, so a context released and recycled before its
// deadline fires with the stale generation for the consumer to reject.
func TestWheelStaleGeneration(t *testing.T) {
	var w timerWheel
	w.cur = -1
	w.advance(0)
	ctx := &ueCtx{gen: 1}
	w.arm(ctx, timerIdle, 100)
	*ctx = ueCtx{gen: 2} // released, recycled for another UE
	w.advance(100)
	if len(w.dueIdle) != 1 {
		t.Fatalf("fired %d entries, want 1", len(w.dueIdle))
	}
	if e := w.dueIdle[0]; e.gen == ctx.gen {
		t.Fatal("stale entry carries the recycled generation; the consumer cannot reject it")
	}
}
