package enb

// timerKind says what a wheel entry is a deadline for.
type timerKind uint8

const (
	timerIdle    timerKind = iota // inactivity-release check
	timerRefresh                  // C-RNTI refresh occasion
)

const (
	wheelL1Bits  = 8
	wheelL1Slots = 1 << wheelL1Bits // 256 slots of 1 TTI
	wheelL2Slots = 256              // 256 slots of 256 TTIs
	wheelL1Span  = int64(wheelL1Slots)
	wheelL2Span  = int64(wheelL1Slots) * int64(wheelL2Slots) // 65 536 TTIs ≈ 65 s
)

// timerEntry is one armed deadline. Entries are hints, not commands: the
// consumer re-validates against current context state when one fires, so
// arming never needs to find and cancel a stale entry — the stale entry
// just fails validation. The generation number guards against the harder
// staleness: a context that was released and recycled for a different UE
// before the deadline came up.
type timerEntry struct {
	ctx  *ueCtx
	gen  uint32
	kind timerKind
	at   int64 // absolute fire tick (subframe index)
}

// timerWheel is a two-level hierarchical timer wheel in TTI units. Level 1
// resolves the next 256 ticks exactly; level 2 buckets the next ~65 s in
// 256-tick slots that cascade down as the wheel reaches them; anything
// beyond that sits in an overflow list visited once per level-2 lap.
// Advancing one tick is O(1) plus the entries actually due, which is what
// lets a cell with thousands of parked-but-connected UEs pay nothing per
// TTI for their pending inactivity and refresh deadlines.
type timerWheel struct {
	cur  int64 // last advanced tick; -1 before the first Tick
	l1   [wheelL1Slots][]timerEntry
	l2   [wheelL2Slots][]timerEntry
	over []timerEntry

	// dueIdle/dueRefresh collect this tick's expiries for the cell to
	// validate and act on; the cell truncates them after processing.
	dueIdle    []timerEntry
	dueRefresh []timerEntry
}

// arm schedules a deadline for ctx at the given absolute tick, capturing
// the context's current generation. Deadlines at or before the wheel's
// position are clamped to the next tick (the earliest the cell will look).
func (w *timerWheel) arm(ctx *ueCtx, kind timerKind, at int64) {
	if at <= w.cur {
		at = w.cur + 1
	}
	w.place(timerEntry{ctx: ctx, gen: ctx.gen, kind: kind, at: at})
}

func (w *timerWheel) place(e timerEntry) {
	switch d := e.at - w.cur; {
	case d <= wheelL1Span:
		s := e.at & (wheelL1Slots - 1)
		w.l1[s] = append(w.l1[s], e)
	case d <= wheelL2Span:
		s := (e.at >> wheelL1Bits) & (wheelL2Slots - 1)
		w.l2[s] = append(w.l2[s], e)
	default:
		w.over = append(w.over, e)
	}
}

// advance steps the wheel to tick `to`, appending every entry due at each
// crossed tick to the per-kind due list. Normal operation advances by
// exactly one tick per call.
func (w *timerWheel) advance(to int64) {
	for w.cur < to {
		w.cur++
		t := w.cur
		if t&(wheelL2Span-1) == 0 && len(w.over) > 0 {
			// Once per level-2 lap: pull the overflow entries that now fit
			// the wheel proper. Strictly-less keeps an entry exactly one
			// full lap away in overflow, so it can never land in the level-2
			// slot currently cascading.
			keep := w.over[:0]
			for _, e := range w.over {
				if e.at-t < wheelL2Span {
					w.place(e)
				} else {
					keep = append(keep, e)
				}
			}
			for i := len(keep); i < len(w.over); i++ {
				w.over[i] = timerEntry{}
			}
			w.over = keep
		}
		if t&(wheelL1Span-1) == 0 {
			// Cascade the level-2 slot covering the next 256 ticks down into
			// level 1. Every entry here has at ∈ [t, t+256), so place()
			// never appends back into the slot being drained.
			s := (t >> wheelL1Bits) & (wheelL2Slots - 1)
			if entries := w.l2[s]; len(entries) > 0 {
				w.l2[s] = entries[:0]
				for _, e := range entries {
					w.place(e)
				}
				for i := len(w.l2[s]); i < len(entries); i++ {
					entries[i] = timerEntry{}
				}
			}
		}
		s := t & (wheelL1Slots - 1)
		if entries := w.l1[s]; len(entries) > 0 {
			// An entry armed for exactly one lap ahead (at == t+256) shares
			// this slot; re-placing appends it back at an index never past
			// the one being read, so iterating the snapshot stays safe.
			w.l1[s] = entries[:0]
			for _, e := range entries {
				switch {
				case e.at != t:
					w.place(e)
				case e.kind == timerIdle:
					w.dueIdle = append(w.dueIdle, e)
				default:
					w.dueRefresh = append(w.dueRefresh, e)
				}
			}
			for i := len(w.l1[s]); i < len(entries); i++ {
				entries[i] = timerEntry{}
			}
		}
	}
}
