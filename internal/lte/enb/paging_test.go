package enb_test

import (
	"testing"
	"time"

	"ltefp/internal/lte/enb"
	"ltefp/internal/lte/operator"
	"ltefp/internal/lte/rrc"
	"ltefp/internal/lte/ue"
)

// firstPagingIndex delivers downlink to an idle UE at exactly a paging
// occasion boundary (64 ms) and reports the subframe index of the first
// paging message on the air.
func firstPagingIndex(t *testing.T) int64 {
	t.Helper()
	r := newRig(t, operator.Lab())
	u := r.newUE("a")
	r.run(64 * time.Millisecond)
	r.cell.DeliverDL(u, 500, r.now)
	r.run(80 * time.Millisecond)
	for _, sf := range r.rec.subframes {
		for i := range sf.PDCCH {
			if _, ok := sf.PDCCH[i].Plaintext.(rrc.Paging); ok {
				return sf.Index
			}
		}
	}
	t.Fatal("no paging message observed")
	return -1
}

// TestPagingOnOccasionBoundary pins the boundary-timing fix: downlink
// arriving exactly on a paging occasion is paged in that same subframe,
// not one full cycle later. Regression for the off-by-one where
// now%cycle == 0 pushed the page out to now+32ms. Covered on both
// scheduler implementations.
func TestPagingOnOccasionBoundary(t *testing.T) {
	for _, dense := range []bool{false, true} {
		prev := enb.SetDenseReference(dense)
		idx := firstPagingIndex(t)
		enb.SetDenseReference(prev)
		if idx != 64 {
			t.Errorf("dense=%v: boundary-time downlink paged at subframe %d, want 64 (the arrival's own occasion)", dense, idx)
		}
	}
}

// TestPagingDelayAccounting checks the occasion-wait accounting: a
// boundary arrival waits zero subframes, a mid-cycle arrival waits the
// remainder of the cycle.
func TestPagingDelayAccounting(t *testing.T) {
	r := newRig(t, operator.Lab())
	u := r.newUE("a")
	r.run(64 * time.Millisecond)
	r.cell.DeliverDL(u, 500, r.now)
	if d := r.cell.DefenseStats().PagingDelayTTIs; d != 0 {
		t.Errorf("boundary arrival accrued %d delay TTIs, want 0", d)
	}

	r2 := newRig(t, operator.Lab())
	u2 := r2.newUE("a")
	r2.run(5 * time.Millisecond)
	r2.cell.DeliverDL(u2, 500, r2.now)
	if d := r2.cell.DefenseStats().PagingDelayTTIs; d != 27 {
		t.Errorf("arrival at 5 ms accrued %d delay TTIs, want 27 (next 32 ms occasion)", d)
	}
}

// TestSameOccasionPagingBatched pins the batching fix: two idle UEs whose
// downlink arrives before the same paging occasion share one paging
// message carrying both records, instead of each costing its own PRNTI
// message (and PDCCH/CCE budget). Covered on both scheduler
// implementations.
func TestSameOccasionPagingBatched(t *testing.T) {
	for _, dense := range []bool{false, true} {
		prev := enb.SetDenseReference(dense)
		r := newRig(t, operator.Lab())
		a, b := r.newUE("a"), r.newUE("b")
		r.run(5 * time.Millisecond)
		r.cell.DeliverDL(a, 400, r.now)
		r.cell.DeliverDL(b, 400, r.now)
		r.run(100 * time.Millisecond)
		enb.SetDenseReference(prev)

		var pages []rrc.Paging
		for _, pl := range r.rec.plaintexts() {
			if pg, ok := pl.(rrc.Paging); ok {
				pages = append(pages, pg)
			}
		}
		if len(pages) != 1 {
			t.Fatalf("dense=%v: %d paging messages for one occasion, want 1 batched message", dense, len(pages))
		}
		recs := pages[0].Records
		if len(recs) != 2 || recs[0].TMSI != uint32(a.TMSI) || recs[1].TMSI != uint32(b.TMSI) {
			t.Fatalf("dense=%v: batched records = %+v, want both TMSIs in delivery order", dense, recs)
		}
		if st := r.cell.DefenseStats(); st.PagingMessages != 1 || st.PagingRecords != 2 {
			t.Errorf("dense=%v: paging stats = %+v, want 1 message / 2 records", dense, st)
		}
		if a.State != ue.Connected || b.State != ue.Connected {
			t.Errorf("dense=%v: paged UEs ended %v/%v, want both connected", dense, a.State, b.State)
		}
	}
}

// TestSmartPagingCycle checks the coarsened paging cycle: with a 128 TTI
// cycle, a 5 ms arrival is paged at subframe 128 and accrues the longer
// occasion wait — the latency cost smart paging trades for its larger
// per-occasion anonymity set.
func TestSmartPagingCycle(t *testing.T) {
	p := operator.Lab()
	p.PagingCycleTTI = 128
	r := newRig(t, p)
	u := r.newUE("a")
	r.run(5 * time.Millisecond)
	r.cell.DeliverDL(u, 500, r.now)
	r.run(200 * time.Millisecond)
	var idx int64 = -1
	for _, sf := range r.rec.subframes {
		for i := range sf.PDCCH {
			if _, ok := sf.PDCCH[i].Plaintext.(rrc.Paging); ok && idx < 0 {
				idx = sf.Index
			}
		}
	}
	if idx != 128 {
		t.Errorf("paged at subframe %d, want 128 under a 128 TTI cycle", idx)
	}
	if d := r.cell.DefenseStats().PagingDelayTTIs; d != 123 {
		t.Errorf("accrued %d delay TTIs, want 123", d)
	}
	if u.State != ue.Connected {
		t.Errorf("UE ended %v, want connected", u.State)
	}
}

// TestPagingBatchCap splits an oversubscribed occasion into multiple
// messages at the per-message record cap.
func TestPagingBatchCap(t *testing.T) {
	p := operator.Lab()
	p.PagingBatchMax = 2
	r := newRig(t, p)
	ues := []*ue.UE{r.newUE("a"), r.newUE("b"), r.newUE("c")}
	r.run(5 * time.Millisecond)
	for _, u := range ues {
		r.cell.DeliverDL(u, 300, r.now)
	}
	r.run(100 * time.Millisecond)
	var sizes []int
	for _, pl := range r.rec.plaintexts() {
		if pg, ok := pl.(rrc.Paging); ok {
			sizes = append(sizes, len(pg.Records))
		}
	}
	if len(sizes) != 2 || sizes[0] != 2 || sizes[1] != 1 {
		t.Fatalf("message record counts = %v, want [2 1] under cap 2", sizes)
	}
	for _, u := range ues {
		if u.State != ue.Connected {
			t.Fatalf("paged UE %s ended %v, want connected", u.Name, u.State)
		}
	}
}
