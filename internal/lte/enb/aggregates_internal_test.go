package enb

import (
	"fmt"
	"testing"
	"time"

	"ltefp/internal/lte/epc"
	"ltefp/internal/lte/operator"
	"ltefp/internal/lte/rrc"
	"ltefp/internal/lte/ue"
	"ltefp/internal/sim"
)

// checkAggregates compares the incrementally-maintained aggregates against
// a dense walk over the context table — the walk observeTick used to pay
// every sample. Released contexts linger in c.order until the next Tick
// compacts them; they are invisible to the incremental counters and to any
// reader (observeTick runs post-compaction), so the walk skips them too.
func checkAggregates(t *testing.T, c *Cell) {
	t.Helper()
	depth, connected := 0, 0
	for _, ctx := range c.order {
		if ctx.state == ctxReleased {
			continue
		}
		depth += ctx.dlQueue + ctx.ulQueue
		if ctx.state == ctxConnected {
			connected++
		}
	}
	if depth != c.aggQueue {
		t.Fatalf("cell %d: aggQueue = %d, dense walk = %d", c.ID, c.aggQueue, depth)
	}
	if connected != c.nConnected {
		t.Fatalf("cell %d: nConnected = %d, dense walk = %d", c.ID, c.nConnected, connected)
	}
	if got := c.Connected(); got != connected {
		t.Fatalf("cell %d: Connected() = %d, dense walk = %d", c.ID, got, connected)
	}
}

// TestAggregatesMatchWalk churns a two-cell deployment through every queue
// mutation and state transition the cell has — random access, SR-delayed
// uplink, paging-triggered downlink, grants, drains, inactivity release,
// and a handover out of one cell into the other — asserting after every
// subframe that the incremental aggregates equal the dense walk.
func TestAggregatesMatchWalk(t *testing.T) {
	prof := operator.TMobile()
	prof.InactivityTimeout = 150 * time.Millisecond
	rng := sim.NewRNG(11)
	core := epc.NewCore(rng.Fork())
	c1, err := NewCell(1, prof, core, rng.Fork())
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewCell(2, prof, core, rng.Fork())
	if err != nil {
		t.Fatal(err)
	}
	var now time.Duration
	cells := map[int]*Cell{1: c1, 2: c2}
	sink := func(u *ue.UE, target, dl, ul int) {
		cells[target].AdmitHandover(u, dl, ul, now)
	}
	c1.SetHandoverSink(sink)
	c2.SetHandoverSink(sink)

	ues := make([]*ue.UE, 10)
	for i := range ues {
		u := ue.New(fmt.Sprintf("agg-%d", i), epc.IMSI(fmt.Sprintf("90017%010d", i)), rng.Fork())
		u.TMSI = core.Attach(u.IMSI)
		u.HasTMSI = true
		c1.Camp(u)
		ues[i] = u
	}

	traffic := rng.Fork()
	handedOver := false
	for ; now < 2*time.Second; now += sim.TTI {
		u := ues[traffic.IntN(len(ues))]
		c := cells[u.CellID]
		switch traffic.IntN(10) {
		case 0:
			c.DeliverUL(u, traffic.IntN(4000)+40, now)
		case 1:
			c.DeliverDL(u, traffic.IntN(4000)+40, now)
		case 2:
			if u.State == ue.Idle {
				c.RequestConnection(u, rrc.CauseMOData, now)
			}
		}
		if !handedOver && now > 400*time.Millisecond && u.CellID == 1 && u.State == ue.Connected {
			if err := c1.BeginHandover(u, 2, now); err != nil {
				t.Fatal(err)
			}
			handedOver = true
		}
		c1.Tick(now)
		c2.Tick(now)
		checkAggregates(t, c1)
		checkAggregates(t, c2)
	}
	if !handedOver {
		t.Fatal("churn never exercised the handover path")
	}
	if c1.Connected()+c2.Connected() == 0 {
		t.Fatal("churn left no connected UEs; the test drove nothing")
	}
}
