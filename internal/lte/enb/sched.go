package enb

import (
	"slices"
	"time"

	"ltefp/internal/appmodel"
	"ltefp/internal/lte/dci"
	"ltefp/internal/lte/phy"
	"ltefp/internal/lte/rnti"
	"ltefp/internal/lte/tbs"
	"ltefp/internal/sim"
)

// builder assembles the subframe currently being transmitted: it tracks
// PDCCH occupancy and the shared-channel resource budgets, and collects the
// resulting transmissions.
type builder struct {
	sf  *phy.Subframe
	now time.Duration
	cce *phy.CCEMap

	dlPRBLeft int
	ulPRBLeft int
	dlRB      int // next downlink RB start
	ulRB      int
}

// Tick advances the cell by one subframe and returns everything it put on
// the air. The caller must invoke Tick exactly once per TTI in time order.
// The returned subframe (including the DCI payload bytes it references) is
// scratch owned by the cell and is overwritten by the next Tick; observers
// needing it longer must deep-copy it.
func (c *Cell) Tick(now time.Duration) *phy.Subframe {
	c.sf.Index = int64(now / sim.TTI)
	c.sf.PDCCH = c.sf.PDCCH[:0]
	c.sf.RACH = c.sf.RACH[:0]
	c.cce.Reset(c.Profile.NCCE)
	c.arena = c.arena[:0]
	b := &c.bld
	*b = builder{
		sf:        &c.sf,
		now:       now,
		cce:       &c.cce,
		dlPRBLeft: c.Profile.PRBs,
		ulPRBLeft: c.Profile.PRBs,
	}
	c.cur = b
	if c.dense {
		c.ctl.PopDue(now)
		c.applyShaping(b)
		c.scheduleData(b)
		c.checkInactivity(now)
		if c.Profile.RNTIRefreshEvery > 0 && b.sf.Index%32 == 0 {
			c.refreshRNTIs(now)
		}
		if b.sf.Index%100 == 0 {
			c.stepChannels()
		}
		c.compactOrder()
	} else {
		// O(active) phase order mirrors the dense reference exactly: the
		// wheel replaces the inactivity and refresh walks, channel walks
		// advance lazily at their read sites, and compaction runs only on
		// ticks that released a context.
		c.wheel.advance(b.sf.Index)
		c.ctl.PopDue(now)
		c.applyShaping(b)
		c.scheduleDataActive(b)
		c.fireIdle(now)
		c.fireRefresh(now)
		c.compactOrderActive()
	}
	c.lastTick = b.sf.Index
	c.cur = nil
	if c.m.enabled {
		c.observeTick(b)
	}
	for _, o := range c.observers {
		o.Observe(c.ID, b.sf)
	}
	return b.sf
}

// observeTick records the scheduler summary: PRB utilisation per
// direction, aggregate queue depth, and connected-UE count. Called only
// when metrics are enabled, so the disabled path pays one boolean test.
// Sampled every 16th TTI: the simulator executes a TTI in well under a
// microsecond, so per-tick histogram updates would dominate enabled-mode
// cost, while 62 samples/s still characterises the distributions. The
// queue-depth and connected-UE gauges read the incrementally-maintained
// aggregates, so the sample costs the same on a 10,000-UE cell as on an
// empty one.
func (c *Cell) observeTick(b *builder) {
	c.m.tick++
	if c.m.tick&15 != 0 {
		return
	}
	total := float64(c.Profile.PRBs)
	c.m.prbUtilDL.Observe(float64(c.Profile.PRBs-b.dlPRBLeft) / total)
	c.m.prbUtilUL.Observe(float64(c.Profile.PRBs-b.ulPRBLeft) / total)
	c.m.queueDepth.Set(int64(c.aggQueue))
	c.m.connected.Set(int64(c.nConnected))
}

// control emits a control-plane message (RAR, msg3 grant, msg4, paging,
// security command, release, reconfiguration). Control uses the most
// robust MCS; if the PDCCH is congested this subframe, emission retries
// next subframe — state transitions attached by the caller have already
// happened, as they would at the RRC layer.
func (b *builder) control(c *Cell, r rnti.RNTI, f dci.Format, nprb int, plaintext any) {
	agg := 4
	if !r.IsC() {
		agg = 8
	}
	if _, ok := b.tryEmit(c, r, f, agg, nprb, 0, plaintext); !ok {
		c.m.pdcchBlocked.Inc()
		e := c.newRetry()
		e.r, e.f, e.nprb, e.plaintext = r, f, nprb, plaintext
		c.ctl.PushFirer(b.now+sim.TTI, e)
	}
}

// ctlRetry is the deferred re-emission of a PDCCH-blocked control
// message. On a congested population-scale cell these retries are the
// dominant event class — every blocked subframe re-queues them — so they
// are preallocated Firer payloads recycled through a per-cell free list
// instead of per-retry closures. PushFirer shares the queue's push-order
// tie-break with Push, so a pooled retry fires at exactly the position
// the closure did.
type ctlRetry struct {
	c         *Cell
	r         rnti.RNTI
	f         dci.Format
	nprb      int
	plaintext any
}

// Fire re-attempts the blocked emission in the subframe now under
// assembly. The payload recycles itself first: if the PDCCH is still
// congested, control pops it straight back off the free list for the
// next retry, so a message blocked for N subframes costs one allocation
// total, not N.
func (e *ctlRetry) Fire() {
	c, r, f, nprb, plaintext := e.c, e.r, e.f, e.nprb, e.plaintext
	e.plaintext = nil
	c.retryFree = append(c.retryFree, e)
	c.cur.control(c, r, f, nprb, plaintext)
}

// newRetry returns a blank retry payload, recycling a fired one when
// possible.
func (c *Cell) newRetry() *ctlRetry {
	if n := len(c.retryFree); n > 0 {
		e := c.retryFree[n-1]
		c.retryFree[n-1] = nil
		c.retryFree = c.retryFree[:n-1]
		return e
	}
	return &ctlRetry{c: c}
}

// tryEmit places one DCI on the PDCCH and charges the shared-channel
// budget. It returns the scheduled transport block size in bytes.
func (b *builder) tryEmit(c *Cell, r rnti.RNTI, f dci.Format, agg, nprb, mcs int, plaintext any) (tbBytes int, ok bool) {
	budget := &b.dlPRBLeft
	rbNext := &b.dlRB
	if f == dci.Format0 {
		budget = &b.ulPRBLeft
		rbNext = &b.ulRB
	}
	if nprb < 1 || nprb > *budget {
		return 0, false
	}
	firstCCE, placed := b.cce.Place(r, agg, b.sf.Index)
	if !placed {
		return 0, false
	}
	rbStart := *rbNext
	if rbStart+nprb > c.Profile.PRBs {
		rbStart = 0
	}
	msg := dci.Message{
		Format:  f,
		RBStart: rbStart,
		NPRB:    nprb,
		MCS:     mcs,
		HARQ:    int(b.sf.Index) % 8,
		NDI:     true,
		TPC:     1,
	}
	// Pack into the cell-owned payload arena: slices into it stay valid for
	// the rest of the tick even if a later append regrows the arena, and
	// the whole arena is reused next tick.
	off := len(c.arena)
	for i := 0; i < dci.PayloadLen; i++ {
		c.arena = append(c.arena, 0)
	}
	payload := c.arena[off : off+dci.PayloadLen : off+dci.PayloadLen]
	if err := msg.PackInto(payload); err != nil {
		// A packing failure is a scheduler bug, not a runtime condition.
		panic("enb: packing DCI: " + err.Error())
	}
	itbs, _, err := tbs.ForMCS(mcs)
	if err != nil {
		panic("enb: MCS from scheduler out of range: " + err.Error())
	}
	tbBytes, err = tbs.Bytes(itbs, nprb)
	if err != nil {
		panic("enb: TBS lookup: " + err.Error())
	}
	b.sf.PDCCH = append(b.sf.PDCCH, phy.Transmission{
		Payload:   payload,
		MaskedCRC: attachCRC(payload, r),
		AggLevel:  agg,
		FirstCCE:  firstCCE,
		Plaintext: plaintext,
	})
	*budget -= nprb
	*rbNext = rbStart + nprb
	return tbBytes, true
}

// applyShaping runs the traffic-shaping defenses that inject bytes ahead
// of data scheduling: per-frame dummy bursts and the constant-rate
// downlink top-up. Both walk c.order in index order — identical on the
// dense and active paths — so every RNG draw and queue mutation sequences
// the same way on both, preserving the differential contract. With both
// defenses off this costs two branch tests per tick.
func (c *Cell) applyShaping(b *builder) {
	p := &c.Profile
	if p.DummyBurstProb > 0 && b.sf.Index%10 == 0 {
		for _, ctx := range c.order {
			if ctx.state != ctxConnected {
				continue
			}
			if !c.rng.Bool(p.DummyBurstProb) {
				continue
			}
			n := appmodel.DummyBurstBytes(c.rng, p.DummyBurstMaxBytes)
			ctx.dlQueue += n
			c.aggQueue += n
			c.ringAdd(ctx)
			c.defense.DummyBytes += int64(n)
			c.m.dummyBytes.Add(int64(n))
		}
	}
	if period := int64(p.ConstantRatePeriodTTI); period > 0 && b.sf.Index%period == 0 {
		for _, ctx := range c.order {
			if ctx.state != ctxConnected {
				continue
			}
			deficit := p.ConstantRateBytes - ctx.dlQueue
			if deficit <= 0 {
				continue
			}
			ctx.dlQueue += deficit
			c.aggQueue += deficit
			c.ringAdd(ctx)
			c.defense.CoverBytes += int64(deficit)
			c.m.coverBytes.Add(int64(deficit))
		}
	}
}

// scheduleData runs the per-TTI data scheduler of the dense reference: a
// rotating round-robin over every enrolled context, granting downlink
// assignments (format 1A) and uplink grants (format 0) against the
// remaining PRB budget.
func (c *Cell) scheduleData(b *builder) {
	n := len(c.order)
	if n == 0 {
		return
	}
	idx := c.rrPtr
	for i := 0; i < n; i++ {
		c.visitData(b, c.order[idx])
		idx++
		if idx == n {
			idx = 0
		}
	}
	c.rrPtr++
	if c.rrPtr == n {
		c.rrPtr = 0
	}
}

// scheduleDataActive is scheduleData over the active ring: it visits only
// the contexts with pending bytes, in exactly the sequence the dense
// rotation would reach them — the ring is sorted by scheduling-order
// position, so splitting it at the rotation pointer reproduces the
// rotated walk — then prunes entries the visits drained. Contexts whose
// scheduling interval has not yet come up stay in the ring and take the
// same no-op visit the dense walk gives them.
func (c *Cell) scheduleDataActive(b *builder) {
	n := len(c.order)
	if n == 0 {
		return
	}
	if a := c.active; len(a) > 0 {
		i, j := 0, len(a)
		for i < j {
			h := int(uint(i+j) >> 1)
			if a[h].ordIdx < c.rrPtr {
				i = h + 1
			} else {
				j = h
			}
		}
		for _, ctx := range a[i:] {
			c.visitData(b, ctx)
		}
		for _, ctx := range a[:i] {
			c.visitData(b, ctx)
		}
	}
	c.rrPtr++
	if c.rrPtr == n {
		c.rrPtr = 0
	}
	kept := c.active[:0]
	for _, ctx := range c.active {
		if ctx.dlQueue > 0 || ctx.ulQueue > 0 {
			kept = append(kept, ctx)
		} else {
			ctx.inRing = false
		}
	}
	for i := len(kept); i < len(c.active); i++ {
		c.active[i] = nil
	}
	c.active = kept
}

// visitData gives one context its round-robin turn. This is the dense
// walk's per-slot behaviour — including the order of every RNG draw —
// factored out so the reference and the active ring share it bit for bit.
// The channel-walk catch-up is a no-op under the dense reference, whose
// eager stepChannels keeps every UE current.
func (c *Cell) visitData(b *builder, ctx *ueCtx) {
	if ctx.state != ctxConnected {
		return
	}
	wantDL := ctx.dlQueue > 0 && b.sf.Index >= ctx.nextDLSF && b.dlPRBLeft > 0
	wantUL := ctx.ulQueue > 0 && b.sf.Index >= ctx.nextULSF && b.ulPRBLeft > 0
	if !wantDL && !wantUL {
		return
	}
	ctx.ue.CatchUpCQI(b.sf.Index - 1)
	mcs := ctx.ue.MCS()
	p := &c.Profile
	gotGrant := false
	if wantDL {
		if granted := c.grant(b, ctx, dci.Format1A, mcs, ctx.dlQueue, b.dlPRBLeft); granted > 0 {
			if granted > ctx.dlQueue {
				granted = ctx.dlQueue
			}
			ctx.dlQueue -= granted
			c.aggQueue -= granted
			ctx.lastActivity = b.now
			// Contention jitter delays the start of service for a new
			// burst; a backlogged UE keeps its scheduling cadence, as
			// under any work-conserving scheduler.
			ctx.nextDLSF = b.sf.Index + int64(p.SchedPeriodTTI)
			if ctx.dlQueue == 0 {
				ctx.nextDLSF += c.jitter()
			}
			gotGrant = true
			c.grantsDL++
			c.bytesDL += int64(granted)
			c.m.grantsDL.Inc()
		}
	}
	if wantUL {
		if granted := c.grant(b, ctx, dci.Format0, mcs, ctx.ulQueue, b.ulPRBLeft); granted > 0 {
			if granted > ctx.ulQueue {
				granted = ctx.ulQueue
			}
			ctx.ulQueue -= granted
			c.aggQueue -= granted
			ctx.lastActivity = b.now
			ctx.nextULSF = b.sf.Index + int64(p.SchedPeriodTTI)
			if ctx.ulQueue == 0 {
				ctx.nextULSF += c.jitter()
			}
			gotGrant = true
			c.grantsUL++
			c.bytesUL += int64(granted)
			c.m.grantsUL.Inc()
		}
	}
	if gotGrant && ctx.dlQueue == 0 && ctx.ulQueue == 0 {
		c.armIdle(ctx)
	}
}

// grant sizes and emits one data grant, returning the transport block size
// in bytes (0 when the PDCCH or PRB budget blocked it).
func (c *Cell) grant(b *builder, ctx *ueCtx, f dci.Format, mcs, queued, prbLeft int) int {
	p := &c.Profile
	want := queued
	if p.PaddingProb > 0 && c.rng.Bool(p.PaddingProb) {
		// Over-grants scale with the payload (a scheduler rounds a grant
		// up within its allocation granularity), bounded by the profile's
		// absolute cap.
		pad := queued / 3
		if pad < 24 {
			pad = 24
		}
		if pad > p.PaddingMaxBytes {
			pad = p.PaddingMaxBytes
		}
		want += c.rng.IntN(pad + 1)
		c.m.paddingEvents.Inc()
	}
	morphBase := want
	if p.PadBuckets {
		want = padBucket(want)
	}
	if q := p.GrantQuantum; q > 0 {
		// Quantize the grant onto a coarse byte lattice with one quantum of
		// random slack: all payloads collapse onto few distinct transport
		// block targets, and the random step keeps the lattice position from
		// leaking the payload's residue.
		steps := (want + q - 1) / q
		if steps < 1 {
			steps = 1
		}
		steps += c.rng.IntN(2)
		want = steps * q
	}
	// Defense cost accounting charges only the morphing/quantization
	// inflation, not the baseline over-granting (PaddingProb, TBS
	// granularity, link-adaptation slack) an undefended network shows.
	if over := int64(want - morphBase); over > 0 {
		c.defense.PadBytes += over
		c.m.padBytes.Add(over)
	}
	itbs, _, err := tbs.ForMCS(mcs)
	if err != nil {
		panic("enb: UE MCS out of range: " + err.Error())
	}
	maxPRB := p.MaxPRBPerGrant
	if prbLeft < maxPRB {
		maxPRB = prbLeft
	}
	nprb, _ := tbs.PRBsFor(itbs, want, maxPRB)
	// Link adaptation tightens the grant: with the PRB count fixed, the
	// MCS is lowered while the transport block still fits the payload, so
	// small packets get small transport blocks instead of a padded block
	// at the channel's full rate (srsENB behaves the same way). This is
	// what makes TBS track payload size — the leak the paper exploits.
	ueITBS := itbs
	for itbs > 0 {
		smaller, err := tbs.Bytes(itbs-1, nprb)
		if err != nil || smaller < want {
			break
		}
		itbs--
	}
	// Production schedulers do not size grants exactly: they leave up to
	// LinkAdaptSlack MCS steps of headroom (never exceeding what the
	// channel supports), re-blurring the TBS↔payload correspondence.
	if s := p.LinkAdaptSlack; s > 0 {
		itbs += c.rng.IntN(s + 1)
		if itbs > ueITBS {
			itbs = ueITBS
		}
	}
	mcs = mcsForITBS(itbs)
	tb, ok := b.tryEmit(c, ctx.rnti, f, aggForCQI(ctx.ue.CQI), nprb, mcs, nil)
	if !ok {
		c.m.pdcchBlocked.Inc()
		return 0
	}
	return tb
}

// padBucket morphs a payload size up to the next traffic-morphing bucket:
// powers of two from 128 bytes, then 16 KiB multiples for bulk transfers.
// Collapsing sizes onto a few buckets is what destroys the size feature.
func padBucket(want int) int {
	if want <= 128 {
		return 128
	}
	if want <= 64*1024 {
		b := 128
		for b < want {
			b *= 2
		}
		return b
	}
	const step = 16 * 1024
	return (want + step - 1) / step * step
}

// jitter draws the grant-delay jitter of this operator.
func (c *Cell) jitter() int64 {
	j := c.Profile.GrantJitterTTI
	if j <= 0 {
		return 0
	}
	return int64(c.rng.IntN(j + 1))
}

// mcsForITBS inverts the MCS → I_TBS mapping (TS 36.213 Table 7.1.7.1-1),
// picking the lowest-order modulation that reaches the index.
func mcsForITBS(itbs int) int {
	switch {
	case itbs <= 9:
		return itbs
	case itbs <= 15:
		return itbs + 1
	default:
		return itbs + 2
	}
}

// aggForCQI picks the PDCCH aggregation level link adaptation would: worse
// channels need more CCEs.
func aggForCQI(cqi float64) int {
	switch {
	case cqi >= 12:
		return 1
	case cqi >= 9:
		return 2
	case cqi >= 6:
		return 4
	default:
		return 8
	}
}

// refreshRNTIs is the dense reference's side of the paper's §VIII-B
// countermeasure: every 32 TTIs it scans for connected UEs whose C-RNTI
// has aged past the refresh period. A passive observer sees the old RNTI
// fall silent and an unlinkable new one appear, resetting its tracking.
func (c *Cell) refreshRNTIs(now time.Duration) {
	for _, ctx := range c.order {
		if ctx.state != ctxConnected {
			continue
		}
		if now-ctx.rntiAge < c.Profile.RNTIRefreshEvery {
			continue
		}
		c.refreshOne(ctx, now)
	}
}

// refreshOne gives one connected context a fresh C-RNTI via an encrypted
// reconfiguration, reporting false when the RNTI space is exhausted (the
// old identity is kept for this round).
func (c *Cell) refreshOne(ctx *ueCtx, now time.Duration) bool {
	fresh, err := c.alloc.Allocate()
	if err != nil {
		return false
	}
	// Encrypted RRCConnectionReconfiguration on the old identity.
	c.cur.control(c, ctx.rnti, dci.Format1A, 1, nil)
	c.byRNTI[ctx.rnti] = nil
	c.alloc.Release(ctx.rnti)
	ctx.rnti = fresh
	ctx.rntiAge = now
	c.byRNTI[fresh] = ctx
	ctx.ue.RNTI = fresh
	c.m.rntiRefreshes.Inc()
	return true
}

// fireRefresh processes the refresh occasions the wheel surfaced for this
// tick. Entries are re-validated against live state — the walk's own
// conditions — then acted on in scheduling-order position, so the emitted
// reconfigurations and RNG draws sequence exactly as the dense scan's.
// Each refresh (or exhaustion retry) arms the context's next occasion.
func (c *Cell) fireRefresh(now time.Duration) {
	due := c.wheel.dueRefresh
	if len(due) == 0 {
		return
	}
	slices.SortFunc(due, func(a, b timerEntry) int { return a.ctx.ordIdx - b.ctx.ordIdx })
	for _, e := range due {
		ctx := e.ctx
		if e.gen != ctx.gen || ctx.state != ctxConnected {
			continue
		}
		if now-ctx.rntiAge < c.Profile.RNTIRefreshEvery {
			continue // refreshed since arming; the newer entry covers it
		}
		if c.refreshOne(ctx, now) {
			c.armRefresh(ctx)
		} else {
			c.wheel.arm(ctx, timerRefresh, e.at+32) // retry next occasion
		}
	}
	c.wheel.dueRefresh = due[:0]
}

// fireIdle processes the inactivity deadlines the wheel surfaced for this
// tick. A deadline is a hint, not a command: the release conditions are
// re-validated in full, so a context is released at exactly the tick the
// dense walk would pick. A fired entry ends its tenancy's one-entry
// chain; if the context is merely not idle long enough (activity since
// arming moved the deadline), the chain re-arms at the new deadline, and
// if it is busy, the ring sweep re-arms when the queues next drain.
func (c *Cell) fireIdle(now time.Duration) {
	due := c.wheel.dueIdle
	if len(due) == 0 {
		return
	}
	slices.SortFunc(due, func(a, b timerEntry) int { return a.ctx.ordIdx - b.ctx.ordIdx })
	for _, e := range due {
		ctx := e.ctx
		if e.gen != ctx.gen {
			continue // stale tenancy: the recycled context owns its own chain
		}
		ctx.idleArmed = false
		if ctx.state != ctxConnected {
			continue
		}
		if ctx.dlQueue > 0 || ctx.ulQueue > 0 {
			continue
		}
		if now-ctx.lastActivity < c.Profile.InactivityTimeout {
			c.armIdle(ctx)
			continue
		}
		c.release(ctx, true)
	}
	c.wheel.dueIdle = due[:0]
}

// checkInactivity is the dense reference's release scan: every tick it
// walks all contexts for connections silent past the operator's
// inactivity timeout — the mechanism behind the RNTI churn the paper's
// tracker must survive.
func (c *Cell) checkInactivity(now time.Duration) {
	for _, ctx := range c.order {
		if ctx.state != ctxConnected {
			continue
		}
		if ctx.dlQueue > 0 || ctx.ulQueue > 0 {
			continue
		}
		if now-ctx.lastActivity >= c.Profile.InactivityTimeout {
			c.release(ctx, true)
		}
	}
}

// stepChannels eagerly advances every attached UE's channel random walk
// (dense reference only, every 100 subframes); the active scheduler
// instead replays owed epochs at each read site via ue.CatchUpCQI.
func (c *Cell) stepChannels() {
	for _, ctx := range c.order {
		if ctx.state != ctxReleased {
			ctx.ue.StepCQI(100 * sim.TTI)
		}
	}
}

// compactOrder drops released contexts from the scheduling order (dense
// reference; rescans the whole table every tick).
func (c *Cell) compactOrder() {
	kept := c.order[:0]
	for _, ctx := range c.order {
		if ctx.state != ctxReleased {
			kept = append(kept, ctx)
		}
	}
	for i := len(kept); i < len(c.order); i++ {
		c.order[i] = nil
	}
	c.order = kept
	if len(c.order) == 0 {
		c.rrPtr = 0
	} else {
		c.rrPtr %= len(c.order)
	}
}

// compactOrderActive drops released contexts from the scheduling order and
// recycles their allocations. It runs only on ticks that released
// something, scanning from the lowest released slot, and replicates the
// dense compaction's slot shifts and rotation-pointer arithmetic exactly —
// the surviving contexts' ordIdx values are their dense positions.
func (c *Cell) compactOrderActive() {
	if len(c.pendingRelease) == 0 {
		return
	}
	first := c.pendingRelease[0].ordIdx
	for _, ctx := range c.pendingRelease[1:] {
		if ctx.ordIdx < first {
			first = ctx.ordIdx
		}
	}
	kept := first
	for i := first; i < len(c.order); i++ {
		ctx := c.order[i]
		if ctx.state == ctxReleased {
			continue
		}
		c.order[kept] = ctx
		ctx.ordIdx = kept
		kept++
	}
	for i := kept; i < len(c.order); i++ {
		c.order[i] = nil
	}
	c.order = c.order[:kept]
	if len(c.order) == 0 {
		c.rrPtr = 0
	} else {
		c.rrPtr %= len(c.order)
	}
	for _, ctx := range c.pendingRelease {
		g := ctx.gen
		*ctx = ueCtx{gen: g + 1}
		c.free = append(c.free, ctx)
	}
	c.pendingRelease = c.pendingRelease[:0]
}
