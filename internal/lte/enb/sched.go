package enb

import (
	"time"

	"ltefp/internal/lte/dci"
	"ltefp/internal/lte/phy"
	"ltefp/internal/lte/rnti"
	"ltefp/internal/lte/tbs"
	"ltefp/internal/sim"
)

// builder assembles the subframe currently being transmitted: it tracks
// PDCCH occupancy and the shared-channel resource budgets, and collects the
// resulting transmissions.
type builder struct {
	sf  *phy.Subframe
	now time.Duration
	cce *phy.CCEMap

	dlPRBLeft int
	ulPRBLeft int
	dlRB      int // next downlink RB start
	ulRB      int
}

// Tick advances the cell by one subframe and returns everything it put on
// the air. The caller must invoke Tick exactly once per TTI in time order.
// The returned subframe (including the DCI payload bytes it references) is
// scratch owned by the cell and is overwritten by the next Tick; observers
// needing it longer must deep-copy it.
func (c *Cell) Tick(now time.Duration) *phy.Subframe {
	c.sf.Index = int64(now / sim.TTI)
	c.sf.PDCCH = c.sf.PDCCH[:0]
	c.sf.RACH = c.sf.RACH[:0]
	c.cce.Reset(c.Profile.NCCE)
	c.arena = c.arena[:0]
	b := &c.bld
	*b = builder{
		sf:        &c.sf,
		now:       now,
		cce:       &c.cce,
		dlPRBLeft: c.Profile.PRBs,
		ulPRBLeft: c.Profile.PRBs,
	}
	c.cur = b
	c.ctl.PopDue(now)
	c.scheduleData(b)
	c.checkInactivity(now)
	if c.Profile.RNTIRefreshEvery > 0 && b.sf.Index%32 == 0 {
		c.refreshRNTIs(now)
	}
	if b.sf.Index%100 == 0 {
		c.stepChannels()
	}
	c.compactOrder()
	c.cur = nil
	if c.m.enabled {
		c.observeTick(b)
	}
	for _, o := range c.observers {
		o.Observe(c.ID, b.sf)
	}
	return b.sf
}

// observeTick records the scheduler summary: PRB utilisation per
// direction, aggregate queue depth, and connected-UE count. Called only
// when metrics are enabled, so the disabled path pays one boolean test.
// Sampled every 16th TTI: the simulator executes a TTI in well under a
// microsecond, so per-tick histogram updates would dominate enabled-mode
// cost, while 62 samples/s still characterises the distributions. The
// queue-depth and connected-UE gauges read the incrementally-maintained
// aggregates, so the sample costs the same on a 10,000-UE cell as on an
// empty one.
func (c *Cell) observeTick(b *builder) {
	c.m.tick++
	if c.m.tick&15 != 0 {
		return
	}
	total := float64(c.Profile.PRBs)
	c.m.prbUtilDL.Observe(float64(c.Profile.PRBs-b.dlPRBLeft) / total)
	c.m.prbUtilUL.Observe(float64(c.Profile.PRBs-b.ulPRBLeft) / total)
	c.m.queueDepth.Set(int64(c.aggQueue))
	c.m.connected.Set(int64(c.nConnected))
}

// control emits a control-plane message (RAR, msg3 grant, msg4, paging,
// security command, release, reconfiguration). Control uses the most
// robust MCS; if the PDCCH is congested this subframe, emission retries
// next subframe — state transitions attached by the caller have already
// happened, as they would at the RRC layer.
func (b *builder) control(c *Cell, r rnti.RNTI, f dci.Format, nprb int, plaintext any) {
	agg := 4
	if !r.IsC() {
		agg = 8
	}
	if _, ok := b.tryEmit(c, r, f, agg, nprb, 0, plaintext); !ok {
		c.m.pdcchBlocked.Inc()
		c.ctl.Push(b.now+sim.TTI, func() {
			c.cur.control(c, r, f, nprb, plaintext)
		})
	}
}

// tryEmit places one DCI on the PDCCH and charges the shared-channel
// budget. It returns the scheduled transport block size in bytes.
func (b *builder) tryEmit(c *Cell, r rnti.RNTI, f dci.Format, agg, nprb, mcs int, plaintext any) (tbBytes int, ok bool) {
	budget := &b.dlPRBLeft
	rbNext := &b.dlRB
	if f == dci.Format0 {
		budget = &b.ulPRBLeft
		rbNext = &b.ulRB
	}
	if nprb < 1 || nprb > *budget {
		return 0, false
	}
	firstCCE, placed := b.cce.Place(r, agg, b.sf.Index)
	if !placed {
		return 0, false
	}
	rbStart := *rbNext
	if rbStart+nprb > c.Profile.PRBs {
		rbStart = 0
	}
	msg := dci.Message{
		Format:  f,
		RBStart: rbStart,
		NPRB:    nprb,
		MCS:     mcs,
		HARQ:    int(b.sf.Index) % 8,
		NDI:     true,
		TPC:     1,
	}
	// Pack into the cell-owned payload arena: slices into it stay valid for
	// the rest of the tick even if a later append regrows the arena, and
	// the whole arena is reused next tick.
	off := len(c.arena)
	for i := 0; i < dci.PayloadLen; i++ {
		c.arena = append(c.arena, 0)
	}
	payload := c.arena[off : off+dci.PayloadLen : off+dci.PayloadLen]
	if err := msg.PackInto(payload); err != nil {
		// A packing failure is a scheduler bug, not a runtime condition.
		panic("enb: packing DCI: " + err.Error())
	}
	itbs, _, err := tbs.ForMCS(mcs)
	if err != nil {
		panic("enb: MCS from scheduler out of range: " + err.Error())
	}
	tbBytes, err = tbs.Bytes(itbs, nprb)
	if err != nil {
		panic("enb: TBS lookup: " + err.Error())
	}
	b.sf.PDCCH = append(b.sf.PDCCH, phy.Transmission{
		Payload:   payload,
		MaskedCRC: attachCRC(payload, r),
		AggLevel:  agg,
		FirstCCE:  firstCCE,
		Plaintext: plaintext,
	})
	*budget -= nprb
	*rbNext = rbStart + nprb
	return tbBytes, true
}

// scheduleData runs the per-TTI data scheduler: a rotating round-robin
// over connected UEs, granting downlink assignments (format 1A) and uplink
// grants (format 0) against the remaining PRB budget.
func (c *Cell) scheduleData(b *builder) {
	n := len(c.order)
	if n == 0 {
		return
	}
	p := &c.Profile
	for i := 0; i < n; i++ {
		ctx := c.order[(c.rrPtr+i)%n]
		if ctx.state != ctxConnected {
			continue
		}
		mcs := ctx.ue.MCS()
		if ctx.dlQueue > 0 && b.sf.Index >= ctx.nextDLSF && b.dlPRBLeft > 0 {
			if granted := c.grant(b, ctx, dci.Format1A, mcs, ctx.dlQueue, b.dlPRBLeft); granted > 0 {
				if granted > ctx.dlQueue {
					granted = ctx.dlQueue
				}
				ctx.dlQueue -= granted
				c.aggQueue -= granted
				ctx.lastActivity = b.now
				// Contention jitter delays the start of service for a new
				// burst; a backlogged UE keeps its scheduling cadence, as
				// under any work-conserving scheduler.
				ctx.nextDLSF = b.sf.Index + int64(p.SchedPeriodTTI)
				if ctx.dlQueue == 0 {
					ctx.nextDLSF += c.jitter()
				}
				c.grantsDL++
				c.bytesDL += int64(granted)
				c.m.grantsDL.Inc()
			}
		}
		if ctx.ulQueue > 0 && b.sf.Index >= ctx.nextULSF && b.ulPRBLeft > 0 {
			if granted := c.grant(b, ctx, dci.Format0, mcs, ctx.ulQueue, b.ulPRBLeft); granted > 0 {
				if granted > ctx.ulQueue {
					granted = ctx.ulQueue
				}
				ctx.ulQueue -= granted
				c.aggQueue -= granted
				ctx.lastActivity = b.now
				ctx.nextULSF = b.sf.Index + int64(p.SchedPeriodTTI)
				if ctx.ulQueue == 0 {
					ctx.nextULSF += c.jitter()
				}
				c.grantsUL++
				c.bytesUL += int64(granted)
				c.m.grantsUL.Inc()
			}
		}
	}
	c.rrPtr = (c.rrPtr + 1) % n
}

// grant sizes and emits one data grant, returning the transport block size
// in bytes (0 when the PDCCH or PRB budget blocked it).
func (c *Cell) grant(b *builder, ctx *ueCtx, f dci.Format, mcs, queued, prbLeft int) int {
	p := &c.Profile
	want := queued
	if p.PaddingProb > 0 && c.rng.Bool(p.PaddingProb) {
		// Over-grants scale with the payload (a scheduler rounds a grant
		// up within its allocation granularity), bounded by the profile's
		// absolute cap.
		pad := queued / 3
		if pad < 24 {
			pad = 24
		}
		if pad > p.PaddingMaxBytes {
			pad = p.PaddingMaxBytes
		}
		want += c.rng.IntN(pad + 1)
		c.m.paddingEvents.Inc()
	}
	if p.PadBuckets {
		want = padBucket(want)
	}
	itbs, _, err := tbs.ForMCS(mcs)
	if err != nil {
		panic("enb: UE MCS out of range: " + err.Error())
	}
	maxPRB := p.MaxPRBPerGrant
	if prbLeft < maxPRB {
		maxPRB = prbLeft
	}
	nprb, _ := tbs.PRBsFor(itbs, want, maxPRB)
	// Link adaptation tightens the grant: with the PRB count fixed, the
	// MCS is lowered while the transport block still fits the payload, so
	// small packets get small transport blocks instead of a padded block
	// at the channel's full rate (srsENB behaves the same way). This is
	// what makes TBS track payload size — the leak the paper exploits.
	ueITBS := itbs
	for itbs > 0 {
		smaller, err := tbs.Bytes(itbs-1, nprb)
		if err != nil || smaller < want {
			break
		}
		itbs--
	}
	// Production schedulers do not size grants exactly: they leave up to
	// LinkAdaptSlack MCS steps of headroom (never exceeding what the
	// channel supports), re-blurring the TBS↔payload correspondence.
	if s := p.LinkAdaptSlack; s > 0 {
		itbs += c.rng.IntN(s + 1)
		if itbs > ueITBS {
			itbs = ueITBS
		}
	}
	mcs = mcsForITBS(itbs)
	tb, ok := b.tryEmit(c, ctx.rnti, f, aggForCQI(ctx.ue.CQI), nprb, mcs, nil)
	if !ok {
		c.m.pdcchBlocked.Inc()
		return 0
	}
	return tb
}

// padBucket morphs a payload size up to the next traffic-morphing bucket:
// powers of two from 128 bytes, then 16 KiB multiples for bulk transfers.
// Collapsing sizes onto a few buckets is what destroys the size feature.
func padBucket(want int) int {
	if want <= 128 {
		return 128
	}
	if want <= 64*1024 {
		b := 128
		for b < want {
			b *= 2
		}
		return b
	}
	const step = 16 * 1024
	return (want + step - 1) / step * step
}

// jitter draws the grant-delay jitter of this operator.
func (c *Cell) jitter() int64 {
	j := c.Profile.GrantJitterTTI
	if j <= 0 {
		return 0
	}
	return int64(c.rng.IntN(j + 1))
}

// mcsForITBS inverts the MCS → I_TBS mapping (TS 36.213 Table 7.1.7.1-1),
// picking the lowest-order modulation that reaches the index.
func mcsForITBS(itbs int) int {
	switch {
	case itbs <= 9:
		return itbs
	case itbs <= 15:
		return itbs + 1
	default:
		return itbs + 2
	}
}

// aggForCQI picks the PDCCH aggregation level link adaptation would: worse
// channels need more CCEs.
func aggForCQI(cqi float64) int {
	switch {
	case cqi >= 12:
		return 1
	case cqi >= 9:
		return 2
	case cqi >= 6:
		return 4
	default:
		return 8
	}
}

// refreshRNTIs implements the paper's §VIII-B countermeasure: connected
// UEs whose C-RNTI has aged past the refresh period get a fresh one via an
// encrypted reconfiguration. A passive observer sees the old RNTI fall
// silent and an unlinkable new one appear, resetting its tracking state.
func (c *Cell) refreshRNTIs(now time.Duration) {
	for _, ctx := range c.order {
		if ctx.state != ctxConnected {
			continue
		}
		if now-ctx.rntiAge < c.Profile.RNTIRefreshEvery {
			continue
		}
		fresh, err := c.alloc.Allocate()
		if err != nil {
			continue // RNTI space exhausted: keep the old one this round
		}
		// Encrypted RRCConnectionReconfiguration on the old identity.
		c.cur.control(c, ctx.rnti, dci.Format1A, 1, nil)
		c.byRNTI[ctx.rnti] = nil
		c.alloc.Release(ctx.rnti)
		ctx.rnti = fresh
		ctx.rntiAge = now
		c.byRNTI[fresh] = ctx
		ctx.ue.RNTI = fresh
		c.m.rntiRefreshes.Inc()
	}
}

// checkInactivity releases UEs whose connections have been silent past the
// operator's inactivity timeout — the mechanism behind the RNTI churn the
// paper's tracker must survive.
func (c *Cell) checkInactivity(now time.Duration) {
	for _, ctx := range c.order {
		if ctx.state != ctxConnected {
			continue
		}
		if ctx.dlQueue > 0 || ctx.ulQueue > 0 {
			continue
		}
		if now-ctx.lastActivity >= c.Profile.InactivityTimeout {
			c.release(ctx, true)
		}
	}
}

// stepChannels advances every attached UE's channel random walk (called
// every 100 subframes).
func (c *Cell) stepChannels() {
	for _, ctx := range c.order {
		if ctx.state != ctxReleased {
			ctx.ue.StepCQI(100 * sim.TTI)
		}
	}
}

// compactOrder drops released contexts from the scheduling ring.
func (c *Cell) compactOrder() {
	kept := c.order[:0]
	for _, ctx := range c.order {
		if ctx.state != ctxReleased {
			kept = append(kept, ctx)
		}
	}
	for i := len(kept); i < len(c.order); i++ {
		c.order[i] = nil
	}
	c.order = kept
	if len(c.order) == 0 {
		c.rrPtr = 0
	} else {
		c.rrPtr %= len(c.order)
	}
}
