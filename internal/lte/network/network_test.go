package network_test

import (
	"testing"
	"time"

	"ltefp/internal/appmodel"
	"ltefp/internal/lte/network"
	"ltefp/internal/lte/operator"
	"ltefp/internal/lte/ue"
)

func TestAddCellDuplicate(t *testing.T) {
	n := network.New(1)
	if _, err := n.AddCell(1, operator.Lab()); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddCell(1, operator.Lab()); err == nil {
		t.Fatal("duplicate cell ID accepted")
	}
	if _, err := n.Cell(1); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Cell(2); err == nil {
		t.Fatal("missing cell resolved")
	}
}

func TestSessionDeliversTraffic(t *testing.T) {
	n := network.New(2)
	cell, err := n.AddCell(1, operator.Lab())
	if err != nil {
		t.Fatal(err)
	}
	u := n.NewUE("victim")
	n.Camp(u, 1)
	app, err := appmodel.ByName("Skype")
	if err != nil {
		t.Fatal(err)
	}
	n.ScheduleSession(u, 1, app, 100*time.Millisecond, 10*time.Second, 1)
	n.Run(12 * time.Second)

	gDL, gUL, bDL, bUL := cell.Stats()
	if gDL == 0 || gUL == 0 {
		t.Fatalf("grants = (%d DL, %d UL): VoIP session produced no traffic", gDL, gUL)
	}
	// VoIP is roughly symmetric.
	ratio := float64(bDL) / float64(bUL)
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("VoIP DL/UL byte ratio = %.2f, want near 1", ratio)
	}
}

func TestBackgroundUEsGenerateLoad(t *testing.T) {
	p := operator.Lab()
	p.BackgroundUEs = 4
	n := network.New(3)
	cell, err := n.AddCell(1, p)
	if err != nil {
		t.Fatal(err)
	}
	n.Run(20 * time.Second)
	gDL, _, _, _ := cell.Stats()
	if gDL == 0 {
		t.Fatal("ambient background UEs produced no downlink grants")
	}
}

func TestTMSIHistoryGrowsWithRealloc(t *testing.T) {
	p := operator.Lab()
	p.GUTIReallocEvery = 2 * time.Second
	n := network.New(4)
	if _, err := n.AddCell(1, p); err != nil {
		t.Fatal(err)
	}
	u := n.NewUE("victim")
	n.Camp(u, 1)
	n.Run(9 * time.Second)
	hist := n.TMSIHistory(u)
	if len(hist) < 3 {
		t.Fatalf("TMSI history has %d entries after three reallocation periods", len(hist))
	}
	seen := make(map[uint32]bool)
	for _, tm := range hist {
		if seen[uint32(tm)] {
			t.Fatal("TMSI repeated in history")
		}
		seen[uint32(tm)] = true
	}
	if u.TMSI != hist[len(hist)-1] {
		t.Fatal("UE's current TMSI is not the last history entry")
	}
}

func TestHandoverAPI(t *testing.T) {
	n := network.New(5)
	if _, err := n.AddCell(1, operator.Lab()); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddCell(2, operator.Lab()); err != nil {
		t.Fatal(err)
	}
	u := n.NewUE("victim")
	n.Camp(u, 1)
	app, err := appmodel.ByName("Skype")
	if err != nil {
		t.Fatal(err)
	}
	n.ScheduleSession(u, 1, app, 100*time.Millisecond, 20*time.Second, 1)
	n.Run(5 * time.Second)
	if u.State != ue.Connected {
		t.Fatal("UE not connected before handover")
	}
	if err := n.Handover(u, 2); err != nil {
		t.Fatal(err)
	}
	n.Run(6 * time.Second)
	if u.CellID != 2 || u.State != ue.Connected {
		t.Fatalf("after handover: cell %d, state %v", u.CellID, u.State)
	}
	if err := n.Handover(u, 9); err == nil {
		t.Fatal("handover to a missing cell accepted")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, int64) {
		n := network.New(77)
		cell, err := n.AddCell(1, operator.TMobile())
		if err != nil {
			t.Fatal(err)
		}
		u := n.NewUE("victim")
		n.Camp(u, 1)
		app, err := appmodel.ByName("YouTube")
		if err != nil {
			t.Fatal(err)
		}
		n.ScheduleSession(u, 1, app, 100*time.Millisecond, 5*time.Second, 1)
		n.Run(6 * time.Second)
		_, _, bDL, bUL := cell.Stats()
		return bDL, bUL
	}
	dl1, ul1 := run()
	dl2, ul2 := run()
	if dl1 != dl2 || ul1 != ul2 {
		t.Fatalf("identical seeds diverged: (%d, %d) vs (%d, %d)", dl1, ul1, dl2, ul2)
	}
	if dl1 == 0 {
		t.Fatal("no traffic simulated")
	}
}
