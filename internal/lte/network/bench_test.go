package network_test

import (
	"testing"
	"time"

	"ltefp/internal/lte/network"
	"ltefp/internal/lte/operator"
)

// BenchmarkNetworkStep measures one TTI of a warmed single commercial
// cell — the fabric's per-subframe overhead (sync-point bookkeeping, shard
// queue pop, eNB tick) in isolation, so shard-path regressions show up
// independently of capture or classification cost.
func BenchmarkNetworkStep(b *testing.B) {
	n := network.New(7)
	if _, err := n.AddCell(1, operator.TMobile()); err != nil {
		b.Fatal(err)
	}
	// Warm up: background UEs mid-session, connections established.
	n.Run(time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step()
	}
}
