// The partitioned event fabric: cells are shards stepped independently
// between synchronization points and joined at TTI barriers.
//
// Determinism contract. The run loop alternates two regimes:
//
//   - Serial phases at each sync point, on the caller's goroutine, in a
//     fixed order: (1) cross-shard mail from the previous block is applied
//     in shard-index order, (2) due network-tier events (session starts,
//     mobility, GUTI reallocation) fire from the network queue.
//   - A free-run block: every shard advances its own cell TTI by TTI up to
//     the next sync point, touching only state it owns — its cell, its
//     queue, the UEs camped on its cell, and its RNG forks.
//
// Sync points sit at every pending network-event time (rounded up to a TTI
// boundary, matching the old per-TTI loop which fired sub-TTI events at
// the next subframe edge) and at least every fabricStride TTIs. Block
// boundaries therefore depend only on queue contents — never on worker
// count — and shards never share mutable state inside a block, so the
// simulation output is byte-identical whether blocks run serially or on
// GOMAXPROCS workers.
//
// Cross-shard effects travel as mail: a shard that discovers mid-block
// that an event belongs elsewhere (an arrival for a UE that has moved, a
// handover admission for a neighbour cell) appends to its private outbox;
// outboxes are drained into the network mailbox after the block joins and
// applied at the next sync point, shard-index order first, append order
// second. Mail latency is bounded by one block (≤ fabricStride TTIs) and
// is itself deterministic, because block boundaries are.
package network

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ltefp/internal/appmodel"
	"ltefp/internal/lte/enb"
	"ltefp/internal/lte/ue"
	"ltefp/internal/sim"
)

// fabricStride caps how far shards free-run between sync points. Longer
// strides amortize barrier cost; shorter strides tighten cross-shard mail
// latency. 32 TTIs matches the RNTI-refresh cadence and keeps worst-case
// forwarding delay at 32 ms simulated.
const fabricStride = 32 * sim.TTI

// shard is one independently-steppable cell partition: the cell, its
// private event queue (application arrivals for UEs camped there), its
// clock position, and its outbox for cross-shard mail.
type shard struct {
	idx   int
	cell  *enb.Cell
	queue sim.Queue
	now   time.Duration
	out   []mail
}

// mailKind discriminates cross-shard messages.
type mailKind uint8

const (
	// mailDeliver forwards an application arrival to the UE's current
	// cell: the arrival fired on the shard of the cell the UE occupied at
	// scheduling time, but the UE has since moved.
	mailDeliver mailKind = iota
	// mailAdmit asks the handover target cell to admit a UE the source
	// cell has just released, carrying over the unsent queue bytes.
	mailAdmit
)

// mail is one cross-shard message, applied serially at a sync point.
type mail struct {
	kind   mailKind
	u      *ue.UE
	a      appmodel.Arrival
	target int
	dl, ul int
}

// fire handles one application arrival on the shard that scheduled it. If
// the UE is still camped on this shard's cell the arrival is delivered
// in-place at the shard's current TTI; otherwise it is forwarded through
// the mailbox to wherever the UE lives now.
func (s *shard) fire(u *ue.UE, a appmodel.Arrival) {
	if u.CellID == s.cell.ID {
		deliver(s.cell, u, a, s.now)
		return
	}
	s.out = append(s.out, mail{kind: mailDeliver, u: u, a: a})
}

// runBlock advances the shard's cell from one sync point to the next, one
// TTI at a time. It touches only shard-owned state and may run on any
// worker goroutine.
func (s *shard) runBlock(from, to time.Duration) {
	for now := from; now < to; now += sim.TTI {
		s.now = now
		s.queue.PopDue(now)
		s.cell.Tick(now)
	}
}

// ceilTTI rounds a time up to the next TTI boundary. The fabric clock only
// rests on subframe edges, exactly like the old per-TTI loop: an event due
// mid-subframe fires at the edge that follows it.
func ceilTTI(t time.Duration) time.Duration {
	if r := t % sim.TTI; r != 0 {
		return t + sim.TTI - r
	}
	return t
}

// applyMail applies the cross-shard messages collected at the end of the
// previous block. Serial phase; the slice is already in deterministic
// order (shard index, then append order within a shard).
func (n *Network) applyMail(now time.Duration) {
	if len(n.mailbox) == 0 {
		return
	}
	for i := range n.mailbox {
		m := &n.mailbox[i]
		switch m.kind {
		case mailDeliver:
			if c, ok := n.cells[m.u.CellID]; ok {
				deliver(c, m.u, m.a, now)
			}
		case mailAdmit:
			target, ok := n.cells[m.target]
			if !ok {
				break
			}
			dl := m.dl
			if src, ok := n.cells[m.u.CellID]; ok && src != target {
				// Drain anything that arrived at the source during the
				// release gap so no queued bytes are stranded there.
				dl += src.Detach(m.u)
			}
			n.Camp(m.u, m.target)
			target.AdmitHandover(m.u, dl, m.ul, now)
		}
	}
	n.mailbox = n.mailbox[:0]
}

// collectMail drains every shard's outbox into the network mailbox in
// shard-index order. Serial phase, after the block's shards have joined.
func (n *Network) collectMail() {
	for _, s := range n.shards {
		if len(s.out) > 0 {
			n.mailbox = append(n.mailbox, s.out...)
			s.out = s.out[:0]
		}
	}
}

// run is the fabric main loop: serial sync-point phases interleaved with
// free-run blocks executed serially or across workers.
func (n *Network) run(until time.Duration) {
	untilQ := ceilTTI(until)
	var pool *workerPool
	if n.workers > 1 && len(n.shards) > 1 {
		pool = newWorkerPool(n.workers, n.shards)
		defer pool.close()
	}
	for n.clock.Now() < untilQ {
		now := n.clock.Now()
		n.applyMail(now)
		n.queue.PopDue(now)
		// The block ends at the next network event (TTI-aligned), the
		// stride cap, or the run horizon — whichever comes first.
		end := now + fabricStride
		if t, ok := n.queue.PeekTime(); ok {
			if tq := ceilTTI(t); tq < end {
				end = tq
			}
		}
		if untilQ < end {
			end = untilQ
		}
		if end <= now {
			// A network event due this very TTI (e.g. a handover sync
			// no-op pushed by a just-fired event): still step one TTI so
			// the loop advances.
			end = now + sim.TTI
			if untilQ < end {
				end = untilQ
			}
		}
		if pool != nil {
			pool.runBlocks(now, end)
		} else {
			for _, s := range n.shards {
				s.runBlock(now, end)
			}
		}
		n.collectMail()
		n.clock.AdvanceTo(end)
	}
}

// workerPool executes one block across goroutines with atomic
// work-stealing over the shard slice — the same discipline as
// correlation.Sweep. Shards touch disjoint state inside a block, so any
// shard→worker assignment yields identical output.
//
// Blocks recur every few tens of microseconds, so the barrier must not
// park and unpark OS threads each time: helpers spin (yielding) on a
// generation counter between blocks, and the coordinating goroutine
// joins the steal loop itself instead of waiting idle. The pool lives
// for one Run call; close stops the helpers.
type workerPool struct {
	shards []*shard
	span   [2]time.Duration
	gen    atomic.Int64 // block generation; helpers run one steal loop per bump
	next   atomic.Int64 // shard cursor for the current block
	done   atomic.Int64 // participants finished with the current block
	stop   atomic.Bool
	nw     int // participants, including the coordinator
	wg     sync.WaitGroup
}

func newWorkerPool(workers int, shards []*shard) *workerPool {
	nw := workers
	if max := runtime.GOMAXPROCS(0); nw > max {
		nw = max
	}
	if nw > len(shards) {
		nw = len(shards)
	}
	p := &workerPool{shards: shards, nw: nw}
	p.wg.Add(nw - 1)
	for w := 0; w < nw-1; w++ {
		go func() {
			defer p.wg.Done()
			var last int64
			for {
				g := p.gen.Load()
				if g == last {
					if p.stop.Load() {
						return
					}
					runtime.Gosched()
					continue
				}
				last = g
				p.steal()
			}
		}()
	}
	return p
}

// steal drains shards from the shared cursor until the block is exhausted,
// then checks in at the barrier.
func (p *workerPool) steal() {
	span := p.span
	for {
		i := int(p.next.Add(1) - 1)
		if i >= len(p.shards) {
			break
		}
		p.shards[i].runBlock(span[0], span[1])
	}
	p.done.Add(1)
}

// runBlocks runs one free-run block over all shards and returns once every
// shard has reached the sync point. The span write is published to helpers
// by the gen bump (atomics order prior writes).
func (p *workerPool) runBlocks(from, to time.Duration) {
	p.span = [2]time.Duration{from, to}
	p.next.Store(0)
	p.done.Store(0)
	p.gen.Add(1)
	p.steal()
	for p.done.Load() < int64(p.nw) {
		runtime.Gosched()
	}
}

func (p *workerPool) close() {
	p.stop.Store(true)
	p.wg.Wait()
}
