// Package network is the simulation driver: it owns the clock, the core
// network, the cells, and the UEs, routes application-layer arrivals into
// the radio stack, and runs the whole system subframe by subframe. All
// orchestration that is not radio protocol — traffic programs, mobility,
// background cell load, periodic GUTI reallocation — lives here, keeping
// the enb and ue packages purely protocol-shaped.
//
// Execution is organised as a partitioned event fabric (see fabric.go):
// every cell is a shard owning its own event queue and eNB, stepped
// independently between synchronization points, optionally across worker
// goroutines. Everything cross-cell — session starts, mobility, GUTI
// reallocation, handover admissions — runs in serial phases at the sync
// points, so simulation output is byte-identical for every worker count.
package network

import (
	"fmt"
	"time"

	"ltefp/internal/appmodel"
	"ltefp/internal/lte/dci"
	"ltefp/internal/lte/enb"
	"ltefp/internal/lte/epc"
	"ltefp/internal/lte/operator"
	"ltefp/internal/lte/ue"
	"ltefp/internal/sim"
)

// Network is one simulated mobile network: a core, one or more cells, and
// any number of UEs. Configuration (AddCell, NewUE, Schedule*) and Run may
// not be called concurrently; Run itself fans cell execution out across
// workers when SetWorkers enables it.
type Network struct {
	// Core is the EPC.
	Core *epc.Core

	clock       sim.Clock
	rng         *sim.RNG
	cells       map[int]*enb.Cell
	cellOrder   []int
	shards      []*shard
	shardByCell map[int]*shard
	queue       sim.Queue // serial network-tier events (starts, mobility, realloc)
	mailbox     []mail    // cross-shard messages collected at sync points
	workers     int
	ues         []*ue.UE
	nextIMSI    int
	gutiArmed   map[*ue.UE]bool
	tmsiHist    map[*ue.UE][]epc.TMSI
}

// New returns an empty network seeded deterministically.
func New(seed uint64) *Network {
	rng := sim.NewRNG(seed)
	return &Network{
		Core:        epc.NewCore(rng.Fork()),
		rng:         rng,
		cells:       make(map[int]*enb.Cell),
		shardByCell: make(map[int]*shard),
		gutiArmed:   make(map[*ue.UE]bool),
		tmsiHist:    make(map[*ue.UE][]epc.TMSI),
	}
}

// Now returns the current simulated time.
func (n *Network) Now() time.Duration { return n.clock.Now() }

// SetWorkers sets how many goroutines step cell shards between sync
// points. Values <= 1 run serially on the caller's goroutine. Output is
// byte-identical for every setting; only wall-clock time changes.
func (n *Network) SetWorkers(k int) { n.workers = k }

// Workers reports the configured worker count (0 or 1 = serial).
func (n *Network) Workers() int { return n.workers }

// AddCell creates a cell with the given ID and operator profile, spawning
// the profile's ambient background UEs. Cell IDs must be unique.
func (n *Network) AddCell(id int, p operator.Profile) (*enb.Cell, error) {
	if _, dup := n.cells[id]; dup {
		return nil, fmt.Errorf("network: duplicate cell ID %d", id)
	}
	c, err := enb.NewCell(id, p, n.Core, n.rng.Fork())
	if err != nil {
		return nil, err
	}
	n.cells[id] = c
	n.cellOrder = append(n.cellOrder, id)
	sh := &shard{idx: len(n.shards), cell: c}
	n.shards = append(n.shards, sh)
	n.shardByCell[id] = sh
	c.SetHandoverSink(func(u *ue.UE, targetCellID, dlQueue, ulQueue int) {
		sh.out = append(sh.out, mail{kind: mailAdmit, u: u, target: targetCellID, dl: dlQueue, ul: ulQueue})
	})
	for i := 0; i < p.BackgroundUEs; i++ {
		bu := n.NewUE(fmt.Sprintf("bg-%d-%d", id, i))
		n.Camp(bu, id)
		n.startBackground(bu)
	}
	return c, nil
}

// EachCell visits every cell in creation order (the deterministic order
// used for aggregation across the fabric).
func (n *Network) EachCell(fn func(*enb.Cell)) {
	for _, id := range n.cellOrder {
		fn(n.cells[id])
	}
}

// Cell returns the cell with the given ID.
func (n *Network) Cell(id int) (*enb.Cell, error) {
	c, ok := n.cells[id]
	if !ok {
		return nil, fmt.Errorf("network: no cell %d", id)
	}
	return c, nil
}

// NewUE creates a UE, registers it with the core (obtaining a TMSI), and
// returns it unattached.
func (n *Network) NewUE(name string) *ue.UE {
	n.nextIMSI++
	imsi := epc.IMSI(fmt.Sprintf("310150%09d", n.nextIMSI))
	u := ue.New(name, imsi, n.rng.Fork())
	u.TMSI = n.Core.Attach(imsi)
	u.HasTMSI = true
	n.ues = append(n.ues, u)
	n.tmsiHist[u] = append(n.tmsiHist[u], u.TMSI)
	return u
}

// TMSIHistory returns every TMSI a UE has held, in assignment order. This
// is simulation ground truth: experiments use it for labelling, and attack
// scenarios use it to stand in for the IMSI-catcher assistance the paper's
// threat model grants the attacker for cross-TMSI tracking.
func (n *Network) TMSIHistory(u *ue.UE) []epc.TMSI {
	out := make([]epc.TMSI, len(n.tmsiHist[u]))
	copy(out, n.tmsiHist[u])
	return out
}

// Camp parks an idle UE on a cell, leaving its previous cell if any, and
// arms this cell's periodic GUTI reallocation for it.
func (n *Network) Camp(u *ue.UE, cellID int) {
	if u.CellID != ue.NoCell && u.CellID != cellID {
		if old, ok := n.cells[u.CellID]; ok {
			old.Leave(u)
		}
	}
	c := n.cells[cellID]
	c.Camp(u)
	if every := c.Profile.GUTIReallocEvery; every > 0 {
		n.scheduleGUTIRealloc(u, every)
	}
}

// Handover moves a connected UE to the target cell via the X2-style
// handover procedure: the source emits the reconfiguration now, releases
// the context two TTIs later, and the target admits the UE at the sync
// point right after the release.
func (n *Network) Handover(u *ue.UE, targetCellID int) error {
	src, ok := n.cells[u.CellID]
	if !ok {
		return fmt.Errorf("network: UE %s not in any cell", u.Name)
	}
	if _, ok := n.cells[targetCellID]; !ok {
		return fmt.Errorf("network: no cell %d", targetCellID)
	}
	now := n.clock.Now()
	if err := src.BeginHandover(u, targetCellID, now); err != nil {
		return err
	}
	// Pin a sync point one TTI after the source-side release so the target
	// admission lands there deterministically, independent of how long the
	// surrounding free-run blocks are.
	n.queue.Push(now+3*sim.TTI, func() {})
	return nil
}

// ScheduleMove schedules a mobility action for a UE. With handover true, a
// UE found connected at that time moves via X2 handover (falling back to
// reselection semantics otherwise); with handover false this is idle-mode
// cell reselection, which defers while the UE holds an active RRC
// connection — a reselection never interrupts scheduled grants.
func (n *Network) ScheduleMove(u *ue.UE, cellID int, at time.Duration, handover bool) {
	// How often a deferred reselection re-checks for the UE to go idle.
	const reselectRetry = 100 * time.Millisecond
	var step func()
	step = func() {
		if u.CellID == cellID {
			return
		}
		if handover && u.State == ue.Connected {
			if n.Handover(u, cellID) == nil {
				return
			}
		}
		if u.State == ue.Idle {
			n.Camp(u, cellID)
			return
		}
		n.queue.Push(n.clock.Now()+reselectRetry, step)
	}
	n.queue.Push(at, step)
}

// ScheduleSession arranges for the UE to run one application session: at
// start the UE is (re)camped on the cell if needed, and the app's arrivals
// flow into the radio stack for the session duration. day selects the
// drift model day (1 = training day).
func (n *Network) ScheduleSession(u *ue.UE, cellID int, app appmodel.App, start, dur time.Duration, day int) {
	g := n.rng.Fork()
	n.queue.Push(start, func() {
		if u.CellID != cellID {
			n.Camp(u, cellID)
		}
		// Adaptive apps see the session's channel: quality is derived
		// from the UE's channel state at session start. The serving cell
		// settles any lazily-deferred channel-walk epochs first, so this
		// out-of-band read matches the eager reference bit for bit.
		if c, ok := n.cells[u.CellID]; ok {
			c.SyncChannel(u)
		}
		env := appmodel.Env{Quality: (u.CQI - 1) / 14}
		n.pushArrivals(u, app.SessionEnv(g, dur, day, env), start)
	})
}

// ScheduleArrivals injects a pre-built arrival stream for a UE starting at
// the given time (used for paired-conversation and merged-noise traffic).
func (n *Network) ScheduleArrivals(u *ue.UE, cellID int, arrivals []appmodel.Arrival, start time.Duration) {
	n.queue.Push(start, func() {
		if u.CellID != cellID {
			n.Camp(u, cellID)
		}
		n.pushArrivals(u, arrivals, start)
	})
}

// arrivalEvent is one application arrival bound for the radio stack. It is
// scheduled as a sim.Firer so a whole session's arrivals cost one slice
// allocation instead of one closure each.
type arrivalEvent struct {
	s *shard
	u *ue.UE
	a appmodel.Arrival
}

// Fire implements sim.Firer.
func (e *arrivalEvent) Fire() { e.s.fire(e.u, e.a) }

// pushArrivals schedules a batch of arrivals relative to start, in order,
// on the shard of the UE's current cell. Arrivals fire on that shard; if
// the UE has moved on by then, the shard forwards them through the
// cross-shard mailbox (at most one sync interval of extra latency).
func (n *Network) pushArrivals(u *ue.UE, arrivals []appmodel.Arrival, start time.Duration) {
	sh, ok := n.shardByCell[u.CellID]
	if !ok {
		if len(n.shards) == 0 {
			return // no cells: nowhere for traffic to go
		}
		sh = n.shards[0]
	}
	evs := make([]arrivalEvent, len(arrivals))
	for i, a := range arrivals {
		evs[i] = arrivalEvent{s: sh, u: u, a: a}
		sh.queue.PushFirer(start+a.At, &evs[i])
	}
}

// transportOverhead approximates the IP/transport headers wrapped around
// each application payload before it reaches the radio bearer.
const transportOverhead = 40

// deliver hands one application arrival to a cell's radio stack.
func deliver(c *enb.Cell, u *ue.UE, a appmodel.Arrival, now time.Duration) {
	bytes := a.Bytes + transportOverhead
	switch a.Dir {
	case dci.Uplink:
		c.DeliverUL(u, bytes, now)
	case dci.Downlink:
		c.DeliverDL(u, bytes, now)
	}
}

// backgroundPool is the shared, read-only app pool background UEs draw
// from; built once, since a population-scale fabric would otherwise
// allocate one pool per attached UE.
var backgroundPool = appmodel.BackgroundPool()

// startBackground keeps a UE running an endless rotation of background
// apps, generating traffic in bounded chunks so memory stays flat.
func (n *Network) startBackground(u *ue.UE) {
	pool := backgroundPool
	g := n.rng.Fork()
	var step func()
	step = func() {
		app := pool[g.IntN(len(pool))]
		dur := time.Duration(g.Uniform(15, 45) * float64(time.Second))
		base := n.clock.Now()
		n.pushArrivals(u, app.Session(g, dur, 1), base)
		// A think-time gap before the next app keeps background UEs
		// cycling through idle and connected states.
		n.queue.Push(base+dur+time.Duration(g.Uniform(2, 20)*float64(time.Second)), step)
	}
	n.queue.Push(time.Duration(g.Uniform(0, 10)*float64(time.Second)), step)
}

// StartSparseBackground keeps a UE in the mostly-idle duty cycle of a
// population-scale cell. The UE attaches early in the run — a staggered
// keep-alive-sized uplink datagram takes it through contention-based
// RACH — and thereafter wakes rarely: long think gaps (three to ten
// simulated minutes) separate short light app sessions, with one wakeup
// in five being a standalone mobile-terminated push that reaches the UE
// through paging. At steady state roughly 1% of such UEs are moving data
// at any instant, which is what makes them background: they crowd the
// cell's context table and RNTI space without crowding the air interface.
func (n *Network) StartSparseBackground(u *ue.UE) {
	pool := backgroundPool
	g := n.rng.Fork()
	var step func()
	step = func() {
		base := n.clock.Now()
		if g.Bool(0.2) {
			// Mobile-terminated push: pages the UE if it has gone idle.
			n.pushArrivals(u, []appmodel.Arrival{{Bytes: 120 + g.IntN(1280), Dir: dci.Downlink}}, base)
		} else {
			app := pool[g.IntN(len(pool))]
			dur := time.Duration(g.Uniform(2, 6) * float64(time.Second))
			n.pushArrivals(u, app.Session(g, dur, 1), base)
		}
		n.queue.Push(base+time.Duration(g.Uniform(180, 600)*float64(time.Second)), step)
	}
	attach := time.Duration(g.Uniform(0.05, 10) * float64(time.Second))
	n.queue.Push(attach, func() {
		n.pushArrivals(u, []appmodel.Arrival{{Bytes: 80 + g.IntN(120), Dir: dci.Uplink}}, n.clock.Now())
		n.queue.Push(n.clock.Now()+time.Duration(g.Uniform(30, 600)*float64(time.Second)), step)
	})
}

// scheduleGUTIRealloc periodically refreshes a UE's TMSI while it is idle,
// as tracking-area updates do on real networks.
func (n *Network) scheduleGUTIRealloc(u *ue.UE, every time.Duration) {
	if n.gutiArmed[u] {
		return
	}
	n.gutiArmed[u] = true
	var step func()
	step = func() {
		if u.State == ue.Idle && u.HasTMSI {
			if t, err := n.Core.Reallocate(u.IMSI); err == nil {
				u.TMSI = t
				n.tmsiHist[u] = append(n.tmsiHist[u], t)
			}
		}
		n.queue.Push(n.clock.Now()+every, step)
	}
	n.queue.Push(n.clock.Now()+every, step)
}

// Step advances the simulation by exactly one TTI — the fabric's smallest
// sync-point-to-sync-point move, exposing the per-subframe shard overhead
// to benchmarks.
func (n *Network) Step() {
	n.Run(n.clock.Now() + sim.TTI)
}

// Run advances the simulation until the given absolute time (rounded up
// to a whole subframe, as the per-TTI loop always has).
func (n *Network) Run(until time.Duration) {
	n.run(until)
}
