package network_test

import (
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"ltefp/internal/appmodel"
	"ltefp/internal/lte/network"
	"ltefp/internal/lte/operator"
	"ltefp/internal/lte/ue"
	"ltefp/internal/sim"
	"ltefp/internal/sniffer"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// fabricProfile is a light multi-cell profile: a couple of background UEs
// per cell and fast GUTI reallocation so the invariance digest covers
// ambient load, paging, and TMSI churn without commercial-scale cost.
func fabricProfile() operator.Profile {
	p := operator.Lab()
	p.BackgroundUEs = 2
	p.GUTIReallocEvery = 3 * time.Second
	p.InactivityTimeout = 2 * time.Second
	return p
}

// fabricDigest builds an nCells fabric with per-cell sniffers and a victim
// whose itinerary crosses three cells (one mid-burst handover, one idle
// reselection), runs it on the given worker count, and hashes everything
// observable: every sniffer's records, identity events, and pagings, plus
// the victim's TMSI history and final state.
func fabricDigest(t *testing.T, nCells, workers int) string {
	t.Helper()
	n := network.New(42)
	n.SetWorkers(workers)
	p := fabricProfile()
	srng := sim.NewRNG(0xfab)
	snifs := make([]*sniffer.Sniffer, 0, nCells)
	for id := 1; id <= nCells; id++ {
		c, err := n.AddCell(id, p)
		if err != nil {
			t.Fatal(err)
		}
		s := sniffer.New(sniffer.Config{}, srng.Fork())
		c.AddObserver(s)
		snifs = append(snifs, s)
	}
	apps := appmodel.Apps()
	v := n.NewUE("victim")
	n.Camp(v, 1)
	n.ScheduleSession(v, 1, apps[0], 500*time.Millisecond, 2*time.Second, 1)
	n.ScheduleMove(v, 2, 1200*time.Millisecond, true) // handover mid-stream
	n.ScheduleMove(v, 3, 5*time.Second, false)        // idle reselection
	n.ScheduleSession(v, 3, apps[3], 5500*time.Millisecond, 1500*time.Millisecond, 1)
	n.Run(8 * time.Second)

	h := sha256.New()
	for i, s := range snifs {
		fmt.Fprintf(h, "cell %d\n", i+1)
		for _, r := range s.Records() {
			fmt.Fprintf(h, "%v\n", r)
		}
		for _, e := range s.IdentityEvents() {
			fmt.Fprintf(h, "%v\n", e)
		}
		for _, pg := range s.PagingEvents() {
			fmt.Fprintf(h, "%v\n", pg)
		}
	}
	fmt.Fprintf(h, "victim cell=%d state=%v tmsi=%v\n", v.CellID, v.State, n.TMSIHistory(v))
	return hex.EncodeToString(h.Sum(nil))
}

// TestFabricWorkerCountInvariance is the fabric's central guarantee: a
// 128-cell run produces byte-identical observable output at every worker
// count, pinned against a golden digest so the serial semantics themselves
// cannot drift unnoticed. Regenerate testdata/fabric128.golden with
// -update only for an intentional semantic change.
func TestFabricWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("128-cell fabric run takes a few seconds; skipped with -short")
	}
	// On single-core hosts the pool would cap itself back to one
	// participant; raise GOMAXPROCS so the parallel path (helper
	// goroutines, spin barrier, work-stealing) really executes — the
	// correctness claim is identical output, not wall-clock speedup.
	if old := runtime.GOMAXPROCS(0); old < 4 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(old)
	}
	const cells = 128
	serial := fabricDigest(t, cells, 1)
	for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
		if got := fabricDigest(t, cells, w); got != serial {
			t.Fatalf("workers=%d digest %s diverged from serial %s", w, got, serial)
		}
	}
	golden := filepath.Join("testdata", "fabric128.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(serial+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(want)); got != serial {
		t.Fatalf("fabric digest %s diverged from golden %s", serial, got)
	}
}

// fabricPopulationDigest builds a fabric whose cells each carry a sparse
// background population on top of the victim's itinerary, runs it on the
// given worker count, and hashes everything observable. The run is long
// enough to cover the population's staggered attach churn, the resulting
// inactivity releases, and the first paging wakeups.
func fabricPopulationDigest(t *testing.T, nCells, popPerCell, workers int) string {
	t.Helper()
	n := network.New(1234)
	n.SetWorkers(workers)
	p := fabricProfile()
	srng := sim.NewRNG(0x90b)
	snifs := make([]*sniffer.Sniffer, 0, nCells)
	for id := 1; id <= nCells; id++ {
		c, err := n.AddCell(id, p)
		if err != nil {
			t.Fatal(err)
		}
		s := sniffer.New(sniffer.Config{}, srng.Fork())
		c.AddObserver(s)
		snifs = append(snifs, s)
	}
	for id := 1; id <= nCells; id++ {
		for i := 0; i < popPerCell; i++ {
			u := n.NewUE(fmt.Sprintf("pop-%d-%d", id, i))
			n.Camp(u, id)
			n.StartSparseBackground(u)
		}
	}
	apps := appmodel.Apps()
	v := n.NewUE("victim")
	n.Camp(v, 1)
	n.ScheduleSession(v, 1, apps[0], 500*time.Millisecond, 3*time.Second, 1)
	n.ScheduleMove(v, 2, 1500*time.Millisecond, true)
	n.Run(40 * time.Second)

	h := sha256.New()
	for i, s := range snifs {
		fmt.Fprintf(h, "cell %d\n", i+1)
		for _, r := range s.Records() {
			fmt.Fprintf(h, "%v\n", r)
		}
		for _, e := range s.IdentityEvents() {
			fmt.Fprintf(h, "%v\n", e)
		}
		for _, pg := range s.PagingEvents() {
			fmt.Fprintf(h, "%v\n", pg)
		}
	}
	fmt.Fprintf(h, "victim cell=%d state=%v tmsi=%v\n", v.CellID, v.State, n.TMSIHistory(v))
	return hex.EncodeToString(h.Sum(nil))
}

// TestFabricPopulationWorkerInvariance extends the invariance guarantee to
// population-scale cells: a fabric crowded with sparse background UEs must
// stay byte-identical at every worker count, pinned against a golden so
// the population semantics cannot drift unnoticed. Regenerate
// testdata/fabric_pop.golden with -update only for an intentional change.
func TestFabricPopulationWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("population fabric run takes a few seconds; skipped with -short")
	}
	if old := runtime.GOMAXPROCS(0); old < 4 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(old)
	}
	const cells, pop = 8, 120
	serial := fabricPopulationDigest(t, cells, pop, 1)
	for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
		if got := fabricPopulationDigest(t, cells, pop, w); got != serial {
			t.Fatalf("workers=%d digest %s diverged from serial %s", w, got, serial)
		}
	}
	golden := filepath.Join("testdata", "fabric_pop.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(serial+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(want)); got != serial {
		t.Fatalf("population fabric digest %s diverged from golden %s", serial, got)
	}
}

// TestFabricCrossShardForwarding proves arrivals scheduled on one shard
// reach a UE that has since been handed to another cell: the originating
// shard forwards them through the mailbox instead of dropping them.
func TestFabricCrossShardForwarding(t *testing.T) {
	n := network.New(7)
	p := operator.Lab()
	for id := 1; id <= 2; id++ {
		if _, err := n.AddCell(id, p); err != nil {
			t.Fatal(err)
		}
	}
	v := n.NewUE("v")
	n.Camp(v, 1)
	app, err := appmodel.ByName("WhatsApp Call")
	if err != nil {
		t.Fatal(err)
	}
	n.ScheduleSession(v, 1, app, 100*time.Millisecond, 3*time.Second, 1)
	n.ScheduleMove(v, 2, 1*time.Second, true)
	n.Run(4 * time.Second)

	if v.CellID != 2 {
		t.Fatalf("victim cell = %d, want 2", v.CellID)
	}
	c1, _ := n.Cell(1)
	c2, _ := n.Cell(2)
	_, _, dl1, ul1 := c1.Stats()
	_, _, dl2, ul2 := c2.Stats()
	if dl1+ul1 == 0 {
		t.Fatal("no traffic through the source cell before handover")
	}
	if dl2+ul2 == 0 {
		t.Fatal("no forwarded traffic through the target cell after handover")
	}
}

// TestHandoverMidBurstContinuity hands a UE over in the middle of a VoIP
// call and checks the app traffic stays continuous on the merged two-cell
// timeline: the radio gap is bounded by the handover procedure plus one
// cross-shard mail interval, never a dropped stream.
func TestHandoverMidBurstContinuity(t *testing.T) {
	n := network.New(11)
	p := operator.Lab()
	srng := sim.NewRNG(0x51f)
	snifs := make([]*sniffer.Sniffer, 2)
	for id := 1; id <= 2; id++ {
		c, err := n.AddCell(id, p)
		if err != nil {
			t.Fatal(err)
		}
		snifs[id-1] = sniffer.New(sniffer.Config{}, srng.Fork())
		c.AddObserver(snifs[id-1])
	}
	v := n.NewUE("v")
	n.Camp(v, 1)
	app, err := appmodel.ByName("WhatsApp Call")
	if err != nil {
		t.Fatal(err)
	}
	const hoAt = 2 * time.Second
	n.ScheduleSession(v, 1, app, 500*time.Millisecond, 3*time.Second, 1)
	n.ScheduleMove(v, 2, hoAt, true)
	n.Run(4 * time.Second)

	if v.CellID != 2 || v.State != ue.Connected {
		t.Fatalf("victim cell=%d state=%v after mid-burst handover", v.CellID, v.State)
	}
	merged := snifs[0].Records()
	merged = append(merged, snifs[1].Records()...)
	merged.Sort()
	// VoIP keeps 20 ms frames flowing in both directions; across the
	// handover the worst admissible silence is the release-to-completion
	// procedure (~11 TTI) plus one mailbox interval (32 TTI) plus
	// scheduling slack.
	const maxGap = 250 * time.Millisecond
	var last time.Duration
	window := func(at time.Duration) bool { return at >= time.Second && at <= 3200*time.Millisecond }
	for _, r := range merged {
		if !window(r.At) {
			continue
		}
		if last != 0 && r.At-last > maxGap {
			t.Fatalf("traffic gap %v at %v spanning the handover, want < %v", r.At-last, r.At, maxGap)
		}
		last = r.At
	}
	if len(snifs[1].Records()) == 0 {
		t.Fatal("no records in the target cell")
	}
}

// TestTMSIHistoryConsistentAcrossCells moves a UE through three cells that
// all run fast GUTI reallocation and checks the history stays coherent: it
// keeps growing in every cell, the live TMSI is always the newest entry,
// and re-camping never double-arms the reallocation timer.
func TestTMSIHistoryConsistentAcrossCells(t *testing.T) {
	n := network.New(13)
	p := operator.Lab()
	p.GUTIReallocEvery = 500 * time.Millisecond
	for id := 1; id <= 3; id++ {
		if _, err := n.AddCell(id, p); err != nil {
			t.Fatal(err)
		}
	}
	v := n.NewUE("v")
	n.Camp(v, 1)
	n.ScheduleMove(v, 2, 1500*time.Millisecond, false)
	n.ScheduleMove(v, 3, 3*time.Second, false)
	const dur = 4500 * time.Millisecond
	n.Run(dur)

	hist := n.TMSIHistory(v)
	if len(hist) < 4 {
		t.Fatalf("TMSI history has %d entries after %v across 3 cells, want >= 4", len(hist), dur)
	}
	if !v.HasTMSI || v.TMSI != hist[len(hist)-1] {
		t.Fatalf("live TMSI %d is not the newest history entry %v", v.TMSI, hist)
	}
	seen := make(map[uint32]bool)
	for _, tm := range hist {
		if seen[uint32(tm)] {
			t.Fatalf("TMSI %d assigned twice in %v", tm, hist)
		}
		seen[uint32(tm)] = true
	}
	// One timer firing every 500 ms can produce at most dur/500ms fresh
	// TMSIs on top of the attach; more means re-camping armed extra timers.
	if max := 1 + int(dur/p.GUTIReallocEvery); len(hist) > max {
		t.Fatalf("TMSI history has %d entries, max %d for a single timer — reallocation double-armed", len(hist), max)
	}
}

// TestReselectionNeverDropsGrant pins the deferral semantics of idle-mode
// reselection: a move requested while the UE holds an RRC connection waits
// for the connection to end, and the source cell's observable schedule is
// byte-identical to a run with no move at all — not one scheduled subframe
// is dropped or displaced.
func TestReselectionNeverDropsGrant(t *testing.T) {
	run := func(withMove bool) (trace []string, cellID int, state ue.State) {
		n := network.New(17)
		p := operator.Lab()
		p.InactivityTimeout = 2 * time.Second
		for id := 1; id <= 2; id++ {
			if _, err := n.AddCell(id, p); err != nil {
				t.Fatal(err)
			}
		}
		c1, _ := n.Cell(1)
		s := sniffer.New(sniffer.Config{}, sim.NewRNG(0xabc))
		c1.AddObserver(s)
		v := n.NewUE("v")
		n.Camp(v, 1)
		app, err := appmodel.ByName("Netflix")
		if err != nil {
			t.Fatal(err)
		}
		n.ScheduleSession(v, 1, app, 500*time.Millisecond, 1500*time.Millisecond, 1)
		if withMove {
			// Mid-burst: the UE is connected with grants in flight.
			n.ScheduleMove(v, 2, 1*time.Second, false)
		}
		n.Run(5 * time.Second)
		for _, r := range s.Records() {
			trace = append(trace, fmt.Sprintf("%v", r))
		}
		return trace, v.CellID, v.State
	}

	base, baseCell, _ := run(false)
	moved, movedCell, movedState := run(true)
	if baseCell != 1 {
		t.Fatalf("baseline UE ended in cell %d", baseCell)
	}
	if movedCell != 2 || movedState != ue.Idle {
		t.Fatalf("reselection did not complete: cell=%d state=%v", movedCell, movedState)
	}
	if len(base) == 0 {
		t.Fatal("baseline sniffer saw no records")
	}
	if len(base) != len(moved) {
		t.Fatalf("source-cell schedule changed: %d records with move vs %d without", len(moved), len(base))
	}
	for i := range base {
		if base[i] != moved[i] {
			t.Fatalf("source-cell record %d changed: %q vs %q", i, moved[i], base[i])
		}
	}
}
