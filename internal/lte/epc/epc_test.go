package epc_test

import (
	"errors"
	"testing"

	"ltefp/internal/lte/epc"
	"ltefp/internal/sim"
)

func TestAttachResolve(t *testing.T) {
	c := epc.NewCore(sim.NewRNG(1))
	tmsi := c.Attach("310150000000001")
	if tmsi == 0 {
		t.Fatal("zero TMSI assigned")
	}
	imsi, err := c.Resolve(tmsi)
	if err != nil {
		t.Fatal(err)
	}
	if imsi != "310150000000001" {
		t.Fatalf("Resolve = %q", imsi)
	}
	if got := c.Attach("310150000000001"); got != tmsi {
		t.Fatalf("re-attach changed TMSI: %v -> %v", tmsi, got)
	}
	if c.Registered() != 1 {
		t.Fatalf("Registered() = %d", c.Registered())
	}
}

func TestTMSIUniqueness(t *testing.T) {
	c := epc.NewCore(sim.NewRNG(2))
	seen := make(map[epc.TMSI]bool)
	for i := 0; i < 1000; i++ {
		tmsi := c.Attach(epc.IMSI(rune('a'+i%26)) + epc.IMSI(rune('0'+i/26)))
		if seen[tmsi] {
			t.Fatalf("TMSI %v assigned twice", tmsi)
		}
		seen[tmsi] = true
	}
}

func TestReallocate(t *testing.T) {
	c := epc.NewCore(sim.NewRNG(3))
	old := c.Attach("imsi-1")
	fresh, err := c.Reallocate("imsi-1")
	if err != nil {
		t.Fatal(err)
	}
	if fresh == old {
		t.Fatal("reallocation returned the same TMSI")
	}
	if _, err := c.Resolve(old); err == nil {
		t.Fatal("old TMSI still resolves after reallocation")
	}
	if got, err := c.TMSIOf("imsi-1"); err != nil || got != fresh {
		t.Fatalf("TMSIOf = (%v, %v), want (%v, nil)", got, err, fresh)
	}
}

func TestUnknownSubscriber(t *testing.T) {
	c := epc.NewCore(sim.NewRNG(4))
	if _, err := c.Reallocate("ghost"); !errors.Is(err, epc.ErrUnknownSubscriber) {
		t.Fatalf("Reallocate(ghost) error = %v", err)
	}
	if _, err := c.TMSIOf("ghost"); !errors.Is(err, epc.ErrUnknownSubscriber) {
		t.Fatalf("TMSIOf(ghost) error = %v", err)
	}
	if _, err := c.Resolve(12345); !errors.Is(err, epc.ErrUnknownSubscriber) {
		t.Fatalf("Resolve(12345) error = %v", err)
	}
}

func TestDetach(t *testing.T) {
	c := epc.NewCore(sim.NewRNG(5))
	tmsi := c.Attach("imsi-2")
	c.Detach("imsi-2")
	if _, err := c.Resolve(tmsi); err == nil {
		t.Fatal("detached subscriber's TMSI still resolves")
	}
	if c.Registered() != 0 {
		t.Fatalf("Registered() = %d after detach", c.Registered())
	}
	c.Detach("imsi-2") // second detach is a no-op
}
