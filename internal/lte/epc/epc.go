// Package epc is a minimal evolved packet core: it registers subscribers by
// IMSI, allocates and reallocates the temporary identities (TMSIs) the radio
// layer exposes, and originates paging toward idle UEs. It is deliberately
// small — the paper's attacks live below it — but its TMSI lifecycle is what
// makes identity mapping meaningful: a TMSI outlives many RNTIs, and a GUTI
// reallocation breaks an attacker's mapping until re-observed.
package epc

import (
	"errors"
	"fmt"
)

// IMSI is the permanent subscriber identity.
type IMSI string

// TMSI is the temporary subscriber identity assigned by the core network.
type TMSI uint32

// String formats the TMSI as analyzers print it.
func (t TMSI) String() string { return fmt.Sprintf("0x%08x", uint32(t)) }

// ErrUnknownSubscriber is returned for operations on unregistered IMSIs.
var ErrUnknownSubscriber = errors.New("epc: unknown subscriber")

// randSource is the randomness the core needs for TMSI allocation.
type randSource interface {
	Uint64() uint64
}

// Core tracks subscriber registrations. It is not safe for concurrent use;
// the simulation drives it from a single loop.
type Core struct {
	rng    randSource
	byIMSI map[IMSI]TMSI
	byTMSI map[TMSI]IMSI
}

// NewCore returns an empty core network drawing TMSIs from rng.
func NewCore(rng randSource) *Core {
	return &Core{
		rng:    rng,
		byIMSI: make(map[IMSI]TMSI),
		byTMSI: make(map[TMSI]IMSI),
	}
}

// Attach registers a subscriber and returns its TMSI. Attaching an
// already-registered subscriber returns the existing TMSI.
func (c *Core) Attach(imsi IMSI) TMSI {
	if t, ok := c.byIMSI[imsi]; ok {
		return t
	}
	t := c.freshTMSI()
	c.byIMSI[imsi] = t
	c.byTMSI[t] = imsi
	return t
}

// Reallocate performs a GUTI reallocation: the subscriber receives a fresh
// TMSI and the old one becomes invalid. Real networks do this periodically;
// it is the main churn an identity-mapping attacker must keep up with.
func (c *Core) Reallocate(imsi IMSI) (TMSI, error) {
	old, ok := c.byIMSI[imsi]
	if !ok {
		return 0, fmt.Errorf("reallocate %q: %w", imsi, ErrUnknownSubscriber)
	}
	delete(c.byTMSI, old)
	t := c.freshTMSI()
	c.byIMSI[imsi] = t
	c.byTMSI[t] = imsi
	return t, nil
}

// TMSIOf returns the current TMSI of a subscriber.
func (c *Core) TMSIOf(imsi IMSI) (TMSI, error) {
	t, ok := c.byIMSI[imsi]
	if !ok {
		return 0, fmt.Errorf("lookup %q: %w", imsi, ErrUnknownSubscriber)
	}
	return t, nil
}

// Resolve returns the subscriber a TMSI currently belongs to.
func (c *Core) Resolve(t TMSI) (IMSI, error) {
	imsi, ok := c.byTMSI[t]
	if !ok {
		return "", fmt.Errorf("resolve %v: %w", t, ErrUnknownSubscriber)
	}
	return imsi, nil
}

// Detach removes a subscriber.
func (c *Core) Detach(imsi IMSI) {
	if t, ok := c.byIMSI[imsi]; ok {
		delete(c.byTMSI, t)
		delete(c.byIMSI, imsi)
	}
}

// Registered reports the number of attached subscribers.
func (c *Core) Registered() int { return len(c.byIMSI) }

func (c *Core) freshTMSI() TMSI {
	for {
		t := TMSI(c.rng.Uint64())
		if t == 0 {
			continue
		}
		if _, taken := c.byTMSI[t]; !taken {
			return t
		}
	}
}
