package crc_test

import (
	"testing"
	"testing/quick"

	"ltefp/internal/lte/crc"
)

// TestChecksumKnownVector checks the classic CRC-16/CCITT check value:
// the XMODEM variant (poly 0x1021, init 0) of "123456789" is 0x31C3.
func TestChecksumKnownVector(t *testing.T) {
	got := crc.Checksum([]byte("123456789"))
	if got != 0x31C3 {
		t.Fatalf("Checksum(123456789) = %#04x, want 0x31c3", got)
	}
}

func TestChecksumEmpty(t *testing.T) {
	if got := crc.Checksum(nil); got != 0 {
		t.Fatalf("Checksum(nil) = %#04x, want 0 (zero initial register)", got)
	}
}

func TestChecksumSensitivity(t *testing.T) {
	a := crc.Checksum([]byte{0x12, 0x34, 0x56, 0x78})
	b := crc.Checksum([]byte{0x12, 0x34, 0x56, 0x79})
	if a == b {
		t.Fatal("single-bit payload change did not change the checksum")
	}
}

// TestMaskInvolution: masking is XOR, so applying it twice must restore
// the original parity bits for every (parity, rnti) pair.
func TestMaskInvolution(t *testing.T) {
	f := func(parity, rnti uint16) bool {
		return crc.Mask(crc.Mask(parity, rnti), rnti) == parity
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverRNTI: the blind-decoding identity — for any payload and any
// RNTI, recovering from an Attach-ed transmission yields the RNTI back.
func TestRecoverRNTI(t *testing.T) {
	f := func(payload []byte, rnti uint16) bool {
		masked := crc.Attach(payload, rnti)
		return crc.RecoverRNTI(payload, masked) == rnti
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestVerify accepts the right RNTI and rejects a different one.
func TestVerify(t *testing.T) {
	payload := []byte{0xde, 0xad, 0xbe, 0xef}
	masked := crc.Attach(payload, 0x1234)
	if !crc.Verify(payload, masked, 0x1234) {
		t.Fatal("Verify rejected the correct RNTI")
	}
	if crc.Verify(payload, masked, 0x1235) {
		t.Fatal("Verify accepted a wrong RNTI")
	}
}

// TestCorruptionChangesRecoveredRNTI: flipping payload bits makes the
// recovered RNTI wrong — the basis of the sniffer's plausibility filter.
func TestCorruptionChangesRecoveredRNTI(t *testing.T) {
	payload := []byte{1, 2, 3, 4}
	const rnti = 0x4242
	masked := crc.Attach(payload, rnti)
	corrupted := []byte{1, 2, 3, 5}
	if got := crc.RecoverRNTI(corrupted, masked); got == rnti {
		t.Fatalf("corrupted payload still recovered RNTI %#04x", got)
	}
}
