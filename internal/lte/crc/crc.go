// Package crc implements the 16-bit cyclic redundancy check that LTE
// attaches to DCI payloads on the PDCCH (3GPP TS 36.212 §5.1.1, gCRC16,
// generator polynomial D^16 + D^12 + D^5 + 1, i.e. CRC-16/CCITT with zero
// initial state), together with the RNTI masking rule of §5.3.3.2: the
// 16 CRC parity bits are XOR-ed with the RNTI before transmission.
//
// The masking rule is the entire basis of passive PDCCH sniffing: a decoder
// that re-computes the CRC over a candidate payload and XORs it with the
// received parity bits recovers the RNTI the message was addressed to. Tools
// such as OWL and FALCON — and the sniffer in this repository — exploit
// exactly this property.
package crc

// Poly is the gCRC16 generator polynomial, D^16 + D^12 + D^5 + 1, in the
// conventional MSB-first representation (the leading D^16 term is implicit).
const Poly uint16 = 0x1021

var table = makeTable()

func makeTable() *[256]uint16 {
	var t [256]uint16
	for i := 0; i < 256; i++ {
		c := uint16(i) << 8
		for j := 0; j < 8; j++ {
			if c&0x8000 != 0 {
				c = c<<1 ^ Poly
			} else {
				c <<= 1
			}
		}
		t[i] = c
	}
	return &t
}

// Checksum computes the gCRC16 parity bits over data with the all-zero
// initial register LTE prescribes.
func Checksum(data []byte) uint16 {
	var c uint16
	for _, b := range data {
		c = c<<8 ^ table[byte(c>>8)^b]
	}
	return c
}

// Mask applies RNTI masking to CRC parity bits. Masking is an involution:
// Mask(Mask(c, r), r) == c.
func Mask(parity, rnti uint16) uint16 { return parity ^ rnti }

// Attach computes the masked parity bits transmitted alongside a DCI
// payload addressed to rnti.
func Attach(payload []byte, rnti uint16) uint16 {
	return Mask(Checksum(payload), rnti)
}

// RecoverRNTI inverts Attach: given a received payload and its masked parity
// bits, it returns the RNTI the message was addressed to. This is the blind
// decoding step of a passive PDCCH sniffer. When the payload was corrupted
// in capture the returned value is garbage; callers filter implausible
// RNTIs by tracking activity over time.
func RecoverRNTI(payload []byte, maskedParity uint16) uint16 {
	return Checksum(payload) ^ maskedParity
}

// Verify reports whether the masked parity bits are consistent with the
// payload under the given RNTI.
func Verify(payload []byte, maskedParity, rnti uint16) bool {
	return Attach(payload, rnti) == maskedParity
}
