// Package rnti models the Radio Network Temporary Identifier space of LTE
// (3GPP TS 36.321 §7.1). RNTIs are the 16-bit addresses that the eNodeB uses
// on the PDCCH to direct control information to connected UEs; they are the
// only per-user identifier visible in plaintext on the radio layer, and
// tracking their lifecycle is the first step of every attack in the paper.
package rnti

import (
	"errors"
	"fmt"
)

// RNTI is a 16-bit radio network temporary identifier.
type RNTI uint16

// Well-known RNTI values and ranges (TS 36.321 Table 7.1-1).
const (
	// PRNTI addresses paging messages.
	PRNTI RNTI = 0xFFFE
	// SIRNTI addresses system information broadcasts.
	SIRNTI RNTI = 0xFFFF
	// RAMin and RAMax bound the RA-RNTI range used to address random
	// access responses.
	RAMin RNTI = 0x0001
	RAMax RNTI = 0x003C
	// CMin and CMax bound the C-RNTI range allocatable to connected UEs.
	CMin RNTI = 0x003D
	CMax RNTI = 0xFFF3
)

// IsC reports whether r lies in the C-RNTI (connected-UE) range.
func (r RNTI) IsC() bool { return r >= CMin && r <= CMax }

// IsRA reports whether r lies in the RA-RNTI range.
func (r RNTI) IsRA() bool { return r >= RAMin && r <= RAMax }

// String formats the RNTI the way LTE analyzers conventionally do.
func (r RNTI) String() string {
	switch {
	case r == PRNTI:
		return "P-RNTI"
	case r == SIRNTI:
		return "SI-RNTI"
	case r.IsRA():
		return fmt.Sprintf("RA-RNTI(0x%04x)", uint16(r))
	case r.IsC():
		return fmt.Sprintf("C-RNTI(0x%04x)", uint16(r))
	default:
		return fmt.Sprintf("RNTI(0x%04x)", uint16(r))
	}
}

// ErrExhausted is returned by Allocator.Allocate when every C-RNTI is in use.
var ErrExhausted = errors.New("rnti: C-RNTI space exhausted")

// Allocator hands out C-RNTIs the way an eNodeB does: values are unique
// among currently connected UEs, and released values return to the pool but
// are not immediately reused, so a sniffer observing a fresh RNTI can assume
// it belongs to a newly (re)connected UE rather than a stale one.
//
// Allocator is not safe for concurrent use; each simulated cell owns one.
type Allocator struct {
	rng    randSource
	inUse  map[RNTI]struct{}
	cool   []RNTI // released, awaiting cooldown before reuse
	minAge int    // releases that must happen before a cooled RNTI is reusable
}

// randSource is the subset of sim.RNG the allocator needs; declaring it
// locally keeps the dependency direction clean.
type randSource interface {
	UniformInt(lo, hi int) int
}

// NewAllocator returns an allocator drawing fresh values from rng.
func NewAllocator(rng randSource) *Allocator {
	return &Allocator{
		rng:    rng,
		inUse:  make(map[RNTI]struct{}),
		minAge: 64,
	}
}

// Allocate returns an unused C-RNTI.
func (a *Allocator) Allocate() (RNTI, error) {
	span := int(CMax - CMin)
	for attempt := 0; attempt < 4*span; attempt++ {
		r := RNTI(a.rng.UniformInt(int(CMin), int(CMax)))
		if _, used := a.inUse[r]; used {
			continue
		}
		if a.cooling(r) {
			continue
		}
		a.inUse[r] = struct{}{}
		return r, nil
	}
	return 0, ErrExhausted
}

// Release returns r to the pool after a cooldown. Releasing an RNTI that is
// not allocated is a no-op.
func (a *Allocator) Release(r RNTI) {
	if _, ok := a.inUse[r]; !ok {
		return
	}
	delete(a.inUse, r)
	a.cool = append(a.cool, r)
	if len(a.cool) > a.minAge {
		a.cool = a.cool[len(a.cool)-a.minAge:]
	}
}

// Active reports the number of allocated C-RNTIs.
func (a *Allocator) Active() int { return len(a.inUse) }

func (a *Allocator) cooling(r RNTI) bool {
	for _, c := range a.cool {
		if c == r {
			return true
		}
	}
	return false
}
