package rnti_test

import (
	"strings"
	"testing"

	"ltefp/internal/lte/rnti"
	"ltefp/internal/sim"
)

func TestRanges(t *testing.T) {
	cases := []struct {
		r    rnti.RNTI
		isC  bool
		isRA bool
	}{
		{rnti.CMin, true, false},
		{rnti.CMax, true, false},
		{rnti.CMin - 1, false, true}, // 0x003C is the top of the RA range
		{rnti.RAMin, false, true},
		{rnti.PRNTI, false, false},
		{rnti.SIRNTI, false, false},
		{0, false, false},
	}
	for _, c := range cases {
		if got := c.r.IsC(); got != c.isC {
			t.Errorf("%v.IsC() = %v, want %v", c.r, got, c.isC)
		}
		if got := c.r.IsRA(); got != c.isRA {
			t.Errorf("%v.IsRA() = %v, want %v", c.r, got, c.isRA)
		}
	}
}

func TestString(t *testing.T) {
	if got := rnti.PRNTI.String(); got != "P-RNTI" {
		t.Errorf("PRNTI.String() = %q", got)
	}
	if got := rnti.SIRNTI.String(); got != "SI-RNTI" {
		t.Errorf("SIRNTI.String() = %q", got)
	}
	if got := rnti.RNTI(0x1000).String(); !strings.HasPrefix(got, "C-RNTI") {
		t.Errorf("C-range String() = %q", got)
	}
	if got := rnti.RNTI(0x0010).String(); !strings.HasPrefix(got, "RA-RNTI") {
		t.Errorf("RA-range String() = %q", got)
	}
}

func TestAllocatorUnique(t *testing.T) {
	a := rnti.NewAllocator(sim.NewRNG(1))
	seen := make(map[rnti.RNTI]bool)
	for i := 0; i < 2000; i++ {
		r, err := a.Allocate()
		if err != nil {
			t.Fatalf("allocation %d: %v", i, err)
		}
		if !r.IsC() {
			t.Fatalf("allocated %v outside the C-RNTI range", r)
		}
		if seen[r] {
			t.Fatalf("allocated %v twice while still in use", r)
		}
		seen[r] = true
	}
	if got := a.Active(); got != 2000 {
		t.Fatalf("Active() = %d, want 2000", got)
	}
}

func TestAllocatorReleaseCooldown(t *testing.T) {
	a := rnti.NewAllocator(sim.NewRNG(2))
	r, err := a.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	a.Release(r)
	if got := a.Active(); got != 0 {
		t.Fatalf("Active() after release = %d, want 0", got)
	}
	// The just-released value must not come straight back.
	for i := 0; i < 50; i++ {
		got, err := a.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if got == r {
			t.Fatalf("released RNTI %v reused after only %d allocations", r, i)
		}
	}
}

func TestReleaseUnknownIsNoop(t *testing.T) {
	a := rnti.NewAllocator(sim.NewRNG(3))
	a.Release(0x2000) // must not panic or corrupt state
	if got := a.Active(); got != 0 {
		t.Fatalf("Active() = %d after releasing unknown RNTI", got)
	}
}
