// Package operator collects the per-network configuration knobs that shape
// radio-layer traffic: scheduler policy, channel-quality statistics, idle
// timers, padding behaviour, and ambient cell load. The paper observes that
// "traffic patterns and frame metadata are sensitive to operator-specific
// configuration, such as the specific resource scheduling algorithms that
// eNodeBs use", and trains one model per carrier; this package is where
// those differences live, so lab-versus-real-world and carrier-versus-
// carrier comparisons are configuration rather than code.
//
// The three commercial profiles are synthetic stand-ins for Verizon, AT&T,
// and T-Mobile (see DESIGN.md §2): their parameter values are chosen to be
// mutually distinct and noisier than the lab profile, reproducing the
// paper's 5–30 point F-score gap between settings rather than any carrier's
// actual configuration.
package operator

import (
	"fmt"
	"time"
)

// Profile describes one network environment.
type Profile struct {
	// Name identifies the profile ("Lab", "Verizon", "AT&T", "T-Mobile").
	Name string

	// PRBs is the carrier bandwidth in physical resource blocks.
	PRBs int
	// NCCE is the PDCCH capacity in control channel elements per subframe.
	NCCE int
	// MaxPRBPerGrant caps a single UE's allocation in one TTI.
	MaxPRBPerGrant int
	// SchedPeriodTTI is the nominal gap, in subframes, between scheduling
	// opportunities for one UE (1 = every TTI).
	SchedPeriodTTI int
	// GrantJitterTTI adds up to this many subframes of random delay before
	// a queued transport block is granted, modelling contention with other
	// cell users and scheduler batching.
	GrantJitterTTI int

	// InactivityTimeout is how long a UE may stay silent before the eNodeB
	// releases its RRC connection (and C-RNTI). The paper cites 10 s as the
	// common default.
	InactivityTimeout time.Duration

	// CQIMean and CQISigma describe the stationary distribution of a UE's
	// channel quality indicator (0..15), which the scheduler maps to MCS.
	CQIMean  float64
	CQISigma float64
	// CQIWalkPerSec is the standard deviation of the per-second random walk
	// of a UE's CQI around its mean, modelling fading and mobility.
	CQIWalkPerSec float64

	// PaddingProb is the probability a grant is padded beyond the queued
	// payload (real schedulers over-grant; padding blurs the size feature).
	PaddingProb float64
	// PaddingMaxBytes bounds the over-grant.
	PaddingMaxBytes int

	// LinkAdaptSlack is the maximum number of extra MCS steps the scheduler
	// leaves above the tightest transport block that fits a payload. A
	// dedicated lab eNodeB sizes grants exactly (0); production schedulers
	// leave headroom for retransmissions and report lag, which blurs the
	// TBS-to-payload correspondence the attack feeds on.
	LinkAdaptSlack int

	// CaptureLoss is the probability the sniffer misses a PDCCH message in
	// this environment (decode failures grow with distance and load).
	CaptureLoss float64
	// BackgroundUEs is the number of ambient, non-target UEs the cell
	// serves, whose traffic shares the PDCCH and the scheduler.
	BackgroundUEs int

	// GUTIReallocEvery is how often the core reallocates a subscriber's
	// TMSI; zero disables reallocation (lab).
	GUTIReallocEvery time.Duration

	// RNTIRefreshEvery, when positive, reassigns every connected UE's
	// C-RNTI at this period via an encrypted reconfiguration — the paper's
	// first proposed countermeasure ("a frequent reassignment of the RNTI
	// from the base station can disrupt the tracking and collecting of LTE
	// traffic", §VIII-B). A passive sniffer cannot link the old RNTI to
	// the new one.
	RNTIRefreshEvery time.Duration

	// PadBuckets, when true, morphs every grant up to the next
	// power-of-two size bucket (Wright et al.'s traffic morphing applied
	// at layer two, the paper's second countermeasure) at the price of
	// padding overhead.
	PadBuckets bool

	// OneTimeIdentifiers models 5G-style identity protection (§VIII-C:
	// SUCI/rotating 5G-GUTIs): connection establishment and paging expose
	// only single-use pseudonyms, so a passive observer can no longer bind
	// RNTIs to a stable subscriber identity across connections.
	OneTimeIdentifiers bool

	// GrantQuantum, when positive, rounds every data grant up to a
	// randomized multiple of this many bytes (the grant's payload size is
	// quantized onto a coarse lattice, with one quantum of random slack).
	// Collapsing transport-block sizes onto few distinct values destroys
	// the fine-grained size feature at a bounded padding cost.
	GrantQuantum int

	// DummyBurstProb, when positive, injects a fake downlink burst into
	// each connected UE's queue with this probability per 10 ms frame.
	// Dummy bursts are real grants carrying garbage, so a passive observer
	// cannot separate them from application traffic; DummyBurstMaxBytes
	// bounds each burst's size.
	DummyBurstProb     float64
	DummyBurstMaxBytes int

	// ConstantRatePeriodTTI, when positive, puts a constant-rate floor
	// under each connected UE's downlink: at every period boundary the
	// scheduler tops the UE's queue up to ConstantRateBytes with cover
	// traffic, so the served byte rate never drops below the floor and the
	// downlink no longer goes quiet between application bursts.
	ConstantRatePeriodTTI int
	ConstantRateBytes     int

	// PagingCycleTTI overrides the paging-occasion period in subframes
	// (0 = the default 32 ms cycle). Coarser occasions batch more paging
	// records per message and blur paging-timing correlation, at the cost
	// of added paging latency — the "smart paging" mitigation against
	// presence probing.
	PagingCycleTTI int

	// PagingBatchMax caps how many paging records one paging message
	// carries (0 = the default 16, the LTE maximum).
	PagingBatchMax int
}

// Validate checks the profile for configuration errors.
func (p *Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("operator: profile has no name")
	case p.PRBs < 6 || p.PRBs > 110:
		return fmt.Errorf("operator: %s: PRBs %d outside [6, 110]", p.Name, p.PRBs)
	case p.MaxPRBPerGrant < 1 || p.MaxPRBPerGrant > p.PRBs:
		return fmt.Errorf("operator: %s: MaxPRBPerGrant %d outside [1, %d]", p.Name, p.MaxPRBPerGrant, p.PRBs)
	case p.SchedPeriodTTI < 1:
		return fmt.Errorf("operator: %s: SchedPeriodTTI %d < 1", p.Name, p.SchedPeriodTTI)
	case p.InactivityTimeout <= 0:
		return fmt.Errorf("operator: %s: InactivityTimeout must be positive", p.Name)
	case p.CQIMean < 1 || p.CQIMean > 15:
		return fmt.Errorf("operator: %s: CQIMean %.1f outside [1, 15]", p.Name, p.CQIMean)
	case p.CaptureLoss < 0 || p.CaptureLoss >= 1:
		return fmt.Errorf("operator: %s: CaptureLoss %.3f outside [0, 1)", p.Name, p.CaptureLoss)
	case p.PaddingProb < 0 || p.PaddingProb > 1:
		return fmt.Errorf("operator: %s: PaddingProb %.3f outside [0, 1]", p.Name, p.PaddingProb)
	case p.GrantQuantum < 0:
		return fmt.Errorf("operator: %s: GrantQuantum %d negative", p.Name, p.GrantQuantum)
	case p.DummyBurstProb < 0 || p.DummyBurstProb > 1:
		return fmt.Errorf("operator: %s: DummyBurstProb %.3f outside [0, 1]", p.Name, p.DummyBurstProb)
	case p.DummyBurstProb > 0 && p.DummyBurstMaxBytes < 1:
		return fmt.Errorf("operator: %s: DummyBurstProb set with DummyBurstMaxBytes %d", p.Name, p.DummyBurstMaxBytes)
	case p.DummyBurstMaxBytes < 0:
		return fmt.Errorf("operator: %s: DummyBurstMaxBytes %d negative", p.Name, p.DummyBurstMaxBytes)
	case p.ConstantRatePeriodTTI < 0:
		return fmt.Errorf("operator: %s: ConstantRatePeriodTTI %d negative", p.Name, p.ConstantRatePeriodTTI)
	case p.ConstantRatePeriodTTI > 0 && p.ConstantRateBytes < 1:
		return fmt.Errorf("operator: %s: ConstantRatePeriodTTI set with ConstantRateBytes %d", p.Name, p.ConstantRateBytes)
	case p.ConstantRateBytes < 0:
		return fmt.Errorf("operator: %s: ConstantRateBytes %d negative", p.Name, p.ConstantRateBytes)
	case p.PagingCycleTTI < 0:
		return fmt.Errorf("operator: %s: PagingCycleTTI %d negative", p.Name, p.PagingCycleTTI)
	case p.PagingBatchMax < 0 || p.PagingBatchMax > 16:
		return fmt.Errorf("operator: %s: PagingBatchMax %d outside [0, 16]", p.Name, p.PagingBatchMax)
	}
	return nil
}

// Lab returns the controlled-environment profile: a dedicated eNodeB, one
// UE per experiment, excellent channel, no padding, no capture loss.
func Lab() Profile {
	return Profile{
		Name:              "Lab",
		PRBs:              100,
		NCCE:              42,
		MaxPRBPerGrant:    100,
		SchedPeriodTTI:    1,
		GrantJitterTTI:    0,
		InactivityTimeout: 10 * time.Second,
		CQIMean:           14,
		CQISigma:          0.5,
		CQIWalkPerSec:     0.05,
		PaddingProb:       0,
		PaddingMaxBytes:   0,
		CaptureLoss:       0,
		BackgroundUEs:     0,
	}
}

// Verizon returns the synthetic Verizon-like commercial profile.
func Verizon() Profile {
	return Profile{
		Name:              "Verizon",
		PRBs:              100,
		NCCE:              42,
		MaxPRBPerGrant:    80,
		SchedPeriodTTI:    2,
		GrantJitterTTI:    10,
		InactivityTimeout: 10 * time.Second,
		CQIMean:           10.5,
		CQISigma:          1.4,
		CQIWalkPerSec:     1.3,
		PaddingProb:       0.22,
		PaddingMaxBytes:   900,
		LinkAdaptSlack:    2,
		CaptureLoss:       0.035,
		BackgroundUEs:     14,
		GUTIReallocEvery:  45 * time.Minute,
	}
}

// ATT returns the synthetic AT&T-like commercial profile.
func ATT() Profile {
	return Profile{
		Name:              "AT&T",
		PRBs:              100,
		NCCE:              42,
		MaxPRBPerGrant:    90,
		SchedPeriodTTI:    1,
		GrantJitterTTI:    9,
		InactivityTimeout: 11 * time.Second,
		CQIMean:           11.0,
		CQISigma:          1.2,
		CQIWalkPerSec:     1.1,
		PaddingProb:       0.18,
		PaddingMaxBytes:   700,
		LinkAdaptSlack:    2,
		CaptureLoss:       0.03,
		BackgroundUEs:     12,
		GUTIReallocEvery:  60 * time.Minute,
	}
}

// TMobile returns the synthetic T-Mobile-like commercial profile.
func TMobile() Profile {
	return Profile{
		Name:              "T-Mobile",
		PRBs:              100,
		NCCE:              42,
		MaxPRBPerGrant:    70,
		SchedPeriodTTI:    2,
		GrantJitterTTI:    12,
		InactivityTimeout: 9 * time.Second,
		CQIMean:           10.0,
		CQISigma:          1.6,
		CQIWalkPerSec:     1.5,
		PaddingProb:       0.25,
		PaddingMaxBytes:   1100,
		LinkAdaptSlack:    3,
		CaptureLoss:       0.04,
		BackgroundUEs:     16,
		GUTIReallocEvery:  40 * time.Minute,
	}
}

// Commercial returns the three real-world profiles in the order the paper's
// tables list them.
func Commercial() []Profile {
	return []Profile{Verizon(), ATT(), TMobile()}
}

// ByName resolves a profile by its table name (case-sensitive).
func ByName(name string) (Profile, error) {
	for _, p := range append([]Profile{Lab()}, Commercial()...) {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("operator: unknown profile %q", name)
}
