package operator_test

import (
	"testing"

	"ltefp/internal/lte/operator"
)

func TestBuiltinProfilesValid(t *testing.T) {
	profiles := append([]operator.Profile{operator.Lab()}, operator.Commercial()...)
	for _, p := range profiles {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestCommercialOrder(t *testing.T) {
	got := operator.Commercial()
	want := []string{"Verizon", "AT&T", "T-Mobile"}
	if len(got) != len(want) {
		t.Fatalf("Commercial() has %d profiles", len(got))
	}
	for i, p := range got {
		if p.Name != want[i] {
			t.Errorf("Commercial()[%d] = %s, want %s", i, p.Name, want[i])
		}
	}
}

func TestLabIsClean(t *testing.T) {
	lab := operator.Lab()
	if lab.CaptureLoss != 0 || lab.PaddingProb != 0 || lab.BackgroundUEs != 0 || lab.LinkAdaptSlack != 0 {
		t.Fatal("lab profile must be noiseless: no loss, padding, ambient users, or link-adaptation slack")
	}
}

func TestCommercialNoisierThanLab(t *testing.T) {
	lab := operator.Lab()
	for _, p := range operator.Commercial() {
		if p.CaptureLoss <= lab.CaptureLoss {
			t.Errorf("%s: capture loss not above lab", p.Name)
		}
		if p.BackgroundUEs == 0 {
			t.Errorf("%s: no ambient users", p.Name)
		}
		if p.CQIMean >= lab.CQIMean {
			t.Errorf("%s: channel not worse than lab", p.Name)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"Lab", "Verizon", "AT&T", "T-Mobile"} {
		p, err := operator.ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if p.Name != name {
			t.Fatalf("ByName(%q).Name = %q", name, p.Name)
		}
	}
	if _, err := operator.ByName("Sprint"); err == nil {
		t.Fatal("ByName(Sprint) succeeded")
	}
}

func TestValidateRejects(t *testing.T) {
	bad := operator.Lab()
	bad.Name = ""
	if err := bad.Validate(); err == nil {
		t.Error("empty name accepted")
	}
	bad = operator.Lab()
	bad.PRBs = 5
	if err := bad.Validate(); err == nil {
		t.Error("PRBs below 6 accepted")
	}
	bad = operator.Lab()
	bad.MaxPRBPerGrant = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero MaxPRBPerGrant accepted")
	}
	bad = operator.Lab()
	bad.CaptureLoss = 1
	if err := bad.Validate(); err == nil {
		t.Error("CaptureLoss = 1 accepted")
	}
	bad = operator.Lab()
	bad.InactivityTimeout = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero inactivity timeout accepted")
	}
}
