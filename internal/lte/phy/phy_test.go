package phy_test

import (
	"testing"
	"testing/quick"

	"ltefp/internal/lte/phy"
	"ltefp/internal/lte/rnti"
)

func TestCandidatesDeterministic(t *testing.T) {
	a, err := phy.Candidates(0x1234, 2, 77, phy.DefaultNCCE)
	if err != nil {
		t.Fatal(err)
	}
	b, err := phy.Candidates(0x1234, 2, 77, phy.DefaultNCCE)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("candidate count changed between identical calls")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("candidate positions changed between identical calls")
		}
	}
}

// TestCandidatesInRange: every candidate must fit within the CCE grid and
// be aligned to its aggregation level.
func TestCandidatesInRange(t *testing.T) {
	f := func(r uint16, aggPick uint8, sf uint16) bool {
		agg := phy.AggregationLevels[int(aggPick)%len(phy.AggregationLevels)]
		cands, err := phy.Candidates(rnti.RNTI(r), agg, int64(sf), phy.DefaultNCCE)
		if err != nil {
			// Only common-search-space constraint violations are legal
			// errors here.
			return !rnti.RNTI(r).IsC() && agg < 4
		}
		for _, c := range cands {
			if c < 0 || c+agg > phy.DefaultNCCE {
				return false
			}
			if c%agg != 0 {
				return false
			}
		}
		return len(cands) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCandidatesVaryWithSubframe(t *testing.T) {
	// The UE-specific hash moves candidates around across subframes; over
	// ten subframes at least two distinct layouts must appear.
	distinct := make(map[int]bool)
	for sf := int64(0); sf < 10; sf++ {
		cands, err := phy.Candidates(0x2345, 1, sf, phy.DefaultNCCE)
		if err != nil {
			t.Fatal(err)
		}
		distinct[cands[0]] = true
	}
	if len(distinct) < 2 {
		t.Fatal("UE-specific search space does not vary with subframe")
	}
}

func TestCommonSearchSpace(t *testing.T) {
	if _, err := phy.Candidates(rnti.PRNTI, 1, 0, phy.DefaultNCCE); err == nil {
		t.Error("common search space accepted aggregation level 1")
	}
	cands, err := phy.Candidates(rnti.PRNTI, 4, 0, phy.DefaultNCCE)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if c+4 > 16 {
			t.Fatalf("common-space candidate %d extends past CCE 16", c)
		}
	}
}

func TestCCEMapNoOverlap(t *testing.T) {
	m := phy.NewCCEMap(phy.DefaultNCCE)
	used := 0
	for r := rnti.RNTI(0x100); r < 0x180; r++ {
		if _, ok := m.Place(r, 2, 5); ok {
			used += 2
		}
	}
	if got := m.Used(); got != used {
		t.Fatalf("Used() = %d, want %d: placements overlapped", got, used)
	}
	if used == 0 {
		t.Fatal("no placements succeeded at all")
	}
}

func TestCCEMapCongestion(t *testing.T) {
	// A tiny grid must eventually refuse placements rather than overlap.
	m := phy.NewCCEMap(8)
	refused := false
	for r := rnti.RNTI(0x100); r < 0x140; r++ {
		if _, ok := m.Place(r, 4, 3); !ok {
			refused = true
		}
	}
	if !refused {
		t.Fatal("an 8-CCE grid accepted 64 placements of level 4")
	}
	if m.Used() > 8 {
		t.Fatalf("Used() = %d exceeds grid size", m.Used())
	}
}

func TestSubframeSFN(t *testing.T) {
	sf := phy.Subframe{Index: 10*1024*3 + 57}
	frame, sub := sf.SFN()
	if frame != 5 || sub != 7 {
		t.Fatalf("SFN() = (%d, %d), want (5, 7)", frame, sub)
	}
}
