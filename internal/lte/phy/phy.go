// Package phy models the slice of the LTE physical layer a passive PDCCH
// observer interacts with: subframes, the control channel element (CCE)
// grid of the PDCCH, search spaces, and the candidate hashing rule of
// 3GPP TS 36.213 §9.1.1 that determines where a UE's DCI messages may be
// placed. The eNodeB writes Transmissions into Subframes; the sniffer reads
// them back and blind-decodes them. Nothing in this package is encrypted —
// as on the real air interface, the PDCCH is plaintext by design.
package phy

import (
	"fmt"

	"ltefp/internal/lte/rnti"
)

// DefaultNCCE is the number of control channel elements available per
// subframe on the modelled 20 MHz carrier with a typical CFI.
const DefaultNCCE = 42

// commonSearchSpaceCCEs is the number of CCEs (from CCE 0) that form the
// common search space, used for paging, RAR, and SI scheduling.
const commonSearchSpaceCCEs = 16

// AggregationLevels lists the valid PDCCH aggregation levels.
var AggregationLevels = []int{1, 2, 4, 8}

// Transmission is one PDCCH message together with the scheduled payload a
// sniffer can observe.
type Transmission struct {
	// Payload is the packed DCI payload.
	Payload []byte
	// MaskedCRC is the CRC16 of Payload XOR-masked with the target RNTI.
	MaskedCRC uint16
	// AggLevel is the aggregation level (1, 2, 4, or 8 CCEs).
	AggLevel int
	// FirstCCE is the index of the first CCE the message occupies.
	FirstCCE int
	// Plaintext, when non-nil, carries the content of the scheduled
	// transport block for the handful of messages sent before AS security
	// activation (random access response, RRC connection setup, paging
	// records). Those are readable by any observer on a real network; user
	// traffic after security activation is opaque and carries nil here.
	Plaintext any
}

// Preamble is a random-access attempt visible on the PRACH.
type Preamble struct {
	// ID is the preamble index the UE picked, 0..63.
	ID int
}

// Subframe is everything transmitted over the air in one 1 ms TTI that a
// physical-layer observer can capture.
type Subframe struct {
	// Index is the absolute subframe number since simulation start.
	Index int64
	// PDCCH holds the control messages of this subframe.
	PDCCH []Transmission
	// RACH holds random-access preambles received in this subframe.
	RACH []Preamble
}

// SFN returns the 10 ms system frame number (mod 1024) and the subframe
// number within the frame.
func (s *Subframe) SFN() (frame, sub int) {
	return int((s.Index / 10) % 1024), int(s.Index % 10)
}

// searchSpaceHash implements the Y_k recursion of TS 36.213 §9.1.1 that
// seeds UE-specific candidate locations: Y_k = (A · Y_{k-1}) mod D with
// A = 39827, D = 65537 and Y_{-1} = RNTI.
func searchSpaceHash(r rnti.RNTI, subframe int64) uint64 {
	const (
		a = 39827
		d = 65537
	)
	y := uint64(r)
	if y == 0 {
		y = 1
	}
	k := int(subframe % 10)
	for i := 0; i <= k; i++ {
		y = (a * y) % d
	}
	return y
}

// Candidates returns the first CCE index of each PDCCH candidate the given
// RNTI monitors at the given aggregation level in the given subframe.
// Common-range RNTIs (paging, SI, RA) use the common search space; C-RNTIs
// use their hashed UE-specific space.
func Candidates(r rnti.RNTI, aggLevel int, subframe int64, ncce int) ([]int, error) {
	if !validAgg(aggLevel) {
		return nil, fmt.Errorf("phy: invalid aggregation level %d", aggLevel)
	}
	if ncce < aggLevel {
		return nil, fmt.Errorf("phy: %d CCEs cannot fit aggregation level %d", ncce, aggLevel)
	}
	var numCand int
	switch aggLevel {
	case 1:
		numCand = 6
	case 2:
		numCand = 6
	case 4:
		numCand = 2
	case 8:
		numCand = 2
	}
	if !r.IsC() {
		// Common search space: aggregation levels 4 and 8 only, CCEs 0..15.
		if aggLevel < 4 {
			return nil, fmt.Errorf("phy: common search space requires aggregation level ≥ 4, got %d", aggLevel)
		}
		span := commonSearchSpaceCCEs
		if span > ncce {
			span = ncce
		}
		out := make([]int, 0, span/aggLevel)
		for c := 0; c+aggLevel <= span; c += aggLevel {
			out = append(out, c)
		}
		return out, nil
	}
	y := searchSpaceHash(r, subframe)
	slots := ncce / aggLevel
	out := make([]int, 0, numCand)
	for m := 0; m < numCand; m++ {
		c := int((y+uint64(m))%uint64(slots)) * aggLevel
		if containsInt(out, c) {
			continue
		}
		out = append(out, c)
	}
	return out, nil
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func candidateCount(aggLevel int) int {
	switch aggLevel {
	case 1, 2:
		return 6
	default:
		return 2
	}
}

func validAgg(l int) bool {
	for _, a := range AggregationLevels {
		if a == l {
			return true
		}
	}
	return false
}

// CCEMap tracks CCE occupancy while the eNodeB assembles a subframe's
// PDCCH, preventing overlapping placements exactly as a real scheduler
// must. The zero value is unusable; use NewCCEMap.
type CCEMap struct {
	used []bool
}

// NewCCEMap returns an occupancy map over ncce control channel elements.
func NewCCEMap(ncce int) *CCEMap {
	return &CCEMap{used: make([]bool, ncce)}
}

// Reset clears the map and resizes it to ncce elements, reusing the
// backing storage. It makes a zero-value CCEMap usable and lets a
// scheduler keep one map per cell instead of allocating one per TTI.
func (m *CCEMap) Reset(ncce int) {
	if cap(m.used) < ncce {
		m.used = make([]bool, ncce)
		return
	}
	m.used = m.used[:ncce]
	for i := range m.used {
		m.used[i] = false
	}
}

// Place finds the first free candidate for the RNTI at the aggregation
// level and marks it used. The boolean reports whether a slot was found;
// when all candidates are occupied the caller must defer the grant to a
// later subframe (PDCCH congestion). Candidate positions and order are
// exactly those of Candidates; the search runs without allocating.
func (m *CCEMap) Place(r rnti.RNTI, aggLevel int, subframe int64) (firstCCE int, ok bool) {
	ncce := len(m.used)
	if !validAgg(aggLevel) || ncce < aggLevel {
		return 0, false
	}
	if !r.IsC() {
		if aggLevel < 4 {
			return 0, false
		}
		span := commonSearchSpaceCCEs
		if span > ncce {
			span = ncce
		}
		for c := 0; c+aggLevel <= span; c += aggLevel {
			if m.free(c, aggLevel) {
				m.mark(c, aggLevel)
				return c, true
			}
		}
		return 0, false
	}
	y := searchSpaceHash(r, subframe)
	slots := uint64(ncce / aggLevel)
	// Duplicate candidates (the hash wraps within few slots) are probed
	// again instead of skipped: a repeated probe of an occupied slot fails
	// identically, so the outcome matches the deduplicated candidate list.
	for mIdx := 0; mIdx < candidateCount(aggLevel); mIdx++ {
		c := int((y+uint64(mIdx))%slots) * aggLevel
		if m.free(c, aggLevel) {
			m.mark(c, aggLevel)
			return c, true
		}
	}
	return 0, false
}

func (m *CCEMap) free(first, n int) bool {
	for i := first; i < first+n; i++ {
		if m.used[i] {
			return false
		}
	}
	return true
}

func (m *CCEMap) mark(first, n int) {
	for i := first; i < first+n; i++ {
		m.used[i] = true
	}
}

// Used reports how many CCEs are occupied.
func (m *CCEMap) Used() int {
	n := 0
	for _, u := range m.used {
		if u {
			n++
		}
	}
	return n
}
