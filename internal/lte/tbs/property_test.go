package tbs

import "testing"

// TestTableMonotoneOverFullRange sweeps every (I_TBS, N_PRB) cell and
// checks the property the classifier's size feature depends on: transport
// block size strictly increases with the PRB allocation at fixed I_TBS and
// strictly increases with I_TBS at fixed PRB count.
func TestTableMonotoneOverFullRange(t *testing.T) {
	for i := 0; i <= MaxITBS; i++ {
		prev := 0
		for n := 1; n <= MaxPRB; n++ {
			b, err := Bits(i, n)
			if err != nil {
				t.Fatalf("Bits(%d, %d): %v", i, n, err)
			}
			if b <= prev {
				t.Fatalf("TBS not strictly monotone in PRB: Bits(%d, %d)=%d <= Bits(%d, %d)=%d",
					i, n, b, i, n-1, prev)
			}
			if b%8 != 0 {
				t.Fatalf("Bits(%d, %d)=%d not byte aligned", i, n, b)
			}
			prev = b
		}
	}
	for n := 1; n <= MaxPRB; n++ {
		prev := -1
		for i := 0; i <= MaxITBS; i++ {
			b, err := Bits(i, n)
			if err != nil {
				t.Fatalf("Bits(%d, %d): %v", i, n, err)
			}
			if b <= prev {
				t.Fatalf("TBS not strictly monotone in I_TBS: Bits(%d, %d)=%d <= Bits(%d, %d)=%d",
					i, n, b, i-1, n, prev)
			}
			prev = b
		}
	}
}

// TestForMCSMonotone checks that the MCS → I_TBS mapping is non-decreasing
// across the full MCS range (a higher-order scheme never selects a smaller
// transport block) and rejects out-of-range indices.
func TestForMCSMonotone(t *testing.T) {
	prev := -1
	for mcs := 0; mcs <= MaxMCS; mcs++ {
		itbs, mod, err := ForMCS(mcs)
		if err != nil {
			t.Fatalf("ForMCS(%d): %v", mcs, err)
		}
		if itbs < prev {
			t.Fatalf("I_TBS decreases: ForMCS(%d)=%d after %d", mcs, itbs, prev)
		}
		if itbs < 0 || itbs > MaxITBS {
			t.Fatalf("ForMCS(%d) = I_TBS %d out of range", mcs, itbs)
		}
		if mod != QPSK && mod != QAM16 && mod != QAM64 {
			t.Fatalf("ForMCS(%d) modulation %v", mcs, mod)
		}
		prev = itbs
	}
	if _, _, err := ForMCS(-1); err == nil {
		t.Error("ForMCS(-1) accepted")
	}
	if _, _, err := ForMCS(MaxMCS + 1); err == nil {
		t.Errorf("ForMCS(%d) accepted", MaxMCS+1)
	}
}

// TestPRBsForInvertsTheTable round-trips every (mcs, prb) cell through the
// inverse helper: sizing a grant for exactly the TBS of n PRBs must come
// back to n (the table is strictly monotone, so the minimal allocation is
// unique), and one byte more must need exactly one more PRB.
func TestPRBsForInvertsTheTable(t *testing.T) {
	for mcs := 0; mcs <= MaxMCS; mcs++ {
		itbs, _, err := ForMCS(mcs)
		if err != nil {
			t.Fatal(err)
		}
		for n := 1; n <= MaxPRB; n++ {
			payload, err := Bytes(itbs, n)
			if err != nil {
				t.Fatal(err)
			}
			got, fits := PRBsFor(itbs, payload, MaxPRB)
			if !fits {
				t.Fatalf("PRBsFor(%d, %d, max): payload of its own TBS does not fit", itbs, payload)
			}
			if got != n {
				t.Fatalf("PRBsFor(%d, %d, max) = %d, want %d (round-trip)", itbs, payload, got, n)
			}
			if n < MaxPRB {
				over, fits := PRBsFor(itbs, payload+1, MaxPRB)
				if !fits || over != n+1 {
					t.Fatalf("PRBsFor(%d, %d+1, max) = %d (fits=%v), want %d", itbs, payload, over, fits, n+1)
				}
			}
		}
	}
}

// TestPRBsForCap checks the segmentation contract: a payload beyond the
// cap's capacity reports fits=false and returns the cap itself, and
// degenerate caps clamp into range.
func TestPRBsForCap(t *testing.T) {
	capacity, err := Bytes(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if n, fits := PRBsFor(0, capacity+1, 10); fits || n != 10 {
		t.Errorf("PRBsFor over cap = (%d, %v), want (10, false)", n, fits)
	}
	if n, fits := PRBsFor(0, 1, 0); !fits || n != 1 {
		t.Errorf("PRBsFor with cap 0 = (%d, %v), want clamp to (1, true)", n, fits)
	}
	if n, _ := PRBsFor(MaxITBS, 1<<30, MaxPRB+50); n != MaxPRB {
		t.Errorf("PRBsFor with oversized cap returned %d, want clamp to %d", n, MaxPRB)
	}
}
