// Package tbs models LTE transport block sizing (3GPP TS 36.213 §7.1.7).
//
// On the PDCCH, a DCI message carries an MCS index and a resource block
// allocation; the pair determines the Transport Block Size — the exact
// number of bytes moved across the shared channel in that subframe. TBS is
// the central side-channel feature of the paper: it is the "frame size"
// column of every trace, readable by a passive observer without touching
// encryption.
//
// Substitution note (see DESIGN.md §2): the normative TBS table is 27×110
// constants with no closed form. We generate a table from the rule the
// normative one was designed around — per-I_TBS spectral efficiency times
// available resource elements, quantised to byte-aligned sizes — anchored to
// the real table's corner efficiencies (≈0.23 bit/RE at I_TBS 0 and
// ≈6.28 bit/RE at I_TBS 26, the latter giving 75376 bits at 100 PRB).
// The classifier consumes size *distributions*, which
// this preserves: sizes are realistic in magnitude and strictly monotone in
// both MCS and PRB count.
package tbs

import (
	"fmt"
	"math"
)

// MaxPRB is the largest resource-block allocation (20 MHz carrier).
const MaxPRB = 110

// MaxITBS is the largest TBS index.
const MaxITBS = 26

// MaxMCS is the largest modulation-and-coding-scheme index usable for data.
const MaxMCS = 28

// resourceElementsPerPRB approximates the data-usable REs in a PRB pair
// (12 subcarriers × 14 symbols minus reference-signal and control overhead).
const resourceElementsPerPRB = 120

// Modulation identifies the constellation an MCS index selects.
type Modulation int

// Modulation orders used on LTE shared channels.
const (
	QPSK Modulation = iota + 1
	QAM16
	QAM64
)

// String returns the conventional name of the modulation.
func (m Modulation) String() string {
	switch m {
	case QPSK:
		return "QPSK"
	case QAM16:
		return "16QAM"
	case QAM64:
		return "64QAM"
	default:
		return fmt.Sprintf("Modulation(%d)", int(m))
	}
}

var table = makeTable()

// makeTable builds the TBS lookup. Efficiency grows geometrically from the
// I_TBS 0 anchor (0.233 bit/RE) to the I_TBS 26 anchor (6.28 bit/RE),
// matching the normative table's corners and its roughly exponential
// progression across modulation orders.
func makeTable() *[MaxITBS + 1][MaxPRB + 1]int {
	const (
		effLo = 0.2327 // ≈ 2792 bits / (100 PRB × 120 RE)
		effHi = 6.2813 // ≈ 75376 bits / (100 PRB × 120 RE)
	)
	var t [MaxITBS + 1][MaxPRB + 1]int
	for i := 0; i <= MaxITBS; i++ {
		eff := effLo * math.Pow(effHi/effLo, float64(i)/float64(MaxITBS))
		prev := 0
		for n := 1; n <= MaxPRB; n++ {
			bits := int(eff*resourceElementsPerPRB*float64(n)) / 8 * 8
			if bits < 16 {
				bits = 16
			}
			if bits <= prev { // strictly monotone in PRB
				bits = prev + 8
			}
			t[i][n] = bits
			prev = bits
		}
	}
	// Strictly monotone in I_TBS at fixed PRB.
	for n := 1; n <= MaxPRB; n++ {
		for i := 1; i <= MaxITBS; i++ {
			if t[i][n] <= t[i-1][n] {
				t[i][n] = t[i-1][n] + 8
			}
		}
	}
	return &t
}

// ForMCS maps an MCS index to its TBS index and modulation
// (TS 36.213 Table 7.1.7.1-1).
func ForMCS(mcs int) (itbs int, mod Modulation, err error) {
	switch {
	case mcs < 0 || mcs > MaxMCS:
		return 0, 0, fmt.Errorf("tbs: MCS %d out of range [0, %d]", mcs, MaxMCS)
	case mcs <= 9:
		return mcs, QPSK, nil
	case mcs <= 16:
		return mcs - 1, QAM16, nil
	default:
		return mcs - 2, QAM64, nil
	}
}

// Bits returns the transport block size in bits for a TBS index and PRB
// allocation.
func Bits(itbs, nprb int) (int, error) {
	if itbs < 0 || itbs > MaxITBS {
		return 0, fmt.Errorf("tbs: I_TBS %d out of range [0, %d]", itbs, MaxITBS)
	}
	if nprb < 1 || nprb > MaxPRB {
		return 0, fmt.Errorf("tbs: N_PRB %d out of range [1, %d]", nprb, MaxPRB)
	}
	return table[itbs][nprb], nil
}

// Bytes returns the transport block size in bytes.
func Bytes(itbs, nprb int) (int, error) {
	b, err := Bits(itbs, nprb)
	if err != nil {
		return 0, err
	}
	return b / 8, nil
}

// PRBsFor returns the smallest PRB allocation whose TBS carries at least
// the given payload (in bytes) at the given TBS index, capped at max. The
// boolean reports whether the payload fits even at the cap; when it does
// not, the cap is returned and the scheduler segments the payload across
// subframes, exactly as a real MAC layer does.
func PRBsFor(itbs, payloadBytes, max int) (nprb int, fits bool) {
	if max < 1 {
		max = 1
	}
	if max > MaxPRB {
		max = MaxPRB
	}
	need := payloadBytes * 8
	lo, hi := 1, max
	for lo < hi {
		mid := (lo + hi) / 2
		if table[itbs][mid] >= need {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, table[itbs][lo] >= need
}
