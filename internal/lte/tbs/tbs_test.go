package tbs_test

import (
	"testing"
	"testing/quick"

	"ltefp/internal/lte/tbs"
)

func TestForMCSMapping(t *testing.T) {
	cases := []struct {
		mcs  int
		itbs int
		mod  tbs.Modulation
	}{
		{0, 0, tbs.QPSK},
		{9, 9, tbs.QPSK},
		{10, 9, tbs.QAM16},
		{16, 15, tbs.QAM16},
		{17, 15, tbs.QAM64},
		{28, 26, tbs.QAM64},
	}
	for _, c := range cases {
		itbs, mod, err := tbs.ForMCS(c.mcs)
		if err != nil {
			t.Fatalf("ForMCS(%d): %v", c.mcs, err)
		}
		if itbs != c.itbs || mod != c.mod {
			t.Errorf("ForMCS(%d) = (%d, %v), want (%d, %v)", c.mcs, itbs, mod, c.itbs, c.mod)
		}
	}
	if _, _, err := tbs.ForMCS(-1); err == nil {
		t.Error("ForMCS(-1) accepted")
	}
	if _, _, err := tbs.ForMCS(29); err == nil {
		t.Error("ForMCS(29) accepted")
	}
}

func TestAnchors(t *testing.T) {
	// The generated table is anchored to the normative corners (within a
	// quantisation step).
	lo, err := tbs.Bits(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lo < 16 || lo > 32 {
		t.Errorf("Bits(0, 1) = %d, want within [16, 32] (normative corner is 16)", lo)
	}
	hi, err := tbs.Bits(tbs.MaxITBS, 100)
	if err != nil {
		t.Fatal(err)
	}
	if hi < 70000 || hi > 80000 {
		t.Errorf("Bits(26, 100) = %d, want ≈75376", hi)
	}
}

// TestMonotone: TBS must be strictly monotone in both N_PRB and I_TBS —
// the property the scheduler's binary search and MCS tightening rely on.
func TestMonotone(t *testing.T) {
	for i := 0; i <= tbs.MaxITBS; i++ {
		prev := 0
		for n := 1; n <= tbs.MaxPRB; n++ {
			b, err := tbs.Bits(i, n)
			if err != nil {
				t.Fatal(err)
			}
			if b <= prev {
				t.Fatalf("Bits(%d, %d) = %d not > Bits(%d, %d) = %d", i, n, b, i, n-1, prev)
			}
			if b%8 != 0 {
				t.Fatalf("Bits(%d, %d) = %d not byte-aligned", i, n, b)
			}
			prev = b
		}
	}
	for n := 1; n <= tbs.MaxPRB; n++ {
		prev := 0
		for i := 0; i <= tbs.MaxITBS; i++ {
			b, err := tbs.Bits(i, n)
			if err != nil {
				t.Fatal(err)
			}
			if b <= prev {
				t.Fatalf("Bits(%d, %d) = %d not > Bits(%d, %d) = %d", i, n, b, i-1, n, prev)
			}
			prev = b
		}
	}
}

func TestRangeErrors(t *testing.T) {
	if _, err := tbs.Bits(-1, 1); err == nil {
		t.Error("Bits(-1, 1) accepted")
	}
	if _, err := tbs.Bits(0, 0); err == nil {
		t.Error("Bits(0, 0) accepted")
	}
	if _, err := tbs.Bits(0, tbs.MaxPRB+1); err == nil {
		t.Error("Bits over MaxPRB accepted")
	}
	if _, err := tbs.Bytes(27, 1); err == nil {
		t.Error("Bytes over MaxITBS accepted")
	}
}

// TestPRBsFor: the chosen allocation must fit the payload (when it fits at
// all) and be minimal.
func TestPRBsFor(t *testing.T) {
	f := func(itbsRaw, payloadRaw uint16) bool {
		itbs := int(itbsRaw) % (tbs.MaxITBS + 1)
		payload := int(payloadRaw) % 5000
		nprb, fits := tbs.PRBsFor(itbs, payload, tbs.MaxPRB)
		got, err := tbs.Bytes(itbs, nprb)
		if err != nil {
			return false
		}
		if fits {
			if got < payload {
				return false
			}
			if nprb > 1 {
				smaller, err := tbs.Bytes(itbs, nprb-1)
				if err != nil || smaller >= payload {
					return false // not minimal
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPRBsForCapped(t *testing.T) {
	// A payload too big for the cap returns the cap and !fits: the MAC
	// segments it across subframes.
	nprb, fits := tbs.PRBsFor(0, 1<<20, 10)
	if fits || nprb != 10 {
		t.Fatalf("PRBsFor(huge, cap 10) = (%d, %v), want (10, false)", nprb, fits)
	}
}
