package ue_test

import (
	"testing"
	"time"

	"ltefp/internal/lte/ue"
	"ltefp/internal/sim"
)

func newUE(t *testing.T) *ue.UE {
	t.Helper()
	return ue.New("victim", "310150000000001", sim.NewRNG(1))
}

func TestNewDefaults(t *testing.T) {
	u := newUE(t)
	if u.State != ue.Idle {
		t.Fatalf("new UE state = %v", u.State)
	}
	if u.CellID != ue.NoCell {
		t.Fatalf("new UE cell = %d", u.CellID)
	}
	if u.HasTMSI {
		t.Fatal("new UE has a TMSI before attach")
	}
}

func TestCQIWalkBounds(t *testing.T) {
	u := newUE(t)
	u.SetChannel(10, 2, 5) // violent walk to probe the clamps
	for i := 0; i < 10000; i++ {
		u.StepCQI(100 * time.Millisecond)
		if u.CQI < 1 || u.CQI > 15 {
			t.Fatalf("CQI escaped [1, 15]: %v", u.CQI)
		}
	}
}

func TestMCSBounds(t *testing.T) {
	u := newUE(t)
	u.SetChannel(1, 0, 0)
	u.CQI = 1
	if m := u.MCS(); m < 0 || m > 28 {
		t.Fatalf("MCS at CQI 1 = %d", m)
	}
	u.CQI = 15
	if m := u.MCS(); m != 27 && m != 28 {
		t.Fatalf("MCS at CQI 15 = %d, want near 28", m)
	}
	// Monotone in CQI.
	prev := -1
	for cqi := 1.0; cqi <= 15; cqi += 0.5 {
		u.CQI = cqi
		if m := u.MCS(); m < prev {
			t.Fatalf("MCS not monotone at CQI %v", cqi)
		} else {
			prev = m
		}
	}
}

func TestIdentity(t *testing.T) {
	u := newUE(t)
	_, hasTMSI, random := u.Identity()
	if hasTMSI {
		t.Fatal("identity claims TMSI before attach")
	}
	if random == 0 {
		t.Fatal("random identity should be non-zero")
	}
	if random>>40 != 0 {
		t.Fatalf("random identity wider than 40 bits: %x", random)
	}
	u.TMSI = 0xCAFE
	u.HasTMSI = true
	tmsi, hasTMSI, _ := u.Identity()
	if !hasTMSI || tmsi != 0xCAFE {
		t.Fatalf("identity = (%v, %v)", tmsi, hasTMSI)
	}
}

func TestPendingUL(t *testing.T) {
	u := newUE(t)
	u.AddPendingUL(100, 3*time.Second)
	u.AddPendingUL(50, 4*time.Second)
	if u.PendingUL != 150 {
		t.Fatalf("PendingUL = %d", u.PendingUL)
	}
	if u.PendingULAt != 3*time.Second {
		t.Fatalf("PendingULAt = %v, want the first arrival's time", u.PendingULAt)
	}
	if got := u.TakePendingUL(); got != 150 {
		t.Fatalf("TakePendingUL = %d", got)
	}
	if u.PendingUL != 0 {
		t.Fatal("TakePendingUL did not drain")
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[ue.State]string{
		ue.Idle:       "RRC_IDLE",
		ue.Connecting: "RRC_CONNECTING",
		ue.Connected:  "RRC_CONNECTED",
	} {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
}
