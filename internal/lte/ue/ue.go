// Package ue models user equipment: the RRC state, identities, channel
// quality, and pending-traffic bookkeeping of one phone. The UE is kept
// deliberately thin — connection management lives in the eNodeB (package
// enb) and traffic programs live in the network driver — so that the state
// a sniffer tries to reconstruct (which RNTI belongs to which subscriber,
// and when it changes) has a single authoritative home here.
package ue

import (
	"fmt"
	"time"

	"ltefp/internal/lte/epc"
	"ltefp/internal/lte/rnti"
	"ltefp/internal/sim"
)

// State is the RRC state of a UE.
type State int

// RRC states.
const (
	// Idle: no RRC connection, no C-RNTI; reachable only by paging.
	Idle State = iota + 1
	// Connecting: random access in progress.
	Connecting
	// Connected: RRC connection established, C-RNTI assigned.
	Connected
)

// String names the state.
func (s State) String() string {
	switch s {
	case Idle:
		return "RRC_IDLE"
	case Connecting:
		return "RRC_CONNECTING"
	case Connected:
		return "RRC_CONNECTED"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// NoCell marks a UE not camped on any cell.
const NoCell = -1

// UE is one piece of user equipment.
type UE struct {
	// Name labels the UE in experiment output ("victim-A").
	Name string
	// IMSI is the permanent subscriber identity.
	IMSI epc.IMSI

	// TMSI is the current temporary identity; valid when HasTMSI.
	TMSI    epc.TMSI
	HasTMSI bool

	// State is the RRC state.
	State State
	// RNTI is the current C-RNTI; meaningful only when State != Idle.
	RNTI rnti.RNTI
	// CellID is the serving (or camped) cell, NoCell when unattached.
	CellID int

	// PendingUL is uplink payload waiting for a connection, in bytes.
	PendingUL int
	// PendingULAt remembers when the oldest pending uplink byte arrived.
	PendingULAt time.Duration

	// CQI is the current channel quality indicator (1..15, fractional
	// internally); cqiMean/cqiWalk drive its mean-reverting random walk.
	CQI     float64
	cqiMean float64
	cqiWalk float64

	// cqiNextEpoch is the next multiple-of-100 subframe at which the
	// attached UE's channel walk takes a step, or -1 while the walk is
	// frozen (UE holds no cell context). The eNodeB advances the walk
	// lazily: instead of stepping every attached UE at every epoch, it
	// calls CatchUpCQI when the value is about to be read, which replays
	// exactly the steps an eager walk would have taken.
	cqiNextEpoch int64

	rng *sim.RNG
}

// New returns an idle, unattached UE.
func New(name string, imsi epc.IMSI, rng *sim.RNG) *UE {
	return &UE{
		Name:         name,
		IMSI:         imsi,
		State:        Idle,
		CellID:       NoCell,
		cqiNextEpoch: -1,
		rng:          rng,
	}
}

// SetChannel initialises the channel-quality model from an operator
// profile's CQI statistics; the eNodeB calls this when the UE attaches.
func (u *UE) SetChannel(mean, sigma, walkPerSec float64) {
	u.cqiMean = u.rng.ClampedNormal(mean, sigma, 1, 15)
	u.cqiWalk = walkPerSec
	u.CQI = u.cqiMean
}

// StepCQI advances the channel random walk by dt. The walk is
// mean-reverting so that a UE's typical MCS is stable across a session, as
// a stationary user's is.
func (u *UE) StepCQI(dt time.Duration) {
	sec := dt.Seconds()
	pull := (u.cqiMean - u.CQI) * 0.2 * sec
	u.CQI += pull + u.rng.Normal(0, u.cqiWalk*sec)
	if u.CQI < 1 {
		u.CQI = 1
	}
	if u.CQI > 15 {
		u.CQI = 15
	}
}

// StartCQIAccrual begins lazy channel-walk accounting: firstEpoch is the
// first multiple-of-100 subframe at which an eager per-epoch walk would
// step this UE. The eNodeB calls this when it creates a UE context.
func (u *UE) StartCQIAccrual(firstEpoch int64) { u.cqiNextEpoch = firstEpoch }

// StopCQIAccrual freezes the channel walk (the UE context was released).
// The caller must CatchUpCQI first, or pending epochs are lost.
func (u *UE) StopCQIAccrual() { u.cqiNextEpoch = -1 }

// CatchUpCQI replays every pending channel-walk epoch at subframe index
// <= limit, drawing from the UE's own RNG stream exactly as the eager
// per-epoch walk would, so the resulting CQI — and every later draw from
// this UE's stream — is bit-identical to the eager schedule. It is a
// no-op while accrual is stopped or the UE is already caught up.
func (u *UE) CatchUpCQI(limit int64) {
	for u.cqiNextEpoch >= 0 && u.cqiNextEpoch <= limit {
		u.StepCQI(100 * sim.TTI)
		u.cqiNextEpoch += 100
	}
}

// MCS maps the current channel quality to the modulation-and-coding index
// the scheduler would pick (wideband CQI to MCS, roughly two MCS steps per
// CQI step as in common eNodeB link adaptation tables).
func (u *UE) MCS() int {
	m := int(u.CQI*1.93) - 1
	if m < 0 {
		m = 0
	}
	if m > 28 {
		m = 28
	}
	return m
}

// Identity returns the identity the UE would present in an RRC connection
// request: its S-TMSI when it has one, otherwise a fresh random value.
func (u *UE) Identity() (tmsi epc.TMSI, hasTMSI bool, random uint64) {
	if u.HasTMSI {
		return u.TMSI, true, 0
	}
	return 0, false, u.rng.Uint64() & 0xFFFFFFFFFF
}

// AddPendingUL buffers uplink payload that arrived while no connection
// exists (or before the grant pipeline drains it).
func (u *UE) AddPendingUL(bytes int, now time.Duration) {
	if u.PendingUL == 0 {
		u.PendingULAt = now
	}
	u.PendingUL += bytes
}

// TakePendingUL drains the pending-uplink buffer, returning its size.
func (u *UE) TakePendingUL() int {
	n := u.PendingUL
	u.PendingUL = 0
	return n
}
