package artifact

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"io"
	"math"
	"time"
)

// Hasher builds a content Key from deterministic primitives. Every value
// is written fixed-width or length-prefixed, so distinct provenance can
// never collide by concatenation ambiguity. The namespace string seeds the
// hash and doubles as the key-schema version: bump it whenever the set or
// order of hashed fields changes, so stale disk entries become unreachable
// rather than wrongly served.
type Hasher struct {
	h   hash.Hash
	buf [8]byte
}

// NewHasher starts a key over the given namespace.
func NewHasher(namespace string) *Hasher {
	h := &Hasher{h: sha256.New()}
	_, _ = io.WriteString(h.h, namespace)
	_, _ = h.h.Write([]byte{'\n'})
	return h
}

// U64 hashes a fixed-width unsigned integer.
func (h *Hasher) U64(v uint64) {
	binary.LittleEndian.PutUint64(h.buf[:], v)
	_, _ = h.h.Write(h.buf[:])
}

// I64 hashes a fixed-width signed integer.
func (h *Hasher) I64(v int64) { h.U64(uint64(v)) }

// F64 hashes a float64 bit pattern.
func (h *Hasher) F64(v float64) { h.U64(math.Float64bits(v)) }

// Bool hashes a boolean as one full word.
func (h *Hasher) Bool(v bool) {
	if v {
		h.U64(1)
	} else {
		h.U64(0)
	}
}

// Duration hashes a time.Duration.
func (h *Hasher) Duration(d time.Duration) { h.I64(int64(d)) }

// Str hashes a length-prefixed string.
func (h *Hasher) Str(s string) {
	h.U64(uint64(len(s)))
	_, _ = io.WriteString(h.h, s)
}

// Bytes hashes a length-prefixed byte slice.
func (h *Hasher) Bytes(b []byte) {
	h.U64(uint64(len(b)))
	_, _ = h.h.Write(b)
}

// Key finalises the content address.
func (h *Hasher) Key() Key {
	var k Key
	copy(k[:], h.h.Sum(nil))
	return k
}
