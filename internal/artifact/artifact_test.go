package artifact

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"ltefp/internal/snapshot"
)

// blobCodec is the test codec: a length-prefixed byte payload whose
// in-memory size is its length.
type blobCodec struct {
	kind    Kind
	version uint32
}

func (c blobCodec) Kind() Kind      { return c.kind }
func (c blobCodec) Version() uint32 { return c.version }

func (c blobCodec) Encode(e *snapshot.Encoder, v any) error {
	b, ok := v.([]byte)
	if !ok {
		return fmt.Errorf("blobCodec got %T", v)
	}
	e.Blob(b)
	return nil
}

func (c blobCodec) Decode(d *snapshot.Decoder) (any, error) {
	b := d.Blob()
	if err := d.Err(); err != nil {
		return nil, err
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out, nil
}

func (c blobCodec) Size(v any) int64 {
	b, ok := v.([]byte)
	if !ok {
		return 0
	}
	return int64(len(b))
}

var testCodec = blobCodec{kind: "testblob", version: 1}

func keyOf(s string) Key {
	h := NewHasher("artifact-test")
	h.Str(s)
	return h.Key()
}

func blob(n int, fill byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestMemoryHitAndSingleflight(t *testing.T) {
	s := NewStore(1 << 20)
	var computes atomic.Int64
	compute := func() (any, error) {
		computes.Add(1)
		return blob(100, 7), nil
	}
	const goroutines = 16
	results := make([]any, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := s.GetOrCompute(testCodec, keyOf("a"), compute)
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("computed %d times, want singleflight = 1", n)
	}
	for i := 1; i < goroutines; i++ {
		if fmt.Sprintf("%p", results[i]) != fmt.Sprintf("%p", results[0]) {
			t.Fatal("concurrent callers observed different values")
		}
	}
	st := s.ReadStats().PerKind["testblob"]
	if st.Misses != 1 || st.MemHits != goroutines-1 {
		t.Fatalf("stats = %+v, want 1 miss, %d hits", st, goroutines-1)
	}
}

func TestErrorsNotMemoized(t *testing.T) {
	s := NewStore(1 << 20)
	calls := 0
	_, err := s.GetOrCompute(testCodec, keyOf("fail"), func() (any, error) {
		calls++
		return nil, fmt.Errorf("boom")
	})
	if err == nil {
		t.Fatal("want compute error surfaced")
	}
	v, err := s.GetOrCompute(testCodec, keyOf("fail"), func() (any, error) {
		calls++
		return blob(10, 1), nil
	})
	if err != nil || len(v.([]byte)) != 10 {
		t.Fatalf("retry after failure: v=%v err=%v", v, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2 (failure not memoized)", calls)
	}
}

func TestBytesBoundedEviction(t *testing.T) {
	s := NewStore(250)
	for i := 0; i < 3; i++ {
		_, err := s.GetOrCompute(testCodec, keyOf(fmt.Sprintf("k%d", i)), func() (any, error) {
			return blob(100, byte(i)), nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	st := s.ReadStats()
	if st.Entries != 2 || st.BytesUsed != 200 {
		t.Fatalf("after 3 inserts under a 250-byte budget: %d entries, %d bytes; want 2 entries, 200 bytes", st.Entries, st.BytesUsed)
	}
	ks := st.PerKind["testblob"]
	if ks.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", ks.Evictions)
	}
	// k0 was least recently used; k2 must still be resident.
	computed := false
	if _, err := s.GetOrCompute(testCodec, keyOf("k2"), func() (any, error) {
		computed = true
		return blob(100, 2), nil
	}); err != nil {
		t.Fatal(err)
	}
	if computed {
		t.Fatal("most recently used entry was evicted")
	}
}

func TestOversizedEntryStillServed(t *testing.T) {
	// An entry larger than the whole budget must be computed, returned, and
	// then evicted — never block or thrash.
	s := NewStore(50)
	v, err := s.GetOrCompute(testCodec, keyOf("big"), func() (any, error) {
		return blob(500, 1), nil
	})
	if err != nil || len(v.([]byte)) != 500 {
		t.Fatalf("oversized entry: v=%v err=%v", v, err)
	}
	st := s.ReadStats()
	if st.Entries != 0 || st.BytesUsed != 0 {
		t.Fatalf("oversized entry stayed resident: %+v", st)
	}
}

func TestDisabledStoreBypasses(t *testing.T) {
	s := NewStore(0)
	calls := 0
	for i := 0; i < 2; i++ {
		if _, err := s.GetOrCompute(testCodec, keyOf("x"), func() (any, error) {
			calls++
			return blob(10, 0), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 2 {
		t.Fatalf("disabled store memoized (calls=%d)", calls)
	}
	if st := s.ReadStats().PerKind["testblob"]; st.Bypasses != 2 {
		t.Fatalf("bypasses = %d, want 2", st.Bypasses)
	}
}

// diskStore returns a store whose memory tier is disabled, so every access
// exercises the disk tier.
func diskStore(t *testing.T, dir string) *Store {
	t.Helper()
	s := NewStore(0)
	if err := s.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDiskTierRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w := diskStore(t, dir)
	want := blob(1000, 9)
	if _, err := w.GetOrCompute(testCodec, keyOf("d"), func() (any, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}
	// A second store (a separate "process") must hit disk, not recompute.
	r := diskStore(t, dir)
	v, err := r.GetOrCompute(testCodec, keyOf("d"), func() (any, error) {
		t.Fatal("recomputed despite a valid disk entry")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got := v.([]byte)
	if len(got) != len(want) {
		t.Fatalf("disk round trip: %d bytes, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("disk round trip differs at byte %d", i)
		}
	}
	st := r.ReadStats().PerKind["testblob"]
	if st.DiskHits != 1 || st.Misses != 0 {
		t.Fatalf("stats = %+v, want pure disk hit", st)
	}
}

// entryFile locates the single .snap file under dir.
func entryFile(t *testing.T, dir string) string {
	t.Helper()
	var found string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() && filepath.Ext(path) == ".snap" {
			found = path
		}
		return nil
	})
	if err != nil || found == "" {
		t.Fatalf("no .snap entry under %s (err=%v)", dir, err)
	}
	return found
}

// corruptionCase damages a written entry and asserts the store discards
// and recomputes it.
func corruptionCase(t *testing.T, damage func(t *testing.T, path string)) {
	t.Helper()
	dir := t.TempDir()
	w := diskStore(t, dir)
	if _, err := w.GetOrCompute(testCodec, keyOf("c"), func() (any, error) { return blob(200, 5), nil }); err != nil {
		t.Fatal(err)
	}
	damage(t, entryFile(t, dir))

	r := diskStore(t, dir)
	recomputed := false
	v, err := r.GetOrCompute(testCodec, keyOf("c"), func() (any, error) {
		recomputed = true
		return blob(200, 5), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !recomputed {
		t.Fatal("damaged entry was served instead of recomputed")
	}
	if len(v.([]byte)) != 200 {
		t.Fatalf("recompute returned %d bytes", len(v.([]byte)))
	}
	st := r.ReadStats().PerKind["testblob"]
	if st.DiskDiscards != 1 {
		t.Fatalf("disk discards = %d, want 1", st.DiskDiscards)
	}
	// The discarded file must have been deleted, then rewritten valid by
	// the recompute; a third store must now hit disk cleanly.
	r2 := diskStore(t, dir)
	if _, err := r2.GetOrCompute(testCodec, keyOf("c"), func() (any, error) {
		t.Fatal("rewritten entry still unreadable")
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestDiskRejectsTruncation(t *testing.T) {
	corruptionCase(t, func(t *testing.T, path string) {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

func TestDiskRejectsBitFlip(t *testing.T) {
	corruptionCase(t, func(t *testing.T, path string) {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		b[len(b)/2] ^= 0x40
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

func TestDiskRejectsGarbage(t *testing.T) {
	corruptionCase(t, func(t *testing.T, path string) {
		if err := os.WriteFile(path, []byte("not a snapshot container"), 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

func TestDiskRejectsVersionSkew(t *testing.T) {
	dir := t.TempDir()
	old := diskStore(t, dir)
	v1 := blobCodec{kind: "testblob", version: 1}
	if _, err := old.GetOrCompute(v1, keyOf("v"), func() (any, error) { return blob(50, 1), nil }); err != nil {
		t.Fatal(err)
	}
	// A reader with a newer codec version must discard and recompute.
	v2 := blobCodec{kind: "testblob", version: 2}
	r := diskStore(t, dir)
	recomputed := false
	if _, err := r.GetOrCompute(v2, keyOf("v"), func() (any, error) {
		recomputed = true
		return blob(50, 2), nil
	}); err != nil {
		t.Fatal(err)
	}
	if !recomputed {
		t.Fatal("version-skewed entry was served")
	}
	if st := r.ReadStats().PerKind["testblob"]; st.DiskDiscards != 1 {
		t.Fatalf("disk discards = %d, want 1", st.DiskDiscards)
	}
}

func TestDiskRejectsWrongKey(t *testing.T) {
	// A valid container reached under the wrong name (copied or renamed)
	// must fail identity validation.
	dir := t.TempDir()
	w := diskStore(t, dir)
	if _, err := w.GetOrCompute(testCodec, keyOf("src"), func() (any, error) { return blob(60, 3), nil }); err != nil {
		t.Fatal(err)
	}
	src := entryFile(t, dir)
	dst := entryPath(dir, testCodec.Kind(), keyOf("dst"))
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, b, 0o644); err != nil {
		t.Fatal(err)
	}
	r := diskStore(t, dir)
	recomputed := false
	if _, err := r.GetOrCompute(testCodec, keyOf("dst"), func() (any, error) {
		recomputed = true
		return blob(60, 4), nil
	}); err != nil {
		t.Fatal(err)
	}
	if !recomputed {
		t.Fatal("mis-keyed entry was served")
	}
}

// TestConcurrentSharedDir models two processes sharing a cache directory:
// concurrent readers and writers over the same key set must never observe
// a torn entry — every Get returns either a valid decode or a fresh
// compute. Run under -race by scripts/check.sh.
func TestConcurrentSharedDir(t *testing.T) {
	dir := t.TempDir()
	const keys = 8
	const workers = 8
	const rounds = 20
	stores := [2]*Store{diskStore(t, dir), diskStore(t, dir)}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := stores[w%2]
			for r := 0; r < rounds; r++ {
				k := (w + r) % keys
				want := byte(k)
				v, err := s.GetOrCompute(testCodec, keyOf(fmt.Sprintf("shared%d", k)), func() (any, error) {
					return blob(512, want), nil
				})
				if err != nil {
					t.Errorf("worker %d round %d: %v", w, r, err)
					return
				}
				b := v.([]byte)
				if len(b) != 512 {
					t.Errorf("worker %d: torn read (%d bytes)", w, len(b))
					return
				}
				for i := range b {
					if b[i] != want {
						t.Errorf("worker %d: wrong content at byte %d", w, i)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for i, s := range stores {
		st := s.ReadStats().PerKind["testblob"]
		if st.DiskDiscards != 0 {
			t.Errorf("store %d discarded %d entries; concurrent writers should never produce an invalid file", i, st.DiskDiscards)
		}
	}
}

func TestResetDropsMemoryKeepsDisk(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(1 << 20)
	if err := s.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetOrCompute(testCodec, keyOf("r"), func() (any, error) { return blob(10, 1), nil }); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	if st := s.ReadStats(); st.Entries != 0 || st.BytesUsed != 0 {
		t.Fatalf("reset left %+v", st)
	}
	// The disk entry must survive the reset.
	if _, err := s.GetOrCompute(testCodec, keyOf("r"), func() (any, error) {
		t.Fatal("disk entry lost by Reset")
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
}
