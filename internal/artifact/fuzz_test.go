package artifact

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// fuzzEntryBytes renders a valid disk entry for testCodec under key k,
// exactly as diskWrite would lay it out.
func fuzzEntryBytes(t testing.TB, c Codec, k Key, payload []byte) []byte {
	t.Helper()
	dir := t.TempDir()
	s := NewStore(0)
	if err := s.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetOrCompute(c, k, func() (any, error) { return payload, nil }); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(entryPath(dir, c.Kind(), k))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// FuzzArtifactDecode feeds arbitrary bytes to the full disk-entry read
// path — container parsing, CRC checks, identity validation, codec decode
// — through a real store lookup. Whatever the file contains, the store
// must uphold its contract: no panic, no error surfaced to the caller
// (disk problems degrade to recompute), and a coherent entry on disk
// afterwards, so a second process reads the same value the first served.
func FuzzArtifactDecode(f *testing.F) {
	key := keyOf("fuzz-entry")
	valid := fuzzEntryBytes(f, testCodec, key, []byte("fuzz seed payload"))
	f.Add(valid)
	f.Add(valid[:len(valid)/2])                       // truncation
	f.Add([]byte{})                                   // empty file
	f.Add(bytes.Repeat([]byte{0xFF}, 64))             // garbage
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x20
	f.Add(flipped) // bit flip
	skewed := fuzzEntryBytes(f, blobCodec{kind: testCodec.kind, version: 2}, key, []byte("fuzz seed payload"))
	f.Add(skewed) // version skew
	wrongKey := fuzzEntryBytes(f, testCodec, keyOf("some-other-entry"), []byte("fuzz seed payload"))
	f.Add(wrongKey) // valid entry filed under the wrong key

	f.Fuzz(func(t *testing.T, raw []byte) {
		dir := t.TempDir()
		path := entryPath(dir, testCodec.Kind(), key)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		s := NewStore(0)
		if err := s.SetDir(dir); err != nil {
			t.Fatal(err)
		}
		computed := []byte("recomputed value")
		v, err := s.GetOrCompute(testCodec, key, func() (any, error) { return computed, nil })
		if err != nil {
			t.Fatalf("lookup surfaced a disk problem: %v", err)
		}
		got, ok := v.([]byte)
		if !ok {
			t.Fatalf("lookup returned %T", v)
		}
		st := s.ReadStats().Total()
		if st.DiskHits+st.Misses != 1 {
			t.Fatalf("stats %+v: want exactly one hit or miss", st)
		}
		if st.Misses == 1 && !bytes.Equal(got, computed) {
			t.Fatalf("miss served %q instead of the computed value", got)
		}
		// Whether the entry was served or replaced, a fresh process must now
		// read the same value back without recomputing.
		s2 := NewStore(0)
		if err := s2.SetDir(dir); err != nil {
			t.Fatal(err)
		}
		v2, err := s2.GetOrCompute(testCodec, key, func() (any, error) {
			t.Error("entry not durable: second store had to recompute")
			return computed, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(v2.([]byte), got) {
			t.Fatalf("second store read %q, first served %q", v2, got)
		}
	})
}
