package artifact

import (
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"

	"ltefp/internal/snapshot"
)

// On-disk layout: <dir>/<kind>/<hh>/<hex-key>.snap, where hh is the first
// key byte in hex — a fan-out shard keeping directories small under large
// corpora. Each file is one snapshot container with two sections:
//
//	artifact.meta — kind string, codec version u32, the 32-byte key
//	artifact.data — the codec's payload
//
// The meta section binds the file to its address: a file reached under the
// wrong name (copied, renamed, kind collision) fails identity validation
// and is discarded exactly like a corrupt one.
const (
	sectionMeta = "artifact.meta"
	sectionData = "artifact.data"
)

// ensureDir creates the disk-tier root.
func ensureDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("artifact: cache dir: %w", err)
	}
	return nil
}

// entryPath maps an address to its file.
func entryPath(dir string, kind Kind, key Key) string {
	hexKey := hex.EncodeToString(key[:])
	return filepath.Join(dir, string(kind), hexKey[:2], hexKey+".snap")
}

// decodeEntry validates and decodes one disk entry's sections against the
// expected identity. Any mismatch or decode failure returns an error; the
// caller discards the file.
func decodeEntry(sections map[string][]byte, c Codec, key Key) (any, error) {
	meta, ok := sections[sectionMeta]
	if !ok {
		return nil, fmt.Errorf("artifact: entry missing %s", sectionMeta)
	}
	data, ok := sections[sectionData]
	if !ok {
		return nil, fmt.Errorf("artifact: entry missing %s", sectionData)
	}
	md := snapshot.NewDecoder(meta)
	kind := md.Str()
	version := md.U32()
	var gotKey Key
	copy(gotKey[:], md.Blob())
	if err := md.Finish(); err != nil {
		return nil, err
	}
	if Kind(kind) != c.Kind() {
		return nil, fmt.Errorf("artifact: entry kind %q, want %q", kind, c.Kind())
	}
	if version != c.Version() {
		return nil, fmt.Errorf("artifact: entry version %d, codec reads %d", version, c.Version())
	}
	if gotKey != key {
		return nil, fmt.Errorf("artifact: entry key mismatch")
	}
	d := snapshot.NewDecoder(data)
	val, err := c.Decode(d)
	if err != nil {
		return nil, err
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return val, nil
}

// diskLoad probes the disk tier. A missing file is a plain miss; an
// unreadable, corrupt, truncated, version-skewed, or mis-keyed file is
// counted as a discard, deleted, and treated as a miss — the entry is
// recomputed, never trusted.
func (s *Store) diskLoad(dir string, c Codec, key Key, kc *kindCounters, m *metricSet) (any, bool) {
	path := entryPath(dir, c.Kind(), key)
	sections, err := snapshot.ReadFileAll(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false
		}
		// Structurally damaged or unreadable: discard so the rewrite below
		// replaces it with a valid entry.
		kc.discards.Add(1)
		if m != nil {
			m.diskDiscards.Add(1)
		}
		os.Remove(path)
		return nil, false
	}
	val, err := decodeEntry(sections, c, key)
	if err != nil {
		kc.discards.Add(1)
		if m != nil {
			m.diskDiscards.Add(1)
		}
		os.Remove(path)
		return nil, false
	}
	return val, true
}

// diskWrite persists a computed artifact. Failures degrade silently to
// "not cached" (counted), never to a pipeline error: the caller already
// holds the computed value.
func (s *Store) diskWrite(dir string, c Codec, key Key, val any, kc *kindCounters, m *metricSet) {
	path := entryPath(dir, c.Kind(), key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		kc.diskErrs.Add(1)
		return
	}
	me := snapshot.NewEncoder(64)
	me.Str(string(c.Kind()))
	me.U32(c.Version())
	me.Blob(key[:])

	de := snapshot.NewEncoder(int(c.Size(val)) + 64)
	if err := c.Encode(de, val); err != nil {
		kc.diskErrs.Add(1)
		return
	}
	n, err := snapshot.WriteFileAtomic(path, func(w *snapshot.Writer) error {
		if err := w.Section(sectionMeta, me.Bytes()); err != nil {
			return err
		}
		return w.Section(sectionData, de.Bytes())
	})
	if err != nil {
		kc.diskErrs.Add(1)
		return
	}
	kc.diskWrites.Add(1)
	if m != nil {
		m.diskWrites.Add(1)
		m.diskBytes.Add(n)
	}
}
