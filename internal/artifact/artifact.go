// Package artifact is the repository's content-addressed artifact store:
// a two-tier cache keyed by the sha256 of an artifact's full provenance
// (scenario, extraction parameters, training configuration — whatever
// determines the bytes of the result). It generalises the capture
// memoization cache to every expensive, bit-reproducible product of the
// pipeline: raw captures, per-capture window/feature matrices, assembled
// datasets, and trained forests.
//
// Tier 1 is an in-process, bytes-bounded LRU. Entries are admitted with an
// approximate size from their codec and evicted least-recently-used once
// the byte budget is exceeded; a single population-scale capture runs to
// ~90 MB, so an entry-count bound would silently admit multi-GB residency.
// Within a process the store is singleflight: the first request for a key
// computes, concurrent requests for the same key wait for that one
// computation, and failures are never memoized.
//
// Tier 2 is an optional on-disk store (SetDir), shared between processes.
// Entries are snapshot containers — CRC-guarded, versioned, written via
// atomic temp+fsync+rename — so a concurrent reader can never observe a
// torn entry, and a corrupted, truncated, or version-skewed file is
// detected, deleted, and recomputed, never trusted. The disk tier is a
// cache, not a database: every read validates the full container CRC and
// the embedded (kind, version, key) identity before the payload decodes.
//
// Correctness contract: a codec must decode exactly what it encoded — the
// warm-path value must be byte-identical, when re-serialised, to the
// computed value. The experiment layer's warm-vs-cold differential tests
// pin this end to end.
package artifact

import (
	"container/list"
	"sync"
	"sync/atomic"

	"ltefp/internal/snapshot"
)

// Kind names an artifact family. Kinds partition the key space and the
// on-disk layout; each kind has exactly one codec wired at its call sites.
type Kind string

// The artifact kinds the pipeline caches today.
const (
	// KindCapture is a full simulated capture (internal/capture.Capture).
	KindCapture Kind = "capture"
	// KindFeatures is a per-capture window/feature matrix ([][]float64).
	KindFeatures Kind = "features"
	// KindDataset is an assembled per-app training corpus.
	KindDataset Kind = "dataset"
	// KindForest is a trained classifier (fingerprint persist encoding).
	KindForest Kind = "forest"
)

// Key is the 32-byte content address of an artifact: the sha256 of its
// full provenance, built via Hasher.
type Key [32]byte

// Codec serialises one artifact kind through the snapshot primitive layer.
// Implementations must be deterministic (equal values → equal bytes) and
// must reject, via the Decoder's error discipline, any payload they did
// not write.
type Codec interface {
	// Kind names the artifact family this codec handles.
	Kind() Kind
	// Version is the codec's payload layout version. A disk entry written
	// by any other version is discarded and recomputed.
	Version() uint32
	// Encode appends the artifact to the encoder.
	Encode(e *snapshot.Encoder, v any) error
	// Decode reconstructs the artifact; it must consume the payload
	// exactly (callers invoke Finish).
	Decode(d *snapshot.Decoder) (any, error)
	// Size approximates the artifact's in-memory footprint in bytes, for
	// the memory tier's byte accounting.
	Size(v any) int64
}

// DefaultMemoryBudget bounds the default store's in-memory tier. Large
// enough to hold a full quick-scale experiment's working set, small enough
// that a handful of population captures force eviction.
const DefaultMemoryBudget int64 = 512 << 20

// KindStats is a snapshot of one kind's cache-effectiveness counters.
type KindStats struct {
	// MemHits counts requests served by the in-memory tier (including
	// requests that waited on an in-flight computation of the same key).
	MemHits int64
	// DiskHits counts requests served by decoding a validated disk entry.
	DiskHits int64
	// Misses counts requests that ran the compute function.
	Misses int64
	// Bypasses counts requests that skipped the store entirely (store
	// disabled, or the caller's bypass rule — e.g. metrics enabled).
	Bypasses int64
	// Evictions counts memory-tier entries dropped by the byte budget.
	Evictions int64
	// DiskWrites counts entries persisted to the disk tier.
	DiskWrites int64
	// DiskDiscards counts disk entries rejected (corrupt, truncated,
	// version-skewed, or mis-keyed) and deleted.
	DiskDiscards int64
	// DiskErrors counts disk reads/writes that failed operationally
	// (permissions, disk full); these degrade to compute, never to error.
	DiskErrors int64
}

// Stats is a full-store snapshot.
type Stats struct {
	// PerKind holds each kind's counters.
	PerKind map[Kind]KindStats
	// BytesUsed is the memory tier's current accounted footprint.
	BytesUsed int64
	// Entries is the memory tier's current entry count.
	Entries int
}

// Total sums the per-kind counters.
func (s Stats) Total() KindStats {
	var t KindStats
	for _, ks := range s.PerKind {
		t.MemHits += ks.MemHits
		t.DiskHits += ks.DiskHits
		t.Misses += ks.Misses
		t.Bypasses += ks.Bypasses
		t.Evictions += ks.Evictions
		t.DiskWrites += ks.DiskWrites
		t.DiskDiscards += ks.DiskDiscards
		t.DiskErrors += ks.DiskErrors
	}
	return t
}

// kindCounters is the live (atomic) form of KindStats.
type kindCounters struct {
	memHits, diskHits, misses, bypasses       atomic.Int64
	evictions, diskWrites, discards, diskErrs atomic.Int64
}

func (k *kindCounters) snapshot() KindStats {
	return KindStats{
		MemHits:      k.memHits.Load(),
		DiskHits:     k.diskHits.Load(),
		Misses:       k.misses.Load(),
		Bypasses:     k.bypasses.Load(),
		Evictions:    k.evictions.Load(),
		DiskWrites:   k.diskWrites.Load(),
		DiskDiscards: k.discards.Load(),
		DiskErrors:   k.diskErrs.Load(),
	}
}

// entryKey addresses one artifact in the memory tier.
type entryKey struct {
	kind Kind
	key  Key
}

// entry is one memory-tier slot. done closes when val/err/size are final;
// waiters block on it (the singleflight discipline). In-flight entries are
// pinned: eviction skips them and their size is not yet accounted.
type entry struct {
	ek   entryKey
	elem *list.Element
	done chan struct{}
	val  any
	size int64
	err  error
}

// Store is a two-tier content-addressed artifact cache. The zero value is
// not usable; use NewStore.
type Store struct {
	mu      sync.Mutex
	budget  int64 // memory-tier byte bound; <= 0 disables the memory tier
	bytes   int64 // accounted footprint of completed entries
	dir     string
	entries map[entryKey]*entry
	order   *list.List // front = most recently used

	statsMu sync.Mutex
	stats   map[Kind]*kindCounters

	metrics atomic.Pointer[metricSet]
}

// NewStore returns a store with the given memory-tier byte budget and no
// disk tier. budget <= 0 disables the memory tier.
func NewStore(budget int64) *Store {
	return &Store{
		budget:  budget,
		entries: make(map[entryKey]*entry),
		order:   list.New(),
		stats:   make(map[Kind]*kindCounters),
	}
}

// Default is the process-wide artifact store used by the pipeline
// (capture.RunCached, fingerprint collection, experiment datasets).
var Default = NewStore(DefaultMemoryBudget)

// counters returns the live counter block of a kind.
func (s *Store) counters(k Kind) *kindCounters {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	c, ok := s.stats[k]
	if !ok {
		c = &kindCounters{}
		s.stats[k] = c
	}
	return c
}

// SetMemoryBudget re-bounds the memory tier to budget bytes and returns
// the previous budget. budget <= 0 disables the memory tier and drops its
// contents; the disk tier, if any, is unaffected.
func (s *Store) SetMemoryBudget(budget int64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev := s.budget
	s.budget = budget
	if budget <= 0 {
		s.dropMemoryLocked()
	} else {
		s.evictLocked()
	}
	return prev
}

// MemoryBudget reports the current memory-tier byte bound.
func (s *Store) MemoryBudget() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.budget
}

// SetDir enables (non-empty) or disables (empty) the disk tier. The
// directory is created if missing. Concurrent processes may share a
// directory; the snapshot container discipline keeps them from ever
// observing each other's partial writes.
func (s *Store) SetDir(dir string) error {
	if dir != "" {
		if err := ensureDir(dir); err != nil {
			return err
		}
	}
	s.mu.Lock()
	s.dir = dir
	s.mu.Unlock()
	return nil
}

// Dir reports the disk-tier root, empty when disabled.
func (s *Store) Dir() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dir
}

// Reset drops every memory-tier entry and zeroes the statistics. Disk
// entries are kept: they are validated on every read, so staleness is not
// a correctness concern, only key design is.
func (s *Store) Reset() {
	s.mu.Lock()
	s.dropMemoryLocked()
	s.mu.Unlock()
	s.statsMu.Lock()
	s.stats = make(map[Kind]*kindCounters)
	s.statsMu.Unlock()
	s.gaugeBytes(0)
}

// dropMemoryLocked empties the memory tier. Callers hold mu.
func (s *Store) dropMemoryLocked() {
	s.entries = make(map[entryKey]*entry)
	s.order.Init()
	s.bytes = 0
	s.gaugeBytes(0)
}

// ReadStats snapshots the store's counters.
func (s *Store) ReadStats() Stats {
	s.mu.Lock()
	bytes, n := s.bytes, len(s.entries)
	s.mu.Unlock()
	out := Stats{PerKind: make(map[Kind]KindStats), BytesUsed: bytes, Entries: n}
	s.statsMu.Lock()
	for k, c := range s.stats {
		out.PerKind[k] = c.snapshot()
	}
	s.statsMu.Unlock()
	return out
}

// CountBypass records a request that skipped the store by caller policy
// (e.g. a metrics-enabled run that must measure real work).
func (s *Store) CountBypass(k Kind) {
	s.counters(k).bypasses.Add(1)
	if m := s.metrics.Load(); m != nil {
		m.bypasses.Add(1)
	}
}

// Enabled reports whether any tier can serve this store.
func (s *Store) Enabled() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.budget > 0 || s.dir != ""
}

// GetOrCompute returns the artifact at (codec.Kind, key), looking through
// the memory tier, then the disk tier, then running compute. The returned
// value is shared between callers and MUST be treated as immutable.
// Compute errors are returned to every waiter of this flight but are not
// memoized: a later call retries.
func (s *Store) GetOrCompute(c Codec, key Key, compute func() (any, error)) (any, error) {
	kc := s.counters(c.Kind())
	m := s.metrics.Load()

	s.mu.Lock()
	if s.budget <= 0 && s.dir == "" {
		s.mu.Unlock()
		kc.bypasses.Add(1)
		if m != nil {
			m.bypasses.Add(1)
		}
		return compute()
	}
	ek := entryKey{c.Kind(), key}
	if e, ok := s.entries[ek]; ok {
		s.order.MoveToFront(e.elem)
		s.mu.Unlock()
		<-e.done
		kc.memHits.Add(1)
		if m != nil {
			m.memHits.Add(1)
		}
		return e.val, e.err
	}
	e := &entry{ek: ek, done: make(chan struct{})}
	e.elem = s.order.PushFront(e)
	s.entries[ek] = e
	dir := s.dir
	s.mu.Unlock()

	val, fromDisk := any(nil), false
	var err error
	if dir != "" {
		val, fromDisk = s.diskLoad(dir, c, key, kc, m)
	}
	if fromDisk {
		kc.diskHits.Add(1)
		if m != nil {
			m.diskHits.Add(1)
		}
	} else {
		val, err = compute()
		kc.misses.Add(1)
		if m != nil {
			m.misses.Add(1)
		}
		if err == nil && dir != "" {
			s.diskWrite(dir, c, key, val, kc, m)
		}
	}

	e.val, e.err = val, err
	if err == nil {
		if sz := c.Size(val); sz > 0 {
			e.size = sz
		} else {
			e.size = 1
		}
	}
	close(e.done)

	s.mu.Lock()
	cur, ok := s.entries[ek]
	if err != nil {
		// Never memoize failures: drop the entry so a later call retries.
		if ok && cur == e {
			delete(s.entries, ek)
			s.order.Remove(e.elem)
		}
	} else if ok && cur == e {
		s.bytes += e.size
		s.evictLocked()
		s.gaugeBytes(s.bytes)
	}
	s.mu.Unlock()
	return val, err
}

// evictLocked drops completed least-recently-used entries until the byte
// budget holds. In-flight entries are skipped: they are pinned by their
// waiters and carry no accounted size yet. Callers hold mu.
func (s *Store) evictLocked() {
	if s.budget <= 0 {
		return
	}
	m := s.metrics.Load()
	for el := s.order.Back(); el != nil && s.bytes > s.budget; {
		prev := el.Prev()
		e := el.Value.(*entry)
		select {
		case <-e.done:
			delete(s.entries, e.ek)
			s.order.Remove(el)
			s.bytes -= e.size
			s.counters(e.ek.kind).evictions.Add(1)
			if m != nil {
				m.evictions.Add(1)
			}
		default:
			// Still computing; pinned.
		}
		el = prev
	}
}
