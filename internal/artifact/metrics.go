package artifact

import "ltefp/internal/obs"

// metricSet holds the store's obs instruments. Counters are nil-safe, but
// the whole set is swapped atomically so SetMetrics is race-free against
// concurrent GetOrCompute calls.
type metricSet struct {
	memHits      *obs.Counter
	diskHits     *obs.Counter
	misses       *obs.Counter
	bypasses     *obs.Counter
	evictions    *obs.Counter
	diskWrites   *obs.Counter
	diskDiscards *obs.Counter
	diskBytes    *obs.Counter
	memBytes     *obs.Gauge
}

// SetMetrics (re)wires the store's observability instruments into the
// given scope:
//
//	<scope>.mem_hits, disk_hits, misses, bypasses, evictions
//	<scope>.disk_writes, disk_discards, disk_bytes_written
//	<scope>.mem_bytes (gauge)
//
// A zero scope detaches instrumentation. Counters aggregate across kinds;
// per-kind detail lives in ReadStats.
func (s *Store) SetMetrics(sc obs.Scope) {
	if !sc.Enabled() {
		s.metrics.Store(nil)
		return
	}
	s.metrics.Store(&metricSet{
		memHits:      sc.Counter("mem_hits"),
		diskHits:     sc.Counter("disk_hits"),
		misses:       sc.Counter("misses"),
		bypasses:     sc.Counter("bypasses"),
		evictions:    sc.Counter("evictions"),
		diskWrites:   sc.Counter("disk_writes"),
		diskDiscards: sc.Counter("disk_discards"),
		diskBytes:    sc.Counter("disk_bytes_written"),
		memBytes:     sc.Gauge("mem_bytes"),
	})
}

// gaugeBytes publishes the memory tier's accounted footprint.
func (s *Store) gaugeBytes(n int64) {
	if m := s.metrics.Load(); m != nil {
		m.memBytes.Set(n)
	}
}
