package experiments

import (
	"fmt"
	"strings"

	"ltefp/internal/obs"
)

// MetricsReport condenses a pipeline registry snapshot into the short
// per-run health block lteexperiments prints after each experiment. It is
// deliberately separate from every result's String() so the golden
// renderings stay byte-stable whether or not metrics are enabled.
//
// Cells are aggregated: pipeline.cell1.sniffer.candidates and
// pipeline.cell2.sniffer.candidates both land in the "candidates" total.
func MetricsReport(snap obs.Snapshot) string {
	sum := func(suffix string) int64 {
		var total int64
		for _, c := range snap.Counters {
			if strings.HasSuffix(c.Name, suffix) {
				total += c.Value
			}
		}
		return total
	}
	pct := func(part, whole int64) float64 {
		if whole == 0 {
			return 0
		}
		return 100 * float64(part) / float64(whole)
	}
	histLine := func(name string) string {
		h, ok := snap.Histogram(name)
		if !ok || h.Count == 0 {
			return "n/a"
		}
		return fmt.Sprintf("p50=%.2fms p95=%.2fms", h.Quantile(0.50), h.Quantile(0.95))
	}

	var b strings.Builder
	candidates := sum(".sniffer.candidates")
	records := sum(".sniffer.records")
	lost := sum(".sniffer.lost")
	leaked := sum(".sniffer.corrupt_leaked")
	rejects := sum(".sniffer.plausibility_rejects")
	fmt.Fprintf(&b, "sniffer:  %d candidates, %d records, %d lost (%.2f%%), %d corrupt leaked, %d plausibility rejects\n",
		candidates, records, lost, pct(lost, candidates), leaked, rejects)
	fmt.Fprintf(&b, "enb:      %d DL grants, %d UL grants, %d padding events, %d PDCCH blocked\n",
		sum(".enb.grants_dl"), sum(".enb.grants_ul"), sum(".enb.padding_events"), sum(".enb.pdcch_blocked"))
	fmt.Fprintf(&b, "features: %d rows extracted, extract %s\n",
		snap.Counter("pipeline.features.rows"), histLine("pipeline.features.extract_ms"))
	fmt.Fprintf(&b, "forest:   %d rows trained (train %s), %d rows predicted (batch %s)\n",
		snap.Counter("pipeline.forest.rows_trained"), histLine("pipeline.forest.train_ms"),
		snap.Counter("pipeline.forest.rows_predicted"), histLine("pipeline.forest.batch_ms"))
	fmt.Fprintf(&b, "workers:  %d tasks, task %s\n",
		snap.Counter("pipeline.workers.tasks"), histLine("pipeline.workers.task_ms"))
	fmt.Fprintf(&b, "cache:    %d mem hits, %d disk hits, %d misses, %d bypasses, %d evictions, %d disk discards\n",
		snap.Counter("pipeline.cache.mem_hits"), snap.Counter("pipeline.cache.disk_hits"),
		snap.Counter("pipeline.cache.misses"), snap.Counter("pipeline.cache.bypasses"),
		snap.Counter("pipeline.cache.evictions"), snap.Counter("pipeline.cache.disk_discards"))
	pairs := snap.Counter("pipeline.corr.pairs_total")
	pruned := snap.Counter("pipeline.corr.pruned_lb_kim") +
		snap.Counter("pipeline.corr.pruned_lb_keogh") +
		snap.Counter("pipeline.corr.abandoned")
	fmt.Fprintf(&b, "corr:     %d pairs swept, %d pruned (%.1f%%: kim %d, keogh %d, abandoned %d), %d full DTW, %d kept, shard %s\n",
		pairs, pruned, pct(pruned, pairs),
		snap.Counter("pipeline.corr.pruned_lb_kim"),
		snap.Counter("pipeline.corr.pruned_lb_keogh"),
		snap.Counter("pipeline.corr.abandoned"),
		snap.Counter("pipeline.corr.full_dtw"),
		snap.Counter("pipeline.corr.kept"),
		histLine("pipeline.corr.stage_ms"))
	return b.String()
}
