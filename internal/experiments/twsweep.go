package experiments

import (
	"fmt"
	"strings"
	"time"

	"ltefp/internal/appmodel"
	"ltefp/internal/attack/correlation"
	"ltefp/internal/lte/operator"
	"ltefp/internal/ml/dtw"
	"ltefp/internal/sniffer"
	"ltefp/internal/trace"
)

// TwSweepPoint is one similarity-window candidate's outcome.
type TwSweepPoint struct {
	Tw time.Duration
	// Communicating and Independent are the mean DTW similarities of the
	// two pair populations at this T_w.
	Communicating float64
	Independent   float64
}

// Separation is the attacker's working margin at this T_w.
func (p TwSweepPoint) Separation() float64 { return p.Communicating - p.Independent }

// TwSweepResult reproduces the paper's similarity-window study (§VII-C:
// "when the time window shrinks, the similarity score increases until the
// time window reaches a certain threshold. Hence, we can determine the
// optimal value for the time window"). The same captured pairs are
// re-scored at several T_w values.
type TwSweepResult struct {
	App    string
	Points []TwSweepPoint
}

// BestTw returns the window with the largest communicating/independent
// separation — the value the attacker would adopt as the new default.
func (r *TwSweepResult) BestTw() time.Duration {
	best := r.Points[0]
	for _, p := range r.Points {
		if p.Separation() > best.Separation() {
			best = p
		}
	}
	return best.Tw
}

// pairTraces is one captured pair with its span.
type pairTraces struct {
	a, b       trace.Trace
	start, end time.Duration
}

// TwSweep captures a population of WhatsApp Call pairs on T-Mobile once
// and scores them at each candidate T_w.
func TwSweep(scale Scale, seed uint64) (*TwSweepResult, error) {
	app, err := appmodel.ByName("WhatsApp Call")
	if err != nil {
		return nil, err
	}
	prof := operator.TMobile()
	n := scale.PairsPerSetting
	collect := func(communicating bool, offset uint64) ([]pairTraces, error) {
		out := make([]pairTraces, n)
		err := forEach(n, func(i int) error {
			a, b, start, end, err := correlation.CollectPairTraces(correlation.PairSpec{
				Profile:          prof,
				App:              app,
				Communicating:    communicating,
				Duration:         scale.PairDur,
				Seed:             seed + offset + uint64(i)*7561,
				Sniffer:          sniffer.Config{CorruptProb: snifferCorruption},
				ApplyProfileLoss: true,
			})
			if err != nil {
				return err
			}
			out[i] = pairTraces{a: a, b: b, start: start, end: end}
			return nil
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	talking, err := collect(true, 1046527)
	if err != nil {
		return nil, fmt.Errorf("experiments: Tw sweep: %w", err)
	}
	apart, err := collect(false, 16769023)
	if err != nil {
		return nil, fmt.Errorf("experiments: Tw sweep: %w", err)
	}

	windows := []time.Duration{
		250 * time.Millisecond,
		500 * time.Millisecond,
		time.Second,
		2 * time.Second,
		4 * time.Second,
	}
	points := make([]TwSweepPoint, len(windows))
	err = forEach(len(windows), func(wi int) error {
		tw := windows[wi]
		// One aligner per cell: the scratch buffers are reused across the
		// whole population at this T_w.
		al := dtw.NewAligner()
		mean := func(pop []pairTraces) float64 {
			var sum float64
			for _, p := range pop {
				e := correlation.PairEvidenceWith(al, p.a, p.b, tw, p.start, p.end)
				sum += e.Similarity
			}
			return sum / float64(len(pop))
		}
		points[wi] = TwSweepPoint{
			Tw:            tw,
			Communicating: mean(talking),
			Independent:   mean(apart),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &TwSweepResult{App: app.Name, Points: points}, nil
}

// String renders the sweep.
func (r *TwSweepResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Similarity-window T_w selection (§VII-C, %s on T-Mobile)\n", r.App)
	fmt.Fprintf(&b, "%-8s %14s %13s %11s\n", "T_w", "communicating", "independent", "separation")
	best := r.BestTw()
	for _, p := range r.Points {
		marker := ""
		if p.Tw == best {
			marker = "  <- best"
		}
		fmt.Fprintf(&b, "%-8v %14.3f %13.3f %11.3f%s\n",
			p.Tw, p.Communicating, p.Independent, p.Separation(), marker)
	}
	return b.String()
}
