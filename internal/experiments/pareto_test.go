package experiments

import (
	"strings"
	"testing"
)

// TestParetoTiny runs the defense arms race at tiny scale and pins its
// structural guarantees: the baseline anchors the overhead axis at zero,
// the static and adaptive attackers coincide only where they share a
// classifier, shaping defenses actually cost bytes, and the frontier
// marking is non-empty and deterministic.
func TestParetoTiny(t *testing.T) {
	res, err := Pareto(tinyScale(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 5 {
		t.Fatalf("pareto swept %d compositions, want >= 5", len(res.Rows))
	}
	base := res.Rows[0]
	if base.Name != "none" {
		t.Fatalf("row 0 is %q, want the undefended baseline", base.Name)
	}
	if base.Overhead != 0 {
		t.Errorf("baseline overhead %v, want 0", base.Overhead)
	}
	// On the baseline the static attacker IS the adaptive attacker (same
	// classifier, same held-out windows); anywhere else they may differ.
	if base.StaticF1 != base.AdaptiveF1 {
		t.Errorf("baseline static F1 %v != adaptive F1 %v", base.StaticF1, base.AdaptiveF1)
	}
	costly, frontier := 0, 0
	for _, row := range res.Rows {
		if row.Overhead > 0 {
			costly++
		}
		if row.Frontier {
			frontier++
		}
		if row.Windows <= 0 {
			t.Errorf("%s evaluated zero windows", row.Name)
		}
	}
	if costly == 0 {
		t.Error("no composition reported positive byte overhead")
	}
	if frontier == 0 {
		t.Error("no composition on the Pareto frontier")
	}
	if s := res.String(); !strings.Contains(s, "static-F1") || !strings.Contains(s, "adaptive-F1") {
		t.Errorf("rendering lost an attacker column:\n%s", s)
	}

	again, err := Pareto(tinyScale(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.String() != again.String() {
		t.Errorf("pareto not deterministic:\n%s\nvs\n%s", res.String(), again.String())
	}
}

// TestMarkFrontier pins the dominance rule on synthetic rows.
func TestMarkFrontier(t *testing.T) {
	rows := []ParetoRow{
		{Name: "baseline", AdaptiveF1: 0.90, Overhead: 0},     // frontier: cheapest
		{Name: "good", AdaptiveF1: 0.60, Overhead: 0.10},      // frontier
		{Name: "dominated", AdaptiveF1: 0.70, Overhead: 0.20}, /* beaten by "good" on both axes */
		{Name: "strong", AdaptiveF1: 0.40, Overhead: 0.50},    // frontier: most protective
	}
	markFrontier(rows)
	want := map[string]bool{"baseline": true, "good": true, "dominated": false, "strong": true}
	for _, r := range rows {
		if r.Frontier != want[r.Name] {
			t.Errorf("%s frontier=%v, want %v", r.Name, r.Frontier, want[r.Name])
		}
	}
}
