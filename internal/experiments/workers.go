package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// experimentWorkers bounds the goroutines used for the embarrassingly-
// parallel outer loops of the experiment runners (per-app campaigns,
// per-variant cells, per-day drift points). Every cell derives its own
// seed, so the schedule never influences results; tests pin this to 1 to
// prove serial/parallel equivalence.
var experimentWorkers = runtime.GOMAXPROCS(0)

// forEach runs fn(0..n-1) over a bounded worker pool. fn must write its
// results to index-addressed storage; shared maps and append targets must
// be filled serially afterwards. When several indices fail, the lowest
// one's error is returned — the same error a serial loop would have hit
// first.
func forEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	// Worker-pool observability: occupancy gauge, completed-task counter,
	// and per-task wall-time histogram (the per-cell wall time of whichever
	// runner is executing). All no-ops when no registry is set.
	pool := pipelineScope().Scope("workers")
	occupancy := pool.Gauge("active")
	tasks := pool.Counter("tasks")
	taskMS := pool.Histogram("task_ms", nil)
	run := func(i int) error {
		occupancy.Add(1)
		t := taskMS.Start()
		err := fn(i)
		t.Stop()
		occupancy.Add(-1)
		tasks.Inc()
		return err
	}
	workers := experimentWorkers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := run(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = run(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
