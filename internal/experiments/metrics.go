package experiments

import (
	"sync/atomic"

	"ltefp/internal/artifact"
	"ltefp/internal/attack/correlation"
	"ltefp/internal/features"
	"ltefp/internal/ml/forest"
	"ltefp/internal/obs"
)

// activeRegistry is the registry the experiment runners report into. It is
// process-global because the runners are: one lteexperiments invocation
// runs one experiment at a time and resets the registry between runs.
var activeRegistry atomic.Pointer[obs.Registry]

// SetMetrics points the whole experiment pipeline at a registry: capture
// metrics land under pipeline.cellN.{sniffer,enb}.*, feature extraction
// under pipeline.features.*, forest training and inference under
// pipeline.forest.*, the correlation sweep funnel under pipeline.corr.*,
// and the worker pool under pipeline.workers.*. Passing nil disables all
// of it (the default).
func SetMetrics(r *obs.Registry) {
	activeRegistry.Store(r)
	sc := r.Scope("pipeline")
	features.SetMetrics(sc.Scope("features"))
	forest.SetMetrics(sc.Scope("forest"))
	correlation.SetMetrics(sc.Scope("corr"))
	// The artifact store reports under pipeline.cache.*. Note the
	// interplay: metrics-enabled runs bypass every cache tier (the
	// instrumentation must measure real work), so during such runs the
	// cache line shows bypasses, not hits.
	artifact.Default.SetMetrics(sc.Scope("cache"))
}

// pipelineScope returns the active pipeline scope (disabled when no
// registry is set).
func pipelineScope() obs.Scope {
	return activeRegistry.Load().Scope("pipeline")
}
