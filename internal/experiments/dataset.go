package experiments

import (
	"fmt"

	"ltefp/internal/appmodel"
	"ltefp/internal/artifact"
	"ltefp/internal/attack/fingerprint"
	"ltefp/internal/features"
	"ltefp/internal/lte/operator"
	"ltefp/internal/sniffer"
	"ltefp/internal/snapshot"
)

// A dataset artifact is one assembled nine-app campaign — every app's
// windows, split by session — for one network setting. It sits above the
// capture and feature tiers: a fully warm run decodes the dataset in one
// read, a partially warm run reassembles it from cached window matrices
// (which in turn reassemble from cached captures), and a cold run
// simulates. Keys are derived from the full collection recipe, so any
// change to the setting — profile knob, scale sizing, sniffer coverage,
// seed, feature schema — addresses a different artifact.
//
// Like every artifact in the store, datasets are only as fresh as the
// code that computed them: a change to the simulator or feature pipeline
// that alters outputs for identical inputs must bump the relevant codec
// version (or features.SchemaVersion) so persisted entries are discarded
// rather than replayed.

// datasetCodec persists a []appData.
type datasetCodec struct{}

func (datasetCodec) Kind() artifact.Kind { return artifact.KindDataset }

// Version couples the payload layout to the feature schema.
func (datasetCodec) Version() uint32 { return 1<<16 | features.SchemaVersion }

func (datasetCodec) Encode(e *snapshot.Encoder, v any) error {
	data, ok := v.([]appData)
	if !ok {
		return fmt.Errorf("experiments: dataset codec got %T", v)
	}
	e.Uvarint(uint64(len(data)))
	for _, d := range data {
		e.Str(d.app.Name)
		e.Uvarint(uint64(len(d.sessions)))
		for _, m := range d.sessions {
			features.EncodeMatrix(e, m)
		}
	}
	return nil
}

func (datasetCodec) Decode(d *snapshot.Decoder) (any, error) {
	n := d.Count(2)
	if d.Err() != nil {
		return nil, d.Err()
	}
	data := make([]appData, 0, n)
	for i := 0; i < n; i++ {
		name := d.Str()
		if d.Err() != nil {
			return nil, d.Err()
		}
		app, err := appmodel.ByName(name)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", snapshot.ErrCorrupt, err)
		}
		k := d.Count(2)
		if d.Err() != nil {
			return nil, d.Err()
		}
		sessions := make([][][]float64, 0, k)
		for j := 0; j < k; j++ {
			m, err := features.DecodeMatrix(d)
			if err != nil {
				return nil, err
			}
			sessions = append(sessions, m)
		}
		data = append(data, appData{app: app, sessions: sessions})
	}
	return data, d.Err()
}

func (datasetCodec) Size(v any) int64 {
	data, ok := v.([]appData)
	if !ok {
		return 0
	}
	sz := int64(256)
	for _, d := range data {
		sz += 128
		for _, m := range d.sessions {
			sz += 24 + features.MatrixSize(m)
		}
	}
	return sz
}

// datasetKey addresses one assembled campaign by its collection recipe.
// The capture content behind each session is a pure function of these
// inputs (collectOne derives every scenario from the spec), so hashing
// the recipe is equivalent to hashing the per-capture content keys.
func datasetKey(profile operator.Profile, scale Scale, day int, seed uint64, cfg sniffer.Config, filter fingerprint.DirectionFilter) artifact.Key {
	h := artifact.NewHasher("ltefp-dataset-v1")
	// Profiles and sniffer configs are flat structs of scalars; %#v
	// serialises every field, so new defense or coverage knobs change the
	// key automatically (the same convention capture.ScenarioKey uses).
	h.Str(fmt.Sprintf("%#v", profile))
	h.Str(fmt.Sprintf("%#v", cfg))
	h.I64(int64(day))
	h.U64(seed)
	h.U64(uint64(filter))
	h.Duration(fingerprint.DefaultWindow)
	h.U64(uint64(features.SchemaVersion))
	h.I64(int64(scale.Population))
	apps := appmodel.Apps()
	h.U64(uint64(len(apps)))
	for _, app := range apps {
		sessions, dur := scale.sessionsFor(app)
		h.Str(app.Name)
		h.I64(int64(sessions))
		h.Duration(dur)
	}
	return h.Key()
}

// collectDataset records (or replays) the full nine-app campaign for one
// setting, windowed under the given direction filter, through the
// artifact store. Metrics-enabled runs bypass every tier and fall back to
// the uncached collection path so the instrumentation measures real work.
func collectDataset(label string, profile operator.Profile, scale Scale, day int, seed uint64, cfg sniffer.Config, filter fingerprint.DirectionFilter) ([]appData, error) {
	apps := appmodel.Apps()
	specFor := func(i int) fingerprint.CollectSpec {
		sessions, dur := scale.sessionsFor(apps[i])
		return fingerprint.CollectSpec{
			Profile:          profile,
			App:              apps[i],
			Sessions:         sessions,
			SessionDur:       dur,
			Day:              day,
			Seed:             seed + uint64(i+1)*7919,
			Sniffer:          cfg,
			ApplyProfileLoss: true,
			Population:       scale.Population,
			Metrics:          pipelineScope(),
		}
	}
	// Assemble the dataset from the per-session window artifacts, fanned
	// out over the shared experiment worker pool as one flat (app, session)
	// task list. Each CollectWindows resolves through its own cache tier
	// (and the capture tier below it), so assembly cost is whatever is not
	// already resident.
	compute := func() ([]appData, error) {
		out := make([]appData, len(apps))
		type task struct{ app, session int }
		var tasks []task
		for i, app := range apps {
			sessions, _ := scale.sessionsFor(app)
			out[i] = appData{app: app, sessions: make([][][]float64, sessions)}
			for j := 0; j < sessions; j++ {
				tasks = append(tasks, task{app: i, session: j})
			}
		}
		err := forEach(len(tasks), func(k int) error {
			t := tasks[k]
			m, err := fingerprint.CollectWindows(specFor(t.app), t.session, filter)
			if err != nil {
				return fmt.Errorf("experiments: %s: %s session %d: %w", label, apps[t.app].Name, t.session, err)
			}
			out[t.app].sessions[t.session] = m
			return nil
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	}
	if pipelineScope().Enabled() {
		artifact.Default.CountBypass(artifact.KindDataset)
		return compute()
	}
	v, err := artifact.Default.GetOrCompute(datasetCodec{}, datasetKey(profile, scale, day, seed, cfg, filter), func() (any, error) {
		return compute()
	})
	if err != nil {
		return nil, err
	}
	return v.([]appData), nil
}
