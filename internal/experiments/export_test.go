package experiments

// SetWorkers pins the experiment worker pool size and returns a restore
// function, letting tests compare serial and parallel execution.
func SetWorkers(n int) (restore func()) {
	old := experimentWorkers
	experimentWorkers = n
	return func() { experimentWorkers = old }
}
