package experiments

import (
	"fmt"
	"strings"
	"time"

	"ltefp/internal/appmodel"
	"ltefp/internal/attack/fingerprint"
	"ltefp/internal/capture"
	"ltefp/internal/lte/operator"
	"ltefp/internal/sniffer"
)

// ParetoRow is one defense composition's position in the privacy/overhead
// trade space.
type ParetoRow struct {
	// Name labels the composition (its public ParseDefense spec).
	Name string
	// StaticF1 is the weighted window F1 of the static attacker — a
	// classifier trained once on the undefended network and pointed,
	// unchanged, at this composition's defended traffic.
	StaticF1 float64
	// AdaptiveF1 is the weighted window F1 of the adaptive attacker — a
	// classifier retrained from scratch on traffic captured under this
	// same composition. This is the number a defense must be judged by:
	// a real adversary retrains.
	AdaptiveF1 float64
	// Windows is the defended evaluation-set size in windows.
	Windows int
	// Overhead is the composition's deployment cost: the extra bytes the
	// cell put on the air for an identical traffic program, relative to
	// the undefended baseline (0 for the baseline itself). It is measured
	// cell-side on a fixed probe capture, so defenses that merely break
	// the attacker's attribution (fewer recovered windows) do not
	// masquerade as savings.
	Overhead float64
	// Frontier marks compositions on the Pareto frontier: no other
	// composition achieves both a lower adaptive F1 and a lower overhead.
	Frontier bool
}

// ParetoResult sweeps defense compositions and places each on the
// privacy-vs-overhead plane, against both a static and an adaptive
// attacker.
type ParetoResult struct {
	Rows []ParetoRow
}

// Pareto runs the defense arms race on the T-Mobile profile: each
// composition is priced by its measured air-interface overhead and scored
// against the static attacker (trained undefended) and the adaptive attacker
// (retrained on the defended network). The gap between the two columns is
// the protection that evaporates as soon as the adversary adapts; the
// frontier column shows which compositions survive as rational choices.
func Pareto(scale Scale, seed uint64) (*ParetoResult, error) {
	base := operator.TMobile()
	configs := []struct {
		name   string
		mutate func(p *operator.Profile)
	}{
		// Names follow the public ParseDefense token syntax so a row can be
		// replayed verbatim via `lteattack presence -defenses` or
		// ltefp.ParseDefense. ConcealIdentities is deliberately absent: it
		// removes the attacker's labels outright (no victim windows to
		// train or score), so it lives on no point of this plane — the
		// concealment experiment and the presence attack measure it.
		{"none", func(p *operator.Profile) {}},
		{"refresh=2s", func(p *operator.Profile) { p.RNTIRefreshEvery = 2 * time.Second }},
		{"morph", func(p *operator.Profile) { p.PadBuckets = true }},
		{"quant=256", func(p *operator.Profile) { p.GrantQuantum = 256 }},
		{"dummy=0.05:1200", func(p *operator.Profile) {
			p.DummyBurstProb = 0.05
			p.DummyBurstMaxBytes = 1200
		}},
		{"cr=20ms:400", func(p *operator.Profile) {
			p.ConstantRatePeriodTTI = 20
			p.ConstantRateBytes = 400
		}},
		{"smartpaging", func(p *operator.Profile) { p.PagingCycleTTI = 128 }},
		{"all-shaping", func(p *operator.Profile) {
			p.RNTIRefreshEvery = 2 * time.Second
			p.PadBuckets = true
			p.GrantQuantum = 256
			p.DummyBurstProb = 0.05
			p.DummyBurstMaxBytes = 1200
			p.ConstantRatePeriodTTI = 20
			p.ConstantRateBytes = 400
			p.PagingCycleTTI = 128
		}},
	}

	type cell struct {
		adaptive *fingerprint.Classifier
		test     map[string][][]float64
		f1       float64
		windows  int
		airBytes int64
	}
	cells := make([]cell, len(configs))
	err := forEach(len(configs), func(i int) error {
		prof := base
		configs[i].mutate(&prof)
		// The same seed across compositions keeps the victims' traffic
		// programs identical, so rows differ only by the defense.
		data, err := collectSetting(prof, scale, 1, seed+15485863,
			sniffer.Config{CorruptProb: snifferCorruption, DownlinkOnly: true})
		if err != nil {
			return fmt.Errorf("experiments: pareto (%s): %w", configs[i].name, err)
		}
		clf, test, err := buildClassifier(data, seed)
		if err != nil {
			return fmt.Errorf("experiments: pareto (%s): %w", configs[i].name, err)
		}
		conf, err := clf.Evaluate(test)
		if err != nil {
			return fmt.Errorf("experiments: pareto (%s): %w", configs[i].name, err)
		}
		windows := 0
		for _, d := range data {
			for _, sess := range d.sessions {
				windows += len(sess)
			}
		}
		air, err := measureAirBytes(prof, scale, seed)
		if err != nil {
			return fmt.Errorf("experiments: pareto (%s): %w", configs[i].name, err)
		}
		cells[i] = cell{
			adaptive: clf, test: test,
			f1: conf.WeightedF1(), windows: windows, airBytes: air,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// The static attacker is composition 0's classifier, frozen; it is
	// evaluated on every composition's defended held-out windows.
	static := cells[0].adaptive
	res := &ParetoResult{}
	baselineAir := cells[0].airBytes
	for i, cfg := range configs {
		conf, err := static.Evaluate(cells[i].test)
		if err != nil {
			return nil, fmt.Errorf("experiments: pareto (%s): %w", cfg.name, err)
		}
		overhead := 0.0
		if baselineAir > 0 {
			overhead = float64(cells[i].airBytes)/float64(baselineAir) - 1
		}
		res.Rows = append(res.Rows, ParetoRow{
			Name:       cfg.name,
			StaticF1:   conf.WeightedF1(),
			AdaptiveF1: cells[i].f1,
			Windows:    cells[i].windows,
			Overhead:   overhead,
		})
	}
	markFrontier(res.Rows)
	return res, nil
}

// measureAirBytes prices a composition cell-side: a fixed probe capture
// (one streaming victim over scale.StreamDur, plus the scale's background
// population) observed by a lossless sniffer, whose total transport-block
// bytes are the air-interface cost of running the identical traffic
// program under the composition.
func measureAirBytes(prof operator.Profile, scale Scale, seed uint64) (int64, error) {
	streaming := appmodel.ByCategory(appmodel.Streaming)
	res, err := capture.RunCached(capture.Scenario{
		Seed:  seed + 32452843,
		Cells: []capture.Cell{{ID: 1, Profile: prof}},
		Sessions: []capture.Session{{
			UE:       "victim",
			CellID:   1,
			App:      streaming[0],
			Start:    500 * time.Millisecond,
			Duration: scale.StreamDur,
			Day:      1,
		}},
		Population: scale.Population,
		Metrics:    pipelineScope(),
	})
	if err != nil {
		return 0, err
	}
	return int64(res.Records.TotalBytes()), nil
}

// markFrontier flags the rows no other row dominates: row j dominates row
// i when j is at least as cheap and at least as protective (lower adaptive
// F1), and strictly better on one axis.
func markFrontier(rows []ParetoRow) {
	for i := range rows {
		dominated := false
		for j := range rows {
			if i == j {
				continue
			}
			betterOrEqual := rows[j].Overhead <= rows[i].Overhead && rows[j].AdaptiveF1 <= rows[i].AdaptiveF1
			strictlyBetter := rows[j].Overhead < rows[i].Overhead || rows[j].AdaptiveF1 < rows[i].AdaptiveF1
			if betterOrEqual && strictlyBetter {
				dominated = true
				break
			}
		}
		rows[i].Frontier = !dominated
	}
}

// String renders the trade-space table.
func (r *ParetoResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Defense Pareto frontier (T-Mobile; static attacker trained undefended, adaptive attacker retrains per composition)\n")
	fmt.Fprintf(&b, "%-18s %11s %12s %12s %12s %9s\n",
		"composition", "static-F1", "adaptive-F1", "victim-wnds", "air-overhead", "frontier")
	for _, row := range r.Rows {
		mark := ""
		if row.Frontier {
			mark = "*"
		}
		fmt.Fprintf(&b, "%-18s %11.3f %12.3f %12d %+11.1f%% %9s\n",
			row.Name, row.StaticF1, row.AdaptiveF1, row.Windows, 100*row.Overhead, mark)
	}
	fmt.Fprintf(&b, "* = no composition is both cheaper and more protective against the adaptive attacker\n")
	return b.String()
}
