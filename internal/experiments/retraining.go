package experiments

import (
	"fmt"
	"strings"

	"ltefp/internal/appmodel"
	"ltefp/internal/attack/fingerprint"
	"ltefp/internal/lte/operator"
	"ltefp/internal/ml/metrics"
	"ltefp/internal/sniffer"
)

// RetrainingPoint is one day of the maintained-attacker sweep.
type RetrainingPoint struct {
	Day int
	// Static is the day-1 classifier's YouTube F-score on this day.
	Static float64
	// Maintained is the retraining attacker's score on the same traces.
	Maintained float64
	// Retrained marks days on which the maintained attacker re-collected
	// and re-trained (its previous day's score fell below the threshold).
	Retrained bool
}

// RetrainingResult evaluates the paper's adaptive-retraining strategy
// (§VI "Retraining the classifier" and the §VII-D retraining cost term ⑩):
// an attacker who re-collects training data whenever performance falls
// below the 70% threshold holds the F-score flat, at the recurring cost
// Eq. 3 prices.
type RetrainingResult struct {
	Points []RetrainingPoint
	// Retrainings counts how many times the maintained attacker paid the
	// retraining cost over the horizon.
	Retrainings int
}

// Retraining runs the static and maintained attackers side by side over
// the Fig. 8 drift horizon.
func Retraining(scale Scale, seed uint64) (*RetrainingResult, error) {
	prof := operator.TMobile()
	cfg := sniffer.Config{CorruptProb: snifferCorruption, DownlinkOnly: true}
	trainScale := scale
	trainScale.StreamSessions *= 2

	trainAt := func(day int, salt uint64) (*fingerprint.Classifier, error) {
		data, err := collectSetting(prof, trainScale, day, seed+salt, cfg)
		if err != nil {
			return nil, err
		}
		return buildAllDataClassifier(data, seed)
	}
	static, err := trainAt(1, 104729)
	if err != nil {
		return nil, fmt.Errorf("experiments: retraining: %w", err)
	}
	maintained := static

	names := appmodel.Names()
	idx := make(map[string]int, len(names))
	for i, n := range names {
		idx[n] = i
	}
	streaming := appmodel.ByCategory(appmodel.Streaming)

	step := scale.Fig8Step
	if step < 1 {
		step = 1
	}
	var days []int
	for day := 1; day <= scale.Fig8Days; day += step {
		days = append(days, day)
	}

	// Both attackers are scored against the same day traces (identical
	// seeds), so each day's evaluation campaign is collected once up front —
	// in parallel across days — and shared between them.
	dayVecs := make([][][][]float64, len(days)) // [day][streaming app][window][feature]
	err = forEach(len(days), func(di int) error {
		day := days[di]
		perApp := make([][][]float64, len(streaming))
		for ai, app := range streaming {
			sessions := scale.StreamSessions
			if sessions < 3 {
				sessions = 3
			}
			vecs, err := fingerprint.Collect(fingerprint.CollectSpec{
				Profile:          prof,
				App:              app,
				Sessions:         sessions,
				SessionDur:       scale.StreamDur,
				Day:              day,
				Seed:             seed + uint64(day)*6701 + uint64(ai+1)*433,
				Sniffer:          cfg,
				ApplyProfileLoss: true,
				Population:       scale.Population,
				Metrics:          pipelineScope(),
			})
			if err != nil {
				return fmt.Errorf("experiments: retraining day %d: %w", day, err)
			}
			perApp[ai] = vecs
		}
		dayVecs[di] = perApp
		return nil
	})
	if err != nil {
		return nil, err
	}
	evalDay := func(clf *fingerprint.Classifier, di int) float64 {
		conf := metrics.NewConfusion(names)
		for ai, app := range streaming {
			for _, pred := range clf.PredictBatch(dayVecs[di][ai]) {
				conf.Add(idx[app.Name], idx[pred])
			}
		}
		return conf.F1(idx["YouTube"])
	}

	// The retrain decisions chain day to day, so this loop stays sequential.
	res := &RetrainingResult{}
	needRetrain := false
	for di, day := range days {
		retrained := false
		if needRetrain {
			// The attacker re-runs its collection campaign against the
			// current app versions — the Retrain_cost(⑩) purchase.
			fresh, err := trainAt(day, 104729+uint64(day)*37)
			if err != nil {
				return nil, fmt.Errorf("experiments: retraining day %d: %w", day, err)
			}
			maintained = fresh
			res.Retrainings++
			retrained = true
			needRetrain = false
		}
		staticF1 := evalDay(static, di)
		maintainedF1 := evalDay(maintained, di)
		if maintainedF1 < 0.70 {
			needRetrain = true
		}
		res.Points = append(res.Points, RetrainingPoint{
			Day:        day,
			Static:     staticF1,
			Maintained: maintainedF1,
			Retrained:  retrained,
		})
	}
	return res, nil
}

// String renders both attackers' trajectories.
func (r *RetrainingResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Adaptive retraining (§VI / cost term ⑩; threshold 70%%, T-Mobile YouTube)\n")
	fmt.Fprintf(&b, "%-5s %10s %12s %s\n", "day", "static-F1", "maintained", "")
	for _, p := range r.Points {
		note := ""
		if p.Retrained {
			note = "  <- retrained"
		}
		fmt.Fprintf(&b, "%-5d %10.3f %12.3f%s\n", p.Day, p.Static, p.Maintained, note)
	}
	fmt.Fprintf(&b, "retrainings over the horizon: %d\n", r.Retrainings)
	return b.String()
}
