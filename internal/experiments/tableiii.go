package experiments

import (
	"fmt"
	"strings"

	"ltefp/internal/appmodel"
	"ltefp/internal/attack/fingerprint"
	"ltefp/internal/lte/dci"
	"ltefp/internal/lte/operator"
	"ltefp/internal/ml/forest"
	"ltefp/internal/ml/metrics"
	"ltefp/internal/sniffer"
	"ltefp/internal/trace"
)

// forestConfig is the paper's Random Forest setting (Table VIII: 100
// trees, seed 1) namespaced by the experiment seed.
func forestConfig(seed uint64) forest.Config {
	return forest.Config{Trees: 100, Seed: seed}
}

// Variant names the sniffer-coverage variants of Table III.
type Variant string

// The three coverage variants: both directions, downlink only, uplink only.
const (
	DownUp Variant = "Down+Up"
	Down   Variant = "Down"
	Up     Variant = "Up"
)

// Variants lists the Table III variants in column order.
func Variants() []Variant { return []Variant{DownUp, Down, Up} }

// TableIIIRow is one app's results across the three variants.
type TableIIIRow struct {
	App      string
	Category appmodel.Category
	Cells    map[Variant]PRF
}

// TableIIIResult reproduces Table III: lab-setting per-app classification
// for combined, downlink-only, and uplink-only sniffer coverage.
type TableIIIResult struct {
	Rows       []TableIIIRow
	Confusions map[Variant]*metrics.Confusion
}

// TableIII runs the lab fingerprinting evaluation. One both-direction
// capture per app session feeds all three variants (a sole-downlink
// sniffer sees exactly the downlink subset of the combined capture).
func TableIII(scale Scale, seed uint64) (*TableIIIResult, error) {
	lab := operator.Lab()
	apps := appmodel.Apps()
	traces, err := collectAppTraces("table III", apps, func(i int) fingerprint.CollectSpec {
		sessions, dur := scale.sessionsFor(apps[i])
		return fingerprint.CollectSpec{
			Profile:          lab,
			App:              apps[i],
			Sessions:         sessions,
			SessionDur:       dur,
			Seed:             seed + uint64(i+1)*7919,
			Sniffer:          sniffer.Config{CorruptProb: snifferCorruption},
			ApplyProfileLoss: true,
			Population:       scale.Population,
			Metrics:          pipelineScope(),
		}
	})
	if err != nil {
		return nil, err
	}

	variants := Variants()
	confs := make([]*metrics.Confusion, len(variants))
	err = forEach(len(variants), func(vi int) error {
		v := variants[vi]
		data := make([]appData, len(apps))
		for i, app := range apps {
			d := appData{app: app}
			for _, t := range traces[i] {
				ft := filterVariant(t, v)
				d.sessions = append(d.sessions, fingerprint.WindowVectors(ft, fingerprint.DefaultWindow, fingerprint.DefaultWindow))
			}
			data[i] = d
		}
		clf, test, err := buildClassifier(data, seed)
		if err != nil {
			return fmt.Errorf("experiments: table III %s: %w", v, err)
		}
		conf, err := clf.Evaluate(test)
		if err != nil {
			return fmt.Errorf("experiments: table III %s: %w", v, err)
		}
		confs[vi] = conf
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &TableIIIResult{Confusions: make(map[Variant]*metrics.Confusion)}
	for _, app := range apps {
		res.Rows = append(res.Rows, TableIIIRow{App: app.Name, Category: app.Category, Cells: make(map[Variant]PRF)})
	}
	for vi, v := range variants {
		res.Confusions[v] = confs[vi]
		for i := range apps {
			res.Rows[i].Cells[v] = prfFor(confs[vi], i)
		}
	}
	return res, nil
}

// filterVariant restricts a trace to a variant's direction coverage.
func filterVariant(t trace.Trace, v Variant) trace.Trace {
	switch v {
	case Down:
		return t.FilterDirection(dci.Downlink)
	case Up:
		return t.FilterDirection(dci.Uplink)
	default:
		return t
	}
}

// String renders the table in the paper's layout.
func (r *TableIIIResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table III: lab-setting mobile app classification (Random Forest)\n")
	fmt.Fprintf(&b, "%-11s %-14s", "Category", "App")
	for _, v := range Variants() {
		fmt.Fprintf(&b, " |%8s F1  Prec   Rec", v)
	}
	fmt.Fprintln(&b)
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-11s %-14s", row.Category, row.App)
		for _, v := range Variants() {
			c := row.Cells[v]
			fmt.Fprintf(&b, " |   %6.3f %5.3f %5.3f", c.F1, c.Precision, c.Recall)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}
