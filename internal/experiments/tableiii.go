package experiments

import (
	"fmt"
	"strings"

	"ltefp/internal/appmodel"
	"ltefp/internal/attack/fingerprint"
	"ltefp/internal/lte/operator"
	"ltefp/internal/ml/forest"
	"ltefp/internal/ml/metrics"
	"ltefp/internal/sniffer"
	"ltefp/internal/trace"
)

// forestConfig is the paper's Random Forest setting (Table VIII: 100
// trees, seed 1) namespaced by the experiment seed.
func forestConfig(seed uint64) forest.Config {
	return forest.Config{Trees: 100, Seed: seed}
}

// Variant names the sniffer-coverage variants of Table III.
type Variant string

// The three coverage variants: both directions, downlink only, uplink only.
const (
	DownUp Variant = "Down+Up"
	Down   Variant = "Down"
	Up     Variant = "Up"
)

// Variants lists the Table III variants in column order.
func Variants() []Variant { return []Variant{DownUp, Down, Up} }

// TableIIIRow is one app's results across the three variants.
type TableIIIRow struct {
	App      string
	Category appmodel.Category
	Cells    map[Variant]PRF
}

// TableIIIResult reproduces Table III: lab-setting per-app classification
// for combined, downlink-only, and uplink-only sniffer coverage.
type TableIIIResult struct {
	Rows       []TableIIIRow
	Confusions map[Variant]*metrics.Confusion
}

// TableIII runs the lab fingerprinting evaluation. One both-direction
// capture per app session feeds all three variants (a sole-downlink
// sniffer sees exactly the downlink subset of the combined capture):
// each variant is its own dataset artifact, and the capture tier below
// deduplicates the shared simulations across them. Metrics-enabled runs
// bypass the store, so they collect each capture once up front and
// re-window it per variant — the instrumented work stays what it was.
func TableIII(scale Scale, seed uint64) (*TableIIIResult, error) {
	lab := operator.Lab()
	apps := appmodel.Apps()
	cfg := sniffer.Config{CorruptProb: snifferCorruption}

	var traces [][]trace.Trace
	if pipelineScope().Enabled() {
		var err error
		traces, err = collectAppTraces("table III", apps, func(i int) fingerprint.CollectSpec {
			sessions, dur := scale.sessionsFor(apps[i])
			return fingerprint.CollectSpec{
				Profile:          lab,
				App:              apps[i],
				Sessions:         sessions,
				SessionDur:       dur,
				Seed:             seed + uint64(i+1)*7919,
				Sniffer:          cfg,
				ApplyProfileLoss: true,
				Population:       scale.Population,
				Metrics:          pipelineScope(),
			}
		})
		if err != nil {
			return nil, err
		}
	}

	variants := Variants()
	confs := make([]*metrics.Confusion, len(variants))
	err := forEach(len(variants), func(vi int) error {
		v := variants[vi]
		var data []appData
		if traces != nil {
			data = make([]appData, len(apps))
			for i, app := range apps {
				d := appData{app: app}
				for _, t := range traces[i] {
					ft := filterVariant(t, v)
					d.sessions = append(d.sessions, fingerprint.WindowVectors(ft, fingerprint.DefaultWindow, fingerprint.DefaultWindow))
				}
				data[i] = d
			}
		} else {
			var err error
			data, err = collectDataset("table III "+string(v), lab, scale, 0, seed, cfg, variantFilter(v))
			if err != nil {
				return fmt.Errorf("experiments: table III %s: %w", v, err)
			}
		}
		clf, test, err := buildClassifier(data, seed)
		if err != nil {
			return fmt.Errorf("experiments: table III %s: %w", v, err)
		}
		conf, err := clf.Evaluate(test)
		if err != nil {
			return fmt.Errorf("experiments: table III %s: %w", v, err)
		}
		confs[vi] = conf
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &TableIIIResult{Confusions: make(map[Variant]*metrics.Confusion)}
	for _, app := range apps {
		res.Rows = append(res.Rows, TableIIIRow{App: app.Name, Category: app.Category, Cells: make(map[Variant]PRF)})
	}
	for vi, v := range variants {
		res.Confusions[v] = confs[vi]
		for i := range apps {
			res.Rows[i].Cells[v] = prfFor(confs[vi], i)
		}
	}
	return res, nil
}

// filterVariant restricts a trace to a variant's direction coverage.
func filterVariant(t trace.Trace, v Variant) trace.Trace {
	return variantFilter(v).Apply(t)
}

// variantFilter maps a Table III variant to its direction filter.
func variantFilter(v Variant) fingerprint.DirectionFilter {
	switch v {
	case Down:
		return fingerprint.DownlinkOnly
	case Up:
		return fingerprint.UplinkOnly
	default:
		return fingerprint.AllDirections
	}
}

// String renders the table in the paper's layout.
func (r *TableIIIResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table III: lab-setting mobile app classification (Random Forest)\n")
	fmt.Fprintf(&b, "%-11s %-14s", "Category", "App")
	for _, v := range Variants() {
		fmt.Fprintf(&b, " |%8s F1  Prec   Rec", v)
	}
	fmt.Fprintln(&b)
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-11s %-14s", row.Category, row.App)
		for _, v := range Variants() {
			c := row.Cells[v]
			fmt.Fprintf(&b, " |   %6.3f %5.3f %5.3f", c.F1, c.Precision, c.Recall)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}
