package experiments

import (
	"strings"
	"testing"

	"ltefp/internal/obs"
)

// TestMetricsReportAggregatesCells checks that the per-run report sums
// counters across cells and degrades to n/a for histograms never observed.
func TestMetricsReportAggregatesCells(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("pipeline.cell1.sniffer.candidates").Add(600)
	reg.Counter("pipeline.cell2.sniffer.candidates").Add(400)
	reg.Counter("pipeline.cell1.sniffer.lost").Add(50)
	reg.Counter("pipeline.cell1.enb.grants_dl").Add(7)
	reg.Counter("pipeline.forest.rows_trained").Add(1234)
	reg.Counter("pipeline.corr.pairs_total").Add(100)
	reg.Counter("pipeline.corr.pruned_lb_kim").Add(40)
	reg.Counter("pipeline.corr.pruned_lb_keogh").Add(25)
	reg.Counter("pipeline.corr.abandoned").Add(15)
	reg.Counter("pipeline.corr.full_dtw").Add(20)
	reg.Counter("pipeline.corr.kept").Add(6)

	rep := MetricsReport(reg.Snapshot())
	for _, want := range []string{
		"1000 candidates",
		"50 lost (5.00%)",
		"7 DL grants",
		"1234 rows trained",
		"train n/a",
		"task n/a",
		"100 pairs swept, 80 pruned (80.0%: kim 40, keogh 25, abandoned 15), 20 full DTW, 6 kept",
		"shard n/a",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

// TestMetricsReportEmpty checks the empty snapshot renders without panics
// or division by zero.
func TestMetricsReportEmpty(t *testing.T) {
	rep := MetricsReport(obs.Snapshot{})
	if !strings.Contains(rep, "0 candidates, 0 records, 0 lost (0.00%)") {
		t.Errorf("unexpected empty report:\n%s", rep)
	}
}
