package experiments

import (
	"fmt"
	"strings"

	"ltefp/internal/attack/cost"
)

// CostScenario is one row of the cost-model sweep.
type CostScenario struct {
	Label       string
	Params      cost.Params
	HorizonDays int
}

// CostModelResult reproduces the §VII-D analytical attacker cost model
// (Fig. 7, Eqs. 2–3) over a sweep of attacker ambitions.
type CostModelResult struct {
	Scenarios []CostScenario
}

// CostModel evaluates the cost model for a single-victim stalker, the
// paper's running configuration, and a city-scale campaign.
func CostModel() *CostModelResult {
	base := cost.Defaults()

	single := base
	single.Victims = 1
	single.AppsPerVictim = 4
	single.Sniffers = 1

	city := base
	city.Victims = 200
	city.AppsPerVictim = 5
	city.Sniffers = 25
	city.InstancesPerApp = 20

	return &CostModelResult{Scenarios: []CostScenario{
		{Label: "single victim, one month", Params: single, HorizonDays: 30},
		{Label: "paper configuration, one month", Params: base, HorizonDays: 30},
		{Label: "city-wide campaign, one quarter", Params: city, HorizonDays: 90},
	}}
}

// String renders every scenario's Fig. 7 breakdown.
func (r *CostModelResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Analytical attacker cost model (paper §VII-D)\n")
	for _, s := range r.Scenarios {
		fmt.Fprintf(&b, "\n-- %s --\n%s", s.Label, s.Params.Breakdown(s.HorizonDays))
	}
	return b.String()
}
