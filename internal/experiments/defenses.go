package experiments

import (
	"fmt"
	"strings"
	"time"

	"ltefp/internal/lte/operator"
	"ltefp/internal/sniffer"
)

// DefenseRow is one countermeasure configuration's outcome against the
// strongest attacker (one who trains on the defended network).
type DefenseRow struct {
	// Name labels the configuration.
	Name string
	// WeightedF1 is the fingerprinting classifier's window F1.
	WeightedF1 float64
	// Windows is the number of victim windows the attacker recovered,
	// reflecting how well identity tracking survived.
	Windows int
	// PaddingOverhead is the extra air-interface bytes per traffic window
	// relative to the undefended baseline — the deployment cost §VIII-B
	// warns about ("obfuscating traffic imposes high-performance overhead
	// on data transmission").
	PaddingOverhead float64
	// AttributionRatio is the share of the baseline's victim windows the
	// attacker could still attribute — what RNTI refreshing destroys.
	AttributionRatio float64
}

// DefensesResult evaluates the paper's §VIII-B countermeasures: frequent
// RNTI reassignment (breaks tracking) and layer-two traffic morphing
// (breaks the size feature), separately and combined.
type DefensesResult struct {
	Rows []DefenseRow
}

// Defenses runs the countermeasure ablation on the T-Mobile profile.
func Defenses(scale Scale, seed uint64) (*DefensesResult, error) {
	base := operator.TMobile()

	withRefresh := base
	withRefresh.RNTIRefreshEvery = 2 * time.Second

	withMorph := base
	withMorph.PadBuckets = true

	withBoth := withRefresh
	withBoth.PadBuckets = true

	configs := []struct {
		name string
		prof operator.Profile
	}{
		{"no defense", base},
		{"RNTI refresh (2 s)", withRefresh},
		{"traffic morphing", withMorph},
		{"refresh + morphing", withBoth},
	}

	// Configurations run in parallel; normalisation against the row-0
	// baseline happens serially afterwards.
	type cellResult struct {
		f1        float64
		windows   int
		perWindow float64
	}
	cellResults := make([]cellResult, len(configs))
	err := forEach(len(configs), func(i int) error {
		cfg := configs[i]
		// The same seed across configurations keeps the victims' traffic
		// programs identical, so the rows differ only by the defense.
		data, err := collectSetting(cfg.prof, scale, 1, seed+27644437,
			sniffer.Config{CorruptProb: snifferCorruption, DownlinkOnly: true})
		if err != nil {
			return fmt.Errorf("experiments: defenses (%s): %w", cfg.name, err)
		}
		clf, test, err := buildClassifier(data, seed)
		if err != nil {
			return fmt.Errorf("experiments: defenses (%s): %w", cfg.name, err)
		}
		conf, err := clf.Evaluate(test)
		if err != nil {
			return fmt.Errorf("experiments: defenses (%s): %w", cfg.name, err)
		}
		windows := 0
		var bytes float64
		for _, d := range data {
			for _, sess := range d.sessions {
				windows += len(sess)
				for _, v := range sess {
					bytes += v[3] // total_bytes feature
				}
			}
		}
		perWindow := 0.0
		if windows > 0 {
			perWindow = bytes / float64(windows)
		}
		cellResults[i] = cellResult{f1: conf.WeightedF1(), windows: windows, perWindow: perWindow}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &DefensesResult{}
	baselineBytes := cellResults[0].perWindow
	baselineWindows := cellResults[0].windows
	for i, cfg := range configs {
		c := cellResults[i]
		overhead, attribution := 0.0, 0.0
		if baselineBytes > 0 {
			overhead = c.perWindow/baselineBytes - 1
		}
		if baselineWindows > 0 {
			attribution = float64(c.windows) / float64(baselineWindows)
		}
		res.Rows = append(res.Rows, DefenseRow{
			Name:             cfg.name,
			WeightedF1:       c.f1,
			Windows:          c.windows,
			PaddingOverhead:  overhead,
			AttributionRatio: attribution,
		})
	}
	return res, nil
}

// String renders the ablation.
func (r *DefensesResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Countermeasure ablation (§VIII-B, T-Mobile, attacker retrains per defense)\n")
	fmt.Fprintf(&b, "%-22s %12s %12s %13s %12s\n",
		"defense", "weighted-F1", "victim-wnds", "attribution", "overhead/wnd")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-22s %12.3f %12d %12.1f%% %+11.1f%%\n",
			row.Name, row.WeightedF1, row.Windows, 100*row.AttributionRatio, 100*row.PaddingOverhead)
	}
	return b.String()
}
