package experiments

import (
	"fmt"
	"strings"

	"ltefp/internal/appmodel"
	"ltefp/internal/attack/fingerprint"
	"ltefp/internal/lte/operator"
	"ltefp/internal/ml/metrics"
	"ltefp/internal/sniffer"
)

// Figure8Point is one day of the drift sweep.
type Figure8Point struct {
	Day int
	// F1 is the YouTube F-score of the day-1 classifier on day-Day traces.
	F1 float64
}

// Figure8Result reproduces Fig. 8: decrease of classification performance
// over time as app updates drift the traffic away from the training-day
// distribution (T-Mobile, YouTube). The paper observes the 70% usability
// threshold being crossed around day 7.
type Figure8Result struct {
	Points []Figure8Point
}

// CrossedBelow returns the first measured day whose F-score fell below the
// threshold (0 when never crossed).
func (r *Figure8Result) CrossedBelow(threshold float64) int {
	for _, p := range r.Points {
		if p.F1 < threshold {
			return p.Day
		}
	}
	return 0
}

// Figure8 trains the classifier on day-1 T-Mobile traces and tests it
// against streaming traces recorded on later days.
func Figure8(scale Scale, seed uint64) (*Figure8Result, error) {
	prof := operator.TMobile()
	cfg := sniffer.Config{CorruptProb: snifferCorruption, DownlinkOnly: true}
	// Drift measurement needs a classifier whose day-1 baseline is solid
	// across fresh sessions, so the training campaign is doubled for the
	// streaming apps under test.
	trainScale := scale
	trainScale.StreamSessions *= 2
	data, err := collectSetting(prof, trainScale, 1, seed+7907, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: figure 8 training: %w", err)
	}
	clf, err := buildAllDataClassifier(data, seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: figure 8 training: %w", err)
	}

	streaming := appmodel.ByCategory(appmodel.Streaming)
	names := appmodel.Names()
	idx := make(map[string]int, len(names))
	for i, n := range names {
		idx[n] = i
	}
	step := scale.Fig8Step
	if step < 1 {
		step = 1
	}
	var days []int
	for day := 1; day <= scale.Fig8Days; day += step {
		days = append(days, day)
	}
	points := make([]Figure8Point, len(days))
	err = forEach(len(days), func(di int) error {
		day := days[di]
		conf := metrics.NewConfusion(names)
		for ai, app := range streaming {
			sessions := scale.StreamSessions
			if sessions < 3 {
				sessions = 3
			}
			vecs, err := fingerprint.Collect(fingerprint.CollectSpec{
				Profile:          prof,
				App:              app,
				Sessions:         sessions,
				SessionDur:       scale.StreamDur,
				Day:              day,
				Seed:             seed + uint64(day)*6701 + uint64(ai+1)*433,
				Sniffer:          cfg,
				ApplyProfileLoss: true,
				Population:       scale.Population,
				Metrics:          pipelineScope(),
			})
			if err != nil {
				return fmt.Errorf("experiments: figure 8 day %d: %w", day, err)
			}
			for _, pred := range clf.PredictBatch(vecs) {
				conf.Add(idx[app.Name], idx[pred])
			}
		}
		points[di] = Figure8Point{Day: day, F1: conf.F1(idx["YouTube"])}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Figure8Result{Points: points}, nil
}

// String renders the series with an ASCII trend.
func (r *Figure8Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: performance decrease over time (T-Mobile, YouTube)\n")
	fmt.Fprintf(&b, "%-5s %-8s\n", "day", "F-score")
	for _, p := range r.Points {
		bar := strings.Repeat("#", int(p.F1*40))
		fmt.Fprintf(&b, "%-5d %7.3f  %s\n", p.Day, p.F1, bar)
	}
	if d := r.CrossedBelow(0.70); d > 0 {
		fmt.Fprintf(&b, "crossed the 70%% usability threshold at day %d\n", d)
	} else {
		fmt.Fprintf(&b, "stayed above the 70%% usability threshold\n")
	}
	return b.String()
}
