package experiments

import (
	"fmt"
	"strings"
	"time"

	"ltefp/internal/appmodel"
	"ltefp/internal/capture"
	"ltefp/internal/lte/operator"
	"ltefp/internal/sniffer"
)

// ConcealmentRow is one identity regime's outcome.
type ConcealmentRow struct {
	Name string
	// Bindings is how many stable RNTI↔identity bindings the sniffer
	// observed.
	Bindings int
	// AttributedFraction is the share of the victim's records the
	// attacker could attribute via identity mapping.
	AttributedFraction float64
}

// ConcealmentResult evaluates the §VIII-C discussion: 5G's SUCI and
// rotating temporary identifiers deny the passive attacker the stable
// identity its targeted attacks are built on. The radio-layer traffic
// itself still leaks (the classifier would still work per-RNTI), but
// binding RNTIs to a *person* — the prerequisite of the history and
// correlation attacks — collapses.
type ConcealmentResult struct {
	Rows []ConcealmentRow
}

// Concealment runs the same victim scenario under LTE-style identities and
// under one-time identifiers.
func Concealment(scale Scale, seed uint64) (*ConcealmentResult, error) {
	app, err := appmodel.ByName("WhatsApp")
	if err != nil {
		return nil, err
	}
	base := operator.TMobile()
	// An empty cell makes attribution exact: every C-RNTI record on the
	// air belongs to the victim, so attributed/total is the true recovery
	// rate of the identity-mapping step.
	base.BackgroundUEs = 0
	concealed := base
	concealed.OneTimeIdentifiers = true

	res := &ConcealmentResult{}
	for _, cfg := range []struct {
		name string
		prof operator.Profile
	}{
		{"LTE identities (TMSI exposed)", base},
		{"5G-style one-time identifiers", concealed},
	} {
		// A messaging victim: its idle lulls force repeated reconnections,
		// each a fresh mapping opportunity (or, concealed, a dead end).
		cap, err := capture.Run(capture.Scenario{
			Seed:  seed + 6700417,
			Cells: []capture.Cell{{ID: 1, Profile: cfg.prof}},
			Sessions: []capture.Session{{
				UE: "victim", CellID: 1, App: app,
				Start:    500 * time.Millisecond,
				Duration: scale.MsgDur * 2,
			}},
			Population:       scale.Population,
			Sniffer:          sniffer.Config{CorruptProb: snifferCorruption},
			ApplyProfileLoss: true,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: concealment (%s): %w", cfg.name, err)
		}
		bindings := 0
		for _, e := range cap.Events {
			if e.HasTMSI {
				bindings++
			}
		}
		attributed := len(cap.UserTrace("victim"))
		frac := 0.0
		if len(cap.Records) > 0 {
			frac = float64(attributed) / float64(len(cap.Records))
		}
		res.Rows = append(res.Rows, ConcealmentRow{
			Name:               cfg.name,
			Bindings:           bindings,
			AttributedFraction: frac,
		})
	}
	return res, nil
}

// String renders the comparison.
func (r *ConcealmentResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Identity concealment (§VIII-C, 5G SUCI-style protection)\n")
	fmt.Fprintf(&b, "%-32s %10s %12s\n", "regime", "bindings", "attributed")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-32s %10d %11.1f%%\n", row.Name, row.Bindings, 100*row.AttributedFraction)
	}
	return b.String()
}
