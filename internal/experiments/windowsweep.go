package experiments

import (
	"fmt"
	"strings"
	"time"

	"ltefp/internal/appmodel"
	"ltefp/internal/artifact"
	"ltefp/internal/attack/fingerprint"
	"ltefp/internal/lte/operator"
	"ltefp/internal/sniffer"
)

// WindowSweepPoint is one candidate window size's outcome.
type WindowSweepPoint struct {
	Window time.Duration
	// WeightedF1 is the window-classification score at this size.
	WeightedF1 float64
	// WindowsPerMinute is the evidence density: smaller windows yield more
	// (but weaker) classification opportunities.
	WindowsPerMinute float64
}

// WindowSweepResult reproduces the paper's window-size selection study
// (§VI: "We tested for deriving the optimal window size ... We set the
// time window as 100 ms empirically"): the same captures are re-windowed
// at several widths and the classifier re-trained at each.
type WindowSweepResult struct {
	Points []WindowSweepPoint
}

// Best returns the window size with the highest F1.
func (r *WindowSweepResult) Best() WindowSweepPoint {
	best := r.Points[0]
	for _, p := range r.Points {
		if p.WeightedF1 > best.WeightedF1 {
			best = p
		}
	}
	return best
}

// WindowSweep evaluates candidate window sizes on one set of T-Mobile
// captures.
func WindowSweep(scale Scale, seed uint64) (*WindowSweepResult, error) {
	prof := operator.TMobile()
	apps := appmodel.Apps()
	var totalSpan time.Duration
	for _, app := range apps {
		sessions, dur := scale.sessionsFor(app)
		totalSpan += time.Duration(sessions) * dur
	}
	traces, err := collectAppTraces("window sweep", apps, func(i int) fingerprint.CollectSpec {
		sessions, dur := scale.sessionsFor(apps[i])
		return fingerprint.CollectSpec{
			Profile:          prof,
			App:              apps[i],
			Sessions:         sessions,
			SessionDur:       dur,
			Seed:             seed + 52289 + uint64(i+1)*7919,
			Sniffer:          sniffer.Config{CorruptProb: snifferCorruption, DownlinkOnly: true},
			ApplyProfileLoss: true,
			Population:       scale.Population,
			Metrics:          pipelineScope(),
		}
	})
	if err != nil {
		return nil, err
	}

	widths := []time.Duration{
		25 * time.Millisecond,
		50 * time.Millisecond,
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
	}
	points := make([]WindowSweepPoint, len(widths))
	err = forEach(len(widths), func(wi int) error {
		w := widths[wi]
		data := make([]appData, len(apps))
		windows := 0
		for i, app := range apps {
			d := appData{app: app}
			for _, tr := range traces[i] {
				vecs := fingerprint.WindowVectors(tr, w, w)
				windows += len(vecs)
				d.sessions = append(d.sessions, vecs)
			}
			data[i] = d
		}
		clf, test, err := buildClassifierWindowed(data, seed, w)
		if err != nil {
			return fmt.Errorf("experiments: window sweep %v: %w", w, err)
		}
		conf, err := clf.Evaluate(test)
		if err != nil {
			return fmt.Errorf("experiments: window sweep %v: %w", w, err)
		}
		points[wi] = WindowSweepPoint{
			Window:           w,
			WeightedF1:       conf.WeightedF1(),
			WindowsPerMinute: float64(windows) / totalSpan.Minutes(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &WindowSweepResult{Points: points}, nil
}

// buildClassifierWindowed is buildClassifier with an explicit window size.
func buildClassifierWindowed(data []appData, seed uint64, w time.Duration) (*fingerprint.Classifier, map[string][][]float64, error) {
	ts := fingerprint.NewTrainingSet()
	test := make(map[string][][]float64, len(data))
	for _, d := range data {
		train, held := d.trainTest()
		if err := ts.Add(d.app.Name, train); err != nil {
			return nil, nil, err
		}
		test[d.app.Name] = held
	}
	cfg := fingerprint.Config{
		Window: w,
		Stride: w,
		Forest: forestConfig(seed),
	}
	train := fingerprint.TrainCached
	if pipelineScope().Enabled() {
		artifact.Default.CountBypass(artifact.KindForest)
		train = fingerprint.Train
	}
	clf, err := train(ts, cfg)
	if err != nil {
		return nil, nil, err
	}
	return clf, test, nil
}

// String renders the sweep.
func (r *WindowSweepResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Window-size selection (§VI; the paper picks 100 ms empirically)\n")
	fmt.Fprintf(&b, "%-10s %12s %14s\n", "window", "weighted-F1", "windows/min")
	for _, p := range r.Points {
		marker := ""
		if p.Window == r.Best().Window {
			marker = "  <- best"
		}
		fmt.Fprintf(&b, "%-10v %12.3f %14.0f%s\n", p.Window, p.WeightedF1, p.WindowsPerMinute, marker)
	}
	return b.String()
}
