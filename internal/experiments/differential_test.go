package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"ltefp/internal/artifact"
	"ltefp/internal/capture"
)

// readGolden loads a committed golden rendering. Set UPDATE_GOLDEN=1 to
// regenerate it from the current output (for an intentional semantic
// change only).
func readGolden(t *testing.T, name, got string) string {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(want)
}

// TestWarmRunByteIdenticalToCold is the differential contract of the
// artifact store: an experiment run served entirely from the persistent
// cache must render byte-identically to the cold run that populated it —
// and both must match the committed goldens, so a cache bug cannot hide
// behind a matching pair of wrong outputs. A third leg corrupts every
// entry on disk and proves the rerun discards and recomputes rather than
// serving damaged artifacts.
func TestWarmRunByteIdenticalToCold(t *testing.T) {
	if testing.Short() {
		t.Skip("cold quick-scale runs take several seconds; skipped with -short")
	}
	capture.ResetCache()
	dir := t.TempDir()
	if err := artifact.Default.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := artifact.Default.SetDir(""); err != nil {
			t.Error(err)
		}
		capture.ResetCache()
	}()

	coldT3, err := TableIII(Quick(), 1)
	if err != nil {
		t.Fatal(err)
	}
	coldP, err := Pareto(tinyScale(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if want := readGolden(t, "tableiii_quick_seed1.golden", coldT3.String()); coldT3.String() != want {
		t.Fatalf("cold Table III diverged from golden:\ngot:\n%s\nwant:\n%s", coldT3, want)
	}
	if want := readGolden(t, "pareto_tiny_seed1.golden", coldP.String()); coldP.String() != want {
		t.Fatalf("cold Pareto diverged from golden:\ngot:\n%s\nwant:\n%s", coldP, want)
	}

	// Simulate a restarted process: the memory tier is gone, the disk
	// tier survives. The warm run must not compute anything.
	capture.ResetCache()
	warmT3, err := TableIII(Quick(), 1)
	if err != nil {
		t.Fatal(err)
	}
	warmP, err := Pareto(tinyScale(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if warmT3.String() != coldT3.String() {
		t.Errorf("warm Table III is not byte-identical to cold:\nwarm:\n%s\ncold:\n%s", warmT3, coldT3)
	}
	if warmP.String() != coldP.String() {
		t.Errorf("warm Pareto is not byte-identical to cold:\nwarm:\n%s\ncold:\n%s", warmP, coldP)
	}
	st := artifact.Default.ReadStats()
	tot := st.Total()
	if tot.Misses != 0 {
		t.Errorf("warm run recomputed %d artifacts: %+v", tot.Misses, st.PerKind)
	}
	if tot.DiskHits == 0 {
		t.Error("warm run hit the disk tier zero times")
	}

	// Corrupt every persisted entry: the rerun must detect, discard, and
	// recompute each one it touches — and still render the golden bytes.
	entries, err := filepath.Glob(filepath.Join(dir, "*", "*", "*.snap"))
	if err != nil || len(entries) == 0 {
		t.Fatalf("no disk entries to corrupt (err=%v)", err)
	}
	for _, path := range entries {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/2] ^= 0x04
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	capture.ResetCache()
	reT3, err := TableIII(Quick(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if reT3.String() != coldT3.String() {
		t.Errorf("post-corruption Table III diverged:\ngot:\n%s\nwant:\n%s", reT3, coldT3)
	}
	st = artifact.Default.ReadStats()
	tot = st.Total()
	if tot.DiskHits != 0 {
		t.Errorf("corrupted entries were served: %+v", st.PerKind)
	}
	if tot.DiskDiscards == 0 || tot.Misses == 0 {
		t.Errorf("corrupted entries were not discarded and recomputed: %+v", st.PerKind)
	}
	for _, kind := range []artifact.Kind{artifact.KindDataset, artifact.KindForest} {
		if ks := st.PerKind[kind]; ks.DiskDiscards == 0 {
			t.Errorf("%s: corrupted entry not discarded: %+v", kind, ks)
		}
	}
}
