package experiments

import (
	"fmt"
	"strings"

	"ltefp/internal/appmodel"
	"ltefp/internal/attack/fingerprint"
	"ltefp/internal/lte/operator"
	"ltefp/internal/ml/metrics"
	"ltefp/internal/sniffer"
)

// Figure9Point is one noise level of the sweep.
type Figure9Point struct {
	// BackgroundApps is how many noise apps ran beside the foreground app.
	BackgroundApps int
	// Instances is the noisy test-window count this level produced (the
	// paper's x-axis, which grows with background traffic volume).
	Instances int
	// F1 is the YouTube F-score under this noise level.
	F1 float64
}

// Figure9Result reproduces Fig. 9: impact of noise traffic. The paper
// trains on a single clean app (YouTube, T-Mobile) and tests against
// traces recorded while 5–10 background apps run on the same UE,
// observing a 3–13% F-score drop per added noise increment and effective
// failure once noise grows past the 0.6 floor.
type Figure9Result struct {
	Points []Figure9Point
}

// Figure9 sweeps the number of background apps on the victim UE.
func Figure9(scale Scale, seed uint64) (*Figure9Result, error) {
	prof := operator.TMobile()
	cfg := sniffer.Config{CorruptProb: snifferCorruption, DownlinkOnly: true}
	data, err := collectSetting(prof, scale, 1, seed+9973, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: figure 9 training: %w", err)
	}
	clf, err := buildAllDataClassifier(data, seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: figure 9 training: %w", err)
	}

	names := appmodel.Names()
	idx := make(map[string]int, len(names))
	for i, n := range names {
		idx[n] = i
	}
	youtube, err := appmodel.ByName("YouTube")
	if err != nil {
		return nil, err
	}
	// Clean counter-traffic (the other eight apps' held-out windows) keeps
	// precision meaningful under noise.
	counter := make(map[string][][]float64)
	for _, d := range data {
		if d.app.Name == youtube.Name {
			continue
		}
		_, held := d.trainTest()
		counter[d.app.Name] = held
	}

	levels := []int{0, 2, 4, 6, 8, 10}
	points := make([]Figure9Point, len(levels))
	err = forEach(len(levels), func(li int) error {
		bg := levels[li]
		sessions := scale.StreamSessions + 2

		noisy, err := fingerprint.Collect(fingerprint.CollectSpec{
			Profile:          prof,
			App:              youtube,
			Sessions:         sessions,
			SessionDur:       scale.StreamDur,
			Seed:             seed + uint64(bg+1)*104651,
			Sniffer:          cfg,
			ApplyProfileLoss: true,
			BackgroundApps:   bg,
			Population:       scale.Population,
			Metrics:          pipelineScope(),
		})
		if err != nil {
			return fmt.Errorf("experiments: figure 9 (%d bg): %w", bg, err)
		}
		conf := metrics.NewConfusion(names)
		for _, pred := range clf.PredictBatch(noisy) {
			conf.Add(idx[youtube.Name], idx[pred])
		}
		for app, vecs := range counter {
			for _, pred := range clf.PredictBatch(vecs) {
				conf.Add(idx[app], idx[pred])
			}
		}
		points[li] = Figure9Point{
			BackgroundApps: bg,
			Instances:      len(noisy),
			F1:             conf.F1(idx[youtube.Name]),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Figure9Result{Points: points}, nil
}

// String renders the series with an ASCII trend.
func (r *Figure9Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: impact of noise traffic (T-Mobile, YouTube foreground)\n")
	fmt.Fprintf(&b, "%-8s %-10s %-8s\n", "bg apps", "instances", "F-score")
	for _, p := range r.Points {
		bar := strings.Repeat("#", int(p.F1*40))
		fmt.Fprintf(&b, "%-8d %-10d %7.3f  %s\n", p.BackgroundApps, p.Instances, p.F1, bar)
	}
	return b.String()
}
