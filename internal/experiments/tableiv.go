package experiments

import (
	"fmt"
	"strings"

	"ltefp/internal/appmodel"
	"ltefp/internal/lte/operator"
	"ltefp/internal/ml/metrics"
	"ltefp/internal/sniffer"
)

// TableIVRow is one app's downlink-only results across the three carriers.
type TableIVRow struct {
	App      string
	Category appmodel.Category
	Cells    map[string]PRF // keyed by carrier name
}

// TableIVResult reproduces Table IV: real-world (downlink-only) per-app
// classification on the three commercial carrier profiles, one classifier
// trained per carrier as the paper does.
type TableIVResult struct {
	Carriers   []string
	Rows       []TableIVRow
	Confusions map[string]*metrics.Confusion
}

// TableIV runs the real-world fingerprinting evaluation.
func TableIV(scale Scale, seed uint64) (*TableIVResult, error) {
	carriers := operator.Commercial()
	apps := appmodel.Apps()
	confs := make([]*metrics.Confusion, len(carriers))
	err := forEach(len(carriers), func(ci int) error {
		prof := carriers[ci]
		data, err := collectSetting(prof, scale, 1, seed+uint64(ci+1)*104729,
			sniffer.Config{CorruptProb: snifferCorruption, DownlinkOnly: true})
		if err != nil {
			return fmt.Errorf("experiments: table IV: %w", err)
		}
		clf, test, err := buildClassifier(data, seed)
		if err != nil {
			return fmt.Errorf("experiments: table IV %s: %w", prof.Name, err)
		}
		conf, err := clf.Evaluate(test)
		if err != nil {
			return fmt.Errorf("experiments: table IV %s: %w", prof.Name, err)
		}
		confs[ci] = conf
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &TableIVResult{Confusions: make(map[string]*metrics.Confusion)}
	for _, app := range apps {
		res.Rows = append(res.Rows, TableIVRow{App: app.Name, Category: app.Category, Cells: make(map[string]PRF)})
	}
	for ci, prof := range carriers {
		res.Carriers = append(res.Carriers, prof.Name)
		res.Confusions[prof.Name] = confs[ci]
		for i := range apps {
			res.Rows[i].Cells[prof.Name] = prfFor(confs[ci], i)
		}
	}
	return res, nil
}

// String renders the table in the paper's layout.
func (r *TableIVResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table IV: real-world mobile app classification (downlink only, Random Forest)\n")
	fmt.Fprintf(&b, "%-11s %-14s", "Category", "App")
	for _, c := range r.Carriers {
		fmt.Fprintf(&b, " |%9s F1  Prec   Rec", c)
	}
	fmt.Fprintln(&b)
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-11s %-14s", row.Category, row.App)
		for _, c := range r.Carriers {
			cell := row.Cells[c]
			fmt.Fprintf(&b, " |    %6.3f %5.3f %5.3f", cell.F1, cell.Precision, cell.Recall)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}
