package experiments

import (
	"strings"
	"testing"

	"ltefp/internal/appmodel"
)

func TestScalesAreSane(t *testing.T) {
	for _, s := range []Scale{Quick(), Full()} {
		if s.StreamSessions < 2 || s.MsgSessions < s.StreamSessions {
			t.Errorf("%s: session sizing wrong: %+v", s.Name, s)
		}
		if s.PairsPerSetting < 2 || s.Fig8Days < 2 || s.HistoryFactor <= 0 {
			t.Errorf("%s: sweep sizing wrong: %+v", s.Name, s)
		}
	}
	if Full().StreamSessions <= Quick().StreamSessions {
		t.Error("full scale not larger than quick")
	}
}

func TestSessionsFor(t *testing.T) {
	s := Quick()
	for _, app := range appmodel.Apps() {
		n, d := s.sessionsFor(app)
		if n <= 0 || d <= 0 {
			t.Fatalf("%s: sessionsFor = (%d, %v)", app.Name, n, d)
		}
		if app.Category == appmodel.Messaging && n <= s.StreamSessions {
			t.Errorf("%s: messengers need more sessions", app.Name)
		}
	}
}

func TestTrainTestSplit(t *testing.T) {
	app := appmodel.Apps()[0]
	d := appData{app: app}
	for s := 0; s < 4; s++ {
		var sess [][]float64
		for w := 0; w < 25; w++ {
			sess = append(sess, []float64{float64(s), float64(w)})
		}
		d.sessions = append(d.sessions, sess)
	}
	train, test := d.trainTest()
	if len(train)+len(test) != 100 {
		t.Fatalf("split lost windows: %d + %d", len(train), len(test))
	}
	if len(test) != 20 {
		t.Fatalf("test fraction = %d/100, want the paper's 20%%", len(test))
	}
	// Determinism.
	train2, _ := d.trainTest()
	for i := range train {
		if train[i][0] != train2[i][0] || train[i][1] != train2[i][1] {
			t.Fatal("split not deterministic")
		}
	}
}

func TestTableVItineraryIsPaperShaped(t *testing.T) {
	if len(tableVItinerary) != 12 {
		t.Fatalf("%d itinerary entries, want the paper's 12", len(tableVItinerary))
	}
	zones := map[int]bool{}
	days := map[int]bool{}
	cats := map[appmodel.Category]bool{}
	for _, e := range tableVItinerary {
		zones[e.zone] = true
		days[e.day] = true
		app, err := appmodel.ByName(e.app)
		if err != nil {
			t.Fatalf("itinerary app %q: %v", e.app, err)
		}
		cats[app.Category] = true
		if e.minutes < 5 || e.minutes > 10 {
			t.Errorf("session length %v min outside the paper's 5-10", e.minutes)
		}
	}
	if len(zones) != 3 || len(days) != 3 || len(cats) != 3 {
		t.Fatalf("coverage: %d zones, %d days, %d categories", len(zones), len(days), len(cats))
	}
}

func TestCostModelRuns(t *testing.T) {
	res := CostModel()
	if len(res.Scenarios) < 3 {
		t.Fatalf("%d scenarios", len(res.Scenarios))
	}
	s := res.String()
	for _, want := range []string{"single victim", "city-wide", "Eq. 2"} {
		if !strings.Contains(s, want) {
			t.Errorf("cost render missing %q", want)
		}
	}
	for _, sc := range res.Scenarios {
		if err := sc.Params.Validate(); err != nil {
			t.Errorf("%s: %v", sc.Label, err)
		}
	}
}

func TestVariants(t *testing.T) {
	vs := Variants()
	if len(vs) != 3 || vs[0] != DownUp || vs[1] != Down || vs[2] != Up {
		t.Fatalf("variants = %v", vs)
	}
}
