package experiments

import (
	"fmt"
	"math"
	"strings"

	"ltefp/internal/appmodel"
	"ltefp/internal/attack/correlation"
	"ltefp/internal/lte/operator"
	"ltefp/internal/ml/metrics"
	"ltefp/internal/sniffer"
)

// correlationSettings returns the settings in the paper's Table VI row
// order: Lab, AT&T, T-Mobile, Verizon.
func correlationSettings() []operator.Profile {
	return []operator.Profile{operator.Lab(), operator.ATT(), operator.TMobile(), operator.Verizon()}
}

// correlationApps returns the six messaging and VoIP apps in the paper's
// column order.
func correlationApps() []appmodel.App {
	return append(appmodel.ByCategory(appmodel.Messaging), appmodel.ByCategory(appmodel.VoIP)...)
}

// SimilarityStat is one Table VI cell.
type SimilarityStat struct {
	Mean   float64
	StdDev float64
}

// TableVIResult reproduces Table VI: DTW similarity scores D(T_w, T_a) of
// communicating pairs' traffic traces, per app and setting.
type TableVIResult struct {
	Settings []string
	Apps     []string
	// Cells is indexed [setting][app].
	Cells map[string]map[string]SimilarityStat
}

// TableVIIResult reproduces Table VII: precision and recall of the
// logistic-regression contact classifier, per app and setting.
type TableVIIResult struct {
	Settings []string
	Apps     []string
	// Cells is indexed [setting][app].
	Cells map[string]map[string]metrics.BinaryCounts
}

// TableVIandVII runs the correlation-attack evaluation once and derives
// both tables from it: Table VI from the communicating pairs' similarity
// scores, Table VII from a per-setting logistic regression trained on the
// earlier pairs and tested on the later ones.
func TableVIandVII(scale Scale, seed uint64) (*TableVIResult, *TableVIIResult, error) {
	apps := correlationApps()
	vi := &TableVIResult{Cells: make(map[string]map[string]SimilarityStat)}
	vii := &TableVIIResult{Cells: make(map[string]map[string]metrics.BinaryCounts)}
	for _, a := range apps {
		vi.Apps = append(vi.Apps, a.Name)
		vii.Apps = append(vii.Apps, a.Name)
	}
	n := scale.PairsPerSetting
	trainN := n - (n+2)/3 // hold out roughly a third of pairs per label

	for si, prof := range correlationSettings() {
		vi.Settings = append(vi.Settings, prof.Name)
		vii.Settings = append(vii.Settings, prof.Name)
		vi.Cells[prof.Name] = make(map[string]SimilarityStat)
		vii.Cells[prof.Name] = make(map[string]metrics.BinaryCounts)

		// Per-app evidence: ev[app][0:n] communicating, ev[app][n:2n] not.
		evidence := make(map[string][]correlation.Evidence, len(apps))
		for ai, app := range apps {
			ev, err := correlation.CollectPairs(correlation.PairSpec{
				Profile:          prof,
				App:              app,
				Duration:         scale.PairDur,
				Seed:             seed + uint64(si+1)*15485863 + uint64(ai+1)*32452843,
				Sniffer:          sniffer.Config{CorruptProb: snifferCorruption},
				ApplyProfileLoss: true,
			}, n)
			if err != nil {
				return nil, nil, fmt.Errorf("experiments: table VI/VII %s/%s: %w", prof.Name, app.Name, err)
			}
			evidence[app.Name] = ev
			vi.Cells[prof.Name][app.Name] = similarityStat(ev[:n])
		}

		// Table VII: one contact model per setting, trained on the first
		// trainN pairs of each label across all apps, tested on the rest.
		var train []correlation.Evidence
		for _, app := range apps {
			ev := evidence[app.Name]
			train = append(train, ev[:trainN]...)
			train = append(train, ev[n:n+trainN]...)
		}
		model, err := correlation.TrainModel(train, seed)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: table VII %s: %w", prof.Name, err)
		}
		for _, app := range apps {
			ev := evidence[app.Name]
			var bc metrics.BinaryCounts
			for _, e := range append(append([]correlation.Evidence{}, ev[trainN:n]...), ev[n+trainN:]...) {
				bc.Add(e.Communicating, model.Predict(e))
			}
			vii.Cells[prof.Name][app.Name] = bc
		}
	}
	return vi, vii, nil
}

func similarityStat(ev []correlation.Evidence) SimilarityStat {
	if len(ev) == 0 {
		return SimilarityStat{}
	}
	var sum float64
	for _, e := range ev {
		sum += e.Similarity
	}
	mean := sum / float64(len(ev))
	var variance float64
	for _, e := range ev {
		d := e.Similarity - mean
		variance += d * d
	}
	return SimilarityStat{Mean: mean, StdDev: math.Sqrt(variance / float64(len(ev)))}
}

// String renders Table VI in the paper's layout.
func (r *TableVIResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table VI: DTW similarity D(T_w, T_a) of communicating pairs (mean / std-dev)\n")
	fmt.Fprintf(&b, "%-10s", "")
	for _, app := range r.Apps {
		fmt.Fprintf(&b, " | %-15s", app)
	}
	fmt.Fprintln(&b)
	for _, s := range r.Settings {
		fmt.Fprintf(&b, "%-10s", s)
		for _, app := range r.Apps {
			c := r.Cells[s][app]
			fmt.Fprintf(&b, " | %6.3f / %5.3f", c.Mean, c.StdDev)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// String renders Table VII in the paper's layout.
func (r *TableVIIResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table VII: contact-detection precision / recall (logistic regression)\n")
	fmt.Fprintf(&b, "%-10s", "")
	for _, app := range r.Apps {
		fmt.Fprintf(&b, " | %-15s", app)
	}
	fmt.Fprintln(&b)
	for _, s := range r.Settings {
		fmt.Fprintf(&b, "%-10s", s)
		for _, app := range r.Apps {
			c := r.Cells[s][app]
			fmt.Fprintf(&b, " | %6.3f / %5.3f", c.Precision(), c.Recall())
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}
