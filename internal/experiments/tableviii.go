package experiments

import (
	"fmt"
	"strings"

	"ltefp/internal/appmodel"
	"ltefp/internal/attack/fingerprint"
	"ltefp/internal/features"
	"ltefp/internal/lte/operator"
	"ltefp/internal/ml/cnn"
	"ltefp/internal/ml/dataset"
	"ltefp/internal/ml/forest"
	"ltefp/internal/ml/knn"
	"ltefp/internal/ml/logreg"
	"ltefp/internal/ml/metrics"
	"ltefp/internal/sim"
	"ltefp/internal/sniffer"
)

// Algorithm names in the paper's Table VIII column order.
const (
	AlgLR  = "LR"
	AlgKNN = "kNN"
	AlgCNN = "CNN"
	AlgRF  = "RF"
)

// Algorithms lists the benchmark columns in paper order.
func Algorithms() []string { return []string{AlgLR, AlgKNN, AlgCNN, AlgRF} }

// TableVIIIResult reproduces Table VIII: per-category accuracy of the four
// candidate learners on a mixed real-world dataset, with Random Forest
// expected to lead.
type TableVIIIResult struct {
	// PerClass is indexed [algorithm][category name].
	PerClass map[string]map[string]float64
	// Average is the support-weighted average accuracy per algorithm.
	Average map[string]float64
	// ClassCounts reports the mixed dataset's class sizes (the paper mixes
	// Streaming 265,599 / Calling 109,692 / Messenger 38,333 — streaming-
	// heavy, messaging-light; our natural window counts share that skew).
	ClassCounts map[string]int
	// Params echoes each algorithm's hyperparameters.
	Params map[string]string
}

// TableVIII benchmarks the four learners on a 3-category dataset built
// from the T-Mobile (real-world) campaign — apps of all three classes
// mixed into one corpus, split 80/20 as in the paper. The comparison's
// reproduction target is the ordering (RF first, CNN last); see
// EXPERIMENTS.md for why the absolute accuracies sit above the paper's.
func TableVIII(scale Scale, seed uint64) (*TableVIIIResult, error) {
	prof := operator.TMobile()
	cats := appmodel.Categories()
	catNames := make([]string, len(cats))
	for i, c := range cats {
		catNames[i] = c.String()
	}
	// Campaigns run in parallel; rows are appended serially in app order so
	// the dataset layout matches the serial runner's exactly.
	apps := appmodel.Apps()
	collected := make([][][]float64, len(apps))
	err := forEach(len(apps), func(ai int) error {
		app := apps[ai]
		sessions, dur := scale.sessionsFor(app)
		vecs, err := fingerprint.Collect(fingerprint.CollectSpec{
			Profile:          prof,
			App:              app,
			Sessions:         sessions,
			SessionDur:       dur,
			Seed:             seed + 2749 + uint64(ai+1)*7919,
			Sniffer:          sniffer.Config{CorruptProb: snifferCorruption, DownlinkOnly: true},
			ApplyProfileLoss: true,
			Population:       scale.Population,
			Metrics:          pipelineScope(),
		})
		if err != nil {
			return fmt.Errorf("experiments: table VIII: %s: %w", app.Name, err)
		}
		collected[ai] = vecs
		return nil
	})
	if err != nil {
		return nil, err
	}
	ds := dataset.New(catNames, features.Names())
	for ai, app := range apps {
		y := 0
		for i, c := range cats {
			if c == app.Category {
				y = i
			}
		}
		ds.AddAll(collected[ai], y)
	}
	rng := sim.NewRNG(seed + 5381)
	train, test := ds.Split(0.8, rng)

	res := &TableVIIIResult{
		PerClass:    make(map[string]map[string]float64),
		Average:     make(map[string]float64),
		ClassCounts: make(map[string]int),
		Params: map[string]string{
			AlgLR:  "C = 1",
			AlgKNN: "k = 4",
			AlgCNN: "classes = 3, loss = softmax cross-entropy",
			AlgRF:  "trees = 100, seed = 1",
		},
	}
	for i, c := range ds.ClassCounts() {
		res.ClassCounts[catNames[i]] = c
	}

	// kNN memorises the training set; cap it so prediction stays tractable
	// at full scale without changing the comparison's shape. The sample is
	// drawn before the parallel cells so the rng stream stays in serial
	// order.
	knnTrain := train.SamplePerClass(3000, rng)

	evalPredict := func(predict func(x []float64) int) *metrics.Confusion {
		conf := metrics.NewConfusion(catNames)
		for i, x := range test.X {
			conf.Add(test.Y[i], predict(x))
		}
		return conf
	}
	type cell struct {
		name string
		run  func() (*metrics.Confusion, error)
	}
	cells := []cell{
		{AlgLR, func() (*metrics.Confusion, error) {
			m, err := logreg.Train(train, logreg.Config{C: 1, Seed: seed})
			if err != nil {
				return nil, fmt.Errorf("experiments: table VIII LR: %w", err)
			}
			return evalPredict(m.Predict), nil
		}},
		{AlgKNN, func() (*metrics.Confusion, error) {
			m, err := knn.Train(knnTrain, 4)
			if err != nil {
				return nil, fmt.Errorf("experiments: table VIII kNN: %w", err)
			}
			return evalPredict(m.Predict), nil
		}},
		{AlgCNN, func() (*metrics.Confusion, error) {
			m, err := cnn.Train(train, cnn.Config{Seed: seed})
			if err != nil {
				return nil, fmt.Errorf("experiments: table VIII CNN: %w", err)
			}
			return evalPredict(m.Predict), nil
		}},
		{AlgRF, func() (*metrics.Confusion, error) {
			m, err := forest.Train(train, forestConfig(1))
			if err != nil {
				return nil, fmt.Errorf("experiments: table VIII RF: %w", err)
			}
			conf := metrics.NewConfusion(catNames)
			for i, p := range m.PredictBatch(test.X) {
				conf.Add(test.Y[i], p)
			}
			return conf, nil
		}},
	}
	confs := make([]*metrics.Confusion, len(cells))
	err = forEach(len(cells), func(i int) error {
		conf, err := cells[i].run()
		if err != nil {
			return err
		}
		confs[i] = conf
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		conf := confs[i]
		per := make(map[string]float64, len(catNames))
		for ci, cn := range catNames {
			per[cn] = conf.Recall(ci) // per-class accuracy
		}
		res.PerClass[c.name] = per
		res.Average[c.name] = conf.Accuracy()
	}
	return res, nil
}

// String renders the table in the paper's layout.
func (r *TableVIIIResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table VIII: performance comparison of learning algorithms (weighted accuracy)\n")
	fmt.Fprintf(&b, "%-12s", "Class")
	for _, a := range Algorithms() {
		fmt.Fprintf(&b, " %8s", a)
	}
	fmt.Fprintln(&b)
	for _, cat := range appmodel.Categories() {
		fmt.Fprintf(&b, "%-12s", cat)
		for _, a := range Algorithms() {
			fmt.Fprintf(&b, " %8.3f", r.PerClass[a][cat.String()])
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "%-12s", "Average")
	for _, a := range Algorithms() {
		fmt.Fprintf(&b, " %8.3f", r.Average[a])
	}
	fmt.Fprintln(&b)
	for _, a := range Algorithms() {
		fmt.Fprintf(&b, "  %s: %s\n", a, r.Params[a])
	}
	fmt.Fprintf(&b, "  dataset class counts:")
	for _, cat := range appmodel.Categories() {
		fmt.Fprintf(&b, " %s %d", cat, r.ClassCounts[cat.String()])
	}
	fmt.Fprintln(&b)
	return b.String()
}
