package experiments

import (
	"fmt"
	"strings"

	"ltefp/internal/appmodel"
	"ltefp/internal/attack/fingerprint"
	"ltefp/internal/features"
	"ltefp/internal/lte/operator"
	"ltefp/internal/ml/cnn"
	"ltefp/internal/ml/dataset"
	"ltefp/internal/ml/forest"
	"ltefp/internal/ml/knn"
	"ltefp/internal/ml/logreg"
	"ltefp/internal/ml/metrics"
	"ltefp/internal/sim"
	"ltefp/internal/sniffer"
)

// Algorithm names in the paper's Table VIII column order.
const (
	AlgLR  = "LR"
	AlgKNN = "kNN"
	AlgCNN = "CNN"
	AlgRF  = "RF"
)

// Algorithms lists the benchmark columns in paper order.
func Algorithms() []string { return []string{AlgLR, AlgKNN, AlgCNN, AlgRF} }

// TableVIIIResult reproduces Table VIII: per-category accuracy of the four
// candidate learners on a mixed real-world dataset, with Random Forest
// expected to lead.
type TableVIIIResult struct {
	// PerClass is indexed [algorithm][category name].
	PerClass map[string]map[string]float64
	// Average is the support-weighted average accuracy per algorithm.
	Average map[string]float64
	// ClassCounts reports the mixed dataset's class sizes (the paper mixes
	// Streaming 265,599 / Calling 109,692 / Messenger 38,333 — streaming-
	// heavy, messaging-light; our natural window counts share that skew).
	ClassCounts map[string]int
	// Params echoes each algorithm's hyperparameters.
	Params map[string]string
}

// TableVIII benchmarks the four learners on a 3-category dataset built
// from the T-Mobile (real-world) campaign — apps of all three classes
// mixed into one corpus, split 80/20 as in the paper. The comparison's
// reproduction target is the ordering (RF first, CNN last); see
// EXPERIMENTS.md for why the absolute accuracies sit above the paper's.
func TableVIII(scale Scale, seed uint64) (*TableVIIIResult, error) {
	prof := operator.TMobile()
	cats := appmodel.Categories()
	catNames := make([]string, len(cats))
	for i, c := range cats {
		catNames[i] = c.String()
	}
	ds := dataset.New(catNames, features.Names())
	for ai, app := range appmodel.Apps() {
		sessions, dur := scale.sessionsFor(app)
		vecs, err := fingerprint.Collect(fingerprint.CollectSpec{
			Profile:          prof,
			App:              app,
			Sessions:         sessions,
			SessionDur:       dur,
			Seed:             seed + 2749 + uint64(ai+1)*7919,
			Sniffer:          sniffer.Config{CorruptProb: snifferCorruption, DownlinkOnly: true},
			ApplyProfileLoss: true,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: table VIII: %s: %w", app.Name, err)
		}
		y := 0
		for i, c := range cats {
			if c == app.Category {
				y = i
			}
		}
		ds.AddAll(vecs, y)
	}
	rng := sim.NewRNG(seed + 5381)
	train, test := ds.Split(0.8, rng)

	res := &TableVIIIResult{
		PerClass:    make(map[string]map[string]float64),
		Average:     make(map[string]float64),
		ClassCounts: make(map[string]int),
		Params: map[string]string{
			AlgLR:  "C = 1",
			AlgKNN: "k = 4",
			AlgCNN: "classes = 3, loss = softmax cross-entropy",
			AlgRF:  "trees = 100, seed = 1",
		},
	}
	for i, c := range ds.ClassCounts() {
		res.ClassCounts[catNames[i]] = c
	}

	type learner struct {
		name    string
		predict func(x []float64) int
	}
	var learners []learner

	lrModel, err := logreg.Train(train, logreg.Config{C: 1, Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("experiments: table VIII LR: %w", err)
	}
	learners = append(learners, learner{AlgLR, lrModel.Predict})

	// kNN memorises the training set; cap it so prediction stays tractable
	// at full scale without changing the comparison's shape.
	knnTrain := train.SamplePerClass(3000, rng)
	knnModel, err := knn.Train(knnTrain, 4)
	if err != nil {
		return nil, fmt.Errorf("experiments: table VIII kNN: %w", err)
	}
	learners = append(learners, learner{AlgKNN, knnModel.Predict})

	cnnModel, err := cnn.Train(train, cnn.Config{Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("experiments: table VIII CNN: %w", err)
	}
	learners = append(learners, learner{AlgCNN, cnnModel.Predict})

	rfModel, err := forest.Train(train, forestConfig(1))
	if err != nil {
		return nil, fmt.Errorf("experiments: table VIII RF: %w", err)
	}
	learners = append(learners, learner{AlgRF, rfModel.Predict})

	for _, l := range learners {
		conf := metrics.NewConfusion(catNames)
		for i, x := range test.X {
			conf.Add(test.Y[i], l.predict(x))
		}
		per := make(map[string]float64, len(catNames))
		for ci, cn := range catNames {
			per[cn] = conf.Recall(ci) // per-class accuracy
		}
		res.PerClass[l.name] = per
		res.Average[l.name] = conf.Accuracy()
	}
	return res, nil
}

// String renders the table in the paper's layout.
func (r *TableVIIIResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table VIII: performance comparison of learning algorithms (weighted accuracy)\n")
	fmt.Fprintf(&b, "%-12s", "Class")
	for _, a := range Algorithms() {
		fmt.Fprintf(&b, " %8s", a)
	}
	fmt.Fprintln(&b)
	for _, cat := range appmodel.Categories() {
		fmt.Fprintf(&b, "%-12s", cat)
		for _, a := range Algorithms() {
			fmt.Fprintf(&b, " %8.3f", r.PerClass[a][cat.String()])
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "%-12s", "Average")
	for _, a := range Algorithms() {
		fmt.Fprintf(&b, " %8.3f", r.Average[a])
	}
	fmt.Fprintln(&b)
	for _, a := range Algorithms() {
		fmt.Fprintf(&b, "  %s: %s\n", a, r.Params[a])
	}
	fmt.Fprintf(&b, "  dataset class counts:")
	for _, cat := range appmodel.Categories() {
		fmt.Fprintf(&b, " %s %d", cat, r.ClassCounts[cat.String()])
	}
	fmt.Fprintln(&b)
	return b.String()
}
