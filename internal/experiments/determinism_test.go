package experiments

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"ltefp/internal/capture"
	"ltefp/internal/obs"
)

// tinyScale is the smallest campaign that still exercises every app
// category, sized so the serial/parallel comparison stays fast.
func tinyScale() Scale {
	return Scale{
		Name:            "tiny",
		StreamSessions:  2,
		VoipSessions:    2,
		MsgSessions:     3,
		StreamDur:       15 * time.Second,
		VoipDur:         15 * time.Second,
		MsgDur:          20 * time.Second,
		PairsPerSetting: 2,
		PairDur:         20 * time.Second,
		Fig8Days:        3,
		Fig8Step:        2,
		HistoryFactor:   0.2,
	}
}

// TestTableIIISerialParallelIdentical proves the parallel runner is
// byte-identical to serial execution: every cell derives its own seed, so
// the worker schedule must not be able to influence any metric.
func TestTableIIISerialParallelIdentical(t *testing.T) {
	capture.ResetCache()
	restore := SetWorkers(1)
	serial, err := TableIII(tinyScale(), 3)
	restore()
	if err != nil {
		t.Fatal(err)
	}
	// Drop the memoized captures so the parallel run actually re-simulates;
	// otherwise it would just re-read the serial run's cached captures and
	// the comparison would prove nothing about the worker schedule.
	capture.ResetCache()
	restore = SetWorkers(8)
	parallel, err := TableIII(tinyScale(), 3)
	restore()
	if err != nil {
		t.Fatal(err)
	}
	if s, p := serial.String(), parallel.String(); s != p {
		t.Errorf("parallel Table III diverged from serial:\nserial:\n%s\nparallel:\n%s", s, p)
	}
}

// TestTableIIIQuickGolden pins the Quick-scale Table III output to the
// rendering recorded from the pre-overhaul serial implementation — the
// end-to-end determinism guarantee over collection, training, and batched
// evaluation. Regenerate testdata/tableiii_quick_seed1.golden only for an
// intentional semantic change.
func TestTableIIIQuickGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("quick-scale table III takes several seconds; skipped with -short")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "tableiii_quick_seed1.golden"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := TableIII(Quick(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.String(); got != string(want) {
		t.Errorf("Table III (quick, seed 1) diverged from golden output:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestMetricsDoNotChangeOutput proves instrumentation is observation-only:
// running the golden experiment with a live registry must not change a
// single output byte, while the registry itself must show the pipeline was
// actually measured (counters at zero would mean the instrumentation is
// dead code, not that it is free).
func TestMetricsDoNotChangeOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("quick-scale table III takes several seconds; skipped with -short")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "tableiii_quick_seed1.golden"))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	SetMetrics(reg)
	defer SetMetrics(nil)
	res, err := TableIII(Quick(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.String(); got != string(want) {
		t.Errorf("live metrics registry changed Table III output:\ngot:\n%s\nwant:\n%s", got, want)
	}
	snap := reg.Snapshot()
	for _, name := range []string{
		"pipeline.cell1.sniffer.candidates",
		"pipeline.cell1.sniffer.records",
		"pipeline.cell1.enb.grants_dl",
		"pipeline.forest.rows_trained",
		"pipeline.forest.rows_predicted",
		"pipeline.workers.tasks",
	} {
		if snap.Counter(name) == 0 {
			t.Errorf("metrics enabled but %s stayed zero", name)
		}
	}
	if h, ok := snap.Histogram("pipeline.workers.task_ms"); !ok || h.Count == 0 {
		t.Error("worker-pool wall-time histogram recorded nothing")
	}
}
