package experiments

import (
	"strings"
	"testing"
	"time"

	"ltefp/internal/appmodel"
	"ltefp/internal/attack/history"
	"ltefp/internal/ml/metrics"
)

func TestTableIIIRender(t *testing.T) {
	res := &TableIIIResult{Confusions: map[Variant]*metrics.Confusion{}}
	res.Rows = append(res.Rows, TableIIIRow{
		App:      "Netflix",
		Category: appmodel.Streaming,
		Cells: map[Variant]PRF{
			DownUp: {Precision: 0.99, Recall: 0.98, F1: 0.985},
			Down:   {Precision: 0.99, Recall: 0.98, F1: 0.985},
			Up:     {Precision: 0.70, Recall: 0.60, F1: 0.65},
		},
	})
	s := res.String()
	for _, want := range []string{"Netflix", "Down+Up", "0.985", "0.650"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table III render missing %q:\n%s", want, s)
		}
	}
}

func TestTableIVRender(t *testing.T) {
	res := &TableIVResult{
		Carriers:   []string{"Verizon"},
		Confusions: map[string]*metrics.Confusion{},
	}
	res.Rows = append(res.Rows, TableIVRow{
		App:      "Telegram",
		Category: appmodel.Messaging,
		Cells:    map[string]PRF{"Verizon": {Precision: 0.75, Recall: 0.74, F1: 0.745}},
	})
	s := res.String()
	for _, want := range []string{"Telegram", "Verizon", "0.745", "downlink only"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table IV render missing %q:\n%s", want, s)
		}
	}
}

func TestTableVRender(t *testing.T) {
	res := &TableVResult{Attack: &history.Result{
		Attempts: []history.Attempt{{
			Zone: 2, Day: 3, TrueApp: "Skype", TrueCategory: appmodel.VoIP,
			Predicted: "Skype", Confidence: 0.93, Correct: true, Stable: true,
		}},
		Successes: 1,
	}}
	s := res.String()
	for _, want := range []string{"Table V", "Zone B'", "Skype", "100%"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table V render missing %q:\n%s", want, s)
		}
	}
}

func TestSimilarityTablesRender(t *testing.T) {
	vi := &TableVIResult{
		Settings: []string{"Lab"},
		Apps:     []string{"Skype"},
		Cells: map[string]map[string]SimilarityStat{
			"Lab": {"Skype": {Mean: 0.93, StdDev: 0.12}},
		},
	}
	if s := vi.String(); !strings.Contains(s, "0.930 / 0.120") {
		t.Errorf("Table VI render:\n%s", s)
	}
	var bc metrics.BinaryCounts
	bc.Add(true, true)
	vii := &TableVIIResult{
		Settings: []string{"Lab"},
		Apps:     []string{"Skype"},
		Cells:    map[string]map[string]metrics.BinaryCounts{"Lab": {"Skype": bc}},
	}
	if s := vii.String(); !strings.Contains(s, "1.000 / 1.000") {
		t.Errorf("Table VII render:\n%s", s)
	}
}

func TestFigureRenders(t *testing.T) {
	f8 := &Figure8Result{Points: []Figure8Point{{Day: 1, F1: 0.9}, {Day: 7, F1: 0.6}}}
	if d := f8.CrossedBelow(0.7); d != 7 {
		t.Fatalf("CrossedBelow = %d", d)
	}
	if s := f8.String(); !strings.Contains(s, "crossed the 70%") {
		t.Errorf("Figure 8 render:\n%s", s)
	}
	f8up := &Figure8Result{Points: []Figure8Point{{Day: 1, F1: 0.9}}}
	if d := f8up.CrossedBelow(0.7); d != 0 {
		t.Fatalf("uncrossed CrossedBelow = %d", d)
	}
	f9 := &Figure9Result{Points: []Figure9Point{{BackgroundApps: 5, Instances: 100, F1: 0.5}}}
	if s := f9.String(); !strings.Contains(s, "noise traffic") {
		t.Errorf("Figure 9 render:\n%s", s)
	}
}

func TestSweepHelpers(t *testing.T) {
	ws := &WindowSweepResult{Points: []WindowSweepPoint{
		{Window: 50 * time.Millisecond, WeightedF1: 0.8},
		{Window: 100 * time.Millisecond, WeightedF1: 0.9},
	}}
	if ws.Best().Window != 100*time.Millisecond {
		t.Fatal("Best() picked the wrong window")
	}
	tw := &TwSweepResult{App: "Skype", Points: []TwSweepPoint{
		{Tw: time.Second, Communicating: 0.9, Independent: 0.5},
		{Tw: 2 * time.Second, Communicating: 0.95, Independent: 0.4},
	}}
	if tw.BestTw() != 2*time.Second {
		t.Fatal("BestTw() picked the wrong window")
	}
	if s := tw.String(); !strings.Contains(s, "<- best") {
		t.Errorf("Tw sweep render:\n%s", s)
	}
}

func TestDefenseAndConcealmentRenders(t *testing.T) {
	d := &DefensesResult{Rows: []DefenseRow{
		{Name: "no defense", WeightedF1: 0.87, Windows: 100, AttributionRatio: 1},
		{Name: "refresh", WeightedF1: 0.7, Windows: 7, AttributionRatio: 0.07},
	}}
	if s := d.String(); !strings.Contains(s, "refresh") || !strings.Contains(s, "7.0%") {
		t.Errorf("defenses render:\n%s", s)
	}
	c := &ConcealmentResult{Rows: []ConcealmentRow{
		{Name: "LTE", Bindings: 10, AttributedFraction: 1},
		{Name: "5G", Bindings: 0, AttributedFraction: 0},
	}}
	if s := c.String(); !strings.Contains(s, "SUCI") {
		t.Errorf("concealment render:\n%s", s)
	}
}
