package experiments

import (
	"fmt"
	"time"

	"ltefp/internal/appmodel"
	"ltefp/internal/attack/fingerprint"
	"ltefp/internal/attack/history"
	"ltefp/internal/lte/operator"
	"ltefp/internal/sniffer"
)

// TableVResult reproduces Table V: the history attack over three zones and
// three days on the T-Mobile profile, 12 attempts, with the paper
// reporting a 10/12 = 83% success rate.
type TableVResult struct {
	Attack *history.Result
}

// itineraryEntry is one ground-truth victim activity for Table V.
type itineraryEntry struct {
	zone    int
	day     int
	app     string
	minutes float64
}

// tableVItinerary mirrors the paper's Table V: 12 sessions over 3 days in
// zones A', B', C', each 5–10 minutes, covering all three categories.
// Attack days are shortly after the training day, so drift is mild.
var tableVItinerary = []itineraryEntry{
	{1, 2, "Netflix", 6},
	{2, 2, "Telegram", 5.25},
	{3, 2, "WhatsApp Call", 8},
	{1, 2, "YouTube", 10},
	{2, 2, "Facebook", 5.75},
	{1, 3, "WhatsApp Call", 6},
	{2, 3, "WhatsApp", 6},
	{3, 3, "Amazon Prime", 6},
	{1, 4, "YouTube", 9.75},
	{2, 4, "Skype", 7.25},
	{1, 4, "Facebook", 6.25},
	{1, 4, "Netflix", 6.5},
}

// TableV trains the fingerprinting classifier on day-1 T-Mobile data and
// runs the multi-zone history attack over the Table V itinerary.
func TableV(scale Scale, seed uint64) (*TableVResult, error) {
	prof := operator.TMobile()
	cfg := sniffer.Config{CorruptProb: snifferCorruption}

	data, err := collectSetting(prof, scale, 1, seed+31337, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: table V training: %w", err)
	}
	clf, err := buildAllDataClassifier(data, seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: table V training: %w", err)
	}

	factor := scale.HistoryFactor
	if factor <= 0 {
		factor = 1
	}
	var sessions []history.ZoneSession
	dayClock := make(map[int]time.Duration)
	for _, e := range tableVItinerary {
		app, err := appmodel.ByName(e.app)
		if err != nil {
			return nil, fmt.Errorf("experiments: table V itinerary: %w", err)
		}
		start, ok := dayClock[e.day]
		if !ok {
			start = 2 * time.Second
		}
		dur := time.Duration(e.minutes * factor * float64(time.Minute))
		sessions = append(sessions, history.ZoneSession{
			Zone:     e.zone,
			Day:      e.day,
			Start:    start,
			Duration: dur,
			App:      app,
		})
		// The victim travels between zones for a while before the next
		// session; the gap also lets the RRC connection drop, so each
		// zone entry re-establishes (and re-exposes) identity.
		dayClock[e.day] = start + dur + 45*time.Second
	}

	res, err := history.Run(clf, history.Config{
		Profile:          prof,
		Zones:            []int{1, 2, 3},
		Sessions:         sessions,
		Seed:             seed + 424243,
		Sniffer:          cfg,
		ApplyProfileLoss: true,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: table V: %w", err)
	}
	return &TableVResult{Attack: res}, nil
}

// buildAllDataClassifier trains on every collected window (no hold-out):
// the history attack's test data is the separate roaming capture.
func buildAllDataClassifier(data []appData, seed uint64) (*fingerprint.Classifier, error) {
	ts := fingerprint.NewTrainingSet()
	for _, d := range data {
		var all [][]float64
		for _, s := range d.sessions {
			all = append(all, s...)
		}
		if err := ts.Add(d.app.Name, all); err != nil {
			return nil, err
		}
	}
	return fingerprint.Train(ts, fingerprint.Config{Forest: forestConfig(seed)})
}

// String renders the attack log in the paper's Table V layout.
func (r *TableVResult) String() string {
	return "Table V: history attack (T-Mobile, 3 zones, 3 days)\n" + r.Attack.String()
}
