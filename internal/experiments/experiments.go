// Package experiments regenerates every table and figure of the paper's
// evaluation (§VII–§VIII): one runner per artefact, each returning a typed
// result with a text renderer that mirrors the paper's layout. The runners
// are deterministic in their seed; the bench harness (bench_test.go) and
// the lteexperiments command are thin wrappers around them.
//
// Each runner accepts a Scale that trades experiment size for runtime:
// Quick for CI-sized runs, Full for paper-sized ones. The *shape* of every
// result — who wins, by roughly what factor, where thresholds are crossed —
// is stable across scales; absolute precision improves with Full.
package experiments

import (
	"fmt"
	"hash/fnv"
	"time"

	"ltefp/internal/appmodel"
	"ltefp/internal/artifact"
	"ltefp/internal/attack/fingerprint"
	"ltefp/internal/lte/operator"
	"ltefp/internal/ml/metrics"
	"ltefp/internal/sim"
	"ltefp/internal/sniffer"
	"ltefp/internal/trace"
)

// Scale sizes the data-collection campaigns behind the experiments.
type Scale struct {
	// Name labels the scale in output.
	Name string

	// StreamSessions/VoipSessions/MsgSessions are traces per app; the
	// bursty messengers need more, shorter-yield sessions.
	StreamSessions int
	VoipSessions   int
	MsgSessions    int
	// StreamDur/VoipDur/MsgDur are per-trace durations.
	StreamDur time.Duration
	VoipDur   time.Duration
	MsgDur    time.Duration

	// PairsPerSetting is the communicating-pair count per app and network
	// for the correlation tables (the paper uses 10).
	PairsPerSetting int
	// PairDur is the conversation length per pair.
	PairDur time.Duration

	// Fig8Days is the drift horizon (the paper measures 20 days).
	Fig8Days int
	// Fig8Step is the day stride when sweeping the horizon.
	Fig8Step int

	// HistoryFactor scales the Table V itinerary's 5–10 minute session
	// durations (1.0 reproduces the paper's timings).
	HistoryFactor float64

	// Population attaches this many mostly-idle background UEs to every
	// capture cell (~1% concurrently active), so campaigns measure the
	// attack against metro-scale crowded cells. Zero keeps the historical
	// behaviour (profile ambient users only).
	Population int
}

// Quick returns a CI-sized scale: every experiment shape in minutes.
func Quick() Scale {
	return Scale{
		Name:            "quick",
		StreamSessions:  4,
		VoipSessions:    4,
		MsgSessions:     12,
		StreamDur:       60 * time.Second,
		VoipDur:         60 * time.Second,
		MsgDur:          120 * time.Second,
		PairsPerSetting: 6,
		PairDur:         75 * time.Second,
		Fig8Days:        13,
		Fig8Step:        3,
		HistoryFactor:   0.4,
	}
}

// Full returns the paper-sized scale.
func Full() Scale {
	return Scale{
		Name:            "full",
		StreamSessions:  8,
		VoipSessions:    8,
		MsgSessions:     24,
		StreamDur:       90 * time.Second,
		VoipDur:         90 * time.Second,
		MsgDur:          180 * time.Second,
		PairsPerSetting: 10,
		PairDur:         120 * time.Second,
		Fig8Days:        20,
		Fig8Step:        1,
		HistoryFactor:   1.0,
	}
}

// sessionsFor returns the campaign sizing for one app under a scale.
func (s Scale) sessionsFor(a appmodel.App) (sessions int, dur time.Duration) {
	switch a.Category {
	case appmodel.Streaming:
		return s.StreamSessions, s.StreamDur
	case appmodel.Messaging:
		return s.MsgSessions, s.MsgDur
	default:
		return s.VoipSessions, s.VoipDur
	}
}

// PRF is one precision/recall/F-score cell.
type PRF struct {
	Precision float64
	Recall    float64
	F1        float64
}

// prfFor extracts an app's row from a confusion matrix.
func prfFor(conf *metrics.Confusion, class int) PRF {
	return PRF{
		Precision: conf.Precision(class),
		Recall:    conf.Recall(class),
		F1:        conf.F1(class),
	}
}

// snifferCorruption is the baseline decode-corruption rate applied in
// every capture: blind PDCCH decoding always yields a trickle of bogus
// candidates that the plausibility filter must remove.
const snifferCorruption = 0.002

// appData holds one app's windows split by session for one setting.
type appData struct {
	app      appmodel.App
	sessions [][][]float64 // [session][window][feature]
}

// trainTest splits an app's windows 80/20 following the paper's protocol
// ("Splitting of the dataset: 80% training, 20% testing" — an instance-
// level split, not a session-level one). The shuffle is deterministic per
// app so results are reproducible.
func (d appData) trainTest() (train, test [][]float64) {
	var all [][]float64
	for _, s := range d.sessions {
		all = append(all, s...)
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(d.app.Name))
	rng := sim.NewRNG(h.Sum64())
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	cut := len(all) * 4 / 5
	if cut < 1 && len(all) > 1 {
		cut = 1
	}
	return all[:cut], all[cut:]
}

// collectAppTraces records one campaign per app, fanning the individual
// session captures out over the experiment worker pool as one flat
// (app, session) task list. The runners' outer loops previously handed a
// whole campaign to fingerprint's own goroutine pool, stacking two layers
// of GOMAXPROCS-wide parallelism; flattening keeps generation parallel
// while bounding it to the one shared pool. Results are index-addressed,
// so output is independent of the worker schedule.
func collectAppTraces(label string, apps []appmodel.App, specFor func(i int) fingerprint.CollectSpec) ([][]trace.Trace, error) {
	specs := make([]fingerprint.CollectSpec, len(apps))
	out := make([][]trace.Trace, len(apps))
	type task struct{ app, session int }
	var tasks []task
	for i := range apps {
		specs[i] = specFor(i)
		out[i] = make([]trace.Trace, specs[i].Sessions)
		for j := 0; j < specs[i].Sessions; j++ {
			tasks = append(tasks, task{app: i, session: j})
		}
	}
	err := forEach(len(tasks), func(k int) error {
		t := tasks[k]
		tr, err := fingerprint.CollectTrace(specs[t.app], t.session)
		if err != nil {
			return fmt.Errorf("experiments: %s: %s session %d: %w", label, apps[t.app].Name, t.session, err)
		}
		out[t.app][t.session] = tr
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// collectSetting records the full nine-app campaign for one network
// setting and sniffer configuration, as a cached dataset artifact.
func collectSetting(profile operator.Profile, scale Scale, day int, seed uint64, cfg sniffer.Config) ([]appData, error) {
	return collectDataset("collecting on "+profile.Name, profile, scale, day, seed, cfg, fingerprint.AllDirections)
}

// buildClassifier trains the hierarchical classifier on the training halves
// of a setting's data and returns it with the held-out test windows.
// Training goes through the artifact store (keyed on the training content
// and forest configuration) except on metrics-enabled runs, whose forest
// counters must reflect real training work.
func buildClassifier(data []appData, seed uint64) (*fingerprint.Classifier, map[string][][]float64, error) {
	ts := fingerprint.NewTrainingSet()
	test := make(map[string][][]float64, len(data))
	for _, d := range data {
		train, held := d.trainTest()
		if err := ts.Add(d.app.Name, train); err != nil {
			return nil, nil, err
		}
		test[d.app.Name] = held
	}
	cfg := fingerprint.Config{Forest: forestConfig(seed)}
	train := fingerprint.TrainCached
	if pipelineScope().Enabled() {
		artifact.Default.CountBypass(artifact.KindForest)
		train = fingerprint.Train
	}
	clf, err := train(ts, cfg)
	if err != nil {
		return nil, nil, err
	}
	return clf, test, nil
}
