package daemon

import (
	"reflect"
	"testing"
	"time"

	"ltefp/internal/lte/rnti"
	"ltefp/internal/stream"
)

// TestFinalsSectionRoundTrip pins the daemon.finals codec: the verdict
// summary saved at a checkpoint cut must decode back exactly, including
// users whose sessions ended long before the cut — the entries a
// restarted daemon cannot reconstruct from the stream alone.
func TestFinalsSectionRoundTrip(t *testing.T) {
	k1 := stream.Key{CellID: 1, RNTI: rnti.RNTI(0x17BE)}
	k2 := stream.Key{CellID: 1, RNTI: rnti.RNTI(0x0A61)}
	cr := &captureRun{
		lastApp: map[stream.Key]string{k1: "YouTube", k2: "Skype"},
		latest: map[stream.Key]stream.Verdict{
			k1: {At: 90 * time.Second, Key: k1, App: "YouTube", Confidence: 0.875, Windows: 40},
			k2: {At: 3 * time.Second, Key: k2, App: "Skype", Confidence: 0.5, Windows: 6},
		},
		order: []stream.Key{k2, k1},
	}
	b := cr.encodeFinals()
	lastApp, latest, order, err := decodeFinals(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lastApp, cr.lastApp) {
		t.Errorf("lastApp mismatch: %v != %v", lastApp, cr.lastApp)
	}
	if !reflect.DeepEqual(latest, cr.latest) {
		t.Errorf("latest mismatch: %v != %v", latest, cr.latest)
	}
	if !reflect.DeepEqual(order, cr.order) {
		t.Errorf("order mismatch: %v != %v", order, cr.order)
	}

	// An empty summary (checkpoint before the first verdict) must
	// round-trip to empty maps and a nil order.
	empty := &captureRun{
		lastApp: map[stream.Key]string{},
		latest:  map[stream.Key]stream.Verdict{},
	}
	lastApp, latest, order, err = decodeFinals(empty.encodeFinals())
	if err != nil {
		t.Fatal(err)
	}
	if len(lastApp) != 0 || len(latest) != 0 || order != nil {
		t.Errorf("empty summary decoded to %v / %v / %v", lastApp, latest, order)
	}
}

// TestFinalsSectionRejectsDamage pins that truncated payloads error out
// instead of yielding a silently shorter summary.
func TestFinalsSectionRejectsDamage(t *testing.T) {
	k := stream.Key{CellID: 1, RNTI: rnti.RNTI(0x1234)}
	cr := &captureRun{
		lastApp: map[stream.Key]string{k: "YouTube"},
		latest: map[stream.Key]stream.Verdict{
			k: {At: time.Second, Key: k, App: "YouTube", Confidence: 1, Windows: 9},
		},
		order: []stream.Key{k},
	}
	b := cr.encodeFinals()
	for cut := 1; cut < len(b); cut++ {
		if _, _, _, err := decodeFinals(b[:cut]); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded without error", cut, len(b))
		}
	}
}
