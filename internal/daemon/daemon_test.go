package daemon_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ltefp/internal/appmodel"
	"ltefp/internal/attack/fingerprint"
	"ltefp/internal/daemon"
	"ltefp/internal/lte/operator"
	"ltefp/internal/ml/forest"
	"ltefp/internal/obs"
	"ltefp/internal/sniffer"
)

// The classifier is expensive to train, so every test shares one, built
// the same way the stream package's tests do.
var (
	clfOnce sync.Once
	clf     *fingerprint.Classifier
	clfErr  error
)

func classifier(t *testing.T) *fingerprint.Classifier {
	t.Helper()
	clfOnce.Do(func() {
		ts := fingerprint.NewTrainingSet()
		for i, app := range appmodel.Apps() {
			n := 2
			if app.Category == appmodel.Messaging {
				n *= 3
			}
			vecs, err := fingerprint.Collect(fingerprint.CollectSpec{
				Profile:          operator.Lab(),
				App:              app,
				Sessions:         n,
				SessionDur:       20 * time.Second,
				Seed:             uint64(i+1) * 31,
				Sniffer:          sniffer.Config{CorruptProb: 0.002},
				ApplyProfileLoss: true,
			})
			if err != nil {
				clfErr = err
				return
			}
			if err := ts.Add(app.Name, vecs); err != nil {
				clfErr = err
				return
			}
		}
		clf, clfErr = fingerprint.Train(ts, fingerprint.Config{
			Forest: forest.Config{Trees: 20, Seed: 1},
		})
	})
	if clfErr != nil {
		t.Fatal(clfErr)
	}
	return clf
}

// testSpecs is the shared two-capture workload: different apps, different
// seeds, one cell each.
func testSpecs() []daemon.Spec {
	return []daemon.Spec{
		{Name: "alice", Network: "Lab", App: "YouTube", Duration: 12 * time.Second, Seed: 7},
		{Name: "bob", Network: "Lab", App: "Skype", Duration: 12 * time.Second, Seed: 11},
	}
}

// baseConfig assembles the shared daemon configuration.
func baseConfig(t *testing.T, dir string, out *bytes.Buffer) daemon.Config {
	return daemon.Config{
		Classifier:      classifier(t),
		Specs:           testSpecs(),
		CheckpointDir:   dir,
		CheckpointEvery: 2 * time.Second,
		Out:             &syncWriter{buf: out},
		VerboseVerdicts: true,
		Sleep:           func(context.Context, time.Duration) error { return nil },
	}
}

// syncWriter serialises concurrent writes into one buffer.
type syncWriter struct {
	mu  sync.Mutex
	buf *bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

// linesFor filters an output dump down to one capture's verdict lines
// (prefix match keeps interleaved captures separable).
func linesFor(out, name, kind string) []string {
	var got []string
	prefix := "[" + name + "] " + kind
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, prefix) {
			got = append(got, line)
		}
	}
	return got
}

// TestDaemonRunsToCompletion pins the plain path: all captures complete,
// finals are printed, checkpoints exist on disk.
func TestDaemonRunsToCompletion(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	d, err := daemon.New(baseConfig(t, dir, &out))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, spec := range testSpecs() {
		if finals := linesFor(out.String(), spec.Name, "final:"); len(finals) == 0 {
			t.Errorf("capture %s printed no final verdicts", spec.Name)
		}
		if _, err := os.Stat(filepath.Join(dir, spec.Name+".ckpt")); err != nil {
			t.Errorf("capture %s left no checkpoint: %v", spec.Name, err)
		}
	}
}

// TestDaemonCheckpointRestartConvergence is the tentpole property in
// process form: interrupt a daemon mid-capture, start a fresh daemon on
// the same checkpoint directory, and the resumed verdict stream is
// byte-identical to the corresponding suffix of an uninterrupted run —
// finals included.
func TestDaemonCheckpointRestartConvergence(t *testing.T) {
	// Reference: uninterrupted run.
	var refOut bytes.Buffer
	ref, err := daemon.New(baseConfig(t, t.TempDir(), &refOut))
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancel as soon as every capture has checkpointed.
	dir := t.TempDir()
	var cutOut bytes.Buffer
	cut, err := daemon.New(baseConfig(t, dir, &cutOut))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- cut.Run(ctx) }()
	deadline := time.After(30 * time.Second)
poll:
	for {
		ready := true
		for _, spec := range testSpecs() {
			if fi, err := os.Stat(filepath.Join(dir, spec.Name+".ckpt")); err != nil || fi.Size() == 0 {
				ready = false
			}
		}
		if ready {
			break
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			break poll // finished before we could interrupt; resume still exercises restore
		case <-deadline:
			t.Fatal("no checkpoints appeared within 30s")
		case <-time.After(2 * time.Millisecond):
		}
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("interrupted daemon did not drain")
	}

	// Resumed run: fresh daemon, same checkpoint directory.
	var resOut bytes.Buffer
	res, err := daemon.New(baseConfig(t, dir, &resOut))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	for _, spec := range testSpecs() {
		refVerdicts := linesFor(refOut.String(), spec.Name, "t=")
		resVerdicts := linesFor(resOut.String(), spec.Name, "t=")
		if len(resVerdicts) == 0 || len(resVerdicts) > len(refVerdicts) {
			t.Fatalf("%s: resumed run printed %d verdict lines, reference %d", spec.Name, len(resVerdicts), len(refVerdicts))
		}
		tail := refVerdicts[len(refVerdicts)-len(resVerdicts):]
		for i := range resVerdicts {
			if resVerdicts[i] != tail[i] {
				t.Fatalf("%s: resumed verdict line %d diverged:\n  got  %s\n  want %s",
					spec.Name, i, resVerdicts[i], tail[i])
			}
		}
		refFinals := strings.Join(linesFor(refOut.String(), spec.Name, "final:"), "\n")
		resFinals := strings.Join(linesFor(resOut.String(), spec.Name, "final:"), "\n")
		if refFinals != resFinals || refFinals == "" {
			t.Fatalf("%s: finals diverged after restore:\n--- reference\n%s\n--- resumed\n%s",
				spec.Name, refFinals, resFinals)
		}
		refDone := linesFor(refOut.String(), spec.Name, "done:")
		resDone := linesFor(resOut.String(), spec.Name, "done:")
		if len(refDone) != 1 || len(resDone) != 1 || refDone[0] != resDone[0] {
			t.Fatalf("%s: done lines diverged:\n  reference %v\n  resumed   %v", spec.Name, refDone, resDone)
		}
	}
}

// TestDaemonRejectsIncompatibleCheckpoint pins detectable rejection: a
// corrupt file and a parameter change both start fresh (with a report)
// instead of restoring wrong state.
func TestDaemonRejectsIncompatibleCheckpoint(t *testing.T) {
	dir := t.TempDir()

	// Seed the directory with garbage where a checkpoint would be.
	if err := os.WriteFile(filepath.Join(dir, "alice.ckpt"), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}

	// And a valid checkpoint for bob, written under different pipeline
	// parameters (vote horizon).
	var tmp bytes.Buffer
	pre := baseConfig(t, dir, &tmp)
	pre.VoteHorizon = 10
	d0, err := daemon.New(pre)
	if err != nil {
		t.Fatal(err)
	}
	if err := d0.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "bob.ckpt")); err != nil {
		t.Fatal("pre-run left no checkpoint for bob")
	}
	// Re-corrupt alice's file (the pre-run replaced it).
	if err := os.WriteFile(filepath.Join(dir, "alice.ckpt"), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	d, err := daemon.New(baseConfig(t, dir, &out)) // default horizon != 10
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	dump := out.String()
	if !strings.Contains(dump, "[alice] ignoring checkpoint") {
		t.Error("corrupt checkpoint was not reported as ignored")
	}
	if !strings.Contains(dump, "[bob] ignoring checkpoint") {
		t.Error("parameter-mismatched checkpoint was not reported as ignored")
	}
	for _, spec := range testSpecs() {
		if len(linesFor(dump, spec.Name, "final:")) == 0 {
			t.Errorf("capture %s did not complete after rejecting its checkpoint", spec.Name)
		}
	}
}

// TestDaemonHTTPEndpoints drives /healthz, /verdicts, and /sweep against
// a completed daemon through the extended obs debug server.
func TestDaemonHTTPEndpoints(t *testing.T) {
	var out bytes.Buffer
	cfg := baseConfig(t, t.TempDir(), &out)
	cfg.TailSpan = time.Hour // retain everything so /sweep has material
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	d, err := daemon.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	srv, err := obs.StartDebugServerWith("127.0.0.1:0", reg, d.Handlers())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr, path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d: %s", path, resp.StatusCode, buf.String())
		}
		return buf.Bytes()
	}

	var h daemon.Health
	if err := json.Unmarshal(get("/healthz"), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || len(h.Captures) != 2 {
		t.Fatalf("healthz = %+v", h)
	}
	for _, c := range h.Captures {
		if c.State != daemon.StateDone || c.Verdicts == 0 || c.CheckpointAt == 0 {
			t.Errorf("capture %s: %+v", c.Name, c)
		}
	}

	var verdicts []daemon.VerdictEntry
	if err := json.Unmarshal(get("/verdicts"), &verdicts); err != nil {
		t.Fatal(err)
	}
	if len(verdicts) == 0 {
		t.Fatal("no verdicts served")
	}
	seen := map[string]bool{}
	for _, v := range verdicts {
		seen[v.Capture] = true
		if v.App == "" || v.Windows == 0 {
			t.Errorf("verdict entry %+v", v)
		}
	}
	if !seen["alice"] || !seen["bob"] {
		t.Fatalf("verdicts cover %v, want both captures", seen)
	}

	var sw daemon.SweepResult
	if err := json.Unmarshal(get("/sweep?min=0&topk=3"), &sw); err != nil {
		t.Fatal(err)
	}
	if sw.Users < 2 {
		t.Fatalf("sweep saw %d users, want >= 2", sw.Users)
	}

	// The metrics surface carries the daemon counters.
	if !strings.Contains(string(get("/metrics")), "daemon.checkpoint_writes") {
		t.Error("daemon counters missing from /metrics")
	}
}

// TestDaemonValidation pins constructor errors.
func TestDaemonValidation(t *testing.T) {
	c := classifier(t)
	if _, err := daemon.New(daemon.Config{Specs: testSpecs()}); err == nil {
		t.Error("missing classifier accepted")
	}
	if _, err := daemon.New(daemon.Config{Classifier: c}); err == nil {
		t.Error("no captures accepted")
	}
	if _, err := daemon.New(daemon.Config{Classifier: c, Specs: []daemon.Spec{{Name: "", App: "YouTube"}}}); err == nil {
		t.Error("empty capture name accepted")
	}
	if _, err := daemon.New(daemon.Config{Classifier: c, Specs: []daemon.Spec{
		{Name: "x", App: "YouTube"}, {Name: "x", App: "Skype"},
	}}); err == nil {
		t.Error("duplicate capture names accepted")
	}
	if _, err := daemon.New(daemon.Config{Classifier: c, Specs: []daemon.Spec{{Name: "x", App: "NoSuchApp"}}}); err == nil {
		t.Error("unknown app accepted")
	}
	if _, err := daemon.New(daemon.Config{
		Classifier: c,
		Specs:      []daemon.Spec{{Name: "x", App: "YouTube"}},
		Slice:      300 * time.Millisecond, CheckpointEvery: 500 * time.Millisecond,
	}); err == nil {
		t.Error("checkpoint period off the slice grid accepted")
	}
}
