// Package daemon is the long-running attacker: many concurrent live
// captures (one simulated cell + sniffer each) feeding streaming
// classification pipelines, with rolling verdicts served over the obs
// debug HTTP surface, pipeline state periodically checkpointed to
// versioned snapshot files, and failed captures restarted from their last
// checkpoint through the resilience primitives.
//
// The daemon's recovery contract is inherited from the stream package: a
// capture restarted from a checkpoint re-simulates the deterministic
// scenario up to the checkpoint time (discarding output), restores the
// pipeline state, and then produces verdicts byte-identical to a run that
// was never interrupted — the property the e2e kill-and-restart test
// pins.
package daemon

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"ltefp/internal/appmodel"
	"ltefp/internal/attack/fingerprint"
	"ltefp/internal/capture"
	"ltefp/internal/lte/operator"
	"ltefp/internal/obs"
	"ltefp/internal/resilience"
	"ltefp/internal/sim"
	"ltefp/internal/sniffer"
	"ltefp/internal/stream"
	"ltefp/internal/trace"
)

// Spec declares one capture the daemon runs: a single-victim scenario on
// one cell, mirroring the ltesniff CLI's options.
type Spec struct {
	// Name identifies the capture: checkpoint filename, verdict-line
	// prefix, and HTTP keys. Must be unique and non-empty.
	Name string
	// Network and App name the scenario (as in ltefp.Networks/Apps).
	Network string
	App     string
	// Duration is the session length (default one minute).
	Duration time.Duration
	// Seed makes the capture reproducible.
	Seed uint64
	// Day selects the app-drift day (0/1 = training day).
	Day int
	// DownlinkOnly restricts the sniffer to the downlink channel.
	DownlinkOnly bool
	// BackgroundApps runs noise apps on the victim UE.
	BackgroundApps int
}

// baselineCorruption mirrors the capture CLI's blind-decode corruption
// floor.
const baselineCorruption = 0.002

// scenario builds the capture scenario for a spec.
func (s Spec) scenario(metrics obs.Scope) (capture.Scenario, error) {
	network := s.Network
	if network == "" {
		network = "Lab"
	}
	prof, err := operator.ByName(network)
	if err != nil {
		return capture.Scenario{}, err
	}
	app, err := appmodel.ByName(s.App)
	if err != nil {
		return capture.Scenario{}, err
	}
	dur := s.Duration
	if dur <= 0 {
		dur = time.Minute
	}
	return capture.Scenario{
		Seed:  s.Seed,
		Cells: []capture.Cell{{ID: 1, Profile: prof}},
		Sessions: []capture.Session{{
			UE:       "victim",
			CellID:   1,
			App:      app,
			Start:    500 * time.Millisecond,
			Duration: dur,
			Day:      s.Day,
		}},
		Sniffer:          sniffer.Config{CorruptProb: baselineCorruption, DownlinkOnly: s.DownlinkOnly},
		ApplyProfileLoss: true,
		Metrics:          metrics,
	}, nil
}

// Config assembles a daemon.
type Config struct {
	// Classifier is the trained hierarchy every capture classifies with
	// (required).
	Classifier *fingerprint.Classifier
	// Specs are the captures to run concurrently.
	Specs []Spec

	// CheckpointDir, when set, persists each capture's pipeline state to
	// <dir>/<name>.ckpt and resumes from it on start and after failures.
	CheckpointDir string
	// CheckpointEvery is the checkpoint period in simulated time (default
	// 5 s; requires CheckpointDir).
	CheckpointEvery time.Duration
	// Slice is the simulated time stepped per pipeline pull (default
	// 100 ms). CheckpointEvery should be a multiple of it.
	Slice time.Duration

	// VoteHorizon, MinVerdictWindows and DriftThreshold configure the
	// verdict stage (stream.Config defaults apply).
	VoteHorizon       int
	MinVerdictWindows int
	DriftThreshold    float64

	// Out receives verdict lines (one per app-change, plus finals); nil
	// discards them. Lines are prefixed with the capture name, so
	// interleaved captures stay separable.
	Out io.Writer
	// VerboseVerdicts prints every rolling verdict instead of only
	// app-changes — the e2e convergence harness turns this on.
	VerboseVerdicts bool

	// MaxRestarts bounds restarts per capture (default 5; <0 unbounded).
	MaxRestarts int
	// RestartBackoff paces restarts (default resilience.NewBackoff with
	// seed 1).
	RestartBackoff resilience.Backoff
	// Sleep replaces the restart wait (tests inject instant sleeps).
	Sleep func(ctx context.Context, d time.Duration) error

	// TailSpan is how much trailing simulated time of raw records each
	// capture retains for the /sweep endpoint (default 30 s; 0 keeps the
	// default, negative disables the tail).
	TailSpan time.Duration

	// Metrics, when non-nil, receives per-capture pipeline and sniffer
	// metrics, and is served by the debug HTTP endpoint.
	Metrics *obs.Registry
}

// withDefaults fills the documented defaults.
func (c Config) withDefaults() Config {
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 5 * time.Second
	}
	if c.Slice <= 0 {
		c.Slice = 100 * time.Millisecond
	}
	if c.MaxRestarts == 0 {
		c.MaxRestarts = 5
	}
	if c.RestartBackoff.Base == 0 {
		c.RestartBackoff = resilience.NewBackoff(sim.NewRNG(1))
	}
	if c.TailSpan == 0 {
		c.TailSpan = 30 * time.Second
	}
	return c
}

// State is a capture's lifecycle position.
type State string

// Capture states.
const (
	StatePending    State = "pending"
	StateRunning    State = "running"
	StateRestarting State = "restarting"
	StateDone       State = "done"
	StateFailed     State = "failed"
	StateStopped    State = "stopped"
)

// captureRun is one capture's mutable state.
type captureRun struct {
	spec     Spec
	scenario capture.Scenario
	ckptPath string

	mu        sync.Mutex
	state     State
	restarts  int
	lastErr   error
	stats     stream.Stats
	health    sniffer.Stats
	now       time.Duration
	ckptAt    time.Duration
	ckptSize  int64
	lastApp   map[stream.Key]string
	latest    map[stream.Key]stream.Verdict
	order     []stream.Key
	tail      map[stream.Key][]trace.Record
	restored  bool
	ckptDrops int64
}

// Daemon runs the configured captures until they complete or the context
// is cancelled.
type Daemon struct {
	cfg  Config
	caps []*captureRun

	outMu sync.Mutex

	modelSections map[string][]byte // cached encoded classifier, nil until first checkpoint use

	ckptWrites  *obs.Counter
	ckptBytes   *obs.Counter
	ckptMS      *obs.Histogram
	restartsC   *obs.Counter
	ckptRejects *obs.Counter
}

// New validates the configuration and builds the daemon.
func New(cfg Config) (*Daemon, error) {
	cfg = cfg.withDefaults()
	if cfg.Classifier == nil {
		return nil, fmt.Errorf("daemon: Classifier is required")
	}
	if len(cfg.Specs) == 0 {
		return nil, fmt.Errorf("daemon: no captures configured")
	}
	if cfg.CheckpointEvery%cfg.Slice != 0 {
		return nil, fmt.Errorf("daemon: CheckpointEvery %v is not a multiple of Slice %v", cfg.CheckpointEvery, cfg.Slice)
	}
	d := &Daemon{cfg: cfg}
	scope := cfg.Metrics.Scope("daemon")
	d.ckptWrites = scope.Counter("checkpoint_writes")
	d.ckptBytes = scope.Counter("checkpoint_bytes")
	d.ckptMS = scope.Histogram("checkpoint_write_ms", obs.LatencyBuckets())
	d.restartsC = scope.Counter("capture_restarts")
	d.ckptRejects = scope.Counter("checkpoint_rejects")
	seen := map[string]bool{}
	for _, spec := range cfg.Specs {
		if spec.Name == "" {
			return nil, fmt.Errorf("daemon: capture with empty name")
		}
		if seen[spec.Name] {
			return nil, fmt.Errorf("daemon: duplicate capture name %q", spec.Name)
		}
		seen[spec.Name] = true
		sc, err := spec.scenario(cfg.Metrics.Scope("daemon." + spec.Name + ".capture"))
		if err != nil {
			return nil, fmt.Errorf("daemon: capture %q: %w", spec.Name, err)
		}
		cr := &captureRun{
			spec:     spec,
			scenario: sc,
			state:    StatePending,
			lastApp:  map[stream.Key]string{},
			latest:   map[stream.Key]stream.Verdict{},
			tail:     map[stream.Key][]trace.Record{},
		}
		if cfg.CheckpointDir != "" {
			cr.ckptPath = checkpointPath(cfg.CheckpointDir, spec.Name)
		}
		d.caps = append(d.caps, cr)
	}
	return d, nil
}

// Run executes every capture concurrently and blocks until all complete
// (or ctx is cancelled and the pipelines drain). The returned error is
// the first capture failure, if any; cancellation alone is not an error.
func (d *Daemon) Run(ctx context.Context) error {
	var wg sync.WaitGroup
	errs := make([]error, len(d.caps))
	for i, cr := range d.caps {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = d.runCapture(ctx, cr)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runCapture supervises one capture: run, checkpoint, and on failure
// restart from the last checkpoint with backoff, up to the restart
// budget.
func (d *Daemon) runCapture(ctx context.Context, cr *captureRun) error {
	slp := d.cfg.Sleep
	if slp == nil {
		slp = func(ctx context.Context, dur time.Duration) error {
			t := time.NewTimer(dur)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	for attempt := 0; ; attempt++ {
		err := d.runOnce(ctx, cr)
		if err == nil {
			cr.setState(StateDone)
			return nil
		}
		if ctx.Err() != nil {
			cr.setState(StateStopped)
			return nil
		}
		cr.mu.Lock()
		cr.lastErr = err
		cr.restarts++
		cr.mu.Unlock()
		d.restartsC.Inc()
		if d.cfg.MaxRestarts >= 0 && attempt >= d.cfg.MaxRestarts {
			cr.setState(StateFailed)
			return fmt.Errorf("daemon: capture %q failed after %d restarts: %w", cr.spec.Name, attempt, err)
		}
		cr.setState(StateRestarting)
		d.printf("[%s] restarting after error: %v\n", cr.spec.Name, err)
		if slp(ctx, d.cfg.RestartBackoff.Delay(attempt)) != nil {
			cr.setState(StateStopped)
			return nil
		}
	}
}

// runOnce executes one pipeline run of a capture, resuming from the
// latest checkpoint when one is loadable.
func (d *Daemon) runOnce(ctx context.Context, cr *captureRun) error {
	rs := d.loadCheckpoint(cr)
	live, err := capture.NewLive(cr.scenario)
	if err != nil {
		return err
	}
	defer live.Close()

	var restore *stream.Checkpoint
	var src stream.Source = &stream.LiveSource{Live: live, Slice: d.cfg.Slice}
	if rs != nil {
		restore = rs.ck
		// Re-simulate the deterministic scenario to the checkpoint time in
		// the same slice steps, discarding output; the slice grid then
		// matches the original run's exactly.
		scratch := trace.Trace{}
		for live.Now() < restore.Now {
			if _, _, more := live.Step(scratch[:0], d.cfg.Slice); !more {
				break
			}
		}
		if live.Now() != restore.Now {
			d.ckptRejects.Inc()
			d.printf("[%s] checkpoint at %v is beyond the scenario end %v; starting fresh\n",
				cr.spec.Name, restore.Now, live.Now())
			live.Close()
			if live, err = capture.NewLive(cr.scenario); err != nil {
				return err
			}
			src = &stream.LiveSource{Live: live, Slice: d.cfg.Slice}
			restore = nil
		}
		cr.mu.Lock()
		cr.restored = restore != nil
		if restore != nil {
			// Adopt the verdict summary saved at the cut — including users
			// whose sessions ended before it, which the resumed pipeline
			// will never see again — then drop anything at or after the cut:
			// the resumed pipeline re-raises those verdicts identically.
			cr.lastApp, cr.latest, cr.order = rs.lastApp, rs.latest, rs.order
			cr.pruneVerdictsAfter(restore)
		}
		cr.mu.Unlock()
	}

	cfg := stream.Config{
		Classifier:        d.cfg.Classifier,
		VoteHorizon:       d.cfg.VoteHorizon,
		MinVerdictWindows: d.cfg.MinVerdictWindows,
		DriftThreshold:    d.cfg.DriftThreshold,
		RecoverPanics:     true,
		Restore:           restore,
		OnVerdict:         func(v stream.Verdict) { d.onVerdict(cr, v) },
		Metrics:           d.cfg.Metrics.Scope("daemon." + cr.spec.Name + ".stream"),
	}
	if cr.ckptPath != "" {
		cfg.CheckpointEvery = d.cfg.CheckpointEvery
		cfg.OnCheckpoint = func(c *stream.Checkpoint) { d.writeCheckpoint(cr, c) }
	}
	if d.cfg.TailSpan > 0 {
		src = &teeSource{Src: src, sink: func(recs trace.Trace, now time.Duration) {
			cr.extendTail(recs, now, d.cfg.TailSpan)
		}}
	}

	cr.setState(StateRunning)
	st, err := stream.Run(ctx, src, cfg)

	cr.mu.Lock()
	cr.stats = *st
	cr.health = live.Health()
	cr.now = st.End
	cr.mu.Unlock()
	if err != nil {
		return err
	}
	if ctx.Err() == nil {
		d.printFinals(cr)
	}
	return nil
}

// onVerdict records and prints one rolling verdict.
func (d *Daemon) onVerdict(cr *captureRun, v stream.Verdict) {
	cr.mu.Lock()
	if _, seen := cr.latest[v.Key]; !seen {
		cr.order = append(cr.order, v.Key)
	}
	changed := cr.lastApp[v.Key] != v.App
	cr.lastApp[v.Key] = v.App
	cr.latest[v.Key] = v
	cr.now = v.At
	cr.stats.Verdicts++
	cr.mu.Unlock()
	if changed || d.cfg.VerboseVerdicts {
		d.printf("[%s] t=%-8s cell=%d rnti=0x%04X app=%-14s confidence=%.2f windows=%d\n",
			cr.spec.Name, v.At.Truncate(time.Millisecond), v.Key.CellID, uint16(v.Key.RNTI),
			v.App, v.Confidence, v.Windows)
	}
}

// printFinals emits the per-user final verdicts after a clean completion,
// sorted by key for stable output.
func (d *Daemon) printFinals(cr *captureRun) {
	cr.mu.Lock()
	keys := make([]stream.Key, 0, len(cr.latest))
	for k := range cr.latest {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].CellID != keys[j].CellID {
			return keys[i].CellID < keys[j].CellID
		}
		return keys[i].RNTI < keys[j].RNTI
	})
	finals := make([]stream.Verdict, len(keys))
	for i, k := range keys {
		finals[i] = cr.latest[k]
	}
	st := cr.stats
	cr.mu.Unlock()
	for _, v := range finals {
		d.printf("[%s] final: cell=%d rnti=0x%04X app=%s confidence=%.2f windows=%d\n",
			cr.spec.Name, v.Key.CellID, uint16(v.Key.RNTI), v.App, v.Confidence, v.Windows)
	}
	d.printf("[%s] done: %d users, %d records -> %d windows -> %d verdicts, ran to t=%s\n",
		cr.spec.Name, st.Users, st.Records, st.Rows, st.Verdicts, st.End)
}

// pruneVerdictsAfter drops recorded verdicts newer than the checkpoint
// being restored: they will be re-raised identically by the resumed
// pipeline. Callers hold cr.mu.
func (cr *captureRun) pruneVerdictsAfter(c *stream.Checkpoint) {
	for k, v := range cr.latest {
		if v.At >= c.Now {
			delete(cr.latest, k)
			delete(cr.lastApp, k)
		}
	}
	kept := cr.order[:0]
	for _, k := range cr.order {
		if _, ok := cr.latest[k]; ok {
			kept = append(kept, k)
		}
	}
	cr.order = kept
	cr.stats = c.Stats
}

// extendTail appends freshly captured records to the per-user tails and
// evicts everything older than span behind now.
func (cr *captureRun) extendTail(recs trace.Trace, now time.Duration, span time.Duration) {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	cr.now = now
	for _, r := range recs {
		k := stream.Key{CellID: r.CellID, RNTI: r.RNTI}
		cr.tail[k] = append(cr.tail[k], r)
	}
	cutoff := now - span
	if cutoff <= 0 {
		return
	}
	for k, t := range cr.tail {
		i := 0
		for i < len(t) && t[i].At < cutoff {
			i++
		}
		if i == len(t) {
			delete(cr.tail, k)
		} else if i > 0 {
			cr.tail[k] = append(t[:0:0], t[i:]...)
		}
	}
}

// setState updates a capture's lifecycle state.
func (cr *captureRun) setState(s State) {
	cr.mu.Lock()
	cr.state = s
	cr.mu.Unlock()
}

// printf writes one line to the verdict stream under the output lock.
func (d *Daemon) printf(format string, args ...any) {
	if d.cfg.Out == nil {
		return
	}
	d.outMu.Lock()
	defer d.outMu.Unlock()
	fmt.Fprintf(d.cfg.Out, format, args...)
}

// teeSource copies every slice a source produces to a sink before
// handing it to the pipeline.
type teeSource struct {
	Src  stream.Source
	sink func(recs trace.Trace, now time.Duration)
}

// Next implements stream.Source.
func (t *teeSource) Next(dst trace.Trace) (trace.Trace, time.Duration, bool) {
	base := len(dst)
	out, now, more := t.Src.Next(dst)
	t.sink(out[base:], now)
	return out, now, more
}
