package daemon

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"ltefp/internal/attack/fingerprint"
	"ltefp/internal/lte/rnti"
	"ltefp/internal/snapshot"
	"ltefp/internal/stream"
)

// sectionDaemonMeta binds a checkpoint file to the capture that wrote it:
// restoring under a different spec or pipeline geometry is rejected.
const sectionDaemonMeta = "daemon.meta"

// sectionDaemonFinals carries the capture's verdict summary — the latest
// verdict of every user seen so far, in first-seen order. The stream
// checkpoint only covers users still active at the cut; without this
// section a restarted daemon would forget users whose sessions ended
// before the checkpoint and print incomplete finals.
const sectionDaemonFinals = "daemon.finals"

// checkpointPath names a capture's checkpoint file.
func checkpointPath(dir, name string) string {
	return filepath.Join(dir, name+".ckpt")
}

// encodeMeta serialises the restore-compatibility key: the spec and the
// pipeline parameters that must match for a resume to be sound.
func (d *Daemon) encodeMeta(cr *captureRun) []byte {
	e := snapshot.NewEncoder(128)
	s := cr.spec
	e.Str(s.Name)
	e.Str(s.Network)
	e.Str(s.App)
	e.Duration(s.Duration)
	e.U64(s.Seed)
	e.Varint(int64(s.Day))
	e.Bool(s.DownlinkOnly)
	e.Varint(int64(s.BackgroundApps))
	e.Duration(d.cfg.Slice)
	e.Duration(d.cfg.CheckpointEvery)
	e.Varint(int64(d.cfg.VoteHorizon))
	e.Varint(int64(d.cfg.MinVerdictWindows))
	e.F64(d.cfg.DriftThreshold)
	return e.Bytes()
}

// encodeFinals serialises the verdict summary at the checkpoint cut.
// OnCheckpoint fires on the verdict stage after every pre-barrier verdict
// and before any post-barrier one, so the maps are a consistent cut.
func (cr *captureRun) encodeFinals() []byte {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	e := snapshot.NewEncoder(64 + 48*len(cr.order))
	e.Uvarint(uint64(len(cr.order)))
	for _, k := range cr.order {
		v := cr.latest[k]
		e.Varint(int64(k.CellID))
		e.Uvarint(uint64(k.RNTI))
		e.Str(cr.lastApp[k])
		e.Duration(v.At)
		e.Str(v.App)
		e.F64(v.Confidence)
		e.Varint(int64(v.Windows))
	}
	return e.Bytes()
}

// decodeFinals rebuilds the verdict summary maps from a checkpoint.
func decodeFinals(b []byte) (lastApp map[stream.Key]string, latest map[stream.Key]stream.Verdict, order []stream.Key, err error) {
	d := snapshot.NewDecoder(b)
	n := d.Count(8)
	lastApp = make(map[stream.Key]string, n)
	latest = make(map[stream.Key]stream.Verdict, n)
	for i := 0; i < n; i++ {
		k := stream.Key{CellID: int(d.Varint()), RNTI: rnti.RNTI(d.Uvarint())}
		app := d.Str()
		v := stream.Verdict{Key: k}
		v.At = d.Duration()
		v.App = d.Str()
		v.Confidence = d.F64()
		v.Windows = int(d.Varint())
		if d.Err() != nil {
			break
		}
		if _, dup := latest[k]; dup {
			return nil, nil, nil, fmt.Errorf("daemon: finals: duplicate user %v", k)
		}
		lastApp[k] = app
		latest[k] = v
		order = append(order, k)
	}
	if err := d.Finish(); err != nil {
		return nil, nil, nil, fmt.Errorf("daemon: finals: %w", err)
	}
	return lastApp, latest, order, nil
}

// classifierSections lazily encodes the classifier once; every capture's
// every checkpoint reuses the cached payloads instead of re-encoding the
// forests.
func (d *Daemon) classifierSections() (map[string][]byte, error) {
	d.outMu.Lock() // reuse the small daemon-wide lock; encoding happens once
	defer d.outMu.Unlock()
	if d.modelSections != nil {
		return d.modelSections, nil
	}
	var buf bytes.Buffer
	w, err := snapshot.NewWriter(&buf)
	if err != nil {
		return nil, err
	}
	if err := d.cfg.Classifier.AppendTo(w); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	sections, err := snapshot.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return nil, err
	}
	d.modelSections = sections
	return sections, nil
}

// writeCheckpoint persists one checkpoint atomically: full container to a
// temp file, fsync, rename over the live name. A crash mid-write leaves
// the previous checkpoint intact; a crash mid-rename leaves one of the
// two — never a torn file.
func (d *Daemon) writeCheckpoint(cr *captureRun, c *stream.Checkpoint) {
	t := d.ckptMS.Start()
	defer t.Stop()
	n, err := d.writeCheckpointFile(cr, c)
	if err != nil {
		d.printf("[%s] checkpoint at %v failed: %v\n", cr.spec.Name, c.Now, err)
		cr.mu.Lock()
		cr.lastErr = err
		cr.mu.Unlock()
		return
	}
	d.ckptWrites.Inc()
	d.ckptBytes.Add(n)
	cr.mu.Lock()
	cr.ckptAt = c.Now
	cr.ckptSize = n
	cr.mu.Unlock()
}

// writeCheckpointFile builds and atomically installs the container via
// snapshot.WriteFileAtomic (unique temp + fsync + rename), so a crash or
// a concurrent writer can never leave a torn checkpoint behind.
func (d *Daemon) writeCheckpointFile(cr *captureRun, c *stream.Checkpoint) (int64, error) {
	model, err := d.classifierSections()
	if err != nil {
		return 0, err
	}
	return snapshot.WriteFileAtomic(cr.ckptPath, func(w *snapshot.Writer) error {
		if err := w.Section(sectionDaemonMeta, d.encodeMeta(cr)); err != nil {
			return err
		}
		if err := w.Section(sectionDaemonFinals, cr.encodeFinals()); err != nil {
			return err
		}
		names := make([]string, 0, len(model))
		for name := range model {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if err := w.Section(name, model[name]); err != nil {
				return err
			}
		}
		return c.AppendTo(w)
	})
}

// restoreState is everything a checkpoint file yields: the stream
// pipeline cut plus the daemon's own verdict summary at that cut.
type restoreState struct {
	ck      *stream.Checkpoint
	lastApp map[stream.Key]string
	latest  map[stream.Key]stream.Verdict
	order   []stream.Key
}

// loadCheckpoint reads a capture's checkpoint if one exists and is
// compatible. Incompatible, corrupt, or old-format files are counted,
// reported, and ignored — the capture starts fresh rather than resuming
// into wrong state.
func (d *Daemon) loadCheckpoint(cr *captureRun) *restoreState {
	if cr.ckptPath == "" {
		return nil
	}
	f, err := os.Open(cr.ckptPath)
	if err != nil {
		return nil // no checkpoint yet
	}
	defer f.Close()
	rs, err := d.decodeCheckpoint(cr, f)
	if err != nil {
		d.ckptRejects.Inc()
		d.printf("[%s] ignoring checkpoint %s: %v\n", cr.spec.Name, cr.ckptPath, err)
		return nil
	}
	cr.mu.Lock()
	cr.ckptAt = rs.ck.Now
	cr.mu.Unlock()
	return rs
}

// decodeCheckpoint validates and decodes one checkpoint container.
func (d *Daemon) decodeCheckpoint(cr *captureRun, f *os.File) (*restoreState, error) {
	sections, err := snapshot.ReadAll(f)
	if err != nil {
		return nil, err
	}
	meta, ok := sections[sectionDaemonMeta]
	if !ok {
		return nil, fmt.Errorf("missing section %q", sectionDaemonMeta)
	}
	if !bytes.Equal(meta, d.encodeMeta(cr)) {
		return nil, fmt.Errorf("capture spec or pipeline parameters changed since the checkpoint was written")
	}
	model, err := d.classifierSections()
	if err != nil {
		return nil, err
	}
	for name, want := range model {
		got, ok := sections[name]
		if !ok || !bytes.Equal(got, want) {
			return nil, fmt.Errorf("trained model changed since the checkpoint was written (section %q)", name)
		}
	}
	// The embedded model must itself decode — guards against a daemon
	// binary whose fingerprint codec drifted from the writer's.
	if _, err := fingerprint.FromSections(sections); err != nil {
		return nil, fmt.Errorf("embedded model: %w", err)
	}
	c, err := stream.ReadCheckpoint(sections)
	if err != nil {
		return nil, err
	}
	if c.Now <= 0 || c.Now%d.cfg.Slice != 0 {
		return nil, fmt.Errorf("checkpoint time %v is not on the %v slice grid", c.Now, d.cfg.Slice)
	}
	finals, ok := sections[sectionDaemonFinals]
	if !ok {
		return nil, fmt.Errorf("missing section %q", sectionDaemonFinals)
	}
	lastApp, latest, order, err := decodeFinals(finals)
	if err != nil {
		return nil, err
	}
	return &restoreState{ck: c, lastApp: lastApp, latest: latest, order: order}, nil
}
