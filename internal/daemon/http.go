package daemon

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"ltefp/internal/attack/correlation"
	"ltefp/internal/stream"
	"ltefp/internal/trace"
)

// CaptureStatus is one capture's /healthz entry.
type CaptureStatus struct {
	Name     string        `json:"name"`
	State    State         `json:"state"`
	Restarts int           `json:"restarts"`
	Restored bool          `json:"restored"`
	LastErr  string        `json:"last_error,omitempty"`
	Now      time.Duration `json:"now_ns"`

	Records  int64 `json:"records"`
	Rows     int64 `json:"rows"`
	Verdicts int64 `json:"verdicts"`
	Users    int   `json:"users"`

	CheckpointAt   time.Duration `json:"checkpoint_at_ns"`
	CheckpointSize int64         `json:"checkpoint_bytes"`

	Candidates int64 `json:"sniffer_candidates"`
	Captured   int64 `json:"sniffer_captured"`
	Dropped    int64 `json:"sniffer_dropped"`
}

// Health is the /healthz payload.
type Health struct {
	Status   string          `json:"status"`
	Captures []CaptureStatus `json:"captures"`
}

// health snapshots every capture.
func (d *Daemon) health() Health {
	h := Health{Status: "ok"}
	for _, cr := range d.caps {
		cr.mu.Lock()
		cs := CaptureStatus{
			Name:           cr.spec.Name,
			State:          cr.state,
			Restarts:       cr.restarts,
			Restored:       cr.restored,
			Now:            cr.now,
			Records:        cr.stats.Records,
			Rows:           cr.stats.Rows,
			Verdicts:       cr.stats.Verdicts,
			Users:          cr.stats.Users,
			CheckpointAt:   cr.ckptAt,
			CheckpointSize: cr.ckptSize,
			Candidates:     cr.health.Candidates,
			Captured:       cr.health.Captured,
			Dropped:        cr.health.Dropped,
		}
		if cr.lastErr != nil {
			cs.LastErr = cr.lastErr.Error()
		}
		if cr.state == StateFailed {
			h.Status = "degraded"
		}
		cr.mu.Unlock()
		h.Captures = append(h.Captures, cs)
	}
	return h
}

// VerdictEntry is one user's latest verdict in the /verdicts payload.
type VerdictEntry struct {
	Capture    string        `json:"capture"`
	CellID     int           `json:"cell"`
	RNTI       uint16        `json:"rnti"`
	At         time.Duration `json:"at_ns"`
	App        string        `json:"app"`
	Confidence float64       `json:"confidence"`
	Windows    int           `json:"windows"`
}

// verdicts snapshots the latest verdict of every tracked user, sorted by
// (capture, cell, RNTI).
func (d *Daemon) verdicts() []VerdictEntry {
	var out []VerdictEntry
	for _, cr := range d.caps {
		cr.mu.Lock()
		keys := make([]stream.Key, 0, len(cr.latest))
		for k := range cr.latest {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].CellID != keys[j].CellID {
				return keys[i].CellID < keys[j].CellID
			}
			return keys[i].RNTI < keys[j].RNTI
		})
		for _, k := range keys {
			v := cr.latest[k]
			out = append(out, VerdictEntry{
				Capture:    cr.spec.Name,
				CellID:     k.CellID,
				RNTI:       uint16(k.RNTI),
				At:         v.At,
				App:        v.App,
				Confidence: v.Confidence,
				Windows:    v.Windows,
			})
		}
		cr.mu.Unlock()
	}
	return out
}

// SweepContact is one contact pair in the /sweep payload.
type SweepContact struct {
	A          string  `json:"a"`
	B          string  `json:"b"`
	Similarity float64 `json:"similarity"`
}

// SweepResult is the /sweep payload.
type SweepResult struct {
	Users    int            `json:"users"`
	Start    time.Duration  `json:"start_ns"`
	End      time.Duration  `json:"end_ns"`
	Contacts []SweepContact `json:"contacts"`
}

// sweep runs cross-capture contact discovery over the retained record
// tails: every tracked user across every capture, compared pairwise over
// the common trailing span.
func (d *Daemon) sweep(minSim float64, topK int) (*SweepResult, error) {
	var users []correlation.UserTrace
	end := time.Duration(-1)
	for _, cr := range d.caps {
		cr.mu.Lock()
		if len(cr.tail) > 0 && (end < 0 || cr.now < end) {
			end = cr.now
		}
		keys := make([]stream.Key, 0, len(cr.tail))
		for k := range cr.tail {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].CellID != keys[j].CellID {
				return keys[i].CellID < keys[j].CellID
			}
			return keys[i].RNTI < keys[j].RNTI
		})
		for _, k := range keys {
			users = append(users, correlation.UserTrace{
				ID:    fmt.Sprintf("%s/cell%d/0x%04X", cr.spec.Name, k.CellID, uint16(k.RNTI)),
				Trace: append(trace.Trace(nil), cr.tail[k]...),
			})
		}
		cr.mu.Unlock()
	}
	if len(users) < 2 || end <= 0 {
		return &SweepResult{Users: len(users)}, nil
	}
	start := end - d.cfg.TailSpan
	if start < 0 {
		start = 0
	}
	contacts, err := correlation.Sweep(users, correlation.SweepConfig{
		Start:         start,
		End:           end,
		MinSimilarity: minSim,
		TopK:          topK,
	})
	if err != nil {
		return nil, err
	}
	res := &SweepResult{Users: len(users), Start: start, End: end}
	for _, c := range contacts {
		res.Contacts = append(res.Contacts, SweepContact{
			A:          users[c.A].ID,
			B:          users[c.B].ID,
			Similarity: c.Evidence.Similarity,
		})
	}
	return res, nil
}

// Handlers returns the daemon's HTTP surface, for mounting next to the
// obs debug endpoints via obs.StartDebugServerWith.
func (d *Daemon) Handlers() map[string]http.Handler {
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v)
	}
	return map[string]http.Handler{
		"/healthz": http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			h := d.health()
			if h.Status != "ok" {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			writeJSON(w, h)
		}),
		"/verdicts": http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			writeJSON(w, d.verdicts())
		}),
		"/sweep": http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			minSim := 0.0
			if s := r.URL.Query().Get("min"); s != "" {
				if _, err := fmt.Sscanf(s, "%g", &minSim); err != nil {
					http.Error(w, "bad min: "+err.Error(), http.StatusBadRequest)
					return
				}
			}
			topK := 0
			if s := r.URL.Query().Get("topk"); s != "" {
				if _, err := fmt.Sscanf(s, "%d", &topK); err != nil {
					http.Error(w, "bad topk: "+err.Error(), http.StatusBadRequest)
					return
				}
			}
			res, err := d.sweep(minSim, topK)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			writeJSON(w, res)
		}),
	}
}
