// Package sim provides the deterministic discrete-event foundation used by
// the LTE radio-layer simulator: a seeded random source with the
// distributions the traffic and channel models need, and a time-ordered
// event queue driven at 1 ms (subframe) granularity.
//
// Every stochastic component in this repository receives an explicit *RNG;
// there is no global random state. Reproducing an experiment is therefore a
// matter of reusing its seed.
package sim

import (
	"math"
	"math/rand/v2"
)

// RNG is a deterministic random source extended with the distributions used
// by the traffic generators and channel models. It is NOT safe for
// concurrent use; components that run in parallel must Fork their own.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic RNG seeded with the given seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{r: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Fork derives an independent deterministic stream from this RNG. The child
// stream is a pure function of the parent's current state, so forking in a
// fixed order preserves reproducibility while decoupling consumers.
func (g *RNG) Fork() *RNG {
	return &RNG{r: rand.New(rand.NewPCG(g.r.Uint64(), g.r.Uint64()))}
}

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// IntN returns a uniform value in [0, n). n must be > 0.
func (g *RNG) IntN(n int) int { return g.r.IntN(n) }

// Uint64 returns a uniform 64-bit value.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }

// Uniform returns a uniform value in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// UniformInt returns a uniform integer in [lo, hi]. It panics if hi < lo.
func (g *RNG) UniformInt(lo, hi int) int {
	if hi < lo {
		panic("sim: UniformInt with hi < lo")
	}
	return lo + g.r.IntN(hi-lo+1)
}

// Normal returns a normally distributed value with the given mean and
// standard deviation.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// ClampedNormal returns a Normal sample clamped to [lo, hi].
func (g *RNG) ClampedNormal(mean, stddev, lo, hi float64) float64 {
	v := g.Normal(mean, stddev)
	return math.Min(hi, math.Max(lo, v))
}

// LogNormal returns a log-normally distributed value whose underlying normal
// has parameters mu and sigma.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(g.Normal(mu, sigma))
}

// Exponential returns an exponentially distributed value with the given
// mean (mean = 1/rate).
func (g *RNG) Exponential(mean float64) float64 {
	return g.r.ExpFloat64() * mean
}

// Poisson returns a Poisson-distributed count with the given mean, using
// Knuth's method for small means and a normal approximation for large ones.
func (g *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 60 {
		v := g.Normal(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= g.r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Pareto returns a bounded Pareto-distributed value with the given scale
// (minimum) and shape alpha. Heavy-tailed sizes such as media bursts in
// messaging traffic use this.
func (g *RNG) Pareto(scale, alpha float64) float64 {
	u := g.r.Float64()
	for u == 0 {
		u = g.r.Float64()
	}
	return scale / math.Pow(u, 1/alpha)
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// PermInto fills p with a random permutation of [0, len(p)) without
// allocating. It consumes exactly the same random draws as Perm(len(p))
// (identity fill followed by Shuffle), so callers can switch between the
// two without perturbing downstream streams.
func (g *RNG) PermInto(p []int) {
	for i := range p {
		p[i] = i
	}
	g.r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }
