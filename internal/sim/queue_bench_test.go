package sim_test

import (
	"testing"
	"time"

	"ltefp/internal/sim"
)

// BenchmarkQueuePushPop measures the event queue's steady-state cost: a
// rolling population of 64 pending events, one push and one pop per
// operation, as the fabric's shard queues see every TTI.
func BenchmarkQueuePushPop(b *testing.B) {
	var q sim.Queue
	fired := 0
	f := func() { fired++ }
	const horizon = 64
	for i := 0; i < horizon; i++ {
		q.Push(time.Duration(i)*sim.TTI, f)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := time.Duration(i) * sim.TTI
		q.Push(now+horizon*sim.TTI, f)
		q.PopDue(now)
	}
	if fired == 0 {
		b.Fatal("no events fired")
	}
}
