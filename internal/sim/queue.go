package sim

import (
	"container/heap"
	"time"
)

// Event is an item scheduled for execution at a simulated instant.
type Event struct {
	// At is the simulated time at which the event fires, measured from the
	// start of the simulation.
	At time.Duration
	// Fire is invoked when the event is due.
	Fire func()

	seq int // tie-breaker preserving scheduling order at equal times
}

// Queue is a time-ordered event queue. Events scheduled for the same instant
// fire in the order they were pushed, which keeps the simulation
// deterministic. The zero value is ready to use.
type Queue struct {
	h   eventHeap
	seq int
}

// Push schedules an event.
func (q *Queue) Push(at time.Duration, fire func()) {
	q.seq++
	heap.Push(&q.h, &Event{At: at, Fire: fire, seq: q.seq})
}

// Len reports the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// PeekTime returns the time of the earliest pending event. The second return
// is false when the queue is empty.
func (q *Queue) PeekTime() (time.Duration, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].At, true
}

// PopDue removes and fires every event due at or before now, in time order.
// It returns the number of events fired.
func (q *Queue) PopDue(now time.Duration) int {
	n := 0
	for len(q.h) > 0 && q.h[0].At <= now {
		ev, ok := heap.Pop(&q.h).(*Event)
		if !ok {
			panic("sim: event heap holds a non-event")
		}
		ev.Fire()
		n++
	}
	return n
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*Event)
	if !ok {
		panic("sim: pushing a non-event")
	}
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
