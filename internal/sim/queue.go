package sim

import (
	"time"
)

// Firer is a prebuilt event payload: Fire is invoked when the event is
// due. Pushing a Firer instead of a closure lets callers that schedule
// large batches of events (one per application arrival) preallocate the
// payloads in one slice and avoid a per-event closure allocation.
type Firer interface {
	Fire()
}

// Event is an item scheduled for execution at a simulated instant.
type Event struct {
	// At is the simulated time at which the event fires, measured from the
	// start of the simulation.
	At time.Duration
	// Fire is invoked when the event is due (nil when the event carries a
	// Firer payload instead).
	Fire func()

	firer Firer
	seq   int // tie-breaker preserving scheduling order at equal times
}

// Queue is a time-ordered event queue. Events scheduled for the same instant
// fire in the order they were pushed, which keeps the simulation
// deterministic. The zero value is ready to use.
//
// The queue is a value-based binary heap: pushing does not box events, so
// in steady state (heap capacity warmed up) scheduling is allocation-free.
type Queue struct {
	h   []Event
	seq int
}

// Push schedules a closure event.
func (q *Queue) Push(at time.Duration, fire func()) {
	q.push(Event{At: at, Fire: fire})
}

// PushFirer schedules a prebuilt event payload.
func (q *Queue) PushFirer(at time.Duration, f Firer) {
	q.push(Event{At: at, firer: f})
}

func (q *Queue) push(ev Event) {
	q.seq++
	ev.seq = q.seq
	q.h = append(q.h, ev)
	q.up(len(q.h) - 1)
}

// Len reports the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// PeekTime returns the time of the earliest pending event. The second return
// is false when the queue is empty.
func (q *Queue) PeekTime() (time.Duration, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].At, true
}

// PopDue removes and fires every event due at or before now, in time order.
// It returns the number of events fired. Fired events may push further
// events (including ones due immediately).
func (q *Queue) PopDue(now time.Duration) int {
	n := 0
	for len(q.h) > 0 && q.h[0].At <= now {
		ev := q.pop()
		if ev.Fire != nil {
			ev.Fire()
		} else {
			ev.firer.Fire()
		}
		n++
	}
	return n
}

// pop removes and returns the earliest event.
func (q *Queue) pop() Event {
	ev := q.h[0]
	last := len(q.h) - 1
	q.h[0] = q.h[last]
	q.h[last] = Event{} // release references held by func/interface fields
	q.h = q.h[:last]
	if last > 0 {
		q.down(0)
	}
	return ev
}

// less orders events by time, then by push order.
func (q *Queue) less(i, j int) bool {
	if q.h[i].At != q.h[j].At {
		return q.h[i].At < q.h[j].At
	}
	return q.h[i].seq < q.h[j].seq
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		child := l
		if r := l + 1; r < n && q.less(r, l) {
			child = r
		}
		if !q.less(child, i) {
			return
		}
		q.h[i], q.h[child] = q.h[child], q.h[i]
		i = child
	}
}
