package sim

import "time"

// TTI is the LTE transmission time interval: one subframe, 1 ms.
const TTI = time.Millisecond

// Clock tracks simulated time at subframe granularity.
type Clock struct {
	now time.Duration
}

// Now returns the current simulated time.
func (c *Clock) Now() time.Duration { return c.now }

// Subframe returns the absolute subframe index (1 ms ticks since start).
func (c *Clock) Subframe() int64 { return int64(c.now / TTI) }

// SFN returns the system frame number (10 ms frames, modulo 1024 as on the
// air interface) and the subframe number within the frame.
func (c *Clock) SFN() (frame int, subframe int) {
	sf := c.Subframe()
	return int((sf / 10) % 1024), int(sf % 10)
}

// Tick advances the clock by one TTI.
func (c *Clock) Tick() { c.now += TTI }

// AdvanceTo moves the clock forward to t. It panics if t is in the past:
// simulated time never rewinds.
func (c *Clock) AdvanceTo(t time.Duration) {
	if t < c.now {
		panic("sim: clock moving backwards")
	}
	c.now = t
}
