package sim_test

import (
	"math"
	"testing"
	"time"

	"ltefp/internal/sim"
)

func TestRNGDeterminism(t *testing.T) {
	a := sim.NewRNG(42)
	b := sim.NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestForkIndependence(t *testing.T) {
	parent := sim.NewRNG(7)
	child := parent.Fork()
	// Draw from the child; the parent must continue exactly as a clone
	// that also forked once would.
	ref := sim.NewRNG(7)
	_ = ref.Fork()
	_ = child.Uint64()
	for i := 0; i < 10; i++ {
		if parent.Uint64() != ref.Uint64() {
			t.Fatal("child draws perturbed the parent stream")
		}
	}
}

func TestUniformBounds(t *testing.T) {
	g := sim.NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := g.Uniform(3, 9)
		if v < 3 || v >= 9 {
			t.Fatalf("Uniform(3, 9) = %v", v)
		}
		n := g.UniformInt(-2, 4)
		if n < -2 || n > 4 {
			t.Fatalf("UniformInt(-2, 4) = %d", n)
		}
	}
}

func TestUniformIntDegenerate(t *testing.T) {
	g := sim.NewRNG(1)
	if got := g.UniformInt(5, 5); got != 5 {
		t.Fatalf("UniformInt(5, 5) = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("UniformInt(6, 5) did not panic")
		}
	}()
	g.UniformInt(6, 5)
}

func TestNormalMoments(t *testing.T) {
	g := sim.NewRNG(2)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := g.Normal(10, 3)
		sum += v
		sq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sq/n - mean*mean)
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("Normal mean = %v", mean)
	}
	if math.Abs(std-3) > 0.05 {
		t.Fatalf("Normal std = %v", std)
	}
}

func TestClampedNormal(t *testing.T) {
	g := sim.NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := g.ClampedNormal(0, 100, -1, 1)
		if v < -1 || v > 1 {
			t.Fatalf("ClampedNormal escaped bounds: %v", v)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	g := sim.NewRNG(4)
	for _, mean := range []float64{0.5, 4, 80} {
		const n = 50000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(g.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > mean*0.05+0.05 {
			t.Fatalf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
	if g.Poisson(0) != 0 || g.Poisson(-1) != 0 {
		t.Fatal("Poisson of non-positive mean should be 0")
	}
}

func TestExponentialMean(t *testing.T) {
	g := sim.NewRNG(5)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += g.Exponential(2.5)
	}
	if got := sum / n; math.Abs(got-2.5) > 0.1 {
		t.Fatalf("Exponential(2.5) sample mean = %v", got)
	}
}

func TestParetoBounds(t *testing.T) {
	g := sim.NewRNG(6)
	for i := 0; i < 10000; i++ {
		if v := g.Pareto(100, 1.2); v < 100 {
			t.Fatalf("Pareto below scale: %v", v)
		}
	}
}

func TestQueueOrdering(t *testing.T) {
	var q sim.Queue
	var got []int
	q.Push(3*time.Millisecond, func() { got = append(got, 3) })
	q.Push(1*time.Millisecond, func() { got = append(got, 1) })
	q.Push(2*time.Millisecond, func() { got = append(got, 2) })
	// Equal times fire in push order.
	q.Push(2*time.Millisecond, func() { got = append(got, 22) })
	n := q.PopDue(2 * time.Millisecond)
	if n != 3 {
		t.Fatalf("PopDue fired %d events, want 3", n)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 22 {
		t.Fatalf("fire order = %v", got)
	}
	if q.Len() != 1 {
		t.Fatalf("Len() = %d", q.Len())
	}
	at, ok := q.PeekTime()
	if !ok || at != 3*time.Millisecond {
		t.Fatalf("PeekTime = (%v, %v)", at, ok)
	}
}

func TestQueueReentrantPush(t *testing.T) {
	// An event may schedule another event at the same instant; PopDue must
	// fire it in the same call.
	var q sim.Queue
	fired := 0
	q.Push(time.Millisecond, func() {
		fired++
		q.Push(time.Millisecond, func() { fired++ })
	})
	q.PopDue(time.Millisecond)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestClock(t *testing.T) {
	var c sim.Clock
	if c.Now() != 0 || c.Subframe() != 0 {
		t.Fatal("zero clock not at time zero")
	}
	for i := 0; i < 10257; i++ {
		c.Tick()
	}
	frame, sub := c.SFN()
	if frame != (10257/10)%1024 || sub != 7 {
		t.Fatalf("SFN = (%d, %d)", frame, sub)
	}
	c.AdvanceTo(20 * time.Second)
	if c.Subframe() != 20000 {
		t.Fatalf("Subframe = %d", c.Subframe())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo backwards did not panic")
		}
	}()
	c.AdvanceTo(time.Second)
}
