package trace_test

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"ltefp/internal/lte/dci"
	"ltefp/internal/lte/rnti"
	"ltefp/internal/sim"
	"ltefp/internal/trace"
)

func mkTrace(n int, seed uint64) trace.Trace {
	g := sim.NewRNG(seed)
	t := make(trace.Trace, n)
	at := time.Duration(0)
	for i := range t {
		at += time.Duration(g.IntN(50)) * time.Millisecond
		dir := dci.Downlink
		if g.Bool(0.3) {
			dir = dci.Uplink
		}
		t[i] = trace.Record{
			At:     at,
			CellID: 1 + g.IntN(3),
			RNTI:   rnti.RNTI(0x100 + g.IntN(4)),
			Dir:    dir,
			Bytes:  1 + g.IntN(4000),
		}
	}
	return t
}

func TestSortAndDuration(t *testing.T) {
	tr := trace.Trace{
		{At: 3 * time.Second}, {At: time.Second}, {At: 2 * time.Second},
	}
	tr.Sort()
	if tr[0].At != time.Second || tr[2].At != 3*time.Second {
		t.Fatal("Sort did not order by time")
	}
	if tr.Duration() != 2*time.Second {
		t.Fatalf("Duration = %v", tr.Duration())
	}
	var empty trace.Trace
	if empty.Duration() != 0 {
		t.Fatal("empty Duration != 0")
	}
}

// TestSplitDirection: the one-pass split must agree with the two
// FilterDirection scans record for record, and drop unset directions.
func TestSplitDirection(t *testing.T) {
	tr := mkTrace(500, 1)
	ul, dl := tr.SplitDirection()
	wantUL := tr.FilterDirection(dci.Uplink)
	wantDL := tr.FilterDirection(dci.Downlink)
	if len(ul) != len(wantUL) || len(dl) != len(wantDL) {
		t.Fatalf("SplitDirection lengths (%d, %d), want (%d, %d)", len(ul), len(dl), len(wantUL), len(wantDL))
	}
	for i := range ul {
		if ul[i] != wantUL[i] {
			t.Fatalf("uplink record %d differs", i)
		}
	}
	for i := range dl {
		if dl[i] != wantDL[i] {
			t.Fatalf("downlink record %d differs", i)
		}
	}
	withUnset := append(trace.Trace{{At: time.Second}}, tr[:3]...)
	ul2, dl2 := withUnset.SplitDirection()
	if len(ul2)+len(dl2) != 3 {
		t.Fatal("unset-direction record leaked into a split half")
	}
	emptyUL, emptyDL := trace.Trace(nil).SplitDirection()
	if len(emptyUL) != 0 || len(emptyDL) != 0 {
		t.Fatal("empty trace split is not empty")
	}
}

func TestFilters(t *testing.T) {
	tr := mkTrace(500, 1)
	dl := tr.FilterDirection(dci.Downlink)
	ul := tr.FilterDirection(dci.Uplink)
	if len(dl)+len(ul) != len(tr) {
		t.Fatal("direction filters lose records")
	}
	for _, r := range dl {
		if r.Dir != dci.Downlink {
			t.Fatal("FilterDirection leaked uplink")
		}
	}
	one := tr.FilterRNTI(0x101)
	for _, r := range one {
		if r.RNTI != 0x101 {
			t.Fatal("FilterRNTI leaked")
		}
	}
	span := tr.FilterSpan(time.Second, 2*time.Second)
	for _, r := range span {
		if r.At < time.Second || r.At >= 2*time.Second {
			t.Fatal("FilterSpan out of range")
		}
	}
	groups := tr.ByRNTI()
	total := 0
	for r, g := range groups {
		total += len(g)
		for _, rec := range g {
			if rec.RNTI != r {
				t.Fatal("ByRNTI misgrouped")
			}
		}
	}
	if total != len(tr) {
		t.Fatal("ByRNTI lost records")
	}
}

func TestSplitSessions(t *testing.T) {
	tr := trace.Trace{
		{At: 0}, {At: 100 * time.Millisecond},
		{At: 20 * time.Second}, {At: 20100 * time.Millisecond},
	}
	sessions := tr.SplitSessions(10 * time.Second)
	if len(sessions) != 2 {
		t.Fatalf("%d sessions, want 2", len(sessions))
	}
	if len(sessions[0]) != 2 || len(sessions[1]) != 2 {
		t.Fatalf("session sizes %d/%d", len(sessions[0]), len(sessions[1]))
	}
	if got := trace.Trace(nil).SplitSessions(time.Second); got != nil {
		t.Fatal("empty trace should split to nil")
	}
}

// TestWindowsPartition: with stride == width every record lands in exactly
// one window, and windows tile the span.
func TestWindowsPartition(t *testing.T) {
	f := func(seed uint64) bool {
		tr := mkTrace(300, seed)
		ws := tr.Windows(100*time.Millisecond, 100*time.Millisecond)
		count := 0
		for i, w := range ws {
			if i > 0 && w.Start != ws[i-1].Start+100*time.Millisecond {
				return false
			}
			for _, r := range w.Records {
				if r.At < w.Start || r.At >= w.Start+100*time.Millisecond {
					return false
				}
				count++
			}
		}
		return count == len(tr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestWindowsOverlapping(t *testing.T) {
	tr := mkTrace(200, 7)
	ws := tr.Windows(200*time.Millisecond, 100*time.Millisecond)
	// Overlapping windows must each contain exactly the records in their
	// span.
	for _, w := range ws {
		want := tr.FilterSpan(w.Start, w.Start+200*time.Millisecond)
		if len(want) != len(w.Records) {
			t.Fatalf("window at %v has %d records, span-filter says %d",
				w.Start, len(w.Records), len(want))
		}
	}
}

func TestWindowsPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Windows(0, 0) did not panic")
		}
	}()
	mkTrace(3, 1).Windows(0, 0)
}

func TestNonEmptyWindows(t *testing.T) {
	tr := trace.Trace{{At: 0, Bytes: 1}, {At: time.Second, Bytes: 1}}
	ws := tr.Windows(100*time.Millisecond, 100*time.Millisecond)
	ne := trace.NonEmptyWindows(ws)
	if len(ne) != 2 {
		t.Fatalf("%d non-empty windows, want 2", len(ne))
	}
	if len(ws) <= len(ne) {
		t.Fatal("expected empty windows between the two records")
	}
}

// TestCSVRoundTrip: WriteCSV then ReadCSV is the identity.
func TestCSVRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		tr := mkTrace(100, seed)
		var buf bytes.Buffer
		if err := trace.WriteCSV(&buf, tr); err != nil {
			return false
		}
		got, err := trace.ReadCSV(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(tr) {
			return false
		}
		for i := range tr {
			if got[i] != tr[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	if _, err := trace.ReadCSV(strings.NewReader("not,a,trace\n")); err == nil {
		t.Fatal("bad header accepted")
	}
	bad := "time_us,cell,rnti,direction,bytes\nxyz,1,2,1,3\n"
	if _, err := trace.ReadCSV(strings.NewReader(bad)); err == nil {
		t.Fatal("bad field accepted")
	}
}

func TestTotalBytes(t *testing.T) {
	tr := trace.Trace{{Bytes: 5}, {Bytes: 7}}
	if tr.TotalBytes() != 12 {
		t.Fatalf("TotalBytes = %d", tr.TotalBytes())
	}
}
