package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"ltefp/internal/lte/dci"
	"ltefp/internal/lte/rnti"
)

// csvHeader is the column layout of the trace interchange format, matching
// the fields srsLTE-based captures export: timestamp (microseconds), cell,
// RNTI, direction (1 = downlink, 0 = uplink), transport block bytes.
var csvHeader = []string{"time_us", "cell", "rnti", "direction", "bytes"}

// WriteCSV serialises the trace.
func WriteCSV(w io.Writer, t Trace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: writing header: %w", err)
	}
	row := make([]string, 5)
	for _, r := range t {
		row[0] = strconv.FormatInt(r.At.Microseconds(), 10)
		row[1] = strconv.Itoa(r.CellID)
		row[2] = strconv.FormatUint(uint64(r.RNTI), 10)
		row[3] = strconv.Itoa(r.Dir.Value())
		row[4] = strconv.Itoa(r.Bytes)
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: writing record: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("trace: flushing: %w", err)
	}
	return nil
}

// ReadCSV deserialises a trace written by WriteCSV.
func ReadCSV(r io.Reader) (Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	for i, h := range csvHeader {
		if header[i] != h {
			return nil, fmt.Errorf("trace: header column %d is %q, want %q", i, header[i], h)
		}
	}
	var out Trace
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		rec, err := parseRow(row)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
}

func parseRow(row []string) (Record, error) {
	us, err := strconv.ParseInt(row[0], 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("time_us: %w", err)
	}
	cell, err := strconv.Atoi(row[1])
	if err != nil {
		return Record{}, fmt.Errorf("cell: %w", err)
	}
	r, err := strconv.ParseUint(row[2], 10, 16)
	if err != nil {
		return Record{}, fmt.Errorf("rnti: %w", err)
	}
	dirVal, err := strconv.Atoi(row[3])
	if err != nil {
		return Record{}, fmt.Errorf("direction: %w", err)
	}
	dir := dci.Uplink
	if dirVal == 1 {
		dir = dci.Downlink
	}
	bytes, err := strconv.Atoi(row[4])
	if err != nil {
		return Record{}, fmt.Errorf("bytes: %w", err)
	}
	return Record{
		At:     time.Duration(us) * time.Microsecond,
		CellID: cell,
		RNTI:   rnti.RNTI(r),
		Dir:    dir,
		Bytes:  bytes,
	}, nil
}
