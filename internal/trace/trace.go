// Package trace defines the attacker-side data model: the (timestamp,
// RNTI, direction, transport-block-size) tuples a passive PDCCH sniffer
// records, and the grouping, session-splitting, and sliding-window
// operations the paper's preprocessing step ③ applies to them before
// feature extraction.
package trace

import (
	"fmt"
	"sort"
	"time"

	"ltefp/internal/lte/dci"
	"ltefp/internal/lte/rnti"
)

// Record is one decoded DCI observation.
type Record struct {
	// At is the capture timestamp.
	At time.Duration
	// CellID identifies which sniffer position captured the record.
	CellID int
	// RNTI is the recovered radio identifier.
	RNTI rnti.RNTI
	// Dir is the scheduled transfer direction.
	Dir dci.Direction
	// Bytes is the transport block size — the paper's frame size feature.
	Bytes int
}

// Trace is a time-ordered sequence of records.
type Trace []Record

// Sort orders the trace by time (stable on ties).
func (t Trace) Sort() {
	sort.SliceStable(t, func(i, j int) bool { return t[i].At < t[j].At })
}

// Duration returns the time span between first and last record.
func (t Trace) Duration() time.Duration {
	if len(t) == 0 {
		return 0
	}
	return t[len(t)-1].At - t[0].At
}

// TotalBytes sums the transport block sizes.
func (t Trace) TotalBytes() int {
	n := 0
	for _, r := range t {
		n += r.Bytes
	}
	return n
}

// FilterDirection keeps only records of the given direction (a sniffer
// covering a sole downlink or uplink channel, as in Tables III and IV).
func (t Trace) FilterDirection(d dci.Direction) Trace {
	out := make(Trace, 0, len(t))
	for _, r := range t {
		if r.Dir == d {
			out = append(out, r)
		}
	}
	return out
}

// SplitDirection partitions the trace into uplink and downlink records in
// a single pass, preserving time order. Callers that need both directions
// (the correlation attack's per-user series, per-user traffic summaries)
// use this instead of two FilterDirection scans. Records with an unset
// direction appear in neither half, matching FilterDirection's behaviour.
func (t Trace) SplitDirection() (ul, dl Trace) {
	nUL := 0
	for _, r := range t {
		if r.Dir == dci.Uplink {
			nUL++
		}
	}
	ul = make(Trace, 0, nUL)
	dl = make(Trace, 0, len(t)-nUL)
	for _, r := range t {
		switch r.Dir {
		case dci.Uplink:
			ul = append(ul, r)
		case dci.Downlink:
			dl = append(dl, r)
		}
	}
	return ul, dl
}

// FilterRNTI keeps only records addressed to the given RNTI.
func (t Trace) FilterRNTI(r rnti.RNTI) Trace {
	out := make(Trace, 0, len(t))
	for _, rec := range t {
		if rec.RNTI == r {
			out = append(out, rec)
		}
	}
	return out
}

// FilterSpan keeps records with from <= At < to.
func (t Trace) FilterSpan(from, to time.Duration) Trace {
	out := make(Trace, 0, len(t))
	for _, rec := range t {
		if rec.At >= from && rec.At < to {
			out = append(out, rec)
		}
	}
	return out
}

// ByRNTI groups the trace per RNTI, preserving time order within groups.
func (t Trace) ByRNTI() map[rnti.RNTI]Trace {
	out := make(map[rnti.RNTI]Trace)
	for _, rec := range t {
		out[rec.RNTI] = append(out[rec.RNTI], rec)
	}
	return out
}

// SplitSessions cuts the trace wherever consecutive records are separated
// by more than gap — the radio-layer notion of an application session
// boundary (the same silence that triggers an RRC release).
func (t Trace) SplitSessions(gap time.Duration) []Trace {
	if len(t) == 0 {
		return nil
	}
	var out []Trace
	start := 0
	for i := 1; i < len(t); i++ {
		if t[i].At-t[i-1].At > gap {
			out = append(out, t[start:i])
			start = i
		}
	}
	return append(out, t[start:])
}

// Window is one fixed-width slice of a trace.
type Window struct {
	// Start is the window's opening time.
	Start time.Duration
	// Records are the observations with Start <= At < Start+width.
	Records Trace
}

// Windows splits the trace into sliding windows of the given width moved
// by stride (width == stride gives the paper's non-overlapping 100 ms
// aggregation). Empty windows inside the span are included: silence is
// signal for the classifier. It panics if width or stride is not positive.
func (t Trace) Windows(width, stride time.Duration) []Window {
	return t.WindowsInto(nil, width, stride)
}

// WindowsInto is Windows appending into dst (typically a reused buffer
// sliced to length zero), so repeated windowing of same-sized traces does
// not reallocate the window slice. The returned windows alias t's backing
// array, as with Windows.
func (t Trace) WindowsInto(dst []Window, width, stride time.Duration) []Window {
	if width <= 0 || stride <= 0 {
		panic(fmt.Sprintf("trace: invalid window width %v / stride %v", width, stride))
	}
	if len(t) == 0 {
		return dst
	}
	first := t[0].At - t[0].At%stride
	last := t[len(t)-1].At
	out := dst
	i := 0
	for start := first; start <= last; start += stride {
		end := start + width
		// Advance i to the first record at or after start (records are
		// time-ordered; stride may skip some when stride > width).
		for i < len(t) && t[i].At < start {
			i++
		}
		j := i
		for j < len(t) && t[j].At < end {
			j++
		}
		out = append(out, Window{Start: start, Records: t[i:j]})
	}
	return out
}

// NonEmptyWindows filters Windows output down to windows holding records.
func NonEmptyWindows(ws []Window) []Window {
	out := make([]Window, 0, len(ws))
	for _, w := range ws {
		if len(w.Records) > 0 {
			out = append(out, w)
		}
	}
	return out
}
