package snapshot

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// countingWriter counts bytes on their way to the underlying writer so
// WriteFileAtomic can report the container size without a second stat.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// WriteFileAtomic writes one snapshot container to path with
// crash-and-concurrency safety: the container is built in a uniquely named
// temporary file in the destination directory, fsynced, and renamed over
// path. Readers opening path therefore observe either the previous file or
// the complete new one — never a torn write — and concurrent writers of
// the same path race only at the (atomic) rename. build receives the
// container Writer and appends sections; Close is called here. On any
// error the temporary file is removed and path is left untouched. Returns
// the container size in bytes.
func WriteFileAtomic(path string, build func(*Writer) error) (int64, error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".snap-*.tmp")
	if err != nil {
		return 0, fmt.Errorf("snapshot: create temp in %s: %w", dir, err)
	}
	tmp := f.Name()
	cleanup := func(err error) (int64, error) {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	cw := &countingWriter{w: f}
	w, err := NewWriter(cw)
	if err != nil {
		return cleanup(err)
	}
	if err := build(w); err != nil {
		return cleanup(err)
	}
	if err := w.Close(); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("snapshot: sync %s: %w", tmp, err))
	}
	if err := f.Close(); err != nil {
		return cleanup(fmt.Errorf("snapshot: close %s: %w", tmp, err))
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("snapshot: rename into place: %w", err)
	}
	return cw.n, nil
}

// ReadFileAll reads and fully validates the snapshot container at path,
// returning its sections. Any structural damage — foreign file, version
// skew, truncation, CRC mismatch — surfaces as the corresponding typed
// error; a nil error proves the file intact end to end.
func ReadFileAll(path string) (map[string][]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadAll(f)
}
