package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// writeContainer builds a container with the given sections.
func writeContainer(t *testing.T, sections map[string][]byte, order []string) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range order {
		if err := w.Section(name, sections[name]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	sections := map[string][]byte{
		"meta":  []byte("hello"),
		"empty": nil,
		"bin":   {0, 1, 2, 255, 254, 0x80, 0x7f},
	}
	order := []string{"meta", "empty", "bin"}
	raw := writeContainer(t, sections, order)

	got, err := ReadAll(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(sections) {
		t.Fatalf("got %d sections, want %d", len(got), len(sections))
	}
	for name, want := range sections {
		if !bytes.Equal(got[name], want) {
			t.Errorf("section %q = %x, want %x", name, got[name], want)
		}
	}

	// Iteration order must match write order.
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range order {
		name, _, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if name != want {
			t.Fatalf("section order: got %q, want %q", name, want)
		}
	}
	if _, _, err := r.Next(); err != io.EOF {
		t.Fatalf("after last section: err = %v, want io.EOF", err)
	}
}

func TestDeterministicBytes(t *testing.T) {
	sections := map[string][]byte{"a": []byte("x"), "b": []byte("yy")}
	one := writeContainer(t, sections, []string{"a", "b"})
	two := writeContainer(t, sections, []string{"a", "b"})
	if !bytes.Equal(one, two) {
		t.Fatal("identical sections produced different container bytes")
	}
}

func TestBadMagic(t *testing.T) {
	_, err := NewReader(bytes.NewReader([]byte("GOBGOBGOBGOB")))
	if !errors.Is(err, ErrMagic) {
		t.Fatalf("err = %v, want ErrMagic", err)
	}
	// A gob stream as written by the pre-snapshot model files.
	_, err = NewReader(bytes.NewReader([]byte{0x3a, 0xff, 0x81, 0x03, 0x01, 0x01, 0x09, 0x70, 0x65, 0x72}))
	if !errors.Is(err, ErrMagic) {
		t.Fatalf("gob bytes: err = %v, want ErrMagic", err)
	}
}

func TestVersionSkew(t *testing.T) {
	raw := writeContainer(t, map[string][]byte{"a": []byte("x")}, []string{"a"})
	for _, v := range []uint16{0, 2, 999} {
		skewed := append([]byte(nil), raw...)
		binary.LittleEndian.PutUint16(skewed[8:], v)
		_, err := NewReader(bytes.NewReader(skewed))
		if !errors.Is(err, ErrVersion) {
			t.Fatalf("version %d: err = %v, want ErrVersion", v, err)
		}
	}
}

func TestTruncationDetected(t *testing.T) {
	raw := writeContainer(t, map[string][]byte{"a": bytes.Repeat([]byte("p"), 64)}, []string{"a"})
	// Every proper prefix must fail with ErrTruncated (or ErrMagic for
	// prefixes shorter than the header) — never succeed, never corrupt.
	for n := 0; n < len(raw); n++ {
		_, err := ReadAll(bytes.NewReader(raw[:n]))
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded successfully", n, len(raw))
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrMagic) {
			t.Fatalf("prefix of %d bytes: err = %v, want ErrTruncated/ErrMagic", n, err)
		}
	}
}

func TestBitFlipDetected(t *testing.T) {
	raw := writeContainer(t, map[string][]byte{
		"a": bytes.Repeat([]byte("q"), 32),
		"b": []byte("payload-b"),
	}, []string{"a", "b"})
	// Flipping any single bit anywhere in the file must be detected. (A
	// flip can also manifest as a truncation-style error when it lands in
	// a length prefix, or a magic/version error in the header.)
	for byteIdx := 0; byteIdx < len(raw); byteIdx++ {
		for bit := 0; bit < 8; bit++ {
			flipped := append([]byte(nil), raw...)
			flipped[byteIdx] ^= 1 << bit
			if _, err := ReadAll(bytes.NewReader(flipped)); err == nil {
				t.Fatalf("bit flip at byte %d bit %d went undetected", byteIdx, bit)
			}
		}
	}
}

func TestDuplicateSectionRejected(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := w.Section("dup", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadAll(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestTrailingGarbageIgnoredByReadAll(t *testing.T) {
	// ReadAll validates through the end marker; bytes beyond it are not
	// the container's concern (a stream may carry more data). But the
	// marker itself must be present and intact.
	raw := writeContainer(t, map[string][]byte{"a": []byte("x")}, []string{"a"})
	extended := append(append([]byte(nil), raw...), 0xde, 0xad)
	if _, err := ReadAll(bytes.NewReader(extended)); err != nil {
		t.Fatalf("trailing bytes after end marker: %v", err)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	e := NewEncoder(64)
	e.Uvarint(0)
	e.Uvarint(1<<63 + 17)
	e.Varint(-40)
	e.U16(0xbeef)
	e.U32(0xdeadbeef)
	e.U64(0x0123456789abcdef)
	e.I64(-9e18)
	e.F64(3.141592653589793)
	e.F32(-2.5)
	e.Bool(true)
	e.Bool(false)
	e.Duration(-7e9)
	e.Str("hello, 世界")
	e.Str("")
	e.Blob([]byte{9, 8, 7})

	d := NewDecoder(e.Bytes())
	if v := d.Uvarint(); v != 0 {
		t.Errorf("Uvarint = %d", v)
	}
	if v := d.Uvarint(); v != 1<<63+17 {
		t.Errorf("Uvarint = %d", v)
	}
	if v := d.Varint(); v != -40 {
		t.Errorf("Varint = %d", v)
	}
	if v := d.U16(); v != 0xbeef {
		t.Errorf("U16 = %x", v)
	}
	if v := d.U32(); v != 0xdeadbeef {
		t.Errorf("U32 = %x", v)
	}
	if v := d.U64(); v != 0x0123456789abcdef {
		t.Errorf("U64 = %x", v)
	}
	if v := d.I64(); v != -9e18 {
		t.Errorf("I64 = %d", v)
	}
	if v := d.F64(); v != 3.141592653589793 {
		t.Errorf("F64 = %v", v)
	}
	if v := d.F32(); v != -2.5 {
		t.Errorf("F32 = %v", v)
	}
	if v := d.Bool(); !v {
		t.Error("Bool = false, want true")
	}
	if v := d.Bool(); v {
		t.Error("Bool = true, want false")
	}
	if v := d.Duration(); v != -7e9 {
		t.Errorf("Duration = %v", v)
	}
	if v := d.Str(); v != "hello, 世界" {
		t.Errorf("Str = %q", v)
	}
	if v := d.Str(); v != "" {
		t.Errorf("Str = %q", v)
	}
	if v := d.Blob(); !bytes.Equal(v, []byte{9, 8, 7}) {
		t.Errorf("Blob = %x", v)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestDecoderSticky(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	_ = d.U64() // truncated
	if d.Err() == nil {
		t.Fatal("truncated U64 did not latch an error")
	}
	// Every later read returns zero values without panicking.
	if v := d.Uvarint(); v != 0 {
		t.Errorf("post-error Uvarint = %d", v)
	}
	if v := d.Str(); v != "" {
		t.Errorf("post-error Str = %q", v)
	}
	if err := d.Finish(); err == nil {
		t.Fatal("Finish after error = nil")
	}
}

func TestDecoderTrailingBytes(t *testing.T) {
	e := NewEncoder(8)
	e.U16(7)
	e.U16(9)
	d := NewDecoder(e.Bytes())
	_ = d.U16()
	if err := d.Finish(); err == nil {
		t.Fatal("Finish with unread bytes = nil")
	}
}

func TestDecoderCountGuard(t *testing.T) {
	// A huge claimed count with a tiny payload must fail, not allocate.
	e := NewEncoder(8)
	e.Uvarint(1 << 40)
	d := NewDecoder(e.Bytes())
	if n := d.Count(8); n != 0 {
		t.Fatalf("Count = %d, want 0", n)
	}
	if d.Err() == nil {
		t.Fatal("oversized count did not latch an error")
	}
}
