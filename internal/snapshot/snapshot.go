// Package snapshot is the repository's versioned binary persistence
// format: a magic-tagged, length-prefixed, CRC-guarded section container
// replacing raw encoding/gob for everything that must survive a process
// restart (trained classifiers, the streaming pipeline's checkpoints).
//
// gob's failure mode is the wrong one for checkpoint files: a layout
// change between writer and reader versions often still decodes — into
// silently wrong state — and a truncated file can decode a prefix without
// complaint. This container fails loudly instead:
//
//   - an 8-byte magic plus a format version head the file, so a foreign or
//     older/newer file is rejected by name (ErrMagic, ErrVersion), never
//     misparsed;
//   - every section carries its name, an explicit payload length, and a
//     CRC-32C of name+payload, so truncation and bit flips surface as
//     ErrTruncated/ErrCorrupt at the damaged section;
//   - an end marker carries a whole-file CRC-32C, so a file missing its
//     tail (the classic torn write) can never pass for complete.
//
// Section payloads are opaque bytes; the Encoder/Decoder in codec.go give
// writers a deterministic primitive layer (fixed-width little-endian
// integers, IEEE-754 bit-pattern floats, length-prefixed strings) so equal
// state always serialises to equal bytes — the property the daemon's
// byte-identical checkpoint tests pin.
package snapshot

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
)

// Version is the current container format version. Readers reject any
// other version: checkpoint state is too subtle to migrate silently, and
// an explicit error is exactly what an operator restarting a daemon over
// an old checkpoint needs to see.
const Version uint16 = 1

// magic identifies a snapshot container. Eight bytes, never reused across
// incompatible layouts (layout changes bump Version instead).
var magic = [8]byte{'L', 'T', 'E', 'F', 'P', 'S', 'N', 'P'}

// Limits keeping a corrupted length prefix from turning into an OOM: no
// section name beyond 1 KiB, no payload beyond 1 GiB.
const (
	maxNameLen    = 1 << 10
	maxPayloadLen = 1 << 30
)

var (
	// ErrMagic marks a file that is not a snapshot container at all.
	ErrMagic = errors.New("snapshot: bad magic (not a snapshot file)")
	// ErrVersion marks a container written by an incompatible format
	// version.
	ErrVersion = errors.New("snapshot: unsupported format version")
	// ErrTruncated marks a container that ends mid-structure.
	ErrTruncated = errors.New("snapshot: truncated")
	// ErrCorrupt marks a CRC mismatch or an impossible structural value.
	ErrCorrupt = errors.New("snapshot: corrupt")
)

// castagnoli is the CRC-32C table (the polynomial with hardware support
// on both amd64 and arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Writer streams a snapshot container to an io.Writer: header, sections
// via Section, and the end marker via Close.
type Writer struct {
	w    *bufio.Writer
	file hash.Hash32 // whole-file CRC, header through last section
	err  error
	done bool
}

// NewWriter writes the container header and returns the section writer.
func NewWriter(w io.Writer) (*Writer, error) {
	sw := &Writer{w: bufio.NewWriter(w), file: crc32.New(castagnoli)}
	var hdr [10]byte
	copy(hdr[:8], magic[:])
	binary.LittleEndian.PutUint16(hdr[8:], Version)
	if err := sw.emit(hdr[:]); err != nil {
		return nil, err
	}
	return sw, nil
}

// emit writes b to both the output and the whole-file CRC.
func (w *Writer) emit(b []byte) error {
	if w.err != nil {
		return w.err
	}
	if _, err := w.w.Write(b); err != nil {
		w.err = fmt.Errorf("snapshot: write: %w", err)
		return w.err
	}
	w.file.Write(b)
	return nil
}

// Section appends one named section. Names must be non-empty and unique
// per file by convention (the reader returns them in order and ReadAll
// rejects duplicates).
func (w *Writer) Section(name string, payload []byte) error {
	if w.done {
		return fmt.Errorf("snapshot: Section after Close")
	}
	if name == "" || len(name) > maxNameLen {
		return fmt.Errorf("snapshot: invalid section name %q", name)
	}
	if len(payload) > maxPayloadLen {
		return fmt.Errorf("snapshot: section %s payload too large (%d bytes)", name, len(payload))
	}
	var pfx [2 * binary.MaxVarintLen64]byte
	n := binary.PutUvarint(pfx[:], uint64(len(name)))
	n += binary.PutUvarint(pfx[n:], uint64(len(payload)))
	if err := w.emit(pfx[:n]); err != nil {
		return err
	}
	sec := crc32.New(castagnoli)
	sec.Write([]byte(name))
	sec.Write(payload)
	if err := w.emit([]byte(name)); err != nil {
		return err
	}
	if err := w.emit(payload); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], sec.Sum32())
	return w.emit(crc[:])
}

// Close writes the end marker (a zero name length followed by the
// whole-file CRC) and flushes. The Writer is unusable afterwards.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.done {
		return nil
	}
	w.done = true
	// The end marker's file CRC covers everything emitted so far,
	// including the zero byte that introduces the marker itself.
	if err := w.emit([]byte{0}); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], w.file.Sum32())
	if w.err == nil {
		if _, err := w.w.Write(crc[:]); err != nil {
			w.err = fmt.Errorf("snapshot: write: %w", err)
		}
	}
	if w.err != nil {
		return w.err
	}
	if err := w.w.Flush(); err != nil {
		w.err = fmt.Errorf("snapshot: flush: %w", err)
	}
	return w.err
}

// Reader iterates a snapshot container. Construction validates magic and
// version; Next steps sections until the end marker, validating each
// section CRC and finally the whole-file CRC.
type Reader struct {
	r    *bufio.Reader
	file hash.Hash32
	err  error
	done bool
}

// NewReader validates the container header.
func NewReader(r io.Reader) (*Reader, error) {
	sr := &Reader{r: bufio.NewReader(r), file: crc32.New(castagnoli)}
	var hdr [10]byte
	if _, err := io.ReadFull(sr.r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: reading header: %v", ErrTruncated, err)
	}
	if [8]byte(hdr[:8]) != magic {
		return nil, ErrMagic
	}
	sr.file.Write(hdr[:])
	if v := binary.LittleEndian.Uint16(hdr[8:]); v != Version {
		return nil, fmt.Errorf("%w: file version %d, this build reads version %d", ErrVersion, v, Version)
	}
	return sr, nil
}

// readFull reads exactly len(b) bytes into b, folding them into the
// whole-file CRC.
func (r *Reader) readFull(b []byte) error {
	if _, err := io.ReadFull(r.r, b); err != nil {
		return fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	r.file.Write(b)
	return nil
}

// uvarint reads one uvarint, CRC-folded byte by byte.
func (r *Reader) uvarint() (uint64, error) {
	var x uint64
	var s uint
	for i := 0; ; i++ {
		b, err := r.r.ReadByte()
		if err != nil {
			return 0, fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		r.file.Write([]byte{b})
		if i == binary.MaxVarintLen64 {
			return 0, fmt.Errorf("%w: varint overflow", ErrCorrupt)
		}
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				return 0, fmt.Errorf("%w: varint overflow", ErrCorrupt)
			}
			return x | uint64(b)<<s, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
}

// Next returns the next section. It returns io.EOF — and only then — after
// the end marker has been read and the whole-file CRC verified, so a
// caller that drains to io.EOF has proven the file complete and intact.
func (r *Reader) Next() (name string, payload []byte, err error) {
	if r.err != nil {
		return "", nil, r.err
	}
	if r.done {
		return "", nil, io.EOF
	}
	fail := func(e error) (string, []byte, error) {
		r.err = e
		return "", nil, e
	}
	nameLen, err := r.uvarint()
	if err != nil {
		return fail(err)
	}
	if nameLen == 0 {
		// End marker: the file CRC covers everything up to and including
		// the marker byte just read.
		want := r.file.Sum32()
		var crc [4]byte
		if _, err := io.ReadFull(r.r, crc[:]); err != nil {
			return fail(fmt.Errorf("%w: reading file CRC: %v", ErrTruncated, err))
		}
		if got := binary.LittleEndian.Uint32(crc[:]); got != want {
			return fail(fmt.Errorf("%w: file CRC mismatch (file %08x, computed %08x)", ErrCorrupt, got, want))
		}
		r.done = true
		r.err = io.EOF
		return "", nil, io.EOF
	}
	if nameLen > maxNameLen {
		return fail(fmt.Errorf("%w: section name length %d", ErrCorrupt, nameLen))
	}
	payloadLen, err := r.uvarint()
	if err != nil {
		return fail(err)
	}
	if payloadLen > maxPayloadLen {
		return fail(fmt.Errorf("%w: section payload length %d", ErrCorrupt, payloadLen))
	}
	buf := make([]byte, nameLen+payloadLen)
	if err := r.readFull(buf); err != nil {
		return fail(err)
	}
	var crc [4]byte
	if err := r.readFull(crc[:]); err != nil {
		return fail(err)
	}
	sec := crc32.New(castagnoli)
	sec.Write(buf)
	name = string(buf[:nameLen])
	if got := binary.LittleEndian.Uint32(crc[:]); got != sec.Sum32() {
		return fail(fmt.Errorf("%w: section %q CRC mismatch (file %08x, computed %08x)", ErrCorrupt, name, got, sec.Sum32()))
	}
	return name, buf[nameLen:], nil
}

// ReadAll drains a container into a name→payload map, rejecting duplicate
// section names. It only returns once the end marker and whole-file CRC
// have validated, so a non-nil map is a proven-intact file.
func ReadAll(r io.Reader) (map[string][]byte, error) {
	sr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]byte)
	for {
		name, payload, err := sr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("%w: duplicate section %q", ErrCorrupt, name)
		}
		out[name] = payload
	}
}
