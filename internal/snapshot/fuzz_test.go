package snapshot

import (
	"bytes"
	"testing"
)

// FuzzSnapshotDecode drives the container reader over arbitrary bytes.
// The invariants: the reader never panics, never allocates unboundedly,
// and any input it accepts must re-encode to the exact same section
// content — so a truncated or bit-flipped checkpoint can be rejected but
// never silently mis-restored.
func FuzzSnapshotDecode(f *testing.F) {
	// Seed 1: a healthy two-section container.
	var healthy bytes.Buffer
	w, err := NewWriter(&healthy)
	if err != nil {
		f.Fatal(err)
	}
	if err := w.Section("stream.stats", []byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		f.Fatal(err)
	}
	if err := w.Section("stream.votes", bytes.Repeat([]byte{0xab}, 40)); err != nil {
		f.Fatal(err)
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(healthy.Bytes())
	// Seed 2: truncated mid-section.
	f.Add(healthy.Bytes()[:healthy.Len()-9])
	// Seed 3: bit-flipped payload.
	flipped := append([]byte(nil), healthy.Bytes()...)
	flipped[14] ^= 0x10
	f.Add(flipped)
	// Seed 4: empty container (header + end marker only).
	var empty bytes.Buffer
	ew, err := NewWriter(&empty)
	if err != nil {
		f.Fatal(err)
	}
	if err := ew.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())
	// Seed 5: bare garbage.
	f.Add([]byte("not a snapshot at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		sections, err := ReadAll(bytes.NewReader(data))
		if err != nil {
			return // rejected: exactly what damaged input should get
		}
		// Accepted input must round-trip: rewriting the sections in reader
		// order and reading them back yields identical content.
		r, rerr := NewReader(bytes.NewReader(data))
		if rerr != nil {
			t.Fatalf("ReadAll accepted what NewReader rejects: %v", rerr)
		}
		var rebuilt bytes.Buffer
		w, werr := NewWriter(&rebuilt)
		if werr != nil {
			t.Fatal(werr)
		}
		for {
			name, payload, nerr := r.Next()
			if nerr != nil {
				break
			}
			if !bytes.Equal(payload, sections[name]) {
				t.Fatalf("section %q differs between Next and ReadAll", name)
			}
			if err := w.Section(name, payload); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		round, err := ReadAll(bytes.NewReader(rebuilt.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded container failed to decode: %v", err)
		}
		if len(round) != len(sections) {
			t.Fatalf("re-encode changed section count: %d != %d", len(round), len(sections))
		}
		for name, payload := range sections {
			if !bytes.Equal(round[name], payload) {
				t.Fatalf("re-encode changed section %q", name)
			}
		}
	})
}
