package snapshot

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// Encoder builds a section payload from deterministic primitives: every
// integer is fixed-width little-endian or uvarint, floats are IEEE-754 bit
// patterns, strings and byte slices are length-prefixed. Equal values
// always produce equal bytes — there is no map iteration, padding, or
// reflection anywhere in the layer.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with the given initial capacity hint.
func NewEncoder(capHint int) *Encoder { return &Encoder{buf: make([]byte, 0, capHint)} }

// Bytes returns the accumulated payload.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the accumulated payload size.
func (e *Encoder) Len() int { return len(e.buf) }

// Uvarint appends a varint-encoded unsigned integer.
func (e *Encoder) Uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

// Varint appends a zig-zag varint-encoded signed integer.
func (e *Encoder) Varint(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

// U16 appends a fixed-width little-endian uint16.
func (e *Encoder) U16(v uint16) { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }

// U32 appends a fixed-width little-endian uint32.
func (e *Encoder) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a fixed-width little-endian uint64.
func (e *Encoder) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends a fixed-width little-endian int64.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// F64 appends the IEEE-754 bit pattern of a float64.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// F32 appends the IEEE-754 bit pattern of a float32.
func (e *Encoder) F32(v float32) { e.U32(math.Float32bits(v)) }

// Bool appends one byte, 0 or 1.
func (e *Encoder) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	e.buf = append(e.buf, b)
}

// Duration appends a time.Duration as a varint of nanoseconds.
func (e *Encoder) Duration(d time.Duration) { e.Varint(int64(d)) }

// Str appends a length-prefixed string.
func (e *Encoder) Str(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Blob appends a length-prefixed byte slice.
func (e *Encoder) Blob(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Decoder consumes a section payload written by Encoder. It is
// error-sticky: the first failure (truncation, overflow, impossible
// length) latches into Err, every later read returns zero values, and no
// input — however corrupt — can make it panic or allocate unboundedly.
// Callers check Err once at the end.
type Decoder struct {
	b   []byte
	off int
	err error
}

// NewDecoder wraps a payload.
func NewDecoder(b []byte) *Decoder { return &Decoder{b: b} }

// Err returns the first decoding error, nil if all reads succeeded.
func (d *Decoder) Err() error { return d.err }

// Remaining returns how many bytes are left unread.
func (d *Decoder) Remaining() int { return len(d.b) - d.off }

// fail latches the first error.
func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
	}
}

// take returns the next n bytes, or nil after latching a truncation error.
func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.b)-d.off < n {
		d.fail("payload truncated (want %d bytes, %d left)", n, len(d.b)-d.off)
		return nil
	}
	b := d.b[d.off : d.off+n]
	d.off += n
	return b
}

// Uvarint reads a varint-encoded unsigned integer.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// Varint reads a zig-zag varint-encoded signed integer.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// U16 reads a fixed-width little-endian uint16.
func (d *Decoder) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a fixed-width little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a fixed-width little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a fixed-width little-endian int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// F64 reads an IEEE-754 float64 bit pattern.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// F32 reads an IEEE-754 float32 bit pattern.
func (d *Decoder) F32() float32 { return math.Float32frombits(d.U32()) }

// Bool reads one byte, rejecting values other than 0 and 1.
func (d *Decoder) Bool() bool {
	b := d.take(1)
	if b == nil {
		return false
	}
	if b[0] > 1 {
		d.fail("bad bool byte %d", b[0])
		return false
	}
	return b[0] == 1
}

// Duration reads a time.Duration written by Encoder.Duration.
func (d *Decoder) Duration() time.Duration { return time.Duration(d.Varint()) }

// Str reads a length-prefixed string.
func (d *Decoder) Str() string {
	n := d.Uvarint()
	if d.err == nil && n > uint64(d.Remaining()) {
		d.fail("string length %d exceeds %d remaining bytes", n, d.Remaining())
	}
	b := d.take(int(n))
	if b == nil {
		return ""
	}
	return string(b)
}

// Blob reads a length-prefixed byte slice (aliasing the payload buffer).
func (d *Decoder) Blob() []byte {
	n := d.Uvarint()
	if d.err == nil && n > uint64(d.Remaining()) {
		d.fail("blob length %d exceeds %d remaining bytes", n, d.Remaining())
	}
	return d.take(int(n))
}

// Count reads a uvarint collection length, validating it against a
// per-element minimum size so a corrupted count cannot drive an unbounded
// allocation: the elements must at least fit in the remaining bytes.
func (d *Decoder) Count(minElemBytes int) int {
	n := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if minElemBytes < 1 {
		minElemBytes = 1
	}
	if n > uint64(d.Remaining()/minElemBytes) {
		d.fail("collection length %d exceeds remaining payload", n)
		return 0
	}
	return int(n)
}

// Finish reports an error if any read failed or unread bytes remain — a
// payload must be consumed exactly.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("%w: %d trailing bytes in payload", ErrCorrupt, d.Remaining())
	}
	return nil
}
