package stream_test

import (
	"bytes"
	"io"
	"math/rand/v2"
	"testing"
	"time"

	"ltefp/internal/features"
	"ltefp/internal/lte/dci"
	"ltefp/internal/lte/rnti"
	"ltefp/internal/snapshot"
	"ltefp/internal/stream"
	"ltefp/internal/trace"
)

// benchCheckpoint builds a checkpoint sized like a busy cell: many
// tracked users, each mid-window with a partially filled vote ring —
// the state the daemon serialises every checkpoint period.
func benchCheckpoint(users, recsPerUser, horizon int) *stream.Checkpoint {
	rng := rand.New(rand.NewPCG(42, 1))
	c := &stream.Checkpoint{
		Now: 90 * time.Second,
		Stats: stream.Stats{
			Records: 1e6, Rows: 1e4, Predictions: 1e4, Verdicts: 5e3,
			Users: users, End: 90 * time.Second,
		},
	}
	for u := 0; u < users; u++ {
		key := stream.Key{CellID: 1, RNTI: rnti.RNTI(100 + u)}
		st := features.IncrementalState{
			Width:   time.Second,
			Stride:  time.Second,
			Started: true,
			Next:    91 * time.Second,
			LastAt:  90 * time.Second,
		}
		for r := 0; r < recsPerUser; r++ {
			st.Buf = append(st.Buf, trace.Record{
				At:     90*time.Second + time.Duration(r)*time.Millisecond,
				CellID: 1,
				RNTI:   key.RNTI,
				Dir:    dci.Direction(1 + rng.Int64N(2)),
				Bytes:  int(rng.Int64N(1e5)),
			})
		}
		c.Users = append(c.Users, stream.UserState{Key: key, Inc: st})
		slots := make([]int16, horizon)
		for s := range slots {
			slots[s] = int16(rng.Int64N(9))
		}
		c.Votes = append(c.Votes, stream.VoteState{
			Key: key, Slots: slots, Pos: u % horizon, Fill: horizon,
		})
	}
	return c
}

// BenchmarkCheckpointWrite measures serialising a 64-user pipeline
// checkpoint through the snapshot container — the cost the daemon pays
// at every checkpoint period, so it bounds how often checkpointing is
// affordable.
func BenchmarkCheckpointWrite(b *testing.B) {
	c := benchCheckpoint(64, 32, 15)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := snapshot.NewWriter(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if err := c.AppendTo(w); err != nil {
			b.Fatal(err)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpointRestore measures the other direction: parsing the
// container and rebuilding the checkpoint structs, the startup cost of
// a daemon restart.
func BenchmarkCheckpointRestore(b *testing.B) {
	c := benchCheckpoint(64, 32, 15)
	var buf bytes.Buffer
	w, err := snapshot.NewWriter(&buf)
	if err != nil {
		b.Fatal(err)
	}
	if err := c.AppendTo(w); err != nil {
		b.Fatal(err)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sections, err := snapshot.ReadAll(bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := stream.ReadCheckpoint(sections); err != nil {
			b.Fatal(err)
		}
	}
}
