package stream_test

import (
	"context"
	"runtime"
	"testing"
	"time"

	"ltefp/internal/capture"
	"ltefp/internal/obs"
	"ltefp/internal/stream"
)

// waitGoroutines polls until the goroutine count drops back to the
// baseline (or a grace period expires), absorbing runtime bookkeeping
// noise.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d running, baseline %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStreamCancelDrainsCleanly cancels a pipeline mid-run and checks the
// contract: Run returns the context error, the stages drain rather than
// abandon in-flight work, and no goroutine outlives the call.
func TestStreamCancelDrainsCleanly(t *testing.T) {
	c := classifier(t)
	res, err := capture.Run(twoUserScenario(t, 31))
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	var rows int
	cfg := stream.Config{
		Classifier: c,
		QueueDepth: 2,
		TapWindow: func(stream.Key, time.Duration, []float64) {
			rows++
			if rows == 10 {
				cancel()
			}
			time.Sleep(time.Millisecond)
		},
	}
	st, err := stream.Run(ctx, &stream.ReplaySource{Trace: res.Records, Slice: 100 * time.Millisecond}, cfg)
	if err != context.Canceled {
		t.Fatalf("cancelled Run returned %v, want context.Canceled", err)
	}
	if st == nil {
		t.Fatal("cancelled Run returned nil stats")
	}
	if rows < 10 {
		t.Fatalf("pipeline stopped after %d rows, cancel fired at 10", rows)
	}
	// Everything handed downstream before the cancel must have been
	// processed, not abandoned: rows delivered == rows classified.
	if st.Predictions+st.ShedPredictions != st.Rows {
		t.Fatalf("classify dropped work on cancel: rows %d, predictions %d, shed %d",
			st.Rows, st.Predictions, st.ShedPredictions)
	}
	waitGoroutines(t, base)
	cancel()
}

// TestStreamCompletionLeavesNoGoroutines is the leak check for the happy
// path: a run to completion leaves the goroutine count where it started.
func TestStreamCompletionLeavesNoGoroutines(t *testing.T) {
	c := classifier(t)
	res, err := capture.Run(twoUserScenario(t, 37))
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	_, err = stream.Run(context.Background(),
		&stream.ReplaySource{Trace: res.Records, Slice: 500 * time.Millisecond},
		stream.Config{Classifier: c})
	if err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, base)
}

// TestStreamShedsUnderBackpressure forces overload — a one-slot queue and
// an artificially slow assembler — and checks the shed contract: records
// are dropped instead of blocking the source, every drop is counted in
// Stats, and the obs counter agrees. Nothing vanishes silently.
func TestStreamShedsUnderBackpressure(t *testing.T) {
	c := classifier(t)
	res, err := capture.Run(twoUserScenario(t, 41))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	cfg := stream.Config{
		Classifier: c,
		QueueDepth: 1,
		Shed:       true,
		Metrics:    reg.Scope("stream"),
		// Slow the assemble stage so the source's queue stays full.
		TapWindow: func(stream.Key, time.Duration, []float64) {
			time.Sleep(2 * time.Millisecond)
		},
	}
	st, err := stream.Run(context.Background(),
		&stream.ReplaySource{Trace: res.Records, Slice: 50 * time.Millisecond}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.ShedRecords == 0 {
		t.Fatal("overloaded shed-mode run shed nothing; backpressure path untested")
	}
	// Conservation: every capture record was either delivered or counted
	// as shed, and every delivered row was classified or counted as shed.
	if st.Records+st.ShedRecords != int64(len(res.Records)) {
		t.Fatalf("records leak: %d delivered + %d shed != %d captured",
			st.Records, st.ShedRecords, len(res.Records))
	}
	if st.Predictions+st.ShedPredictions != st.Rows {
		t.Fatalf("rows leak: %d predicted + %d shed != %d rows",
			st.Predictions, st.ShedPredictions, st.Rows)
	}
	snap := reg.Snapshot()
	if got := snap.Counter("stream.source.shed_records"); got != st.ShedRecords {
		t.Fatalf("obs shed_records = %d, Stats says %d", got, st.ShedRecords)
	}
	if got := snap.Counter("stream.source.records"); got != st.Records {
		t.Fatalf("obs records = %d, Stats says %d", got, st.Records)
	}
}
