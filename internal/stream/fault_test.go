package stream_test

import (
	"testing"
	"time"

	"ltefp/internal/capture"
	"ltefp/internal/obs"
	"ltefp/internal/sim"
	"ltefp/internal/stream"
	"ltefp/internal/trace"
)

// TestFaultInjectorOutage: records inside an outage window never reach the
// pipeline, records outside it all do, and the drop count balances.
func TestFaultInjectorOutage(t *testing.T) {
	res, err := capture.Run(twoUserScenario(t, 51))
	if err != nil {
		t.Fatal(err)
	}
	out := stream.Window{From: 3 * time.Second, To: 6 * time.Second}
	var inside int64
	for _, r := range res.Records {
		if r.At >= out.From && r.At < out.To {
			inside++
		}
	}
	if inside == 0 {
		t.Fatal("outage window covers no records; scenario too short")
	}
	reg := obs.NewRegistry()
	inj := &stream.FaultInjector{
		Src:     &stream.ReplaySource{Trace: res.Records, Slice: 100 * time.Millisecond},
		RNG:     sim.NewRNG(1),
		Outages: []stream.Window{out},
		Metrics: reg.Scope("faults"),
	}
	var got trace.Trace
	for {
		next, _, more := inj.Next(got)
		got = next
		if !more {
			break
		}
	}
	if inj.OutageDropped != inside {
		t.Fatalf("OutageDropped = %d, window holds %d records", inj.OutageDropped, inside)
	}
	if int64(len(got))+inj.OutageDropped != int64(len(res.Records)) {
		t.Fatalf("record leak: %d kept + %d dropped != %d total",
			len(got), inj.OutageDropped, len(res.Records))
	}
	for _, r := range got {
		if r.At >= out.From && r.At < out.To {
			t.Fatalf("record at %v survived the outage window", r.At)
		}
	}
	if c := reg.Snapshot().Counter("faults.outage_dropped"); c != inj.OutageDropped {
		t.Fatalf("obs outage_dropped = %d, injector says %d", c, inj.OutageDropped)
	}
}

// TestFaultInjectorLossBurst: a certain-loss burst drops exactly the
// records in its window; a zero-probability burst drops none.
func TestFaultInjectorLossBurst(t *testing.T) {
	res, err := capture.Run(twoUserScenario(t, 53))
	if err != nil {
		t.Fatal(err)
	}
	w := stream.Window{From: 2 * time.Second, To: 4 * time.Second}
	for _, tc := range []struct {
		prob float64
		want func(inside int64) int64
	}{
		{1, func(inside int64) int64 { return inside }},
		{0, func(int64) int64 { return 0 }},
	} {
		inj := &stream.FaultInjector{
			Src:    &stream.ReplaySource{Trace: res.Records, Slice: 100 * time.Millisecond},
			RNG:    sim.NewRNG(7),
			Bursts: []stream.LossBurst{{Window: w, Prob: tc.prob}},
		}
		var kept trace.Trace
		for {
			next, _, more := inj.Next(kept)
			kept = next
			if !more {
				break
			}
		}
		var inside int64
		for _, r := range res.Records {
			if r.At >= w.From && r.At < w.To {
				inside++
			}
		}
		if want := tc.want(inside); inj.BurstDropped != want {
			t.Fatalf("prob %v: BurstDropped = %d, want %d", tc.prob, inj.BurstDropped, want)
		}
		if int64(len(kept))+inj.BurstDropped != int64(len(res.Records)) {
			t.Fatalf("prob %v: record leak", tc.prob)
		}
	}
}

// TestFaultInjectorChurnStorm: with certain churn covering the whole run,
// every user is remapped exactly once, every record carries an alias, and
// the pipeline tracks the aliases as distinct keys while per-alias traffic
// still classifies.
func TestFaultInjectorChurnStorm(t *testing.T) {
	c := classifier(t)
	res, err := capture.Run(twoUserScenario(t, 59))
	if err != nil {
		t.Fatal(err)
	}
	_, origKeys := perKey(res.Records)
	inj := &stream.FaultInjector{
		Src: &stream.ReplaySource{Trace: res.Records, Slice: 100 * time.Millisecond},
		RNG: sim.NewRNG(13),
		Storms: []stream.ChurnStorm{{
			Window: stream.Window{From: 0, To: time.Hour},
			Prob:   1,
		}},
	}
	got, st := runStream(t, inj, c, nil)
	if inj.RemappedUsers != int64(len(origKeys)) {
		t.Fatalf("RemappedUsers = %d, scenario has %d users", inj.RemappedUsers, len(origKeys))
	}
	if inj.RemappedRecords != int64(len(res.Records)) {
		t.Fatalf("RemappedRecords = %d, want every one of %d", inj.RemappedRecords, len(res.Records))
	}
	if st.Records != int64(len(res.Records)) {
		t.Fatalf("churn lost records: streamed %d of %d", st.Records, len(res.Records))
	}
	// The remap is per-user-permanent, so alias count == user count and no
	// original key survives (alias collisions with an original RNTI are
	// possible in principle but not under this seed).
	if st.Users != len(origKeys) {
		t.Fatalf("pipeline tracked %d keys, want %d aliases", st.Users, len(origKeys))
	}
	for k, u := range got {
		orig := false
		for _, ok := range origKeys {
			if k == ok {
				orig = true
			}
		}
		if orig {
			t.Fatalf("original key %v leaked through a total churn storm", k)
		}
		if len(u.rows) == 0 {
			t.Fatalf("alias %v produced no windows", k)
		}
	}
}

// TestStreamUnderCompoundFaults runs the full pipeline behind an injector
// combining all three fault models and checks the books still balance:
// streamed records == captured records minus counted drops, and the
// run completes cleanly.
func TestStreamUnderCompoundFaults(t *testing.T) {
	c := classifier(t)
	res, err := capture.Run(twoUserScenario(t, 61))
	if err != nil {
		t.Fatal(err)
	}
	inj := &stream.FaultInjector{
		Src:     &stream.ReplaySource{Trace: res.Records, Slice: 100 * time.Millisecond},
		RNG:     sim.NewRNG(17),
		Outages: []stream.Window{{From: 2 * time.Second, To: 2500 * time.Millisecond}},
		Bursts: []stream.LossBurst{{
			Window: stream.Window{From: 5 * time.Second, To: 8 * time.Second}, Prob: 0.3,
		}},
		Storms: []stream.ChurnStorm{{
			Window: stream.Window{From: 9 * time.Second, To: 10 * time.Second}, Prob: 0.5,
		}},
	}
	_, st := runStream(t, inj, c, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(len(res.Records)) - inj.OutageDropped - inj.BurstDropped
	if st.Records != want {
		t.Fatalf("faulty stream delivered %d records, books say %d (%d captured, %d outage, %d burst)",
			st.Records, want, len(res.Records), inj.OutageDropped, inj.BurstDropped)
	}
	if inj.OutageDropped == 0 || inj.BurstDropped == 0 {
		t.Fatalf("fault models idle: outage %d, burst %d", inj.OutageDropped, inj.BurstDropped)
	}
	if st.Rows == 0 || st.Verdicts == 0 {
		t.Fatal("pipeline produced nothing under faults")
	}
}
