package stream

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"ltefp/internal/features"
	"ltefp/internal/obs"
	"ltefp/internal/trace"
)

// recBatch is one source slice: the records drained plus the simulated
// time reached (all records with At < now are delivered, so the assembler
// may close windows ending at or before now).
type recBatch struct {
	recs trace.Trace
	now  time.Duration
}

// rowBatch is a classify work unit: parallel key/start/row columns backed
// by one flat float64 block sized so it never reallocates under MaxBatch.
type rowBatch struct {
	keys   []Key
	starts []time.Duration
	rows   [][]float64
}

// predBatch is a classified rowBatch.
type predBatch struct {
	keys   []Key
	starts []time.Duration
	apps   []string
}

// stageMetrics is one stage's obs handles; all nil (no-op) when disabled.
type stageMetrics struct {
	batches *obs.Counter
	items   *obs.Counter
	shed    *obs.Counter
	depth   *obs.Gauge
	ms      *obs.Histogram
}

func newStageMetrics(sc obs.Scope, items, shed string) stageMetrics {
	return stageMetrics{
		batches: sc.Counter("batches"),
		items:   sc.Counter(items),
		shed:    sc.Counter(shed),
		depth:   sc.Gauge("queue_depth"),
		ms:      sc.Histogram("stage_ms", obs.LatencyBuckets()),
	}
}

// pipeline carries one Run's state. Each stats field is written by exactly
// one stage goroutine and read only after the WaitGroup settles.
type pipeline struct {
	cfg   Config
	table *appTable

	mSource   stageMetrics
	mAssemble stageMetrics
	mClassify stageMetrics
	mVerdict  stageMetrics
	activeKey *obs.Gauge
	outOfObs  *obs.Counter
	retrainC  *obs.Counter

	// assemble-stage state
	users  map[Key]*features.Incremental
	order  []Key // sorted, for deterministic advance/flush iteration
	curKey Key
	cur    rowBatch
	// flat is the arena row copies point into; chunks are shared across
	// batches and abandoned to the GC once full, so rows already handed
	// downstream stay valid.
	flat []float64

	st Stats
}

// Run executes the pipeline over the source until the source is exhausted
// or ctx is cancelled. On cancellation the stages drain their in-flight
// work before returning, and Run reports ctx's error alongside the stats
// gathered so far.
func Run(ctx context.Context, src Source, cfg Config) (*Stats, error) {
	if cfg.Classifier == nil {
		return nil, fmt.Errorf("stream: Config.Classifier is required")
	}
	cfg = cfg.withDefaults()
	sc := cfg.Metrics
	p := &pipeline{
		cfg:       cfg,
		table:     newAppTable(),
		mSource:   newStageMetrics(sc.Scope("source"), "records", "shed_records"),
		mAssemble: newStageMetrics(sc.Scope("assemble"), "rows", "shed_rows"),
		mClassify: newStageMetrics(sc.Scope("classify"), "predictions", "shed_predictions"),
		mVerdict:  newStageMetrics(sc.Scope("verdict"), "verdicts", "shed_verdicts"),
		activeKey: sc.Scope("assemble").Gauge("active_keys"),
		outOfObs:  sc.Scope("assemble").Counter("out_of_order"),
		retrainC:  sc.Scope("verdict").Counter("retrain_signals"),
		users:     make(map[Key]*features.Incremental),
	}

	recCh := make(chan recBatch, cfg.QueueDepth)
	rowCh := make(chan rowBatch, cfg.QueueDepth)
	predCh := make(chan predBatch, cfg.QueueDepth)

	var wg sync.WaitGroup
	wg.Add(4)
	go func() { defer wg.Done(); p.sourceStage(ctx, src, recCh) }()
	go func() { defer wg.Done(); p.assembleStage(recCh, rowCh) }()
	go func() { defer wg.Done(); p.classifyStage(rowCh, predCh) }()
	go func() { defer wg.Done(); p.verdictStage(predCh) }()
	wg.Wait()

	p.st.Users = len(p.users)
	for _, inc := range p.users {
		p.st.OutOfOrder += inc.OutOfOrder
	}
	if p.st.OutOfOrder > 0 {
		p.outOfObs.Add(p.st.OutOfOrder)
	}
	st := p.st
	return &st, ctx.Err()
}

// sourceStage pulls slices until the source is exhausted or the context is
// cancelled. It is the only stage that watches ctx: downstream stages end
// by draining their closed input, which guarantees in-flight work is
// finished, not abandoned.
func (p *pipeline) sourceStage(ctx context.Context, src Source, out chan<- recBatch) {
	defer close(out)
	buf := make(trace.Trace, 0, 1024)
	for {
		select {
		case <-ctx.Done():
			return
		default:
		}
		t := p.mSource.ms.Start()
		next, now, more := src.Next(buf[:0])
		buf = next
		t.Stop()
		p.st.End = now
		b := recBatch{now: now}
		if len(buf) > 0 {
			b.recs = append(trace.Trace(nil), buf...)
		}
		p.mSource.batches.Inc()
		if p.cfg.Shed {
			select {
			case out <- b:
				p.st.Records += int64(len(b.recs))
				p.mSource.items.Add(int64(len(b.recs)))
			default:
				p.st.ShedRecords += int64(len(b.recs))
				p.mSource.shed.Add(int64(len(b.recs)))
			}
		} else {
			select {
			case out <- b:
				p.st.Records += int64(len(b.recs))
				p.mSource.items.Add(int64(len(b.recs)))
			case <-ctx.Done():
				return
			}
		}
		p.mSource.depth.Set(int64(len(out)))
		if !more {
			return
		}
	}
}

// assembleStage routes records to per-user incremental extractors and
// batches the emitted rows. Users are advanced and flushed in sorted key
// order so row order — and therefore every downstream artefact — is
// deterministic for a given record sequence.
func (p *pipeline) assembleStage(in <-chan recBatch, out chan<- rowBatch) {
	defer close(out)
	p.resetBatch()
	emit := p.emitRow(out)
	for b := range in {
		t := p.mAssemble.ms.Start()
		for _, r := range b.recs {
			k := Key{CellID: r.CellID, RNTI: r.RNTI}
			inc, ok := p.users[k]
			if !ok {
				inc = features.NewIncremental(p.cfg.Window, p.cfg.Stride)
				p.users[k] = inc
				i := sort.Search(len(p.order), func(i int) bool { return keyLess(k, p.order[i]) })
				p.order = append(p.order, Key{})
				copy(p.order[i+1:], p.order[i:])
				p.order[i] = k
				p.activeKey.Set(int64(len(p.order)))
			}
			p.curKey = k
			inc.Push(r, emit)
		}
		// The source guarantees all records with At < b.now are delivered:
		// close every window ending by then, idle users included.
		for _, k := range p.order {
			p.curKey = k
			p.users[k].AdvanceTo(b.now, emit)
		}
		t.Stop()
		p.flushRows(out)
	}
	for _, k := range p.order {
		p.curKey = k
		p.users[k].Flush(emit)
	}
	p.flushRows(out)
}

func keyLess(a, b Key) bool {
	if a.CellID != b.CellID {
		return a.CellID < b.CellID
	}
	return a.RNTI < b.RNTI
}

// arenaRows is the arena chunk size in rows: small enough that the tail
// wasted when a chunk is abandoned is negligible, large enough to keep
// allocation off the per-row path.
const arenaRows = 16

// resetBatch starts a fresh, empty row batch. The arena is NOT reset —
// rows from earlier batches keep pointing into it.
func (p *pipeline) resetBatch() {
	p.cur = rowBatch{}
}

// emitRow returns the assembler's emit callback (built once per stage —
// it is called per row); curKey names the user the row belongs to. The
// extractor's row is scratch, so it is copied into the arena; appends
// there never grow a chunk in place, which would move rows already handed
// downstream.
func (p *pipeline) emitRow(out chan<- rowBatch) func(start time.Duration, row []float64) {
	return func(start time.Duration, row []float64) {
		if p.cfg.TapWindow != nil {
			p.cfg.TapWindow(p.curKey, start, row)
		}
		if len(p.flat)+features.TotalDim > cap(p.flat) {
			p.flat = make([]float64, 0, arenaRows*features.TotalDim)
		}
		n := len(p.flat)
		p.flat = append(p.flat, row...)
		p.cur.keys = append(p.cur.keys, p.curKey)
		p.cur.starts = append(p.cur.starts, start)
		p.cur.rows = append(p.cur.rows, p.flat[n:len(p.flat):len(p.flat)])
		if len(p.cur.rows) >= p.cfg.MaxBatch {
			p.flushRows(out)
		}
	}
}

// flushRows ships the accumulated rows (if any) under the shed policy.
func (p *pipeline) flushRows(out chan<- rowBatch) {
	if len(p.cur.rows) == 0 {
		return
	}
	b := p.cur
	p.mAssemble.batches.Inc()
	if p.cfg.Shed {
		select {
		case out <- b:
			p.st.Rows += int64(len(b.rows))
			p.mAssemble.items.Add(int64(len(b.rows)))
		default:
			p.st.ShedRows += int64(len(b.rows))
			p.mAssemble.shed.Add(int64(len(b.rows)))
		}
	} else {
		out <- b
		p.st.Rows += int64(len(b.rows))
		p.mAssemble.items.Add(int64(len(b.rows)))
	}
	p.mAssemble.depth.Set(int64(len(out)))
	p.resetBatch()
}

// classifyStage runs the forest hierarchy batched over each row batch.
// Batch composition cannot change predictions (PredictBatch is documented
// bit-identical to per-row prediction), so shed/batching policy upstream
// never alters what a surviving row classifies as.
func (p *pipeline) classifyStage(in <-chan rowBatch, out chan<- predBatch) {
	defer close(out)
	for b := range in {
		t := p.mClassify.ms.Start()
		apps := p.cfg.Classifier.PredictBatch(b.rows)
		t.Stop()
		pb := predBatch{keys: b.keys, starts: b.starts, apps: apps}
		p.mClassify.batches.Inc()
		if p.cfg.Shed {
			select {
			case out <- pb:
				p.st.Predictions += int64(len(apps))
				p.mClassify.items.Add(int64(len(apps)))
			default:
				p.st.ShedPredictions += int64(len(apps))
				p.mClassify.shed.Add(int64(len(apps)))
			}
		} else {
			out <- pb
			p.st.Predictions += int64(len(apps))
			p.mClassify.items.Add(int64(len(apps)))
		}
		p.mClassify.depth.Set(int64(len(out)))
	}
}

// userVote is the verdict stage's per-user state.
type userVote struct {
	ring  *voteRing
	drift driftMonitor
}

// verdictStage folds predictions into rolling per-user majority votes,
// emitting one verdict per classified window once the user has enough
// history, and watching confidence for the retrain gate.
func (p *pipeline) verdictStage(in <-chan predBatch) {
	votes := make(map[Key]*userVote)
	for b := range in {
		t := p.mVerdict.ms.Start()
		for i, k := range b.keys {
			u, ok := votes[k]
			if !ok {
				u = &userVote{
					ring: newVoteRing(p.cfg.VoteHorizon, len(p.table.names)),
					drift: driftMonitor{
						threshold:  p.cfg.DriftThreshold,
						minWindows: p.cfg.DriftMinWindows,
					},
				}
				votes[k] = u
			}
			u.ring.push(p.table.index[b.apps[i]])
			if u.ring.fill < p.cfg.MinVerdictWindows {
				continue
			}
			app, conf := u.ring.majority()
			v := Verdict{
				At:         b.starts[i],
				Key:        k,
				App:        p.table.names[app],
				Confidence: conf,
				Windows:    u.ring.fill,
			}
			p.st.Verdicts++
			p.mVerdict.items.Inc()
			if p.cfg.OnVerdict != nil {
				p.cfg.OnVerdict(v)
			}
			if u.drift.observe(conf, u.ring.fill) {
				p.st.RetrainSignals++
				p.retrainC.Inc()
				if p.cfg.OnRetrain != nil {
					p.cfg.OnRetrain(RetrainSignal{
						At: b.starts[i], Key: k, Confidence: conf, Windows: u.ring.fill,
					})
				}
			}
		}
		p.mVerdict.batches.Inc()
		t.Stop()
	}
}
