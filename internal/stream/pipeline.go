package stream

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"ltefp/internal/attack/fingerprint"
	"ltefp/internal/features"
	"ltefp/internal/obs"
	"ltefp/internal/trace"
)

// recBatch is one source slice: the records drained plus the simulated
// time reached (all records with At < now are delivered, so the assembler
// may close windows ending at or before now). The record slice is owned by
// the batch and returned to the source's freelist once assembled. A batch
// with ckpt set is a checkpoint barrier: it carries no records and flows
// the partially-built checkpoint through every stage, each stage adding
// its own state as the barrier passes.
type recBatch struct {
	recs trace.Trace
	now  time.Duration
	ckpt *Checkpoint
}

// rowBatch is the pipeline's recyclable work bundle. The assembler fills
// keys/starts/rows, the classifier writes apps, and the verdict stage —
// the last reader — returns the whole bundle to the freelist. rows point
// into the bundle's own flat arena, whose capacity is fixed at
// MaxBatch×TotalDim up front so appends can never move rows already
// recorded; that fixed ownership is what lets the bundle be reused instead
// of abandoned to the GC after every batch.
type rowBatch struct {
	keys   []Key
	starts []time.Duration
	rows   [][]float64
	flat   []float64
	apps   []string
	// ckpt marks a checkpoint barrier travelling the row path (the batch
	// then carries no rows). Cleared when the bundle is recycled.
	ckpt *Checkpoint
}

// stageMetrics is one stage's obs handles; all nil (no-op) when disabled.
type stageMetrics struct {
	batches *obs.Counter
	items   *obs.Counter
	shed    *obs.Counter
	depth   *obs.Gauge
	ms      *obs.Histogram
}

func newStageMetrics(sc obs.Scope, items, shed string) stageMetrics {
	return stageMetrics{
		batches: sc.Counter("batches"),
		items:   sc.Counter(items),
		shed:    sc.Counter(shed),
		depth:   sc.Gauge("queue_depth"),
		ms:      sc.Histogram("stage_ms", obs.LatencyBuckets()),
	}
}

// pipeline carries one Run's state. Each stats field is written by exactly
// one stage goroutine and read only after the WaitGroup settles.
type pipeline struct {
	cfg   Config
	table *appTable

	mSource   stageMetrics
	mAssemble stageMetrics
	mClassify stageMetrics
	mVerdict  stageMetrics
	activeKey *obs.Gauge
	outOfObs  *obs.Counter
	retrainC  *obs.Counter
	ckptC     *obs.Counter
	ckptMS    *obs.Histogram
	panicC    *obs.Counter

	// Freelists recycle buffers against the flow of data: record slices
	// return assemble→source, row bundles verdict→assemble. Both are
	// buffered deep enough for every in-flight batch, so steady state the
	// per-batch path allocates nothing; non-blocking puts mean a full
	// freelist just drops the buffer rather than stalling a stage.
	recFree chan trace.Trace
	rowFree chan *rowBatch

	// assemble-stage state
	users  map[Key]*features.Incremental
	order  []Key // sorted, for deterministic advance/flush iteration
	curKey Key
	cur    *rowBatch

	// classify-stage scratch, reused across every batch.
	clfScratch fingerprint.BatchScratch

	// verdict-stage state. Held on the pipeline (instead of stage-local)
	// so restore can prime it before the stages start and the checkpoint
	// barrier can read it as it passes through.
	votes map[Key]*userVote
	slab  ringSlab

	// nextCkpt is the next simulated-time checkpoint boundary
	// (source-stage state, meaningful only when CheckpointEvery > 0).
	nextCkpt time.Duration

	// panicErr records the first recovered stage panic.
	panicMu  sync.Mutex
	panicErr error

	st Stats
}

// fail records the first recovered stage panic.
func (p *pipeline) fail(err error) {
	p.panicMu.Lock()
	if p.panicErr == nil {
		p.panicErr = err
	}
	p.panicMu.Unlock()
}

// failure returns the first recovered stage panic, nil if none.
func (p *pipeline) failure() error {
	p.panicMu.Lock()
	defer p.panicMu.Unlock()
	return p.panicErr
}

// Run executes the pipeline over the source until the source is exhausted
// or ctx is cancelled. On cancellation the stages drain their in-flight
// work before returning, and Run reports ctx's error alongside the stats
// gathered so far. With RecoverPanics set, a panicking stage aborts the
// pipeline cleanly instead of crashing the process: the remaining stages
// drain, and Run returns the panic as an error.
func Run(ctx context.Context, src Source, cfg Config) (*Stats, error) {
	if cfg.Classifier == nil {
		return nil, fmt.Errorf("stream: Config.Classifier is required")
	}
	cfg = cfg.withDefaults()
	sc := cfg.Metrics
	p := &pipeline{
		cfg:       cfg,
		table:     newAppTable(),
		mSource:   newStageMetrics(sc.Scope("source"), "records", "shed_records"),
		mAssemble: newStageMetrics(sc.Scope("assemble"), "rows", "shed_rows"),
		mClassify: newStageMetrics(sc.Scope("classify"), "predictions", "shed_predictions"),
		mVerdict:  newStageMetrics(sc.Scope("verdict"), "verdicts", "shed_verdicts"),
		activeKey: sc.Scope("assemble").Gauge("active_keys"),
		outOfObs:  sc.Scope("assemble").Counter("out_of_order"),
		retrainC:  sc.Scope("verdict").Counter("retrain_signals"),
		ckptC:     sc.Scope("checkpoint").Counter("emitted"),
		ckptMS:    sc.Scope("checkpoint").Histogram("build_ms", obs.LatencyBuckets()),
		panicC:    sc.Scope("pipeline").Counter("stage_panics"),
		users:     make(map[Key]*features.Incremental),
		votes:     make(map[Key]*userVote),
		recFree:   make(chan trace.Trace, cfg.QueueDepth+2),
		rowFree:   make(chan *rowBatch, 2*cfg.QueueDepth+4),
	}
	p.slab = ringSlab{horizon: cfg.VoteHorizon, apps: len(p.table.names)}
	if cfg.CheckpointEvery > 0 {
		p.nextCkpt = cfg.CheckpointEvery
	}
	if cfg.Restore != nil {
		if err := p.restore(cfg.Restore); err != nil {
			return nil, err
		}
		if cfg.CheckpointEvery > 0 {
			p.nextCkpt = cfg.Restore.Now - cfg.Restore.Now%cfg.CheckpointEvery + cfg.CheckpointEvery
		}
	}

	// A recovered stage panic cancels this internal context so the source
	// stops producing; the caller's ctx error is still reported from the
	// parent, never the internal cancel.
	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	recCh := make(chan recBatch, cfg.QueueDepth)
	rowCh := make(chan *rowBatch, cfg.QueueDepth)
	predCh := make(chan *rowBatch, cfg.QueueDepth)

	// guard wraps one stage goroutine: with RecoverPanics, a panic is
	// recorded, the source is cancelled, and the stage's abandoned input
	// is drained so upstream senders can finish — the pipeline winds down
	// instead of deadlocking (the stage's own deferred close has already
	// released its downstream).
	guard := func(stage string, drain func(), fn func()) {
		defer func() {
			if !cfg.RecoverPanics {
				return
			}
			if r := recover(); r != nil {
				p.fail(fmt.Errorf("stream: %s stage panicked: %v", stage, r))
				p.panicC.Inc()
				cancel()
				if drain != nil {
					drain()
				}
			}
		}()
		fn()
	}
	drainRecs := func() {
		for b := range recCh {
			p.putRecs(b.recs)
		}
	}
	drainRows := func(ch chan *rowBatch) func() {
		return func() {
			for b := range ch {
				p.putBatch(b)
			}
		}
	}

	var wg sync.WaitGroup
	wg.Add(4)
	go func() { defer wg.Done(); guard("source", nil, func() { p.sourceStage(ctx, src, recCh) }) }()
	go func() { defer wg.Done(); guard("assemble", drainRecs, func() { p.assembleStage(recCh, rowCh) }) }()
	go func() {
		defer wg.Done()
		guard("classify", drainRows(rowCh), func() { p.classifyStage(rowCh, predCh) })
	}()
	go func() { defer wg.Done(); guard("verdict", drainRows(predCh), func() { p.verdictStage(predCh) }) }()
	wg.Wait()

	p.st.Users = len(p.users)
	var ooo int64
	for _, inc := range p.users {
		ooo += inc.OutOfOrder
	}
	if delta := ooo - p.st.OutOfOrder; delta > 0 {
		p.outOfObs.Add(delta)
	}
	p.st.OutOfOrder = ooo
	st := p.st
	if err := p.failure(); err != nil {
		return &st, err
	}
	return &st, parent.Err()
}

// putRecs returns a record slice to the source freelist (dropped if full).
func (p *pipeline) putRecs(recs trace.Trace) {
	if cap(recs) == 0 {
		return
	}
	select {
	case p.recFree <- recs:
	default:
	}
}

// putBatch returns a row bundle to the freelist (dropped if full).
func (p *pipeline) putBatch(b *rowBatch) {
	select {
	case p.rowFree <- b:
	default:
	}
}

// getBatch pops a recycled bundle, or builds one with its full capacity —
// MaxBatch rows and a MaxBatch×TotalDim arena — so it never grows later.
func (p *pipeline) getBatch() *rowBatch {
	select {
	case b := <-p.rowFree:
		b.keys = b.keys[:0]
		b.starts = b.starts[:0]
		b.rows = b.rows[:0]
		b.flat = b.flat[:0]
		b.apps = b.apps[:0]
		b.ckpt = nil
		return b
	default:
	}
	return &rowBatch{
		keys:   make([]Key, 0, p.cfg.MaxBatch),
		starts: make([]time.Duration, 0, p.cfg.MaxBatch),
		rows:   make([][]float64, 0, p.cfg.MaxBatch),
		flat:   make([]float64, 0, p.cfg.MaxBatch*features.TotalDim),
		apps:   make([]string, 0, p.cfg.MaxBatch),
	}
}

// sourceStage pulls slices until the source is exhausted or the context is
// cancelled. It is the only stage that watches ctx: downstream stages end
// by draining their closed input, which guarantees in-flight work is
// finished, not abandoned.
func (p *pipeline) sourceStage(ctx context.Context, src Source, out chan<- recBatch) {
	defer close(out)
	buf := make(trace.Trace, 0, 1024)
	for {
		select {
		case <-ctx.Done():
			return
		default:
		}
		t := p.mSource.ms.Start()
		next, now, more := src.Next(buf[:0])
		buf = next
		t.Stop()
		p.st.End = now
		b := recBatch{now: now}
		if len(buf) > 0 {
			var recs trace.Trace
			select {
			case recs = <-p.recFree:
			default:
			}
			b.recs = append(recs[:0], buf...)
		}
		p.mSource.batches.Inc()
		if p.cfg.Shed {
			select {
			case out <- b:
				p.st.Records += int64(len(b.recs))
				p.mSource.items.Add(int64(len(b.recs)))
			default:
				p.st.ShedRecords += int64(len(b.recs))
				p.mSource.shed.Add(int64(len(b.recs)))
				p.putRecs(b.recs)
			}
		} else {
			select {
			case out <- b:
				p.st.Records += int64(len(b.recs))
				p.mSource.items.Add(int64(len(b.recs)))
			case <-ctx.Done():
				return
			}
		}
		// Checkpoint barriers ride the same queue as data, so each stage
		// sees the barrier exactly after the last pre-barrier batch. The
		// barrier send always blocks (even in shed mode): a checkpoint is
		// a correctness artefact, not a load-shedding candidate, and the
		// consumers always drain, so the wait is bounded.
		if p.cfg.CheckpointEvery > 0 && b.now >= p.nextCkpt {
			c := &Checkpoint{Now: b.now}
			c.Stats.Records = p.st.Records
			c.Stats.ShedRecords = p.st.ShedRecords
			c.Stats.End = b.now
			select {
			case out <- recBatch{now: b.now, ckpt: c}:
			case <-ctx.Done():
				return
			}
			for p.nextCkpt <= b.now {
				p.nextCkpt += p.cfg.CheckpointEvery
			}
		}
		p.mSource.depth.Set(int64(len(out)))
		if !more {
			return
		}
	}
}

// assembleStage routes records to per-user incremental extractors and
// batches the emitted rows. Users are advanced and flushed in sorted key
// order so row order — and therefore every downstream artefact — is
// deterministic for a given record sequence.
func (p *pipeline) assembleStage(in <-chan recBatch, out chan<- *rowBatch) {
	defer close(out)
	p.cur = p.getBatch()
	emit := p.emitRow(out)
	for b := range in {
		if b.ckpt != nil {
			// Flush rows ahead of the barrier so everything assembled from
			// pre-barrier records reaches the verdict stage first, then
			// attach this stage's state and forward (always blocking — see
			// sourceStage).
			p.flushRows(out)
			p.captureUsers(b.ckpt)
			bb := p.getBatch()
			bb.ckpt = b.ckpt
			out <- bb
			p.mAssemble.depth.Set(int64(len(out)))
			continue
		}
		t := p.mAssemble.ms.Start()
		for _, r := range b.recs {
			k := Key{CellID: r.CellID, RNTI: r.RNTI}
			inc, ok := p.users[k]
			if !ok {
				inc = features.NewIncremental(p.cfg.Window, p.cfg.Stride)
				p.users[k] = inc
				i := sort.Search(len(p.order), func(i int) bool { return keyLess(k, p.order[i]) })
				p.order = append(p.order, Key{})
				copy(p.order[i+1:], p.order[i:])
				p.order[i] = k
				p.activeKey.Set(int64(len(p.order)))
			}
			p.curKey = k
			inc.Push(r, emit)
		}
		// The source guarantees all records with At < b.now are delivered:
		// close every window ending by then, idle users included.
		for _, k := range p.order {
			p.curKey = k
			p.users[k].AdvanceTo(b.now, emit)
		}
		t.Stop()
		p.putRecs(b.recs)
		p.flushRows(out)
	}
	for _, k := range p.order {
		p.curKey = k
		p.users[k].Flush(emit)
	}
	p.flushRows(out)
}

func keyLess(a, b Key) bool {
	if a.CellID != b.CellID {
		return a.CellID < b.CellID
	}
	return a.RNTI < b.RNTI
}

// emitRow returns the assembler's emit callback (built once per stage —
// it is called per row); curKey names the user the row belongs to. The
// extractor's row is scratch, so it is copied into the bundle's arena;
// the arena's capacity covers MaxBatch rows, so the append can never grow
// it in place and move rows already recorded.
func (p *pipeline) emitRow(out chan<- *rowBatch) func(start time.Duration, row []float64) {
	return func(start time.Duration, row []float64) {
		if p.cfg.TapWindow != nil {
			p.cfg.TapWindow(p.curKey, start, row)
		}
		b := p.cur
		n := len(b.flat)
		b.flat = append(b.flat, row...)
		b.keys = append(b.keys, p.curKey)
		b.starts = append(b.starts, start)
		b.rows = append(b.rows, b.flat[n:len(b.flat):len(b.flat)])
		if len(b.rows) >= p.cfg.MaxBatch {
			p.flushRows(out)
		}
	}
}

// flushRows ships the accumulated rows (if any) under the shed policy.
func (p *pipeline) flushRows(out chan<- *rowBatch) {
	if len(p.cur.rows) == 0 {
		return
	}
	b := p.cur
	// The row count is read before the send: once the bundle is handed
	// downstream it may be recycled (and reset) at any moment.
	n := int64(len(b.rows))
	p.mAssemble.batches.Inc()
	if p.cfg.Shed {
		select {
		case out <- b:
			p.st.Rows += n
			p.mAssemble.items.Add(n)
		default:
			p.st.ShedRows += n
			p.mAssemble.shed.Add(n)
			p.putBatch(b)
		}
	} else {
		out <- b
		p.st.Rows += n
		p.mAssemble.items.Add(n)
	}
	p.mAssemble.depth.Set(int64(len(out)))
	p.cur = p.getBatch()
}

// classifyStage runs the forest hierarchy batched over each row batch.
// Batch composition cannot change predictions (batch prediction is
// documented bit-identical to per-row prediction), so shed/batching policy
// upstream never alters what a surviving row classifies as. Predictions
// land in the bundle's own apps buffer via the reusable scratch, so the
// steady-state classify path allocates nothing.
func (p *pipeline) classifyStage(in <-chan *rowBatch, out chan<- *rowBatch) {
	defer close(out)
	for b := range in {
		if b.ckpt != nil {
			b.ckpt.Stats.Predictions = p.st.Predictions
			b.ckpt.Stats.ShedPredictions = p.st.ShedPredictions
			out <- b
			p.mClassify.depth.Set(int64(len(out)))
			continue
		}
		t := p.mClassify.ms.Start()
		b.apps = b.apps[:len(b.rows)]
		p.cfg.Classifier.PredictBatchInto(b.rows, b.apps, &p.clfScratch)
		t.Stop()
		// As above: count before the send, not after the handoff.
		n := int64(len(b.apps))
		p.mClassify.batches.Inc()
		if p.cfg.Shed {
			select {
			case out <- b:
				p.st.Predictions += n
				p.mClassify.items.Add(n)
			default:
				p.st.ShedPredictions += n
				p.mClassify.shed.Add(n)
				p.putBatch(b)
			}
		} else {
			out <- b
			p.st.Predictions += n
			p.mClassify.items.Add(n)
		}
		p.mClassify.depth.Set(int64(len(out)))
	}
}

// userVote is the verdict stage's per-user state, carved out of a ringSlab.
type userVote struct {
	ring  voteRing
	drift driftMonitor
}

// verdictStage folds predictions into rolling per-user majority votes,
// emitting one verdict per classified window once the user has enough
// history, and watching confidence for the retrain gate. As the bundle's
// last reader it returns each one to the freelist.
func (p *pipeline) verdictStage(in <-chan *rowBatch) {
	votes := p.votes
	for b := range in {
		if b.ckpt != nil {
			t := p.ckptMS.Start()
			p.captureVotes(b.ckpt)
			if p.cfg.OnCheckpoint != nil {
				p.cfg.OnCheckpoint(b.ckpt)
			}
			t.Stop()
			p.ckptC.Inc()
			p.putBatch(b)
			continue
		}
		t := p.mVerdict.ms.Start()
		for i, k := range b.keys {
			u, ok := votes[k]
			if !ok {
				u = p.slab.get()
				u.drift = driftMonitor{
					threshold:  p.cfg.DriftThreshold,
					minWindows: p.cfg.DriftMinWindows,
				}
				votes[k] = u
			}
			u.ring.push(p.table.index[b.apps[i]])
			if u.ring.fill < p.cfg.MinVerdictWindows {
				continue
			}
			app, conf := u.ring.majority()
			v := Verdict{
				At:         b.starts[i],
				Key:        k,
				App:        p.table.names[app],
				Confidence: conf,
				Windows:    u.ring.fill,
			}
			p.st.Verdicts++
			p.mVerdict.items.Inc()
			if p.cfg.OnVerdict != nil {
				p.cfg.OnVerdict(v)
			}
			if u.drift.observe(conf, u.ring.fill) {
				p.st.RetrainSignals++
				p.retrainC.Inc()
				if p.cfg.OnRetrain != nil {
					p.cfg.OnRetrain(RetrainSignal{
						At: b.starts[i], Key: k, Confidence: conf, Windows: u.ring.fill,
					})
				}
			}
		}
		p.mVerdict.batches.Inc()
		t.Stop()
		p.putBatch(b)
	}
}
