// Package stream is the serving-shaped counterpart to the offline capture
// pipeline: a bounded-channel, staged online path that turns a live
// sniffer feed into rolling per-RNTI app verdicts while the capture is
// still running — the paper's attacker as it actually operates, rather
// than the batch reconstruction the rest of the repository performs after
// the fact.
//
// The pipeline has four stages connected by bounded queues:
//
//	source    — steps a record source (live simulation, replay, or a
//	            fault injector wrapping either) one time slice at a time
//	assemble  — routes records to a per-(cell,RNTI) incremental window
//	            extractor (features.Incremental, bit-identical to the
//	            offline extractor) and batches the emitted rows
//	classify  — runs the fingerprint classifier's batched forest
//	            inference over each row batch
//	verdict   — folds predictions into per-RNTI rolling majority votes,
//	            raising verdicts and watching confidence for drift
//
// Backpressure is explicit: each queue is bounded, and the pipeline either
// blocks the producer (Config.Shed false — lossless, the default) or
// sheds the overflowing batch and counts it in obs (Config.Shed true —
// bounded latency). Nothing is ever dropped silently.
//
// Shutdown is cooperative: cancelling the context stops the source, and
// every downstream stage drains what is already in flight before closing
// its output, so Run returns with no goroutine left behind.
package stream

import (
	"time"

	"ltefp/internal/attack/fingerprint"
	"ltefp/internal/lte/rnti"
	"ltefp/internal/obs"
)

// Key identifies one tracked user: the observing cell and the C-RNTI the
// scheduler is addressing. The live pipeline deliberately stops at RNTI
// granularity — identity mapping is a post-hoc batch step.
type Key struct {
	CellID int
	RNTI   rnti.RNTI
}

// Verdict is one rolling classification of one user.
type Verdict struct {
	// At is the simulated start time of the newest window in the vote.
	At  time.Duration
	Key Key
	// App is the majority-voted app over the vote horizon.
	App string
	// Confidence is the majority fraction, comparable to the paper's 70%
	// stability gate.
	Confidence float64
	// Windows is how many windows are in the vote.
	Windows int
}

// RetrainSignal is the drift monitor's output: a user whose rolling
// confidence fell below the threshold over a full horizon — the paper's
// Fig. 8 condition for refreshing the fingerprints.
type RetrainSignal struct {
	At         time.Duration
	Key        Key
	Confidence float64
	Windows    int
}

// Config assembles a pipeline.
type Config struct {
	// Classifier is the trained hierarchy (required). Window/Stride default
	// to the classifier's training geometry.
	Classifier *fingerprint.Classifier
	Window     time.Duration
	Stride     time.Duration

	// QueueDepth bounds each inter-stage channel (default 64 batches).
	QueueDepth int
	// Shed selects drop-and-count over block-the-producer when a queue is
	// full. Shed events surface in Stats and the stage obs counters.
	Shed bool
	// MaxBatch caps the rows handed to one classify call (default 64).
	MaxBatch int

	// VoteHorizon is the rolling vote length in windows (default 50 — five
	// seconds of 100 ms windows).
	VoteHorizon int
	// MinVerdictWindows is how many windows a user needs before verdicts
	// are emitted (default 5).
	MinVerdictWindows int
	// DriftThreshold is the confidence gate (default 0.70, the paper's).
	DriftThreshold float64
	// DriftMinWindows is how many windows the vote must hold before the
	// drift monitor may fire (default 30).
	DriftMinWindows int

	// OnVerdict, when set, receives every rolling verdict, from the
	// verdict stage's goroutine.
	OnVerdict func(Verdict)
	// OnRetrain, when set, receives drift signals (latched: one per user
	// per excursion below the threshold).
	OnRetrain func(RetrainSignal)
	// TapWindow, when set, observes every extracted window row before
	// classification, from the assemble stage's goroutine. The row is
	// scratch — copy to retain. Used by the offline-equivalence tests.
	TapWindow func(key Key, start time.Duration, row []float64)

	// CheckpointEvery, when positive, emits a checkpoint barrier whenever
	// the source crosses a multiple of this much simulated time. The
	// barrier flows through every stage in queue order, so the resulting
	// Checkpoint is a consistent cut: assembler state after every record
	// before the barrier, verdict state after every window those records
	// completed.
	CheckpointEvery time.Duration
	// OnCheckpoint receives each completed checkpoint, from the verdict
	// stage's goroutine. The checkpoint is plain data owned by the
	// callback; the pipeline never touches it again.
	OnCheckpoint func(*Checkpoint)
	// Restore primes the pipeline with a checkpoint's state before the
	// stages start: per-user window assembly, vote rings, drift latches,
	// and cumulative stats. The source must resume at Restore.Now (for a
	// deterministic simulated source, fast-forwarded to that time); the
	// pipeline then produces verdicts byte-identical to an uninterrupted
	// run. Restore fails if the checkpoint's window geometry or vote
	// horizon disagree with this configuration.
	Restore *Checkpoint
	// RecoverPanics turns a panicking stage into a clean pipeline
	// shutdown: in-flight work is drained, Run returns the panic as an
	// error, and the process survives — the daemon's supervisor then
	// restarts the capture from its last checkpoint.
	RecoverPanics bool

	// Metrics, when enabled, receives per-stage counters, queue-depth
	// gauges, and stage-latency histograms under source./assemble./
	// classify./verdict. The zero Scope disables instrumentation.
	Metrics obs.Scope
}

// withDefaults fills the documented defaults.
func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = c.Classifier.Window
	}
	if c.Window <= 0 {
		c.Window = fingerprint.DefaultWindow
	}
	if c.Stride <= 0 {
		c.Stride = c.Classifier.Stride
	}
	if c.Stride <= 0 {
		c.Stride = c.Window
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.VoteHorizon <= 0 {
		c.VoteHorizon = 50
	}
	if c.MinVerdictWindows <= 0 {
		c.MinVerdictWindows = 5
	}
	if c.DriftThreshold <= 0 {
		c.DriftThreshold = 0.70
	}
	if c.DriftMinWindows <= 0 {
		c.DriftMinWindows = 30
	}
	return c
}

// Stats summarises one pipeline run. Every shed is also an obs counter;
// nothing drops silently.
type Stats struct {
	// Records is how many sniffer records entered the assembler; Rows how
	// many window rows it emitted; Predictions how many rows were
	// classified; Verdicts how many rolling verdicts were raised.
	Records     int64
	Rows        int64
	Predictions int64
	Verdicts    int64
	// ShedRecords/ShedRows/ShedPredictions count payloads dropped at full
	// queues in shed mode.
	ShedRecords     int64
	ShedRows        int64
	ShedPredictions int64
	// OutOfOrder counts records the assembler rejected for time-order
	// violations.
	OutOfOrder int64
	// RetrainSignals counts drift-monitor firings.
	RetrainSignals int64
	// Users is how many distinct keys were tracked.
	Users int
	// End is the simulated time the source reached.
	End time.Duration
}
