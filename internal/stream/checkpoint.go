package stream

import (
	"fmt"
	"sort"
	"time"

	"ltefp/internal/features"
	"ltefp/internal/lte/dci"
	"ltefp/internal/lte/rnti"
	"ltefp/internal/snapshot"
	"ltefp/internal/trace"
)

// Checkpoint is the pipeline's complete restorable state at one aligned
// barrier: the simulated time reached, the cumulative stats, every
// per-user incremental window extractor, and every per-user vote ring
// with its drift-monitor latch. A pipeline restored from a checkpoint and
// fed the same post-checkpoint records produces verdicts byte-identical
// to one that was never interrupted — the property the daemon's
// kill-and-restart e2e test pins.
//
// A Checkpoint is plain data (private to its creator): safe to retain,
// encode, and restore from after the emitting pipeline has moved on.
type Checkpoint struct {
	// Now is the simulated time of the barrier: every record with At < Now
	// has been assembled, every window ending at or before Now has been
	// classified and voted.
	Now time.Duration
	// Stats is the cumulative pipeline stats at the barrier.
	Stats Stats
	// Users holds each tracked user's incremental extractor state, sorted
	// by key.
	Users []UserState
	// Votes holds each voted user's ring and drift state, sorted by key.
	Votes []VoteState
}

// UserState is one user's assemble-stage state.
type UserState struct {
	Key Key
	Inc features.IncrementalState
}

// VoteState is one user's verdict-stage state: the raw vote ring (slots,
// write position, fill) plus the drift monitor's latch.
type VoteState struct {
	Key          Key
	Slots        []int16
	Pos, Fill    int
	DriftLatched bool
}

// Section names of the pipeline's checkpoint state inside a snapshot
// container. The daemon adds its own sections (metadata, the trained
// model) around these.
const (
	SectionUsers = "stream.users"
	SectionVotes = "stream.votes"
	SectionDrift = "stream.drift"
	SectionStats = "stream.stats"
)

// sectionNames lists every pipeline section, in encode order.
var sectionNames = []string{SectionStats, SectionUsers, SectionVotes, SectionDrift}

// AppendTo writes the checkpoint's four sections into a snapshot
// container. Users and Votes are written in their (sorted) slice order,
// so equal state always produces equal bytes.
func (c *Checkpoint) AppendTo(w *snapshot.Writer) error {
	for _, name := range sectionNames {
		var payload []byte
		switch name {
		case SectionStats:
			payload = c.encodeStats()
		case SectionUsers:
			payload = c.encodeUsers()
		case SectionVotes:
			payload = c.encodeVotes()
		case SectionDrift:
			payload = c.encodeDrift()
		}
		if err := w.Section(name, payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadCheckpoint rebuilds a checkpoint from a decoded snapshot container's
// sections. All four pipeline sections must be present and intact.
func ReadCheckpoint(sections map[string][]byte) (*Checkpoint, error) {
	for _, name := range sectionNames {
		if _, ok := sections[name]; !ok {
			return nil, fmt.Errorf("stream: checkpoint missing section %q", name)
		}
	}
	c := &Checkpoint{}
	if err := c.decodeStats(sections[SectionStats]); err != nil {
		return nil, err
	}
	if err := c.decodeUsers(sections[SectionUsers]); err != nil {
		return nil, err
	}
	if err := c.decodeVotes(sections[SectionVotes]); err != nil {
		return nil, err
	}
	if err := c.decodeDrift(sections[SectionDrift]); err != nil {
		return nil, err
	}
	return c, nil
}

// --- stats section ---

func (c *Checkpoint) encodeStats() []byte {
	e := snapshot.NewEncoder(128)
	e.Duration(c.Now)
	s := &c.Stats
	e.Varint(s.Records)
	e.Varint(s.Rows)
	e.Varint(s.Predictions)
	e.Varint(s.Verdicts)
	e.Varint(s.ShedRecords)
	e.Varint(s.ShedRows)
	e.Varint(s.ShedPredictions)
	e.Varint(s.OutOfOrder)
	e.Varint(s.RetrainSignals)
	e.Varint(int64(s.Users))
	e.Duration(s.End)
	return e.Bytes()
}

func (c *Checkpoint) decodeStats(b []byte) error {
	d := snapshot.NewDecoder(b)
	c.Now = d.Duration()
	s := &c.Stats
	s.Records = d.Varint()
	s.Rows = d.Varint()
	s.Predictions = d.Varint()
	s.Verdicts = d.Varint()
	s.ShedRecords = d.Varint()
	s.ShedRows = d.Varint()
	s.ShedPredictions = d.Varint()
	s.OutOfOrder = d.Varint()
	s.RetrainSignals = d.Varint()
	s.Users = int(d.Varint())
	s.End = d.Duration()
	if err := d.Finish(); err != nil {
		return fmt.Errorf("stream: checkpoint stats: %w", err)
	}
	return nil
}

// --- key helpers ---

func encodeKey(e *snapshot.Encoder, k Key) {
	e.Varint(int64(k.CellID))
	e.Uvarint(uint64(k.RNTI))
}

func decodeKey(d *snapshot.Decoder) Key {
	cell := d.Varint()
	r := d.Uvarint()
	return Key{CellID: int(cell), RNTI: rnti.RNTI(r)}
}

// --- users section (incremental window extractors) ---

func (c *Checkpoint) encodeUsers() []byte {
	e := snapshot.NewEncoder(1024)
	e.Uvarint(uint64(len(c.Users)))
	for i := range c.Users {
		u := &c.Users[i]
		encodeKey(e, u.Key)
		st := &u.Inc
		e.Duration(st.Width)
		e.Duration(st.Stride)
		e.Bool(st.Started)
		e.Duration(st.Next)
		e.Duration(st.LastAt)
		e.F64(st.PrevCount)
		e.F64(st.PrevBytes)
		e.Bool(st.HasEvicted)
		e.Duration(st.EvictedAt)
		e.Varint(st.OutOfOrder)
		e.Uvarint(uint64(len(st.Buf)))
		for _, r := range st.Buf {
			e.Duration(r.At)
			e.Varint(int64(r.CellID))
			e.Uvarint(uint64(r.RNTI))
			e.Varint(int64(r.Dir))
			e.Varint(int64(r.Bytes))
		}
	}
	return e.Bytes()
}

func (c *Checkpoint) decodeUsers(b []byte) error {
	d := snapshot.NewDecoder(b)
	n := d.Count(16)
	var users []UserState // nil when empty, so round-trips preserve DeepEqual
	for i := 0; i < n; i++ {
		var u UserState
		u.Key = decodeKey(d)
		st := &u.Inc
		st.Width = d.Duration()
		st.Stride = d.Duration()
		st.Started = d.Bool()
		st.Next = d.Duration()
		st.LastAt = d.Duration()
		st.PrevCount = d.F64()
		st.PrevBytes = d.F64()
		st.HasEvicted = d.Bool()
		st.EvictedAt = d.Duration()
		st.OutOfOrder = d.Varint()
		recs := d.Count(5)
		if d.Err() != nil {
			break
		}
		if recs > 0 {
			st.Buf = make([]trace.Record, 0, recs)
		}
		for j := 0; j < recs; j++ {
			st.Buf = append(st.Buf, trace.Record{
				At:     d.Duration(),
				CellID: int(d.Varint()),
				RNTI:   rnti.RNTI(d.Uvarint()),
				Dir:    dci.Direction(d.Varint()),
				Bytes:  int(d.Varint()),
			})
		}
		users = append(users, u)
	}
	if err := d.Finish(); err != nil {
		return fmt.Errorf("stream: checkpoint users: %w", err)
	}
	c.Users = users
	return nil
}

// --- votes section (vote rings) ---

func (c *Checkpoint) encodeVotes() []byte {
	e := snapshot.NewEncoder(1024)
	e.Uvarint(uint64(len(c.Votes)))
	for i := range c.Votes {
		v := &c.Votes[i]
		encodeKey(e, v.Key)
		e.Uvarint(uint64(v.Pos))
		e.Uvarint(uint64(v.Fill))
		e.Uvarint(uint64(len(v.Slots)))
		for _, s := range v.Slots {
			e.Varint(int64(s))
		}
	}
	return e.Bytes()
}

func (c *Checkpoint) decodeVotes(b []byte) error {
	d := snapshot.NewDecoder(b)
	n := d.Count(5)
	var votes []VoteState // nil when empty, so round-trips preserve DeepEqual
	for i := 0; i < n; i++ {
		var v VoteState
		v.Key = decodeKey(d)
		v.Pos = int(d.Uvarint())
		v.Fill = int(d.Uvarint())
		slots := d.Count(1)
		if d.Err() != nil {
			break
		}
		v.Slots = make([]int16, slots)
		for j := range v.Slots {
			s := d.Varint()
			if s < 0 || s > 1<<15-1 {
				return fmt.Errorf("stream: checkpoint votes: slot value %d out of range", s)
			}
			v.Slots[j] = int16(s)
		}
		if v.Pos < 0 || v.Pos >= max(len(v.Slots), 1) || v.Fill < 0 || v.Fill > len(v.Slots) {
			return fmt.Errorf("stream: checkpoint votes: impossible ring (pos %d, fill %d, %d slots)", v.Pos, v.Fill, len(v.Slots))
		}
		if v.Fill < len(v.Slots) && v.Pos != v.Fill {
			return fmt.Errorf("stream: checkpoint votes: unwrapped ring with pos %d != fill %d", v.Pos, v.Fill)
		}
		votes = append(votes, v)
	}
	if err := d.Finish(); err != nil {
		return fmt.Errorf("stream: checkpoint votes: %w", err)
	}
	c.Votes = votes
	return nil
}

// --- drift section (drift-monitor latches, parallel to votes) ---

func (c *Checkpoint) encodeDrift() []byte {
	e := snapshot.NewEncoder(64)
	e.Uvarint(uint64(len(c.Votes)))
	for i := range c.Votes {
		encodeKey(e, c.Votes[i].Key)
		e.Bool(c.Votes[i].DriftLatched)
	}
	return e.Bytes()
}

func (c *Checkpoint) decodeDrift(b []byte) error {
	d := snapshot.NewDecoder(b)
	n := d.Count(3)
	if d.Err() == nil && n != len(c.Votes) {
		return fmt.Errorf("stream: checkpoint drift: %d entries for %d vote rings", n, len(c.Votes))
	}
	for i := 0; i < n; i++ {
		k := decodeKey(d)
		latched := d.Bool()
		if d.Err() != nil {
			break
		}
		if k != c.Votes[i].Key {
			return fmt.Errorf("stream: checkpoint drift: entry %d keyed %v, vote ring keyed %v", i, k, c.Votes[i].Key)
		}
		c.Votes[i].DriftLatched = latched
	}
	if err := d.Finish(); err != nil {
		return fmt.Errorf("stream: checkpoint drift: %w", err)
	}
	return nil
}

// --- pipeline integration ---

// captureUsers snapshots the assemble stage's per-user extractors into the
// barrier's checkpoint, in sorted key order, along with the stage's stats.
func (p *pipeline) captureUsers(c *Checkpoint) {
	c.Users = make([]UserState, 0, len(p.order))
	for _, k := range p.order {
		c.Users = append(c.Users, UserState{Key: k, Inc: p.users[k].State()})
	}
	c.Stats.Rows = p.st.Rows
	c.Stats.ShedRows = p.st.ShedRows
	c.Stats.Users = len(p.users)
	var ooo int64
	for _, inc := range p.users {
		ooo += inc.OutOfOrder
	}
	c.Stats.OutOfOrder = ooo
}

// captureVotes snapshots the verdict stage's vote rings and drift latches,
// in sorted key order, along with the stage's stats, completing the
// checkpoint.
func (p *pipeline) captureVotes(c *Checkpoint) {
	keys := make([]Key, 0, len(p.votes))
	for k := range p.votes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
	c.Votes = make([]VoteState, 0, len(keys))
	for _, k := range keys {
		u := p.votes[k]
		c.Votes = append(c.Votes, VoteState{
			Key:          k,
			Slots:        append([]int16(nil), u.ring.slots...),
			Pos:          u.ring.pos,
			Fill:         u.ring.fill,
			DriftLatched: u.drift.latched,
		})
	}
	c.Stats.Verdicts = p.st.Verdicts
	c.Stats.RetrainSignals = p.st.RetrainSignals
}

// restore primes a fresh pipeline with checkpointed state before its
// stages start. It validates the checkpoint against the pipeline's
// configuration — window geometry and vote horizon must match, because
// restored state under different parameters would be silently wrong.
func (p *pipeline) restore(c *Checkpoint) error {
	apps := len(p.table.names)
	p.st = c.Stats
	for i := range c.Users {
		u := &c.Users[i]
		if u.Inc.Width != p.cfg.Window || u.Inc.Stride != p.cfg.Stride {
			return fmt.Errorf("stream: checkpoint window %v/%v does not match config %v/%v",
				u.Inc.Width, u.Inc.Stride, p.cfg.Window, p.cfg.Stride)
		}
		inc, err := features.RestoreIncremental(u.Inc)
		if err != nil {
			return fmt.Errorf("stream: %w", err)
		}
		if i > 0 && !keyLess(c.Users[i-1].Key, u.Key) {
			return fmt.Errorf("stream: checkpoint users out of order at %v", u.Key)
		}
		p.users[u.Key] = inc
		p.order = append(p.order, u.Key)
	}
	for i := range c.Votes {
		v := &c.Votes[i]
		if len(v.Slots) != p.cfg.VoteHorizon {
			return fmt.Errorf("stream: checkpoint vote horizon %d does not match config %d",
				len(v.Slots), p.cfg.VoteHorizon)
		}
		if i > 0 && !keyLess(c.Votes[i-1].Key, v.Key) {
			return fmt.Errorf("stream: checkpoint votes out of order at %v", v.Key)
		}
		u := p.slab.get()
		u.drift = driftMonitor{
			threshold:  p.cfg.DriftThreshold,
			minWindows: p.cfg.DriftMinWindows,
			latched:    v.DriftLatched,
		}
		copy(u.ring.slots, v.Slots)
		u.ring.pos = v.Pos
		u.ring.fill = v.Fill
		valid := v.Slots
		if v.Fill < len(v.Slots) {
			valid = v.Slots[:v.Fill]
		}
		for _, s := range valid {
			if int(s) >= apps {
				return fmt.Errorf("stream: checkpoint vote slot %d exceeds %d apps", s, apps)
			}
			u.ring.counts[s]++
		}
		p.votes[v.Key] = u
	}
	p.activeKey.Set(int64(len(p.order)))
	return nil
}
